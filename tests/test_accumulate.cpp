// Tests for the GridAccumulator layer: strategy selection, name
// parsing, tile flush mechanics, and — the load-bearing property —
// bit-for-bit-close parity of the Privatized and Tiled write paths with
// the Atomic reference on seeded BinMD and MDNorm workloads.

#include "vates/events/experiment_setup.hpp"
#include "vates/histogram/grid_accumulator.hpp"
#include "vates/histogram/histogram3d.hpp"
#include "vates/kernels/binmd.hpp"
#include "vates/kernels/mdnorm.hpp"
#include "vates/kernels/transforms.hpp"
#include "vates/parallel/executor.hpp"
#include "vates/support/error.hpp"
#include "vates/support/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

namespace vates {
namespace {

// ---------------------------------------------------------------------------
// Strategy names, parsing, Auto resolution

TEST(AccumulateStrategy, NamesRoundTrip) {
  for (AccumulateStrategy s :
       {AccumulateStrategy::Auto, AccumulateStrategy::Atomic,
        AccumulateStrategy::Privatized, AccumulateStrategy::Tiled}) {
    EXPECT_EQ(parseAccumulateStrategy(accumulateStrategyName(s)), s);
  }
}

TEST(AccumulateStrategy, ParseAliasesAndRejects) {
  EXPECT_EQ(parseAccumulateStrategy(" Replica "), AccumulateStrategy::Privatized);
  EXPECT_EQ(parseAccumulateStrategy("TILE"), AccumulateStrategy::Tiled);
  EXPECT_THROW(parseAccumulateStrategy("mutex"), InvalidArgument);
}

TEST(AccumulateStrategy, AutoResolution) {
  const std::size_t budget = 1 << 20; // 1 MiB
  // One worker never contends.
  EXPECT_EQ(GridAccumulator::resolve(AccumulateStrategy::Auto, 512, 1, budget),
            AccumulateStrategy::Atomic);
  // 512 bins × 8 workers × 8 bytes = 32 KiB — replicate.
  EXPECT_EQ(GridAccumulator::resolve(AccumulateStrategy::Auto, 512, 8, budget),
            AccumulateStrategy::Privatized);
  // 1M bins × 8 workers × 8 bytes = 64 MiB — too large, tile.
  EXPECT_EQ(GridAccumulator::resolve(AccumulateStrategy::Auto, 1u << 20, 8,
                                     budget),
            AccumulateStrategy::Tiled);
  // Explicit requests pass through untouched.
  EXPECT_EQ(GridAccumulator::resolve(AccumulateStrategy::Tiled, 1, 1, budget),
            AccumulateStrategy::Tiled);
}

// ---------------------------------------------------------------------------
// Accumulator mechanics on a bare grid

Histogram3D smallHistogram() {
  return Histogram3D(BinAxis("x", 0, 1, 4), BinAxis("y", 0, 1, 4),
                     BinAxis("z", 0, 1, 4));
}

TEST(GridAccumulator, PrivatizedMergesAllWorkerDeposits) {
  ThreadPool pool(4);
  const Executor executor(Backend::ThreadPool, pool, DeviceSim::global());
  Histogram3D histogram = smallHistogram();
  histogram.data()[0] = 10.0; // pre-existing content must survive the merge

  AccumulateOptions options;
  options.strategy = AccumulateStrategy::Privatized;
  GridAccumulator accumulator(histogram.gridView(), executor, options);
  ASSERT_EQ(accumulator.strategy(), AccumulateStrategy::Privatized);
  const AccumulatorRef sink = accumulator.ref();

  const std::size_t n = 10000;
  executor.parallelForIndexed(n, [=](std::size_t i, unsigned worker) {
    sink.add(worker, i % 64, 1.0);
  });
  accumulator.commit();

  EXPECT_NEAR(histogram.totalSignal(), 10.0 + static_cast<double>(n), 1e-9);
  // Bin 0 receives indices 0, 64, 128, …: ceil(n / 64) of them.
  EXPECT_NEAR(histogram.data()[0], 10.0 + static_cast<double>((n + 63) / 64),
              1e-9);
}

TEST(GridAccumulator, TiledFlushesWhenCacheOverflows) {
  // Capacity 16 (the minimum) with 64 distinct bins forces many
  // mid-region flushes; totals must still be exact.
  ThreadPool pool(3);
  const Executor executor(Backend::ThreadPool, pool, DeviceSim::global());
  Histogram3D histogram = smallHistogram();

  AccumulateOptions options;
  options.strategy = AccumulateStrategy::Tiled;
  options.tileCapacity = 16;
  GridAccumulator accumulator(histogram.gridView(), executor, options);
  const AccumulatorRef sink = accumulator.ref();

  const std::size_t n = 50000;
  executor.parallelForIndexed(n, [=](std::size_t i, unsigned worker) {
    sink.add(worker, (i * 17) % 64, 2.0);
  });
  accumulator.commit();

  EXPECT_NEAR(histogram.totalSignal(), 2.0 * static_cast<double>(n), 1e-9);
}

TEST(GridAccumulator, CommitIsIdempotent) {
  ThreadPool pool(2);
  const Executor executor(Backend::ThreadPool, pool, DeviceSim::global());
  Histogram3D histogram = smallHistogram();

  AccumulateOptions options;
  options.strategy = AccumulateStrategy::Privatized;
  GridAccumulator accumulator(histogram.gridView(), executor, options);
  const AccumulatorRef sink = accumulator.ref();
  executor.parallelForIndexed(100, [=](std::size_t i, unsigned worker) {
    sink.add(worker, i % 64, 1.0);
  });
  accumulator.commit();
  accumulator.commit(); // must not double-count
  EXPECT_NEAR(histogram.totalSignal(), 100.0, 1e-12);
}

TEST(GridAccumulator, SharedGridForcesAtomicDeposits) {
  // The workflow scheduler runs several single-worker kernel launches
  // concurrently over one grid; each launch's accumulator cannot see
  // that concurrency, so sharedGrid must force real atomics (no
  // sole-writer plain adds, no worker-private state committed with
  // plain adds).  Exercised with genuinely concurrent accumulators so
  // TSAN catches any non-atomic write path.
  const Executor executor(Backend::Serial);
  Histogram3D histogram = smallHistogram();

  AccumulateOptions options;
  options.strategy = AccumulateStrategy::Privatized; // overridden
  options.sharedGrid = true;
  {
    GridAccumulator probe(histogram.gridView(), executor, options);
    EXPECT_EQ(probe.strategy(), AccumulateStrategy::Atomic)
        << "sharedGrid admits only atomic deposits";
  }

  const std::size_t perThread = 20000;
  auto deposit = [&] {
    GridAccumulator accumulator(histogram.gridView(), executor, options);
    const AccumulatorRef sink = accumulator.ref();
    for (std::size_t i = 0; i < perThread; ++i) {
      sink.add(0, i % 64, 1.0);
    }
    accumulator.commit();
  };
  std::thread other(deposit);
  deposit();
  other.join();

  EXPECT_NEAR(histogram.totalSignal(), 2.0 * static_cast<double>(perThread),
              1e-9);
}

// ---------------------------------------------------------------------------
// Physics parity: every strategy must reproduce the Atomic grid on a
// seeded BinMD + MDNorm workload, within 1e-12 relative tolerance.

struct SeededWorkload {
  SeededWorkload()
      : setup(WorkloadSpec::benzilCorelli(0.001)),
        generator(setup.makeGenerator()), run(generator.runInfo(0)),
        events(generator.generate(0)),
        normTransforms(mdNormTransforms(setup.projection(), setup.lattice(),
                                        setup.symmetryMatrices(),
                                        run.goniometerR)),
        binTransforms(binMdTransforms(setup.projection(), setup.lattice(),
                                      setup.symmetryMatrices())) {}

  BinMDInputs binInputs() const {
    BinMDInputs inputs;
    inputs.transforms = binTransforms;
    inputs.qx = events.column(EventTable::Qx).data();
    inputs.qy = events.column(EventTable::Qy).data();
    inputs.qz = events.column(EventTable::Qz).data();
    inputs.signal = events.column(EventTable::Signal).data();
    inputs.errorSq = events.column(EventTable::ErrorSq).data();
    inputs.nEvents = events.size();
    return inputs;
  }

  MDNormInputs normInputs() const {
    MDNormInputs inputs;
    inputs.transforms = normTransforms;
    inputs.qLabDirections = setup.instrument().qLabDirections();
    inputs.solidAngles = setup.instrument().solidAngles();
    inputs.flux = setup.flux().view();
    inputs.protonCharge = run.protonCharge;
    inputs.kMin = run.kMin;
    inputs.kMax = run.kMax;
    return inputs;
  }

  ExperimentSetup setup;
  EventGenerator generator;
  RunInfo run;
  EventTable events;
  std::vector<M33> normTransforms;
  std::vector<M33> binTransforms;
};

SeededWorkload& workload() {
  static SeededWorkload instance;
  return instance;
}

double maxRelativeDifference(const Histogram3D& a, const Histogram3D& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double ref = a.data()[i];
    const double diff = std::fabs(b.data()[i] - ref);
    const double scale = std::fabs(ref) > 0.0 ? std::fabs(ref) : 1.0;
    worst = std::max(worst, diff / scale);
  }
  return worst;
}

class AccumulateParity
    : public ::testing::TestWithParam<AccumulateStrategy> {};
INSTANTIATE_TEST_SUITE_P(Strategies, AccumulateParity,
                         ::testing::Values(AccumulateStrategy::Privatized,
                                           AccumulateStrategy::Tiled),
                         [](const auto& paramInfo) {
                           return std::string(
                               accumulateStrategyName(paramInfo.param));
                         });

TEST_P(AccumulateParity, BinMDMatchesAtomicBinForBin) {
  SeededWorkload& w = workload();
  ThreadPool pool(4);
  const Executor executor(Backend::ThreadPool, pool, DeviceSim::global());
  const BinMDInputs inputs = w.binInputs();

  Histogram3D reference = w.setup.makeHistogram();
  Histogram3D referenceErrors = reference.emptyLike();
  AccumulateOptions atomic;
  atomic.strategy = AccumulateStrategy::Atomic;
  runBinMD(executor, inputs, reference.gridView(),
           referenceErrors.gridView(), atomic);

  Histogram3D histogram = w.setup.makeHistogram();
  Histogram3D errors = histogram.emptyLike();
  AccumulateOptions options;
  options.strategy = GetParam();
  options.tileCapacity = 256; // small enough to exercise mid-run flushes
  runBinMD(executor, inputs, histogram.gridView(), errors.gridView(), options);

  EXPECT_LT(maxRelativeDifference(reference, histogram), 1e-12);
  EXPECT_LT(maxRelativeDifference(referenceErrors, errors), 1e-12);
}

TEST_P(AccumulateParity, MDNormMatchesAtomicBinForBin) {
  SeededWorkload& w = workload();
  ThreadPool pool(4);
  const Executor executor(Backend::ThreadPool, pool, DeviceSim::global());
  const MDNormInputs inputs = w.normInputs();

  Histogram3D reference = w.setup.makeHistogram();
  MDNormOptions atomicOptions;
  atomicOptions.accumulate.strategy = AccumulateStrategy::Atomic;
  runMDNorm(executor, inputs, reference.gridView(), atomicOptions);

  Histogram3D histogram = w.setup.makeHistogram();
  MDNormOptions options;
  options.accumulate.strategy = GetParam();
  options.accumulate.tileCapacity = 256;
  runMDNorm(executor, inputs, histogram.gridView(), options);

  EXPECT_LT(maxRelativeDifference(reference, histogram), 1e-12);
}

TEST(AccumulateParity, AutoMatchesAtomicAcrossBackends) {
  // The default (Auto) path every caller now takes must agree with the
  // explicit Atomic reference on every available backend.
  SeededWorkload& w = workload();
  const BinMDInputs inputs = w.binInputs();

  Histogram3D reference = w.setup.makeHistogram();
  AccumulateOptions atomic;
  atomic.strategy = AccumulateStrategy::Atomic;
  runBinMD(Executor(Backend::Serial), inputs, reference.gridView(), atomic);

  for (Backend backend : {Backend::Serial, Backend::OpenMP,
                          Backend::ThreadPool, Backend::DeviceSim}) {
    if (!backendAvailable(backend)) {
      continue;
    }
    Histogram3D histogram = w.setup.makeHistogram();
    runBinMD(Executor(backend), inputs, histogram.gridView());
    EXPECT_LT(maxRelativeDifference(reference, histogram), 1e-12)
        << backendName(backend);
  }
}

TEST(AccumulateParity, RepeatedRunsAccumulateOnTopOfExistingContent) {
  // Calling the kernel twice (two "runs") must add, not overwrite —
  // Privatized folds its replicas on top of whatever the grid held.
  SeededWorkload& w = workload();
  ThreadPool pool(4);
  const Executor executor(Backend::ThreadPool, pool, DeviceSim::global());
  const BinMDInputs inputs = w.binInputs();

  Histogram3D once = w.setup.makeHistogram();
  AccumulateOptions options;
  options.strategy = AccumulateStrategy::Privatized;
  runBinMD(executor, inputs, once.gridView(), options);

  Histogram3D twice = w.setup.makeHistogram();
  runBinMD(executor, inputs, twice.gridView(), options);
  runBinMD(executor, inputs, twice.gridView(), options);

  double worst = 0.0;
  for (std::size_t i = 0; i < once.size(); ++i) {
    const double expected = 2.0 * once.data()[i];
    const double scale = std::fabs(expected) > 0.0 ? std::fabs(expected) : 1.0;
    worst = std::max(worst, std::fabs(twice.data()[i] - expected) / scale);
  }
  EXPECT_LT(worst, 1e-12);
}

} // namespace
} // namespace vates
