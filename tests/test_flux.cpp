// Tests for the integrated incident-flux spectrum.

#include "vates/flux/flux_spectrum.hpp"
#include "vates/support/error.hpp"
#include "vates/support/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace vates {
namespace {

TEST(FluxSpectrum, FlatSpectrumIsLinear) {
  const FluxSpectrum flux = FluxSpectrum::flat(2.0, 10.0, 9, 8.0);
  EXPECT_DOUBLE_EQ(flux.integrated(2.0), 0.0);
  EXPECT_DOUBLE_EQ(flux.integrated(10.0), 8.0);
  EXPECT_NEAR(flux.integrated(6.0), 4.0, 1e-12);
  EXPECT_NEAR(flux.bandIntegral(3.0, 5.0), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(flux.totalWeight(), 8.0);
}

TEST(FluxSpectrum, ClampsOutsideBand) {
  const FluxSpectrum flux = FluxSpectrum::flat(2.0, 10.0, 9, 8.0);
  EXPECT_DOUBLE_EQ(flux.integrated(1.0), 0.0);
  EXPECT_DOUBLE_EQ(flux.integrated(100.0), 8.0);
  EXPECT_DOUBLE_EQ(flux.bandIntegral(0.0, 100.0), 8.0);
}

TEST(FluxSpectrum, MonotoneNonDecreasing) {
  const FluxSpectrum flux =
      FluxSpectrum::moderatorMaxwellian(2.0, 9.0, 256, 1.4, 1.0);
  double previous = -1.0;
  for (int i = 0; i <= 1000; ++i) {
    const double k = 2.0 + 7.0 * i / 1000.0;
    const double value = flux.integrated(k);
    EXPECT_GE(value, previous);
    previous = value;
  }
  EXPECT_NEAR(flux.totalWeight(), 1.0, 1e-12);
}

TEST(FluxSpectrum, BandIntegralAdditivity) {
  const FluxSpectrum flux =
      FluxSpectrum::moderatorMaxwellian(2.2, 9.0, 512, 1.4, 3.0);
  const double whole = flux.bandIntegral(2.5, 8.0);
  const double split =
      flux.bandIntegral(2.5, 4.0) + flux.bandIntegral(4.0, 8.0);
  EXPECT_NEAR(whole, split, 1e-12);
}

TEST(FluxSpectrum, MaxwellianPeakInThermalRange) {
  // Density = derivative of the cumulative: sample it and confirm the
  // peak *momentum-space* density sits where the analytic Maxwellian
  // predicts.  The λ-space Maxwellian peaks at lambdaPeak; after the
  // dλ/dk Jacobian the k-space density peaks at λ = λT·sqrt(2/3) with
  // λT = lambdaPeak·sqrt(5/2), i.e. lambdaPeak·sqrt(5/3).
  const double lambdaPeak = 1.8;
  const FluxSpectrum flux =
      FluxSpectrum::moderatorMaxwellian(1.5, 12.0, 2048, lambdaPeak, 1.0);
  double bestK = 0.0, bestDensity = -1.0;
  for (int i = 1; i < 2000; ++i) {
    const double k = 1.5 + (12.0 - 1.5) * i / 2000.0;
    const double density = flux.bandIntegral(k - 0.002, k + 0.002);
    if (density > bestDensity) {
      bestDensity = density;
      bestK = k;
    }
  }
  const double lambdaAtPeak = 6.283185307179586 / bestK;
  EXPECT_NEAR(lambdaAtPeak, lambdaPeak * std::sqrt(5.0 / 3.0), 0.35);
}

TEST(FluxSpectrum, QuantileInvertsIntegral) {
  const FluxSpectrum flux =
      FluxSpectrum::moderatorMaxwellian(2.0, 9.0, 512, 1.5, 1.0);
  for (const double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    const double k = flux.momentumAtQuantile(q);
    EXPECT_GE(k, flux.kMin());
    EXPECT_LE(k, flux.kMax());
    EXPECT_NEAR(flux.integrated(k) / flux.totalWeight(), q, 1e-3);
  }
}

TEST(FluxSpectrum, QuantileIsMonotone) {
  const FluxSpectrum flux =
      FluxSpectrum::moderatorMaxwellian(2.0, 9.0, 256, 1.5, 1.0);
  double previous = 0.0;
  for (int i = 0; i <= 100; ++i) {
    const double k = flux.momentumAtQuantile(i / 100.0);
    EXPECT_GE(k, previous);
    previous = k;
  }
}

TEST(FluxSpectrum, SampledMomentaFollowSpectrum) {
  // Draw many momenta through the inverse CDF and compare empirical
  // band fractions against the analytic cumulative.
  const FluxSpectrum flux =
      FluxSpectrum::moderatorMaxwellian(2.0, 9.0, 512, 1.5, 1.0);
  Xoshiro256 rng(404);
  const int n = 50000;
  int below = 0;
  const double threshold = 4.5;
  for (int i = 0; i < n; ++i) {
    if (flux.momentumAtQuantile(rng.uniform()) < threshold) {
      ++below;
    }
  }
  EXPECT_NEAR(static_cast<double>(below) / n,
              flux.integrated(threshold) / flux.totalWeight(), 0.01);
}

TEST(FluxSpectrum, ViewMatchesOwner) {
  const FluxSpectrum flux = FluxSpectrum::flat(2.0, 10.0, 33, 5.0);
  const FluxTableView view = flux.view();
  EXPECT_EQ(view.n, 33u);
  for (const double k : {2.0, 3.7, 8.1, 10.0}) {
    EXPECT_DOUBLE_EQ(view.integrated(k), flux.integrated(k));
  }
}

TEST(FluxSpectrum, InvalidInputsThrow) {
  EXPECT_THROW(FluxSpectrum(2.0, 1.0, {0.0, 1.0}), InvalidArgument);
  EXPECT_THROW(FluxSpectrum(0.0, 1.0, {0.0, 1.0}), InvalidArgument);
  EXPECT_THROW(FluxSpectrum(1.0, 2.0, {0.0}), InvalidArgument);
  EXPECT_THROW(FluxSpectrum(1.0, 2.0, {0.5, 1.0}), InvalidArgument);   // != 0
  EXPECT_THROW(FluxSpectrum(1.0, 2.0, {0.0, 2.0, 1.0}), InvalidArgument); // dec
  EXPECT_THROW(FluxSpectrum::moderatorMaxwellian(2, 9, 1, 1.5, 1.0),
               InvalidArgument);
  EXPECT_THROW(FluxSpectrum::moderatorMaxwellian(2, 9, 64, -1.0, 1.0),
               InvalidArgument);
}

} // namespace
} // namespace vates
