/// \file test_scenario.cpp
/// The virtual-experiment scenario generator and its hidden-ground-truth
/// contract:
///
///  - the default matrix spans all 21 point groups, both instrument
///    shapes, and the three mask fractions within 24 scenarios;
///  - generation and emission are bit-deterministic (same index → byte
///    identical artifacts, forever);
///  - the stamped checksums verify from the artifacts alone, and any
///    corruption — event bytes, plan text, manifest stamp — is caught;
///  - reducing an emitted scenario through the pipeline reproduces the
///    stamped event count and matches the independent scalar oracle
///    across the whole ≥24-scenario matrix (the "scenario-matrix"
///    ctest label CI runs as its own tier-1 step);
///  - the two committed golden scenarios regression-lock the
///    generator's draw order.

#include "vates/core/pipeline.hpp"
#include "vates/io/histogram_file.hpp"
#include "vates/scenario/scenario.hpp"
#include "vates/support/error.hpp"
#include "vates/verify/diff.hpp"
#include "vates/verify/reference_oracle.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

namespace {

using namespace vates;
using namespace vates::scenario;

namespace fs = std::filesystem;

fs::path freshDir(const std::string& tag) {
  const fs::path dir =
      fs::temp_directory_path() /
      ("vates_scenario_" + tag + "_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string readBytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot read " << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void writeBytes(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out) << "cannot write " << path;
  out << bytes;
}

// ---------------------------------------------------------------------------
// Matrix structure.

TEST(ScenarioMatrix, TwentyFourScenariosSpanTheParameterSpace) {
  const std::vector<Scenario> matrix = scenarioMatrix(24);
  ASSERT_EQ(matrix.size(), 24u);

  std::set<std::string> pointGroups;
  std::set<InstrumentShape> shapes;
  std::set<double> masks;
  std::set<std::string> names;
  for (const Scenario& scenario : matrix) {
    pointGroups.insert(scenario.workload.pointGroup);
    shapes.insert(scenario.shape);
    masks.insert(scenario.maskFraction);
    names.insert(scenario.name);

    // Internal consistency of every drawn workload.
    EXPECT_EQ(scenario.workload.maskFraction, scenario.maskFraction);
    EXPECT_EQ(scenario.workload.instrument,
              scenario.shape == InstrumentShape::Cylinder ? "corelli"
                                                          : "topaz");
    EXPECT_LT(scenario.workload.lambdaMin, scenario.workload.lambdaMax);
    EXPECT_GE(scenario.workload.nFiles, 1u);
    EXPECT_GE(scenario.workload.nDetectors, 40u);
    for (int axis = 0; axis < 3; ++axis) {
      EXPECT_LT(scenario.workload.extentMin[axis],
                scenario.workload.extentMax[axis]);
    }
    // The point group must actually construct (and with it the whole
    // experiment setup — lattice, instrument, flux).
    EXPECT_NO_THROW(static_cast<void>(ExperimentSetup(scenario.workload)))
        << scenario.name;
  }
  EXPECT_EQ(pointGroups.size(), 21u) << "matrix must span all 21 groups";
  EXPECT_EQ(shapes.size(), 2u) << "matrix must span both instrument shapes";
  EXPECT_EQ(masks, (std::set<double>{0.0, 0.3, 0.9}));
  EXPECT_EQ(names.size(), 24u) << "scenario names must be unique";
}

TEST(ScenarioMatrix, LatticeRespectsCrystalFamily) {
  // Spot-check the family constraints: cubic → a=b=c and 90°,
  // hexagonal/trigonal → a=b, γ=120°, tetragonal → a=b.
  for (const Scenario& scenario : scenarioMatrix(24)) {
    const WorkloadSpec& w = scenario.workload;
    const std::string& pg = w.pointGroup;
    if (pg == "23" || pg == "m-3" || pg == "432" || pg == "m-3m") {
      EXPECT_EQ(w.latticeA, w.latticeB) << scenario.name;
      EXPECT_EQ(w.latticeA, w.latticeC) << scenario.name;
      EXPECT_EQ(w.latticeGamma, 90.0) << scenario.name;
    } else if (pg == "3" || pg == "-3" || pg == "32" || pg == "-3m" ||
               pg == "6" || pg == "6/m") {
      EXPECT_EQ(w.latticeA, w.latticeB) << scenario.name;
      EXPECT_EQ(w.latticeGamma, 120.0) << scenario.name;
    } else if (pg == "4" || pg == "4/m" || pg == "422" || pg == "4/mmm") {
      EXPECT_EQ(w.latticeA, w.latticeB) << scenario.name;
      EXPECT_EQ(w.latticeGamma, 90.0) << scenario.name;
    }
  }
}

// ---------------------------------------------------------------------------
// Determinism.

TEST(ScenarioDeterminism, SameIndexSameScenario) {
  for (const std::size_t index : {std::size_t{0}, std::size_t{7},
                                  std::size_t{23}}) {
    const Scenario a = makeScenario(index);
    const Scenario b = makeScenario(index);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.workload.seed, b.workload.seed);
    EXPECT_EQ(a.workload.lambdaMin, b.workload.lambdaMin);
    EXPECT_EQ(a.workload.omegaStartDeg, b.workload.omegaStartDeg);
    EXPECT_EQ(a.workload.braggSigma, b.workload.braggSigma);
  }
  // Different matrix seeds give different draws (structured axes stay).
  const Scenario base = makeScenario(5);
  const Scenario reseeded = makeScenario(5, 0x0dd5eedULL);
  EXPECT_EQ(base.workload.pointGroup, reseeded.workload.pointGroup);
  EXPECT_NE(base.workload.seed, reseeded.workload.seed);
}

TEST(ScenarioDeterminism, DoubleEmissionIsByteIdentical) {
  const Scenario scenario = makeScenario(1); // banks, masked
  const fs::path dirA = freshDir("emitA");
  const fs::path dirB = freshDir("emitB");
  const EmittedScenario a = writeScenario(scenario, dirA.string());
  const EmittedScenario b = writeScenario(scenario, dirB.string());

  ASSERT_EQ(a.eventFiles.size(), b.eventFiles.size());
  for (std::size_t i = 0; i < a.eventFiles.size(); ++i) {
    EXPECT_EQ(readBytes(a.eventFiles[i]), readBytes(b.eventFiles[i]))
        << "event file " << i << " differs between emissions";
  }
  EXPECT_EQ(readBytes(a.planPath), readBytes(b.planPath));
  EXPECT_EQ(readBytes(a.manifestPath), readBytes(b.manifestPath));

  fs::remove_all(dirA);
  fs::remove_all(dirB);
}

// ---------------------------------------------------------------------------
// The hidden-ground-truth contract.

TEST(ScenarioGroundTruthTest, EmittedArtifactsVerify) {
  const Scenario scenario = makeScenario(2); // cylinder, 90% masked
  const fs::path dir = freshDir("verify");
  const EmittedScenario emitted = writeScenario(scenario, dir.string());

  // The stamp matches the generator's internal path...
  const ScenarioGroundTruth internal = computeGroundTruth(scenario);
  EXPECT_EQ(emitted.truth.eventCount, internal.eventCount);
  EXPECT_EQ(emitted.truth.totalWeight, internal.totalWeight);
  EXPECT_EQ(emitted.truth.eventsCrc, internal.eventsCrc);
  EXPECT_EQ(emitted.truth.planCrc, internal.planCrc);
  EXPECT_GT(emitted.truth.eventCount, 0u);

  // ...and re-deriving from the artifacts alone agrees.
  const ScenarioGroundTruth rederived =
      verifyEmittedScenario(emitted.manifestPath);
  EXPECT_EQ(rederived.eventCount, emitted.truth.eventCount);
  EXPECT_EQ(rederived.totalWeight, emitted.truth.totalWeight);
  EXPECT_EQ(rederived.eventsCrc, emitted.truth.eventsCrc);

  fs::remove_all(dir);
}

TEST(ScenarioGroundTruthTest, PlanTamperingIsCaught) {
  const Scenario scenario = makeScenario(0);
  const fs::path dir = freshDir("tamper_plan");
  const EmittedScenario emitted = writeScenario(scenario, dir.string());

  std::string plan = readBytes(emitted.planPath);
  // A scientist "fixing" one digit of the seed must not verify.
  const std::size_t at = plan.find("seed = ");
  ASSERT_NE(at, std::string::npos);
  plan[at + 7] = plan[at + 7] == '1' ? '2' : '1';
  writeBytes(emitted.planPath, plan);

  EXPECT_THROW(static_cast<void>(verifyEmittedScenario(emitted.manifestPath)),
               InvalidArgument);
  fs::remove_all(dir);
}

TEST(ScenarioGroundTruthTest, ManifestStampTamperingIsCaught) {
  const Scenario scenario = makeScenario(0);
  const fs::path dir = freshDir("tamper_manifest");
  const EmittedScenario emitted = writeScenario(scenario, dir.string());

  std::string manifest = readBytes(emitted.manifestPath);
  const std::string key = "event_count = ";
  const std::size_t at = manifest.find(key);
  ASSERT_NE(at, std::string::npos);
  manifest[at + key.size()] =
      manifest[at + key.size()] == '1' ? '2' : '1';
  writeBytes(emitted.manifestPath, manifest);

  EXPECT_THROW(static_cast<void>(verifyEmittedScenario(emitted.manifestPath)),
               InvalidArgument);
  fs::remove_all(dir);
}

TEST(ScenarioGroundTruthTest, EventFileCorruptionIsCaught) {
  const Scenario scenario = makeScenario(0);
  const fs::path dir = freshDir("tamper_events");
  const EmittedScenario emitted = writeScenario(scenario, dir.string());

  std::string bytes = readBytes(emitted.eventFiles[0]);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
  writeBytes(emitted.eventFiles[0], bytes);

  // Either the nxlite CRC layer rejects the block or the re-derived
  // event checksum misses the stamp; both are loud failures.
  EXPECT_ANY_THROW(
      static_cast<void>(verifyEmittedScenario(emitted.manifestPath)));
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Reduction integration: an emitted scenario reduces from its files and
// reproduces the stamp.

TEST(ScenarioReduction, EmittedPlanReducesAndReproducesEventCount) {
  for (const std::size_t index : {std::size_t{0}, std::size_t{1}}) {
    const Scenario scenario = makeScenario(index);
    const fs::path dir = freshDir("reduce" + std::to_string(index));
    const EmittedScenario emitted = writeScenario(scenario, dir.string());

    // Load through the plan (resolving the relative event_files), like
    // a service or the CLI would — not through the in-memory paths.
    const core::ReductionPlan plan =
        core::loadReductionPlan(emitted.planPath);
    ASSERT_EQ(plan.eventFiles.size(), scenario.workload.nFiles);
    for (const std::string& path : plan.eventFiles) {
      EXPECT_TRUE(fs::exists(path)) << path;
    }

    const ExperimentSetup setup(plan.workload);
    const core::ReductionPipeline pipeline(setup, plan.config);
    const core::ReductionResult result =
        pipeline.runFromRawFiles(plan.eventFiles);
    // Masked events are zero-weighted, not removed, so the processed
    // count equals the stamp for every mask fraction.
    EXPECT_EQ(result.eventsProcessed, emitted.truth.eventCount)
        << scenario.name;

    fs::remove_all(dir);
  }
}

// ---------------------------------------------------------------------------
// The scenario-matrix oracle sweep — the acceptance gate: all 24
// scenarios (21 point groups × both shapes × mask {0, 0.3, 0.9})
// against the independent scalar oracle, through a representative
// config slice (the full config × scenario cross-product lives in
// test_oracle_diff's OracleDiffScenario sweep).

class ScenarioOracleSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ScenarioOracleSweep, MatchesOracle) {
  const Scenario scenario = makeScenario(GetParam());
  const ExperimentSetup setup(scenario.workload);
  const verify::OracleResult oracle = verify::referenceReduce(setup);

  std::vector<core::ReductionConfig> configs;
  {
    core::ReductionConfig serial;
    serial.backend = Backend::Serial;
    serial.mdnorm.traversal = Traversal::Dda;
    configs.push_back(serial);
  }
  {
    core::ReductionConfig threaded;
    threaded.backend = backendAvailable(Backend::OpenMP)
                           ? Backend::OpenMP
                           : Backend::ThreadPool;
    threaded.mdnorm.traversal = Traversal::SortedKeys;
    threaded.mdnorm.simd = SimdMode::On;
    threaded.overlap.mode = core::OverlapMode::Full;
    threaded.ranks = 2;
    configs.push_back(threaded);
  }
  for (const core::ReductionConfig& config : configs) {
    const core::ReductionResult result =
        core::ReductionPipeline(setup, config).run();
    const auto check = [&](const char* what, const Histogram3D& expected,
                           const Histogram3D& actual) {
      const verify::DiffReport report = verify::compareHistograms(
          expected, actual, {},
          scenario.name + " " + what + " backend=" +
              backendName(config.backend));
      EXPECT_TRUE(report.pass) << report.summary();
    };
    check("signal", oracle.signal, result.signal);
    check("normalization", oracle.normalization, result.normalization);
    check("crossSection", oracle.crossSection, result.crossSection);
  }
}

INSTANTIATE_TEST_SUITE_P(Matrix, ScenarioOracleSweep,
                         ::testing::Range<std::size_t>(0, 24));

// ---------------------------------------------------------------------------
// Golden scenarios: the committed oracle reductions of matrix indices 0
// and 1 pin the generator's draw order — any change to the draw
// sequence, the intensity model, or the lattice-family rules shows up
// as golden drift here (and in gen_golden --check).

TEST(ScenarioGolden, CommittedGoldensMatchFreshOracle) {
  const fs::path dir =
#ifdef VATES_GOLDEN_DIR
      VATES_GOLDEN_DIR;
#else
      "tests/golden";
#endif
  const verify::Tolerance tight{1e-10, 8, 1e-12};
  for (const std::size_t index : {std::size_t{0}, std::size_t{1}}) {
    const std::string name = "golden-scenario-" + std::to_string(index);
    const fs::path path = dir / (name + ".nxl");
    ASSERT_TRUE(fs::exists(path))
        << path << " missing — regenerate with tools/gen_golden";

    Scenario scenario = makeScenario(index);
    scenario.workload.name = name; // as gen_golden stamps it
    const ExperimentSetup setup(scenario.workload);
    const verify::OracleResult oracle = verify::referenceReduce(setup);

    const ReducedData golden = loadReducedData(path.string());
    ASSERT_TRUE(golden.signal.sameShape(oracle.signal))
        << name << ": golden histogram shape drifted";
    const auto check = [&](const char* what, const Histogram3D& expected,
                           const Histogram3D& actual) {
      const verify::DiffReport report = verify::compareHistograms(
          expected, actual, tight, name + std::string(" golden ") + what);
      EXPECT_TRUE(report.pass) << report.summary();
    };
    check("signal", golden.signal, oracle.signal);
    check("normalization", golden.normalization, oracle.normalization);
    check("crossSection", golden.crossSection, oracle.crossSection);
  }
}

} // namespace
