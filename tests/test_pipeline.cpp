// Integration tests: the full Algorithm 1 pipeline across backends,
// rank counts, data sources, and against the independent Garnet-style
// baseline implementation.

#include "vates/baseline/garnet_workflow.hpp"
#include "vates/core/pipeline.hpp"
#include "vates/core/report.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <filesystem>

namespace vates::core {
namespace {

WorkloadSpec tinyBenzil() { return WorkloadSpec::benzilCorelli(0.0004); }

double worstAbsDiff(const Histogram3D& a, const Histogram3D& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double x = a.data()[i], y = b.data()[i];
    if (std::isnan(x) && std::isnan(y)) {
      continue;
    }
    worst = std::max(worst, std::fabs(x - y));
  }
  return worst;
}

std::vector<Backend> availableBackends() {
  std::vector<Backend> backends;
  for (Backend b : {Backend::Serial, Backend::OpenMP, Backend::ThreadPool,
                    Backend::DeviceSim}) {
    if (backendAvailable(b)) {
      backends.push_back(b);
    }
  }
  return backends;
}

TEST(Pipeline, ProducesNonTrivialCrossSection) {
  const ExperimentSetup setup(tinyBenzil());
  ReductionConfig config;
  config.backend = Backend::Serial;
  const ReductionPipeline pipeline(setup, config);
  const ReductionResult result = pipeline.run();

  EXPECT_GT(result.signal.totalSignal(), 0.0);
  EXPECT_GT(result.normalization.totalSignal(), 0.0);
  EXPECT_GT(result.signal.nonZeroBins(), 100u);
  EXPECT_EQ(result.eventsProcessed,
            setup.spec().nFiles * setup.spec().eventsPerFile);
  // Stage times recorded for every run.
  EXPECT_EQ(result.times.count("MDNorm"), setup.spec().nFiles);
  EXPECT_EQ(result.times.count("BinMD"), setup.spec().nFiles);
  EXPECT_EQ(result.times.count("UpdateEvents"), setup.spec().nFiles);
}

TEST(Pipeline, RankCountDoesNotChangeResult) {
  const ExperimentSetup setup(tinyBenzil());
  ReductionConfig oneRank;
  oneRank.backend = Backend::Serial;
  oneRank.ranks = 1;
  const ReductionResult reference = ReductionPipeline(setup, oneRank).run();

  for (const int ranks : {2, 3, 4}) {
    ReductionConfig config;
    config.backend = Backend::Serial;
    config.ranks = ranks;
    const ReductionResult result = ReductionPipeline(setup, config).run();
    EXPECT_LT(worstAbsDiff(result.signal, reference.signal), 1e-10)
        << ranks << " ranks (signal)";
    EXPECT_LT(worstAbsDiff(result.normalization, reference.normalization),
              1e-10)
        << ranks << " ranks (normalization)";
  }
}

TEST(Pipeline, AllBackendsAgree) {
  const ExperimentSetup setup(tinyBenzil());
  ReductionConfig serialConfig;
  serialConfig.backend = Backend::Serial;
  const ReductionResult reference =
      ReductionPipeline(setup, serialConfig).run();

  for (const Backend backend : availableBackends()) {
    ReductionConfig config;
    config.backend = backend;
    const ReductionResult result = ReductionPipeline(setup, config).run();
    EXPECT_LT(worstAbsDiff(result.signal, reference.signal), 1e-8)
        << backendName(backend);
    EXPECT_LT(worstAbsDiff(result.normalization, reference.normalization),
              1e-8)
        << backendName(backend);
  }
}

TEST(Pipeline, DeviceBackendReportsStats) {
  const ExperimentSetup setup(tinyBenzil());
  ReductionConfig config;
  config.backend = Backend::DeviceSim;
  // The estimate pre-pass only exists for the sort-based traversals.
  config.mdnorm.traversal = Traversal::SortedKeys;
  const ReductionResult result = ReductionPipeline(setup, config).run();

  EXPECT_GT(result.deviceStats.kernelLaunches, 0u);
  EXPECT_GT(result.deviceStats.bytesH2D, 0u);
  EXPECT_GT(result.deviceStats.bytesD2H, 0u);
  // The pre-pass ran and produced a plausible bound.
  EXPECT_GT(result.maxIntersectionsEstimate, 0u);
  EXPECT_LE(result.maxIntersectionsEstimate,
            setup.spec().bins[0] + setup.spec().bins[1] + setup.spec().bins[2] +
                5);
  // Device memory is balanced after the run.
  EXPECT_EQ(result.deviceStats.bytesAllocated, result.deviceStats.bytesFreed);
}

TEST(Pipeline, FilesAndMemorySourcesGiveIdenticalHistograms) {
  const ExperimentSetup setup(tinyBenzil());
  ReductionConfig config;
  config.backend = Backend::Serial;
  const ReductionPipeline pipeline(setup, config);

  const auto dir = std::filesystem::temp_directory_path() /
                   ("vates_pipeline_files_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const auto paths = pipeline.writeRunFiles(dir.string());
  EXPECT_EQ(paths.size(), setup.spec().nFiles);

  const ReductionResult fromMemory = pipeline.run();
  const ReductionResult fromFiles = pipeline.runFromFiles(paths);
  std::filesystem::remove_all(dir);

  EXPECT_LT(worstAbsDiff(fromMemory.signal, fromFiles.signal), 1e-12);
  EXPECT_LT(worstAbsDiff(fromMemory.normalization, fromFiles.normalization),
            1e-12);
}

TEST(Pipeline, CrossSectionIsSignalOverNormalization) {
  const ExperimentSetup setup(tinyBenzil());
  ReductionConfig config;
  config.backend = Backend::Serial;
  const ReductionResult result = ReductionPipeline(setup, config).run();
  for (std::size_t i = 0; i < result.crossSection.size(); i += 173) {
    const double numerator = result.signal.data()[i];
    const double denominator = result.normalization.data()[i];
    const double ratio = result.crossSection.data()[i];
    if (denominator > 1e-300) {
      EXPECT_DOUBLE_EQ(ratio, numerator / denominator);
    } else {
      EXPECT_TRUE(std::isnan(ratio));
    }
  }
}

TEST(Pipeline, MdnormVariantsAgreeEndToEnd) {
  const ExperimentSetup setup(tinyBenzil());
  ReductionConfig roi;
  roi.backend = Backend::Serial;
  const ReductionResult roiResult = ReductionPipeline(setup, roi).run();

  ReductionConfig linearStructs;
  linearStructs.backend = Backend::Serial;
  linearStructs.mdnorm.search = PlaneSearch::Linear;
  linearStructs.mdnorm.traversal = Traversal::Legacy;
  const ReductionResult mantidStyle =
      ReductionPipeline(setup, linearStructs).run();

  EXPECT_LT(worstAbsDiff(roiResult.normalization, mantidStyle.normalization),
            1e-10);

  ReductionConfig dda;
  dda.backend = Backend::Serial;
  dda.mdnorm.traversal = Traversal::Dda;
  const ReductionResult walked = ReductionPipeline(setup, dda).run();
  EXPECT_LT(worstAbsDiff(roiResult.normalization, walked.normalization),
            1e-12);
}

TEST(Pipeline, DetectorMaskCompactsTheLaunch) {
  ExperimentSetup setup(tinyBenzil());
  ReductionConfig config;
  config.backend = Backend::Serial;
  const ReductionResult unmasked = ReductionPipeline(setup, config).run();

  DetectorMask mask(setup.instrument().nDetectors());
  mask.maskRandomFraction(0.4, 7);
  ASSERT_GT(mask.maskedCount(), 0u);
  setup.setDetectorMask(mask);

  // Masked reduction drops normalization signal, and every traversal
  // mode sees the same compacted active-detector list.
  const ReductionResult legacy = [&] {
    ReductionConfig c = config;
    c.mdnorm.traversal = Traversal::Legacy;
    return ReductionPipeline(setup, c).run();
  }();
  const ReductionResult dda = [&] {
    ReductionConfig c = config;
    c.mdnorm.traversal = Traversal::Dda;
    return ReductionPipeline(setup, c).run();
  }();
  EXPECT_LT(legacy.normalization.totalSignal(),
            unmasked.normalization.totalSignal());
  EXPECT_LT(worstAbsDiff(legacy.normalization, dda.normalization), 1e-12);

  // Device path stages the active list on the device.
  if (backendAvailable(Backend::DeviceSim)) {
    ReductionConfig device = config;
    device.backend = Backend::DeviceSim;
    const ReductionResult onDevice = ReductionPipeline(setup, device).run();
    EXPECT_LT(worstAbsDiff(legacy.normalization, onDevice.normalization),
              1e-10);
  }

  // Everything masked: the MDNorm launch is skipped outright and the
  // normalization stays identically zero.
  DetectorMask all(setup.instrument().nDetectors());
  all.maskRandomFraction(1.0, 7);
  ASSERT_EQ(all.maskedCount(), all.size());
  setup.setDetectorMask(all);
  const ReductionResult none = ReductionPipeline(setup, config).run();
  EXPECT_EQ(none.normalization.totalSignal(), 0.0);
}

TEST(Pipeline, AgreesWithIndependentBaseline) {
  // The optimized pipeline and the Garnet-style baseline are separate
  // implementations of the same mathematics; their histograms must
  // match to numerical precision.
  const ExperimentSetup setup(tinyBenzil());
  ReductionConfig config;
  config.backend = Backend::Serial;
  const ReductionResult proxy = ReductionPipeline(setup, config).run();
  const baseline::GarnetResult garnet =
      baseline::GarnetWorkflow(setup).reduce();

  EXPECT_NEAR(proxy.signal.totalSignal(), garnet.signal.totalSignal(),
              1e-6 * std::max(1.0, proxy.signal.totalSignal()));
  EXPECT_LT(worstAbsDiff(proxy.signal, garnet.signal), 1e-8);
  EXPECT_LT(worstAbsDiff(proxy.normalization, garnet.normalization), 1e-8);
}

TEST(Pipeline, BaselineSubsetOfRunsMatchesPipelineSubset) {
  const ExperimentSetup setup(tinyBenzil());
  const baseline::GarnetResult twoRuns =
      baseline::GarnetWorkflow(setup).reduce(0, 2);
  EXPECT_EQ(twoRuns.times.count("MDNorm"), 2u);
  EXPECT_GT(twoRuns.signal.totalSignal(), 0.0);
  // Fewer runs → strictly less signal than the full ensemble.
  const baseline::GarnetResult allRuns =
      baseline::GarnetWorkflow(setup).reduce();
  EXPECT_LT(twoRuns.signal.totalSignal(), allRuns.signal.totalSignal());
}

TEST(Pipeline, BixbyiteWorkloadRunsEndToEnd) {
  const ExperimentSetup setup(WorkloadSpec::bixbyiteTopaz(0.0001));
  ReductionConfig config;
  config.backend = Backend::Serial;
  config.ranks = 2;
  const ReductionResult result = ReductionPipeline(setup, config).run();
  EXPECT_GT(result.signal.totalSignal(), 0.0);
  EXPECT_GT(result.normalization.nonZeroBins(), 0u);
  // Stage counts are merged with max over ranks: 22 files over 2 ranks
  // means each rank saw 11.
  EXPECT_EQ(result.times.count("MDNorm"), 11u);
}

TEST(Pipeline, RawTofModeMatchesQSampleMode) {
  // Reducing from raw TOF events through ConvertToMD must land on the
  // same histograms as the pre-converted path, within the TOF
  // round-trip tolerance.
  const ExperimentSetup setup(tinyBenzil());
  ReductionConfig qSample;
  qSample.backend = Backend::Serial;
  const ReductionResult direct = ReductionPipeline(setup, qSample).run();

  ReductionConfig rawMode = qSample;
  rawMode.loadMode = LoadMode::RawTof;
  const ReductionResult viaRaw = ReductionPipeline(setup, rawMode).run();

  // The ConvertToMD stage is recorded once per file.
  EXPECT_EQ(viaRaw.times.count("ConvertToMD"), setup.spec().nFiles);
  EXPECT_EQ(viaRaw.eventsProcessed, direct.eventsProcessed);

  // Signal mass agrees tightly; per-bin values may differ where TOF
  // rounding moves an event across a bin edge, so compare totals and
  // the bulk of the distribution.
  EXPECT_NEAR(viaRaw.signal.totalSignal(), direct.signal.totalSignal(),
              1e-6 * direct.signal.totalSignal());
  std::size_t differing = 0;
  for (std::size_t i = 0; i < direct.signal.size(); ++i) {
    if (std::fabs(direct.signal.data()[i] - viaRaw.signal.data()[i]) >
        1e-9 * std::max(1.0, std::fabs(direct.signal.data()[i]))) {
      ++differing;
    }
  }
  EXPECT_LT(differing, direct.signal.size() / 1000 + 10);
  // Normalization is geometry-only: identical in both modes.
  EXPECT_LT(worstAbsDiff(viaRaw.normalization, direct.normalization), 1e-10);
}

TEST(Pipeline, RawFilesRoundTripThroughDisk) {
  const ExperimentSetup setup(tinyBenzil());
  ReductionConfig config;
  config.backend = Backend::Serial;
  config.loadMode = LoadMode::RawTof;
  const ReductionPipeline pipeline(setup, config);

  const auto dir = std::filesystem::temp_directory_path() /
                   ("vates_pipeline_rawfiles_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const auto paths = pipeline.writeRawRunFiles(dir.string());
  EXPECT_EQ(paths.size(), setup.spec().nFiles);

  const ReductionResult fromMemory = pipeline.run();
  const ReductionResult fromFiles = pipeline.runFromRawFiles(paths);
  std::filesystem::remove_all(dir);

  EXPECT_LT(worstAbsDiff(fromMemory.signal, fromFiles.signal), 1e-12);
  EXPECT_LT(worstAbsDiff(fromMemory.normalization, fromFiles.normalization),
            1e-12);
}

TEST(Pipeline, TrackErrorsProducesConsistentSigma) {
  const ExperimentSetup setup(tinyBenzil());
  ReductionConfig config;
  config.backend = Backend::Serial;
  config.trackErrors = true;
  const ReductionResult result = ReductionPipeline(setup, config).run();

  ASSERT_TRUE(result.signalErrorSq.has_value());
  ASSERT_TRUE(result.crossSectionErrorSq.has_value());
  // The generator sets errorSq == signal (Poisson-like), so the error
  // histogram must equal the signal histogram exactly.
  EXPECT_LT(worstAbsDiff(*result.signalErrorSq, result.signal), 1e-9);
  // And per bin: sigma^2(C) = sigma^2(S) / N^2.
  for (std::size_t i = 0; i < result.signal.size(); i += 211) {
    const double n = result.normalization.data()[i];
    const double sigmaSq = result.crossSectionErrorSq->data()[i];
    if (n > 1e-300) {
      ASSERT_NEAR(sigmaSq, result.signalErrorSq->data()[i] / (n * n),
                  1e-9 * std::max(1.0, sigmaSq));
    } else {
      ASSERT_TRUE(std::isnan(sigmaSq));
    }
  }
  // Untracked runs leave the optionals empty and the cross-section
  // unchanged.
  ReductionConfig plain;
  plain.backend = Backend::Serial;
  const ReductionResult noErrors = ReductionPipeline(setup, plain).run();
  EXPECT_FALSE(noErrors.signalErrorSq.has_value());
  EXPECT_LT(worstAbsDiff(noErrors.crossSection, result.crossSection), 1e-12);
}

TEST(Pipeline, TrackErrorsWorksOnDeviceBackend) {
  const ExperimentSetup setup(tinyBenzil());
  ReductionConfig config;
  config.backend = Backend::DeviceSim;
  config.trackErrors = true;
  const ReductionResult device = ReductionPipeline(setup, config).run();
  config.backend = Backend::Serial;
  const ReductionResult serial = ReductionPipeline(setup, config).run();
  ASSERT_TRUE(device.signalErrorSq.has_value());
  EXPECT_LT(worstAbsDiff(*device.signalErrorSq, *serial.signalErrorSq), 1e-8);
}

TEST(Pipeline, ConfigSummaryNamesEveryKnob) {
  ReductionConfig config;
  config.backend = Backend::Serial;
  config.loadMode = LoadMode::RawTof;
  config.mdnorm.search = PlaneSearch::Linear;
  config.mdnorm.traversal = Traversal::Legacy;
  const std::string summary = config.summary();
  EXPECT_NE(summary.find("serial"), std::string::npos);
  EXPECT_NE(summary.find("raw-tof"), std::string::npos);
  EXPECT_NE(summary.find("linear"), std::string::npos);
  EXPECT_NE(summary.find("legacy"), std::string::npos);
}

TEST(Pipeline, InvalidConfigThrows) {
  const ExperimentSetup setup(tinyBenzil());
  ReductionConfig config;
  config.ranks = 0;
  EXPECT_THROW(ReductionPipeline(setup, config), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Hardware presets

TEST(HardwarePreset, TableIPresetsResolve) {
  // The Table I systems plus the local fallback.
  const HardwarePreset defiant = HardwarePreset::byName("defiant");
  EXPECT_EQ(defiant.ranks, 8);
  EXPECT_NE(defiant.description.find("EPYC 7662"), std::string::npos);
  EXPECT_NE(defiant.description.find("MI100"), std::string::npos);

  const HardwarePreset milan = HardwarePreset::byName("milan0");
  EXPECT_NE(milan.description.find("EPYC 7513"), std::string::npos);
  EXPECT_NE(milan.description.find("A100"), std::string::npos);
  // The paper found the A100 markedly better; the presets encode that
  // as a cheaper device model than Defiant's MI100.
  EXPECT_LT(milan.device.jitCostMs, defiant.device.jitCostMs);

  const HardwarePreset bl12 = HardwarePreset::byName("bl12");
  EXPECT_EQ(bl12.ranks, 1);

  EXPECT_EQ(HardwarePreset::byName("MILAN").name, "milan0");
  EXPECT_EQ(HardwarePreset::byName("sns").name, "bl12");
  EXPECT_THROW(HardwarePreset::byName("frontier"), InvalidArgument);
}

TEST(HardwarePreset, OverviewMentionsConfiguration) {
  const std::string overview = HardwarePreset::defiant().systemsOverview();
  EXPECT_NE(overview.find("defiant"), std::string::npos);
  EXPECT_NE(overview.find("ranks=8"), std::string::npos);
  EXPECT_NE(overview.find("jit="), std::string::npos);
}

TEST(ReductionConfigFromPreset, CarriesRankLayout) {
  const ReductionConfig config = ReductionConfig::fromPreset(
      HardwarePreset::milan0(), Backend::DeviceSim);
  EXPECT_EQ(config.backend, Backend::DeviceSim);
  EXPECT_EQ(config.ranks, 8);
}

// ---------------------------------------------------------------------------
// Report rendering

TEST(Report, WctTableRendersRowsAndColumns) {
  const ExperimentSetup setup(tinyBenzil());
  ReductionConfig config;
  config.backend = Backend::Serial;
  const ReductionResult result = ReductionPipeline(setup, config).run();

  WctTable table("Test table");
  table.addColumn("C++ Proxy (CPU)", result);
  const std::string rendered = table.render();
  EXPECT_NE(rendered.find("UpdateEvents"), std::string::npos);
  EXPECT_NE(rendered.find("MDNorm + BinMD"), std::string::npos);
  EXPECT_NE(rendered.find("Total"), std::string::npos);
  EXPECT_NE(rendered.find("C++ Proxy (CPU)"), std::string::npos);
}

TEST(Report, RatioAndSpeedupLine) {
  StageTimes fast, slow;
  fast.add("MDNorm", 1.0);
  slow.add("MDNorm", 10.0);
  WctTable table("t");
  table.addColumn("fast", fast);
  table.addColumn("slow", slow);
  EXPECT_DOUBLE_EQ(table.ratio(1, 0, "MDNorm"), 10.0);
  const std::string line = speedupLine("MDNorm", "fast", 1.0, "slow", 10.0);
  EXPECT_NE(line.find("10.0x"), std::string::npos);
  EXPECT_NE(line.find("faster"), std::string::npos);
}

TEST(Report, WallRowOnlyWithEndToEndTiming) {
  StageTimes times;
  times.add("MDNorm", 1.0);
  WctTable stagesOnly("t");
  stagesOnly.addColumn("baseline", times);
  EXPECT_EQ(stagesOnly.render().find("Wall"), std::string::npos);

  const ExperimentSetup setup(tinyBenzil());
  ReductionConfig config;
  config.backend = Backend::Serial;
  const ReductionResult result = ReductionPipeline(setup, config).run();
  WctTable withWall("t");
  withWall.addColumn("pipeline", result);
  EXPECT_NE(withWall.render().find("Wall"), std::string::npos);
}

// ---------------------------------------------------------------------------
// The overlapped execution engine
// ---------------------------------------------------------------------------

bool bitwiseEqual(const Histogram3D& a, const Histogram3D& b) {
  if (a.size() != b.size()) {
    return false;
  }
  return std::memcmp(a.data().data(), b.data().data(),
                     a.size() * sizeof(double)) == 0;
}

ReductionResult reduceWith(const ExperimentSetup& setup, Backend backend,
                           OverlapMode mode, AccumulateStrategy strategy,
                           std::size_t depth = 1) {
  ReductionConfig config;
  config.backend = backend;
  config.overlap.mode = mode;
  config.overlap.prefetchDepth = depth;
  config.mdnorm.accumulate.strategy = strategy;
  config.binmdAccumulate.strategy = strategy;
  return ReductionPipeline(setup, config).run();
}

TEST(Overlap, MatchesSequentialAcrossBackendsAndStrategies) {
  // The acceptance bar for the overlap engine: for every backend and
  // every accumulation strategy, the overlapped paths reproduce the
  // sequential result.  Where the sequential path is itself bitwise
  // reproducible (run-to-run), the overlapped result must be
  // bit-identical — overlap must introduce no new nondeterminism; the
  // remaining combinations (e.g. Atomic under real concurrency, whose
  // float adds commute nondeterministically run-to-run already) are
  // held to a tight tolerance.
  const ExperimentSetup setup(tinyBenzil());
  for (const Backend backend : availableBackends()) {
    for (const AccumulateStrategy strategy :
         {AccumulateStrategy::Auto, AccumulateStrategy::Atomic,
          AccumulateStrategy::Privatized, AccumulateStrategy::Tiled}) {
      SCOPED_TRACE(std::string(backendName(backend)) + " / " +
                   accumulateStrategyName(strategy));
      const ReductionResult sequentialA =
          reduceWith(setup, backend, OverlapMode::Off, strategy);
      const ReductionResult sequentialB =
          reduceWith(setup, backend, OverlapMode::Off, strategy);
      const bool reproducible =
          bitwiseEqual(sequentialA.signal, sequentialB.signal) &&
          bitwiseEqual(sequentialA.normalization, sequentialB.normalization);

      for (const OverlapMode mode :
           {OverlapMode::Prefetch, OverlapMode::Full}) {
        SCOPED_TRACE(overlapModeName(mode));
        const ReductionResult overlapped =
            reduceWith(setup, backend, mode, strategy);
        if (reproducible) {
          EXPECT_TRUE(bitwiseEqual(overlapped.signal, sequentialA.signal));
          EXPECT_TRUE(bitwiseEqual(overlapped.normalization,
                                   sequentialA.normalization));
        }
        EXPECT_LT(worstAbsDiff(overlapped.signal, sequentialA.signal), 1e-10);
        EXPECT_LT(worstAbsDiff(overlapped.normalization,
                               sequentialA.normalization),
                  1e-10);
        EXPECT_EQ(overlapped.eventsProcessed, sequentialA.eventsProcessed);
      }
    }
  }
}

TEST(Overlap, SerialBackendIsAlwaysBitIdentical) {
  // Serial accumulates in loop order on every path, so here the bitwise
  // requirement is unconditional — across modes, strategies, and
  // depths.  Rank count is held fixed: the rank split changes the
  // (already deterministic) cross-rank summation order, which is a
  // different degree of freedom than overlap.
  const ExperimentSetup setup(tinyBenzil());
  ReductionConfig sequentialConfig;
  sequentialConfig.backend = Backend::Serial;
  sequentialConfig.ranks = 2;
  const ReductionResult sequential =
      ReductionPipeline(setup, sequentialConfig).run();
  for (const OverlapMode mode : {OverlapMode::Prefetch, OverlapMode::Full}) {
    for (const std::size_t depth : {std::size_t{1}, std::size_t{3}}) {
      ReductionConfig config = sequentialConfig;
      config.overlap.mode = mode;
      config.overlap.prefetchDepth = depth;
      const ReductionResult overlapped =
          ReductionPipeline(setup, config).run();
      SCOPED_TRACE(std::string(overlapModeName(mode)) + " depth " +
                   std::to_string(depth));
      EXPECT_TRUE(bitwiseEqual(overlapped.signal, sequential.signal));
      EXPECT_TRUE(
          bitwiseEqual(overlapped.normalization, sequential.normalization));
    }
  }
}

TEST(Overlap, TrackErrorsMatchesSequential) {
  const ExperimentSetup setup(tinyBenzil());
  ReductionConfig config;
  config.backend = Backend::Serial;
  config.trackErrors = true;
  const ReductionResult sequential = ReductionPipeline(setup, config).run();
  config.overlap.mode = OverlapMode::Full;
  const ReductionResult overlapped = ReductionPipeline(setup, config).run();
  ASSERT_TRUE(sequential.signalErrorSq.has_value());
  ASSERT_TRUE(overlapped.signalErrorSq.has_value());
  EXPECT_TRUE(bitwiseEqual(*overlapped.signalErrorSq,
                           *sequential.signalErrorSq));
  EXPECT_TRUE(bitwiseEqual(overlapped.signal, sequential.signal));
}

TEST(Overlap, OverlappedRunsFromFilesMatchSequential) {
  // The mode the engine exists for: prefetching real file loads.
  const ExperimentSetup setup(tinyBenzil());
  const std::filesystem::path directory =
      std::filesystem::temp_directory_path() / "vates_overlap_test";
  std::filesystem::create_directories(directory);
  ReductionConfig config;
  config.backend = Backend::Serial;
  const ReductionPipeline pipeline(setup, config);
  const std::vector<std::string> paths =
      pipeline.writeRunFiles(directory.string());

  const ReductionResult sequential = pipeline.runFromFiles(paths);
  config.overlap.mode = OverlapMode::Full;
  config.overlap.prefetchDepth = 2;
  const ReductionResult overlapped =
      ReductionPipeline(setup, config).runFromFiles(paths);
  EXPECT_TRUE(bitwiseEqual(overlapped.signal, sequential.signal));
  EXPECT_TRUE(
      bitwiseEqual(overlapped.normalization, sequential.normalization));
  // Load timings recorded on the prefetch thread still reach the report.
  EXPECT_EQ(overlapped.times.count("UpdateEvents"), setup.spec().nFiles);
  EXPECT_EQ(overlapped.times.count("MDNorm"), setup.spec().nFiles);
  EXPECT_EQ(overlapped.times.count("BinMD"), setup.spec().nFiles);
  std::filesystem::remove_all(directory);
}

TEST(Overlap, ReportsWallAndSummedTimes) {
  const ExperimentSetup setup(tinyBenzil());
  ReductionConfig config;
  config.backend = Backend::Serial;
  config.ranks = 2;
  config.overlap.mode = OverlapMode::Full;
  const ReductionResult result = ReductionPipeline(setup, config).run();
  EXPECT_GT(result.wallSeconds, 0.0);
  // Summed times aggregate every rank; critical path takes the max —
  // with 2 ranks the sum must dominate.
  EXPECT_GE(result.timesSummed.grandTotal(), result.times.grandTotal());
  EXPECT_EQ(result.timesSummed.count("MDNorm"), setup.spec().nFiles);
}

TEST(Overlap, DevicePrePassRunsOncePerReduction) {
  if (!backendAvailable(Backend::DeviceSim)) {
    GTEST_SKIP();
  }
  const ExperimentSetup setup(tinyBenzil());
  ReductionConfig config;
  config.backend = Backend::DeviceSim;
  config.deviceIntersectionPrePass = true;
  // The pre-pass sizes scratch for the sort-based traversals; the
  // default dda walk needs no capacity and skips it outright.
  config.mdnorm.traversal = Traversal::SortedKeys;
  const ReductionPipeline pipeline(setup, config);
  ASSERT_GT(setup.spec().nFiles, 1u);

  const ReductionResult first = pipeline.run();
  EXPECT_GT(first.maxIntersectionsEstimate, 0u);
  // The (grid, geometry) cache: one pre-pass for the whole reduction,
  // not one per file.
  EXPECT_EQ(first.times.count("MDNorm pre-pass"), 1u);

  // A fresh reduction through the same pipeline measures afresh.
  const ReductionResult second = pipeline.run();
  EXPECT_EQ(second.times.count("MDNorm pre-pass"), 1u);
  EXPECT_EQ(second.maxIntersectionsEstimate, first.maxIntersectionsEstimate);
}

TEST(Overlap, EnvOverrideSelectsMode) {
  const ExperimentSetup setup(tinyBenzil());
  ReductionConfig config;
  config.backend = Backend::Serial;

  ::setenv("VATES_OVERLAP", "full", 1);
  EXPECT_EQ(ReductionPipeline(setup, config).config().overlap.mode,
            OverlapMode::Full);
  ::setenv("VATES_OVERLAP", "not-a-mode", 1);
  EXPECT_EQ(ReductionPipeline(setup, config).config().overlap.mode,
            OverlapMode::Off);
  ::unsetenv("VATES_OVERLAP");
  EXPECT_EQ(ReductionPipeline(setup, config).config().overlap.mode,
            OverlapMode::Off);
}

TEST(Traversal, EnvOverrideSelectsMode) {
  const ExperimentSetup setup(tinyBenzil());
  ReductionConfig config;
  config.backend = Backend::Serial;

  ::setenv("VATES_TRAVERSAL", "dda", 1);
  EXPECT_EQ(ReductionPipeline(setup, config).config().mdnorm.traversal,
            Traversal::Dda);
  ::setenv("VATES_TRAVERSAL", "legacy", 1);
  EXPECT_EQ(ReductionPipeline(setup, config).config().mdnorm.traversal,
            Traversal::Legacy);
  // Bad values are ignored with a warning; the configured mode stands.
  ::setenv("VATES_TRAVERSAL", "not-a-mode", 1);
  EXPECT_EQ(ReductionPipeline(setup, config).config().mdnorm.traversal,
            Traversal::Dda);
  ::unsetenv("VATES_TRAVERSAL");
  EXPECT_EQ(ReductionPipeline(setup, config).config().mdnorm.traversal,
            Traversal::Dda);
}

TEST(Overlap, ParseAndNameRoundTrip) {
  EXPECT_EQ(parseOverlapMode("off"), OverlapMode::Off);
  EXPECT_EQ(parseOverlapMode("  Prefetch "), OverlapMode::Prefetch);
  EXPECT_EQ(parseOverlapMode("concurrent"), OverlapMode::Full);
  EXPECT_THROW(parseOverlapMode("bogus"), InvalidArgument);
  for (const OverlapMode mode :
       {OverlapMode::Off, OverlapMode::Prefetch, OverlapMode::Full}) {
    EXPECT_EQ(parseOverlapMode(overlapModeName(mode)), mode);
  }
  ReductionConfig config;
  config.overlap.mode = OverlapMode::Prefetch;
  EXPECT_NE(config.summary().find("overlap=prefetch"), std::string::npos);
}

} // namespace
} // namespace vates::core
