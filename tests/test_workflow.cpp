// Tests for the workflow substrate (task graph + scheduler) and the
// task-graph formulation of Algorithm 1.

#include "vates/core/workflow_reduction.hpp"
#include "vates/support/error.hpp"
#include "vates/workflow/scheduler.hpp"
#include "vates/workflow/task_graph.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <set>
#include <thread>

namespace vates::wf {
namespace {

TEST(TaskGraph, TopologicalOrderRespectsDependencies) {
  TaskGraph graph;
  const TaskId a = graph.addTask("a", [] {});
  const TaskId b = graph.addTask("b", [] {});
  const TaskId c = graph.addTask("c", [] {});
  const TaskId d = graph.addTask("d", [] {});
  graph.addDependency(a, b);
  graph.addDependency(a, c);
  graph.addDependency(b, d);
  graph.addDependency(c, d);

  const auto order = graph.topologicalOrder();
  ASSERT_EQ(order.size(), 4u);
  auto position = [&](TaskId id) {
    return std::find(order.begin(), order.end(), id) - order.begin();
  };
  EXPECT_LT(position(a), position(b));
  EXPECT_LT(position(a), position(c));
  EXPECT_LT(position(b), position(d));
  EXPECT_LT(position(c), position(d));
}

TEST(TaskGraph, CycleDetectedAndNamed) {
  TaskGraph graph;
  const TaskId a = graph.addTask("alpha", [] {});
  const TaskId b = graph.addTask("beta", [] {});
  const TaskId c = graph.addTask("gamma", [] {});
  graph.addDependency(a, b);
  graph.addDependency(b, c);
  graph.addDependency(c, a);
  try {
    graph.topologicalOrder();
    FAIL() << "cycle not detected";
  } catch (const InvalidArgument& error) {
    EXPECT_NE(std::string(error.what()).find("cycle"), std::string::npos);
  }
}

TEST(TaskGraph, SelfDependencyRejected) {
  TaskGraph graph;
  const TaskId a = graph.addTask("a", [] {});
  EXPECT_THROW(graph.addDependency(a, a), InvalidArgument);
}

TEST(TaskGraph, DuplicateEdgesIgnored) {
  TaskGraph graph;
  const TaskId a = graph.addTask("a", [] {});
  const TaskId b = graph.addTask("b", [] {});
  graph.addDependency(a, b);
  graph.addDependency(a, b);
  EXPECT_EQ(graph.successors(a).size(), 1u);
  EXPECT_EQ(graph.indegrees()[b], 1u);
}

TEST(Scheduler, RunsEveryTaskExactlyOnce) {
  TaskGraph graph;
  std::vector<std::atomic<int>> counts(50);
  for (int i = 0; i < 50; ++i) {
    graph.addTask("t" + std::to_string(i), [&counts, i] { counts[i]++; });
  }
  const Scheduler scheduler(4);
  const WorkflowReport report = scheduler.run(graph);
  for (auto& count : counts) {
    EXPECT_EQ(count.load(), 1);
  }
  EXPECT_EQ(report.timings.size(), 50u);
  EXPECT_GT(report.makespan, 0.0);
}

TEST(Scheduler, NeverStartsTaskBeforeItsDependencies) {
  TaskGraph graph;
  std::atomic<int> stage{0};
  // Chain of 20 tasks; each checks the previous one bumped the stage.
  TaskId previous = graph.addTask("t0", [&] { stage = 1; });
  for (int i = 1; i < 20; ++i) {
    const TaskId current = graph.addTask("t" + std::to_string(i), [&, i] {
      EXPECT_EQ(stage.load(), i);
      stage = i + 1;
    });
    graph.addDependency(previous, current);
    previous = current;
  }
  Scheduler(4).run(graph);
  EXPECT_EQ(stage.load(), 20);
}

TEST(Scheduler, DiamondJoinWaitsForAllBranches) {
  TaskGraph graph;
  std::atomic<int> branchesDone{0};
  const TaskId source = graph.addTask("source", [] {});
  std::vector<TaskId> branches;
  for (int i = 0; i < 8; ++i) {
    const TaskId branch = graph.addTask("branch" + std::to_string(i),
                                        [&] { branchesDone++; });
    graph.addDependency(source, branch);
    branches.push_back(branch);
  }
  const TaskId sink = graph.addTask("sink", [&] {
    EXPECT_EQ(branchesDone.load(), 8);
  });
  for (const TaskId branch : branches) {
    graph.addDependency(branch, sink);
  }
  Scheduler(3).run(graph);
}

TEST(Scheduler, FailFastPropagatesFirstError) {
  TaskGraph graph;
  std::atomic<int> executed{0};
  const TaskId boom = graph.addTask("boom", [] {
    throw IOError("disk on fire");
  });
  // A long chain behind the failing task must not run.
  TaskId previous = boom;
  for (int i = 0; i < 5; ++i) {
    const TaskId next =
        graph.addTask("after" + std::to_string(i), [&] { executed++; });
    graph.addDependency(previous, next);
    previous = next;
  }
  EXPECT_THROW(Scheduler(2).run(graph), IOError);
  EXPECT_EQ(executed.load(), 0);
}

TEST(Scheduler, EmptyGraphIsTrivial) {
  const TaskGraph graph;
  const WorkflowReport report = Scheduler(2).run(graph);
  EXPECT_TRUE(report.timings.empty());
}

TEST(Scheduler, SingleWorkerMatchesTopologicalSemantics) {
  TaskGraph graph;
  std::vector<int> order;
  const TaskId a = graph.addTask("a", [&] { order.push_back(0); });
  const TaskId b = graph.addTask("b", [&] { order.push_back(1); });
  graph.addDependency(a, b);
  Scheduler(1).run(graph);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
}

TEST(Scheduler, RunSiblingsExecutesEveryTaskConcurrently) {
  std::atomic<int> executed{0};
  std::atomic<int> inFlight{0};
  std::atomic<int> peak{0};
  const auto task = [&] {
    const int now = ++inFlight;
    int expected = peak.load();
    while (now > expected && !peak.compare_exchange_weak(expected, now)) {
    }
    // Linger so the sibling has a chance to be observed in flight.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    --inFlight;
    ++executed;
  };

  const Scheduler scheduler(2);
  const WorkflowReport report =
      scheduler.runSiblings({{"MDNorm", task}, {"BinMD", task}});
  EXPECT_EQ(executed.load(), 2);
  EXPECT_EQ(report.timings.size(), 2u);
  // Two workers, two independent tasks: they must have overlapped.
  EXPECT_EQ(peak.load(), 2);
}

TEST(Scheduler, RunSiblingsFailFast) {
  std::atomic<int> executed{0};
  const Scheduler scheduler(1);
  EXPECT_THROW(
      scheduler.runSiblings(
          {{"boom", [] { throw InvalidArgument("sibling failed"); }},
           {"after", [&] { ++executed; }}}),
      InvalidArgument);
  // One worker + fail-fast: the second sibling never starts.
  EXPECT_EQ(executed.load(), 0);
}

TEST(Scheduler, RunSiblingsEmptyListIsTrivial) {
  const Scheduler scheduler(2);
  const WorkflowReport report = scheduler.runSiblings({});
  EXPECT_TRUE(report.timings.empty());
}

TEST(WorkflowReport, TableAndSpeedup) {
  WorkflowReport report;
  report.timings = {TaskTiming{"load", 1.0, 0, 0.0},
                    TaskTiming{"reduce", 1.0, 1, 0.1}};
  report.makespan = 1.1;
  EXPECT_DOUBLE_EQ(report.totalWork(), 2.0);
  EXPECT_NEAR(report.speedup(), 2.0 / 1.1, 1e-12);
  const std::string table = report.table("Schedule");
  EXPECT_NE(table.find("load"), std::string::npos);
  EXPECT_NE(table.find("makespan"), std::string::npos);
}

} // namespace
} // namespace vates::wf

namespace vates::core {
namespace {

double worstAbsDiff(const Histogram3D& a, const Histogram3D& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double x = a.data()[i], y = b.data()[i];
    if (std::isnan(x) && std::isnan(y)) {
      continue;
    }
    worst = std::max(worst, std::fabs(x - y));
  }
  return worst;
}

TEST(WorkflowReduction, MatchesPipelineResult) {
  const ExperimentSetup setup(WorkloadSpec::benzilCorelli(0.0004));
  ReductionConfig config;
  config.backend = Backend::Serial;
  const ReductionResult pipeline = ReductionPipeline(setup, config).run();

  for (const unsigned workers : {1u, 4u}) {
    const WorkflowReductionResult workflow =
        runWorkflowReduction(setup, config, workers);
    EXPECT_LT(worstAbsDiff(workflow.signal, pipeline.signal), 1e-9)
        << workers << " workers";
    EXPECT_LT(worstAbsDiff(workflow.normalization, pipeline.normalization),
              1e-9);
    EXPECT_LT(worstAbsDiff(workflow.crossSection, pipeline.crossSection),
              1e-9);
    // One load, one mdnorm, one binmd per file plus the divide.
    EXPECT_EQ(workflow.report.timings.size(),
              3 * setup.spec().nFiles + 1);
  }
}

TEST(WorkflowReduction, RawTofModeWorks) {
  const ExperimentSetup setup(WorkloadSpec::benzilCorelli(0.0004));
  ReductionConfig config;
  config.backend = Backend::Serial;
  config.loadMode = LoadMode::RawTof;
  const WorkflowReductionResult viaRaw =
      runWorkflowReduction(setup, config, 2);
  config.loadMode = LoadMode::QSample;
  const WorkflowReductionResult direct =
      runWorkflowReduction(setup, config, 2);
  EXPECT_NEAR(viaRaw.signal.totalSignal(), direct.signal.totalSignal(),
              1e-6 * direct.signal.totalSignal());
  EXPECT_LT(worstAbsDiff(viaRaw.normalization, direct.normalization), 1e-10);
}

TEST(WorkflowReduction, DivideRunsLast) {
  const ExperimentSetup setup(WorkloadSpec::benzilCorelli(0.0004));
  ReductionConfig config;
  config.backend = Backend::Serial;
  const WorkflowReductionResult result =
      runWorkflowReduction(setup, config, 3);
  ASSERT_FALSE(result.report.timings.empty());
  EXPECT_EQ(result.report.timings.back().name, "cross_section");
}

} // namespace
} // namespace vates::core
