// Tests for the portable SIMD layer (support/simd.hpp), the SoA batch
// helpers (kernels/simd_batch.hpp), the SIMD trajectory walk, and the
// cache-blocked deposit path — all pinned against their scalar
// counterparts *bitwise*, which is the layer's load-bearing contract:
// the reference oracle (test_oracle_diff.cpp) only stays meaningful if
// the vector paths reproduce the scalar arithmetic bit for bit.
//
// In a default build simd::kWidth is 1 (no arch flags) and these tests
// pin that the "vector" code paths degenerate to the scalar
// expressions; under -DVATES_NATIVE=ON (AVX2/NEON) the same assertions
// pin true lane parity.

#include "vates/flux/flux_spectrum.hpp"
#include "vates/histogram/grid_accumulator.hpp"
#include "vates/histogram/histogram3d.hpp"
#include "vates/kernels/binmd.hpp"
#include "vates/kernels/mdnorm.hpp"
#include "vates/kernels/simd_batch.hpp"
#include "vates/kernels/trajectory_walk.hpp"
#include "vates/support/error.hpp"
#include "vates/support/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace vates {
namespace {

std::uint64_t bits(double x) {
  std::uint64_t u = 0;
  std::memcpy(&u, &x, sizeof(u));
  return u;
}

/// Uniform index in [0, n) from the repo's Xoshiro (which only exposes
/// uniform doubles).
std::size_t randomIndex(Xoshiro256& rng, std::size_t n) {
  return static_cast<std::size_t>(rng.uniform(0.0, static_cast<double>(n))) %
         n;
}

void expectBitwiseEqual(const Histogram3D& a, const Histogram3D& b,
                        const char* what) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(bits(a.data()[i]), bits(b.data()[i]))
        << what << ": bin " << i << " differs: " << a.data()[i] << " vs "
        << b.data()[i];
  }
}

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

// ---------------------------------------------------------------------------
// SimdMode parsing / naming / policy

TEST(SimdMode, NamesRoundTripThroughParse) {
  for (const SimdMode mode :
       {SimdMode::Auto, SimdMode::Off, SimdMode::On}) {
    EXPECT_EQ(parseSimdMode(simdModeName(mode)), mode);
  }
  EXPECT_STREQ(simdModeName(SimdMode::Auto), "auto");
  EXPECT_STREQ(simdModeName(SimdMode::Off), "off");
  EXPECT_STREQ(simdModeName(SimdMode::On), "on");
}

TEST(SimdMode, ParseAcceptsAliasesCaseAndWhitespace) {
  EXPECT_EQ(parseSimdMode("scalar"), SimdMode::Off);
  EXPECT_EQ(parseSimdMode("vector"), SimdMode::On);
  EXPECT_EQ(parseSimdMode("simd"), SimdMode::On);
  EXPECT_EQ(parseSimdMode("  ON "), SimdMode::On);
  EXPECT_EQ(parseSimdMode("Auto"), SimdMode::Auto);
}

TEST(SimdMode, ParseRejectsUnknownNames) {
  EXPECT_THROW(parseSimdMode("turbo"), InvalidArgument);
  EXPECT_THROW(parseSimdMode(""), InvalidArgument);
}

TEST(SimdMode, UseVectorPolicy) {
  const Backend all[] = {Backend::Serial, Backend::OpenMP,
                         Backend::ThreadPool, Backend::DeviceSim};
  for (const Backend backend : all) {
    EXPECT_FALSE(simdUseVector(SimdMode::Off, backend));
    EXPECT_TRUE(simdUseVector(SimdMode::On, backend));
  }
  // Auto: vector on the CPU backends iff the build has wide lanes;
  // never on DeviceSim (one work item per simulated SIMT lane already).
  const bool wide = simd::kWidth > 1;
  EXPECT_EQ(simdUseVector(SimdMode::Auto, Backend::Serial), wide);
  EXPECT_EQ(simdUseVector(SimdMode::Auto, Backend::OpenMP), wide);
  EXPECT_EQ(simdUseVector(SimdMode::Auto, Backend::ThreadPool), wide);
  EXPECT_FALSE(simdUseVector(SimdMode::Auto, Backend::DeviceSim));
}

TEST(SimdIsa, NameMatchesWidth) {
  const std::string isa = simd::isaName();
  if (isa == "avx2") {
    EXPECT_EQ(simd::kWidth, 4u);
  } else if (isa == "neon") {
    EXPECT_EQ(simd::kWidth, 2u);
  } else {
    EXPECT_EQ(isa, "scalar");
    EXPECT_EQ(simd::kWidth, 1u);
  }
}

// ---------------------------------------------------------------------------
// Lane-level bit identity of the f64v primitives

/// A pool of adversarial doubles: specials, signed zeros, denormals,
/// exact powers of two, and values that round differently under FMA.
std::vector<double> specialPool() {
  return {0.0,    -0.0,   1.0,      -1.0,    0.5,   1e300,
          1e-300, kNan,   kInf,     -kInf,   1.5,   3.0,
          1e16,   1e16 + 2.0, 0x1p-1040, -0x1p-1040, 7.25, -123.625};
}

TEST(SimdLanes, ArithmeticMatchesScalarBitwise) {
  const std::vector<double> pool = specialPool();
  Xoshiro256 rng(0x51D0u);
  for (int trial = 0; trial < 200; ++trial) {
    double a[simd::kWidth];
    double b[simd::kWidth];
    for (std::size_t lane = 0; lane < simd::kWidth; ++lane) {
      a[lane] = trial < 100 ? pool[randomIndex(rng, pool.size())]
                            : rng.uniform(-1e6, 1e6);
      b[lane] = trial < 100 ? pool[randomIndex(rng, pool.size())]
                            : rng.uniform(-1e6, 1e6);
    }
    const simd::f64v av = simd::f64v::load(a);
    const simd::f64v bv = simd::f64v::load(b);
    double sum[simd::kWidth], diff[simd::kWidth], prod[simd::kWidth];
    double mn[simd::kWidth], mx[simd::kWidth], fl[simd::kWidth];
    (av + bv).store(sum);
    (av - bv).store(diff);
    (av * bv).store(prod);
    simd::minTernary(av, bv).store(mn);
    simd::maxTernary(av, bv).store(mx);
    simd::floor(av).store(fl);
    const unsigned lt = simd::laneBits(simd::cmpLT(av, bv));
    const unsigned le = simd::laneBits(simd::cmpLE(av, bv));
    const unsigned ge = simd::laneBits(simd::cmpGE(av, bv));
    for (std::size_t lane = 0; lane < simd::kWidth; ++lane) {
      ASSERT_EQ(bits(sum[lane]), bits(a[lane] + b[lane]));
      ASSERT_EQ(bits(diff[lane]), bits(a[lane] - b[lane]));
      ASSERT_EQ(bits(prod[lane]), bits(a[lane] * b[lane]));
      // min/max must equal the scalar ternary including its NaN
      // behavior (NaN compares false → second operand).
      ASSERT_EQ(bits(mn[lane]),
                bits(a[lane] < b[lane] ? a[lane] : b[lane]));
      ASSERT_EQ(bits(mx[lane]),
                bits(a[lane] < b[lane] ? b[lane] : a[lane]));
      ASSERT_EQ(bits(fl[lane]), bits(std::floor(a[lane])));
      const unsigned bit = 1u << lane;
      ASSERT_EQ((lt & bit) != 0, a[lane] < b[lane]);
      ASSERT_EQ((le & bit) != 0, a[lane] <= b[lane]);
      ASSERT_EQ((ge & bit) != 0, a[lane] >= b[lane]);
    }
    // reduceMin must equal the scalar `<` chain over the lanes (the
    // walk's next-crossing search).  The contract holds when equal
    // values share bits — the walk's inputs are strictly positive
    // crossings and +inf — so lanes mixing +0.0 and −0.0 (equal yet
    // bitwise distinct, making the scalar chain order-dependent) are
    // outside it, as are NaNs.
    bool outsideContract = false;
    bool hasPosZero = false;
    bool hasNegZero = false;
    double chain = a[0];
    for (std::size_t lane = 1; lane < simd::kWidth; ++lane) {
      if (a[lane] < chain) {
        chain = a[lane];
      }
    }
    for (std::size_t lane = 0; lane < simd::kWidth; ++lane) {
      outsideContract = outsideContract || std::isnan(a[lane]);
      if (a[lane] == 0.0) {
        (std::signbit(a[lane]) ? hasNegZero : hasPosZero) = true;
      }
    }
    if (!outsideContract && !(hasPosZero && hasNegZero)) {
      ASSERT_EQ(bits(simd::reduceMin(av)), bits(chain));
    }
  }
}

TEST(SimdLanes, SelectAndLaneAccess) {
  double a[simd::kWidth];
  double b[simd::kWidth];
  for (std::size_t lane = 0; lane < simd::kWidth; ++lane) {
    a[lane] = static_cast<double>(lane) + 0.25;
    b[lane] = -static_cast<double>(lane) - 4.5;
  }
  const simd::f64v av = simd::f64v::load(a);
  const simd::f64v bv = simd::f64v::load(b);
  const simd::f64v picked = simd::select(simd::cmpLT(bv, av), bv, av);
  for (std::size_t lane = 0; lane < simd::kWidth; ++lane) {
    EXPECT_EQ(picked.lane(lane), b[lane]); // b < a everywhere
    EXPECT_EQ(av.lane(lane), a[lane]);
  }
  EXPECT_TRUE(simd::allLanes(simd::cmpLT(bv, av)));
  EXPECT_FALSE(simd::anyLane(simd::cmpLT(av, bv)));
  EXPECT_EQ(simd::laneBits(simd::cmpLT(av, bv)), 0u);
}

// ---------------------------------------------------------------------------
// Flux band-integral batch: bitwise vs FluxTableView::integrated

TEST(SimdBatch, FluxIntegratedMatchesScalarBitwise) {
  const FluxSpectrum flux =
      FluxSpectrum::moderatorMaxwellian(1.0, 10.0, 64, 2.0, 5.0);
  const FluxTableView view = flux.view();

  Xoshiro256 rng(0xF1u);
  std::vector<double> k;
  // Boundaries and near-boundaries first, then random in-band and
  // out-of-band momenta.
  k.push_back(view.kMin);
  k.push_back(view.kMax);
  k.push_back(std::nextafter(view.kMin, 0.0));
  k.push_back(std::nextafter(view.kMin, view.kMax));
  k.push_back(std::nextafter(view.kMax, view.kMin));
  k.push_back(std::nextafter(view.kMax, 1e30));
  k.push_back(0.0);
  k.push_back(1e12);
  while (k.size() < 4 * simd::kWidth + 9) {
    k.push_back(rng.uniform(0.5, 11.0));
  }

  // Every prefix length: exercises the full-vector loop AND every
  // possible scalar-tail length (counts % kWidth), including 0 and 1.
  std::vector<double> phi(k.size(), kNan);
  for (std::size_t count = 0; count <= k.size(); ++count) {
    simd::fluxIntegratedBatch(view, k.data(), phi.data(), count);
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_EQ(bits(phi[i]), bits(view.integrated(k[i])))
          << "count=" << count << " i=" << i << " k=" << k[i];
    }
  }
}

TEST(SimdBatch, FluxBatchHandlesDegenerateTables) {
  const double k[3] = {1.0, 2.0, 3.0};
  double phi[3] = {kNan, kNan, kNan};

  // Empty table: integrated() is defined as 0 everywhere.
  const FluxTableView empty{};
  simd::fluxIntegratedBatch(empty, k, phi, 3);
  for (double p : phi) {
    EXPECT_EQ(bits(p), bits(0.0));
  }

  // Minimal two-point table.
  const FluxSpectrum tiny = FluxSpectrum::flat(1.0, 3.0, 2, 4.0);
  const FluxTableView view = tiny.view();
  simd::fluxIntegratedBatch(view, k, phi, 3);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(bits(phi[i]), bits(view.integrated(k[i])));
  }
}

// ---------------------------------------------------------------------------
// BinMD locate batch: lane bits + bins vs GridView::locate

TEST(SimdBatch, BinLocateMatchesScalarLocate) {
  Histogram3D histogram(BinAxis("H", -4.0, 4.0, 17),
                        BinAxis("K", -2.0, 6.0, 11),
                        BinAxis("L", -1.0, 1.0, 3));
  const GridView grid = histogram.gridView();
  const M33 transform =
      M33::fromRows({0.9, 0.1, -0.2}, {-0.3, 1.1, 0.05}, {0.0, -0.4, 0.8});
  const simd::BinLocateBatch batch(grid, transform);

  Xoshiro256 rng(0x10CA7Eu);
  std::vector<double> qx, qy, qz;
  const auto pushEvent = [&](double x, double y, double z) {
    qx.push_back(x);
    qy.push_back(y);
    qz.push_back(z);
  };
  // In-range, out-of-range, exact edges, and NaN coordinates.
  pushEvent(0.0, 0.0, 0.0);
  pushEvent(-4.0, -2.0, -1.0); // exactly min (in range: [min, max))
  pushEvent(4.0, 6.0, 1.0);    // exactly max (out of range)
  pushEvent(kNan, 0.0, 0.0);
  pushEvent(0.0, kNan, 0.0);
  pushEvent(0.0, 0.0, kNan);
  pushEvent(100.0, 0.0, 0.0);
  pushEvent(0.0, -100.0, 0.0);
  while (qx.size() % simd::kWidth != 0 ||
         qx.size() < 6 * simd::kWidth) {
    pushEvent(rng.uniform(-6.0, 6.0), rng.uniform(-4.0, 8.0),
              rng.uniform(-2.0, 2.0));
  }

  std::size_t bins[simd::kWidth];
  for (std::size_t base = 0; base < qx.size(); base += simd::kWidth) {
    const unsigned valid =
        batch.locate(qx.data() + base, qy.data() + base, qz.data() + base,
                     bins);
    for (std::size_t lane = 0; lane < simd::kWidth; ++lane) {
      const std::size_t i = base + lane;
      const V3 p = transform * V3{qx[i], qy[i], qz[i]};
      const std::size_t expected = grid.locate(p);
      const bool laneValid = (valid & (1u << lane)) != 0;
      ASSERT_EQ(laneValid, expected < grid.size())
          << "event " << i << " at (" << p.x << ", " << p.y << ", " << p.z
          << ")";
      if (laneValid) {
        ASSERT_EQ(bins[lane], expected) << "event " << i;
      } else {
        // Invalid lanes still return an in-bounds index (clamped), so
        // the batch arithmetic can never index out of the grid.
        ASSERT_LT(bins[lane], grid.size());
      }
    }
  }
}

// ---------------------------------------------------------------------------
// SIMD trajectory walk: identical segment stream

struct Segment {
  double k1;
  double k2;
  std::size_t bin;
};

TEST(SimdWalk, SegmentStreamMatchesScalarWalk) {
  Histogram3D histogram(BinAxis("H", -8.0, 8.0, 37),
                        BinAxis("K", -8.0, 8.0, 29),
                        BinAxis("L", -1.5, 1.5, 3));
  const GridView grid = histogram.gridView();
  Xoshiro256 rng(0xDDAu);
  std::size_t nonEmpty = 0;
  for (int trial = 0; trial < 400; ++trial) {
    V3 t{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0),
         rng.uniform(-0.3, 0.3)};
    if (trial % 5 == 0) {
      t.z = 0.0; // parallel axis: midpoint-binned segments
    }
    if (trial % 11 == 0) {
      t.y = 0.0;
    }
    const double kMin = 0.5 + rng.uniform(0.0, 1.0);
    const double kMax = kMin + rng.uniform(0.5, 20.0);

    std::vector<Segment> scalar, vector;
    const std::size_t nScalar = traverseTrajectory(
        grid, t, kMin, kMax, [&](double k1, double k2, std::size_t bin) {
          scalar.push_back({k1, k2, bin});
        });
    const std::size_t nVector = traverseTrajectorySimd(
        grid, t, kMin, kMax, [&](double k1, double k2, std::size_t bin) {
          vector.push_back({k1, k2, bin});
        });
    ASSERT_EQ(nScalar, scalar.size());
    ASSERT_EQ(nVector, vector.size());
    ASSERT_EQ(scalar.size(), vector.size()) << "trial " << trial;
    for (std::size_t i = 0; i < scalar.size(); ++i) {
      ASSERT_EQ(bits(scalar[i].k1), bits(vector[i].k1))
          << "trial " << trial << " segment " << i;
      ASSERT_EQ(bits(scalar[i].k2), bits(vector[i].k2))
          << "trial " << trial << " segment " << i;
      ASSERT_EQ(scalar[i].bin, vector[i].bin)
          << "trial " << trial << " segment " << i;
    }
    nonEmpty += scalar.empty() ? 0 : 1;
  }
  EXPECT_GT(nonEmpty, 100u); // the sweep actually walked trajectories
}

TEST(SimdWalk, PlaneEdgeTablesMatchOnTheFlyBitwise) {
  Histogram3D histogram(BinAxis("H", -6.0, 6.0, 41),
                        BinAxis("K", -6.0, 6.0, 23),
                        BinAxis("L", -2.0, 2.0, 5));
  const GridView grid = histogram.gridView();
  std::vector<double> storage(grid.n[0] + grid.n[1] + grid.n[2] + 3);
  PlaneEdges edges;
  {
    double* cursor = storage.data();
    for (std::size_t axis = 0; axis < 3; ++axis) {
      edges.e[axis] = cursor;
      for (std::size_t p = 0; p <= grid.n[axis]; ++p) {
        *cursor++ = grid.planeEdge(axis, p);
      }
    }
  }
  Xoshiro256 rng(0xED6Eu);
  std::size_t nonEmpty = 0;
  for (int trial = 0; trial < 300; ++trial) {
    V3 t{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0),
         rng.uniform(-0.4, 0.4)};
    if (trial % 7 == 0) {
      t.x = 0.0; // parallel axis still walks through the table path
    }
    const double kMin = 0.5 + rng.uniform(0.0, 1.0);
    const double kMax = kMin + rng.uniform(0.5, 15.0);
    std::vector<Segment> plain, tabled;
    traverseTrajectory(grid, t, kMin, kMax,
                       [&](double k1, double k2, std::size_t bin) {
                         plain.push_back({k1, k2, bin});
                       });
    traverseTrajectorySimd(
        grid, t, kMin, kMax,
        [&](double k1, double k2, std::size_t bin) {
          tabled.push_back({k1, k2, bin});
        },
        edges);
    ASSERT_EQ(plain.size(), tabled.size()) << "trial " << trial;
    for (std::size_t i = 0; i < plain.size(); ++i) {
      ASSERT_EQ(bits(plain[i].k1), bits(tabled[i].k1)) << "trial " << trial;
      ASSERT_EQ(bits(plain[i].k2), bits(tabled[i].k2)) << "trial " << trial;
      ASSERT_EQ(plain[i].bin, tabled[i].bin) << "trial " << trial;
    }
    nonEmpty += plain.empty() ? 0 : 1;
  }
  EXPECT_GT(nonEmpty, 80u);
}

// ---------------------------------------------------------------------------
// BandClipBatch: lanewise hull-clip rejection == the scalar clip

TEST(SimdClip, RejectionMatchesScalarClipExactly) {
  Histogram3D histogram(BinAxis("H", -3.0, 3.0, 603),
                        BinAxis("K", -3.0, 3.0, 603),
                        BinAxis("L", -0.1, 0.1, 1));
  const GridView grid = histogram.gridView();
  const double kMin = 1.0;
  const double kMax = 9.0;
  const BandClipBatch clip(grid, kMin, kMax);

  // The scalar predicate BandClipBatch mirrors: initWalk's hull clip,
  // replicated expression-for-expression.
  const auto scalarClipEmpty = [&](const V3& t) {
    double kStart = kMin;
    double kEnd = kMax;
    for (std::size_t axis = 0; axis < 3; ++axis) {
      if (std::fabs(t[axis]) < kTrajectoryParallelTolerance) {
        continue;
      }
      const double inv = 1.0 / t[axis];
      const double kA = grid.planeEdge(axis, 0) * inv;
      const double kB = grid.planeEdge(axis, grid.n[axis]) * inv;
      const double kLow = kA < kB ? kA : kB;
      const double kHigh = kA < kB ? kB : kA;
      if (kLow > kStart) {
        kStart = kLow;
      }
      if (kHigh < kEnd) {
        kEnd = kHigh;
      }
    }
    return !(kStart < kEnd);
  };

  Xoshiro256 rng(0xC11Fu);
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  std::size_t rejectedLanes = 0;
  std::size_t keptLanes = 0;
  for (int batch = 0; batch < 300; ++batch) {
    alignas(32) double tx[simd::kWidth];
    alignas(32) double ty[simd::kWidth];
    alignas(32) double tz[simd::kWidth];
    V3 lanes[simd::kWidth];
    for (std::size_t lane = 0; lane < simd::kWidth; ++lane) {
      V3 t{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0),
           rng.uniform(-1.0, 1.0)};
      const int spice = batch % 13;
      if (spice == 1 && lane == 0) {
        t.z = 0.0; // axis-parallel lane: that axis must be skipped
      }
      if (spice == 2 && lane == simd::kWidth - 1) {
        // All-NaN direction: every axis' compares are NaN-false, so no
        // axis tightens the band and the lane must survive the clip.
        t = V3{kNaN, kNaN, kNaN};
      }
      if (spice == 3) {
        t.z = rng.uniform(-0.01, 0.01); // thin-slab near-miss population
      }
      if (spice == 4 && lane == 0) {
        // One NaN axis: that axis contributes nothing, but the finite
        // axes still clip — the scalar reference must agree lanewise.
        t.x = kNaN;
      }
      lanes[lane] = t;
      tx[lane] = t.x;
      ty[lane] = t.y;
      tz[lane] = t.z;
    }
    const unsigned rejected = clip.rejected(tx, ty, tz);
    for (std::size_t lane = 0; lane < simd::kWidth; ++lane) {
      const bool laneRejected = (rejected & (1u << lane)) != 0u;
      const bool allNan = std::isnan(lanes[lane].x) &&
                          std::isnan(lanes[lane].y) &&
                          std::isnan(lanes[lane].z);
      if (allNan) {
        EXPECT_FALSE(laneRejected) << "batch " << batch << " lane " << lane;
        continue;
      }
      EXPECT_EQ(laneRejected, scalarClipEmpty(lanes[lane]))
          << "batch " << batch << " lane " << lane;
      if (laneRejected) {
        // Safety: a rejected lane's walk must emit nothing.
        const std::size_t segments =
            traverseTrajectory(grid, lanes[lane], kMin, kMax,
                               [](double, double, std::size_t) {});
        EXPECT_EQ(segments, 0u) << "batch " << batch << " lane " << lane;
        ++rejectedLanes;
      } else {
        ++keptLanes;
      }
    }
  }
  EXPECT_GT(rejectedLanes, 50u); // the sweep exercised both outcomes
  EXPECT_GT(keptLanes, 50u);
}

// ---------------------------------------------------------------------------
// Cache-blocked deposits: addBlock / DepositBlock == per-deposit add

TEST(Accumulate, AddBlockMatchesPerDepositAdd) {
  const Executor executor(Backend::Serial);
  Xoshiro256 rng(0xB10Cu);
  for (const AccumulateStrategy strategy :
       {AccumulateStrategy::Atomic, AccumulateStrategy::Privatized,
        AccumulateStrategy::Tiled}) {
    Histogram3D perAdd(BinAxis("H", 0.0, 1.0, 8), BinAxis("K", 0.0, 1.0, 8),
                       BinAxis("L", 0.0, 1.0, 4));
    Histogram3D blocked = perAdd;

    // A deposit stream with heavy bin reuse (tests the Tiled cache's
    // coalescing and flush points) and irregular length.
    std::vector<std::size_t> bins;
    std::vector<double> values;
    for (std::size_t i = 0; i < 10007; ++i) {
      bins.push_back(randomIndex(rng, perAdd.size() / 2) * 2 % perAdd.size());
      values.push_back(rng.uniform(0.0, 3.0));
    }

    AccumulateOptions options;
    options.strategy = strategy;
    {
      GridAccumulator acc(perAdd.gridView(), executor, options);
      const AccumulatorRef sink = acc.ref();
      for (std::size_t i = 0; i < bins.size(); ++i) {
        sink.add(0, bins[i], values[i]);
      }
      acc.commit();
    }
    {
      GridAccumulator acc(blocked.gridView(), executor, options);
      const AccumulatorRef sink = acc.ref();
      DepositBlock staged;
      for (std::size_t i = 0; i < bins.size(); ++i) {
        if (staged.full()) {
          staged.flush(sink, 0);
        }
        staged.push(bins[i], values[i]);
      }
      staged.flush(sink, 0);
      acc.commit();
    }
    expectBitwiseEqual(perAdd, blocked,
                       accumulateStrategyName(strategy));
  }
}

// ---------------------------------------------------------------------------
// Kernel-level parity on Backend::Serial: simd=On must be bitwise
// identical to simd=Off (deposit-order preservation + lane identity).

TEST(BinMDSimd, OnMatchesOffBitwiseOnSerial) {
  const Executor executor(Backend::Serial);
  Histogram3D reference(BinAxis("H", -5.0, 5.0, 13),
                        BinAxis("K", -5.0, 5.0, 9),
                        BinAxis("L", -5.0, 5.0, 5));
  const std::vector<M33> transforms{
      M33::identity(),
      M33::fromRows({0.0, -1.0, 0.0}, {1.0, 0.0, 0.0}, {0.0, 0.0, 1.0})};

  Xoshiro256 rng(0xB17Du);
  // Lane-tail coverage: counts around every multiple of the vector
  // width and the event block size, including 0 and 1.
  const std::size_t counts[] = {0,  1,  2,   3,   4,   5,
                                7,  8,  9,   255, 256, 257};
  for (const std::size_t n : counts) {
    std::vector<double> qx(n), qy(n), qz(n), signal(n), errorSq(n);
    for (std::size_t i = 0; i < n; ++i) {
      qx[i] = rng.uniform(-6.0, 6.0); // some events out of bounds
      qy[i] = rng.uniform(-6.0, 6.0);
      qz[i] = rng.uniform(-6.0, 6.0);
      signal[i] = rng.uniform(0.1, 2.0);
      errorSq[i] = rng.uniform(0.01, 0.5);
    }
    BinMDInputs inputs;
    inputs.transforms = transforms;
    inputs.qx = qx.data();
    inputs.qy = qy.data();
    inputs.qz = qz.data();
    inputs.signal = signal.data();
    inputs.errorSq = errorSq.data();
    inputs.nEvents = n;

    Histogram3D scalarSignal = reference;
    Histogram3D scalarError = reference;
    Histogram3D vectorSignal = reference;
    Histogram3D vectorError = reference;
    runBinMD(executor, inputs, scalarSignal.gridView(),
             scalarError.gridView(), {}, SimdMode::Off);
    runBinMD(executor, inputs, vectorSignal.gridView(),
             vectorError.gridView(), {}, SimdMode::On);
    expectBitwiseEqual(scalarSignal, vectorSignal, "signal");
    expectBitwiseEqual(scalarError, vectorError, "errorSq");

    // Signal-only overload too (separate code path).
    Histogram3D scalarOnly = reference;
    Histogram3D vectorOnly = reference;
    runBinMD(executor, inputs, scalarOnly.gridView(), {}, SimdMode::Off);
    runBinMD(executor, inputs, vectorOnly.gridView(), {}, SimdMode::On);
    expectBitwiseEqual(scalarOnly, vectorOnly, "signal-only");
  }
}

TEST(MDNormSimd, OnMatchesOffBitwiseOnSerial) {
  const Executor executor(Backend::Serial);
  const FluxSpectrum flux =
      FluxSpectrum::moderatorMaxwellian(0.8, 12.0, 96, 2.2, 7.5);
  const std::vector<M33> transforms{
      M33::identity(),
      M33::fromRows({0.8, 0.1, 0.0}, {-0.1, 0.9, 0.2}, {0.05, 0.0, 1.1})};

  Xoshiro256 rng(0x4D0Au);
  // Detector counts 0 and 1 exercise empty and single-item launches;
  // the larger counts produce segment tiles with every tail length.
  for (const std::size_t nDetectors : {std::size_t{0}, std::size_t{1},
                                       std::size_t{37}, std::size_t{128}}) {
    std::vector<V3> directions(nDetectors);
    std::vector<double> solidAngles(nDetectors);
    for (std::size_t i = 0; i < nDetectors; ++i) {
      V3 d{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0),
           rng.uniform(-1.0, 1.0)};
      const double norm =
          std::sqrt(d.x * d.x + d.y * d.y + d.z * d.z) + 1e-9;
      directions[i] = V3{d.x / norm, d.y / norm, d.z / norm};
      solidAngles[i] = rng.uniform(0.5, 1.5);
    }
    MDNormInputs inputs;
    inputs.transforms = transforms;
    inputs.qLabDirections = directions;
    inputs.solidAngles = solidAngles;
    inputs.flux = flux.view();
    inputs.protonCharge = 3.25;
    inputs.kMin = 1.0;
    inputs.kMax = 11.0;

    Histogram3D scalarNorm(BinAxis("H", -9.0, 9.0, 41),
                           BinAxis("K", -9.0, 9.0, 31),
                           BinAxis("L", -9.0, 9.0, 3));
    Histogram3D vectorNorm = scalarNorm;
    MDNormOptions options;
    options.traversal = Traversal::Dda;
    options.simd = SimdMode::Off;
    runMDNorm(executor, inputs, scalarNorm.gridView(), options);
    options.simd = SimdMode::On;
    runMDNorm(executor, inputs, vectorNorm.gridView(), options);
    expectBitwiseEqual(scalarNorm, vectorNorm, "normalization");
    if (nDetectors >= 37) {
      EXPECT_GT(scalarNorm.nonZeroBins(), 0u); // parity over real work
    }
  }
}

} // namespace
} // namespace vates
