/// \file test_cache.cpp
/// Persistent normalization cache + incremental delta reduction:
/// on-disk entry round-trips, every failure path (truncation, CRC
/// damage, version bumps, hash collisions, unwritable directories),
/// LRU eviction under a byte budget with concurrent readers, the
/// incrementalKey field contract, pipeline-level seeded reruns, and the
/// service-level warm/incremental paths gated bitwise against direct
/// pipeline runs and the reference oracle.

#include "vates/cache/normalization_cache.hpp"
#include "vates/core/pipeline.hpp"
#include "vates/core/plan.hpp"
#include "vates/events/experiment_setup.hpp"
#include "vates/io/histogram_file.hpp"
#include "vates/io/nxlite.hpp"
#include "vates/service/job.hpp"
#include "vates/service/reduction_service.hpp"
#include "vates/support/error.hpp"
#include "vates/verify/diff.hpp"
#include "vates/verify/fuzz_inputs.hpp"
#include "vates/verify/reference_oracle.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

namespace fs = std::filesystem;

namespace vates::service {
namespace {

// ---------------------------------------------------------------------------
// Helpers

/// Temporary directory wiped per test; the environment overrides are
/// cleared so a developer's VATES_CACHE_DIR can never hijack a test.
class CacheTest : public ::testing::Test {
protected:
  void SetUp() override {
    ::unsetenv("VATES_CACHE_DIR");
    ::unsetenv("VATES_CACHE_BUDGET");
    dir_ = fs::temp_directory_path() /
           ("vates_cache_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& leaf) const {
    return (dir_ / leaf).string();
  }

  fs::path dir_;
};

/// A small deterministic histogram whose bin pattern depends on \p tag,
/// so distinct entries are distinguishable bit for bit.
Histogram3D makeHistogram(std::uint64_t tag) {
  Histogram3D h(BinAxis("H", -1.0, 1.0, 4), BinAxis("K", -1.0, 1.0, 3),
                BinAxis("L", -1.0, 1.0, 2));
  std::uint64_t state = tag * 0x9e3779b97f4a7c15ULL + 1;
  for (double& bin : h.data()) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    bin = static_cast<double>(state >> 16) * 1e-12;
  }
  return h;
}

void expectHistogramsBitwise(const Histogram3D& expected,
                             const Histogram3D& actual,
                             const std::string& label) {
  const verify::DiffReport report = verify::compareHistograms(
      expected, actual, verify::Tolerance::bitwise(), label);
  EXPECT_TRUE(report.pass) << report.summary();
}

void expectBitwiseEqual(const core::ReductionResult& expected,
                        const core::ReductionResult& actual,
                        const std::string& label) {
  expectHistogramsBitwise(expected.signal, actual.signal, "signal " + label);
  expectHistogramsBitwise(expected.normalization, actual.normalization,
                          "normalization " + label);
  expectHistogramsBitwise(expected.crossSection, actual.crossSection,
                          "crossSection " + label);
  ASSERT_EQ(expected.signalErrorSq.has_value(),
            actual.signalErrorSq.has_value());
  if (expected.signalErrorSq) {
    expectHistogramsBitwise(*expected.signalErrorSq, *actual.signalErrorSq,
                            "signalErrorSq " + label);
    expectHistogramsBitwise(*expected.crossSectionErrorSq,
                            *actual.crossSectionErrorSq,
                            "crossSectionErrorSq " + label);
  }
  EXPECT_EQ(expected.eventsProcessed, actual.eventsProcessed) << label;
}

core::ReductionPlan smallPlan(double scale = 0.0005, std::size_t nFiles = 2) {
  core::ReductionPlan plan;
  plan.workload = WorkloadSpec::benzilCorelli(scale);
  plan.workload.nFiles = nFiles;
  return plan;
}

JobRequest planRequest(const core::ReductionPlan& plan) {
  JobRequest request;
  request.plan = plan;
  return request;
}

/// Submit \p plan, wait, and require a Done outcome with a result.
std::shared_ptr<const JobOutcome> runOne(ReductionService& svc,
                                         const core::ReductionPlan& plan) {
  const SubmitReceipt receipt = svc.submit(planRequest(plan));
  EXPECT_TRUE(receipt.accepted) << receipt.reason;
  if (!receipt.accepted) {
    return nullptr;
  }
  const auto outcome = svc.wait(receipt.id);
  EXPECT_NE(outcome, nullptr);
  if (outcome) {
    EXPECT_EQ(outcome->status.state, JobState::Done) << outcome->status.error;
    EXPECT_NE(outcome->result, nullptr);
  }
  return outcome;
}

// ---------------------------------------------------------------------------
// Entry round-trips

TEST_F(CacheTest, NormalizationRoundTripIsBitwise) {
  cache::NormalizationCache instance({dir_.string(), 0});
  ASSERT_TRUE(instance.writable());
  const Histogram3D stored = makeHistogram(1);
  EXPECT_TRUE(instance.storeNormalization("keyA", stored));

  const auto found = instance.findNormalization("keyA");
  ASSERT_NE(found, nullptr);
  expectHistogramsBitwise(stored, *found, "norm round trip");

  const cache::CacheStats stats = instance.stats();
  EXPECT_EQ(stats.stores, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);

  // A second instance on the same directory (another worker process)
  // sees the published entry through its construction-time scan.
  cache::NormalizationCache other({dir_.string(), 0});
  const auto foundByOther = other.findNormalization("keyA");
  ASSERT_NE(foundByOther, nullptr);
  expectHistogramsBitwise(stored, *foundByOther, "norm cross-instance");
}

TEST_F(CacheTest, PartialReductionRoundTripsWithAndWithoutErrors) {
  cache::NormalizationCache instance({dir_.string(), 0});
  const cache::CachedReduction plain{3, 12345, makeHistogram(2),
                                     makeHistogram(3), std::nullopt};
  EXPECT_TRUE(instance.storeReduction("plain", plain));
  const auto foundPlain = instance.findReduction("plain");
  ASSERT_NE(foundPlain, nullptr);
  EXPECT_EQ(foundPlain->filesReduced, 3u);
  EXPECT_EQ(foundPlain->eventsProcessed, 12345u);
  expectHistogramsBitwise(plain.signal, foundPlain->signal, "part signal");
  expectHistogramsBitwise(plain.normalization, foundPlain->normalization,
                          "part normalization");
  EXPECT_FALSE(foundPlain->signalErrorSq.has_value());

  const cache::CachedReduction tracked{5, 99, makeHistogram(4),
                                       makeHistogram(5), makeHistogram(6)};
  EXPECT_TRUE(instance.storeReduction("tracked", tracked));
  const auto foundTracked = instance.findReduction("tracked");
  ASSERT_NE(foundTracked, nullptr);
  ASSERT_TRUE(foundTracked->signalErrorSq.has_value());
  expectHistogramsBitwise(*tracked.signalErrorSq, *foundTracked->signalErrorSq,
                          "part errorSq");
}

TEST_F(CacheTest, AbsentKeysMiss) {
  cache::NormalizationCache instance({dir_.string(), 0});
  EXPECT_EQ(instance.findNormalization("nothing"), nullptr);
  EXPECT_EQ(instance.findReduction("nothing"), nullptr);
  EXPECT_EQ(instance.stats().misses, 2u);
  EXPECT_EQ(instance.stats().invalidEntries, 0u);
}

// ---------------------------------------------------------------------------
// Hot tier

TEST_F(CacheTest, HotTierServesRepeatFindsAndRevalidatesIdentity) {
  cache::NormalizationCache instance({dir_.string(), 0});
  const Histogram3D stored = makeHistogram(1);
  ASSERT_TRUE(instance.storeNormalization("keyA", stored));

  // The store primed the hot tier, so same-instance finds never re-read
  // the file; repeat finds return the very same shared object.
  const auto first = instance.findNormalization("keyA");
  ASSERT_NE(first, nullptr);
  const auto second = instance.findNormalization("keyA");
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(first.get(), second.get());
  expectHistogramsBitwise(stored, *first, "hot-tier hit");
  EXPECT_EQ(instance.stats().memoryHits, 2u);
  EXPECT_EQ(instance.stats().hits, 2u);

  // Another process republishing the entry (write-temp + rename, hence a
  // new inode) invalidates the RAM copy: the next find falls back to the
  // CRC-verified disk path and returns the *new* bits, never stale ones.
  const Histogram3D replacement = makeHistogram(7);
  cache::NormalizationCache writer({dir_.string(), 0});
  ASSERT_TRUE(writer.storeNormalization("keyA", replacement));
  const auto reread = instance.findNormalization("keyA");
  ASSERT_NE(reread, nullptr);
  expectHistogramsBitwise(replacement, *reread, "post-replace reread");
  EXPECT_EQ(instance.stats().memoryHits, 2u); // disk path, not RAM
  EXPECT_EQ(instance.stats().hits, 3u);

  // memoryBudgetBytes == 0 disables the tier outright.
  cache::NormalizationCache coldOnly({dir_.string(), 0, 0});
  EXPECT_NE(coldOnly.findNormalization("keyA"), nullptr);
  EXPECT_NE(coldOnly.findNormalization("keyA"), nullptr);
  EXPECT_EQ(coldOnly.stats().memoryHits, 0u);
  EXPECT_EQ(coldOnly.stats().hits, 2u);
}

// ---------------------------------------------------------------------------
// Failure paths

TEST_F(CacheTest, TruncatedEntryReadsAsMissAndIsDropped) {
  cache::NormalizationCache instance({dir_.string(), 0});
  ASSERT_TRUE(instance.storeNormalization("keyA", makeHistogram(1)));
  const std::string entry = instance.entryPath("keyA", /*partial=*/false);
  fs::resize_file(entry, fs::file_size(entry) / 2);

  EXPECT_EQ(instance.findNormalization("keyA"), nullptr);
  EXPECT_FALSE(fs::exists(entry)) << "damaged entry should be deleted";
  const cache::CacheStats stats = instance.stats();
  EXPECT_EQ(stats.invalidEntries, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 0u);
}

TEST_F(CacheTest, CrcDamagedEntryReadsAsMissAndIsDropped) {
  // Hot tier off: the in-place same-size bit flip below can land within
  // one mtime clock tick, so the file identity would still match and the
  // RAM copy would mask the corruption this test aims at the CRC-verified
  // disk read path.
  cache::NormalizationCache instance({dir_.string(), 0, 0});
  ASSERT_TRUE(instance.storeReduction(
      "keyA", {2, 7, makeHistogram(1), makeHistogram(2), std::nullopt}));
  const std::string entry = instance.entryPath("keyA", /*partial=*/true);
  {
    std::fstream file(entry, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.good());
    const auto offset =
        static_cast<std::streamoff>(fs::file_size(entry) * 2 / 3);
    file.seekg(offset);
    char byte = 0;
    file.get(byte);
    file.seekp(offset);
    file.put(static_cast<char>(byte ^ 0x40)); // flip one payload bit
  }
  EXPECT_EQ(instance.findReduction("keyA"), nullptr);
  EXPECT_FALSE(fs::exists(entry));
  EXPECT_EQ(instance.stats().invalidEntries, 1u);
}

TEST_F(CacheTest, FutureFormatVersionInvalidatesEntry) {
  const std::string key = "vkey";
  const Histogram3D h = makeHistogram(1);
  cache::NormalizationCache writerSide({dir_.string(), 0});
  ASSERT_TRUE(writerSide.storeNormalization(key, h));
  // Rewrite the entry as a (hypothetical) newer format: same layout,
  // bumped version stamp — exactly what an old reader must reject.
  const std::string entry = writerSide.entryPath(key, /*partial=*/false);
  {
    nx::Writer writer(entry);
    writer.writeScalar("cache_version",
                       static_cast<double>(cache::kCacheFormatVersion + 1));
    writer.writeScalar("cache_kind", 0.0);
    std::vector<std::uint32_t> codes(key.size());
    for (std::size_t i = 0; i < key.size(); ++i) {
      codes[i] = static_cast<unsigned char>(key[i]);
    }
    writer.writeUInt32("cache_key", codes);
    writeHistogram(writer, "normalization", h);
    writer.close();
  }
  cache::NormalizationCache readerSide({dir_.string(), 0});
  EXPECT_EQ(readerSide.findNormalization(key), nullptr);
  EXPECT_EQ(readerSide.stats().invalidEntries, 1u);
  EXPECT_FALSE(fs::exists(entry));
}

TEST_F(CacheTest, HashCollisionMissesWithoutDeleting) {
  cache::NormalizationCache instance({dir_.string(), 0});
  ASSERT_TRUE(instance.storeNormalization("ownerKey", makeHistogram(1)));
  // Simulate an fnv1a64 collision: another key's lookup lands on
  // ownerKey's file.  The embedded-key comparison must miss WITHOUT
  // deleting the resident entry — it is intact and belongs to ownerKey.
  const std::string ownerPath =
      instance.entryPath("ownerKey", /*partial=*/false);
  const std::string impostorPath =
      instance.entryPath("impostorKey", /*partial=*/false);
  fs::copy_file(ownerPath, impostorPath);

  EXPECT_EQ(instance.findNormalization("impostorKey"), nullptr);
  EXPECT_TRUE(fs::exists(impostorPath))
      << "collision victim must not be deleted";
  EXPECT_EQ(instance.stats().invalidEntries, 0u);
  EXPECT_NE(instance.findNormalization("ownerKey"), nullptr);
}

TEST_F(CacheTest, UnusableDirectoryDegradesToColdCompute) {
  // A regular file where the directory should be: the ctor must not
  // throw, finds miss, stores fail — cold compute stays available.
  const std::string blocked = path("blocked");
  std::ofstream(blocked) << "not a directory";
  cache::NormalizationCache instance({blocked, 0});
  EXPECT_FALSE(instance.writable());
  EXPECT_EQ(instance.findNormalization("k"), nullptr);
  EXPECT_FALSE(instance.storeNormalization("k", makeHistogram(1)));
  EXPECT_FALSE(
      instance.storeReduction("k", {1, 1, makeHistogram(1), makeHistogram(2),
                                    std::nullopt}));
  const cache::CacheStats stats = instance.stats();
  EXPECT_EQ(stats.storeFailures, 2u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST_F(CacheTest, ClearRemovesEntriesAndStrayTemps) {
  cache::NormalizationCache instance({dir_.string(), 0});
  ASSERT_TRUE(instance.storeNormalization("a", makeHistogram(1)));
  ASSERT_TRUE(instance.storeNormalization("b", makeHistogram(2)));
  // A stray temp file from a crashed writer.
  std::ofstream(path("deadbeef-norm.nxc.tmp-123-0")) << "partial";
  EXPECT_EQ(instance.clear(), 2u);
  EXPECT_EQ(instance.stats().entries, 0u);
  EXPECT_EQ(instance.stats().bytes, 0u);
  std::size_t remaining = 0;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    (void)entry;
    ++remaining;
  }
  EXPECT_EQ(remaining, 0u);
}

// ---------------------------------------------------------------------------
// LRU eviction

/// Bytes of one norm entry with a single-character key (all entries in
/// these tests use equal-length keys and equal-shape histograms, so
/// sizes are uniform).
std::uint64_t probeEntryBytes(const fs::path& base) {
  const fs::path probeDir = base / "probe";
  cache::NormalizationCache probe({probeDir.string(), 0});
  probe.storeNormalization("p", makeHistogram(0));
  return probe.stats().bytes;
}

TEST_F(CacheTest, LruEvictsColdestAndHitsProtect) {
  const std::uint64_t entryBytes = probeEntryBytes(dir_);
  ASSERT_GT(entryBytes, 0u);
  // Budget for two entries (plus slack): storing a third must evict the
  // least recently *touched* one.
  const fs::path mainDir = dir_ / "main";
  cache::NormalizationCache instance(
      {mainDir.string(), entryBytes * 2 + entryBytes / 2});
  ASSERT_TRUE(instance.storeNormalization("a", makeHistogram(1)));
  ASSERT_TRUE(instance.storeNormalization("b", makeHistogram(2)));
  ASSERT_NE(instance.findNormalization("a"), nullptr); // bump a
  ASSERT_TRUE(instance.storeNormalization("c", makeHistogram(3)));

  EXPECT_EQ(instance.findNormalization("b"), nullptr)
      << "b was coldest and must have been evicted";
  EXPECT_NE(instance.findNormalization("a"), nullptr);
  EXPECT_NE(instance.findNormalization("c"), nullptr);
  const cache::CacheStats stats = instance.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_LE(stats.bytes, entryBytes * 2 + entryBytes / 2);
}

TEST_F(CacheTest, JustWrittenEntryIsRetainedEvenOverBudget) {
  const std::uint64_t entryBytes = probeEntryBytes(dir_);
  const fs::path mainDir = dir_ / "main";
  cache::NormalizationCache instance({mainDir.string(), entryBytes / 2});
  ASSERT_TRUE(instance.storeNormalization("a", makeHistogram(1)));
  EXPECT_NE(instance.findNormalization("a"), nullptr)
      << "an entry larger than the whole budget is still usable";
  EXPECT_EQ(instance.stats().evictions, 0u);
  // The next store displaces it: the newcomer is the protected one now.
  ASSERT_TRUE(instance.storeNormalization("b", makeHistogram(2)));
  EXPECT_EQ(instance.findNormalization("a"), nullptr);
  EXPECT_NE(instance.findNormalization("b"), nullptr);
  EXPECT_EQ(instance.stats().evictions, 1u);
}

TEST_F(CacheTest, ConcurrentReadersSurviveEviction) {
  const std::uint64_t entryBytes = probeEntryBytes(dir_);
  const fs::path mainDir = dir_ / "main";
  // Budget for ~1.5 entries: every store evicts the previous entry
  // while readers are mid-lookup — reads must come back either as the
  // correct bits or a clean miss, never garbage or a crash.
  cache::NormalizationCache instance(
      {mainDir.string(), entryBytes + entryBytes / 2});
  const std::vector<std::string> keys = {"k0", "k1", "k2", "k3"};
  std::vector<Histogram3D> expected;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    expected.push_back(makeHistogram(100 + i));
  }
  std::atomic<bool> done{false};
  std::atomic<int> corrupt{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_relaxed)) {
        for (std::size_t i = 0; i < keys.size(); ++i) {
          const auto found = instance.findNormalization(keys[i]);
          if (!found) {
            continue; // evicted — a clean miss
          }
          const auto got = found->data();
          const auto want = expected[i].data();
          if (got.size() != want.size() ||
              !std::equal(got.begin(), got.end(), want.begin())) {
            corrupt.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (int round = 0; round < 25; ++round) {
    const std::size_t i = static_cast<std::size_t>(round) % keys.size();
    ASSERT_TRUE(instance.storeNormalization(keys[i], expected[i]));
  }
  done.store(true, std::memory_order_relaxed);
  for (std::thread& reader : readers) {
    reader.join();
  }
  EXPECT_EQ(corrupt.load(), 0) << "a reader observed wrong bits";
  EXPECT_GT(instance.stats().evictions, 0u);
}

// ---------------------------------------------------------------------------
// Config + verification helpers

TEST_F(CacheTest, EnvOverridesWinOverPlanValues) {
  ::setenv("VATES_CACHE_DIR", "/env/dir", 1);
  ::setenv("VATES_CACHE_BUDGET", "12345", 1);
  cache::CacheConfig config =
      cache::CacheConfig::withEnvOverrides("/plan/dir", 777);
  EXPECT_EQ(config.directory, "/env/dir");
  EXPECT_EQ(config.budgetBytes, 12345u);

  ::setenv("VATES_CACHE_BUDGET", "not-a-number", 1);
  config = cache::CacheConfig::withEnvOverrides("/plan/dir", 777);
  EXPECT_EQ(config.budgetBytes, 777u) << "malformed budget must be ignored";

  ::unsetenv("VATES_CACHE_DIR");
  ::unsetenv("VATES_CACHE_BUDGET");
  config = cache::CacheConfig::withEnvOverrides("/plan/dir", 777);
  EXPECT_EQ(config.directory, "/plan/dir");
  EXPECT_EQ(config.budgetBytes, 777u);
}

TEST_F(CacheTest, VerifyCacheEntryCatchesDamageAndMisnaming) {
  cache::NormalizationCache instance({dir_.string(), 0});
  ASSERT_TRUE(instance.storeNormalization("good", makeHistogram(1)));
  ASSERT_TRUE(instance.storeReduction(
      "part", {2, 9, makeHistogram(2), makeHistogram(3), makeHistogram(4)}));
  const std::string normPath = instance.entryPath("good", /*partial=*/false);
  const std::string partPath = instance.entryPath("part", /*partial=*/true);

  std::string reason;
  EXPECT_TRUE(cache::verifyCacheEntry(normPath, &reason)) << reason;
  EXPECT_TRUE(cache::verifyCacheEntry(partPath, &reason)) << reason;

  // A renamed (mis-filed) entry fails the name↔key consistency check.
  const std::string renamed = path("0000000000000000-norm.nxc");
  fs::copy_file(normPath, renamed);
  EXPECT_FALSE(cache::verifyCacheEntry(renamed, &reason));
  EXPECT_NE(reason.find("does not match"), std::string::npos) << reason;

  // A flipped payload byte fails a dataset CRC.
  {
    std::fstream file(normPath,
                      std::ios::in | std::ios::out | std::ios::binary);
    const auto offset =
        static_cast<std::streamoff>(fs::file_size(normPath) * 2 / 3);
    file.seekg(offset);
    char byte = 0;
    file.get(byte);
    file.seekp(offset);
    file.put(static_cast<char>(byte ^ 0x01));
  }
  EXPECT_FALSE(cache::verifyCacheEntry(normPath, &reason));
}

// ---------------------------------------------------------------------------
// Key contracts

TEST(IncrementalKey, StableAcrossFileCountSensitiveToData) {
  const core::ReductionPlan base = smallPlan();
  const std::string key = incrementalKey(base);

  core::ReductionPlan appended = base;
  appended.workload.nFiles += 3;
  EXPECT_EQ(incrementalKey(appended), key)
      << "appending files must keep hitting the same part entry";

  core::ReductionPlan otherSeed = base;
  otherSeed.workload.seed ^= 0x1234;
  EXPECT_NE(incrementalKey(otherSeed), key);

  core::ReductionPlan otherEvents = base;
  otherEvents.workload.eventsPerFile *= 2;
  EXPECT_NE(incrementalKey(otherEvents), key);

  core::ReductionPlan otherErrors = base;
  otherErrors.config.trackErrors = true;
  EXPECT_NE(incrementalKey(otherErrors), key);

  core::ReductionPlan otherBinmd = base;
  otherBinmd.config.binmdAccumulate.strategy = AccumulateStrategy::Privatized;
  EXPECT_NE(incrementalKey(otherBinmd), key);

  core::ReductionPlan otherConvert = base;
  otherConvert.config.convert.lorentzCorrection =
      !otherConvert.config.convert.lorentzCorrection;
  EXPECT_NE(incrementalKey(otherConvert), key);

  // Normalization-affecting fields flow through the wrapped sub-key.
  core::ReductionPlan otherGrid = base;
  otherGrid.workload.bins[1] += 1;
  EXPECT_NE(incrementalKey(otherGrid), key);
}

// ---------------------------------------------------------------------------
// Pipeline-level incremental reduction

TEST(IncrementalPipeline, SeededRerunMatchesFromScratchBitwise) {
  for (const Backend backend : {Backend::Serial, Backend::ThreadPool}) {
    core::ReductionPlan plan = smallPlan(0.0005, 5);
    plan.config.backend = backend;
    const ExperimentSetup setup(plan.workload);
    const core::ReductionResult full =
        core::ReductionPipeline(setup, plan.config).run();

    core::ReductionPlan firstPlan = plan;
    firstPlan.workload.nFiles = 3;
    const ExperimentSetup firstSetup(firstPlan.workload);
    const core::ReductionResult first =
        core::ReductionPipeline(firstSetup, firstPlan.config).run();

    core::ReductionSeed seed;
    seed.signal = &first.signal;
    seed.normalization = &first.normalization;
    seed.filesAlreadyReduced = 3;
    seed.eventsAlreadyProcessed = first.eventsProcessed;
    const core::ReductionResult resumed =
        core::ReductionPipeline(setup, plan.config).runIncremental(seed);

    expectBitwiseEqual(full, resumed,
                       std::string("incremental vs from-scratch, ") +
                           backendName(backend));
  }
}

TEST(IncrementalPipeline, SeededRerunWithErrorsMatchesBitwise) {
  core::ReductionPlan plan = smallPlan(0.0005, 4);
  plan.config.trackErrors = true;
  const ExperimentSetup setup(plan.workload);
  const core::ReductionResult full =
      core::ReductionPipeline(setup, plan.config).run();

  core::ReductionPlan firstPlan = plan;
  firstPlan.workload.nFiles = 2;
  const core::ReductionResult first =
      core::ReductionPipeline(ExperimentSetup(firstPlan.workload),
                              firstPlan.config)
          .run();
  ASSERT_TRUE(first.signalErrorSq.has_value());

  core::ReductionSeed seed;
  seed.signal = &first.signal;
  seed.normalization = &first.normalization;
  seed.signalErrorSq = &*first.signalErrorSq;
  seed.filesAlreadyReduced = 2;
  seed.eventsAlreadyProcessed = first.eventsProcessed;
  const core::ReductionResult resumed =
      core::ReductionPipeline(setup, plan.config).runIncremental(seed);
  expectBitwiseEqual(full, resumed, "incremental with errors");
}

TEST(IncrementalPipeline, RejectsInvalidSeeds) {
  core::ReductionPlan plan = smallPlan(0.0005, 4);
  const ExperimentSetup setup(plan.workload);
  const core::ReductionResult first =
      core::ReductionPipeline(setup, plan.config).run();

  core::ReductionSeed seed;
  seed.signal = &first.signal;
  seed.normalization = &first.normalization;
  seed.filesAlreadyReduced = 2;

  // Multi-rank incremental is rejected (blockRange re-partitions files,
  // breaking the bit-identity argument).
  core::ReductionPlan ranked = plan;
  ranked.config.ranks = 2;
  EXPECT_THROW(core::ReductionPipeline(setup, ranked.config)
                   .runIncremental(seed),
               Error);

  // trackErrors mismatch between seed and config.
  core::ReductionPlan tracked = plan;
  tracked.config.trackErrors = true;
  EXPECT_THROW(core::ReductionPipeline(setup, tracked.config)
                   .runIncremental(seed),
               Error);

  // Seed histograms from a different grid.
  const Histogram3D wrongShape = makeHistogram(1);
  core::ReductionSeed misShaped;
  misShaped.signal = &wrongShape;
  misShaped.normalization = &wrongShape;
  misShaped.filesAlreadyReduced = 2;
  EXPECT_THROW(core::ReductionPipeline(setup, plan.config)
                   .runIncremental(misShaped),
               Error);

  // More files "already reduced" than the plan has.
  core::ReductionSeed tooMany = seed;
  tooMany.filesAlreadyReduced = 9;
  EXPECT_THROW(core::ReductionPipeline(setup, plan.config)
                   .runIncremental(tooMany),
               Error);
}

// ---------------------------------------------------------------------------
// Service-level warm path

TEST_F(CacheTest, WarmServiceRunSkipsMDNormBitwise) {
  core::ReductionPlan plan = smallPlan();
  plan.config.cacheDir = dir_.string();
  const core::ReductionResult direct =
      core::ReductionPipeline(ExperimentSetup(plan.workload), plan.config)
          .run();

  // Cold service: computes, publishes the norm entry.
  {
    ServiceOptions options;
    options.workers = 1;
    ReductionService cold(options);
    const auto outcome = runOne(cold, plan);
    ASSERT_NE(outcome, nullptr);
    EXPECT_FALSE(outcome->status.cachedNormalization);
    const ServiceMetrics metrics = cold.metrics();
    EXPECT_EQ(metrics.cacheMisses, 1u);
    EXPECT_EQ(metrics.cacheStores, 1u);
    EXPECT_EQ(metrics.cacheEntries, 1u);
    EXPECT_EQ(metrics.normalizationPasses, 1u);
    EXPECT_EQ(metrics.latency.count("run-cold"), 1u);
    cold.shutdown(true);
  }

  // Warm service (fresh process in spirit): the same plan hits the
  // entry, skips MDNorm entirely, and reproduces the cold bits.
  ServiceOptions options;
  options.workers = 1;
  ReductionService warm(options);
  const auto outcome = runOne(warm, plan);
  ASSERT_NE(outcome, nullptr);
  EXPECT_TRUE(outcome->status.cachedNormalization);
  EXPECT_FALSE(outcome->status.incrementalRun);
  EXPECT_EQ(outcome->result->times.total("MDNorm"), 0.0)
      << "warm run must not execute an MDNorm pass";
  expectBitwiseEqual(direct, *outcome->result, "warm service run");

  const ServiceMetrics metrics = warm.metrics();
  EXPECT_EQ(metrics.cacheHits, 1u);
  EXPECT_EQ(metrics.cacheMisses, 0u);
  EXPECT_EQ(metrics.normalizationPasses, 0u);
  EXPECT_EQ(metrics.cacheHitRate(), 1.0);
  EXPECT_EQ(metrics.latency.count("run-warm"), 1u);
  EXPECT_NE(metrics.toJson().find("\"cache_hits\":1"), std::string::npos);
  warm.shutdown(true);
}

TEST_F(CacheTest, WarmHitIsBitwiseAcrossKernelConfigs) {
  struct Combo {
    Traversal traversal;
    AccumulateStrategy accumulate;
    Backend backend;
    SimdMode simd;
  };
  const std::vector<Combo> combos = {
      {Traversal::SortedKeys, AccumulateStrategy::Auto, Backend::Serial,
       SimdMode::Auto},
      {Traversal::Legacy, AccumulateStrategy::Atomic, Backend::ThreadPool,
       SimdMode::Off},
      {Traversal::Dda, AccumulateStrategy::Privatized, Backend::ThreadPool,
       SimdMode::Auto},
      {Traversal::SortedKeys, AccumulateStrategy::Tiled, Backend::DeviceSim,
       SimdMode::Off},
  };
  for (std::size_t i = 0; i < combos.size(); ++i) {
    const Combo& combo = combos[i];
    core::ReductionPlan plan = smallPlan(0.0005, 2);
    plan.config.cacheDir = (dir_ / ("combo" + std::to_string(i))).string();
    plan.config.mdnorm.traversal = combo.traversal;
    plan.config.mdnorm.accumulate.strategy = combo.accumulate;
    plan.config.backend = combo.backend;
    plan.config.mdnorm.simd = combo.simd;
    const std::string label =
        std::string(traversalName(combo.traversal)) + "/" +
        accumulateStrategyName(combo.accumulate) + "/" +
        backendName(combo.backend) + "/" + simdModeName(combo.simd);

    const core::ReductionResult direct =
        core::ReductionPipeline(ExperimentSetup(plan.workload), plan.config)
            .run();
    ServiceOptions options;
    options.workers = 1;
    {
      ReductionService cold(options);
      ASSERT_NE(runOne(cold, plan), nullptr) << label;
      cold.shutdown(true);
    }
    ReductionService warm(options);
    const auto outcome = runOne(warm, plan);
    ASSERT_NE(outcome, nullptr) << label;
    EXPECT_TRUE(outcome->status.cachedNormalization) << label;
    expectBitwiseEqual(direct, *outcome->result, "warm " + label);
    warm.shutdown(true);
  }
}

// Oracle differential gate on the warm path: golden-benzil-tiny through
// a cold service, then a warm one; the warm bits must match both the
// cold run (bitwise) and the reference oracle (tolerance).
TEST_F(CacheTest, WarmHitMatchesReferenceOracle) {
  const verify::FuzzExperiment experiment = verify::goldenExperiments().front();
  ASSERT_EQ(experiment.maskFraction, 0.0);
  core::ReductionPlan plan;
  plan.workload = experiment.spec;
  plan.config.cacheDir = dir_.string();
  const verify::OracleResult oracle =
      verify::referenceReduce(ExperimentSetup(plan.workload));

  ServiceOptions options;
  options.workers = 1;
  std::shared_ptr<const JobOutcome> coldOutcome;
  {
    ReductionService cold(options);
    coldOutcome = runOne(cold, plan);
    ASSERT_NE(coldOutcome, nullptr);
    cold.shutdown(true);
  }
  ReductionService warm(options);
  const auto warmOutcome = runOne(warm, plan);
  ASSERT_NE(warmOutcome, nullptr);
  EXPECT_TRUE(warmOutcome->status.cachedNormalization);
  expectBitwiseEqual(*coldOutcome->result, *warmOutcome->result,
                     "warm vs cold golden");
  const auto check = [](const Histogram3D& expected, const Histogram3D& actual,
                        const char* what) {
    const verify::DiffReport report = verify::compareHistograms(
        expected, actual, {}, std::string(what) + " warm vs oracle");
    EXPECT_TRUE(report.pass) << report.summary();
  };
  check(oracle.signal, warmOutcome->result->signal, "signal");
  check(oracle.normalization, warmOutcome->result->normalization,
        "normalization");
  check(oracle.crossSection, warmOutcome->result->crossSection,
        "crossSection");
  warm.shutdown(true);
}

// ---------------------------------------------------------------------------
// Service-level incremental reduction

TEST_F(CacheTest, IncrementalAppendReducesOnlyDeltaFiles) {
  core::ReductionPlan plan = smallPlan(0.0005, 3);
  plan.config.cacheDir = dir_.string();
  plan.config.incremental = true;

  ServiceOptions options;
  options.workers = 1;
  // Batching off: the full-replay resubmission shares the second job's
  // batch key and must hit the cache, not the batcher.
  options.batching = false;
  ReductionService svc(options);

  // Cold: 3 files, publishes the part entry.
  const auto first = runOne(svc, plan);
  ASSERT_NE(first, nullptr);
  EXPECT_FALSE(first->status.incrementalRun);
  EXPECT_EQ(first->status.progress.filesCompleted, 3u);

  // Append 2 files: only the delta is reduced.
  core::ReductionPlan appended = plan;
  appended.workload.nFiles = 5;
  const core::ReductionResult direct =
      core::ReductionPipeline(ExperimentSetup(appended.workload),
                              appended.config)
          .run();
  const auto second = runOne(svc, appended);
  ASSERT_NE(second, nullptr);
  EXPECT_TRUE(second->status.incrementalRun);
  EXPECT_EQ(second->status.progress.filesCompleted, 2u)
      << "only the 2 appended files may be re-reduced";
  EXPECT_EQ(second->status.progress.filesTotal, 5u);
  expectBitwiseEqual(direct, *second->result, "incremental append");

  // Same plan again: the part entry now covers all 5 files — a full
  // replay with no pipeline work at all.
  const auto third = runOne(svc, appended);
  ASSERT_NE(third, nullptr);
  EXPECT_TRUE(third->status.cachedNormalization);
  EXPECT_FALSE(third->status.incrementalRun);
  EXPECT_EQ(third->status.progress.filesCompleted, 5u);
  EXPECT_EQ(third->result->times.grandTotal(), 0.0)
      << "full replay must not run any pipeline stage";
  expectBitwiseEqual(direct, *third->result, "full replay");

  const ServiceMetrics metrics = svc.metrics();
  EXPECT_EQ(metrics.incrementalJobs, 1u);
  EXPECT_EQ(metrics.cacheHits, 2u);  // delta hit + full replay
  EXPECT_EQ(metrics.cacheMisses, 1u);
  EXPECT_EQ(metrics.cacheStores, 2u);
  svc.shutdown(true);
}

TEST_F(CacheTest, RepeatFullReplaysShareOneResult) {
  core::ReductionPlan plan = smallPlan(0.0005, 2);
  plan.config.cacheDir = dir_.string();
  plan.config.incremental = true;

  ServiceOptions options;
  options.workers = 1;
  options.batching = false;
  ReductionService svc(options);

  // Cold run publishes the part entry (and primes the hot tier).
  const auto cold = runOne(svc, plan);
  ASSERT_NE(cold, nullptr);

  // Two full replays of the same hot-tier entry: the first assembles
  // and memoizes the result, the second must share the very same
  // immutable object instead of re-paying the histogram copies.
  const auto first = runOne(svc, plan);
  const auto second = runOne(svc, plan);
  ASSERT_NE(first, nullptr);
  ASSERT_NE(second, nullptr);
  EXPECT_TRUE(first->status.cachedNormalization);
  EXPECT_TRUE(second->status.cachedNormalization);
  EXPECT_EQ(first->result, second->result)
      << "repeat replays must share one assembled result";
  EXPECT_NE(cold->result, first->result);
  expectBitwiseEqual(*cold->result, *first->result, "shared replay");
  svc.shutdown(true);
}

TEST_F(CacheTest, IncrementalAppendWithErrorsMatchesBitwise) {
  core::ReductionPlan plan = smallPlan(0.0005, 2);
  plan.config.cacheDir = dir_.string();
  plan.config.incremental = true;
  plan.config.trackErrors = true;

  ServiceOptions options;
  options.workers = 1;
  ReductionService svc(options);
  ASSERT_NE(runOne(svc, plan), nullptr);

  core::ReductionPlan appended = plan;
  appended.workload.nFiles = 4;
  const core::ReductionResult direct =
      core::ReductionPipeline(ExperimentSetup(appended.workload),
                              appended.config)
          .run();
  ASSERT_TRUE(direct.signalErrorSq.has_value());
  const auto outcome = runOne(svc, appended);
  ASSERT_NE(outcome, nullptr);
  EXPECT_TRUE(outcome->status.incrementalRun);
  expectBitwiseEqual(direct, *outcome->result, "incremental with errors");
  svc.shutdown(true);
}

TEST_F(CacheTest, UnusableCacheDirFallsBackToColdService) {
  const std::string blocked = path("blocked-file");
  std::ofstream(blocked) << "in the way";
  core::ReductionPlan plan = smallPlan();
  plan.config.cacheDir = blocked;
  const core::ReductionResult direct =
      core::ReductionPipeline(ExperimentSetup(plan.workload), plan.config)
          .run();

  ServiceOptions options;
  options.workers = 1;
  ReductionService svc(options);
  const auto outcome = runOne(svc, plan);
  ASSERT_NE(outcome, nullptr);
  EXPECT_FALSE(outcome->status.cachedNormalization);
  expectBitwiseEqual(direct, *outcome->result, "unusable cache dir");
  const ServiceMetrics metrics = svc.metrics();
  EXPECT_EQ(metrics.cacheMisses, 1u);
  EXPECT_EQ(metrics.cacheStoreFailures, 1u);
  EXPECT_EQ(metrics.cacheHits, 0u);
  svc.shutdown(true);
}

TEST_F(CacheTest, ClearCachesEmptiesEveryOpenedDirectory) {
  core::ReductionPlan plan = smallPlan();
  plan.config.cacheDir = dir_.string();
  ServiceOptions options;
  options.workers = 1;
  // Batching off: a same-key resubmission must exercise the cache, not
  // join the previous leader's still-draining batch.
  options.batching = false;
  ReductionService svc(options);
  ASSERT_NE(runOne(svc, plan), nullptr);
  EXPECT_EQ(svc.cacheStats().entries, 1u);
  EXPECT_EQ(svc.clearCaches(), 1u);
  EXPECT_EQ(svc.cacheStats().entries, 0u);

  // The next identical submission recomputes and republishes.
  const auto outcome = runOne(svc, plan);
  ASSERT_NE(outcome, nullptr);
  EXPECT_FALSE(outcome->status.cachedNormalization);
  EXPECT_EQ(svc.cacheStats().entries, 1u);
  svc.shutdown(true);
}

} // namespace
} // namespace vates::service
