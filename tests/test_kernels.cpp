// Tests for the MDNorm and BinMD kernels: hand-checkable cases, backend
// parity, algorithm-variant equivalence, and transform composition.

#include "vates/events/experiment_setup.hpp"
#include "vates/kernels/binmd.hpp"
#include "vates/kernels/mdnorm.hpp"
#include "vates/kernels/transforms.hpp"
#include "vates/support/rng.hpp"
#include "vates/units/units.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace vates {
namespace {

std::vector<Backend> availableBackends() {
  std::vector<Backend> backends;
  for (Backend b : {Backend::Serial, Backend::OpenMP, Backend::ThreadPool,
                    Backend::DeviceSim}) {
    if (backendAvailable(b)) {
      backends.push_back(b);
    }
  }
  return backends;
}

// ---------------------------------------------------------------------------
// Transform composition

TEST(Transforms, BinMdTransformMapsPeakToProjectedHkl) {
  // An event generated exactly at integer hkl must land at the
  // projected coordinates of that hkl under the identity op.
  const OrientedLattice lattice(Lattice::bixbyite(), V3{0, 0, 1}, V3{1, 1, 0});
  const Projection projection; // identity
  const std::vector<M33> ops{M33::identity()};
  const auto transforms = binMdTransforms(projection, lattice, ops);
  ASSERT_EQ(transforms.size(), 1u);
  const V3 hkl{2, -1, 3};
  const V3 qSample = lattice.qSampleFromHkl(hkl);
  EXPECT_LT(maxAbsDiff(transforms[0] * qSample, hkl), 1e-9);
}

TEST(Transforms, SymmetryOpMapsToEquivalentPosition) {
  const OrientedLattice lattice(Lattice::bixbyite(), V3{0, 0, 1}, V3{1, 1, 0});
  const Projection projection;
  const M33 cyclic = SymmetryOperation::fromJones("z,x,y").matrix();
  const auto transforms =
      binMdTransforms(projection, lattice, std::vector<M33>{cyclic});
  const V3 hkl{1, 2, 3};
  const V3 qSample = lattice.qSampleFromHkl(hkl);
  EXPECT_LT(maxAbsDiff(transforms[0] * qSample, V3{3, 1, 2}), 1e-9);
}

TEST(Transforms, MdNormIncludesGoniometer) {
  const OrientedLattice lattice(Lattice::benzil(), V3{0, 0, 1}, V3{1, 0, 0});
  const Projection projection;
  const M33 r = rotationAboutAxis({0, 1, 0}, 0.7);
  const std::vector<M33> ops{M33::identity()};
  const auto withR = mdNormTransforms(projection, lattice, ops, r);
  const auto withoutR =
      mdNormTransforms(projection, lattice, ops, M33::identity());
  // For Q_lab the rotated version must equal the unrotated applied to
  // R⁻¹·Q_lab.
  const V3 qLab{1.2, -0.3, 2.2};
  EXPECT_LT(maxAbsDiff(withR[0] * qLab, withoutR[0] * (r.transposed() * qLab)),
            1e-12);
}

// ---------------------------------------------------------------------------
// BinMD

class BinMDBackends : public ::testing::TestWithParam<Backend> {};
INSTANTIATE_TEST_SUITE_P(AllBackends, BinMDBackends,
                         ::testing::ValuesIn(availableBackends()),
                         [](const auto& paramInfo) {
                           return std::string(backendName(paramInfo.param));
                         });

TEST_P(BinMDBackends, SingleEventLandsInCorrectBin) {
  Histogram3D histogram(BinAxis("x", -5, 5, 10), BinAxis("y", -5, 5, 10),
                        BinAxis("z", -5, 5, 10));
  const double qx = 1.3, qy = -2.7, qz = 0.4, weight = 2.5;
  BinMDInputs inputs;
  const M33 identity = M33::identity();
  inputs.transforms = std::span<const M33>(&identity, 1);
  inputs.qx = &qx;
  inputs.qy = &qy;
  inputs.qz = &qz;
  inputs.signal = &weight;
  inputs.nEvents = 1;

  const Executor executor(GetParam());
  runBinMD(executor, inputs, histogram.gridView());
  EXPECT_DOUBLE_EQ(histogram.totalSignal(), 2.5);
  EXPECT_DOUBLE_EQ(histogram.at(6, 2, 5), 2.5); // (1.3,-2.7,0.4) bins
}

TEST_P(BinMDBackends, ConservesInBoundsSignalMass) {
  Histogram3D histogram(BinAxis("x", -10, 10, 33), BinAxis("y", -10, 10, 27),
                        BinAxis("z", -10, 10, 5));
  Xoshiro256 rng(55);
  const std::size_t n = 20000;
  std::vector<double> qx(n), qy(n), qz(n), signal(n);
  double inBoundsMass = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    qx[i] = rng.uniform(-12, 12); // some out of bounds on purpose
    qy[i] = rng.uniform(-12, 12);
    qz[i] = rng.uniform(-12, 12);
    signal[i] = rng.uniform(0.1, 2.0);
    if (std::fabs(qx[i]) < 10 && std::fabs(qy[i]) < 10 && std::fabs(qz[i]) < 10) {
      inBoundsMass += signal[i];
    }
  }
  BinMDInputs inputs;
  const M33 identity = M33::identity();
  inputs.transforms = std::span<const M33>(&identity, 1);
  inputs.qx = qx.data();
  inputs.qy = qy.data();
  inputs.qz = qz.data();
  inputs.signal = signal.data();
  inputs.nEvents = n;

  const Executor executor(GetParam());
  runBinMD(executor, inputs, histogram.gridView());
  EXPECT_NEAR(histogram.totalSignal(), inBoundsMass, 1e-8);
}

TEST_P(BinMDBackends, SymmetryMultipliesMassByOrder) {
  // With a rotation group and a symmetric box, every op deposits the
  // full event mass once.
  Histogram3D histogram(BinAxis("x", -10, 10, 21), BinAxis("y", -10, 10, 21),
                        BinAxis("z", -10, 10, 21));
  const PointGroup group("23"); // 12 rotations, box is cubic-symmetric
  const auto ops = group.matrices();

  Xoshiro256 rng(66);
  const std::size_t n = 2000;
  std::vector<double> qx(n), qy(n), qz(n), signal(n);
  for (std::size_t i = 0; i < n; ++i) {
    qx[i] = rng.uniform(-8, 8);
    qy[i] = rng.uniform(-8, 8);
    qz[i] = rng.uniform(-8, 8);
    signal[i] = 1.0;
  }
  BinMDInputs inputs;
  inputs.transforms = ops;
  inputs.qx = qx.data();
  inputs.qy = qy.data();
  inputs.qz = qz.data();
  inputs.signal = signal.data();
  inputs.nEvents = n;

  const Executor executor(GetParam());
  runBinMD(executor, inputs, histogram.gridView());
  EXPECT_NEAR(histogram.totalSignal(), static_cast<double>(n * ops.size()),
              1e-6);
}

TEST(BinMD, BackendsAgreeBinForBin) {
  const ExperimentSetup setup(WorkloadSpec::benzilCorelli(0.001));
  const EventGenerator generator = setup.makeGenerator();
  const EventTable events = generator.generate(0);
  const auto transforms = binMdTransforms(setup.projection(), setup.lattice(),
                                          setup.symmetryMatrices());
  BinMDInputs inputs;
  inputs.transforms = transforms;
  inputs.qx = events.column(EventTable::Qx).data();
  inputs.qy = events.column(EventTable::Qy).data();
  inputs.qz = events.column(EventTable::Qz).data();
  inputs.signal = events.column(EventTable::Signal).data();
  inputs.nEvents = events.size();

  Histogram3D reference = setup.makeHistogram();
  runBinMD(Executor(Backend::Serial), inputs, reference.gridView());

  for (Backend backend : availableBackends()) {
    Histogram3D histogram = setup.makeHistogram();
    runBinMD(Executor(backend), inputs, histogram.gridView());
    double worst = 0.0;
    for (std::size_t i = 0; i < histogram.size(); ++i) {
      worst = std::max(worst,
                       std::fabs(histogram.data()[i] - reference.data()[i]));
    }
    EXPECT_LT(worst, 1e-9) << backendName(backend);
  }
}

TEST(BinMD, ErrorPropagationAccumulatesSquaredErrors) {
  Histogram3D signal(BinAxis("x", -5, 5, 10), BinAxis("y", -5, 5, 10),
                     BinAxis("z", -5, 5, 10));
  Histogram3D errors = signal.emptyLike();

  const std::size_t n = 3;
  const double qx[n] = {1.0, 1.0, -2.0};
  const double qy[n] = {0.0, 0.0, 0.0};
  const double qz[n] = {0.0, 0.0, 0.0};
  const double weight[n] = {2.0, 3.0, 1.0};
  const double errorSq[n] = {4.0, 9.0, 1.0};

  BinMDInputs inputs;
  const M33 identity = M33::identity();
  inputs.transforms = std::span<const M33>(&identity, 1);
  inputs.qx = qx;
  inputs.qy = qy;
  inputs.qz = qz;
  inputs.signal = weight;
  inputs.errorSq = errorSq;
  inputs.nEvents = n;

  runBinMD(Executor(Backend::Serial), inputs, signal.gridView(),
           errors.gridView());
  // Events 0,1 share a bin: signal 5, sigma^2 13; event 2 alone: 1, 1.
  EXPECT_DOUBLE_EQ(signal.at(6, 5, 5), 5.0);
  EXPECT_DOUBLE_EQ(errors.at(6, 5, 5), 13.0);
  EXPECT_DOUBLE_EQ(signal.at(3, 5, 5), 1.0);
  EXPECT_DOUBLE_EQ(errors.at(3, 5, 5), 1.0);
}

TEST(BinMD, ErrorVariantRequiresErrorColumn) {
  Histogram3D signal(BinAxis("x", -1, 1, 2), BinAxis("y", -1, 1, 2),
                     BinAxis("z", -1, 1, 2));
  Histogram3D errors = signal.emptyLike();
  const double qx = 0.0, qy = 0.0, qz = 0.0, weight = 1.0;
  BinMDInputs inputs;
  const M33 identity = M33::identity();
  inputs.transforms = std::span<const M33>(&identity, 1);
  inputs.qx = &qx;
  inputs.qy = &qy;
  inputs.qz = &qz;
  inputs.signal = &weight;
  inputs.nEvents = 1; // errorSq left null
  EXPECT_THROW(runBinMD(Executor(Backend::Serial), inputs, signal.gridView(),
                        errors.gridView()),
               InvalidArgument);
}

TEST(BinMD, EmptyInputsAreNoOps) {
  Histogram3D histogram(BinAxis("x", -1, 1, 2), BinAxis("y", -1, 1, 2),
                        BinAxis("z", -1, 1, 2));
  BinMDInputs inputs; // zero events, zero transforms
  runBinMD(Executor(Backend::Serial), inputs, histogram.gridView());
  EXPECT_DOUBLE_EQ(histogram.totalSignal(), 0.0);
}

// ---------------------------------------------------------------------------
// MDNorm

/// Single detector, flat flux, identity everything: normalization mass
/// is solidAngle · charge · (Φ(kExit) − Φ(kEnter)) over the in-box span.
TEST(MDNorm, SingleDetectorAnalyticMass) {
  Histogram3D histogram(BinAxis("x", -10, 10, 20), BinAxis("y", -10, 10, 20),
                        BinAxis("z", -10, 10, 20));
  // Trajectory t = (1,0,0) direction: transform identity, q direction x.
  const M33 identity = M33::identity();
  const V3 qDirection{1.0, 0.0, 0.0};
  const double solidAngle = 0.002;
  const FluxSpectrum flux = FluxSpectrum::flat(1.0, 9.0, 64, 8.0);

  MDNormInputs inputs;
  inputs.transforms = std::span<const M33>(&identity, 1);
  inputs.qLabDirections = std::span<const V3>(&qDirection, 1);
  inputs.solidAngles = std::span<const double>(&solidAngle, 1);
  inputs.flux = flux.view();
  inputs.protonCharge = 2.0;
  inputs.kMin = 1.0;
  inputs.kMax = 9.0;

  Histogram3D normalization = histogram.emptyLike();
  runMDNorm(Executor(Backend::Serial), inputs, normalization.gridView());

  // The ray p = (k, 0, 0) stays in the box for k in [1, 9] entirely
  // (box extends to 10), so the whole band integral deposits:
  // solidAngle · charge · Φ(9)−Φ(1) = 0.002 · 2 · 8.
  EXPECT_NEAR(normalization.totalSignal(), 0.002 * 2.0 * 8.0, 1e-12);
  // Deposits lie along the +x row of bins at y=z=0.
  EXPECT_GT(normalization.at(15, 10, 10), 0.0);
  EXPECT_DOUBLE_EQ(normalization.at(10, 15, 10), 0.0);
}

TEST(MDNorm, ClippedTrajectoryDepositsPartialIntegral) {
  // Box only covers x < 5: the k in [5, 9] part of the band is outside.
  Histogram3D normalization(BinAxis("x", -5, 5, 10), BinAxis("y", -5, 5, 10),
                            BinAxis("z", -5, 5, 10));
  const M33 identity = M33::identity();
  const V3 qDirection{1.0, 0.0, 0.0};
  const double solidAngle = 1.0;
  const FluxSpectrum flux = FluxSpectrum::flat(1.0, 9.0, 64, 8.0);

  MDNormInputs inputs;
  inputs.transforms = std::span<const M33>(&identity, 1);
  inputs.qLabDirections = std::span<const V3>(&qDirection, 1);
  inputs.solidAngles = std::span<const double>(&solidAngle, 1);
  inputs.flux = flux.view();
  inputs.protonCharge = 1.0;
  inputs.kMin = 1.0;
  inputs.kMax = 9.0;

  runMDNorm(Executor(Backend::Serial), inputs, normalization.gridView());
  // In-box portion: k in [1, 5) → flat flux contributes (5-1)/(9-1)·8 = 4.
  EXPECT_NEAR(normalization.totalSignal(), 4.0, 1e-9);
}

TEST(MDNorm, VariantsProduceIdenticalHistograms) {
  // ROI vs Linear search and legacy vs sorted-keys vs streaming-DDA
  // traversal are pure optimizations: every combination must agree
  // bin-for-bin.
  const ExperimentSetup setup(WorkloadSpec::benzilCorelli(0.0005));
  const EventGenerator generator = setup.makeGenerator();
  const RunInfo run = generator.runInfo(0);
  const auto transforms =
      mdNormTransforms(setup.projection(), setup.lattice(),
                       setup.symmetryMatrices(), run.goniometerR);

  MDNormInputs inputs;
  inputs.transforms = transforms;
  inputs.qLabDirections = setup.instrument().qLabDirections();
  inputs.solidAngles = setup.instrument().solidAngles();
  inputs.flux = setup.flux().view();
  inputs.protonCharge = run.protonCharge;
  inputs.kMin = run.kMin;
  inputs.kMax = run.kMax;

  Histogram3D reference = setup.makeHistogram();
  runMDNorm(Executor(Backend::Serial), inputs, reference.gridView(),
            MDNormOptions{PlaneSearch::Linear, Traversal::Legacy});

  for (const PlaneSearch search : {PlaneSearch::Linear, PlaneSearch::Roi}) {
    for (const Traversal traversal :
         {Traversal::Legacy, Traversal::SortedKeys, Traversal::Dda}) {
      Histogram3D histogram = setup.makeHistogram();
      runMDNorm(Executor(Backend::Serial), inputs, histogram.gridView(),
                MDNormOptions{search, traversal});
      double worst = 0.0;
      for (std::size_t i = 0; i < histogram.size(); ++i) {
        worst = std::max(worst, std::fabs(histogram.data()[i] -
                                          reference.data()[i]));
      }
      EXPECT_LT(worst, 1e-12)
          << "search=" << (search == PlaneSearch::Roi ? "roi" : "linear")
          << " traversal=" << traversalName(traversal);
    }
  }
}

TEST(MDNorm, BackendsAgreeWithinTolerance) {
  const ExperimentSetup setup(WorkloadSpec::benzilCorelli(0.0005));
  const EventGenerator generator = setup.makeGenerator();
  const RunInfo run = generator.runInfo(1);
  const auto transforms =
      mdNormTransforms(setup.projection(), setup.lattice(),
                       setup.symmetryMatrices(), run.goniometerR);

  MDNormInputs inputs;
  inputs.transforms = transforms;
  inputs.qLabDirections = setup.instrument().qLabDirections();
  inputs.solidAngles = setup.instrument().solidAngles();
  inputs.flux = setup.flux().view();
  inputs.protonCharge = run.protonCharge;
  inputs.kMin = run.kMin;
  inputs.kMax = run.kMax;

  Histogram3D reference = setup.makeHistogram();
  runMDNorm(Executor(Backend::Serial), inputs, reference.gridView());

  for (Backend backend : availableBackends()) {
    Histogram3D histogram = setup.makeHistogram();
    runMDNorm(Executor(backend), inputs, histogram.gridView());
    double worstRelative = 0.0;
    for (std::size_t i = 0; i < histogram.size(); ++i) {
      const double a = histogram.data()[i], b = reference.data()[i];
      const double scale = std::max({std::fabs(a), std::fabs(b), 1e-30});
      worstRelative = std::max(worstRelative, std::fabs(a - b) / scale);
    }
    EXPECT_LT(worstRelative, 1e-9) << backendName(backend);
  }
}

TEST(MDNorm, NormalizationAdditiveOverOps) {
  // Running ops one at a time and summing equals running them together.
  const ExperimentSetup setup(WorkloadSpec::benzilCorelli(0.0005));
  const EventGenerator generator = setup.makeGenerator();
  const RunInfo run = generator.runInfo(0);
  const auto transforms =
      mdNormTransforms(setup.projection(), setup.lattice(),
                       setup.symmetryMatrices(), run.goniometerR);

  MDNormInputs inputs;
  inputs.qLabDirections = setup.instrument().qLabDirections();
  inputs.solidAngles = setup.instrument().solidAngles();
  inputs.flux = setup.flux().view();
  inputs.protonCharge = run.protonCharge;
  inputs.kMin = run.kMin;
  inputs.kMax = run.kMax;

  Histogram3D together = setup.makeHistogram();
  inputs.transforms = transforms;
  runMDNorm(Executor(Backend::Serial), inputs, together.gridView());

  Histogram3D oneByOne = setup.makeHistogram();
  for (const M33& transform : transforms) {
    inputs.transforms = std::span<const M33>(&transform, 1);
    runMDNorm(Executor(Backend::Serial), inputs, oneByOne.gridView());
  }

  double worst = 0.0;
  for (std::size_t i = 0; i < together.size(); ++i) {
    worst = std::max(worst, std::fabs(together.data()[i] -
                                      oneByOne.data()[i]));
  }
  EXPECT_LT(worst, 1e-10);
}

TEST(MDNorm, EstimatorBoundsActualIntersections) {
  const ExperimentSetup setup(WorkloadSpec::benzilCorelli(0.0005));
  const EventGenerator generator = setup.makeGenerator();
  const RunInfo run = generator.runInfo(0);
  const auto transforms =
      mdNormTransforms(setup.projection(), setup.lattice(),
                       setup.symmetryMatrices(), run.goniometerR);

  MDNormInputs inputs;
  inputs.transforms = transforms;
  inputs.qLabDirections = setup.instrument().qLabDirections();
  inputs.solidAngles = setup.instrument().solidAngles();
  inputs.flux = setup.flux().view();
  inputs.protonCharge = run.protonCharge;
  inputs.kMin = run.kMin;
  inputs.kMax = run.kMax;

  Histogram3D histogram = setup.makeHistogram();
  const GridView grid = histogram.gridView();
  const std::size_t estimate =
      estimateMaxIntersections(Executor(Backend::Serial), inputs, grid);
  EXPECT_GT(estimate, 0u);
  EXPECT_LE(estimate, maxIntersections(grid)); // the paper's bound
}

TEST(MDNorm, PrecomputedTrajectoriesAreBitIdentical) {
  // The fused pre-pass hands both kernels a trajectory table; consuming
  // it must not change a single bit versus the inline multiply.
  const ExperimentSetup setup(WorkloadSpec::benzilCorelli(0.0005));
  const EventGenerator generator = setup.makeGenerator();
  const RunInfo run = generator.runInfo(0);
  const auto transforms =
      mdNormTransforms(setup.projection(), setup.lattice(),
                       setup.symmetryMatrices(), run.goniometerR);
  const auto qDirections = setup.instrument().qLabDirections();

  MDNormInputs inputs;
  inputs.transforms = transforms;
  inputs.qLabDirections = qDirections;
  inputs.solidAngles = setup.instrument().solidAngles();
  inputs.flux = setup.flux().view();
  inputs.protonCharge = run.protonCharge;
  inputs.kMin = run.kMin;
  inputs.kMax = run.kMax;

  const Executor executor(Backend::Serial);
  Histogram3D inline_ = setup.makeHistogram();
  runMDNorm(executor, inputs, inline_.gridView());
  const std::size_t inlineEstimate =
      estimateMaxIntersections(executor, inputs, inline_.gridView());

  std::vector<V3> table(transforms.size() * qDirections.size());
  computeTrajectories(executor, transforms, qDirections, table.data());
  for (std::size_t op = 0; op < transforms.size(); ++op) {
    for (std::size_t d = 0; d < qDirections.size(); ++d) {
      const V3 expected = transforms[op] * qDirections[d];
      const V3& got = table[op * qDirections.size() + d];
      ASSERT_EQ(got.x, expected.x);
      ASSERT_EQ(got.y, expected.y);
      ASSERT_EQ(got.z, expected.z);
    }
  }

  inputs.trajectories = table;
  Histogram3D fused = setup.makeHistogram();
  runMDNorm(executor, inputs, fused.gridView());
  EXPECT_EQ(estimateMaxIntersections(executor, inputs, fused.gridView()),
            inlineEstimate);
  ASSERT_EQ(fused.size(), inline_.size());
  for (std::size_t i = 0; i < fused.size(); ++i) {
    ASSERT_EQ(fused.data()[i], inline_.data()[i]) << "bin " << i;
  }
}

TEST(MDNorm, MismatchedTrajectoryTableThrows) {
  Histogram3D histogram(BinAxis("x", -1, 1, 2), BinAxis("y", -1, 1, 2),
                        BinAxis("z", -1, 1, 2));
  const M33 identity = M33::identity();
  const V3 direction{1, 0, 0};
  const double solidAngle = 1.0;
  const FluxSpectrum flux = FluxSpectrum::flat(1.0, 2.0, 4, 1.0);
  const std::vector<V3> wrongLength(3);

  MDNormInputs inputs;
  inputs.transforms = std::span<const M33>(&identity, 1);
  inputs.qLabDirections = std::span<const V3>(&direction, 1);
  inputs.solidAngles = std::span<const double>(&solidAngle, 1);
  inputs.flux = flux.view();
  inputs.kMin = 1.0;
  inputs.kMax = 2.0;
  inputs.trajectories = wrongLength; // needs exactly 1 × 1 entries
  EXPECT_THROW(
      runMDNorm(Executor(Backend::Serial), inputs, histogram.gridView()),
      InvalidArgument);
}

TEST(MDNorm, ScratchShrinksAfterMuchSmallerGrid) {
  // Thread-local kernel scratch grows to the largest grid seen; a much
  // smaller follow-up grid must release the oversized buffer instead of
  // pinning the high-water footprint.  Serial executes on this thread,
  // so the test observes this thread's scratch.
  const Executor executor(Backend::Serial);
  const M33 identity = M33::identity();
  const V3 direction{1.0, 1.0, 1.0};

  MDNormInputs inputs;
  inputs.transforms = std::span<const M33>(&identity, 1);
  inputs.qLabDirections = std::span<const V3>(&direction, 1);
  inputs.kMin = 1.0;
  inputs.kMax = 2.0;

  // estimateMaxIntersections only reads grid geometry, so a data-less
  // view is enough to drive the scratch sizing.
  const auto geometryOnly = [](std::size_t nx, std::size_t ny, std::size_t nz) {
    GridView grid;
    for (std::size_t axis = 0; axis < 3; ++axis) {
      grid.min[axis] = -10.0;
      grid.max[axis] = 10.0;
    }
    grid.n[0] = nx;
    grid.n[1] = ny;
    grid.n[2] = nz;
    for (std::size_t axis = 0; axis < 3; ++axis) {
      grid.inverseWidth[axis] =
          static_cast<double>(grid.n[axis]) / (grid.max[axis] - grid.min[axis]);
    }
    return grid;
  };

  const GridView huge = geometryOnly(4000, 4000, 4000);
  estimateMaxIntersections(executor, inputs, huge);
  EXPECT_GE(mdnormScratchCapacityForTesting(), maxIntersections(huge));

  const GridView small = geometryOnly(8, 8, 8);
  estimateMaxIntersections(executor, inputs, small);
  EXPECT_EQ(mdnormScratchCapacityForTesting(), maxIntersections(small));

  // Comparable sizes must NOT thrash: a slightly smaller grid (within
  // the 4× hysteresis) keeps the existing buffer.
  const GridView slightlySmaller = geometryOnly(6, 6, 6);
  estimateMaxIntersections(executor, inputs, slightlySmaller);
  EXPECT_EQ(mdnormScratchCapacityForTesting(), maxIntersections(small));
}

TEST(MDNorm, InvalidInputsThrow) {
  Histogram3D histogram(BinAxis("x", -1, 1, 2), BinAxis("y", -1, 1, 2),
                        BinAxis("z", -1, 1, 2));
  const M33 identity = M33::identity();
  const V3 direction{1, 0, 0};
  const double solidAngle = 1.0;
  const FluxSpectrum flux = FluxSpectrum::flat(1.0, 2.0, 4, 1.0);

  MDNormInputs inputs;
  inputs.transforms = std::span<const M33>(&identity, 1);
  inputs.qLabDirections = std::span<const V3>(&direction, 1);
  inputs.solidAngles = std::span<const double>(&solidAngle, 1);
  inputs.flux = flux.view();
  inputs.kMin = 2.0;
  inputs.kMax = 1.0; // inverted band
  EXPECT_THROW(
      runMDNorm(Executor(Backend::Serial), inputs, histogram.gridView()),
      InvalidArgument);
}

} // namespace
} // namespace vates
