// Tests for axis binning, projections, the 3D histogram, and GridView.

#include "vates/histogram/binning.hpp"
#include "vates/histogram/grid_view.hpp"
#include "vates/histogram/histogram3d.hpp"
#include "vates/parallel/thread_pool.hpp"
#include "vates/support/error.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace vates {
namespace {

Histogram3D makeSmall() {
  return Histogram3D(BinAxis("x", -1.0, 1.0, 4), BinAxis("y", 0.0, 2.0, 5),
                     BinAxis("z", -0.5, 0.5, 1));
}

// ---------------------------------------------------------------------------
// BinAxis

TEST(BinAxis, BasicProperties) {
  const BinAxis axis("H", -7.5, 7.5, 603);
  EXPECT_EQ(axis.nBins(), 603u);
  EXPECT_DOUBLE_EQ(axis.width(), 15.0 / 603.0);
  EXPECT_EQ(axis.name(), "H");
}

TEST(BinAxis, BinLookupHalfOpen) {
  const BinAxis axis("x", 0.0, 10.0, 10);
  EXPECT_EQ(axis.bin(0.0).value(), 0u);
  EXPECT_EQ(axis.bin(0.999).value(), 0u);
  EXPECT_EQ(axis.bin(1.0).value(), 1u);
  EXPECT_EQ(axis.bin(9.9999).value(), 9u);
  EXPECT_FALSE(axis.bin(10.0).has_value()); // upper edge excluded
  EXPECT_FALSE(axis.bin(-0.001).has_value());
  EXPECT_EQ(axis.binClamped(5.5), 5u);
  EXPECT_EQ(axis.binClamped(10.0), 10u); // sentinel == nBins
}

TEST(BinAxis, EdgesAndCenters) {
  const BinAxis axis("x", -1.0, 1.0, 4);
  const auto edges = axis.edges();
  ASSERT_EQ(edges.size(), 5u);
  EXPECT_DOUBLE_EQ(edges.front(), -1.0);
  EXPECT_DOUBLE_EQ(edges.back(), 1.0);
  EXPECT_DOUBLE_EQ(axis.center(0), -0.75);
  EXPECT_DOUBLE_EQ(axis.center(3), 0.75);
}

TEST(BinAxis, EveryCenterLandsInItsBin) {
  const BinAxis axis("x", -3.3, 9.7, 601);
  for (std::size_t i = 0; i < axis.nBins(); i += 7) {
    EXPECT_EQ(axis.bin(axis.center(i)).value(), i);
  }
}

TEST(BinAxis, NaNAndInfinityAreOutOfRange) {
  const BinAxis axis("x", -1.0, 1.0, 4);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(axis.bin(nan).has_value());
  EXPECT_FALSE(axis.bin(inf).has_value());
  EXPECT_FALSE(axis.bin(-inf).has_value());
  EXPECT_EQ(axis.binClamped(nan), axis.nBins());
  EXPECT_EQ(axis.binClamped(inf), axis.nBins());
}

TEST(GridViewSafety, NaNCoordinatesNeverBin) {
  Histogram3D histogram(BinAxis("x", -1, 1, 4), BinAxis("y", -1, 1, 4),
                        BinAxis("z", -1, 1, 4));
  const GridView view = histogram.gridView();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(view.locate({nan, 0.0, 0.0}), view.size());
  EXPECT_EQ(view.locate({0.0, nan, 0.0}), view.size());
  EXPECT_EQ(view.locate({0.0, 0.0, nan}), view.size());
  EXPECT_FALSE(histogram.addAtomic({nan, nan, nan}, 1.0));
  EXPECT_DOUBLE_EQ(histogram.totalSignal(), 0.0);
}

TEST(BinAxis, InvalidConstructionThrows) {
  EXPECT_THROW(BinAxis("x", 0.0, 1.0, 0), InvalidArgument);
  EXPECT_THROW(BinAxis("x", 1.0, 1.0, 5), InvalidArgument);
  EXPECT_THROW(BinAxis("x", 2.0, 1.0, 5), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Projection

TEST(Projection, IdentityByDefault) {
  const Projection projection;
  const V3 hkl{1.5, -2.0, 3.0};
  EXPECT_LT(maxAbsDiff(projection.toProjected(hkl), hkl), 1e-14);
  EXPECT_EQ(projection.axisLabel(0), "[H]");
  EXPECT_EQ(projection.axisLabel(1), "[K]");
  EXPECT_EQ(projection.axisLabel(2), "[L]");
}

TEST(Projection, BenzilSliceMapsDiagonals) {
  const Projection projection = Projection::benzilSlice();
  // hkl = (1,1,0) is exactly 1 unit along the first axis.
  EXPECT_LT(maxAbsDiff(projection.toProjected({1, 1, 0}), V3{1, 0, 0}), 1e-12);
  EXPECT_LT(maxAbsDiff(projection.toProjected({1, -1, 0}), V3{0, 1, 0}),
            1e-12);
  EXPECT_LT(maxAbsDiff(projection.toProjected({0, 0, 1}), V3{0, 0, 1}), 1e-12);
  EXPECT_EQ(projection.axisLabel(0), "[H,H]");
  EXPECT_EQ(projection.axisLabel(1), "[H,-H]");
  EXPECT_EQ(projection.axisLabel(2), "[L]");
}

TEST(Projection, RoundTrip) {
  const Projection projection({1, 1, 0}, {0, 1, 1}, {1, 0, 1});
  const V3 hkl{2.5, -1.5, 0.5};
  EXPECT_LT(maxAbsDiff(projection.toHkl(projection.toProjected(hkl)), hkl),
            1e-12);
}

TEST(Projection, CoplanarVectorsThrow) {
  EXPECT_THROW(Projection({1, 0, 0}, {0, 1, 0}, {1, 1, 0}), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Histogram3D

TEST(Histogram3D, ShapeAndIndexing) {
  Histogram3D histogram = makeSmall();
  EXPECT_EQ(histogram.nx(), 4u);
  EXPECT_EQ(histogram.ny(), 5u);
  EXPECT_EQ(histogram.nz(), 1u);
  EXPECT_EQ(histogram.size(), 20u);
  EXPECT_EQ(histogram.flatIndex(1, 2, 0), 7u);
}

TEST(Histogram3D, AddAndLocate) {
  Histogram3D histogram = makeSmall();
  EXPECT_TRUE(histogram.addSerial({-0.9, 0.1, 0.0}, 2.0)); // bin (0,0,0)
  EXPECT_TRUE(histogram.addSerial({0.9, 1.9, 0.0}, 3.0));  // bin (3,4,0)
  EXPECT_FALSE(histogram.addSerial({2.0, 0.1, 0.0}, 1.0)); // out of x
  EXPECT_FALSE(histogram.addSerial({0.0, 0.1, 0.6}, 1.0)); // out of z
  EXPECT_DOUBLE_EQ(histogram.at(0, 0, 0), 2.0);
  EXPECT_DOUBLE_EQ(histogram.at(3, 4, 0), 3.0);
  EXPECT_DOUBLE_EQ(histogram.totalSignal(), 5.0);
  EXPECT_EQ(histogram.nonZeroBins(), 2u);
}

TEST(Histogram3D, AtomicAddFromManyThreads) {
  Histogram3D histogram = makeSmall();
  ThreadPool pool(4);
  pool.run(FunctionRef<void(unsigned)>([&](unsigned) {
    for (int i = 0; i < 10000; ++i) {
      histogram.addAtomic({0.1, 1.0, 0.0}, 1.0);
    }
  }));
  EXPECT_DOUBLE_EQ(histogram.totalSignal(), 40000.0);
}

TEST(Histogram3D, PlusEqualsAndShapeMismatch) {
  Histogram3D a = makeSmall();
  Histogram3D b = makeSmall();
  a.addSerial({0.1, 0.1, 0.0}, 1.0);
  b.addSerial({0.1, 0.1, 0.0}, 2.0);
  a += b;
  EXPECT_DOUBLE_EQ(a.totalSignal(), 3.0);

  Histogram3D different(BinAxis("x", -1, 1, 3), BinAxis("y", 0, 2, 5),
                        BinAxis("z", -0.5, 0.5, 1));
  EXPECT_THROW(a += different, InvalidArgument);
}

TEST(Histogram3D, DivideProducesNaNWhereUncovered) {
  Histogram3D numerator = makeSmall();
  Histogram3D denominator = makeSmall();
  numerator.addSerial({0.1, 0.1, 0.0}, 6.0);
  denominator.addSerial({0.1, 0.1, 0.0}, 2.0);
  const Histogram3D ratio = Histogram3D::divide(numerator, denominator);
  const auto index = numerator.locate({0.1, 0.1, 0.0}).value();
  EXPECT_DOUBLE_EQ(ratio.data()[index], 3.0);
  // Any bin with zero normalization must be NaN.
  std::size_t nanCount = 0;
  for (double value : ratio.data()) {
    if (std::isnan(value)) {
      ++nanCount;
    }
  }
  EXPECT_EQ(nanCount, ratio.size() - 1);
}

TEST(Histogram3D, DivideWithErrorsPropagatesSigma) {
  Histogram3D numerator = makeSmall();
  Histogram3D numeratorErrors = makeSmall();
  Histogram3D denominator = makeSmall();
  numerator.addSerial({0.1, 0.1, 0.0}, 6.0);
  numeratorErrors.addSerial({0.1, 0.1, 0.0}, 6.0); // Poisson: sigma^2 = S
  denominator.addSerial({0.1, 0.1, 0.0}, 2.0);

  const HistogramRatio ratio = Histogram3D::divideWithErrors(
      numerator, numeratorErrors, denominator);
  const auto index = numerator.locate({0.1, 0.1, 0.0}).value();
  EXPECT_DOUBLE_EQ(ratio.value.data()[index], 3.0);
  // sigma^2(S/N) = sigma^2(S)/N^2 = 6/4.
  EXPECT_DOUBLE_EQ(ratio.errorSq.data()[index], 1.5);
  // Uncovered bins are NaN in both value and error.
  const auto other = numerator.locate({0.6, 0.1, 0.0}).value();
  EXPECT_TRUE(std::isnan(ratio.value.data()[other]));
  EXPECT_TRUE(std::isnan(ratio.errorSq.data()[other]));
}

TEST(Histogram3D, FillAndEmptyLike) {
  Histogram3D histogram = makeSmall();
  histogram.fill(2.5);
  EXPECT_DOUBLE_EQ(histogram.totalSignal(), 2.5 * 20);
  const Histogram3D empty = histogram.emptyLike();
  EXPECT_DOUBLE_EQ(empty.totalSignal(), 0.0);
  EXPECT_TRUE(empty.sameShape(histogram));
}

// ---------------------------------------------------------------------------
// GridView

TEST(GridView, MatchesHistogramLocate) {
  Histogram3D histogram = makeSmall();
  const GridView view = histogram.gridView();
  for (const V3 p : {V3{-0.9, 0.1, 0.0}, V3{0.9, 1.9, 0.0}, V3{0.0, 1.0, 0.4},
                     V3{2.0, 0.1, 0.0}, V3{0.0, -0.1, 0.0}}) {
    const auto expected = histogram.locate(p);
    const std::size_t actual = view.locate(p);
    if (expected.has_value()) {
      EXPECT_EQ(actual, expected.value());
    } else {
      EXPECT_EQ(actual, view.size());
    }
  }
}

TEST(GridView, WritesThroughToHistogram) {
  Histogram3D histogram = makeSmall();
  GridView view = histogram.gridView();
  view.data[view.locate({0.1, 0.1, 0.0})] += 4.0;
  EXPECT_DOUBLE_EQ(histogram.totalSignal(), 4.0);
}

TEST(GridView, ExternalDataPointer) {
  Histogram3D histogram = makeSmall();
  std::vector<double> external(histogram.size(), 0.0);
  const GridView view = histogram.gridView(external.data());
  EXPECT_EQ(view.data, external.data());
  EXPECT_EQ(view.size(), histogram.size());
}

TEST(GridView, PlaneEdges) {
  Histogram3D histogram = makeSmall();
  const GridView view = histogram.gridShape();
  EXPECT_DOUBLE_EQ(view.planeEdge(0, 0), -1.0);
  EXPECT_DOUBLE_EQ(view.planeEdge(0, 4), 1.0);
  EXPECT_DOUBLE_EQ(view.planeEdge(1, 5), 2.0);
  EXPECT_TRUE(view.contains({0.0, 1.0, 0.0}));
  EXPECT_FALSE(view.contains({0.0, 1.0, 0.5}));
}

} // namespace
} // namespace vates
