// Deeper property tests: physics conservation oracles for MDNorm,
// randomized I/O fuzzing, binning oracles, and parameterized end-to-end
// sweeps across (workload × backend) combinations.

#include "vates/vates.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

namespace vates {
namespace {

// ---------------------------------------------------------------------------
// MDNorm conservation oracle.
//
// For one detector trajectory p(k) = k·t over band [kMin, kMax], the
// total normalization deposited must equal
//   solidAngle · charge · Σ_in-box-spans (Φ(k_exit) − Φ(k_enter)),
// independent of the binning.  We compute the oracle by dense sampling
// of the in-box indicator along k and compare against the kernel's
// histogram total for random trajectories and random grids.

class MDNormConservation : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Seeds, MDNormConservation, ::testing::Range(0, 8));

TEST_P(MDNormConservation, TotalDepositMatchesDenseSamplingOracle) {
  Xoshiro256 rng(9000 + static_cast<std::uint64_t>(GetParam()));

  for (int trial = 0; trial < 10; ++trial) {
    // Random grid.
    const std::size_t nx = 5 + rng.uniformInt(40);
    const std::size_t ny = 5 + rng.uniformInt(40);
    const std::size_t nz = 1 + rng.uniformInt(4);
    Histogram3D histogram(BinAxis("x", -6, 6, nx), BinAxis("y", -6, 6, ny),
                          BinAxis("z", -1, 1, nz));

    // Random trajectory and band.
    const V3 t{rng.uniform(-1.5, 1.5), rng.uniform(-1.5, 1.5),
               rng.uniform(-0.4, 0.4)};
    const double kMin = rng.uniform(0.5, 2.0);
    const double kMax = kMin + rng.uniform(1.0, 6.0);
    const double solidAngle = rng.uniform(0.001, 0.01);
    const double charge = rng.uniform(0.5, 2.0);
    const FluxSpectrum flux =
        FluxSpectrum::moderatorMaxwellian(kMin, kMax, 256, 1.6, 1.0);

    // Kernel result.
    const M33 identity = M33::identity();
    MDNormInputs inputs;
    inputs.transforms = std::span<const M33>(&identity, 1);
    inputs.qLabDirections = std::span<const V3>(&t, 1);
    inputs.solidAngles = std::span<const double>(&solidAngle, 1);
    inputs.flux = flux.view();
    inputs.protonCharge = charge;
    inputs.kMin = kMin;
    inputs.kMax = kMax;
    runMDNorm(Executor(Backend::Serial), inputs, histogram.gridView());

    // Oracle: dense sampling of the inside-box indicator.  Because the
    // indicator flips only at plane crossings, sampling between the
    // kernel's own crossing momenta is exact; to stay independent we
    // sample densely and integrate Φ over "inside" intervals.
    const GridView grid = histogram.gridShape();
    const int samples = 200000;
    double oracle = 0.0;
    bool wasInside = false;
    double enterK = kMin;
    auto inside = [&](double k) {
      const V3 p = t * k;
      return p.x >= grid.min[0] && p.x < grid.max[0] && p.y >= grid.min[1] &&
             p.y < grid.max[1] && p.z >= grid.min[2] && p.z < grid.max[2];
    };
    for (int i = 0; i <= samples; ++i) {
      const double k =
          kMin + (kMax - kMin) * static_cast<double>(i) / samples;
      const bool isInside = inside(k);
      if (isInside && !wasInside) {
        enterK = k;
      } else if (!isInside && wasInside) {
        oracle += flux.bandIntegral(enterK, k);
      }
      wasInside = isInside;
    }
    if (wasInside) {
      oracle += flux.bandIntegral(enterK, kMax);
    }
    oracle *= solidAngle * charge;

    // Sampling resolution limits the oracle near plane crossings.
    const double tolerance =
        std::max(1e-12, oracle * 5e-3) + solidAngle * charge * 2e-4;
    EXPECT_NEAR(histogram.totalSignal(), oracle, tolerance)
        << "trial " << trial << " t=" << t << " band=[" << kMin << ","
        << kMax << "]";
  }
}

// ---------------------------------------------------------------------------
// BinMD mass-conservation under symmetry for fully-contained events

TEST(BinMDProperty, SymmetryPreservesPerOpMass) {
  Xoshiro256 rng(424242);
  Histogram3D histogram(BinAxis("x", -20, 20, 41), BinAxis("y", -20, 20, 41),
                        BinAxis("z", -20, 20, 41));
  const PointGroup group("m-3m"); // order 48, largest supported
  const auto ops = group.matrices();

  const std::size_t n = 5000;
  std::vector<double> qx(n), qy(n), qz(n), signal(n);
  double mass = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    // Events within radius 19 < 20: every symmetry image stays inside
    // the cubic box (ops permute/negate coordinates).
    qx[i] = rng.uniform(-10, 10);
    qy[i] = rng.uniform(-10, 10);
    qz[i] = rng.uniform(-10, 10);
    signal[i] = rng.uniform(0.1, 2.0);
    mass += signal[i];
  }
  BinMDInputs inputs;
  inputs.transforms = ops;
  inputs.qx = qx.data();
  inputs.qy = qy.data();
  inputs.qz = qz.data();
  inputs.signal = signal.data();
  inputs.nEvents = n;
  runBinMD(Executor(Backend::Serial), inputs, histogram.gridView());
  EXPECT_NEAR(histogram.totalSignal(), mass * static_cast<double>(ops.size()),
              1e-7 * mass * static_cast<double>(ops.size()));
}

// ---------------------------------------------------------------------------
// nxlite fuzz: truncate a valid file at many random byte counts — the
// reader must throw IOError at open or read, never crash or hand back
// silently wrong data.

TEST(NxliteFuzz, TruncationAlwaysDetected) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("vates_fuzz_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string original = (dir / "victim.nxl").string();

  {
    nx::Writer writer(original);
    Xoshiro256 rng(31337);
    for (int d = 0; d < 5; ++d) {
      std::vector<double> data(100 + rng.uniformInt(400));
      for (auto& v : data) {
        v = rng.normal();
      }
      writer.writeFloat64("ds" + std::to_string(d), data);
    }
  }
  const auto fullSize = std::filesystem::file_size(original);
  ASSERT_GT(fullSize, 100u);

  Xoshiro256 rng(777777);
  for (int trial = 0; trial < 40; ++trial) {
    const auto cut = 1 + rng.uniformInt(fullSize - 1);
    const std::string mutant = (dir / "mutant.nxl").string();
    std::filesystem::copy_file(
        original, mutant, std::filesystem::copy_options::overwrite_existing);
    std::filesystem::resize_file(mutant, cut);

    bool threw = false;
    try {
      nx::Reader reader(mutant);
      // Open may succeed when the cut lands beyond the last dataset's
      // directory entry is impossible (cut < fullSize removes at least
      // the final CRC) — but guard anyway: reads must then throw.
      for (const auto& info : reader.datasets()) {
        reader.readFloat64(info.name);
      }
    } catch (const IOError&) {
      threw = true;
    }
    EXPECT_TRUE(threw) << "silent acceptance of truncation at " << cut
                       << " of " << fullSize;
  }
  std::filesystem::remove_all(dir);
}

TEST(NxliteFuzz, BitFlipsAlwaysDetectedInPayloads) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("vates_fuzz_flip_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string original = (dir / "victim.nxl").string();
  {
    nx::Writer writer(original);
    std::vector<double> data(1000, 1.25);
    writer.writeFloat64("payload", data);
  }
  const auto fullSize = std::filesystem::file_size(original);

  Xoshiro256 rng(555);
  int detected = 0, trials = 0;
  for (int trial = 0; trial < 30; ++trial) {
    // Flip a byte strictly inside the payload region (header is ~30
    // bytes; payload is 8000 bytes; CRC trails).
    const auto offset = 40 + rng.uniformInt(7900);
    const std::string mutant = (dir / "mutant.nxl").string();
    std::filesystem::copy_file(
        original, mutant, std::filesystem::copy_options::overwrite_existing);
    {
      std::fstream stream(mutant, std::ios::in | std::ios::out |
                                      std::ios::binary);
      stream.seekg(static_cast<std::streamoff>(offset));
      char byte = 0;
      stream.read(&byte, 1);
      stream.seekp(static_cast<std::streamoff>(offset));
      byte = static_cast<char>(byte ^ 0x40);
      stream.write(&byte, 1);
    }
    ++trials;
    try {
      nx::Reader reader(mutant);
      reader.readFloat64("payload");
    } catch (const IOError&) {
      ++detected;
    }
  }
  EXPECT_EQ(detected, trials);
  (void)fullSize;
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Binning oracle: GridView::locate against brute-force search

TEST(BinningOracle, LocateMatchesBruteForce) {
  Xoshiro256 rng(2468);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t nx = 1 + rng.uniformInt(30);
    const std::size_t ny = 1 + rng.uniformInt(30);
    const std::size_t nz = 1 + rng.uniformInt(5);
    const double x0 = rng.uniform(-10, 0), x1 = x0 + rng.uniform(1, 10);
    const double y0 = rng.uniform(-10, 0), y1 = y0 + rng.uniform(1, 10);
    const double z0 = rng.uniform(-2, 0), z1 = z0 + rng.uniform(0.5, 2);
    Histogram3D histogram(BinAxis("x", x0, x1, nx), BinAxis("y", y0, y1, ny),
                          BinAxis("z", z0, z1, nz));
    const GridView grid = histogram.gridShape();

    for (int probe = 0; probe < 200; ++probe) {
      const V3 p{rng.uniform(x0 - 1, x1 + 1), rng.uniform(y0 - 1, y1 + 1),
                 rng.uniform(z0 - 0.5, z1 + 0.5)};
      // Brute force over the axis edges.
      auto bruteAxis = [&](std::size_t axis, double value) -> std::size_t {
        const BinAxis& binAxis = histogram.axis(axis);
        for (std::size_t b = 0; b < binAxis.nBins(); ++b) {
          if (value >= binAxis.edge(b) && value < binAxis.edge(b + 1)) {
            return b;
          }
        }
        return binAxis.nBins();
      };
      const std::size_t bi = bruteAxis(0, p.x);
      const std::size_t bj = bruteAxis(1, p.y);
      const std::size_t bk = bruteAxis(2, p.z);
      const std::size_t expected =
          (bi == nx || bj == ny || bk == nz)
              ? grid.size()
              : histogram.flatIndex(bi, bj, bk);
      // Edge-epsilon disagreements between multiply-based and
      // comparison-based binning are acceptable only if both sides
      // land in adjacent bins of the same axis; exact agreement is the
      // norm and asserted.
      ASSERT_EQ(grid.locate(p), expected)
          << "p=" << p << " grid " << nx << "x" << ny << "x" << nz;
    }
  }
}

// ---------------------------------------------------------------------------
// End-to-end sweep: workload × backend parameterization

struct SweepCase {
  const char* workload;
  Backend backend;
};

class PipelineSweep : public ::testing::TestWithParam<SweepCase> {};

std::vector<SweepCase> sweepCases() {
  std::vector<SweepCase> cases;
  for (const char* workload : {"benzil", "bixbyite"}) {
    for (Backend backend : {Backend::Serial, Backend::OpenMP,
                            Backend::ThreadPool, Backend::DeviceSim}) {
      if (backendAvailable(backend)) {
        cases.push_back(SweepCase{workload, backend});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    WorkloadsByBackend, PipelineSweep, ::testing::ValuesIn(sweepCases()),
    [](const auto& paramInfo) {
      return std::string(paramInfo.param.workload) + "_" +
             backendName(paramInfo.param.backend);
    });

TEST_P(PipelineSweep, ReducesConsistently) {
  const bool benzil = std::string(GetParam().workload) == "benzil";
  const WorkloadSpec spec = benzil ? WorkloadSpec::benzilCorelli(0.0003)
                                   : WorkloadSpec::bixbyiteTopaz(0.00005);
  const ExperimentSetup setup(spec);
  core::ReductionConfig config;
  config.backend = GetParam().backend;
  config.ranks = 2;
  const core::ReductionResult result =
      core::ReductionPipeline(setup, config).run();

  EXPECT_GT(result.signal.totalSignal(), 0.0);
  EXPECT_GT(result.normalization.totalSignal(), 0.0);
  EXPECT_EQ(result.eventsProcessed, spec.nFiles * spec.eventsPerFile);
  // Cross-section finite where covered.
  std::size_t finiteBins = 0;
  for (double value : result.crossSection.data()) {
    if (std::isfinite(value)) {
      EXPECT_GE(value, 0.0);
      ++finiteBins;
    }
  }
  EXPECT_GT(finiteBins, 0u);
}

// ---------------------------------------------------------------------------
// Determinism: serial reductions are bitwise reproducible

TEST(Determinism, SerialPipelineIsBitwiseReproducible) {
  const ExperimentSetup setup(WorkloadSpec::benzilCorelli(0.0004));
  core::ReductionConfig config;
  config.backend = Backend::Serial;
  const core::ReductionResult a = core::ReductionPipeline(setup, config).run();
  const core::ReductionResult b = core::ReductionPipeline(setup, config).run();
  for (std::size_t i = 0; i < a.signal.size(); ++i) {
    ASSERT_EQ(a.signal.data()[i], b.signal.data()[i]);
    ASSERT_EQ(a.normalization.data()[i], b.normalization.data()[i]);
  }
}

} // namespace
} // namespace vates
