// Tests for the shm ring transport: packet codec exactness, seqlock
// round trips, the failure paths (CRC damage, truncated segment,
// producer death and restart, slow-reader overrun), backpressure
// policies, the ShmEventSource run-boundary state machine, and the
// bitwise equivalence of transported live reduction with the batch
// pipeline.

#include "vates/core/pipeline.hpp"
#include "vates/stream/daq_simulator.hpp"
#include "vates/stream/event_channel.hpp"
#include "vates/stream/live_reducer.hpp"
#include "vates/support/error.hpp"
#include "vates/transport/packet_codec.hpp"
#include "vates/transport/shm_event_source.hpp"
#include "vates/transport/shm_ring.hpp"

#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

namespace vates::transport {
namespace {

using stream::PulsePacket;

/// Unique-per-test shm name so parallel ctest invocations never collide.
std::string testRingName(const std::string& tag) {
  return "/vates-test-" + tag + "-" + std::to_string(::getpid());
}

/// RAII unlink so failed tests don't leak segments into later ones.
struct RingGuard {
  explicit RingGuard(std::string n) : name(std::move(n)) { unlinkRing(name); }
  ~RingGuard() { unlinkRing(name); }
  std::string name;
};

PulsePacket makePacket(std::uint32_t run, std::uint32_t pulse,
                       std::size_t events, bool endOfRun) {
  PulsePacket packet;
  packet.runIndex = run;
  packet.pulseIndex = pulse;
  packet.endOfRun = endOfRun;
  for (std::size_t i = 0; i < events; ++i) {
    packet.events.append(run * 1000 + static_cast<std::uint32_t>(i),
                         1234.5 + 0.25 * static_cast<double>(i), pulse,
                         1.0 / (1.0 + static_cast<double>(i)));
  }
  return packet;
}

/// Map an existing segment for fault injection.  Stores go through
/// atomic_ref so the TSan leg sees the same synchronization the
/// transport itself uses.
struct RawSegment {
  explicit RawSegment(const std::string& name) {
    const int fd = ::shm_open(name.c_str(), O_RDWR, 0);
    if (fd >= 0) {
      bytes = static_cast<std::size_t>(::lseek(fd, 0, SEEK_END));
      base = static_cast<std::uint8_t*>(::mmap(
          nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0));
      ::close(fd);
    }
  }
  ~RawSegment() {
    if (base != MAP_FAILED) {
      ::munmap(base, bytes);
    }
  }
  bool ok() const { return base != MAP_FAILED; }
  void store64(std::size_t offset, std::uint64_t value) {
    std::atomic_ref<std::uint64_t>(
        *reinterpret_cast<std::uint64_t*>(base + offset))
        .store(value, std::memory_order_release);
  }
  std::uint64_t load64(std::size_t offset) {
    return std::atomic_ref<std::uint64_t>(
               *reinterpret_cast<std::uint64_t*>(base + offset))
        .load(std::memory_order_acquire);
  }
  std::uint8_t* base = static_cast<std::uint8_t*>(MAP_FAILED);
  std::size_t bytes = 0;
};

// ---------------------------------------------------------------------------
// Packet codec

TEST(PacketCodec, RoundTripIsExact) {
  PulsePacket packet = makePacket(7, 42, 5, true);
  // Bit-pattern-hostile values: denormal, negative zero, huge.
  packet.events.append(99, 5e-324, 42, -0.0);
  packet.events.append(100, 1.7976931348623157e308, 42, 0.1);

  std::vector<std::uint8_t> frame;
  encodePacket(packet, true, frame);
  EXPECT_EQ(frame.size(), packetFrameBytes(packet.events.size()));

  const DecodedPacket decoded = decodePacket(frame.data(), frame.size());
  EXPECT_TRUE(decoded.runStart);
  EXPECT_EQ(decoded.packet.runIndex, 7u);
  EXPECT_EQ(decoded.packet.pulseIndex, 42u);
  EXPECT_TRUE(decoded.packet.endOfRun);
  ASSERT_EQ(decoded.packet.events.size(), packet.events.size());
  for (std::size_t i = 0; i < packet.events.size(); ++i) {
    EXPECT_EQ(decoded.packet.events.detectorId(i), packet.events.detectorId(i));
    EXPECT_EQ(decoded.packet.events.pulseIndex(i), packet.events.pulseIndex(i));
    // Bitwise, not approximate: memcmp the doubles.
    const double tofA = decoded.packet.events.tof(i);
    const double tofB = packet.events.tof(i);
    EXPECT_EQ(std::memcmp(&tofA, &tofB, sizeof tofA), 0);
    const double weightA = decoded.packet.events.weight(i);
    const double weightB = packet.events.weight(i);
    EXPECT_EQ(std::memcmp(&weightA, &weightB, sizeof weightA), 0);
  }
}

TEST(PacketCodec, EmptyPacketRoundTrips) {
  const PulsePacket packet = makePacket(3, 0, 0, true);
  std::vector<std::uint8_t> frame;
  encodePacket(packet, false, frame);
  const DecodedPacket decoded = decodePacket(frame.data(), frame.size());
  EXPECT_FALSE(decoded.runStart);
  EXPECT_TRUE(decoded.packet.endOfRun);
  EXPECT_EQ(decoded.packet.events.size(), 0u);
}

TEST(PacketCodec, StructuralDamageThrows) {
  std::vector<std::uint8_t> frame;
  encodePacket(makePacket(0, 0, 3, false), false, frame);
  // Truncated buffer.
  EXPECT_THROW(decodePacket(frame.data(), frame.size() - 1), IOError);
  // Unknown kind word.
  std::vector<std::uint8_t> bad = frame;
  bad[0] = 0xFF;
  EXPECT_THROW(decodePacket(bad.data(), bad.size()), IOError);
  // Event count inconsistent with the size.
  bad = frame;
  bad[16] = 77; // nEvents field
  EXPECT_THROW(decodePacket(bad.data(), bad.size()), IOError);
  // Too short to even hold a header.
  EXPECT_THROW(decodePacket(frame.data(), 4), IOError);
}

TEST(PacketCodec, MaxEventsMatchesFrameBytes) {
  EXPECT_EQ(maxEventsPerFrame(kPacketHeaderBytes), 0u);
  const std::size_t capacity = 64 * 1024;
  const std::size_t maxEvents = maxEventsPerFrame(capacity);
  EXPECT_GT(maxEvents, 0u);
  EXPECT_LE(packetFrameBytes(maxEvents), capacity);
  EXPECT_GT(packetFrameBytes(maxEvents + 1), capacity);
}

// ---------------------------------------------------------------------------
// Ring round trip + cold attach

TEST(ShmRing, WriterReaderRoundTrip) {
  const RingGuard guard(testRingName("roundtrip"));
  RingConfig config;
  config.name = guard.name;
  config.frameCount = 16;
  config.framePayloadBytes = 4096;
  ShmRingWriter writer(config);
  EXPECT_FALSE(writer.adoptedExistingSegment());

  ReaderConfig readerConfig;
  readerConfig.name = guard.name;
  ShmRingReader reader(readerConfig);

  std::vector<std::vector<std::uint8_t>> sent;
  for (std::uint32_t i = 0; i < 10; ++i) {
    std::vector<std::uint8_t> payload(100 + 7 * i);
    for (std::size_t b = 0; b < payload.size(); ++b) {
      payload[b] = static_cast<std::uint8_t>(i + b);
    }
    ASSERT_TRUE(writer.publish(payload.data(), payload.size()));
    sent.push_back(std::move(payload));
  }
  writer.finish();

  std::vector<std::uint8_t> payload;
  for (std::uint32_t i = 0; i < 10; ++i) {
    PollResult result = reader.poll(payload);
    ASSERT_EQ(result.status, PollStatus::Frame) << pollStatusName(result.status);
    EXPECT_EQ(result.frameNumber, i);
    EXPECT_EQ(payload, sent[i]);
    EXPECT_GE(result.latencySeconds, 0.0);
  }
  EXPECT_EQ(reader.poll(payload).status, PollStatus::EndOfStream);
  EXPECT_EQ(reader.stats().framesRead, 10u);
  EXPECT_EQ(reader.stats().crcFailures, 0u);
  EXPECT_EQ(writer.stats().framesPublished, 10u);
}

TEST(ShmRing, ColdAttachTimesOutWithoutProducer) {
  const RingGuard guard(testRingName("noproducer"));
  ReaderConfig config;
  config.name = guard.name;
  config.attachTimeoutSeconds = 0.05;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(ShmRingReader reader(config), IOError);
  EXPECT_GE(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count(),
            0.04);
}

TEST(ShmRing, GeometryMismatchOnAdoptThrows) {
  const RingGuard guard(testRingName("geometry"));
  RingConfig config;
  config.name = guard.name;
  config.frameCount = 8;
  config.framePayloadBytes = 1024;
  config.unlinkOnDestroy = false;
  { ShmRingWriter writer(config); }
  RingConfig other = config;
  other.frameCount = 16;
  EXPECT_THROW(ShmRingWriter writer(other), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Failure paths

TEST(ShmRing, CrcDamagedFrameIsSkippedAndCounted) {
  const RingGuard guard(testRingName("crc"));
  RingConfig config;
  config.name = guard.name;
  config.frameCount = 8;
  config.framePayloadBytes = 256;
  ShmRingWriter writer(config);
  ReaderConfig readerConfig;
  readerConfig.name = guard.name;
  ShmRingReader reader(readerConfig);

  std::vector<std::uint8_t> payload(128, 0xAB);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(writer.publish(payload.data(), payload.size()));
  }
  writer.finish();

  // Flip an aligned payload word of frame 1 behind the CRC's back.
  RawSegment segment(guard.name);
  ASSERT_TRUE(segment.ok());
  const std::size_t target =
      frameOffset(1, config.frameCount, config.framePayloadBytes) +
      kFrameHeaderBytes;
  segment.store64(target, ~segment.load64(target));

  std::vector<std::uint8_t> out;
  EXPECT_EQ(reader.poll(out).status, PollStatus::Frame);
  const PollResult damaged = reader.poll(out);
  EXPECT_EQ(damaged.status, PollStatus::Corrupt);
  EXPECT_EQ(damaged.frameNumber, 1u);
  EXPECT_EQ(reader.poll(out).status, PollStatus::Frame); // frame 2 intact
  EXPECT_EQ(reader.poll(out).status, PollStatus::EndOfStream);
  EXPECT_EQ(reader.stats().crcFailures, 1u);
  EXPECT_EQ(reader.stats().framesRead, 2u);
}

TEST(ShmRing, TruncatedSegmentIsRejectedOnAttach) {
  const RingGuard guard(testRingName("truncated"));
  RingConfig config;
  config.name = guard.name;
  config.frameCount = 8;
  config.framePayloadBytes = 1024;
  config.unlinkOnDestroy = false;
  { ShmRingWriter writer(config); } // leaves a valid segment behind

  // Shear off the frame area: the superblock still advertises 8 frames.
  const int fd = ::shm_open(guard.name.c_str(), O_RDWR, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::ftruncate(fd, static_cast<off_t>(kSuperblockBytes)), 0);
  ::close(fd);

  ReaderConfig readerConfig;
  readerConfig.name = guard.name;
  try {
    ShmRingReader reader(readerConfig);
    FAIL() << "attach to a truncated segment must throw";
  } catch (const IOError& error) {
    EXPECT_NE(std::string(error.what()).find("truncated"), std::string::npos);
  }
}

TEST(ShmRing, ProducerDeathMidFrameIsDetected) {
  const RingGuard guard(testRingName("midframe"));
  RingConfig config;
  config.name = guard.name;
  config.frameCount = 8;
  config.framePayloadBytes = 256;
  ShmRingWriter writer(config);
  ReaderConfig readerConfig;
  readerConfig.name = guard.name;
  readerConfig.producerTimeoutSeconds = 0.05;
  ShmRingReader reader(readerConfig);

  std::vector<std::uint8_t> payload(64, 0x11);
  ASSERT_TRUE(writer.publish(payload.data(), payload.size()));

  // Forge a producer that died mid-commit: frame 1 announced via head,
  // its slot seq left odd (write in progress), heartbeat frozen.
  RawSegment segment(guard.name);
  ASSERT_TRUE(segment.ok());
  const std::size_t headOffset = offsetof(Superblock, head);
  const std::size_t seqOffset =
      frameOffset(1, config.frameCount, config.framePayloadBytes) +
      offsetof(FrameHeader, seq);
  segment.store64(seqOffset, 2 * 1 + 1);
  segment.store64(headOffset, 2);
  const std::size_t beatOffset = offsetof(Superblock, heartbeatNs);
  segment.store64(beatOffset, 1); // ancient

  std::vector<std::uint8_t> out;
  EXPECT_EQ(reader.poll(out).status, PollStatus::Frame); // frame 0 fine
  // Frame 1 never completes; once the heartbeat is stale the reader
  // reports the producer lost instead of waiting forever.
  PollStatus status = PollStatus::Waiting;
  for (int i = 0; i < 100 && status == PollStatus::Waiting; ++i) {
    status = reader.poll(out).status;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(status, PollStatus::ProducerLost);
}

TEST(ShmRing, StaleHeartbeatWhileDrainedIsProducerLost) {
  const RingGuard guard(testRingName("stale"));
  RingConfig config;
  config.name = guard.name;
  config.frameCount = 4;
  config.framePayloadBytes = 256;
  ShmRingWriter writer(config);
  ReaderConfig readerConfig;
  readerConfig.name = guard.name;
  readerConfig.producerTimeoutSeconds = 0.05;
  ShmRingReader reader(readerConfig);

  RawSegment segment(guard.name);
  ASSERT_TRUE(segment.ok());
  segment.store64(offsetof(Superblock, heartbeatNs), 1);

  std::vector<std::uint8_t> out;
  PollStatus status = PollStatus::Waiting;
  for (int i = 0; i < 100 && status == PollStatus::Waiting; ++i) {
    status = reader.poll(out).status;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(status, PollStatus::ProducerLost);
}

TEST(ShmRing, ProducerRestartBumpsEpoch) {
  const RingGuard guard(testRingName("restart"));
  RingConfig config;
  config.name = guard.name;
  config.frameCount = 8;
  config.framePayloadBytes = 256;
  config.unlinkOnDestroy = false;

  ReaderConfig readerConfig;
  readerConfig.name = guard.name;
  std::vector<std::uint8_t> payload(64, 0x22);
  std::vector<std::uint8_t> out;

  auto first = std::make_unique<ShmRingWriter>(config);
  ShmRingReader reader(readerConfig);
  ASSERT_TRUE(first->publish(payload.data(), payload.size()));
  EXPECT_EQ(reader.poll(out).status, PollStatus::Frame);
  first.reset(); // producer exits; the segment survives

  // Writer 2 adopts the surviving segment (a producer restart).
  ShmRingWriter writer(config);
  EXPECT_TRUE(writer.adoptedExistingSegment());
  ASSERT_TRUE(writer.publish(payload.data(), payload.size()));

  EXPECT_EQ(reader.poll(out).status, PollStatus::Restarted);
  EXPECT_EQ(reader.stats().producerRestarts, 1u);
  // After acknowledging the restart the reader keeps consuming.
  PollStatus status = PollStatus::Waiting;
  for (int i = 0; i < 100 && status == PollStatus::Waiting; ++i) {
    status = reader.poll(out).status;
  }
  EXPECT_EQ(status, PollStatus::Frame);
}

TEST(ShmRing, SlowReaderOverrunsAndResyncs) {
  const RingGuard guard(testRingName("overrun"));
  RingConfig config;
  config.name = guard.name;
  config.frameCount = 8;
  config.framePayloadBytes = 256;
  config.policy = BackpressurePolicy::DropOldest;
  ShmRingWriter writer(config);
  ReaderConfig readerConfig;
  readerConfig.name = guard.name;
  ShmRingReader reader(readerConfig);

  const std::uint64_t total = 64;
  std::vector<std::uint8_t> payload(64);
  for (std::uint64_t i = 0; i < total; ++i) {
    std::memcpy(payload.data(), &i, sizeof i);
    ASSERT_TRUE(writer.publish(payload.data(), payload.size()));
  }
  writer.finish();

  // The reader was lapped several times over: it must detect the
  // overrun, resync forward, and account for every frame as either
  // read or dropped.
  std::uint64_t read = 0;
  bool sawOverrun = false;
  std::vector<std::uint8_t> out;
  for (;;) {
    const PollResult result = reader.poll(out);
    if (result.status == PollStatus::EndOfStream) {
      break;
    }
    if (result.status == PollStatus::Overrun) {
      sawOverrun = true;
      continue;
    }
    ASSERT_EQ(result.status, PollStatus::Frame);
    ++read;
    // Frames that survive the resync are never torn: their payload
    // matches their frame number exactly.
    std::uint64_t tag = 0;
    std::memcpy(&tag, out.data(), sizeof tag);
    EXPECT_EQ(tag, result.frameNumber);
  }
  EXPECT_TRUE(sawOverrun);
  EXPECT_GE(reader.stats().overruns, 1u);
  EXPECT_EQ(reader.stats().framesRead, read);
  EXPECT_EQ(reader.stats().framesRead + reader.stats().framesDropped, total);
  EXPECT_EQ(reader.stats().crcFailures, 0u);
}

// ---------------------------------------------------------------------------
// Backpressure

TEST(ShmRing, BlockPolicyWaitsForSlowReaderAndHonorsStop) {
  const RingGuard guard(testRingName("block"));
  RingConfig config;
  config.name = guard.name;
  config.frameCount = 4;
  config.framePayloadBytes = 256;
  config.policy = BackpressurePolicy::Block;
  config.readerTimeoutSeconds = 30.0; // the parked reader stays "live"
  ShmRingWriter writer(config);
  ReaderConfig readerConfig;
  readerConfig.name = guard.name;
  ShmRingReader reader(readerConfig);

  std::vector<std::uint8_t> payload(64, 0x33);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(writer.publish(payload.data(), payload.size()));
  }
  // Ring full, reader parked at 0: the fifth publish must block until
  // the stop token flips.
  std::atomic<bool> stop{false};
  std::atomic<bool> returned{false};
  std::atomic<bool> published{true};
  std::thread publisher([&] {
    published = writer.publish(payload.data(), payload.size(), &stop);
    returned = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(returned.load());
  stop = true;
  publisher.join();
  EXPECT_FALSE(published.load());
  EXPECT_GE(writer.stats().backpressureWaits, 1u);
  EXPECT_EQ(writer.stats().framesPublished, 4u);

  // The parked frames are all still intact for the reader.
  std::vector<std::uint8_t> out;
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(reader.poll(out).status, PollStatus::Frame);
  }
}

TEST(ShmRing, DeadReaderDoesNotBlockTheBeamline) {
  const RingGuard guard(testRingName("deadreader"));
  RingConfig config;
  config.name = guard.name;
  config.frameCount = 4;
  config.framePayloadBytes = 256;
  config.policy = BackpressurePolicy::Block;
  config.readerTimeoutSeconds = 0.05; // presumed dead quickly
  ShmRingWriter writer(config);
  ReaderConfig readerConfig;
  readerConfig.name = guard.name;
  ShmRingReader reader(readerConfig); // attaches, then never polls

  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  // Its heartbeat is now stale: publishes must sail through even though
  // its cursor never moves.
  std::vector<std::uint8_t> payload(64, 0x44);
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(writer.publish(payload.data(), payload.size()));
  }
  EXPECT_EQ(writer.stats().framesPublished, 12u);
}

// ---------------------------------------------------------------------------
// ShmEventSource

/// Publish packets for a run: one frame per packet.
void publishRun(ShmRingWriter& writer, std::uint32_t run,
                std::uint32_t pulses, bool withRunStart = true) {
  std::vector<std::uint8_t> frame;
  for (std::uint32_t p = 0; p < pulses; ++p) {
    const PulsePacket packet = makePacket(run, p, 3, p + 1 == pulses);
    encodePacket(packet, withRunStart && p == 0, frame);
    ASSERT_TRUE(writer.publish(frame.data(), frame.size()));
  }
}

TEST(ShmEventSource, DrainsAllFramesIntoChannel) {
  const RingGuard guard(testRingName("source"));
  RingConfig config;
  config.name = guard.name;
  config.frameCount = 64;
  config.framePayloadBytes = 4096;
  ShmRingWriter writer(config);
  publishRun(writer, 0, 5);
  publishRun(writer, 1, 4);
  writer.finish();

  SourceConfig sourceConfig;
  sourceConfig.reader.name = guard.name;
  ShmEventSource source(sourceConfig);
  stream::EventChannel channel(64);
  std::thread drain([&] { source.run(channel); });

  std::vector<PulsePacket> received;
  while (auto packet = channel.pop()) {
    received.push_back(std::move(*packet));
  }
  drain.join();

  ASSERT_EQ(received.size(), 9u);
  EXPECT_EQ(received[0].runIndex, 0u);
  EXPECT_TRUE(received[4].endOfRun);
  EXPECT_EQ(received[5].runIndex, 1u);
  EXPECT_TRUE(received[8].endOfRun);
  const IngestStats stats = source.stats();
  EXPECT_EQ(stats.framesIngested, 9u);
  EXPECT_EQ(stats.eventsIngested, 9u * 3u);
  EXPECT_EQ(stats.runsDropped, 0u);
  EXPECT_TRUE(stats.endOfStream);
  EXPECT_EQ(source.latencySamples().size(), 9u);
}

TEST(ShmEventSource, MidStreamAttachSkipsToNextRunBoundary) {
  const RingGuard guard(testRingName("skip"));
  RingConfig config;
  config.name = guard.name;
  config.frameCount = 64;
  config.framePayloadBytes = 4096;
  ShmRingWriter writer(config);
  // Run 0's packets carry no run-start flag — as if the reader attached
  // after the stream began (its true first frames already recycled).
  publishRun(writer, 0, 4, /*withRunStart=*/false);
  publishRun(writer, 1, 3);
  writer.finish();

  SourceConfig sourceConfig;
  sourceConfig.reader.name = guard.name;
  ShmEventSource source(sourceConfig);
  stream::EventChannel channel(64);
  std::thread drain([&] { source.run(channel); });

  std::vector<PulsePacket> received;
  while (auto packet = channel.pop()) {
    received.push_back(std::move(*packet));
  }
  drain.join();

  // Only complete run 1 reached the channel; run 0 was dropped whole.
  ASSERT_EQ(received.size(), 3u);
  for (const PulsePacket& packet : received) {
    EXPECT_EQ(packet.runIndex, 1u);
    EXPECT_FALSE(packet.abortRun);
  }
  EXPECT_EQ(source.stats().runsDropped, 1u);
}

TEST(ShmEventSource, RequestStopInterruptsAttachWait) {
  const RingGuard guard(testRingName("stopattach"));
  SourceConfig sourceConfig;
  sourceConfig.reader.name = guard.name; // never created
  sourceConfig.reader.attachTimeoutSeconds = 30.0;
  ShmEventSource source(sourceConfig);
  stream::EventChannel channel(4);
  std::thread drain([&] { source.run(channel); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  source.requestStop();
  drain.join(); // must return promptly, long before the 30 s budget
  EXPECT_TRUE(source.stats().stopped);
  EXPECT_TRUE(channel.closed());
}

TEST(ShmEventSource, AbortsPartialRunOnProducerRestart) {
  const RingGuard guard(testRingName("abort"));
  RingConfig config;
  config.name = guard.name;
  config.frameCount = 64;
  config.framePayloadBytes = 4096;
  config.unlinkOnDestroy = false;

  SourceConfig sourceConfig;
  sourceConfig.reader.name = guard.name;
  sourceConfig.reader.attachTimeoutSeconds = 5.0;
  sourceConfig.reader.producerTimeoutSeconds = 0.1;
  sourceConfig.stopOnProducerLost = false;
  ShmEventSource source(sourceConfig);
  stream::EventChannel channel(64);

  // Run 0 starts but never finishes: the producer "crashes" — it stops
  // publishing and heartbeating without marking the stream finished.
  // (Destroying the writer would call finish(), which is a clean
  // shutdown, not a crash; so the crashed writer merely goes silent.)
  ShmRingWriter crashed(config);
  std::vector<std::uint8_t> frame;
  encodePacket(makePacket(0, 0, 3, false), true, frame);
  ASSERT_TRUE(crashed.publish(frame.data(), frame.size()));

  // A consumer that understands abortRun: count what it would reduce.
  std::uint64_t completedRuns = 0;
  std::uint64_t abortsSeen = 0;
  std::thread consumer([&] {
    while (auto packet = channel.pop()) {
      if (packet->abortRun) {
        ++abortsSeen;
        continue;
      }
      if (packet->endOfRun) {
        ++completedRuns;
      }
    }
  });
  std::thread drain([&] { source.run(channel); });

  // Wait until the source has forwarded run 0's first pulse, then let
  // the heartbeat go stale (ProducerLost after ~0.1 s of silence).
  while (source.stats().framesIngested < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  while (!source.stats().producerLost) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // Restarted producer: adopts the segment, epoch bumps, run 1 streams
  // complete, clean shutdown.
  {
    ShmRingWriter writer(config);
    EXPECT_TRUE(writer.adoptedExistingSegment());
    publishRun(writer, 1, 3);
    writer.finish();
  }
  drain.join();
  consumer.join();

  EXPECT_EQ(abortsSeen, 1u);      // run 0 was explicitly aborted
  EXPECT_EQ(completedRuns, 1u);   // run 1 arrived whole
  const IngestStats stats = source.stats();
  EXPECT_EQ(stats.producerRestarts, 1u);
  EXPECT_GE(stats.runsDropped, 1u);
  unlinkRing(guard.name);
}

// ---------------------------------------------------------------------------
// Bitwise equivalence through the whole transport

TEST(ShmTransport, LiveIngestedReductionIsBitwiseIdenticalToBatch) {
  const RingGuard guard(testRingName("bitwise"));
  const ExperimentSetup setup(WorkloadSpec::benzilCorelli(0.0005));
  const EventGenerator generator = setup.makeGenerator();

  RingConfig config;
  config.name = guard.name;
  config.frameCount = 128;
  config.framePayloadBytes = 64 * 1024;
  ShmRingWriter writer(config);

  // Consumer side first: ShmEventSource → EventChannel → LiveReducer,
  // as vates_serve's live mode does.
  SourceConfig sourceConfig;
  sourceConfig.reader.name = guard.name;
  ShmEventSource source(sourceConfig);
  stream::EventChannel channel(256);
  stream::LiveReducer reducer(setup, Executor(Backend::Serial));
  std::thread drain([&] { source.run(channel); });

  // As vates_daq --wait-readers does: don't start the beam until the
  // consumer is registered, or the ring can wrap before it attaches
  // and the first runs are lost.
  while (writer.liveReaders() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Producer side: DaqSimulator → encode → publish, as vates_daq does.
  stream::EventChannel daqChannel(256);
  stream::DaqSimulator daq(generator);
  std::thread producer([&] {
    std::vector<std::uint8_t> frame;
    std::thread slicer([&] { daq.streamAllAndClose(daqChannel); });
    bool runOpen = false;
    std::uint32_t openRun = 0;
    while (auto packet = daqChannel.pop()) {
      const bool runStart = !runOpen || packet->runIndex != openRun;
      runOpen = !packet->endOfRun;
      openRun = packet->runIndex;
      encodePacket(*packet, runStart, frame);
      ASSERT_TRUE(writer.publish(frame.data(), frame.size()));
    }
    slicer.join();
    writer.finish();
  });

  const stream::LiveStats liveStats = reducer.consume(channel);
  producer.join();
  drain.join();

  EXPECT_EQ(liveStats.runsReduced, setup.spec().nFiles);
  EXPECT_EQ(source.stats().runsDropped, 0u);
  EXPECT_EQ(source.stats().crcFailures, 0u);

  core::ReductionConfig batchConfig;
  batchConfig.backend = Backend::Serial;
  batchConfig.loadMode = core::LoadMode::RawTof;
  const core::ReductionResult batch =
      core::ReductionPipeline(setup, batchConfig).run();

  const stream::LiveSnapshot live = reducer.snapshot();
  ASSERT_EQ(live.signal.size(), batch.signal.size());
  // Bitwise, not within-epsilon: the codec moves IEEE bit patterns and
  // the reduction order is identical, so memcmp must agree.
  EXPECT_EQ(std::memcmp(live.signal.data().data(), batch.signal.data().data(),
                        live.signal.size() * sizeof(double)),
            0);
  EXPECT_EQ(std::memcmp(live.normalization.data().data(),
                        batch.normalization.data().data(),
                        live.normalization.size() * sizeof(double)),
            0);
}

// ---------------------------------------------------------------------------
// Multi-reader stress (the TSan leg runs this with full instrumentation)

TEST(ShmTransport, MultiReaderBurstStressIsRaceFree) {
  const RingGuard guard(testRingName("stress"));
  RingConfig config;
  config.name = guard.name;
  config.frameCount = 32;
  config.framePayloadBytes = 512;
  config.policy = BackpressurePolicy::DropOldest;
  ShmRingWriter writer(config);

  constexpr std::size_t kReaders = 3;
  constexpr std::uint64_t kFrames = 2000;

  std::vector<std::unique_ptr<ShmRingReader>> readers;
  for (std::size_t r = 0; r < kReaders; ++r) {
    ReaderConfig readerConfig;
    readerConfig.name = guard.name;
    readers.push_back(std::make_unique<ShmRingReader>(readerConfig));
  }

  std::atomic<std::uint64_t> torn{0};
  std::vector<std::thread> threads;
  for (std::size_t r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      std::vector<std::uint8_t> out;
      for (;;) {
        const PollResult result = readers[r]->poll(out);
        if (result.status == PollStatus::EndOfStream) {
          return;
        }
        if (result.status == PollStatus::Frame) {
          // Tear check: every byte of a frame must carry its tag.
          std::uint64_t tag = 0;
          std::memcpy(&tag, out.data(), sizeof tag);
          if (tag != result.frameNumber) {
            ++torn;
          }
          for (std::size_t b = 8; b < out.size(); ++b) {
            if (out[b] != static_cast<std::uint8_t>(result.frameNumber)) {
              ++torn;
              break;
            }
          }
        }
      }
    });
  }

  std::vector<std::uint8_t> payload(256);
  for (std::uint64_t i = 0; i < kFrames; ++i) {
    std::memcpy(payload.data(), &i, sizeof i);
    std::fill(payload.begin() + 8, payload.end(),
              static_cast<std::uint8_t>(i));
    ASSERT_TRUE(writer.publish(payload.data(), payload.size()));
  }
  writer.finish();
  for (std::thread& thread : threads) {
    thread.join();
  }

  EXPECT_EQ(torn.load(), 0u);
  for (std::size_t r = 0; r < kReaders; ++r) {
    const ReaderStats stats = readers[r]->stats();
    EXPECT_EQ(stats.crcFailures, 0u);
    EXPECT_EQ(stats.framesRead + stats.framesDropped, kFrames);
  }
}

} // namespace
} // namespace vates::transport
