// Tests for INI parsing and reduction plans (the Garnet reduction-plan
// counterpart).

#include "vates/core/pipeline.hpp"
#include "vates/core/plan.hpp"
#include "vates/support/error.hpp"
#include "vates/support/inifile.hpp"

#include <gtest/gtest.h>

#include <filesystem>

namespace vates {
namespace {

// ---------------------------------------------------------------------------
// IniFile

TEST(IniFile, ParsesSectionsKeysAndComments) {
  const IniFile ini = IniFile::parse(R"(
# top comment
[alpha]
key = value            ; trailing comment
number = 42
spaced key = spaced value

[beta]
pi = 3.25
flag = true
)");
  EXPECT_EQ(ini.sections(), (std::vector<std::string>{"alpha", "beta"}));
  EXPECT_EQ(ini.getString("alpha", "key"), "value");
  EXPECT_EQ(ini.getString("alpha", "spaced key"), "spaced value");
  EXPECT_EQ(ini.getInt("alpha", "number"), 42);
  EXPECT_DOUBLE_EQ(ini.getDouble("beta", "pi"), 3.25);
  EXPECT_TRUE(ini.getBool("beta", "flag", false));
  EXPECT_TRUE(ini.has("alpha", "key"));
  EXPECT_FALSE(ini.has("alpha", "missing"));
  EXPECT_FALSE(ini.has("gamma", "key"));
}

TEST(IniFile, DefaultsAndErrors) {
  const IniFile ini = IniFile::parse("[s]\nx = not-a-number\n");
  EXPECT_EQ(ini.getString("s", "missing", "fallback"), "fallback");
  EXPECT_DOUBLE_EQ(ini.getDouble("s", "missing", 1.5), 1.5);
  EXPECT_EQ(ini.getInt("s", "missing", 7), 7);
  EXPECT_FALSE(ini.getBool("s", "missing", false));
  EXPECT_THROW(ini.getString("s", "missing"), InvalidArgument);
  EXPECT_THROW(ini.getDouble("s", "x"), InvalidArgument);
  EXPECT_THROW(ini.getInt("s", "x"), InvalidArgument);
  EXPECT_THROW(ini.getBool("s", "x", true), InvalidArgument);
}

TEST(IniFile, MalformedLinesNameTheLineNumber) {
  try {
    IniFile::parse("[ok]\nkey = 1\nbroken line without equals\n");
    FAIL() << "should have thrown";
  } catch (const InvalidArgument& error) {
    EXPECT_NE(std::string(error.what()).find("line 3"), std::string::npos);
  }
  EXPECT_THROW(IniFile::parse("[unclosed\n"), InvalidArgument);
  EXPECT_THROW(IniFile::parse("[]\n"), InvalidArgument);
  EXPECT_THROW(IniFile::parse("= value\n"), InvalidArgument);
}

TEST(IniFile, LaterAssignmentsWin) {
  const IniFile ini = IniFile::parse("[s]\nx = 1\nx = 2\n");
  EXPECT_EQ(ini.getInt("s", "x"), 2);
  EXPECT_EQ(ini.keys("s").size(), 1u);
}

TEST(IniFile, SerializeRoundTrip) {
  IniFile ini;
  ini.set("one", "a", "1");
  ini.set("one", "b", "hello world");
  ini.set("two", "c", "3.5");
  const IniFile reparsed = IniFile::parse(ini.serialize());
  EXPECT_EQ(reparsed.getString("one", "b"), "hello world");
  EXPECT_DOUBLE_EQ(reparsed.getDouble("two", "c"), 3.5);
}

TEST(IniFile, FileRoundTripAndMissingFile) {
  const auto path = std::filesystem::temp_directory_path() /
                    ("vates_ini_" + std::to_string(::getpid()) + ".ini");
  IniFile ini;
  ini.set("s", "k", "v");
  ini.save(path.string());
  EXPECT_EQ(IniFile::load(path.string()).getString("s", "k"), "v");
  std::filesystem::remove(path);
  EXPECT_THROW(IniFile::load(path.string()), IOError);
}

// ---------------------------------------------------------------------------
// Reduction plans

TEST(ReductionPlan, PresetBaseWithOverrides) {
  const core::ReductionPlan plan = core::planFromIni(IniFile::parse(R"(
[workload]
base = benzil-corelli
scale = 0.001
files = 12
point_group = -3m
bins = 301 301 3

[reduction]
backend = serial
ranks = 3
load_mode = raw-tof
plane_search = linear
sort = structs
track_errors = true
lorentz = true
)"));
  EXPECT_EQ(plan.workload.nFiles, 12u);
  EXPECT_EQ(plan.workload.pointGroup, "-3m");
  EXPECT_EQ(plan.workload.bins, (std::array<std::size_t, 3>{301, 301, 3}));
  // Unoverridden preset fields survive.
  EXPECT_EQ(plan.workload.instrument, "corelli");
  EXPECT_DOUBLE_EQ(plan.workload.latticeA, 8.376);

  EXPECT_EQ(plan.config.backend, Backend::Serial);
  EXPECT_EQ(plan.config.ranks, 3);
  EXPECT_EQ(plan.config.loadMode, core::LoadMode::RawTof);
  EXPECT_EQ(plan.config.mdnorm.search, PlaneSearch::Linear);
  EXPECT_EQ(plan.config.mdnorm.traversal, Traversal::Legacy);
  EXPECT_TRUE(plan.config.trackErrors);
  EXPECT_TRUE(plan.config.convert.lorentzCorrection);
}

TEST(ReductionPlan, UnknownKeysRejected) {
  EXPECT_THROW(
      core::planFromIni(IniFile::parse("[workload]\nfilez = 3\n")),
      InvalidArgument);
  EXPECT_THROW(
      core::planFromIni(IniFile::parse("[reduction]\nthreads = 3\n")),
      InvalidArgument);
  EXPECT_THROW(core::planFromIni(IniFile::parse("[mystery]\nx = 1\n")),
               InvalidArgument);
  EXPECT_THROW(
      core::planFromIni(IniFile::parse("[workload]\nbase = unobtainium\n")),
      InvalidArgument);
}

TEST(ReductionPlan, SaveLoadRoundTripIsExact) {
  core::ReductionPlan plan;
  plan.workload = WorkloadSpec::bixbyiteTopaz(0.003);
  plan.workload.braggSigma = 0.0213;
  plan.config.backend = Backend::DeviceSim;
  plan.config.ranks = 5;
  plan.config.loadMode = core::LoadMode::RawTof;
  plan.config.trackErrors = true;

  const auto path = std::filesystem::temp_directory_path() /
                    ("vates_plan_" + std::to_string(::getpid()) + ".ini");
  core::saveReductionPlan(path.string(), plan);
  const core::ReductionPlan loaded = core::loadReductionPlan(path.string());
  std::filesystem::remove(path);

  EXPECT_EQ(loaded.workload.name, plan.workload.name);
  EXPECT_EQ(loaded.workload.nFiles, plan.workload.nFiles);
  EXPECT_EQ(loaded.workload.eventsPerFile, plan.workload.eventsPerFile);
  EXPECT_EQ(loaded.workload.nDetectors, plan.workload.nDetectors);
  EXPECT_EQ(loaded.workload.pointGroup, plan.workload.pointGroup);
  EXPECT_EQ(loaded.workload.centering, plan.workload.centering);
  EXPECT_DOUBLE_EQ(loaded.workload.braggSigma, plan.workload.braggSigma);
  EXPECT_DOUBLE_EQ(loaded.workload.omegaStartDeg,
                   plan.workload.omegaStartDeg);
  EXPECT_EQ(loaded.workload.bins, plan.workload.bins);
  EXPECT_EQ(loaded.workload.seed, plan.workload.seed);
  EXPECT_LT(maxAbsDiff(loaded.workload.projectionU,
                       plan.workload.projectionU), 1e-15);
  EXPECT_EQ(loaded.config.backend, Backend::DeviceSim);
  EXPECT_EQ(loaded.config.ranks, 5);
  EXPECT_EQ(loaded.config.loadMode, core::LoadMode::RawTof);
  EXPECT_TRUE(loaded.config.trackErrors);
}

TEST(ReductionPlan, PlanDrivesIdenticalReduction) {
  // A plan-loaded spec reduces to exactly the same result as the
  // equivalent hand-built spec.
  const WorkloadSpec manual = WorkloadSpec::benzilCorelli(0.0004);
  core::ReductionPlan plan;
  plan.workload = manual;
  plan.config.backend = Backend::Serial;

  const auto path = std::filesystem::temp_directory_path() /
                    ("vates_plan_run_" + std::to_string(::getpid()) + ".ini");
  core::saveReductionPlan(path.string(), plan);
  const core::ReductionPlan loaded = core::loadReductionPlan(path.string());
  std::filesystem::remove(path);

  const core::ReductionResult fromPlan =
      core::ReductionPipeline(ExperimentSetup(loaded.workload), loaded.config)
          .run();
  core::ReductionConfig manualConfig;
  manualConfig.backend = Backend::Serial;
  const core::ReductionResult fromManual =
      core::ReductionPipeline(ExperimentSetup(manual), manualConfig).run();

  for (std::size_t i = 0; i < fromPlan.signal.size(); i += 101) {
    ASSERT_EQ(fromPlan.signal.data()[i], fromManual.signal.data()[i]);
    ASSERT_EQ(fromPlan.normalization.data()[i],
              fromManual.normalization.data()[i]);
  }
}

} // namespace
} // namespace vates
