// Unit tests for the support substrate: errors, logging, timers, RNG,
// CLI parsing, and string helpers.

#include "vates/support/cli.hpp"
#include "vates/support/error.hpp"
#include "vates/support/log.hpp"
#include "vates/support/rng.hpp"
#include "vates/support/strings.hpp"
#include "vates/support/timer.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <sstream>
#include <thread>
#include <vector>

namespace vates {
namespace {

// ---------------------------------------------------------------------------
// Errors

TEST(Error, HierarchyCatchableAsBase) {
  EXPECT_THROW(throw InvalidArgument("x"), Error);
  EXPECT_THROW(throw IOError("x"), Error);
  EXPECT_THROW(throw Unsupported("x"), Error);
  EXPECT_THROW(throw NumericalError("x"), Error);
}

TEST(Error, RequireMacroThrowsWithContext) {
  try {
    VATES_REQUIRE(1 == 2, "one is not two");
    FAIL() << "should have thrown";
  } catch (const InvalidArgument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("one is not two"), std::string::npos);
    EXPECT_NE(what.find("test_support.cpp"), std::string::npos);
  }
}

TEST(Error, RequirePassesQuietly) {
  EXPECT_NO_THROW(VATES_REQUIRE(true, "never fires"));
}

// ---------------------------------------------------------------------------
// Logger

TEST(Logger, FiltersBelowLevel) {
  std::ostringstream sink;
  Logger& log = Logger::global();
  log.setStream(&sink);
  log.setLevel(LogLevel::Warn);
  VATES_LOG_INFO("hidden");
  VATES_LOG_WARN("visible");
  log.setStream(nullptr);
  log.setLevel(LogLevel::Info);
  EXPECT_EQ(sink.str().find("hidden"), std::string::npos);
  EXPECT_NE(sink.str().find("visible"), std::string::npos);
}

TEST(Logger, TimestampPrefixShapeAndDefaultUnchanged) {
  Logger& log = Logger::global();

  // Default: no prefix — the line is byte-identical to the historical
  // "[TAG] message\n" form that log-scraping callers parse.
  std::ostringstream plain;
  log.setStream(&plain);
  VATES_LOG_INFO("plain line");
  EXPECT_EQ(plain.str(), "[INFO ] plain line\n");

  // Opt-in: "[<ISO-8601 UTC ms> #<thread-id>] [TAG] message".
  std::ostringstream stamped;
  log.setStream(&stamped);
  log.setTimestamps(true);
  VATES_LOG_INFO("stamped line");
  log.setTimestamps(false);
  log.setStream(nullptr);

  const std::string line = stamped.str();
  // Shape: [YYYY-MM-DDTHH:MM:SS.mmmZ #tid] [INFO ] stamped line
  ASSERT_GE(line.size(), 30u);
  EXPECT_EQ(line[0], '[');
  EXPECT_EQ(line.substr(5, 1), "-");
  EXPECT_EQ(line.substr(8, 1), "-");
  EXPECT_EQ(line.substr(11, 1), "T");
  EXPECT_EQ(line.substr(14, 1), ":");
  EXPECT_EQ(line.substr(17, 1), ":");
  EXPECT_EQ(line.substr(20, 1), ".");
  EXPECT_EQ(line.substr(24, 3), "Z #");
  for (const std::size_t digitIndex : {1u, 2u, 3u, 4u, 6u, 7u, 9u, 10u, 12u,
                                       13u, 15u, 16u, 18u, 19u, 21u, 22u,
                                       23u}) {
    EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(line[digitIndex])))
        << "position " << digitIndex << " in " << line;
  }
  EXPECT_NE(line.find("] [INFO ] stamped line\n"), std::string::npos) << line;
}

TEST(Logger, ParseLevelRoundTrip) {
  EXPECT_EQ(parseLogLevel("debug"), LogLevel::Debug);
  EXPECT_EQ(parseLogLevel("INFO"), LogLevel::Info);
  EXPECT_EQ(parseLogLevel("Warn"), LogLevel::Warn);
  EXPECT_EQ(parseLogLevel("error"), LogLevel::Error);
  EXPECT_EQ(parseLogLevel("off"), LogLevel::Off);
  EXPECT_THROW(parseLogLevel("verbose"), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Timers

TEST(StageTimes, AccumulatesAndCounts) {
  StageTimes times;
  times.add("MDNorm", 1.0);
  times.add("MDNorm", 2.0);
  times.add("BinMD", 0.5);
  EXPECT_DOUBLE_EQ(times.total("MDNorm"), 3.0);
  EXPECT_EQ(times.count("MDNorm"), 2u);
  EXPECT_DOUBLE_EQ(times.total("BinMD"), 0.5);
  EXPECT_DOUBLE_EQ(times.grandTotal(), 3.5);
  EXPECT_DOUBLE_EQ(times.total("missing"), 0.0);
  EXPECT_EQ(times.count("missing"), 0u);
}

TEST(StageTimes, PreservesFirstSeenOrder) {
  StageTimes times;
  times.add("Zeta", 1.0);
  times.add("Alpha", 1.0);
  times.add("Zeta", 1.0);
  ASSERT_EQ(times.names().size(), 2u);
  EXPECT_EQ(times.names()[0], "Zeta");
  EXPECT_EQ(times.names()[1], "Alpha");
}

TEST(StageTimes, MergeSumsAndMergeMaxTakesMax) {
  StageTimes a;
  a.add("X", 1.0);
  StageTimes b;
  b.add("X", 3.0);
  b.add("Y", 2.0);

  StageTimes sum = a;
  sum.merge(b);
  EXPECT_DOUBLE_EQ(sum.total("X"), 4.0);
  EXPECT_DOUBLE_EQ(sum.total("Y"), 2.0);

  StageTimes critical = a;
  critical.mergeMax(b);
  EXPECT_DOUBLE_EQ(critical.total("X"), 3.0);
  EXPECT_DOUBLE_EQ(critical.total("Y"), 2.0);
}

TEST(StageTimes, TableRendersAllStages) {
  StageTimes times;
  times.add("UpdateEvents", 0.25);
  times.add("MDNorm", 1.5);
  const std::string table = times.table("Example");
  EXPECT_NE(table.find("UpdateEvents"), std::string::npos);
  EXPECT_NE(table.find("MDNorm"), std::string::npos);
  EXPECT_NE(table.find("Total"), std::string::npos);
}

TEST(ScopedStage, RecordsOnScopeExit) {
  StageTimes times;
  {
    ScopedStage stage(times, "scoped");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GT(times.total("scoped"), 0.0);
  EXPECT_EQ(times.count("scoped"), 1u);
}

TEST(SharedStageTimes, ConcurrentAddsAllLand) {
  SharedStageTimes shared;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&shared] {
      for (int i = 0; i < 100; ++i) {
        shared.add("MDNorm", 0.001);
      }
      StageTimes local;
      local.add("BinMD", 0.5);
      shared.merge(local);
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  const StageTimes times = shared.take();
  EXPECT_EQ(times.count("MDNorm"), 800u);
  EXPECT_NEAR(times.total("MDNorm"), 0.8, 1e-9);
  EXPECT_EQ(times.count("BinMD"), 8u);
  EXPECT_NEAR(times.total("BinMD"), 4.0, 1e-9);
}

TEST(SharedStageTimes, TakeDrainsTheSink) {
  SharedStageTimes shared;
  shared.add("stage", 1.0);
  EXPECT_NEAR(shared.take().total("stage"), 1.0, 1e-12);
  EXPECT_EQ(shared.take().count("stage"), 0u);
}

TEST(ScopedSharedStage, RecordsOnScopeExit) {
  SharedStageTimes shared;
  {
    ScopedSharedStage stage(shared, "kernel");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const StageTimes times = shared.take();
  EXPECT_GT(times.total("kernel"), 0.0);
  EXPECT_EQ(times.count("kernel"), 1u);
}

TEST(WallTimer, MonotoneNonNegative) {
  WallTimer timer;
  const double t1 = timer.seconds();
  const double t2 = timer.seconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
  timer.reset();
  EXPECT_LT(timer.seconds(), t2 + 1.0);
}

// ---------------------------------------------------------------------------
// RNG

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, StreamsAreIndependent) {
  Xoshiro256 a(42, 0), b(42, 1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) {
      ++equal;
    }
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, UniformStaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Xoshiro256 rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.uniform();
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntUnbiasedCoverage) {
  Xoshiro256 rng(13);
  int counts[10] = {};
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    counts[rng.uniformInt(10)]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
  }
}

TEST(Rng, NormalMomentsMatch) {
  Xoshiro256 rng(17);
  double sum = 0.0, sumSq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sumSq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumSq / n, 1.0, 0.02);
}

TEST(Rng, PoissonMeanMatches) {
  Xoshiro256 rng(19);
  for (const double mean : {0.5, 4.0, 100.0}) {
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
      sum += static_cast<double>(rng.poisson(mean));
    }
    EXPECT_NEAR(sum / n, mean, std::max(0.1, mean * 0.05));
  }
}

TEST(Rng, ExponentialMeanMatches) {
  Xoshiro256 rng(23);
  const double rate = 2.5;
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.exponential(rate);
  }
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.01);
}

// ---------------------------------------------------------------------------
// CLI

TEST(Cli, ParsesOptionsAndFlags) {
  ArgParser args("prog", "test");
  args.addOption("scale", "scale factor", "1.0");
  args.addOption("name", "a name", "default");
  args.addFlag("verbose", "be loud");
  const char* argv[] = {"prog", "--scale", "0.25", "--verbose",
                        "--name=custom", "positional"};
  ASSERT_TRUE(args.parse(6, argv));
  EXPECT_DOUBLE_EQ(args.getDouble("scale"), 0.25);
  EXPECT_EQ(args.getString("name"), "custom");
  EXPECT_TRUE(args.getFlag("verbose"));
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "positional");
  EXPECT_TRUE(args.wasProvided("scale"));
}

TEST(Cli, DefaultsApplyWhenAbsent) {
  ArgParser args("prog", "test");
  args.addOption("count", "a count", "7");
  args.addFlag("quiet", "hush");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(args.parse(1, argv));
  EXPECT_EQ(args.getInt("count"), 7);
  EXPECT_FALSE(args.getFlag("quiet"));
  EXPECT_FALSE(args.wasProvided("count"));
}

TEST(Cli, RejectsUnknownAndMalformed) {
  ArgParser args("prog", "test");
  args.addOption("x", "x", "1");
  const char* unknown[] = {"prog", "--nope", "3"};
  EXPECT_THROW(args.parse(3, unknown), InvalidArgument);

  ArgParser args2("prog", "test");
  args2.addOption("x", "x", "1");
  const char* missing[] = {"prog", "--x"};
  EXPECT_THROW(args2.parse(2, missing), InvalidArgument);

  ArgParser args3("prog", "test");
  args3.addOption("x", "x", "1");
  const char* bad[] = {"prog", "--x", "not-a-number"};
  ASSERT_TRUE(args3.parse(3, bad));
  EXPECT_THROW(args3.getDouble("x"), InvalidArgument);
  EXPECT_THROW(args3.getInt("x"), InvalidArgument);
}

TEST(Cli, HelpShortCircuits) {
  ArgParser args("prog", "test");
  args.addOption("x", "the x option", "1");
  const char* argv[] = {"prog", "--help"};
  testing::internal::CaptureStdout();
  const bool proceed = args.parse(2, argv);
  const std::string help = testing::internal::GetCapturedStdout();
  EXPECT_FALSE(proceed);
  EXPECT_NE(help.find("--x"), std::string::npos);
  EXPECT_NE(help.find("the x option"), std::string::npos);
}

TEST(Cli, DuplicateDeclarationThrows) {
  ArgParser args("prog", "test");
  args.addOption("x", "x", "1");
  EXPECT_THROW(args.addFlag("x", "again"), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Strings

TEST(Strings, Strfmt) {
  EXPECT_EQ(strfmt("%d-%s-%.2f", 3, "abc", 1.5), "3-abc-1.50");
  EXPECT_EQ(strfmt("empty"), "empty");
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto fields = split("a,,b,", ',');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[2], "b");
  EXPECT_EQ(fields[3], "");
}

TEST(Strings, TrimAndLower) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(toLower("MiXeD"), "mixed");
}

TEST(Strings, HumanBytes) {
  EXPECT_EQ(humanBytes(512), "512 B");
  EXPECT_EQ(humanBytes(2048), "2.0 KiB");
  EXPECT_EQ(humanBytes(8ull << 30), "8.0 GiB");
}

TEST(Strings, WithCommas) {
  EXPECT_EQ(withCommas(0), "0");
  EXPECT_EQ(withCommas(999), "999");
  EXPECT_EQ(withCommas(1000), "1,000");
  EXPECT_EQ(withCommas(1600000), "1,600,000");
  EXPECT_EQ(withCommas(280000000), "280,000,000");
}

} // namespace
} // namespace vates
