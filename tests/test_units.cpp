// Unit tests for TOF/wavelength/momentum/energy conversions.

#include "vates/support/error.hpp"
#include "vates/units/units.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace vates::units {
namespace {

TEST(Units, WavelengthTofRoundTrip) {
  const double path = 22.5; // m, CORELLI-ish total flight path
  for (const double lambda : {0.5, 1.0, 1.8, 3.5}) {
    const double tof = tofFromWavelength(lambda, path);
    EXPECT_NEAR(wavelengthFromTof(tof, path), lambda, 1e-12);
  }
}

TEST(Units, KnownThermalNeutronTof) {
  // A 1.8 Å neutron travels at ~2198 m/s, so 10 m takes ~4550 µs.
  const double tof = tofFromWavelength(1.8, 10.0);
  EXPECT_NEAR(tof, 10.0 / (kHoverM / 1.8) * 1e6, 1e-9);
  EXPECT_NEAR(tof, 4550.0, 5.0);
}

TEST(Units, MomentumWavelengthRoundTrip) {
  for (const double lambda : {0.4, 1.0, 2.5, 6.0}) {
    const double k = momentumFromWavelength(lambda);
    EXPECT_NEAR(k, kTwoPi / lambda, 1e-14);
    EXPECT_NEAR(wavelengthFromMomentum(k), lambda, 1e-12);
  }
}

TEST(Units, EnergyWavelengthRoundTrip) {
  // 1.8 Å ↔ 25.25 meV, the thermal benchmark value.
  EXPECT_NEAR(energyFromWavelength(1.8), 25.25, 0.01);
  for (const double energy : {1.0, 25.0, 100.0}) {
    EXPECT_NEAR(energyFromWavelength(wavelengthFromEnergy(energy)), energy,
                1e-10);
  }
}

TEST(Units, MomentumBandFlipsOrder) {
  // Longer wavelength = smaller momentum: the band must flip.
  const auto band = momentumBandFromWavelengthBand(0.7, 2.9);
  EXPECT_LT(band.kMin, band.kMax);
  EXPECT_NEAR(band.kMin, kTwoPi / 2.9, 1e-12);
  EXPECT_NEAR(band.kMax, kTwoPi / 0.7, 1e-12);
}

TEST(Units, InvalidInputsThrow) {
  EXPECT_THROW(wavelengthFromTof(-1.0, 10.0), InvalidArgument);
  EXPECT_THROW(wavelengthFromTof(100.0, 0.0), InvalidArgument);
  EXPECT_THROW(tofFromWavelength(0.0, 10.0), InvalidArgument);
  EXPECT_THROW(momentumFromWavelength(0.0), InvalidArgument);
  EXPECT_THROW(wavelengthFromMomentum(-2.0), InvalidArgument);
  EXPECT_THROW(energyFromWavelength(0.0), InvalidArgument);
  EXPECT_THROW(wavelengthFromEnergy(-5.0), InvalidArgument);
  EXPECT_THROW(momentumBandFromWavelengthBand(2.0, 1.0), InvalidArgument);
  EXPECT_THROW(momentumBandFromWavelengthBand(0.0, 1.0), InvalidArgument);
}

} // namespace
} // namespace vates::units
