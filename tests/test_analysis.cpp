// Tests for post-reduction analysis: merging partial reductions and
// background subtraction.

#include "vates/core/analysis.hpp"
#include "vates/core/pipeline.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <algorithm>
#include <filesystem>
#include <vector>

namespace vates::core {
namespace {

double worstAbsDiff(const Histogram3D& a, const Histogram3D& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double x = a.data()[i], y = b.data()[i];
    if (std::isnan(x) && std::isnan(y)) {
      continue;
    }
    worst = std::max(worst, std::fabs(x - y));
  }
  return worst;
}

ReducedData toReduced(const ReductionResult& result) {
  return ReducedData{result.signal, result.normalization,
                     result.crossSection};
}

TEST(MergeReducedData, SplitCampaignEqualsFullCampaign) {
  // Reduce runs [0,18) and [18,36) separately (as two "facilities"
  // would), merge, and compare against the single full reduction.
  const ExperimentSetup setup(WorkloadSpec::benzilCorelli(0.0004));
  ReductionConfig config;
  config.backend = Backend::Serial;
  const ReductionPipeline pipeline(setup, config);

  const auto dir = std::filesystem::temp_directory_path() /
                   ("vates_merge_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const auto paths = pipeline.writeRunFiles(dir.string());
  const std::size_t half = paths.size() / 2;
  const std::vector<std::string> firstHalf(paths.begin(),
                                           paths.begin() + half);
  const std::vector<std::string> secondHalf(paths.begin() + half,
                                            paths.end());

  const ReductionResult full = pipeline.runFromFiles(paths);
  const ReductionResult partA = pipeline.runFromFiles(firstHalf);
  const ReductionResult partB = pipeline.runFromFiles(secondHalf);
  std::filesystem::remove_all(dir);

  const ReducedData merged =
      mergeReducedData({toReduced(partA), toReduced(partB)});
  EXPECT_LT(worstAbsDiff(merged.signal, full.signal), 1e-9);
  EXPECT_LT(worstAbsDiff(merged.normalization, full.normalization), 1e-9);
  EXPECT_LT(worstAbsDiff(merged.crossSection, full.crossSection), 1e-9);
}

TEST(MergeReducedData, FileRoundTripMerge) {
  const ExperimentSetup setup(WorkloadSpec::benzilCorelli(0.0004));
  ReductionConfig config;
  config.backend = Backend::Serial;
  const ReductionResult result = ReductionPipeline(setup, config).run();

  const auto dir = std::filesystem::temp_directory_path() /
                   ("vates_merge_files_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string fileA = (dir / "part_a.nxl").string();
  const std::string fileB = (dir / "part_b.nxl").string();
  saveReducedData(fileA, result.signal, result.normalization,
                  result.crossSection);
  saveReducedData(fileB, result.signal, result.normalization,
                  result.crossSection);

  const ReducedData merged = mergeReducedFiles({fileA, fileB});
  std::filesystem::remove_all(dir);
  // Two identical parts: doubled masses, unchanged cross-section.
  EXPECT_NEAR(merged.signal.totalSignal(), 2.0 * result.signal.totalSignal(),
              1e-6);
  EXPECT_LT(worstAbsDiff(merged.crossSection, result.crossSection), 1e-12);
}

TEST(MergeReducedData, RejectsMismatchedShapesAndEmpty) {
  Histogram3D a(BinAxis("x", 0, 1, 2), BinAxis("y", 0, 1, 2),
                BinAxis("z", 0, 1, 1));
  Histogram3D b(BinAxis("x", 0, 1, 3), BinAxis("y", 0, 1, 2),
                BinAxis("z", 0, 1, 1));
  const ReducedData partA{a, a.emptyLike(), a.emptyLike()};
  const ReducedData partB{b, b.emptyLike(), b.emptyLike()};
  EXPECT_THROW(mergeReducedData({partA, partB}), InvalidArgument);
  EXPECT_THROW(mergeReducedData({}), InvalidArgument);
  EXPECT_THROW(mergeReducedFiles({}), InvalidArgument);
}

TEST(SubtractBackground, BinWiseArithmeticAndNaNs) {
  Histogram3D sample(BinAxis("x", 0, 2, 2), BinAxis("y", 0, 1, 1),
                     BinAxis("z", 0, 1, 1));
  Histogram3D background = sample.emptyLike();
  sample.data()[0] = 5.0;
  sample.data()[1] = std::numeric_limits<double>::quiet_NaN();
  background.data()[0] = 1.5;
  background.data()[1] = 1.0;

  const Histogram3D net = subtractBackground(sample, background, 2.0);
  EXPECT_DOUBLE_EQ(net.data()[0], 5.0 - 2.0 * 1.5);
  EXPECT_TRUE(std::isnan(net.data()[1]));

  Histogram3D wrong(BinAxis("x", 0, 2, 3), BinAxis("y", 0, 1, 1),
                    BinAxis("z", 0, 1, 1));
  EXPECT_THROW(subtractBackground(sample, wrong), InvalidArgument);
}

TEST(SubtractBackground, RemovesDiffuseFloorFromSampleMeasurement) {
  // "Sample" = Bragg + diffuse; "background" = the same measurement
  // with no Bragg component.  After subtraction the diffuse floor is
  // gone: block averages off the Bragg peaks drop towards zero while
  // peak regions stay positive.
  WorkloadSpec sampleSpec = WorkloadSpec::benzilCorelli(0.0005);
  sampleSpec.bins = {100, 100, 1};
  sampleSpec.eventsPerFile = 20000;
  // Sharp peaks so a genuine off-peak diffuse floor exists between
  // lattice nodes (the default width leaves Bragg tails everywhere).
  sampleSpec.braggSigma = 0.015;
  WorkloadSpec backgroundSpec = sampleSpec;
  backgroundSpec.braggAmplitude = 0.0;

  ReductionConfig config;
  config.backend = Backend::Serial;
  const ReductionResult sample =
      ReductionPipeline(ExperimentSetup(sampleSpec), config).run();
  const ReductionResult background =
      ReductionPipeline(ExperimentSetup(backgroundSpec), config).run();

  const Histogram3D net =
      subtractBackground(sample.crossSection, background.crossSection);

  // Per-bin values are noisy (independent draws) and Bragg peaks carry
  // most of the integral, so compare *medians*: the typical (off-peak)
  // bin of the sample sits at the diffuse floor, while the typical net
  // bin should be centred near zero.
  std::vector<double> sampleValues, netValues;
  for (std::size_t i = 0; i < net.size(); ++i) {
    const double s = sample.crossSection.data()[i];
    const double n = net.data()[i];
    if (std::isfinite(s) && std::isfinite(n)) {
      sampleValues.push_back(s);
      netValues.push_back(n);
    }
  }
  ASSERT_GT(sampleValues.size(), 1000u);
  auto median = [](std::vector<double> values) {
    std::nth_element(values.begin(), values.begin() + values.size() / 2,
                     values.end());
    return values[values.size() / 2];
  };
  const double sampleMedian = median(sampleValues);
  const double netMedian = median(netValues);
  ASSERT_GT(sampleMedian, 0.0);
  EXPECT_LT(std::fabs(netMedian), 0.35 * sampleMedian);
}

} // namespace
} // namespace vates::core
