// Tests for the minimpi in-process communicator.

#include "vates/comm/minimpi.hpp"

#include "vates/verify/diff.hpp"
#include "vates/verify/fuzz_inputs.hpp"
#include "vates/verify/reference_oracle.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <vector>

namespace vates::comm {
namespace {

TEST(MiniMpi, WorldRunsEveryRankOnce) {
  std::vector<std::atomic<int>> hits(4);
  World::run(4, [&](Communicator& comm) {
    EXPECT_EQ(comm.size(), 4);
    hits[static_cast<std::size_t>(comm.rank())]++;
  });
  for (auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(MiniMpi, SingleRankWorld) {
  World::run(1, [](Communicator& comm) {
    EXPECT_EQ(comm.rank(), 0);
    EXPECT_EQ(comm.size(), 1);
    std::vector<double> data{1.0, 2.0};
    comm.allReduceSum(std::span<double>(data));
    EXPECT_DOUBLE_EQ(data[0], 1.0);
    EXPECT_DOUBLE_EQ(data[1], 2.0);
  });
}

TEST(MiniMpi, ExceptionFromRankPropagates) {
  EXPECT_THROW(World::run(3,
                          [](Communicator& comm) {
                            if (comm.rank() == 2) {
                              throw std::runtime_error("rank 2 failed");
                            }
                          }),
               std::runtime_error);
}

TEST(MiniMpi, ReduceSumDepositsOnRoot) {
  const int nRanks = 4;
  std::vector<std::vector<double>> buffers(nRanks);
  World::run(nRanks, [&](Communicator& comm) {
    auto& mine = buffers[static_cast<std::size_t>(comm.rank())];
    mine = {double(comm.rank()), 10.0 * comm.rank(), 1.0};
    comm.reduceSum(std::span<double>(mine), /*root=*/0);
  });
  // root got 0+1+2+3, 0+10+20+30, 4
  EXPECT_DOUBLE_EQ(buffers[0][0], 6.0);
  EXPECT_DOUBLE_EQ(buffers[0][1], 60.0);
  EXPECT_DOUBLE_EQ(buffers[0][2], 4.0);
  // non-roots untouched
  EXPECT_DOUBLE_EQ(buffers[2][0], 2.0);
  EXPECT_DOUBLE_EQ(buffers[2][1], 20.0);
}

TEST(MiniMpi, ReduceSumNonZeroRoot) {
  const int nRanks = 3;
  std::vector<std::vector<std::uint64_t>> buffers(nRanks);
  World::run(nRanks, [&](Communicator& comm) {
    auto& mine = buffers[static_cast<std::size_t>(comm.rank())];
    mine = {std::uint64_t(1) << comm.rank()};
    comm.reduceSum(std::span<std::uint64_t>(mine), /*root=*/2);
  });
  EXPECT_EQ(buffers[2][0], 7u); // 1 + 2 + 4
  EXPECT_EQ(buffers[0][0], 1u);
}

TEST(MiniMpi, AllReduceSumIdenticalEverywhere) {
  const int nRanks = 5;
  std::vector<std::vector<double>> buffers(nRanks);
  World::run(nRanks, [&](Communicator& comm) {
    auto& mine = buffers[static_cast<std::size_t>(comm.rank())];
    mine = {1.0, double(comm.rank())};
    comm.allReduceSum(std::span<double>(mine));
  });
  for (int r = 0; r < nRanks; ++r) {
    EXPECT_DOUBLE_EQ(buffers[r][0], 5.0);
    EXPECT_DOUBLE_EQ(buffers[r][1], 10.0);
  }
}

TEST(MiniMpi, AllReduceIsDeterministicAcrossRepeats) {
  // Rank-ordered summation: repeated runs give bit-identical results
  // even with values that don't commute losslessly in floating point.
  std::vector<double> reference;
  for (int repeat = 0; repeat < 5; ++repeat) {
    std::vector<double> result(1, 0.0);
    World::run(6, [&](Communicator& comm) {
      std::vector<double> mine{std::pow(1.1, comm.rank()) * 1e-3 + 1e10};
      comm.allReduceSum(std::span<double>(mine));
      if (comm.rank() == 0) {
        result[0] = mine[0];
      }
    });
    if (repeat == 0) {
      reference = result;
    } else {
      EXPECT_EQ(result[0], reference[0]); // bitwise
    }
  }
}

TEST(MiniMpi, ScalarCollectives) {
  World::run(4, [](Communicator& comm) {
    EXPECT_DOUBLE_EQ(comm.allReduceSum(1.5), 6.0);
    EXPECT_EQ(comm.allReduceSum(std::uint64_t(comm.rank())), 6u);
    EXPECT_DOUBLE_EQ(comm.allReduceMax(double(comm.rank())), 3.0);
    EXPECT_DOUBLE_EQ(comm.allReduceMin(double(comm.rank())), 0.0);
  });
}

TEST(MiniMpi, BcastCopiesRootData) {
  const int nRanks = 4;
  std::vector<std::vector<double>> buffers(nRanks);
  World::run(nRanks, [&](Communicator& comm) {
    auto& mine = buffers[static_cast<std::size_t>(comm.rank())];
    mine = comm.rank() == 1 ? std::vector<double>{7.0, 8.0, 9.0}
                            : std::vector<double>{0.0, 0.0, 0.0};
    comm.bcast(std::span<double>(mine), /*root=*/1);
  });
  for (int r = 0; r < nRanks; ++r) {
    EXPECT_DOUBLE_EQ(buffers[r][0], 7.0);
    EXPECT_DOUBLE_EQ(buffers[r][2], 9.0);
  }
}

TEST(MiniMpi, AllGatherOrdersByRank) {
  World::run(3, [](Communicator& comm) {
    const auto gathered = comm.allGather(double(comm.rank() * 10));
    ASSERT_EQ(gathered.size(), 3u);
    EXPECT_DOUBLE_EQ(gathered[0], 0.0);
    EXPECT_DOUBLE_EQ(gathered[1], 10.0);
    EXPECT_DOUBLE_EQ(gathered[2], 20.0);
  });
}

TEST(MiniMpi, BarrierSynchronizesPhases) {
  const int nRanks = 4;
  std::atomic<int> phase1{0};
  std::atomic<bool> sawIncomplete{false};
  World::run(nRanks, [&](Communicator& comm) {
    phase1++;
    comm.barrier();
    if (phase1.load() != nRanks) {
      sawIncomplete = true;
    }
  });
  EXPECT_FALSE(sawIncomplete.load());
}

TEST(MiniMpi, RepeatedCollectivesDoNotDeadlock) {
  World::run(3, [](Communicator& comm) {
    for (int i = 0; i < 50; ++i) {
      std::vector<double> data{double(i + comm.rank())};
      comm.allReduceSum(std::span<double>(data));
      comm.barrier();
      const double scalar = comm.allReduceSum(1.0);
      EXPECT_DOUBLE_EQ(scalar, 3.0);
    }
  });
}

TEST(MiniMpi, InvalidRootThrows) {
  EXPECT_THROW(World::run(2,
                          [](Communicator& comm) {
                            std::vector<double> data{1.0};
                            comm.reduceSum(std::span<double>(data), 5);
                          }),
               vates::InvalidArgument);
}

// ---------------------------------------------------------------------------
// Block decomposition (Algorithm 1's range(MPI_Rank, MPI_Size))

TEST(MiniMpi, SelfOnlyCollectivesAreIdentity) {
  // A one-rank world must leave every buffer untouched through the full
  // collective surface (the degenerate "MPI_COMM_SELF" case).
  World::run(1, [](Communicator& comm) {
    std::vector<double> reduced{3.5, -1.25, 0.0};
    const std::vector<double> original = reduced;
    comm.reduceSum(std::span<double>(reduced), /*root=*/0);
    EXPECT_EQ(reduced, original);

    std::vector<std::uint64_t> counts{7, 0, 42};
    const std::vector<std::uint64_t> originalCounts = counts;
    comm.allReduceSum(std::span<std::uint64_t>(counts));
    EXPECT_EQ(counts, originalCounts);

    std::vector<double> payload{9.0};
    comm.bcast(std::span<double>(payload), /*root=*/0);
    EXPECT_DOUBLE_EQ(payload[0], 9.0);

    EXPECT_DOUBLE_EQ(comm.allReduceSum(2.5), 2.5);
    EXPECT_EQ(comm.allGather(1.0).size(), 1u);
  });
}

TEST(MiniMpi, MismatchedBufferSizesRejected) {
  // Rank-dependent lengths: every collective must throw on every rank
  // (not deadlock, not read out of bounds).  World::run rethrows the
  // first rank's exception.
  const auto mismatchedLength = [](const Communicator& comm) {
    return static_cast<std::size_t>(3 + comm.rank());
  };
  EXPECT_THROW(World::run(3,
                          [&](Communicator& comm) {
                            std::vector<double> data(mismatchedLength(comm));
                            comm.allReduceSum(std::span<double>(data));
                          }),
               InvalidArgument);
  EXPECT_THROW(World::run(3,
                          [&](Communicator& comm) {
                            std::vector<double> data(mismatchedLength(comm));
                            comm.reduceSum(std::span<double>(data));
                          }),
               InvalidArgument);
  EXPECT_THROW(World::run(3,
                          [&](Communicator& comm) {
                            std::vector<std::uint64_t> data(
                                mismatchedLength(comm));
                            comm.bcast(std::span<std::uint64_t>(data));
                          }),
               InvalidArgument);
  // Matching lengths still work afterwards (the world unwound cleanly).
  World::run(3, [](Communicator& comm) {
    std::vector<double> data{1.0};
    comm.allReduceSum(std::span<double>(data));
    EXPECT_DOUBLE_EQ(data[0], 3.0);
  });
}

TEST(MiniMpi, HistogramAllreduceMatchesOracleSingleRankSum) {
  // Distribute the oracle's file loop over 4 ranks, Allreduce the
  // per-rank histograms, and compare against the strictly sequential
  // single-rank oracle — the same check Algorithm 1's MPI_Reduce step
  // needs in production.
  verify::FuzzExperiment experiment;
  for (verify::FuzzExperiment& candidate : verify::degenerateExperiments()) {
    if (candidate.name == "degenerate-goniometer") {
      experiment = std::move(candidate); // 3 files, multi-op point group
    }
  }
  ASSERT_FALSE(experiment.name.empty());
  experiment.spec.nFiles = 4;
  const ExperimentSetup setup = verify::makeSetup(experiment);
  const verify::OracleResult sequential = verify::referenceReduce(setup);

  const int nRanks = 4;
  std::vector<Histogram3D> signals(static_cast<std::size_t>(nRanks),
                                   setup.makeHistogram());
  std::vector<Histogram3D> norms(static_cast<std::size_t>(nRanks),
                                 setup.makeHistogram());
  World::run(nRanks, [&](Communicator& comm) {
    Histogram3D& signal = signals[static_cast<std::size_t>(comm.rank())];
    Histogram3D& norm = norms[static_cast<std::size_t>(comm.rank())];
    const EventGenerator generator = setup.makeGenerator();
    const auto range = comm.blockRange(setup.spec().nFiles);
    for (std::size_t file = range.begin; file < range.end; ++file) {
      verify::referenceMDNorm(setup, generator.runInfo(file), norm);
      verify::referenceBinMD(setup, generator.generate(file), signal);
    }
    comm.allReduceSum(signal.data());
    comm.allReduceSum(norm.data());
  });

  // Every rank holds the identical reduced result (deterministic
  // rank-ordered summation) ...
  for (int rank = 1; rank < nRanks; ++rank) {
    const verify::DiffReport identical = verify::compareHistograms(
        signals[0], signals[static_cast<std::size_t>(rank)],
        verify::Tolerance::bitwise(), "rank" + std::to_string(rank));
    EXPECT_TRUE(identical.pass) << identical.summary();
  }
  // ... and it matches the sequential oracle within summation-order
  // tolerance (the rank partition re-associates the per-bin sums).
  const verify::DiffReport signalReport = verify::compareHistograms(
      sequential.signal, signals[0], {}, "allreduce signal");
  EXPECT_TRUE(signalReport.pass) << signalReport.summary();
  const verify::DiffReport normReport = verify::compareHistograms(
      sequential.normalization, norms[0], {}, "allreduce normalization");
  EXPECT_TRUE(normReport.pass) << normReport.summary();
}

TEST(BlockRange, PartitionsWithoutGapsOrOverlap) {
  for (const std::size_t count : {0ul, 1ul, 7ul, 22ul, 36ul, 1000ul}) {
    for (const int size : {1, 2, 3, 4, 8, 17}) {
      std::size_t covered = 0;
      std::size_t previousEnd = 0;
      for (int rank = 0; rank < size; ++rank) {
        const auto range = blockRange(count, rank, size);
        EXPECT_EQ(range.begin, previousEnd);
        previousEnd = range.end;
        covered += range.count();
      }
      EXPECT_EQ(previousEnd, count);
      EXPECT_EQ(covered, count);
    }
  }
}

TEST(BlockRange, BalancedWithinOne) {
  const std::size_t count = 22; // Bixbyite's file count
  for (const int size : {4, 8}) {
    std::size_t smallest = count, largest = 0;
    for (int rank = 0; rank < size; ++rank) {
      const auto range = blockRange(count, rank, size);
      smallest = std::min(smallest, range.count());
      largest = std::max(largest, range.count());
    }
    EXPECT_LE(largest - smallest, 1u);
  }
}

} // namespace
} // namespace vates::comm
