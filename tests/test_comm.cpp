// Tests for the minimpi in-process communicator.

#include "vates/comm/minimpi.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <vector>

namespace vates::comm {
namespace {

TEST(MiniMpi, WorldRunsEveryRankOnce) {
  std::vector<std::atomic<int>> hits(4);
  World::run(4, [&](Communicator& comm) {
    EXPECT_EQ(comm.size(), 4);
    hits[static_cast<std::size_t>(comm.rank())]++;
  });
  for (auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(MiniMpi, SingleRankWorld) {
  World::run(1, [](Communicator& comm) {
    EXPECT_EQ(comm.rank(), 0);
    EXPECT_EQ(comm.size(), 1);
    std::vector<double> data{1.0, 2.0};
    comm.allReduceSum(std::span<double>(data));
    EXPECT_DOUBLE_EQ(data[0], 1.0);
    EXPECT_DOUBLE_EQ(data[1], 2.0);
  });
}

TEST(MiniMpi, ExceptionFromRankPropagates) {
  EXPECT_THROW(World::run(3,
                          [](Communicator& comm) {
                            if (comm.rank() == 2) {
                              throw std::runtime_error("rank 2 failed");
                            }
                          }),
               std::runtime_error);
}

TEST(MiniMpi, ReduceSumDepositsOnRoot) {
  const int nRanks = 4;
  std::vector<std::vector<double>> buffers(nRanks);
  World::run(nRanks, [&](Communicator& comm) {
    auto& mine = buffers[static_cast<std::size_t>(comm.rank())];
    mine = {double(comm.rank()), 10.0 * comm.rank(), 1.0};
    comm.reduceSum(std::span<double>(mine), /*root=*/0);
  });
  // root got 0+1+2+3, 0+10+20+30, 4
  EXPECT_DOUBLE_EQ(buffers[0][0], 6.0);
  EXPECT_DOUBLE_EQ(buffers[0][1], 60.0);
  EXPECT_DOUBLE_EQ(buffers[0][2], 4.0);
  // non-roots untouched
  EXPECT_DOUBLE_EQ(buffers[2][0], 2.0);
  EXPECT_DOUBLE_EQ(buffers[2][1], 20.0);
}

TEST(MiniMpi, ReduceSumNonZeroRoot) {
  const int nRanks = 3;
  std::vector<std::vector<std::uint64_t>> buffers(nRanks);
  World::run(nRanks, [&](Communicator& comm) {
    auto& mine = buffers[static_cast<std::size_t>(comm.rank())];
    mine = {std::uint64_t(1) << comm.rank()};
    comm.reduceSum(std::span<std::uint64_t>(mine), /*root=*/2);
  });
  EXPECT_EQ(buffers[2][0], 7u); // 1 + 2 + 4
  EXPECT_EQ(buffers[0][0], 1u);
}

TEST(MiniMpi, AllReduceSumIdenticalEverywhere) {
  const int nRanks = 5;
  std::vector<std::vector<double>> buffers(nRanks);
  World::run(nRanks, [&](Communicator& comm) {
    auto& mine = buffers[static_cast<std::size_t>(comm.rank())];
    mine = {1.0, double(comm.rank())};
    comm.allReduceSum(std::span<double>(mine));
  });
  for (int r = 0; r < nRanks; ++r) {
    EXPECT_DOUBLE_EQ(buffers[r][0], 5.0);
    EXPECT_DOUBLE_EQ(buffers[r][1], 10.0);
  }
}

TEST(MiniMpi, AllReduceIsDeterministicAcrossRepeats) {
  // Rank-ordered summation: repeated runs give bit-identical results
  // even with values that don't commute losslessly in floating point.
  std::vector<double> reference;
  for (int repeat = 0; repeat < 5; ++repeat) {
    std::vector<double> result(1, 0.0);
    World::run(6, [&](Communicator& comm) {
      std::vector<double> mine{std::pow(1.1, comm.rank()) * 1e-3 + 1e10};
      comm.allReduceSum(std::span<double>(mine));
      if (comm.rank() == 0) {
        result[0] = mine[0];
      }
    });
    if (repeat == 0) {
      reference = result;
    } else {
      EXPECT_EQ(result[0], reference[0]); // bitwise
    }
  }
}

TEST(MiniMpi, ScalarCollectives) {
  World::run(4, [](Communicator& comm) {
    EXPECT_DOUBLE_EQ(comm.allReduceSum(1.5), 6.0);
    EXPECT_EQ(comm.allReduceSum(std::uint64_t(comm.rank())), 6u);
    EXPECT_DOUBLE_EQ(comm.allReduceMax(double(comm.rank())), 3.0);
    EXPECT_DOUBLE_EQ(comm.allReduceMin(double(comm.rank())), 0.0);
  });
}

TEST(MiniMpi, BcastCopiesRootData) {
  const int nRanks = 4;
  std::vector<std::vector<double>> buffers(nRanks);
  World::run(nRanks, [&](Communicator& comm) {
    auto& mine = buffers[static_cast<std::size_t>(comm.rank())];
    mine = comm.rank() == 1 ? std::vector<double>{7.0, 8.0, 9.0}
                            : std::vector<double>{0.0, 0.0, 0.0};
    comm.bcast(std::span<double>(mine), /*root=*/1);
  });
  for (int r = 0; r < nRanks; ++r) {
    EXPECT_DOUBLE_EQ(buffers[r][0], 7.0);
    EXPECT_DOUBLE_EQ(buffers[r][2], 9.0);
  }
}

TEST(MiniMpi, AllGatherOrdersByRank) {
  World::run(3, [](Communicator& comm) {
    const auto gathered = comm.allGather(double(comm.rank() * 10));
    ASSERT_EQ(gathered.size(), 3u);
    EXPECT_DOUBLE_EQ(gathered[0], 0.0);
    EXPECT_DOUBLE_EQ(gathered[1], 10.0);
    EXPECT_DOUBLE_EQ(gathered[2], 20.0);
  });
}

TEST(MiniMpi, BarrierSynchronizesPhases) {
  const int nRanks = 4;
  std::atomic<int> phase1{0};
  std::atomic<bool> sawIncomplete{false};
  World::run(nRanks, [&](Communicator& comm) {
    phase1++;
    comm.barrier();
    if (phase1.load() != nRanks) {
      sawIncomplete = true;
    }
  });
  EXPECT_FALSE(sawIncomplete.load());
}

TEST(MiniMpi, RepeatedCollectivesDoNotDeadlock) {
  World::run(3, [](Communicator& comm) {
    for (int i = 0; i < 50; ++i) {
      std::vector<double> data{double(i + comm.rank())};
      comm.allReduceSum(std::span<double>(data));
      comm.barrier();
      const double scalar = comm.allReduceSum(1.0);
      EXPECT_DOUBLE_EQ(scalar, 3.0);
    }
  });
}

TEST(MiniMpi, InvalidRootThrows) {
  EXPECT_THROW(World::run(2,
                          [](Communicator& comm) {
                            std::vector<double> data{1.0};
                            comm.reduceSum(std::span<double>(data), 5);
                          }),
               vates::InvalidArgument);
}

// ---------------------------------------------------------------------------
// Block decomposition (Algorithm 1's range(MPI_Rank, MPI_Size))

TEST(BlockRange, PartitionsWithoutGapsOrOverlap) {
  for (const std::size_t count : {0ul, 1ul, 7ul, 22ul, 36ul, 1000ul}) {
    for (const int size : {1, 2, 3, 4, 8, 17}) {
      std::size_t covered = 0;
      std::size_t previousEnd = 0;
      for (int rank = 0; rank < size; ++rank) {
        const auto range = blockRange(count, rank, size);
        EXPECT_EQ(range.begin, previousEnd);
        previousEnd = range.end;
        covered += range.count();
      }
      EXPECT_EQ(previousEnd, count);
      EXPECT_EQ(covered, count);
    }
  }
}

TEST(BlockRange, BalancedWithinOne) {
  const std::size_t count = 22; // Bixbyite's file count
  for (const int size : {4, 8}) {
    std::size_t smallest = count, largest = 0;
    for (int rank = 0; rank < size; ++rank) {
      const auto range = blockRange(count, rank, size);
      smallest = std::min(smallest, range.count());
      largest = std::max(largest, range.count());
    }
    EXPECT_LE(largest - smallest, 1u);
  }
}

} // namespace
} // namespace vates::comm
