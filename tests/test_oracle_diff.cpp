/// \file test_oracle_diff.cpp
/// The differential verification harness: every optimized configuration
/// (simd × traversal × accumulator × backend × overlap × ranks) of the
/// reduction pipeline is compared bin-by-bin against the independent
/// scalar reference oracle (src/verify/) on seeded randomized
/// experiments, named degenerate inputs, and committed golden files.
///
/// When a future PR bends the physics, the failure report names the
/// configuration and the worst bin's (H, K, L) — see DESIGN.md's
/// "Verification" section for the documented corruption drill.

#include "vates/core/autotune.hpp"
#include "vates/core/pipeline.hpp"
#include "vates/kernels/intersections.hpp"
#include "vates/kernels/transforms.hpp"
#include "vates/scenario/scenario.hpp"
#include "vates/service/reduction_service.hpp"
#include "vates/verify/diff.hpp"
#include "vates/verify/fuzz_inputs.hpp"
#include "vates/verify/reference_oracle.hpp"

#include "vates/io/histogram_file.hpp"
#include "vates/support/error.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <limits>
#include <optional>
#include <string>
#include <vector>

namespace {

using namespace vates;
using core::OverlapMode;
using core::ReductionConfig;
using core::ReductionPipeline;
using core::ReductionResult;

std::vector<Backend> availableBackends() {
  std::vector<Backend> backends;
  for (const Backend candidate : {Backend::Serial, Backend::OpenMP,
                                  Backend::ThreadPool, Backend::DeviceSim}) {
    if (backendAvailable(candidate)) {
      backends.push_back(candidate);
    }
  }
  return backends;
}

constexpr Traversal kTraversals[] = {Traversal::Legacy, Traversal::SortedKeys,
                                     Traversal::Dda};
constexpr AccumulateStrategy kStrategies[] = {
    AccumulateStrategy::Auto, AccumulateStrategy::Atomic,
    AccumulateStrategy::Privatized, AccumulateStrategy::Tiled};
constexpr OverlapMode kOverlaps[] = {OverlapMode::Off, OverlapMode::Prefetch,
                                     OverlapMode::Full};
// Off is the pre-SIMD scalar loop verbatim; On forces the vector path
// (which falls back to width-1 lanes in builds without vector ISA, so
// the sweep exercises the batch/tile plumbing everywhere).
constexpr SimdMode kSimdModes[] = {SimdMode::Off, SimdMode::On};

ReductionConfig makeConfig(Traversal traversal, AccumulateStrategy strategy,
                           Backend backend, OverlapMode overlap, int ranks,
                           SimdMode simd = SimdMode::Auto) {
  ReductionConfig config;
  config.backend = backend;
  config.ranks = ranks;
  config.mdnorm.traversal = traversal;
  config.mdnorm.accumulate.strategy = strategy;
  config.mdnorm.simd = simd;
  config.binmdAccumulate.strategy = strategy;
  config.overlap.mode = overlap;
  return config;
}

std::string configLabel(const ReductionConfig& config, std::uint64_t seed) {
  return std::string(traversalName(config.mdnorm.traversal)) + "/" +
         accumulateStrategyName(config.mdnorm.accumulate.strategy) + "/" +
         backendName(config.backend) + "/" +
         overlapModeName(config.overlap.mode) + "/simd=" +
         simdModeName(config.mdnorm.simd) + "/ranks=" +
         std::to_string(config.ranks) + " seed=" + std::to_string(seed);
}

/// Compare all three result histograms against the oracle; on failure
/// the assertion message is the DiffReport summary (worst bin + HKL).
void expectMatchesOracle(const verify::OracleResult& oracle,
                         const ReductionResult& result,
                         const std::string& label,
                         const verify::Tolerance& tolerance = {}) {
  const auto check = [&](const Histogram3D& expected,
                         const Histogram3D& actual, const char* what) {
    const verify::DiffReport report = verify::compareHistograms(
        expected, actual, tolerance, std::string(what) + " " + label);
    EXPECT_TRUE(report.pass) << report.summary();
  };
  check(oracle.signal, result.signal, "signal");
  check(oracle.normalization, result.normalization, "normalization");
  check(oracle.crossSection, result.crossSection, "crossSection");
}

std::filesystem::path goldenDir() {
#ifdef VATES_GOLDEN_DIR
  return VATES_GOLDEN_DIR;
#else
  return "tests/golden";
#endif
}

// ---------------------------------------------------------------------------
// Contract constants: the oracle restates kernel-side constants so it
// can avoid kernel headers; these pins stop silent drift.

TEST(OracleContract, ParallelToleranceMatchesKernels) {
  EXPECT_EQ(verify::kOracleParallelTolerance, kTrajectoryParallelTolerance);
}

TEST(OracleContract, DivideEpsilonMatchesPipelineDefault) {
  // Histogram3D::divide's default epsilon (1e-300) is the pipeline's
  // zero-normalization gate; the oracle restates it.
  EXPECT_EQ(verify::kOracleDivideEpsilon, 1e-300);
}

TEST(OracleContract, CrossSectionMatchesHistogramDivideBitwise) {
  Xoshiro256 rng(0xd1f4u);
  const verify::FuzzExperiment experiment = verify::randomExperiment(rng, 0);
  const ExperimentSetup setup = verify::makeSetup(experiment);
  const verify::OracleResult oracle = verify::referenceReduce(setup);

  const Histogram3D viaKernel =
      Histogram3D::divide(oracle.signal, oracle.normalization);
  const verify::DiffReport report =
      verify::compareHistograms(oracle.crossSection, viaKernel,
                                verify::Tolerance::bitwise(), "divide policy");
  EXPECT_TRUE(report.pass) << report.summary();
}

// ---------------------------------------------------------------------------
// The diff engine itself: it must detect what it claims to detect,
// otherwise a green sweep proves nothing.

TEST(UlpDistance, CountsRepresentableSteps) {
  EXPECT_EQ(verify::ulpDistance(1.0, 1.0), 0u);
  const double next = std::nextafter(1.0, 2.0);
  EXPECT_EQ(verify::ulpDistance(1.0, next), 1u);
  EXPECT_EQ(verify::ulpDistance(next, 1.0), 1u);
  EXPECT_EQ(verify::ulpDistance(1.0, std::nextafter(next, 2.0)), 2u);
  // Across zero: -0.0 and +0.0 are one representation apart on the
  // ordered scale but bitwise-distinct; distance must stay tiny.
  EXPECT_LE(verify::ulpDistance(-0.0, 0.0), 1u);
  EXPECT_EQ(verify::ulpDistance(0.0, 0.0), 0u);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(verify::ulpDistance(nan, 1.0),
            std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(verify::ulpDistance(nan, nan), 0u); // identical payloads
}

class DiffEngineTest : public ::testing::Test {
protected:
  verify::OracleResult oracle_ = [] {
    Xoshiro256 rng(0xbadb1u);
    const verify::FuzzExperiment experiment = verify::randomExperiment(rng, 0);
    const ExperimentSetup setup = verify::makeSetup(experiment);
    return verify::referenceReduce(setup);
  }();
};

TEST_F(DiffEngineTest, PassesOnIdenticalHistograms) {
  const verify::DiffReport report = verify::compareHistograms(
      oracle_.normalization, oracle_.normalization,
      verify::Tolerance::bitwise(), "self");
  EXPECT_TRUE(report.pass) << report.summary();
  EXPECT_EQ(report.binsMismatched, 0u);
  EXPECT_FALSE(report.worst.has_value());
}

TEST_F(DiffEngineTest, DetectsSingleBinCorruption) {
  Histogram3D corrupted = oracle_.normalization;
  // Pick the largest bin and knock it by 0.1% — far past any tolerance.
  std::size_t target = 0;
  for (std::size_t i = 0; i < corrupted.size(); ++i) {
    if (corrupted.data()[i] > corrupted.data()[target]) {
      target = i;
    }
  }
  ASSERT_GT(corrupted.data()[target], 0.0);
  corrupted.data()[target] *= 1.001;

  const verify::DiffReport report = verify::compareHistograms(
      oracle_.normalization, corrupted, {}, "corruption drill");
  EXPECT_FALSE(report.pass);
  EXPECT_EQ(report.binsMismatched, 1u);
  ASSERT_TRUE(report.worst.has_value());
  EXPECT_EQ(report.worst->flatIndex, target);

  // The report localizes the bin: indices recompose to the flat index
  // and the quoted (H,K,L) center lies inside that bin on every axis.
  const auto& worst = *report.worst;
  EXPECT_EQ(oracle_.normalization.flatIndex(worst.index[0], worst.index[1],
                                            worst.index[2]),
            target);
  for (std::size_t axis = 0; axis < 3; ++axis) {
    const BinAxis& binAxis = oracle_.normalization.axis(axis);
    const double lo =
        binAxis.min() + static_cast<double>(worst.index[axis]) * binAxis.width();
    EXPECT_GE(worst.center[axis], lo);
    EXPECT_LE(worst.center[axis], lo + binAxis.width());
  }
  EXPECT_NE(report.summary().find("FAIL"), std::string::npos);
}

TEST_F(DiffEngineTest, FailingBinOutranksLargerPassingNoise) {
  // Bin 0: a large value with an in-tolerance wiggle (relative 8e-9,
  // absolute 8e-3).  Bin 5: a small value corrupted by 50% (absolute
  // 2e-3 — smaller than bin 0's wiggle but out of every tolerance).
  // The report must point at bin 5, not the bigger passing diff.
  Histogram3D expected(BinAxis("H", 0.0, 3.0, 3), BinAxis("K", 0.0, 3.0, 3),
                       BinAxis("L", 0.0, 1.0, 1));
  expected.data()[0] = 1e6;
  expected.data()[5] = 4e-3;
  Histogram3D candidate = expected;
  candidate.data()[0] += 8e-3;
  candidate.data()[5] *= 1.5;

  const verify::DiffReport report =
      verify::compareHistograms(expected, candidate, {}, "ranking");
  EXPECT_FALSE(report.pass);
  EXPECT_EQ(report.binsMismatched, 1u);
  ASSERT_TRUE(report.worst.has_value());
  EXPECT_EQ(report.worst->flatIndex, 5u);
}

TEST_F(DiffEngineTest, DetectsNanMismatchBothWays) {
  Histogram3D corrupted = oracle_.crossSection;
  // The cross-section of a partial-coverage experiment has both NaN
  // (uncovered) and finite bins; flip one of each.
  std::size_t nanBin = corrupted.size();
  std::size_t finiteBin = corrupted.size();
  for (std::size_t i = 0; i < corrupted.size(); ++i) {
    if (std::isnan(corrupted.data()[i])) {
      nanBin = i;
    } else {
      finiteBin = i;
    }
  }
  ASSERT_LT(nanBin, corrupted.size());
  ASSERT_LT(finiteBin, corrupted.size());

  Histogram3D nanToNumber = corrupted;
  nanToNumber.data()[nanBin] = 0.0;
  verify::DiffReport report = verify::compareHistograms(
      oracle_.crossSection, nanToNumber, {}, "NaN→number");
  EXPECT_FALSE(report.pass);
  EXPECT_EQ(report.nanMismatches, 1u);
  ASSERT_TRUE(report.worst.has_value());
  EXPECT_EQ(report.worst->flatIndex, nanBin);

  Histogram3D numberToNan = corrupted;
  numberToNan.data()[finiteBin] = std::numeric_limits<double>::quiet_NaN();
  report = verify::compareHistograms(oracle_.crossSection, numberToNan, {},
                                     "number→NaN");
  EXPECT_FALSE(report.pass);
  EXPECT_EQ(report.nanMismatches, 1u);
}

TEST_F(DiffEngineTest, ShapeMismatchThrowsLoudly) {
  Histogram3D other(BinAxis("H", -1.0, 1.0, 3), BinAxis("K", -1.0, 1.0, 3),
                    BinAxis("L", -1.0, 1.0, 3));
  EXPECT_THROW(static_cast<void>(verify::compareHistograms(
                   oracle_.signal, other, {}, "shape")),
               InvalidArgument);
}

// ---------------------------------------------------------------------------
// The sweep: ≥ 20 seeded random experiments, each checked through every
// traversal × accumulator × backend × overlap combination.

class OracleDiffSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OracleDiffSweep, AllConfigurationsMatchOracle) {
  const std::uint64_t seed = GetParam();
  Xoshiro256 rng(0x0c0ffee0u + seed, /*streamId=*/seed);
  // A random grid can land entirely off the instrument's trajectory
  // hull (empty normalization — legal but uninformative); redraw from
  // the same deterministic stream until the experiment has coverage.
  verify::FuzzExperiment experiment;
  std::optional<ExperimentSetup> setupStorage;
  std::optional<verify::OracleResult> oracleStorage;
  for (int attempt = 0; attempt < 8; ++attempt) {
    experiment = verify::randomExperiment(rng, static_cast<std::size_t>(seed));
    setupStorage.emplace(verify::makeSetup(experiment));
    oracleStorage = verify::referenceReduce(*setupStorage);
    if (oracleStorage->normalization.nonZeroBins() > 0) {
      break;
    }
  }
  const ExperimentSetup& setup = *setupStorage;
  const verify::OracleResult& oracle = *oracleStorage;
  ASSERT_GT(oracle.normalization.nonZeroBins(), 0u)
      << experiment.name << ": no coverage after 8 redraws";

  const int ranks = 1 + static_cast<int>(seed % 2);
  for (const SimdMode simd : kSimdModes) {
    for (const Traversal traversal : kTraversals) {
      for (const AccumulateStrategy strategy : kStrategies) {
        for (const Backend backend : availableBackends()) {
          for (const OverlapMode overlap : kOverlaps) {
            const ReductionConfig config =
                makeConfig(traversal, strategy, backend, overlap, ranks, simd);
            const ReductionResult result =
                ReductionPipeline(setup, config).run();
            expectMatchesOracle(oracle, result,
                                experiment.name + " " +
                                    configLabel(config, seed));
            if (HasFailure()) {
              // One bin-level report per configuration is actionable;
              // thousands of identical ones are noise.
              return;
            }
          }
        }
      }
    }
  }
}

// 14 random experiments: 6 sweep slots moved to structured scenario
// workloads (OracleDiffScenario below), which cover the same ground
// deliberately instead of by draw.
INSTANTIATE_TEST_SUITE_P(SeededExperiments, OracleDiffSweep,
                         ::testing::Range<std::uint64_t>(0, 14));

// ---------------------------------------------------------------------------
// Scenario workloads through the full configuration sweep: the first
// six scenarios of the default matrix span both instrument shapes and
// all three mask fractions (0 / 0.3 / 0.9), with family-consistent
// lattices — structured coverage the random experiments only reach by
// accident.  (The full ≥24-scenario matrix runs in test_scenario.cpp
// under the "scenario-matrix" ctest label.)

class OracleDiffScenario : public ::testing::TestWithParam<std::size_t> {};

TEST_P(OracleDiffScenario, AllConfigurationsMatchOracle) {
  const scenario::Scenario experiment = scenario::makeScenario(GetParam());
  const ExperimentSetup setup(experiment.workload);
  const verify::OracleResult oracle = verify::referenceReduce(setup);

  const int ranks = 1 + static_cast<int>(GetParam() % 2);
  for (const SimdMode simd : kSimdModes) {
    for (const Traversal traversal : kTraversals) {
      for (const AccumulateStrategy strategy : kStrategies) {
        for (const Backend backend : availableBackends()) {
          for (const OverlapMode overlap : kOverlaps) {
            const ReductionConfig config =
                makeConfig(traversal, strategy, backend, overlap, ranks, simd);
            const ReductionResult result =
                ReductionPipeline(setup, config).run();
            expectMatchesOracle(oracle, result,
                                experiment.name + " " +
                                    configLabel(config, GetParam()));
            if (HasFailure()) {
              return;
            }
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ScenarioMatrix, OracleDiffScenario,
                         ::testing::Range<std::size_t>(0, 6));

// ---------------------------------------------------------------------------
// Autotune parity: a job reduced with the runtime autotuner enabled
// must be *bitwise* identical to the same plan run with the recorded
// decision pinned manually — the probe may only choose a config, never
// perturb the result.

TEST(OracleAutotune, TunedJobBitwiseMatchesPinnedRerun) {
  core::ReductionPlan plan;
  plan.workload = scenario::makeScenario(3).workload; // banks, unmasked
  plan.config.autotune.enabled = true;
  plan.config.autotune.maxCandidates = 6; // keep the probe cheap

  service::ServiceOptions options;
  options.workers = 1;
  service::ReductionService svc(options);
  service::JobRequest request;
  request.plan = plan;
  const service::SubmitReceipt receipt = svc.submit(request);
  ASSERT_TRUE(receipt.accepted) << receipt.reason;
  const std::shared_ptr<const service::JobOutcome> outcome =
      svc.wait(receipt.id);
  ASSERT_NE(outcome, nullptr);
  ASSERT_EQ(outcome->status.state, service::JobState::Done)
      << outcome->status.error;
  ASSERT_NE(outcome->result, nullptr);
  ASSERT_FALSE(outcome->status.autotunedConfig.empty());

  // Pin the recorded decision by hand and run the pipeline directly —
  // no autotuner anywhere in this path.
  core::AutotuneDecision decision;
  decision.tuned = true;
  decision.chosen =
      core::parseAutotuneSummary(outcome->status.autotunedConfig);
  core::ReductionConfig pinned =
      core::lockAutotuneDecision(plan.config, decision);
  ASSERT_FALSE(pinned.autotune.enabled);
  const ExperimentSetup setup(plan.workload);
  const ReductionResult rerun = ReductionPipeline(setup, pinned).run();

  const auto checkBitwise = [&](const char* what, const Histogram3D& tuned,
                                const Histogram3D& manual) {
    const verify::DiffReport report = verify::compareHistograms(
        tuned, manual, verify::Tolerance::bitwise(),
        std::string("autotune parity ") + what + " (" +
            outcome->status.autotunedConfig + ")");
    EXPECT_TRUE(report.pass) << report.summary();
  };
  checkBitwise("signal", outcome->result->signal, rerun.signal);
  checkBitwise("normalization", outcome->result->normalization,
               rerun.normalization);
  checkBitwise("crossSection", outcome->result->crossSection,
               rerun.crossSection);

  // And the tuned run still matches the independent oracle.
  const verify::OracleResult oracle = verify::referenceReduce(setup);
  expectMatchesOracle(oracle, *outcome->result, "autotuned job vs oracle");

  const service::ServiceMetrics metrics = svc.metrics();
  EXPECT_EQ(metrics.autotunedJobs, 1u);
  const auto latency = metrics.latency.find("autotune");
  ASSERT_NE(latency, metrics.latency.end());
  EXPECT_EQ(latency->second.count, 1u);
}

TEST(OracleDiff, ErrorPropagationMatchesOracle) {
  Xoshiro256 rng(0xe4405u);
  for (std::size_t index = 0; index < 4; ++index) {
    const verify::FuzzExperiment experiment =
        verify::randomExperiment(rng, index);
    const ExperimentSetup setup = verify::makeSetup(experiment);
    const verify::OracleResult oracle =
        verify::referenceReduce(setup, /*trackErrors=*/true);
    ASSERT_TRUE(oracle.signalErrorSq.has_value());
    ASSERT_TRUE(oracle.crossSectionErrorSq.has_value());

    ReductionConfig config = makeConfig(
        Traversal::Dda, AccumulateStrategy::Auto,
        index % 2 == 0 ? Backend::Serial : Backend::ThreadPool,
        index % 2 == 0 ? OverlapMode::Off : OverlapMode::Full, 1);
    config.trackErrors = true;
    const ReductionResult result = ReductionPipeline(setup, config).run();
    ASSERT_TRUE(result.signalErrorSq.has_value());
    ASSERT_TRUE(result.crossSectionErrorSq.has_value());

    expectMatchesOracle(oracle, result, experiment.name + " trackErrors");
    verify::DiffReport report = verify::compareHistograms(
        *oracle.signalErrorSq, *result.signalErrorSq, {},
        experiment.name + " signalErrorSq");
    EXPECT_TRUE(report.pass) << report.summary();
    report = verify::compareHistograms(*oracle.crossSectionErrorSq,
                                       *result.crossSectionErrorSq, {},
                                       experiment.name + " crossSectionErrorSq");
    EXPECT_TRUE(report.pass) << report.summary();
  }
}

// ---------------------------------------------------------------------------
// Degenerate inputs: the named fuzz roster, each swept through a
// representative configuration slice (every traversal, both threaded
// backends, the device sim, and full overlap).

class OracleDiffDegenerate
    : public ::testing::TestWithParam<verify::FuzzExperiment> {};

TEST_P(OracleDiffDegenerate, MatchesOracle) {
  const verify::FuzzExperiment& experiment = GetParam();
  const ExperimentSetup setup = verify::makeSetup(experiment);
  const verify::OracleResult oracle = verify::referenceReduce(setup);

  std::vector<ReductionConfig> configs;
  for (const Traversal traversal : kTraversals) {
    configs.push_back(makeConfig(traversal, AccumulateStrategy::Atomic,
                                 Backend::Serial, OverlapMode::Off, 1));
  }
  // The degenerate roster is where batch-path edge cases live (empty
  // detector sets, single crossings): run the forced-vector path on
  // the serial reference shape too.
  configs.push_back(makeConfig(Traversal::Dda, AccumulateStrategy::Atomic,
                               Backend::Serial, OverlapMode::Off, 1,
                               SimdMode::On));
  for (const Backend backend : availableBackends()) {
    if (backend != Backend::Serial) {
      configs.push_back(makeConfig(Traversal::Dda, AccumulateStrategy::Auto,
                                   backend, OverlapMode::Full, 2,
                                   SimdMode::On));
    }
  }
  for (const ReductionConfig& config : configs) {
    const ReductionResult result = ReductionPipeline(setup, config).run();
    expectMatchesOracle(oracle, result,
                        experiment.name + " " + configLabel(config, 0));
  }
}

INSTANTIATE_TEST_SUITE_P(
    NamedCases, OracleDiffDegenerate,
    ::testing::ValuesIn(verify::degenerateExperiments()),
    [](const ::testing::TestParamInfo<verify::FuzzExperiment>& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name;
    });

TEST(OracleDegenerateSemantics, EmptyDetectorSetIsAllNaN) {
  for (const verify::FuzzExperiment& experiment :
       verify::degenerateExperiments()) {
    if (experiment.name != "empty-detector-set") {
      continue;
    }
    const ExperimentSetup setup = verify::makeSetup(experiment);
    const verify::OracleResult oracle = verify::referenceReduce(setup);
    EXPECT_EQ(oracle.normalization.nonZeroBins(), 0u);
    for (const double value : oracle.crossSection.data()) {
      EXPECT_TRUE(std::isnan(value));
    }
    return;
  }
  FAIL() << "empty-detector-set case missing from the fuzz roster";
}

TEST(OracleDegenerateSemantics, ZeroEventsLeavesSignalEmpty) {
  for (const verify::FuzzExperiment& experiment :
       verify::degenerateExperiments()) {
    if (experiment.name != "zero-events") {
      continue;
    }
    const ExperimentSetup setup = verify::makeSetup(experiment);
    const verify::OracleResult oracle = verify::referenceReduce(setup);
    EXPECT_EQ(oracle.eventsProcessed, 0u);
    EXPECT_EQ(oracle.signal.nonZeroBins(), 0u);
    EXPECT_GT(oracle.normalization.nonZeroBins(), 0u);
    return;
  }
  FAIL() << "zero-events case missing from the fuzz roster";
}

// ---------------------------------------------------------------------------
// Golden regression: committed CRC-stamped oracle outputs must match a
// freshly computed oracle.  Tolerance is tight but not bitwise: the
// flux table is built with libm transcendentals, which may differ by an
// ulp across toolchains; everything downstream is plain arithmetic.

TEST(OracleGolden, CommittedGoldensMatchFreshOracle) {
  const verify::Tolerance tight{1e-10, 8, 1e-12};
  for (const verify::FuzzExperiment& experiment :
       verify::goldenExperiments()) {
    const std::filesystem::path path =
        goldenDir() / (experiment.name + ".nxl");
    ASSERT_TRUE(std::filesystem::exists(path))
        << path << " missing — regenerate with tools/gen_golden (see "
                   "DESIGN.md 'Verification')";

    const ReducedData golden = loadReducedData(path.string());
    const ExperimentSetup setup = verify::makeSetup(experiment);
    const verify::OracleResult oracle = verify::referenceReduce(setup);

    // Shape drift fails before any numeric comparison.
    ASSERT_TRUE(golden.signal.sameShape(oracle.signal))
        << experiment.name << ": golden histogram shape drifted";

    const auto check = [&](const char* name, const Histogram3D& expected,
                           const Histogram3D& actual) {
      const verify::DiffReport report = verify::compareHistograms(
          expected, actual, tight, experiment.name + " golden " + name);
      EXPECT_TRUE(report.pass) << report.summary();
    };
    check("signal", golden.signal, oracle.signal);
    check("normalization", golden.normalization, oracle.normalization);
    check("crossSection", golden.crossSection, oracle.crossSection);
  }
}

} // namespace
