// Tests for the live-streaming substrate: channel semantics,
// backpressure, the DAQ replayer, and the live reducer's equivalence
// with batch reduction.

#include "vates/core/pipeline.hpp"
#include "vates/stream/daq_simulator.hpp"
#include "vates/stream/event_channel.hpp"
#include "vates/stream/live_reducer.hpp"
#include "vates/support/error.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

namespace vates::stream {
namespace {

PulsePacket makePacket(std::uint32_t run, std::uint32_t pulse,
                       std::size_t events = 1, bool endOfRun = false) {
  PulsePacket packet;
  packet.runIndex = run;
  packet.pulseIndex = pulse;
  packet.endOfRun = endOfRun;
  for (std::size_t i = 0; i < events; ++i) {
    packet.events.append(static_cast<std::uint32_t>(i), 1000.0 + i, pulse,
                         1.0);
  }
  return packet;
}

// ---------------------------------------------------------------------------
// EventChannel

TEST(EventChannel, FifoOrder) {
  EventChannel channel(8);
  for (std::uint32_t i = 0; i < 5; ++i) {
    channel.push(makePacket(0, i));
  }
  channel.close();
  for (std::uint32_t i = 0; i < 5; ++i) {
    const auto packet = channel.pop();
    ASSERT_TRUE(packet.has_value());
    EXPECT_EQ(packet->pulseIndex, i);
  }
  EXPECT_FALSE(channel.pop().has_value()); // drained + closed
}

TEST(EventChannel, CloseUnblocksConsumer) {
  EventChannel channel(2);
  std::atomic<bool> sawEnd{false};
  std::thread consumer([&] {
    while (channel.pop().has_value()) {
    }
    sawEnd = true;
  });
  channel.push(makePacket(0, 0));
  channel.close();
  consumer.join();
  EXPECT_TRUE(sawEnd.load());
}

TEST(EventChannel, PushAfterCloseThrows) {
  EventChannel channel(2);
  channel.close();
  EXPECT_THROW(channel.push(makePacket(0, 0)), InvalidArgument);
}

TEST(EventChannel, BackpressureBlocksAndCounts) {
  EventChannel channel(1);
  channel.push(makePacket(0, 0));
  std::atomic<bool> secondPushDone{false};
  std::thread producer([&] {
    channel.push(makePacket(0, 1)); // must block: capacity 1
    secondPushDone = true;
  });
  // Give the producer time to block.
  for (int i = 0; i < 200 && channel.stats().producerBlocked == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_FALSE(secondPushDone.load());
  EXPECT_GE(channel.stats().producerBlocked, 1u);

  EXPECT_TRUE(channel.pop().has_value()); // frees a slot
  producer.join();
  EXPECT_TRUE(secondPushDone.load());
  channel.close();
}

TEST(EventChannel, StatsTrackDepth) {
  EventChannel channel(4);
  channel.push(makePacket(0, 0));
  channel.push(makePacket(0, 1));
  channel.push(makePacket(0, 2));
  EXPECT_EQ(channel.depth(), 3u);
  EXPECT_EQ(channel.stats().maxDepth, 3u);
  channel.pop();
  EXPECT_EQ(channel.depth(), 2u);
  EXPECT_EQ(channel.stats().pushed, 3u);
  EXPECT_EQ(channel.stats().popped, 1u);
  channel.close();
}

TEST(EventChannel, InvalidCapacityThrows) {
  EXPECT_THROW(EventChannel channel(0), InvalidArgument);
}

TEST(EventChannel, CloseWakesPendingProducers) {
  // Several producers blocked in push() on a full channel must all wake
  // when the channel closes, and must all report the closure instead of
  // silently dropping their packet.
  EventChannel channel(1);
  channel.push(makePacket(0, 0)); // fill the single slot
  std::atomic<int> throws{0};
  std::vector<std::thread> producers;
  for (std::uint32_t i = 0; i < 3; ++i) {
    producers.emplace_back([&channel, &throws, i] {
      try {
        channel.push(makePacket(0, 100 + i));
      } catch (const InvalidArgument&) {
        ++throws;
      }
    });
  }
  // Wait until all three are actually parked in push().
  for (int i = 0; i < 2000 && channel.stats().producerBlocked < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(channel.stats().producerBlocked, 3u);
  channel.close();
  for (std::thread& producer : producers) {
    producer.join();
  }
  EXPECT_EQ(throws.load(), 3);
  // The packet that made it in before the close is still drainable.
  const auto packet = channel.pop();
  ASSERT_TRUE(packet.has_value());
  EXPECT_EQ(packet->pulseIndex, 0u);
  EXPECT_FALSE(channel.pop().has_value());
}

// ---------------------------------------------------------------------------
// DaqSimulator

class StreamFixture : public ::testing::Test {
protected:
  StreamFixture()
      : setup_(WorkloadSpec::benzilCorelli(0.0005)),
        generator_(setup_.makeGenerator()) {}
  ExperimentSetup setup_;
  EventGenerator generator_;
};

TEST_F(StreamFixture, DaqEmitsEveryEventExactlyOnce) {
  // Capacity exceeds the total packet count: the producer can finish
  // before the consumer starts (no concurrent pop below).
  EventChannel channel(100000);
  const DaqSimulator daq(generator_);
  const DaqStats stats = daq.streamRuns(channel, 0, 2);
  channel.close();

  EXPECT_EQ(stats.runsEmitted, 2u);
  EXPECT_EQ(stats.eventsEmitted, 2 * setup_.spec().eventsPerFile);

  std::uint64_t received = 0;
  std::uint32_t endOfRunSeen = 0;
  while (const auto packet = channel.pop()) {
    received += packet->events.size();
    if (packet->endOfRun) {
      ++endOfRunSeen;
    }
  }
  EXPECT_EQ(received, stats.eventsEmitted);
  EXPECT_EQ(endOfRunSeen, 2u);
}

TEST_F(StreamFixture, DaqPacketsMatchRawGeneration) {
  EventChannel channel(100000);
  DaqSimulator(generator_).streamRuns(channel, 3, 4);
  channel.close();

  RawEventList reassembled;
  while (const auto packet = channel.pop()) {
    EXPECT_EQ(packet->runIndex, 3u);
    for (std::size_t i = 0; i < packet->events.size(); ++i) {
      reassembled.append(packet->events.detectorId(i), packet->events.tof(i),
                         packet->events.pulseIndex(i),
                         packet->events.weight(i));
    }
  }
  EXPECT_TRUE(reassembled == generator_.generateRaw(3));
}

// ---------------------------------------------------------------------------
// Live reduction end-to-end

TEST_F(StreamFixture, LiveReductionMatchesBatchPipeline) {
  // Producer thread streams the whole campaign; consumer reduces runs
  // as they complete.  The final state must equal the batch raw-mode
  // pipeline.
  EventChannel channel(64); // modest capacity: real backpressure
  const DaqSimulator daq(generator_);
  LiveReducer reducer(setup_, Executor(Backend::Serial));

  std::thread producer([&] { daq.streamAllAndClose(channel); });
  const LiveStats stats = reducer.consume(channel);
  producer.join();

  EXPECT_EQ(stats.runsReduced, setup_.spec().nFiles);
  EXPECT_EQ(stats.eventsConsumed,
            setup_.spec().nFiles * setup_.spec().eventsPerFile);

  core::ReductionConfig config;
  config.backend = Backend::Serial;
  config.loadMode = core::LoadMode::RawTof;
  const core::ReductionResult batch =
      core::ReductionPipeline(setup_, config).run();

  const LiveSnapshot live = reducer.snapshot();
  double worst = 0.0;
  for (std::size_t i = 0; i < live.signal.size(); ++i) {
    worst = std::max(worst, std::fabs(live.signal.data()[i] -
                                      batch.signal.data()[i]));
  }
  EXPECT_LT(worst, 1e-9);
  EXPECT_NEAR(live.normalization.totalSignal(),
              batch.normalization.totalSignal(), 1e-9);
}

TEST_F(StreamFixture, SnapshotCoverageGrowsMonotonically) {
  EventChannel channel(64);
  const DaqSimulator daq(generator_);
  LiveReducer reducer(setup_, Executor(Backend::Serial));

  std::thread consumer([&] { reducer.consume(channel); });

  double previousCoverage = -1.0;
  for (std::size_t run = 0; run < 4; ++run) {
    daq.streamRuns(channel, run, run + 1);
    // Wait until the reducer has folded this run in.
    while (reducer.snapshot().stats.runsReduced != run + 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const LiveSnapshot snapshot = reducer.snapshot();
    EXPECT_GE(snapshot.coverage, previousCoverage);
    previousCoverage = snapshot.coverage;
  }
  channel.close();
  consumer.join();
  EXPECT_GT(previousCoverage, 0.0);
}

TEST_F(StreamFixture, RequestStopEndsConsumeEarly) {
  // Capacity exceeds one run's packet count so the producer can finish
  // before the consumer starts.
  EventChannel channel(100000);
  const DaqSimulator daq(generator_);
  LiveReducer reducer(setup_, Executor(Backend::Serial));

  // Fold exactly one run, then stop; the remaining runs stay unread.
  daq.streamRuns(channel, 0, 1);
  std::thread consumer([&] { reducer.consume(channel); });
  while (reducer.snapshot().stats.runsReduced < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  reducer.requestStop();
  channel.close(); // wake the consumer if it is parked in pop()
  consumer.join();

  const LiveSnapshot snapshot = reducer.snapshot();
  EXPECT_GE(snapshot.stats.runsReduced, 1u);
  EXPECT_GT(snapshot.signal.totalSignal(), 0.0); // folded work is kept
}

TEST_F(StreamFixture, SnapshotIsSafeDuringConcurrentConsume) {
  // TSan-targeted stress: hammer snapshot() from two reader threads
  // while consume() folds runs on a third.  The snapshots themselves
  // must always be internally consistent (monotone run counts).
  EventChannel channel(16);
  const DaqSimulator daq(generator_);
  LiveReducer reducer(setup_, Executor(Backend::Serial));

  std::thread consumer([&] { reducer.consume(channel); });
  std::atomic<bool> stop{false};
  std::atomic<bool> monotone{true};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      std::size_t lastRuns = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const LiveSnapshot snapshot = reducer.snapshot();
        if (snapshot.stats.runsReduced < lastRuns) {
          monotone = false;
        }
        lastRuns = snapshot.stats.runsReduced;
      }
    });
  }

  daq.streamAllAndClose(channel);
  consumer.join();
  stop = true;
  for (std::thread& reader : readers) {
    reader.join();
  }
  EXPECT_TRUE(monotone.load());
  const LiveSnapshot final = reducer.snapshot();
  EXPECT_EQ(final.stats.runsReduced, setup_.spec().nFiles);
  EXPECT_EQ(final.stats.eventsConsumed,
            setup_.spec().nFiles * setup_.spec().eventsPerFile);
}

} // namespace
} // namespace vates::stream
