// Tests for the live-streaming substrate: channel semantics,
// backpressure, the DAQ replayer, and the live reducer's equivalence
// with batch reduction.

#include "vates/core/pipeline.hpp"
#include "vates/stream/daq_simulator.hpp"
#include "vates/stream/event_channel.hpp"
#include "vates/stream/live_reducer.hpp"
#include "vates/support/error.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

namespace vates::stream {
namespace {

PulsePacket makePacket(std::uint32_t run, std::uint32_t pulse,
                       std::size_t events = 1, bool endOfRun = false) {
  PulsePacket packet;
  packet.runIndex = run;
  packet.pulseIndex = pulse;
  packet.endOfRun = endOfRun;
  for (std::size_t i = 0; i < events; ++i) {
    packet.events.append(static_cast<std::uint32_t>(i), 1000.0 + i, pulse,
                         1.0);
  }
  return packet;
}

// ---------------------------------------------------------------------------
// EventChannel

TEST(EventChannel, FifoOrder) {
  EventChannel channel(8);
  for (std::uint32_t i = 0; i < 5; ++i) {
    channel.push(makePacket(0, i));
  }
  channel.close();
  for (std::uint32_t i = 0; i < 5; ++i) {
    const auto packet = channel.pop();
    ASSERT_TRUE(packet.has_value());
    EXPECT_EQ(packet->pulseIndex, i);
  }
  EXPECT_FALSE(channel.pop().has_value()); // drained + closed
}

TEST(EventChannel, CloseUnblocksConsumer) {
  EventChannel channel(2);
  std::atomic<bool> sawEnd{false};
  std::thread consumer([&] {
    while (channel.pop().has_value()) {
    }
    sawEnd = true;
  });
  channel.push(makePacket(0, 0));
  channel.close();
  consumer.join();
  EXPECT_TRUE(sawEnd.load());
}

TEST(EventChannel, PushAfterCloseThrows) {
  EventChannel channel(2);
  channel.close();
  EXPECT_THROW(channel.push(makePacket(0, 0)), InvalidArgument);
}

TEST(EventChannel, BackpressureBlocksAndCounts) {
  EventChannel channel(1);
  channel.push(makePacket(0, 0));
  std::atomic<bool> secondPushDone{false};
  std::thread producer([&] {
    channel.push(makePacket(0, 1)); // must block: capacity 1
    secondPushDone = true;
  });
  // Give the producer time to block.
  for (int i = 0; i < 200 && channel.stats().producerBlocked == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_FALSE(secondPushDone.load());
  EXPECT_GE(channel.stats().producerBlocked, 1u);

  EXPECT_TRUE(channel.pop().has_value()); // frees a slot
  producer.join();
  EXPECT_TRUE(secondPushDone.load());
  channel.close();
}

TEST(EventChannel, StatsTrackDepth) {
  EventChannel channel(4);
  channel.push(makePacket(0, 0));
  channel.push(makePacket(0, 1));
  channel.push(makePacket(0, 2));
  EXPECT_EQ(channel.depth(), 3u);
  EXPECT_EQ(channel.stats().maxDepth, 3u);
  channel.pop();
  EXPECT_EQ(channel.depth(), 2u);
  EXPECT_EQ(channel.stats().pushed, 3u);
  EXPECT_EQ(channel.stats().popped, 1u);
  channel.close();
}

TEST(EventChannel, InvalidCapacityThrows) {
  EXPECT_THROW(EventChannel channel(0), InvalidArgument);
}

TEST(EventChannel, CloseWakesPendingProducers) {
  // Several producers blocked in push() on a full channel must all wake
  // when the channel closes, and must all report the closure instead of
  // silently dropping their packet.
  EventChannel channel(1);
  channel.push(makePacket(0, 0)); // fill the single slot
  std::atomic<int> throws{0};
  std::vector<std::thread> producers;
  for (std::uint32_t i = 0; i < 3; ++i) {
    producers.emplace_back([&channel, &throws, i] {
      try {
        channel.push(makePacket(0, 100 + i));
      } catch (const InvalidArgument&) {
        ++throws;
      }
    });
  }
  // Wait until all three are actually parked in push().
  for (int i = 0; i < 2000 && channel.stats().producerBlocked < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(channel.stats().producerBlocked, 3u);
  channel.close();
  for (std::thread& producer : producers) {
    producer.join();
  }
  EXPECT_EQ(throws.load(), 3);
  // The packet that made it in before the close is still drainable.
  const auto packet = channel.pop();
  ASSERT_TRUE(packet.has_value());
  EXPECT_EQ(packet->pulseIndex, 0u);
  EXPECT_FALSE(channel.pop().has_value());
}

// ---------------------------------------------------------------------------
// DaqSimulator

class StreamFixture : public ::testing::Test {
protected:
  StreamFixture()
      : setup_(WorkloadSpec::benzilCorelli(0.0005)),
        generator_(setup_.makeGenerator()) {}
  ExperimentSetup setup_;
  EventGenerator generator_;
};

TEST_F(StreamFixture, DaqEmitsEveryEventExactlyOnce) {
  // Capacity exceeds the total packet count: the producer can finish
  // before the consumer starts (no concurrent pop below).
  EventChannel channel(100000);
  DaqSimulator daq(generator_);
  const DaqStats stats = daq.streamRuns(channel, 0, 2);
  channel.close();

  EXPECT_EQ(stats.runsEmitted, 2u);
  EXPECT_EQ(stats.eventsEmitted, 2 * setup_.spec().eventsPerFile);

  std::uint64_t received = 0;
  std::uint32_t endOfRunSeen = 0;
  while (const auto packet = channel.pop()) {
    received += packet->events.size();
    if (packet->endOfRun) {
      ++endOfRunSeen;
    }
  }
  EXPECT_EQ(received, stats.eventsEmitted);
  EXPECT_EQ(endOfRunSeen, 2u);
}

TEST_F(StreamFixture, DaqPacketsMatchRawGeneration) {
  EventChannel channel(100000);
  DaqSimulator(generator_).streamRuns(channel, 3, 4);
  channel.close();

  RawEventList reassembled;
  while (const auto packet = channel.pop()) {
    EXPECT_EQ(packet->runIndex, 3u);
    for (std::size_t i = 0; i < packet->events.size(); ++i) {
      reassembled.append(packet->events.detectorId(i), packet->events.tof(i),
                         packet->events.pulseIndex(i),
                         packet->events.weight(i));
    }
  }
  EXPECT_TRUE(reassembled == generator_.generateRaw(3));
}

// ---------------------------------------------------------------------------
// Live reduction end-to-end

TEST_F(StreamFixture, LiveReductionMatchesBatchPipeline) {
  // Producer thread streams the whole campaign; consumer reduces runs
  // as they complete.  The final state must equal the batch raw-mode
  // pipeline.
  EventChannel channel(64); // modest capacity: real backpressure
  DaqSimulator daq(generator_);
  LiveReducer reducer(setup_, Executor(Backend::Serial));

  std::thread producer([&] { daq.streamAllAndClose(channel); });
  const LiveStats stats = reducer.consume(channel);
  producer.join();

  EXPECT_EQ(stats.runsReduced, setup_.spec().nFiles);
  EXPECT_EQ(stats.eventsConsumed,
            setup_.spec().nFiles * setup_.spec().eventsPerFile);

  core::ReductionConfig config;
  config.backend = Backend::Serial;
  config.loadMode = core::LoadMode::RawTof;
  const core::ReductionResult batch =
      core::ReductionPipeline(setup_, config).run();

  const LiveSnapshot live = reducer.snapshot();
  double worst = 0.0;
  for (std::size_t i = 0; i < live.signal.size(); ++i) {
    worst = std::max(worst, std::fabs(live.signal.data()[i] -
                                      batch.signal.data()[i]));
  }
  EXPECT_LT(worst, 1e-9);
  EXPECT_NEAR(live.normalization.totalSignal(),
              batch.normalization.totalSignal(), 1e-9);
}

TEST_F(StreamFixture, SnapshotCoverageGrowsMonotonically) {
  EventChannel channel(64);
  DaqSimulator daq(generator_);
  LiveReducer reducer(setup_, Executor(Backend::Serial));

  std::thread consumer([&] { reducer.consume(channel); });

  double previousCoverage = -1.0;
  for (std::size_t run = 0; run < 4; ++run) {
    daq.streamRuns(channel, run, run + 1);
    // Wait until the reducer has folded this run in.
    while (reducer.snapshot().stats.runsReduced != run + 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const LiveSnapshot snapshot = reducer.snapshot();
    EXPECT_GE(snapshot.coverage, previousCoverage);
    previousCoverage = snapshot.coverage;
  }
  channel.close();
  consumer.join();
  EXPECT_GT(previousCoverage, 0.0);
}

TEST_F(StreamFixture, RequestStopEndsConsumeEarly) {
  // Capacity exceeds one run's packet count so the producer can finish
  // before the consumer starts.
  EventChannel channel(100000);
  DaqSimulator daq(generator_);
  LiveReducer reducer(setup_, Executor(Backend::Serial));

  // Fold exactly one run, then stop; the remaining runs stay unread.
  daq.streamRuns(channel, 0, 1);
  std::thread consumer([&] { reducer.consume(channel); });
  while (reducer.snapshot().stats.runsReduced < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  reducer.requestStop();
  channel.close(); // wake the consumer if it is parked in pop()
  consumer.join();

  const LiveSnapshot snapshot = reducer.snapshot();
  EXPECT_GE(snapshot.stats.runsReduced, 1u);
  EXPECT_GT(snapshot.signal.totalSignal(), 0.0); // folded work is kept
}

TEST_F(StreamFixture, SnapshotIsSafeDuringConcurrentConsume) {
  // TSan-targeted stress: hammer snapshot() from two reader threads
  // while consume() folds runs on a third.  The snapshots themselves
  // must always be internally consistent (monotone run counts).
  EventChannel channel(16);
  DaqSimulator daq(generator_);
  LiveReducer reducer(setup_, Executor(Backend::Serial));

  std::thread consumer([&] { reducer.consume(channel); });
  std::atomic<bool> stop{false};
  std::atomic<bool> monotone{true};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      std::size_t lastRuns = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const LiveSnapshot snapshot = reducer.snapshot();
        if (snapshot.stats.runsReduced < lastRuns) {
          monotone = false;
        }
        lastRuns = snapshot.stats.runsReduced;
      }
    });
  }

  daq.streamAllAndClose(channel);
  consumer.join();
  stop = true;
  for (std::thread& reader : readers) {
    reader.join();
  }
  EXPECT_TRUE(monotone.load());
  const LiveSnapshot final = reducer.snapshot();
  EXPECT_EQ(final.stats.runsReduced, setup_.spec().nFiles);
  EXPECT_EQ(final.stats.eventsConsumed,
            setup_.spec().nFiles * setup_.spec().eventsPerFile);
}

// ---------------------------------------------------------------------------
// Byte bound (the second capacity dimension)

TEST(EventChannelBytes, ByteBoundBlocksProducerUntilPop) {
  // Generous packet-count capacity; the byte budget is the binding
  // constraint: two 5-event packets fit, a third must wait for a pop.
  const std::size_t packetBytes = packetPayloadBytes(makePacket(0, 0, 5));
  ASSERT_GT(packetBytes, 0u);
  EventChannel channel(64, 2 * packetBytes);

  channel.push(makePacket(0, 0, 5));
  channel.push(makePacket(0, 1, 5));
  EXPECT_EQ(channel.depthBytes(), 2 * packetBytes);

  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    channel.push(makePacket(0, 2, 5));
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load()); // count bound is slack; bytes block it

  ASSERT_TRUE(channel.pop().has_value()); // frees one packet's bytes
  producer.join();
  EXPECT_TRUE(pushed.load());

  const ChannelStats stats = channel.stats();
  EXPECT_GE(stats.producerBlockedOnBytes, 1u);
  EXPECT_GE(stats.producerBlocked, 1u);
  EXPECT_EQ(stats.maxBytes, 2 * packetBytes);
  channel.close();
}

TEST(EventChannelBytes, OversizedPacketAdmittedWhenQueueEmpty) {
  // A packet bigger than the whole byte budget must not deadlock: the
  // bound degrades to one-packet-at-a-time.
  EventChannel channel(4, 64);
  PulsePacket giant = makePacket(0, 0, 100); // ≫ 64 bytes of payload
  ASSERT_GT(packetPayloadBytes(giant), 64u);
  channel.push(std::move(giant)); // empty queue: admitted

  // While the giant packet is queued, even a tiny packet waits.
  PulsePacket tiny = makePacket(0, 1, 1);
  EXPECT_FALSE(channel.tryPushFor(tiny, std::chrono::milliseconds(10)));
  EXPECT_EQ(tiny.pulseIndex, 1u); // returned untouched

  ASSERT_TRUE(channel.pop().has_value());
  EXPECT_TRUE(channel.tryPushFor(tiny, std::chrono::milliseconds(10)));
  channel.close();
}

TEST(EventChannelBytes, ZeroByteCapacityMeansUnbounded) {
  EventChannel channel(4); // default: no byte bound
  channel.push(makePacket(0, 0, 1000));
  channel.push(makePacket(0, 1, 1000));
  EXPECT_EQ(channel.stats().producerBlockedOnBytes, 0u);
  EXPECT_GT(channel.depthBytes(), 0u);
  channel.close();
}

TEST(EventChannelBytes, PopWakesByteBlockedProducerPromptly) {
  const std::size_t packetBytes = packetPayloadBytes(makePacket(0, 0, 4));
  EventChannel channel(64, packetBytes); // budget: exactly one packet
  channel.push(makePacket(0, 0, 4));

  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    channel.push(makePacket(0, 1, 4));
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const auto popStart = std::chrono::steady_clock::now();
  ASSERT_TRUE(channel.pop().has_value());
  producer.join();
  // The wake must come from pop's notify, not a timeout sweep.
  EXPECT_LT(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          popStart)
                .count(),
            1.0);
  EXPECT_TRUE(pushed.load());
  channel.close();
}

TEST(EventChannelBytes, TryPushForTimesOutAndLeavesPacketIntact) {
  EventChannel channel(1);
  channel.push(makePacket(0, 0, 2));

  PulsePacket packet = makePacket(1, 7, 3);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(channel.tryPushFor(packet, std::chrono::milliseconds(30)));
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_GE(waited, 0.025);
  // The packet is handed back untouched for a retry.
  EXPECT_EQ(packet.runIndex, 1u);
  EXPECT_EQ(packet.pulseIndex, 7u);
  EXPECT_EQ(packet.events.size(), 3u);

  ASSERT_TRUE(channel.pop().has_value());
  EXPECT_TRUE(channel.tryPushFor(packet, std::chrono::milliseconds(30)));
  channel.close();
}

TEST(EventChannelBytes, TryPushForThrowsOnClosedChannel) {
  EventChannel channel(1);
  channel.close();
  PulsePacket packet = makePacket(0, 0, 1);
  EXPECT_THROW(channel.tryPushFor(packet, std::chrono::milliseconds(1)),
               InvalidArgument);
}

// ---------------------------------------------------------------------------
// DAQ stop token

TEST_F(StreamFixture, DaqRequestStopUnblocksBackpressuredProducer) {
  // Capacity 1 and no consumer: the simulator wedges on backpressure
  // almost immediately.  requestStop() must get it back within the
  // bounded-wait slice, with the stream marked cut-short.
  EventChannel channel(1);
  DaqSimulator daq(generator_);

  DaqStats stats;
  std::atomic<bool> returned{false};
  std::thread producer([&] {
    stats = daq.streamRuns(channel, 0, setup_.spec().nFiles);
    returned = true;
  });

  // Wait until it is genuinely blocked on the full channel.
  while (channel.depth() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(returned.load());

  const auto stopStart = std::chrono::steady_clock::now();
  daq.requestStop();
  producer.join();
  const double stopLatency =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    stopStart)
          .count();

  EXPECT_TRUE(stats.stopped);
  EXPECT_LT(stopLatency, 1.0); // ~10 ms slices, with head-room for CI
  EXPECT_LT(stats.runsEmitted, static_cast<std::uint64_t>(
                                   setup_.spec().nFiles));
  channel.close();

  // The token resets on the next call: a fresh stream runs to the end.
  EventChannel freshChannel(1024);
  const DaqStats fresh = daq.streamRuns(freshChannel, 0, 1);
  EXPECT_FALSE(fresh.stopped);
  EXPECT_EQ(fresh.runsEmitted, 1u);
  freshChannel.close();
}

// ---------------------------------------------------------------------------
// abortRun handling in the reducer

TEST_F(StreamFixture, AbortRunDiscardsPartialBufferAndCounts) {
  EventChannel channel(64);
  LiveReducer reducer(setup_, Executor(Backend::Serial));

  std::thread consumer([&] { reducer.consume(channel); });

  // Run 0 completes; run 1 is cut down mid-stream by an abort packet;
  // run 2 completes.  Only runs 0 and 2 may reach the accumulated
  // state.
  DaqSimulator daq(generator_);
  daq.streamRuns(channel, 0, 1);
  channel.push(makePacket(1, 0, 50));
  channel.push(makePacket(1, 1, 50));
  PulsePacket abort;
  abort.abortRun = true;
  channel.push(std::move(abort));
  daq.streamRuns(channel, 2, 3);
  channel.close();
  consumer.join();

  const LiveSnapshot snapshot = reducer.snapshot();
  EXPECT_EQ(snapshot.stats.runsReduced, 2u);
  EXPECT_EQ(snapshot.stats.runsDropped, 1u);

  // The aborted run left no trace: the state equals reducing runs 0
  // and 2 alone.
  EventChannel cleanChannel(64);
  LiveReducer cleanReducer(setup_, Executor(Backend::Serial));
  std::thread cleanConsumer([&] { cleanReducer.consume(cleanChannel); });
  DaqSimulator cleanDaq(generator_);
  cleanDaq.streamRuns(cleanChannel, 0, 1);
  cleanDaq.streamRuns(cleanChannel, 2, 3);
  cleanChannel.close();
  cleanConsumer.join();

  const LiveSnapshot clean = cleanReducer.snapshot();
  double worst = 0.0;
  for (std::size_t i = 0; i < snapshot.signal.size(); ++i) {
    worst = std::max(worst, std::fabs(snapshot.signal.data()[i] -
                                      clean.signal.data()[i]));
  }
  EXPECT_EQ(worst, 0.0); // same runs, same order: identical bits
}

TEST_F(StreamFixture, AbortRunWithNoPendingRunIsHarmless) {
  EventChannel channel(8);
  LiveReducer reducer(setup_, Executor(Backend::Serial));
  PulsePacket abort;
  abort.abortRun = true;
  channel.push(std::move(abort)); // nothing buffered yet
  channel.close();
  const LiveStats stats = reducer.consume(channel);
  EXPECT_EQ(stats.runsReduced, 0u);
  EXPECT_EQ(stats.runsDropped, 0u); // nothing was actually discarded
}

} // namespace
} // namespace vates::stream
