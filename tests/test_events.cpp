// Tests for event tables, workload specs, the experiment setup, and the
// synthetic event generator.

#include "vates/events/event_table.hpp"
#include "vates/events/experiment_setup.hpp"
#include "vates/events/generator.hpp"
#include "vates/events/workload.hpp"
#include "vates/support/error.hpp"
#include "vates/units/units.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace vates {
namespace {

// ---------------------------------------------------------------------------
// EventTable

TEST(EventTable, AppendAndAccess) {
  EventTable table;
  table.append(2.0, 2.0, 3.0, 17.0, 3.0, V3{1.0, -2.0, 0.5});
  table.append(1.5, 1.5, 3.0, 18.0, 3.0, V3{0.0, 0.25, -0.75});
  ASSERT_EQ(table.size(), 2u);
  EXPECT_DOUBLE_EQ(table.signal(0), 2.0);
  EXPECT_EQ(table.detectorId(1), 18u);
  EXPECT_EQ(table.runIndex(0), 3u);
  EXPECT_EQ(table.qSample(0), (V3{1.0, -2.0, 0.5}));
  EXPECT_DOUBLE_EQ(table.totalSignal(), 3.5);
}

TEST(EventTable, RowMajorRoundTripIsExact) {
  EventTable table;
  for (int i = 0; i < 100; ++i) {
    table.append(i * 0.5, i * 0.25, 1.0, i, 1.0,
                 V3{i * 0.1, -i * 0.2, i * 0.3});
  }
  std::vector<double> rows(table.size() * EventTable::kColumns);
  table.toRowMajor(rows);
  const EventTable rebuilt = EventTable::fromRowMajor(rows);
  EXPECT_TRUE(rebuilt == table);
}

TEST(EventTable, RowMajorLayoutIsRowPerEvent) {
  EventTable table;
  table.append(9.0, 8.0, 7.0, 6.0, 5.0, V3{4.0, 3.0, 2.0});
  std::vector<double> rows(EventTable::kColumns);
  table.toRowMajor(rows);
  const std::vector<double> expected{9, 8, 7, 6, 5, 4, 3, 2};
  EXPECT_EQ(rows, expected);
}

TEST(EventTable, FromRowMajorRejectsRaggedData) {
  std::vector<double> bad(13, 0.0); // not a multiple of 8
  EXPECT_THROW(EventTable::fromRowMajor(bad), InvalidArgument);
}

TEST(EventTable, ResizeReserveClear) {
  EventTable table(10);
  EXPECT_EQ(table.size(), 10u);
  table.clear();
  EXPECT_TRUE(table.empty());
  table.reserve(100);
  EXPECT_TRUE(table.empty());
}

// ---------------------------------------------------------------------------
// WorkloadSpec

TEST(WorkloadSpec, BenzilMatchesTableII) {
  const WorkloadSpec spec = WorkloadSpec::benzilCorelli(1.0);
  EXPECT_EQ(spec.nFiles, 36u);
  EXPECT_EQ(spec.pointGroup, "-3"); // 6 symmetry transformations
  EXPECT_EQ(spec.nDetectors, 372000u);
  EXPECT_NEAR(static_cast<double>(spec.totalEvents()), 40e6, 1e6);
  EXPECT_EQ(spec.bins[0], 603u);
  EXPECT_EQ(spec.bins[1], 603u);
  EXPECT_EQ(spec.bins[2], 1u);
  EXPECT_EQ(spec.instrument, "corelli");
}

TEST(WorkloadSpec, BixbyiteMatchesTableII) {
  const WorkloadSpec spec = WorkloadSpec::bixbyiteTopaz(1.0);
  EXPECT_EQ(spec.nFiles, 22u);
  EXPECT_EQ(spec.pointGroup, "m-3"); // 24 symmetry transformations
  EXPECT_EQ(spec.nDetectors, 1600000u);
  EXPECT_NEAR(static_cast<double>(spec.totalEvents()), 280e6, 1e7);
  EXPECT_EQ(spec.bins[0], 601u);
}

TEST(WorkloadSpec, ScaleShrinksCountsNotBins) {
  const WorkloadSpec full = WorkloadSpec::benzilCorelli(1.0);
  const WorkloadSpec tiny = WorkloadSpec::benzilCorelli(0.001);
  EXPECT_EQ(tiny.nFiles, full.nFiles);
  EXPECT_EQ(tiny.bins, full.bins);
  EXPECT_NEAR(static_cast<double>(tiny.nDetectors),
              0.001 * static_cast<double>(full.nDetectors), 1.0);
  EXPECT_LT(tiny.eventsPerFile, full.eventsPerFile / 500);
}

TEST(WorkloadSpec, ScaleClampsToMinimums) {
  const WorkloadSpec spec = WorkloadSpec::benzilCorelli(1e-9);
  EXPECT_GE(spec.nDetectors, 64u);
  EXPECT_GE(spec.eventsPerFile, 256u);
  EXPECT_THROW(WorkloadSpec::benzilCorelli(0.0), InvalidArgument);
}

TEST(WorkloadSpec, GoniometerStepsPerRun) {
  const WorkloadSpec spec = WorkloadSpec::benzilCorelli(0.01);
  const M33 r0 = spec.goniometerForRun(0).R();
  const M33 r1 = spec.goniometerForRun(1).R();
  EXPECT_GT(maxAbsDiff(r0, r1), 1e-3); // runs rotate the sample
  EXPECT_TRUE(isRotation(r1, 1e-9));
}

TEST(WorkloadSpec, CharacteristicsTableMentionsKeyNumbers) {
  const std::string table =
      WorkloadSpec::bixbyiteTopaz(1.0).characteristicsTable();
  EXPECT_NE(table.find("22"), std::string::npos);
  EXPECT_NE(table.find("m-3"), std::string::npos);
  EXPECT_NE(table.find("1,600,000"), std::string::npos);
  EXPECT_NE(table.find("(601,601,1)"), std::string::npos);
}

// ---------------------------------------------------------------------------
// ExperimentSetup

TEST(ExperimentSetup, BuildsConsistentObjects) {
  const ExperimentSetup setup(WorkloadSpec::benzilCorelli(0.001));
  EXPECT_EQ(setup.instrument().nDetectors(), setup.spec().nDetectors);
  EXPECT_EQ(setup.pointGroup().order(), 6u);
  EXPECT_EQ(setup.symmetryMatrices().size(), 6u);
  const Histogram3D histogram = setup.makeHistogram();
  EXPECT_EQ(histogram.nx(), 603u);
  EXPECT_EQ(histogram.nz(), 1u);
}

TEST(ExperimentSetup, FluxCoversWavelengthBand) {
  const ExperimentSetup setup(WorkloadSpec::benzilCorelli(0.001));
  const auto band = units::momentumBandFromWavelengthBand(
      setup.spec().lambdaMin, setup.spec().lambdaMax);
  EXPECT_DOUBLE_EQ(setup.flux().kMin(), band.kMin);
  EXPECT_DOUBLE_EQ(setup.flux().kMax(), band.kMax);
}

TEST(ExperimentSetup, UnknownInstrumentThrows) {
  WorkloadSpec spec = WorkloadSpec::benzilCorelli(0.001);
  spec.instrument = "hyspec";
  EXPECT_THROW(ExperimentSetup{spec}, InvalidArgument);
}

// ---------------------------------------------------------------------------
// EventGenerator

class GeneratorTest : public ::testing::Test {
protected:
  GeneratorTest() : setup_(WorkloadSpec::benzilCorelli(0.002)) {}
  ExperimentSetup setup_;
};

TEST_F(GeneratorTest, DeterministicPerFile) {
  const EventGenerator generator = setup_.makeGenerator();
  const EventTable a = generator.generate(3);
  const EventTable b = generator.generate(3);
  EXPECT_TRUE(a == b);
}

TEST_F(GeneratorTest, FilesDiffer) {
  const EventGenerator generator = setup_.makeGenerator();
  const EventTable a = generator.generate(0);
  const EventTable b = generator.generate(1);
  EXPECT_FALSE(a == b);
  EXPECT_EQ(a.size(), b.size());
}

TEST_F(GeneratorTest, OrderIndependentAcrossFiles) {
  // Generating file 5 first or last gives the same table (independent
  // per-file streams) — required for MPI-style file distribution.
  const EventGenerator generator = setup_.makeGenerator();
  const EventTable before = generator.generate(5);
  generator.generate(0);
  generator.generate(7);
  const EventTable after = generator.generate(5);
  EXPECT_TRUE(before == after);
}

TEST_F(GeneratorTest, EventCountAndColumnsSane) {
  const EventGenerator generator = setup_.makeGenerator();
  const EventTable table = generator.generate(0);
  EXPECT_EQ(table.size(), setup_.spec().eventsPerFile);
  for (std::size_t i = 0; i < table.size(); i += 37) {
    EXPECT_GT(table.signal(i), 0.0);
    EXPECT_EQ(table.runIndex(i), 0u);
    EXPECT_LT(table.detectorId(i), setup_.spec().nDetectors);
  }
}

TEST_F(GeneratorTest, QSampleMagnitudesWithinKinematicLimit) {
  // |Q| = k·|beam - detDir| <= 2·kMax.
  const EventGenerator generator = setup_.makeGenerator();
  const RunInfo run = generator.runInfo(0);
  const EventTable table = generator.generate(0);
  for (std::size_t i = 0; i < table.size(); i += 11) {
    EXPECT_LE(table.qSample(i).norm(), 2.0 * run.kMax + 1e-9);
  }
}

TEST_F(GeneratorTest, QSampleConsistentWithDetectorGeometry) {
  // Rebuild each event's Q from its detector id and confirm the stored
  // Q_sample lies on that detector's trajectory (same direction).
  const EventGenerator generator = setup_.makeGenerator();
  const RunInfo run = generator.runInfo(2);
  const EventTable table = generator.generate(2);
  const M33 rInverse = run.goniometerR.transposed();
  for (std::size_t i = 0; i < table.size(); i += 101) {
    const V3 expectedDirection =
        (rInverse * setup_.instrument().qLabDirection(table.detectorId(i)))
            .normalized();
    const V3 actualDirection = table.qSample(i).normalized();
    EXPECT_LT(maxAbsDiff(expectedDirection, actualDirection), 1e-9);
  }
}

TEST_F(GeneratorTest, IntensityPeaksNearBraggCondition) {
  const EventGenerator generator = setup_.makeGenerator();
  const double atPeak = generator.intensity({2, 1, 0});
  const double offPeak = generator.intensity({2.5, 1.5, 0.5});
  EXPECT_GT(atPeak, 10.0 * offPeak);
  EXPECT_GE(offPeak, setup_.spec().diffuseBackground * 0.99);
}

TEST(EventGeneratorAbsences, BodyCenteringKillsExtinctPeaks) {
  // Bixbyite (Ia-3): h+k+l odd reflections must carry only background.
  const ExperimentSetup setup(WorkloadSpec::bixbyiteTopaz(0.0001));
  const EventGenerator generator = setup.makeGenerator();
  // (1,0,0) extinct, (1,1,0) allowed.
  EXPECT_NEAR(generator.intensity({1, 0, 0}),
              setup.spec().diffuseBackground, 1e-9);
  EXPECT_GT(generator.intensity({1, 1, 0}),
            5.0 * setup.spec().diffuseBackground);
  EXPECT_NEAR(generator.intensity({2, 1, 0}),
              setup.spec().diffuseBackground, 1e-9);
  EXPECT_GT(generator.intensity({2, 2, 0}),
            5.0 * setup.spec().diffuseBackground);
}

TEST_F(GeneratorTest, OriginHasNoBraggPeak) {
  const EventGenerator generator = setup_.makeGenerator();
  EXPECT_NEAR(generator.intensity({0.0, 0.0, 0.0}),
              setup_.spec().diffuseBackground, 1e-9);
}

TEST_F(GeneratorTest, RunInfoBandAndCharge) {
  const EventGenerator generator = setup_.makeGenerator();
  const RunInfo run = generator.runInfo(4);
  EXPECT_EQ(run.runIndex, 4u);
  EXPECT_GT(run.kMin, 0.0);
  EXPECT_LT(run.kMin, run.kMax);
  EXPECT_DOUBLE_EQ(run.protonCharge, setup_.spec().protonCharge);
  EXPECT_THROW(generator.runInfo(setup_.spec().nFiles), InvalidArgument);
}

TEST(EventGenerator, MismatchedInstrumentThrows) {
  const WorkloadSpec spec = WorkloadSpec::benzilCorelli(0.002);
  const Instrument wrong = Instrument::corelliLike(10);
  const OrientedLattice lattice(spec.lattice(), spec.uVector, spec.vVector);
  const FluxSpectrum flux = FluxSpectrum::flat(2.0, 9.0, 16, 1.0);
  EXPECT_THROW(EventGenerator(spec, wrong, lattice, flux), InvalidArgument);
}

} // namespace
} // namespace vates
