// Parity and determinism tests for the streaming trajectory walk
// (trajectory_walk.hpp) against the legacy generate → sort → locate
// paths.  The walk is engineered for *exact* agreement: every crossing
// momentum is computed with the same expression tryPlane uses, so the
// segment sequences are compared bitwise, not within a tolerance.

#include "vates/events/experiment_setup.hpp"
#include "vates/geometry/detector_mask.hpp"
#include "vates/histogram/histogram3d.hpp"
#include "vates/kernels/comb_sort.hpp"
#include "vates/kernels/intersections.hpp"
#include "vates/kernels/mdnorm.hpp"
#include "vates/kernels/trajectory_walk.hpp"
#include "vates/kernels/transforms.hpp"
#include "vates/support/error.hpp"
#include "vates/support/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <set>
#include <sstream>
#include <vector>

namespace vates {
namespace {

struct Segment {
  double k1 = 0.0;
  double k2 = 0.0;
  std::size_t bin = 0;
};

/// The legacy pipeline, reduced to its observable output: generate all
/// crossings, sort, walk adjacent pairs, keep segments whose midpoint
/// locates to a real bin.  `structMidpoints` selects the Legacy
/// (stored-position average) vs SortedKeys (ray re-evaluation) midpoint
/// form — both must agree with the walk.
std::vector<Segment> referenceSegments(const GridView& grid, const V3& t,
                                       double kMin, double kMax,
                                       PlaneSearch search,
                                       bool structMidpoints) {
  std::vector<Intersection> buffer(maxIntersections(grid));
  const std::size_t count =
      calculateIntersections(grid, t, kMin, kMax, search, buffer.data());
  combSortStructs(buffer.data(), count,
                  [](const Intersection& p) { return p.k; });
  std::vector<Segment> segments;
  for (std::size_t i = 0; i + 1 < count; ++i) {
    const Intersection& a = buffer[i];
    const Intersection& b = buffer[i + 1];
    if (b.k <= a.k) {
      continue;
    }
    const V3 mid = structMidpoints
                       ? V3{0.5 * (a.x + b.x), 0.5 * (a.y + b.y),
                            0.5 * (a.z + b.z)}
                       : t * (0.5 * (a.k + b.k));
    const std::size_t bin = grid.locate(mid);
    if (bin < grid.size()) {
      segments.push_back({a.k, b.k, bin});
    }
  }
  return segments;
}

std::vector<Segment> walkSegments(const GridView& grid, const V3& t,
                                  double kMin, double kMax) {
  std::vector<Segment> segments;
  traverseTrajectory(grid, t, kMin, kMax,
                     [&](double k1, double k2, std::size_t bin) {
                       segments.push_back({k1, k2, bin});
                     });
  return segments;
}

std::string describe(const V3& t, double kMin, double kMax) {
  std::ostringstream out;
  out << "t=(" << t.x << ", " << t.y << ", " << t.z << ") band=[" << kMin
      << ", " << kMax << "]";
  return out.str();
}

void expectIdenticalSegments(const std::vector<Segment>& reference,
                             const std::vector<Segment>& walked,
                             const std::string& context) {
  ASSERT_EQ(reference.size(), walked.size()) << context;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    // Bitwise: the walk evaluates the same plane-edge expressions.
    EXPECT_EQ(reference[i].k1, walked[i].k1) << context << " segment " << i;
    EXPECT_EQ(reference[i].k2, walked[i].k2) << context << " segment " << i;
    EXPECT_EQ(reference[i].bin, walked[i].bin) << context << " segment " << i;
  }
}

void expectParity(const GridView& grid, const V3& t, double kMin,
                  double kMax) {
  const std::string context = describe(t, kMin, kMax);
  const std::vector<Segment> walked = walkSegments(grid, t, kMin, kMax);
  for (const PlaneSearch search : {PlaneSearch::Linear, PlaneSearch::Roi}) {
    for (const bool structMidpoints : {false, true}) {
      expectIdenticalSegments(
          referenceSegments(grid, t, kMin, kMax, search, structMidpoints),
          walked, context);
    }
  }
}

Histogram3D makeGrid(std::size_t nx, std::size_t ny, std::size_t nz,
                     double halfX = 5.0, double halfY = 5.0,
                     double halfZ = 0.5) {
  return Histogram3D(BinAxis("x", -halfX, halfX, nx),
                     BinAxis("y", -halfY, halfY, ny),
                     BinAxis("z", -halfZ, halfZ, nz));
}

// --------------------------------------------------------------------------
// Randomized property sweep

class TraversalParity : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(RandomSeeds, TraversalParity,
                         ::testing::Range(0, 16));

TEST_P(TraversalParity, RandomGridsTrajectoriesAndBands) {
  Xoshiro256 rng(4242 + static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 120; ++trial) {
    const auto nx = static_cast<std::size_t>(rng.uniform(1.0, 9.0));
    const auto ny = static_cast<std::size_t>(rng.uniform(1.0, 9.0));
    const auto nz = static_cast<std::size_t>(rng.uniform(1.0, 4.0));
    Histogram3D histogram =
        makeGrid(nx, ny, nz, rng.uniform(0.5, 6.0), rng.uniform(0.5, 6.0),
                 rng.uniform(0.1, 2.0));
    const GridView grid = histogram.gridView();

    // Components are zeroed with decent probability so rays parallel to
    // one or two axes (and the fully degenerate all-zero ray) are
    // exercised constantly, not just in the dedicated tests below.
    V3 t;
    for (std::size_t axis = 0; axis < 3; ++axis) {
      t[axis] = rng.uniform(0.0, 1.0) < 0.25
                    ? 0.0
                    : rng.uniform(-1.5, 1.5);
    }
    double kMin = rng.uniform(0.05, 3.0);
    double kMax = kMin + rng.uniform(0.01, 8.0);

    // Sometimes pin a band endpoint bitwise onto a plane crossing.
    if (rng.uniform(0.0, 1.0) < 0.2) {
      for (std::size_t axis = 0; axis < 3; ++axis) {
        if (std::fabs(t[axis]) < kTrajectoryParallelTolerance) {
          continue;
        }
        const auto plane =
            static_cast<std::size_t>(rng.uniform(0.0, 1.0) * 0.999 *
                                     static_cast<double>(grid.n[axis] + 1));
        const double k = grid.planeEdge(axis, plane) * (1.0 / t[axis]);
        if (k > 0.0 && std::isfinite(k)) {
          if (rng.uniform(0.0, 1.0) < 0.5) {
            kMin = k;
            kMax = std::max(kMax, kMin + 0.5);
          } else {
            kMax = std::max(k, kMin + 1e-6);
          }
        }
        break;
      }
    }

    expectParity(grid, t, kMin, kMax);
  }
}

// --------------------------------------------------------------------------
// Engineered degenerate cases

TEST(TrajectoryWalk, AxisParallelRays) {
  Histogram3D histogram = makeGrid(10, 10, 1);
  const GridView grid = histogram.gridView();
  // Parallel to y and z: only x planes cross.
  expectParity(grid, V3{0.5, 0.0, 0.0}, 1.0, 9.0);
  // Parallel to z only.
  expectParity(grid, V3{0.4, -0.3, 0.0}, 1.0, 9.0);
  // Parallel to all three axes: the "ray" never leaves the origin, so
  // both paths produce one whole-band segment binned at the origin.
  expectParity(grid, V3{0.0, 0.0, 0.0}, 1.0, 9.0);
  const std::vector<Segment> pinned =
      walkSegments(grid, V3{0.0, 0.0, 0.0}, 1.0, 9.0);
  ASSERT_EQ(pinned.size(), 1u);
  EXPECT_EQ(pinned.front().bin, grid.locate(V3{0.0, 0.0, 0.0}));
  // Parallel component exactly on the lower boundary (inside, [min,max)).
  Histogram3D shifted = Histogram3D(BinAxis("x", 0.0, 4.0, 4),
                                    BinAxis("y", 0.0, 4.0, 4),
                                    BinAxis("z", -0.5, 0.5, 1));
  expectParity(shifted.gridView(), V3{1.0, 0.0, 0.0}, 0.5, 3.5);
}

TEST(TrajectoryWalk, CornerDiagonalStepsAllAxesAtOnce) {
  // Unit-pitch grid from the origin: t = (1,1,1) pierces a grid corner
  // at every integer momentum — a three-way tie each step.
  Histogram3D histogram = Histogram3D(BinAxis("x", 0.0, 4.0, 4),
                                      BinAxis("y", 0.0, 4.0, 4),
                                      BinAxis("z", 0.0, 4.0, 4));
  const GridView grid = histogram.gridView();
  const V3 t{1.0, 1.0, 1.0};
  expectParity(grid, t, 0.5, 3.5);

  const std::vector<Segment> segments = walkSegments(grid, t, 0.5, 3.5);
  ASSERT_EQ(segments.size(), 4u);
  const std::size_t stride = (4 * 4) + 4 + 1; // +1 on every axis per step
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(segments[i].bin, i * stride);
  }
  EXPECT_EQ(segments.front().k1, 0.5);
  EXPECT_EQ(segments.back().k2, 3.5);
}

TEST(TrajectoryWalk, TwoAxisEdgeGraze) {
  // t = (1,1,0.01): x and y tie at every crossing (two-way corner),
  // while z advances independently.
  Histogram3D histogram = Histogram3D(BinAxis("x", 0.0, 4.0, 4),
                                      BinAxis("y", 0.0, 4.0, 4),
                                      BinAxis("z", -0.5, 0.5, 2));
  expectParity(histogram.gridView(), V3{1.0, 1.0, 0.01}, 0.25, 3.75);
}

TEST(TrajectoryWalk, GrazingBoundaryPlanes) {
  // Ray running exactly in the lower boundary plane y = 0: inside by
  // the [min, max) convention, so segments bin into row 0.
  Histogram3D histogram = Histogram3D(BinAxis("x", 0.0, 4.0, 4),
                                      BinAxis("y", 0.0, 4.0, 4),
                                      BinAxis("z", -0.5, 0.5, 1));
  const GridView grid = histogram.gridView();
  expectParity(grid, V3{1.0, 0.0, 0.0}, 0.5, 3.5);
  const std::vector<Segment> onLower = walkSegments(grid, V3{1.0, 0.0, 0.0},
                                                    0.5, 3.5);
  ASSERT_FALSE(onLower.empty());
  for (const Segment& s : onLower) {
    EXPECT_LT(s.bin, grid.size());
  }

  // Ray running exactly in the *upper* boundary plane y = max: outside
  // by the same convention — no segments from either path.
  Histogram3D upper = Histogram3D(BinAxis("x", 0.0, 4.0, 4),
                                  BinAxis("y", -4.0, 0.0, 4),
                                  BinAxis("z", -0.5, 0.5, 1));
  expectParity(upper.gridView(), V3{1.0, 0.0, 0.0}, 0.5, 3.5);
  EXPECT_TRUE(
      walkSegments(upper.gridView(), V3{1.0, 0.0, 0.0}, 0.5, 3.5).empty());
}

TEST(TrajectoryWalk, BandEntirelyOutsideGrid) {
  Histogram3D histogram = makeGrid(8, 8, 1);
  const GridView grid = histogram.gridView();
  // Band beyond the box on the ray's axis of travel.
  EXPECT_TRUE(walkSegments(grid, V3{1.0, 0.0, 0.0}, 20.0, 30.0).empty());
  expectParity(grid, V3{1.0, 0.0, 0.0}, 20.0, 30.0);
  // Ray that leaves the thin z-slab before the band begins.
  EXPECT_TRUE(walkSegments(grid, V3{0.1, 0.1, 1.0}, 2.0, 9.0).empty());
  expectParity(grid, V3{0.1, 0.1, 1.0}, 2.0, 9.0);
}

TEST(TrajectoryWalk, BandEndpointsExactlyOnPlaneEdges) {
  Histogram3D histogram = Histogram3D(BinAxis("x", 0.0, 8.0, 8),
                                      BinAxis("y", -4.0, 4.0, 8),
                                      BinAxis("z", -0.5, 0.5, 1));
  const GridView grid = histogram.gridView();
  const V3 t{2.0, 0.5, 0.0};
  // planeEdge(0, p) = p on pitch-1 planes; k = p / 2 exactly.
  const double inverseT = 1.0 / t.x;
  const double kOnPlane1 = grid.planeEdge(0, 2) * inverseT; // = 1.0
  const double kOnPlane2 = grid.planeEdge(0, 6) * inverseT; // = 3.0
  expectParity(grid, t, kOnPlane1, kOnPlane2);
  // Band start exactly on the grid's entry face.
  const double kEntry = grid.planeEdge(0, 0) * inverseT; // = 0.0 edge
  expectParity(grid, t, std::max(kEntry, 0.25), 3.5);
  // Negative-direction components with endpoints on planes.
  expectParity(grid, V3{2.0, -0.5, 0.0}, kOnPlane1, kOnPlane2);
}

TEST(TrajectoryWalk, DegeneratePlaneSpacingTerminates) {
  // A pathologically thin axis: all planes nearly coincide.  The walk
  // must terminate and agree with the reference (most segments are
  // zero-width and skipped).
  Histogram3D histogram = Histogram3D(BinAxis("x", 0.0, 4.0, 4),
                                      BinAxis("y", 0.0, 1e-13, 4),
                                      BinAxis("z", -0.5, 0.5, 1));
  expectParity(histogram.gridView(), V3{1.0, 1e-14, 0.0}, 0.5, 3.5);
}

// --------------------------------------------------------------------------
// Corner dedupe (legacy path)

TEST(Intersections, CornerCrossingsEmittedOnce) {
  // The (1,1,1) diagonal through a unit grid crosses three planes at
  // every integer momentum; pre-dedupe the legacy path emitted each
  // crossing three times.
  Histogram3D histogram = Histogram3D(BinAxis("x", 0.0, 4.0, 4),
                                      BinAxis("y", 0.0, 4.0, 4),
                                      BinAxis("z", 0.0, 4.0, 4));
  const GridView grid = histogram.gridView();
  std::vector<Intersection> buffer(maxIntersections(grid));
  for (const PlaneSearch search : {PlaneSearch::Linear, PlaneSearch::Roi}) {
    const std::size_t count = calculateIntersections(
        grid, V3{1.0, 1.0, 1.0}, 0.5, 3.5, search, buffer.data());
    std::multiset<double> momenta;
    for (std::size_t i = 0; i < count; ++i) {
      momenta.insert(buffer[i].k);
    }
    // Crossings at k = 1, 2, 3 plus the two band endpoints — each once.
    EXPECT_EQ(count, 5u);
    for (const double k : momenta) {
      EXPECT_EQ(momenta.count(k), 1u) << "duplicate momentum " << k;
    }
  }
}

TEST(Intersections, EndpointOnPlaneEmittedOnce) {
  Histogram3D histogram = Histogram3D(BinAxis("x", 0.0, 8.0, 8),
                                      BinAxis("y", -4.0, 4.0, 8),
                                      BinAxis("z", -0.5, 0.5, 1));
  const GridView grid = histogram.gridView();
  std::vector<Intersection> buffer(maxIntersections(grid));
  const V3 t{2.0, 0.5, 0.0};
  // kMin = 1.0 sits bitwise on the x-plane at 2.0; the endpoint entry
  // must be suppressed in favor of the plane crossing.
  const std::size_t count = calculateIntersections(
      grid, t, 1.0, 3.0, PlaneSearch::Roi, buffer.data());
  std::size_t atKMin = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (buffer[i].k == 1.0) {
      ++atKMin;
    }
  }
  EXPECT_EQ(atKMin, 1u);
}

// --------------------------------------------------------------------------
// Full-kernel composition: backends × accumulate strategies

TEST(TrajectoryWalk, DdaKernelDeterministicAcrossBackendsAndStrategies) {
  const ExperimentSetup setup(WorkloadSpec::benzilCorelli(0.0005));
  const EventGenerator generator = setup.makeGenerator();
  const RunInfo run = generator.runInfo(0);
  const auto transforms =
      mdNormTransforms(setup.projection(), setup.lattice(),
                       setup.symmetryMatrices(), run.goniometerR);

  MDNormInputs inputs;
  inputs.transforms = transforms;
  inputs.qLabDirections = setup.instrument().qLabDirections();
  inputs.solidAngles = setup.instrument().solidAngles();
  inputs.flux = setup.flux().view();
  inputs.protonCharge = run.protonCharge;
  inputs.kMin = run.kMin;
  inputs.kMax = run.kMax;

  Histogram3D reference = setup.makeHistogram();
  runMDNorm(Executor(Backend::Serial), inputs, reference.gridView(),
            MDNormOptions{PlaneSearch::Roi, Traversal::Legacy});

  for (const Backend backend :
       {Backend::Serial, Backend::OpenMP, Backend::ThreadPool,
        Backend::DeviceSim}) {
    if (!backendAvailable(backend)) {
      continue;
    }
    for (const AccumulateStrategy strategy :
         {AccumulateStrategy::Atomic, AccumulateStrategy::Privatized,
          AccumulateStrategy::Tiled, AccumulateStrategy::Auto}) {
      MDNormOptions options;
      options.traversal = Traversal::Dda;
      options.accumulate.strategy = strategy;
      // Note: no device staging here — DeviceSim executes host-side in
      // this simulator, so host spans are reachable; the pipeline-level
      // tests cover the staged path.
      Histogram3D first = setup.makeHistogram();
      runMDNorm(Executor(backend), inputs, first.gridView(), options);
      Histogram3D second = setup.makeHistogram();
      runMDNorm(Executor(backend), inputs, second.gridView(), options);

      const std::string context =
          std::string("backend=") + backendName(backend) + " strategy=" +
          accumulateStrategyName(strategy);
      double worst = 0.0;
      for (std::size_t i = 0; i < first.size(); ++i) {
        // Bitwise repeatability for a fixed configuration.
        ASSERT_EQ(first.data()[i], second.data()[i]) << context;
        worst = std::max(worst, std::fabs(first.data()[i] -
                                          reference.data()[i]));
      }
      // And 1e-12-level agreement with the Legacy serial result.
      EXPECT_LT(worst, 1e-12) << context;
    }
  }
}

TEST(TrajectoryWalk, DdaLeavesScratchUntouched) {
  // The walk needs no intersection buffer: the calling thread's scratch
  // capacity must not change, whatever grid size the kernel sees.
  const ExperimentSetup setup(WorkloadSpec::benzilCorelli(0.0005));
  const EventGenerator generator = setup.makeGenerator();
  const RunInfo run = generator.runInfo(0);
  const auto transforms =
      mdNormTransforms(setup.projection(), setup.lattice(),
                       setup.symmetryMatrices(), run.goniometerR);

  MDNormInputs inputs;
  inputs.transforms = transforms;
  inputs.qLabDirections = setup.instrument().qLabDirections();
  inputs.solidAngles = setup.instrument().solidAngles();
  inputs.flux = setup.flux().view();
  inputs.protonCharge = run.protonCharge;
  inputs.kMin = run.kMin;
  inputs.kMax = run.kMax;

  MDNormOptions options;
  options.traversal = Traversal::Dda;
  Histogram3D histogram = setup.makeHistogram();
  const std::size_t before = mdnormScratchCapacityForTesting();
  runMDNorm(Executor(Backend::Serial), inputs, histogram.gridView(), options);
  EXPECT_EQ(mdnormScratchCapacityForTesting(), before);
}

// --------------------------------------------------------------------------
// Compacted active-detector launch

TEST(MDNorm, ActiveDetectorListMatchesMaskBranch) {
  const ExperimentSetup setup(WorkloadSpec::benzilCorelli(0.0005));
  const EventGenerator generator = setup.makeGenerator();
  const RunInfo run = generator.runInfo(0);
  const auto transforms =
      mdNormTransforms(setup.projection(), setup.lattice(),
                       setup.symmetryMatrices(), run.goniometerR);

  DetectorMask mask(setup.instrument().nDetectors());
  mask.maskRandomFraction(0.35, 99);
  ASSERT_GT(mask.maskedCount(), 0u);
  std::vector<std::uint32_t> active;
  for (std::size_t d = 0; d < mask.size(); ++d) {
    if (!mask.isMasked(d)) {
      active.push_back(static_cast<std::uint32_t>(d));
    }
  }

  MDNormInputs inputs;
  inputs.transforms = transforms;
  inputs.qLabDirections = setup.instrument().qLabDirections();
  inputs.solidAngles = setup.instrument().solidAngles();
  inputs.flux = setup.flux().view();
  inputs.protonCharge = run.protonCharge;
  inputs.kMin = run.kMin;
  inputs.kMax = run.kMax;

  for (const Traversal traversal :
       {Traversal::Legacy, Traversal::SortedKeys, Traversal::Dda}) {
    MDNormOptions options;
    options.traversal = traversal;

    MDNormInputs branchy = inputs;
    branchy.detectorMask = mask.flags().data();
    Histogram3D viaMask = setup.makeHistogram();
    runMDNorm(Executor(Backend::Serial), branchy, viaMask.gridView(),
              options);

    MDNormInputs compacted = inputs;
    compacted.activeDetectors = active;
    Histogram3D viaList = setup.makeHistogram();
    runMDNorm(Executor(Backend::Serial), compacted, viaList.gridView(),
              options);

    // Same detectors in the same order on one thread → bitwise equal.
    for (std::size_t i = 0; i < viaMask.size(); ++i) {
      ASSERT_EQ(viaMask.data()[i], viaList.data()[i])
          << "traversal=" << traversalName(traversal) << " bin " << i;
    }

    // Parallel launch over the compacted list agrees to tolerance (the
    // accumulation order differs, not the set of deposits).
    Histogram3D viaListThreads = setup.makeHistogram();
    runMDNorm(Executor(Backend::ThreadPool), compacted,
              viaListThreads.gridView(), options);
    double worst = 0.0;
    for (std::size_t i = 0; i < viaMask.size(); ++i) {
      worst = std::max(worst, std::fabs(viaListThreads.data()[i] -
                                        viaMask.data()[i]));
    }
    EXPECT_LT(worst, 1e-12) << "traversal=" << traversalName(traversal);

    // The mask must actually remove signal relative to the full array.
    Histogram3D unmasked = setup.makeHistogram();
    runMDNorm(Executor(Backend::Serial), inputs, unmasked.gridView(),
              options);
    EXPECT_LT(viaMask.totalSignal(), unmasked.totalSignal());
  }
}

TEST(MDNorm, TraversalNamesRoundTrip) {
  for (const Traversal mode :
       {Traversal::Legacy, Traversal::SortedKeys, Traversal::Dda}) {
    EXPECT_EQ(parseTraversal(traversalName(mode)), mode);
  }
  EXPECT_EQ(parseTraversal("  Keys "), Traversal::SortedKeys);
  EXPECT_EQ(parseTraversal("structs"), Traversal::Legacy);
  EXPECT_EQ(parseTraversal("WALK"), Traversal::Dda);
  EXPECT_THROW(parseTraversal("quantum"), InvalidArgument);
}

} // namespace
} // namespace vates
