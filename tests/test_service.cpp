/// \file test_service.cpp
/// The multi-tenant reduction service: wire format, job queue admission
/// and ordering, service lifecycle (submit → status → outcome),
/// shared-grid batching bit-identity against direct pipeline runs and
/// the reference oracle, cancellation, deadlines, live jobs, metrics,
/// and the 64-job mixed-priority stress (run under TSan in CI).

#include "vates/core/pipeline.hpp"
#include "vates/events/experiment_setup.hpp"
#include "vates/service/job.hpp"
#include "vates/service/job_queue.hpp"
#include "vates/service/metrics.hpp"
#include "vates/service/reduction_service.hpp"
#include "vates/service/wire.hpp"
#include "vates/support/error.hpp"
#include "vates/verify/diff.hpp"
#include "vates/verify/fuzz_inputs.hpp"
#include "vates/verify/reference_oracle.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <thread>

namespace vates::service {
namespace {

// ---------------------------------------------------------------------------
// Wire format

TEST(Wire, EscapeRoundTrip) {
  const std::string nasty = "a\"b\\c\nd\te\x01f";
  const std::string line =
      JsonObject().field("key", nasty).field("n", 1.5).str();
  const auto fields = parseFlatObject(line);
  EXPECT_EQ(fields.at("key"), nasty);
  EXPECT_EQ(fields.at("n"), "1.5");
}

TEST(Wire, ParsesScalarTypes) {
  const auto fields = parseFlatObject(
      R"({"s":"text","i":42,"f":-1.25e3,"t":true,"x":false,"z":null})");
  EXPECT_EQ(fields.at("s"), "text");
  EXPECT_EQ(fields.at("i"), "42");
  EXPECT_EQ(fields.at("f"), "-1.25e3");
  EXPECT_EQ(fields.at("t"), "true");
  EXPECT_EQ(fields.at("x"), "false");
  EXPECT_EQ(fields.at("z"), "");
}

TEST(Wire, UnicodeEscapes) {
  const auto fields = parseFlatObject(R"({"u":"éA"})");
  EXPECT_EQ(fields.at("u"), "\xc3\xa9"
                            "A");
}

TEST(Wire, RejectsMalformedInput) {
  EXPECT_THROW(parseFlatObject("not json"), InvalidArgument);
  EXPECT_THROW(parseFlatObject(R"({"a":1)"), InvalidArgument);
  EXPECT_THROW(parseFlatObject(R"({"a":{"nested":1}})"), InvalidArgument);
  EXPECT_THROW(parseFlatObject(R"({"a":[1,2]})"), InvalidArgument);
  EXPECT_THROW(parseFlatObject(R"({"a":1,"a":2})"), InvalidArgument);
  EXPECT_THROW(parseFlatObject(R"({"a":1} trailing)"), InvalidArgument);
  EXPECT_THROW(parseFlatObject(R"({"a":bogus})"), InvalidArgument);
}

TEST(Wire, EmptyObjectAndNumbers) {
  EXPECT_TRUE(parseFlatObject("{}").empty());
  EXPECT_EQ(jsonNumber(0.5), "0.5");
  EXPECT_EQ(jsonNumber(std::nan("")), "null");
}

// ---------------------------------------------------------------------------
// Latency summaries

TEST(Metrics, NearestRankPercentiles) {
  std::vector<double> samples;
  for (int i = 100; i >= 1; --i) {
    samples.push_back(static_cast<double>(i)); // 1..100, reversed
  }
  const LatencyStats stats = summarizeLatencies(samples);
  EXPECT_EQ(stats.count, 100u);
  EXPECT_DOUBLE_EQ(stats.p50, 50.0);
  EXPECT_DOUBLE_EQ(stats.p95, 95.0);
  EXPECT_DOUBLE_EQ(stats.max, 100.0);
  EXPECT_DOUBLE_EQ(stats.total, 5050.0);

  const LatencyStats one = summarizeLatencies({2.5});
  EXPECT_EQ(one.count, 1u);
  EXPECT_DOUBLE_EQ(one.p50, 2.5);
  EXPECT_DOUBLE_EQ(one.p95, 2.5);

  EXPECT_EQ(summarizeLatencies({}).count, 0u);
}

// ---------------------------------------------------------------------------
// JobQueue

std::shared_ptr<Job> makeQueuedJob(std::uint64_t id, int priority,
                                   const std::string& key = "k") {
  auto job = std::make_shared<Job>();
  job->id = id;
  job->sequence = id;
  job->request.priority = priority;
  job->batchKey = key;
  return job;
}

TEST(JobQueue, PriorityMajorFifoMinor) {
  JobQueue queue(8);
  EXPECT_EQ(queue.tryPush(makeQueuedJob(1, 0)), Admission::Accepted);
  EXPECT_EQ(queue.tryPush(makeQueuedJob(2, 5)), Admission::Accepted);
  EXPECT_EQ(queue.tryPush(makeQueuedJob(3, 5)), Admission::Accepted);
  EXPECT_EQ(queue.tryPush(makeQueuedJob(4, 1)), Admission::Accepted);
  EXPECT_EQ(queue.pop()->id, 2u); // highest priority, earliest sequence
  EXPECT_EQ(queue.pop()->id, 3u);
  EXPECT_EQ(queue.pop()->id, 4u);
  EXPECT_EQ(queue.pop()->id, 1u);
}

TEST(JobQueue, AdmissionControlRejectsWithReason) {
  JobQueue queue(2);
  EXPECT_EQ(queue.tryPush(makeQueuedJob(1, 0)), Admission::Accepted);
  EXPECT_EQ(queue.tryPush(makeQueuedJob(2, 0)), Admission::Accepted);
  EXPECT_EQ(queue.tryPush(makeQueuedJob(3, 0)), Admission::QueueFull);
  EXPECT_EQ(queue.depth(), 2u);
  queue.close(true);
  EXPECT_EQ(queue.tryPush(makeQueuedJob(4, 0)), Admission::Closed);
  EXPECT_STREQ(admissionName(Admission::QueueFull), "queue-full");
  EXPECT_STREQ(admissionName(Admission::Closed), "closed");
}

TEST(JobQueue, PopCompatibleDrainsMatchingKeysInOrder) {
  JobQueue queue(8);
  queue.tryPush(makeQueuedJob(1, 0, "a"));
  queue.tryPush(makeQueuedJob(2, 9, "b")); // higher priority, other key
  queue.tryPush(makeQueuedJob(3, 0, "a"));
  queue.tryPush(makeQueuedJob(4, 0, "a"));
  const auto batch = queue.popCompatible("a", 2);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0]->id, 1u); // submission order, not priority order
  EXPECT_EQ(batch[1]->id, 3u);
  EXPECT_EQ(queue.depth(), 2u);
  EXPECT_EQ(queue.pop()->id, 2u);
  EXPECT_EQ(queue.pop()->id, 4u);
}

TEST(JobQueue, RemoveAndCloseEvict) {
  JobQueue queue(8);
  queue.tryPush(makeQueuedJob(1, 0));
  queue.tryPush(makeQueuedJob(2, 0));
  const auto removed = queue.remove(1);
  ASSERT_NE(removed, nullptr);
  EXPECT_EQ(removed->id, 1u);
  EXPECT_EQ(queue.remove(99), nullptr);
  const auto evicted = queue.close(/*drainRemaining=*/false);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0]->id, 2u);
  EXPECT_EQ(queue.pop(), nullptr);
}

TEST(JobQueue, CloseWithDrainServesRemainder) {
  JobQueue queue(4);
  queue.tryPush(makeQueuedJob(1, 0));
  const auto evicted = queue.close(/*drainRemaining=*/true);
  EXPECT_TRUE(evicted.empty());
  ASSERT_NE(queue.pop(), nullptr);
  EXPECT_EQ(queue.pop(), nullptr); // drained
}

// ---------------------------------------------------------------------------
// Normalization key (the batching compatibility contract)

core::ReductionPlan smallPlan(double scale = 0.0005, std::size_t nFiles = 2) {
  core::ReductionPlan plan;
  plan.workload = WorkloadSpec::benzilCorelli(scale);
  plan.workload.nFiles = nFiles;
  return plan;
}

TEST(NormalizationKey, IgnoresDataOnlyFields) {
  const core::ReductionPlan base = smallPlan();
  core::ReductionPlan differentData = base;
  differentData.workload.seed ^= 0xabcdef;
  differentData.workload.eventsPerFile *= 2;
  differentData.config.trackErrors = true;
  EXPECT_EQ(normalizationKey(base), normalizationKey(differentData));
}

TEST(NormalizationKey, SensitiveToGridAndOrderFields) {
  const core::ReductionPlan base = smallPlan();
  const std::string key = normalizationKey(base);

  core::ReductionPlan otherGrid = base;
  otherGrid.workload.bins[0] += 1;
  EXPECT_NE(normalizationKey(otherGrid), key);

  core::ReductionPlan otherRanks = base;
  otherRanks.config.ranks = 2;
  EXPECT_NE(normalizationKey(otherRanks), key);

  core::ReductionPlan otherTraversal = base;
  otherTraversal.config.mdnorm.traversal = Traversal::Legacy;
  EXPECT_NE(normalizationKey(otherTraversal), key);

  core::ReductionPlan otherFlux = base;
  otherFlux.workload.lambdaMax += 0.1;
  EXPECT_NE(normalizationKey(otherFlux), key);
}

// ---------------------------------------------------------------------------
// Service lifecycle + equivalence

JobRequest planRequest(const core::ReductionPlan& plan, int priority = 0,
                       const std::string& tag = "") {
  JobRequest request;
  request.plan = plan;
  request.priority = priority;
  request.tag = tag;
  return request;
}

void expectBitwiseEqual(const core::ReductionResult& direct,
                        const core::ReductionResult& viaService,
                        const std::string& label) {
  for (const auto& [name, expected, actual] :
       {std::tuple<const char*, const Histogram3D&, const Histogram3D&>(
            "signal", direct.signal, viaService.signal),
        {"normalization", direct.normalization, viaService.normalization},
        {"crossSection", direct.crossSection, viaService.crossSection}}) {
    const verify::DiffReport report =
        verify::compareHistograms(expected, actual, verify::Tolerance::bitwise(),
                                  std::string(name) + " " + label);
    EXPECT_TRUE(report.pass) << report.summary();
  }
}

TEST(ReductionService, SingleJobMatchesDirectPipelineRun) {
  const core::ReductionPlan plan = smallPlan();
  const ExperimentSetup setup(plan.workload);
  const core::ReductionResult direct =
      core::ReductionPipeline(setup, plan.config).run();

  ServiceOptions options;
  options.workers = 1;
  ReductionService serviceInstance(options);
  const SubmitReceipt receipt = serviceInstance.submit(planRequest(plan));
  ASSERT_TRUE(receipt.accepted) << receipt.reason;
  const auto outcome = serviceInstance.wait(receipt.id);
  ASSERT_NE(outcome, nullptr);
  ASSERT_EQ(outcome->status.state, JobState::Done) << outcome->status.error;
  ASSERT_NE(outcome->result, nullptr);

  expectBitwiseEqual(direct, *outcome->result, "service single job");

  const auto status = serviceInstance.status(receipt.id);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, JobState::Done);
  EXPECT_EQ(status->progress.filesCompleted, plan.workload.nFiles);
  EXPECT_EQ(status->progress.filesTotal, plan.workload.nFiles);
  EXPECT_GT(status->progress.stages.total("BinMD"), 0.0);
  serviceInstance.shutdown(true);
}

// Oracle differential check on the service path: the golden-benzil-tiny
// workload (the repo's oracle-contract domain — unmasked, so the
// service's ExperimentSetup(workload) matches the oracle's setup).
TEST(ReductionService, JobMatchesReferenceOracle) {
  const verify::FuzzExperiment experiment = verify::goldenExperiments().front();
  ASSERT_EQ(experiment.maskFraction, 0.0);
  core::ReductionPlan plan;
  plan.workload = experiment.spec;
  const verify::OracleResult oracle =
      verify::referenceReduce(ExperimentSetup(plan.workload));

  ServiceOptions options;
  options.workers = 1;
  ReductionService serviceInstance(options);
  const SubmitReceipt receipt = serviceInstance.submit(planRequest(plan));
  ASSERT_TRUE(receipt.accepted) << receipt.reason;
  const auto outcome = serviceInstance.wait(receipt.id);
  ASSERT_NE(outcome, nullptr);
  ASSERT_EQ(outcome->status.state, JobState::Done) << outcome->status.error;
  ASSERT_NE(outcome->result, nullptr);
  const auto check = [&](const Histogram3D& expected, const Histogram3D& actual,
                         const char* what) {
    const verify::DiffReport report = verify::compareHistograms(
        expected, actual, {}, std::string(what) + " service vs oracle");
    EXPECT_TRUE(report.pass) << report.summary();
  };
  check(oracle.signal, outcome->result->signal, "signal");
  check(oracle.normalization, outcome->result->normalization, "normalization");
  check(oracle.crossSection, outcome->result->crossSection, "crossSection");
  serviceInstance.shutdown(true);
}

TEST(ReductionService, BatchedFollowersAreBitIdenticalToFullRuns) {
  constexpr std::size_t kJobs = 3;
  std::vector<core::ReductionPlan> plans;
  for (std::size_t i = 0; i < kJobs; ++i) {
    core::ReductionPlan plan = smallPlan();
    plan.workload.seed += 1000 * i; // same grid, different data
    plans.push_back(plan);
  }

  // One worker guarantees every job is still queued when the worker pops
  // the first one, so all of them coalesce into one batch.
  ServiceOptions options;
  options.workers = 1;
  options.maxBatch = kJobs;
  options.batching = true;
  ReductionService serviceInstance(options);
  std::vector<std::uint64_t> ids;
  for (const core::ReductionPlan& plan : plans) {
    const SubmitReceipt receipt = serviceInstance.submit(planRequest(plan));
    ASSERT_TRUE(receipt.accepted) << receipt.reason;
    ids.push_back(receipt.id);
  }

  std::size_t followers = 0;
  for (std::size_t i = 0; i < kJobs; ++i) {
    const auto outcome = serviceInstance.wait(ids[i]);
    ASSERT_NE(outcome, nullptr);
    ASSERT_EQ(outcome->status.state, JobState::Done) << outcome->status.error;
    ASSERT_NE(outcome->result, nullptr);
    if (outcome->status.sharedNormalization) {
      ++followers;
    }
    // Every job — leader or follower — must match its own full direct
    // pipeline run bit for bit.
    const ExperimentSetup setup(plans[i].workload);
    const core::ReductionResult direct =
        core::ReductionPipeline(setup, plans[i].config).run();
    expectBitwiseEqual(direct, *outcome->result,
                       "batched job " + std::to_string(i));
  }

  const ServiceMetrics metrics = serviceInstance.metrics();
  EXPECT_EQ(metrics.done, kJobs);
  EXPECT_LT(metrics.normalizationPasses, kJobs); // the whole point
  EXPECT_GE(metrics.sharedNormalizationJobs, 1u);
  EXPECT_EQ(metrics.sharedNormalizationJobs, followers);
  EXPECT_GE(metrics.batches, 1u);
  EXPECT_GT(metrics.batchHitRate(), 0.0);
  serviceInstance.shutdown(true);
}

TEST(ReductionService, LateArrivalJoinsRunningLeadersBatch) {
  // A compatible job submitted while the leader is already mid-flight
  // must still reuse the finished leader's normalization (the
  // post-leader re-drain), not pay its own pass.
  ServiceOptions options;
  options.workers = 1;
  options.maxBatch = 4;
  core::ReductionPlan leaderPlan = smallPlan(0.0005, 8);
  ReductionService serviceInstance(options);
  const SubmitReceipt lead = serviceInstance.submit(planRequest(leaderPlan));
  ASSERT_TRUE(lead.accepted);
  for (int i = 0; i < 20000; ++i) {
    const auto status = serviceInstance.status(lead.id);
    if (status && status->state == JobState::Running) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  core::ReductionPlan latePlan = leaderPlan;
  latePlan.workload.seed += 42; // same key, different data
  const SubmitReceipt late = serviceInstance.submit(planRequest(latePlan));
  ASSERT_TRUE(late.accepted);

  const auto leadOutcome = serviceInstance.wait(lead.id);
  const auto lateOutcome = serviceInstance.wait(late.id);
  ASSERT_EQ(leadOutcome->status.state, JobState::Done);
  ASSERT_EQ(lateOutcome->status.state, JobState::Done);
  EXPECT_TRUE(lateOutcome->status.sharedNormalization)
      << "leader finished before the late submit landed — enlarge the "
         "leader workload";
  // The shared result still matches the late job's own full run.
  const ExperimentSetup setup(latePlan.workload);
  const core::ReductionResult direct =
      core::ReductionPipeline(setup, latePlan.config).run();
  expectBitwiseEqual(direct, *lateOutcome->result, "late-arrival follower");
  const ServiceMetrics metrics = serviceInstance.metrics();
  EXPECT_EQ(metrics.normalizationPasses, 1u);
  EXPECT_EQ(metrics.sharedNormalizationJobs, 1u);
  serviceInstance.shutdown(true);
}

TEST(ReductionService, BatchingOffRunsEveryNormalization) {
  ServiceOptions options;
  options.workers = 1;
  options.batching = false;
  ReductionService serviceInstance(options);
  std::vector<std::uint64_t> ids;
  for (std::size_t i = 0; i < 2; ++i) {
    core::ReductionPlan plan = smallPlan(0.0005, 1);
    plan.workload.seed += i;
    const SubmitReceipt receipt = serviceInstance.submit(planRequest(plan));
    ASSERT_TRUE(receipt.accepted);
    ids.push_back(receipt.id);
  }
  for (const std::uint64_t id : ids) {
    const auto outcome = serviceInstance.wait(id);
    ASSERT_EQ(outcome->status.state, JobState::Done);
    EXPECT_FALSE(outcome->status.sharedNormalization);
  }
  const ServiceMetrics metrics = serviceInstance.metrics();
  EXPECT_EQ(metrics.normalizationPasses, 2u);
  EXPECT_EQ(metrics.sharedNormalizationJobs, 0u);
  serviceInstance.shutdown(true);
}

TEST(ReductionService, TrackErrorsFollowerPropagatesAgainstSharedNorm) {
  ServiceOptions options;
  options.workers = 1;
  options.maxBatch = 2;
  ReductionService serviceInstance(options);
  std::vector<std::uint64_t> ids;
  std::vector<core::ReductionPlan> plans;
  for (std::size_t i = 0; i < 2; ++i) {
    core::ReductionPlan plan = smallPlan(0.0005, 1);
    plan.workload.seed += 7 * i;
    plan.config.trackErrors = true;
    plans.push_back(plan);
    const SubmitReceipt receipt = serviceInstance.submit(planRequest(plan));
    ASSERT_TRUE(receipt.accepted);
    ids.push_back(receipt.id);
  }
  for (std::size_t i = 0; i < 2; ++i) {
    const auto outcome = serviceInstance.wait(ids[i]);
    ASSERT_EQ(outcome->status.state, JobState::Done) << outcome->status.error;
    ASSERT_TRUE(outcome->result->crossSectionErrorSq.has_value());
    const ExperimentSetup setup(plans[i].workload);
    const core::ReductionResult direct =
        core::ReductionPipeline(setup, plans[i].config).run();
    const verify::DiffReport report = verify::compareHistograms(
        *direct.crossSectionErrorSq, *outcome->result->crossSectionErrorSq,
        verify::Tolerance::bitwise(), "crossSectionErrorSq job " +
                                          std::to_string(i));
    EXPECT_TRUE(report.pass) << report.summary();
  }
  serviceInstance.shutdown(true);
}

TEST(ReductionService, RejectsInvalidAndOverflowingSubmissions) {
  ServiceOptions options;
  options.workers = 1;
  options.queueCapacity = 1;
  ReductionService serviceInstance(options);

  core::ReductionPlan invalid = smallPlan();
  invalid.workload.nFiles = 0;
  const SubmitReceipt bad = serviceInstance.submit(planRequest(invalid));
  EXPECT_FALSE(bad.accepted);
  EXPECT_NE(bad.reason.find("invalid"), std::string::npos);

  // Flood a capacity-1 queue: submissions are microseconds apart while
  // each job needs milliseconds, so at least one must be shed.
  std::size_t rejectedQueueFull = 0;
  for (std::size_t i = 0; i < 6; ++i) {
    core::ReductionPlan plan = smallPlan(0.0005, 1);
    plan.workload.seed += i;
    const SubmitReceipt receipt = serviceInstance.submit(planRequest(plan));
    if (!receipt.accepted) {
      EXPECT_EQ(receipt.reason, "queue-full");
      ++rejectedQueueFull;
    }
  }
  EXPECT_GE(rejectedQueueFull, 1u);
  const ServiceMetrics metrics = serviceInstance.metrics();
  EXPECT_EQ(metrics.rejectedQueueFull, rejectedQueueFull);
  EXPECT_EQ(metrics.rejectedInvalid, 1u);
  serviceInstance.shutdown(true);

  const SubmitReceipt closed = serviceInstance.submit(planRequest(smallPlan()));
  EXPECT_FALSE(closed.accepted);
  EXPECT_EQ(closed.reason, "closed");
}

TEST(ReductionService, CancelWhileQueuedIsImmediate) {
  ServiceOptions options;
  options.workers = 1;
  options.batching = false;
  ReductionService serviceInstance(options);
  // Occupy the single worker, then queue a victim behind it.
  const SubmitReceipt busy =
      serviceInstance.submit(planRequest(smallPlan(0.0005, 4)));
  ASSERT_TRUE(busy.accepted);
  core::ReductionPlan victimPlan = smallPlan();
  victimPlan.workload.seed += 99; // different key: batching can't steal it
  const SubmitReceipt victim = serviceInstance.submit(planRequest(victimPlan));
  ASSERT_TRUE(victim.accepted);

  EXPECT_TRUE(serviceInstance.cancel(victim.id));
  const auto outcome = serviceInstance.wait(victim.id);
  ASSERT_NE(outcome, nullptr);
  // The worker may already have popped it into a batch group before the
  // cancel landed; either way it must terminate Cancelled, without a
  // result.
  EXPECT_EQ(outcome->status.state, JobState::Cancelled);
  EXPECT_EQ(outcome->result, nullptr);
  EXPECT_FALSE(serviceInstance.cancel(victim.id)); // already terminal
  serviceInstance.shutdown(true);
}

TEST(ReductionService, CancelMidFlightLeavesNoResult) {
  ServiceOptions options;
  options.workers = 1;
  ReductionService serviceInstance(options);
  const SubmitReceipt receipt =
      serviceInstance.submit(planRequest(smallPlan(0.0005, 12)));
  ASSERT_TRUE(receipt.accepted);

  // Wait for the job to actually start, then cancel it mid-reduction.
  for (int i = 0; i < 20000; ++i) {
    const auto status = serviceInstance.status(receipt.id);
    ASSERT_TRUE(status.has_value());
    if (status->state == JobState::Running) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  EXPECT_TRUE(serviceInstance.cancel(receipt.id));
  const auto outcome = serviceInstance.wait(receipt.id);
  ASSERT_NE(outcome, nullptr);
  EXPECT_EQ(outcome->status.state, JobState::Cancelled)
      << "job finished before the cancel landed — enlarge the workload";
  EXPECT_EQ(outcome->result, nullptr);
  EXPECT_FALSE(outcome->status.error.empty());
  serviceInstance.shutdown(true);
}

TEST(ReductionService, DeadlineExpiresBeforeStart) {
  ServiceOptions options;
  options.workers = 1;
  options.batching = false;
  ReductionService serviceInstance(options);
  // Busy job first; the deadlined job behind it cannot start in time.
  const SubmitReceipt busy =
      serviceInstance.submit(planRequest(smallPlan(0.0005, 4)));
  ASSERT_TRUE(busy.accepted);
  core::ReductionPlan latePlan = smallPlan();
  latePlan.workload.seed += 1; // different key: no batch rescue
  JobRequest lateRequest = planRequest(latePlan);
  lateRequest.deadlineSeconds = 1e-4;
  const SubmitReceipt late = serviceInstance.submit(std::move(lateRequest));
  ASSERT_TRUE(late.accepted);

  const auto outcome = serviceInstance.wait(late.id);
  ASSERT_NE(outcome, nullptr);
  EXPECT_EQ(outcome->status.state, JobState::Expired);
  EXPECT_EQ(outcome->result, nullptr);
  const ServiceMetrics metrics = serviceInstance.metrics();
  EXPECT_GE(metrics.expired, 1u);
  serviceInstance.shutdown(true);
}

TEST(ReductionService, LiveJobReducesToCompletion) {
  ServiceOptions options;
  options.workers = 1;
  ReductionService serviceInstance(options);
  JobRequest request;
  request.plan = smallPlan(0.0005, 2);
  request.kind = JobKind::Live;
  const SubmitReceipt receipt = serviceInstance.submit(std::move(request));
  ASSERT_TRUE(receipt.accepted);
  const auto outcome = serviceInstance.wait(receipt.id);
  ASSERT_NE(outcome, nullptr);
  ASSERT_EQ(outcome->status.state, JobState::Done) << outcome->status.error;
  ASSERT_NE(outcome->result, nullptr);
  EXPECT_GT(outcome->result->eventsProcessed, 0u);
  EXPECT_GT(outcome->result->signal.totalSignal(), 0.0);
  EXPECT_GT(outcome->result->normalization.totalSignal(), 0.0);
  serviceInstance.shutdown(true);
}

TEST(ReductionService, LiveJobCancels) {
  ServiceOptions options;
  options.workers = 1;
  options.liveChannelCapacity = 2; // throttle so the cancel can land
  ReductionService serviceInstance(options);
  JobRequest request;
  request.plan = smallPlan(0.001, 8);
  request.kind = JobKind::Live;
  const SubmitReceipt receipt = serviceInstance.submit(std::move(request));
  ASSERT_TRUE(receipt.accepted);
  for (int i = 0; i < 20000; ++i) {
    const auto status = serviceInstance.status(receipt.id);
    if (status && status->state == JobState::Running) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  serviceInstance.cancel(receipt.id);
  const auto outcome = serviceInstance.wait(receipt.id);
  ASSERT_NE(outcome, nullptr);
  // The reduction may beat the cancel on fast machines; cancellation
  // must never produce a third state though.
  EXPECT_TRUE(outcome->status.state == JobState::Cancelled ||
              outcome->status.state == JobState::Done);
  serviceInstance.shutdown(true);
}

TEST(ReductionService, MetricsSerializeToJson) {
  ServiceOptions options;
  options.workers = 1;
  ReductionService serviceInstance(options);
  const SubmitReceipt receipt =
      serviceInstance.submit(planRequest(smallPlan(0.0005, 1)));
  ASSERT_TRUE(receipt.accepted);
  serviceInstance.wait(receipt.id);
  const std::string json = serviceInstance.metrics().toJson();
  for (const char* key :
       {"\"workers\":1", "\"done\":1", "\"queue_capacity\":", "\"latency\":",
        "\"queue-wait\":", "\"run\":", "\"batch_hit_rate\":",
        "\"normalization_passes\":1"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " missing in\n"
                                                 << json;
  }
  serviceInstance.shutdown(true);
}

TEST(ServiceOptions, FromEnvParsesAndClamps) {
  ::setenv("VATES_SERVICE_WORKERS", "3", 1);
  ::setenv("VATES_SERVICE_QUEUE", "7", 1);
  ::setenv("VATES_SERVICE_BATCH", "0", 1);
  ServiceOptions options = ServiceOptions::fromEnv();
  EXPECT_EQ(options.workers, 3u);
  EXPECT_EQ(options.queueCapacity, 7u);
  EXPECT_FALSE(options.batching);

  ::setenv("VATES_SERVICE_BATCH", "5", 1);
  ::setenv("VATES_SERVICE_WORKERS", "bogus", 1);
  options = ServiceOptions::fromEnv();
  EXPECT_EQ(options.workers, ServiceOptions{}.workers); // malformed ignored
  EXPECT_EQ(options.maxBatch, 5u);
  EXPECT_TRUE(options.batching);

  ::unsetenv("VATES_SERVICE_WORKERS");
  ::unsetenv("VATES_SERVICE_QUEUE");
  ::unsetenv("VATES_SERVICE_BATCH");
}

// ---------------------------------------------------------------------------
// Pipeline-level cancellation hook (the mechanism the service rides)

TEST(PipelineHooks, PresetCancelFlagThrowsCancelledBeforeAnyFile) {
  const core::ReductionPlan plan = smallPlan();
  const ExperimentSetup setup(plan.workload);
  std::atomic<bool> cancelFlag{true};
  core::ReductionConfig config = plan.config;
  config.hooks.cancel = &cancelFlag;
  const core::ReductionPipeline pipeline(setup, config);
  EXPECT_THROW(pipeline.run(), Cancelled);
}

TEST(PipelineHooks, ProgressAndFileCountsAreReported) {
  const core::ReductionPlan plan = smallPlan(0.0005, 3);
  const ExperimentSetup setup(plan.workload);
  std::atomic<std::size_t> filesCompleted{0};
  SharedStageTimes progress;
  core::ReductionConfig config = plan.config;
  config.hooks.filesCompleted = &filesCompleted;
  config.hooks.progress = &progress;
  const core::ReductionResult result =
      core::ReductionPipeline(setup, config).run();
  EXPECT_EQ(filesCompleted.load(), plan.workload.nFiles);
  const StageTimes stages = progress.snapshot();
  EXPECT_GT(stages.total("MDNorm"), 0.0);
  EXPECT_GT(stages.total("BinMD"), 0.0);
  // The per-file merges must add up to the result's own accounting.
  EXPECT_EQ(stages.count("BinMD"), result.timesSummed.count("BinMD"));
}

TEST(PipelineHooks, SkipNormalizationLeavesSignalBitIdentical) {
  const core::ReductionPlan plan = smallPlan();
  const ExperimentSetup setup(plan.workload);
  const core::ReductionResult full =
      core::ReductionPipeline(setup, plan.config).run();
  core::ReductionConfig skipConfig = plan.config;
  skipConfig.skipNormalization = true;
  const core::ReductionResult skipped =
      core::ReductionPipeline(setup, skipConfig).run();
  const verify::DiffReport report = verify::compareHistograms(
      full.signal, skipped.signal, verify::Tolerance::bitwise(),
      "signal full vs skipNormalization");
  EXPECT_TRUE(report.pass) << report.summary();
  EXPECT_DOUBLE_EQ(skipped.normalization.totalSignal(), 0.0);
}

// ---------------------------------------------------------------------------
// Stress: 64 jobs, 4 workers, mixed priorities, one deadline expiry,
// one mid-flight cancellation (run under TSan in CI).

TEST(ReductionServiceStress, MixedPriorityBurstWithExpiryAndCancellation) {
  constexpr std::size_t kJobs = 64;
  ServiceOptions options;
  options.workers = 4;
  options.queueCapacity = kJobs + 1;
  options.maxBatch = 4;
  ReductionService serviceInstance(options);

  std::vector<std::uint64_t> ids;
  ids.reserve(kJobs);
  for (std::size_t i = 0; i < kJobs; ++i) {
    core::ReductionPlan plan = smallPlan(0.0003, 1);
    plan.workload.seed += i / 8; // 8 duplicate-grid cohorts
    JobRequest request = planRequest(plan, static_cast<int>(i % 3),
                                     "stress-" + std::to_string(i));
    if (i == kJobs - 1) {
      // Lowest priority + microscopic deadline: it is still queued when
      // its turn comes, so it expires instead of running.
      request.priority = -1;
      request.deadlineSeconds = 1e-4;
    }
    const SubmitReceipt receipt = serviceInstance.submit(std::move(request));
    ASSERT_TRUE(receipt.accepted) << receipt.reason;
    ids.push_back(receipt.id);
  }

  // One mid-flight cancellation: cancel the first job observed Running.
  bool cancelled = false;
  for (int attempt = 0; attempt < 1000 && !cancelled; ++attempt) {
    for (const JobStatus& status : serviceInstance.jobs()) {
      if (status.state == JobState::Running) {
        cancelled = serviceInstance.cancel(status.id);
        break;
      }
    }
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }

  std::size_t done = 0;
  std::size_t expired = 0;
  std::size_t cancelledCount = 0;
  for (const std::uint64_t id : ids) {
    const auto outcome = serviceInstance.wait(id);
    ASSERT_NE(outcome, nullptr);
    switch (outcome->status.state) {
    case JobState::Done:      ++done; break;
    case JobState::Expired:   ++expired; break;
    case JobState::Cancelled: ++cancelledCount; break;
    default:
      FAIL() << "unexpected terminal state "
             << jobStateName(outcome->status.state) << ": "
             << outcome->status.error;
    }
  }
  EXPECT_EQ(done + expired + cancelledCount, kJobs);
  EXPECT_GE(expired, 1u);
  EXPECT_GE(done, kJobs / 2);
  const ServiceMetrics metrics = serviceInstance.metrics();
  EXPECT_EQ(metrics.submitted, kJobs);
  EXPECT_EQ(metrics.admitted, kJobs);
  EXPECT_EQ(metrics.done + metrics.expired + metrics.cancelled, kJobs);
  serviceInstance.shutdown(true);
}

// Destruction while jobs are still queued/running must cancel and join
// cleanly (the dtor is shutdown(false)).
TEST(ReductionService, DestructorCancelsOutstandingWork) {
  std::vector<std::uint64_t> ids;
  {
    ServiceOptions options;
    options.workers = 2;
    options.queueCapacity = 8;
    ReductionService serviceInstance(options);
    for (std::size_t i = 0; i < 6; ++i) {
      core::ReductionPlan plan = smallPlan(0.0005, 2);
      plan.workload.seed += i;
      const SubmitReceipt receipt = serviceInstance.submit(planRequest(plan));
      if (receipt.accepted) {
        ids.push_back(receipt.id);
      }
    }
    // Scope exit: destructor runs with work outstanding.
  }
  SUCCEED();
}

} // namespace
} // namespace vates::service
