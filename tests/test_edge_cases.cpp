// Edge-case sweep: degenerate workloads and configurations the
// production system would meet in the wild (more ranks than files,
// dead beam, empty runs, single-bin histograms).

#include "vates/baseline/garnet_workflow.hpp"
#include "vates/core/pipeline.hpp"
#include "vates/kernels/mdnorm.hpp"
#include "vates/kernels/transforms.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace vates {
namespace {

TEST(EdgeCases, MoreRanksThanFiles) {
  // 8 ranks over 3 files: five ranks have empty ranges but still
  // participate in the collective reduce.
  WorkloadSpec spec = WorkloadSpec::benzilCorelli(0.0004);
  spec.nFiles = 3;
  const ExperimentSetup setup(spec);

  core::ReductionConfig oneRank;
  oneRank.backend = Backend::Serial;
  const core::ReductionResult reference =
      core::ReductionPipeline(setup, oneRank).run();

  core::ReductionConfig manyRanks = oneRank;
  manyRanks.ranks = 8;
  const core::ReductionResult result =
      core::ReductionPipeline(setup, manyRanks).run();

  EXPECT_DOUBLE_EQ(result.signal.totalSignal(),
                   reference.signal.totalSignal());
  EXPECT_EQ(result.eventsProcessed, reference.eventsProcessed);
}

TEST(EdgeCases, MoreRanksThanFilesOnDevice) {
  WorkloadSpec spec = WorkloadSpec::benzilCorelli(0.0004);
  spec.nFiles = 2;
  const ExperimentSetup setup(spec);
  core::ReductionConfig config;
  config.backend = Backend::DeviceSim;
  config.ranks = 5;
  const core::ReductionResult result =
      core::ReductionPipeline(setup, config).run();
  EXPECT_GT(result.signal.totalSignal(), 0.0);
  // Device memory balances even for ranks that staged but processed
  // nothing.
  EXPECT_EQ(result.deviceStats.bytesAllocated, result.deviceStats.bytesFreed);
}

TEST(EdgeCases, SingleFileSingleDetectorBinWorkload) {
  WorkloadSpec spec = WorkloadSpec::benzilCorelli(0.0004);
  spec.nFiles = 1;
  spec.nDetectors = 64;   // builder minimum
  spec.eventsPerFile = 256;
  spec.bins = {1, 1, 1};  // a single giant bin
  spec.extentMin = {-50, -50, -50};
  spec.extentMax = {50, 50, 50};
  const ExperimentSetup setup(spec);
  core::ReductionConfig config;
  config.backend = Backend::Serial;
  const core::ReductionResult result =
      core::ReductionPipeline(setup, config).run();
  // Everything lands in the one bin.
  EXPECT_EQ(result.signal.size(), 1u);
  EXPECT_GT(result.signal.data()[0], 0.0);
  EXPECT_TRUE(std::isfinite(result.crossSection.data()[0]));
}

TEST(EdgeCases, ZeroFluxYieldsEmptyNormalization) {
  // A dead beam: the cumulative flux is flat zero, so MDNorm deposits
  // nothing and the cross-section is NaN everywhere (covered by no
  // normalization), but nothing crashes or divides by zero.
  const ExperimentSetup setup(WorkloadSpec::benzilCorelli(0.0004));
  const EventGenerator generator = setup.makeGenerator();
  const RunInfo run = generator.runInfo(0);
  const FluxSpectrum deadBeam(run.kMin, run.kMax,
                              std::vector<double>(16, 0.0));

  const auto transforms =
      mdNormTransforms(setup.projection(), setup.lattice(),
                       setup.symmetryMatrices(), run.goniometerR);
  MDNormInputs inputs;
  inputs.transforms = transforms;
  inputs.qLabDirections = setup.instrument().qLabDirections();
  inputs.solidAngles = setup.instrument().solidAngles();
  inputs.flux = deadBeam.view();
  inputs.protonCharge = run.protonCharge;
  inputs.kMin = run.kMin;
  inputs.kMax = run.kMax;

  Histogram3D normalization = setup.makeHistogram();
  runMDNorm(Executor(Backend::Serial), inputs, normalization.gridView());
  EXPECT_DOUBLE_EQ(normalization.totalSignal(), 0.0);

  Histogram3D signal = setup.makeHistogram();
  signal.fill(1.0);
  const Histogram3D crossSection = Histogram3D::divide(signal, normalization);
  for (std::size_t i = 0; i < crossSection.size(); i += 997) {
    EXPECT_TRUE(std::isnan(crossSection.data()[i]));
  }
}

TEST(EdgeCases, FullyMaskedInstrumentProducesNothing) {
  const ExperimentSetup setup(WorkloadSpec::benzilCorelli(0.0004));
  const EventGenerator generator = setup.makeGenerator();
  const RunInfo run = generator.runInfo(0);
  std::vector<std::uint8_t> allMasked(setup.instrument().nDetectors(), 1);

  const auto transforms =
      mdNormTransforms(setup.projection(), setup.lattice(),
                       setup.symmetryMatrices(), run.goniometerR);
  MDNormInputs inputs;
  inputs.transforms = transforms;
  inputs.qLabDirections = setup.instrument().qLabDirections();
  inputs.solidAngles = setup.instrument().solidAngles();
  inputs.flux = setup.flux().view();
  inputs.protonCharge = run.protonCharge;
  inputs.kMin = run.kMin;
  inputs.kMax = run.kMax;
  inputs.detectorMask = allMasked.data();

  Histogram3D normalization = setup.makeHistogram();
  runMDNorm(Executor(Backend::Serial), inputs, normalization.gridView());
  EXPECT_DOUBLE_EQ(normalization.totalSignal(), 0.0);
}

TEST(EdgeCases, BaselineHandlesEmptyRunRange) {
  const ExperimentSetup setup(WorkloadSpec::benzilCorelli(0.0004));
  const baseline::GarnetResult nothing =
      baseline::GarnetWorkflow(setup).reduce(2, 2);
  EXPECT_DOUBLE_EQ(nothing.signal.totalSignal(), 0.0);
  EXPECT_EQ(nothing.times.count("MDNorm"), 0u);
  EXPECT_THROW(baseline::GarnetWorkflow(setup).reduce(3, 1), InvalidArgument);
}

TEST(EdgeCases, ProtonChargeScalesNormalizationLinearly) {
  const ExperimentSetup setup(WorkloadSpec::benzilCorelli(0.0004));
  const EventGenerator generator = setup.makeGenerator();
  RunInfo run = generator.runInfo(0);
  const auto transforms =
      mdNormTransforms(setup.projection(), setup.lattice(),
                       setup.symmetryMatrices(), run.goniometerR);
  MDNormInputs inputs;
  inputs.transforms = transforms;
  inputs.qLabDirections = setup.instrument().qLabDirections();
  inputs.solidAngles = setup.instrument().solidAngles();
  inputs.flux = setup.flux().view();
  inputs.kMin = run.kMin;
  inputs.kMax = run.kMax;

  inputs.protonCharge = 1.0;
  Histogram3D unit = setup.makeHistogram();
  runMDNorm(Executor(Backend::Serial), inputs, unit.gridView());

  inputs.protonCharge = 2.5;
  Histogram3D scaled = setup.makeHistogram();
  runMDNorm(Executor(Backend::Serial), inputs, scaled.gridView());

  EXPECT_NEAR(scaled.totalSignal(), 2.5 * unit.totalSignal(),
              1e-9 * scaled.totalSignal());
}

} // namespace
} // namespace vates
