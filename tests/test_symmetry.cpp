// Tests for symmetry operations and point groups, including the two
// groups the paper's workloads use: "-3" (Benzil, 6 ops) and "m-3"
// (Bixbyite, 24 ops).

#include "vates/geometry/symmetry.hpp"
#include "vates/support/error.hpp"

#include <gtest/gtest.h>

#include <map>

namespace vates {
namespace {

TEST(SymmetryOperation, IdentityByDefault) {
  const SymmetryOperation identity;
  EXPECT_TRUE(identity.isIdentity());
  EXPECT_EQ(identity.apply({1, 2, 3}), (V3{1, 2, 3}));
  EXPECT_EQ(identity.handedness(), 1);
}

TEST(SymmetryOperation, JonesParsingBasic) {
  EXPECT_TRUE(SymmetryOperation::fromJones("x,y,z").isIdentity());
  const auto inversion = SymmetryOperation::fromJones("-x,-y,-z");
  EXPECT_EQ(inversion.apply({1, 2, 3}), (V3{-1, -2, -3}));
  EXPECT_EQ(inversion.handedness(), -1);

  const auto cyclic = SymmetryOperation::fromJones("z,x,y");
  EXPECT_EQ(cyclic.apply({1, 2, 3}), (V3{3, 1, 2}));
  EXPECT_EQ(cyclic.handedness(), 1);
}

TEST(SymmetryOperation, JonesParsingHexagonalThreeFold) {
  // 3⁺ about c in hexagonal axes: (h,k,l) -> (-k, h-k, l).
  const auto threeFold = SymmetryOperation::fromJones("-y,x-y,z");
  EXPECT_EQ(threeFold.apply({1, 0, 0}), (V3{0, 1, 0}));
  EXPECT_EQ(threeFold.apply({0, 1, 0}), (V3{-1, -1, 0}));
  // Order 3: applying three times is the identity.
  const auto cubed = threeFold * threeFold * threeFold;
  EXPECT_TRUE(cubed.isIdentity());
}

TEST(SymmetryOperation, JonesHklAliases) {
  const auto fromXyz = SymmetryOperation::fromJones("-y,x-y,z");
  const auto fromHkl = SymmetryOperation::fromJones("-k,h-k,l");
  EXPECT_TRUE(fromXyz == fromHkl);
}

TEST(SymmetryOperation, JonesRejectsMalformed) {
  EXPECT_THROW(SymmetryOperation::fromJones("x,y"), InvalidArgument);
  EXPECT_THROW(SymmetryOperation::fromJones("x,y,z,w"), InvalidArgument);
  EXPECT_THROW(SymmetryOperation::fromJones("a,b,c"), InvalidArgument);
  EXPECT_THROW(SymmetryOperation::fromJones("x,y,"), InvalidArgument);
  EXPECT_THROW(SymmetryOperation::fromJones("x,y,-"), InvalidArgument);
}

TEST(SymmetryOperation, NonUnimodularMatrixRejected) {
  M33 doubling = M33::identity();
  doubling(0, 0) = 2.0;
  EXPECT_THROW(SymmetryOperation{doubling}, InvalidArgument);
  M33 nonInteger = M33::identity();
  nonInteger(0, 1) = 0.5;
  EXPECT_THROW(SymmetryOperation{nonInteger}, InvalidArgument);
}

TEST(SymmetryOperation, InverseComposesToIdentity) {
  for (const char* jones : {"-y,x-y,z", "z,x,y", "y,x,-z", "-y,x,z"}) {
    const auto op = SymmetryOperation::fromJones(jones);
    EXPECT_TRUE((op * op.inverse()).isIdentity()) << jones;
    EXPECT_TRUE((op.inverse() * op).isIdentity()) << jones;
  }
}

TEST(SymmetryOperation, JonesRenderingRoundTrip) {
  for (const char* jones :
       {"x,y,z", "-x,-y,-z", "-y,x-y,z", "z,x,y", "y,x,-z", "x-y,x,z"}) {
    const auto op = SymmetryOperation::fromJones(jones);
    const auto reparsed = SymmetryOperation::fromJones(op.jones());
    EXPECT_TRUE(op == reparsed) << jones << " -> " << op.jones();
  }
}

// ---------------------------------------------------------------------------
// Point groups: orders of every supported group

struct GroupOrderCase {
  const char* symbol;
  std::size_t order;
};

class PointGroupOrders : public ::testing::TestWithParam<GroupOrderCase> {};

INSTANTIATE_TEST_SUITE_P(
    AllGroups, PointGroupOrders,
    ::testing::Values(
        GroupOrderCase{"1", 1}, GroupOrderCase{"-1", 2}, GroupOrderCase{"2", 2},
        GroupOrderCase{"m", 2}, GroupOrderCase{"2/m", 4},
        GroupOrderCase{"222", 4}, GroupOrderCase{"mmm", 8},
        GroupOrderCase{"4", 4}, GroupOrderCase{"-4", 4},
        GroupOrderCase{"4/m", 8}, GroupOrderCase{"422", 8},
        GroupOrderCase{"4mm", 8}, GroupOrderCase{"-42m", 8},
        GroupOrderCase{"4/mmm", 16},
        GroupOrderCase{"3", 3}, GroupOrderCase{"-3", 6},
        GroupOrderCase{"32", 6}, GroupOrderCase{"-3m", 12},
        GroupOrderCase{"6", 6}, GroupOrderCase{"-6", 6},
        GroupOrderCase{"6/m", 12}, GroupOrderCase{"622", 12},
        GroupOrderCase{"6mm", 12}, GroupOrderCase{"-6m2", 12},
        GroupOrderCase{"6/mmm", 24},
        GroupOrderCase{"23", 12}, GroupOrderCase{"m-3", 24},
        GroupOrderCase{"432", 24}, GroupOrderCase{"m-3m", 48}),
    [](const auto& paramInfo) {
      std::string name = paramInfo.param.symbol;
      for (char& c : name) {
        if (c == '-') c = 'i';
        if (c == '/') c = '_';
      }
      return name;
    });

TEST_P(PointGroupOrders, HasCrystallographicOrder) {
  const PointGroup group(GetParam().symbol);
  EXPECT_EQ(group.order(), GetParam().order);
}

TEST_P(PointGroupOrders, IsClosedUnderMultiplication) {
  const PointGroup group(GetParam().symbol);
  const auto& ops = group.operations();
  for (const auto& a : ops) {
    for (const auto& b : ops) {
      const auto product = a * b;
      bool found = false;
      for (const auto& existing : ops) {
        if (existing == product) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "product " << product.jones()
                         << " escapes the group";
    }
  }
}

TEST_P(PointGroupOrders, ContainsInverses) {
  const PointGroup group(GetParam().symbol);
  for (const auto& op : group.operations()) {
    const auto inverse = op.inverse();
    bool found = false;
    for (const auto& existing : group.operations()) {
      if (existing == inverse) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST_P(PointGroupOrders, OperationsAreUnimodular) {
  const PointGroup group(GetParam().symbol);
  for (const auto& op : group.operations()) {
    EXPECT_NEAR(std::fabs(op.matrix().determinant()), 1.0, 1e-12);
  }
}

// ---------------------------------------------------------------------------
// The paper's two groups in detail

TEST(PointGroup, PaperWorkloadOrders) {
  // Table II: Benzil has 6 symmetry transformations, Bixbyite has 24.
  EXPECT_EQ(PointGroup("-3").order(), 6u);
  EXPECT_EQ(PointGroup("m-3").order(), 24u);
}

TEST(PointGroup, EquivalentsOfGeneralPosition) {
  const PointGroup group("m-3");
  const auto equivalents = group.equivalents({1.1, 2.2, 3.3});
  EXPECT_EQ(equivalents.size(), 24u); // general position: no coincidences
}

TEST(PointGroup, EquivalentsOfSpecialPositionCollapse) {
  const PointGroup group("m-3m");
  // (1,0,0) sits on several symmetry elements: only 6 distinct images.
  EXPECT_EQ(group.equivalents({1, 0, 0}).size(), 6u);
  // Origin maps to itself under everything.
  EXPECT_EQ(group.equivalents({0, 0, 0}).size(), 1u);
}

TEST(PointGroup, MatricesTableMatchesOrder) {
  const PointGroup group("-3");
  EXPECT_EQ(group.matrices().size(), group.order());
}

TEST(PointGroup, UnknownSymbolThrows) {
  EXPECT_THROW(PointGroup("icosahedral"), InvalidArgument);
  EXPECT_THROW(PointGroup(""), InvalidArgument);
}

TEST(PointGroup, FromGeneratorsClosure) {
  const auto gen = SymmetryOperation::fromJones("-y,x,z"); // 4-fold
  const auto group = PointGroup::fromGenerators("custom-4", {gen});
  EXPECT_EQ(group.order(), 4u);
  EXPECT_EQ(group.symbol(), "custom-4");
}

TEST(PointGroup, SupportedSymbolsAllConstruct) {
  for (const auto& symbol : PointGroup::supportedSymbols()) {
    EXPECT_NO_THROW(PointGroup{symbol}) << symbol;
  }
}

TEST(PointGroup, InversionSymmetricGroupsHaveEvenOrder) {
  for (const char* symbol : {"-1", "2/m", "mmm", "4/m", "-3", "-3m", "m-3"}) {
    const PointGroup group(symbol);
    EXPECT_EQ(group.order() % 2, 0u) << symbol;
    // And they contain the inversion itself.
    const auto inversion = SymmetryOperation::fromJones("-x,-y,-z");
    bool found = false;
    for (const auto& op : group.operations()) {
      if (op == inversion) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << symbol;
  }
}

} // namespace
} // namespace vates
