// Tests for the raw TOF event layer and the ConvertToMD kernel: the
// LoadEventNexus -> MDEventWorkspace path of the Garnet workflow.

#include "vates/events/experiment_setup.hpp"
#include "vates/geometry/detector_mask.hpp"
#include "vates/kernels/convert_to_md.hpp"
#include "vates/kernels/mdnorm.hpp"
#include "vates/kernels/transforms.hpp"
#include "vates/units/units.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace vates {
namespace {

class RawConversionTest : public ::testing::Test {
protected:
  RawConversionTest() : setup_(WorkloadSpec::benzilCorelli(0.002)) {}
  ExperimentSetup setup_;
};

// ---------------------------------------------------------------------------
// RawEventList

TEST(RawEventList, AppendAndAccess) {
  RawEventList raw;
  raw.append(17, 4550.0, 3, 1.5);
  raw.append(42, 980.25, 4, 0.5);
  ASSERT_EQ(raw.size(), 2u);
  EXPECT_EQ(raw.detectorId(0), 17u);
  EXPECT_DOUBLE_EQ(raw.tof(1), 980.25);
  EXPECT_EQ(raw.pulseIndex(1), 4u);
  EXPECT_DOUBLE_EQ(raw.totalWeight(), 2.0);
}

TEST(RawEventList, EqualityAndClear) {
  RawEventList a, b;
  a.append(1, 2.0, 3, 4.0);
  b.append(1, 2.0, 3, 4.0);
  EXPECT_TRUE(a == b);
  b.append(5, 6.0, 7, 8.0);
  EXPECT_FALSE(a == b);
  b.clear();
  EXPECT_TRUE(b.empty());
}

// ---------------------------------------------------------------------------
// Generator raw path

TEST_F(RawConversionTest, RawGenerationDeterministic) {
  const EventGenerator generator = setup_.makeGenerator();
  EXPECT_TRUE(generator.generateRaw(2) == generator.generateRaw(2));
  EXPECT_FALSE(generator.generateRaw(2) == generator.generateRaw(3));
}

TEST_F(RawConversionTest, RawTofsAreKinematic) {
  const EventGenerator generator = setup_.makeGenerator();
  const RunInfo run = generator.runInfo(0);
  const RawEventList raw = generator.generateRaw(0);
  const double lambdaMin = units::wavelengthFromMomentum(run.kMax);
  const double lambdaMax = units::wavelengthFromMomentum(run.kMin);
  for (std::size_t i = 0; i < raw.size(); i += 17) {
    const double path =
        setup_.instrument().totalFlightPath(raw.detectorId(i));
    const double lambda = units::wavelengthFromTof(raw.tof(i), path);
    EXPECT_GE(lambda, lambdaMin - 1e-9);
    EXPECT_LE(lambda, lambdaMax + 1e-9);
  }
}

TEST_F(RawConversionTest, PulseIndicesMonotone) {
  const EventGenerator generator = setup_.makeGenerator();
  const RawEventList raw = generator.generateRaw(1);
  for (std::size_t i = 1; i < raw.size(); ++i) {
    ASSERT_GE(raw.pulseIndex(i), raw.pulseIndex(i - 1));
  }
}

// ---------------------------------------------------------------------------
// ConvertToMD

TEST_F(RawConversionTest, ConversionReproducesDirectGeneration) {
  // The ground truth test: generating Q events directly and converting
  // the raw TOF stream must agree event for event (TOF round-trips
  // through microseconds, so allow small numerical slack).
  const EventGenerator generator = setup_.makeGenerator();
  const RunInfo run = generator.runInfo(4);
  const EventTable direct = generator.generate(4);
  const RawEventList raw = generator.generateRaw(4);
  const EventTable converted = convertToMD(
      Executor(Backend::Serial), setup_.instrument(), nullptr, run, raw);

  ASSERT_EQ(converted.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    ASSERT_NEAR(converted.signal(i), direct.signal(i), 1e-9);
    ASSERT_EQ(converted.detectorId(i), direct.detectorId(i));
    ASSERT_LT(maxAbsDiff(converted.qSample(i), direct.qSample(i)), 1e-6)
        << "event " << i;
  }
}

TEST_F(RawConversionTest, ConversionBackendsAgree) {
  const EventGenerator generator = setup_.makeGenerator();
  const RunInfo run = generator.runInfo(0);
  const RawEventList raw = generator.generateRaw(0);
  const EventTable reference = convertToMD(
      Executor(Backend::Serial), setup_.instrument(), nullptr, run, raw);
  for (const Backend backend :
       {Backend::ThreadPool, Backend::DeviceSim}) {
    const EventTable result = convertToMD(
        Executor(backend), setup_.instrument(), nullptr, run, raw);
    EXPECT_TRUE(result == reference) << backendName(backend);
  }
}

TEST_F(RawConversionTest, MaskedDetectorsAreDropped) {
  const EventGenerator generator = setup_.makeGenerator();
  const RunInfo run = generator.runInfo(0);
  const RawEventList raw = generator.generateRaw(0);

  DetectorMask mask(setup_.instrument().nDetectors());
  mask.maskRandomFraction(0.25, 1234);
  const std::size_t masked = mask.maskedCount();
  ASSERT_GT(masked, 0u);

  EventTable converted = convertToMD(Executor(Backend::Serial),
                                     setup_.instrument(), &mask, run, raw);
  ASSERT_EQ(converted.size(), raw.size());
  std::size_t dropped = 0;
  for (std::size_t i = 0; i < converted.size(); ++i) {
    if (std::isinf(converted.qSample(i).x)) {
      ++dropped;
      EXPECT_TRUE(mask.isMasked(raw.detectorId(i)));
      EXPECT_DOUBLE_EQ(converted.signal(i), 0.0);
    } else {
      EXPECT_FALSE(mask.isMasked(raw.detectorId(i)));
    }
  }
  EXPECT_GT(dropped, 0u);

  const std::size_t removed = compactEvents(converted);
  EXPECT_EQ(removed, dropped);
  EXPECT_EQ(converted.size(), raw.size() - dropped);
  for (std::size_t i = 0; i < converted.size(); ++i) {
    EXPECT_FALSE(std::isinf(converted.qSample(i).x));
  }
}

TEST_F(RawConversionTest, BandFilterDropsOutOfBandTofs) {
  const EventGenerator generator = setup_.makeGenerator();
  RunInfo run = generator.runInfo(0);
  RawEventList raw;
  // One event well inside the band, one far outside (huge TOF = long
  // wavelength = tiny momentum).
  const double pathDetector0 = setup_.instrument().totalFlightPath(0);
  const double lambdaInside =
      0.5 * (units::wavelengthFromMomentum(run.kMin) +
             units::wavelengthFromMomentum(run.kMax));
  raw.append(0, units::tofFromWavelength(lambdaInside, pathDetector0), 0, 2.0);
  raw.append(0, units::tofFromWavelength(50.0, pathDetector0), 0, 2.0);

  EventTable converted = convertToMD(Executor(Backend::Serial),
                                     setup_.instrument(), nullptr, run, raw);
  EXPECT_FALSE(std::isinf(converted.qSample(0).x));
  EXPECT_TRUE(std::isinf(converted.qSample(1).x));

  ConvertOptions noFilter;
  noFilter.filterMomentumBand = false;
  converted = convertToMD(Executor(Backend::Serial), setup_.instrument(),
                          nullptr, run, raw, noFilter);
  EXPECT_FALSE(std::isinf(converted.qSample(1).x));
}

TEST_F(RawConversionTest, LorentzCorrectionScalesWeights) {
  const EventGenerator generator = setup_.makeGenerator();
  const RunInfo run = generator.runInfo(0);
  const RawEventList raw = generator.generateRaw(0);

  ConvertOptions lorentz;
  lorentz.lorentzCorrection = true;
  const EventTable plain = convertToMD(Executor(Backend::Serial),
                                       setup_.instrument(), nullptr, run, raw);
  const EventTable corrected = convertToMD(
      Executor(Backend::Serial), setup_.instrument(), nullptr, run, raw,
      lorentz);

  for (std::size_t i = 0; i < raw.size(); i += 23) {
    if (plain.signal(i) == 0.0) {
      continue;
    }
    const std::uint32_t detector = raw.detectorId(i);
    const double path = setup_.instrument().totalFlightPath(detector);
    const double lambda = units::wavelengthFromTof(raw.tof(i), path);
    const double sinHalf =
        std::sin(0.5 * setup_.instrument().twoTheta(detector));
    const double expectedFactor =
        sinHalf * sinHalf / (lambda * lambda * lambda * lambda);
    ASSERT_NEAR(corrected.signal(i), plain.signal(i) * expectedFactor,
                1e-9 * std::max(1.0, plain.signal(i) * expectedFactor));
  }
  // Lorentz correction preserves coordinates.
  for (std::size_t i = 0; i < raw.size(); i += 101) {
    ASSERT_LT(maxAbsDiff(corrected.qSample(i), plain.qSample(i)), 1e-15);
  }
}

// ---------------------------------------------------------------------------
// DetectorMask

TEST(DetectorMask, BasicOperations) {
  DetectorMask mask(100);
  EXPECT_EQ(mask.maskedCount(), 0u);
  mask.mask(5);
  mask.mask(5); // idempotent
  mask.mask(99);
  EXPECT_EQ(mask.maskedCount(), 2u);
  EXPECT_TRUE(mask.isMasked(5));
  EXPECT_FALSE(mask.isMasked(6));
  mask.unmask(5);
  EXPECT_EQ(mask.maskedCount(), 1u);
  EXPECT_THROW(mask.mask(100), InvalidArgument);
}

TEST(DetectorMask, BeamStopMasksLowAngles) {
  const Instrument instrument = Instrument::corelliLike(2000);
  DetectorMask mask(instrument.nDetectors());
  const double cutoff = 10.0 * M_PI / 180.0;
  const std::size_t newlyMasked = mask.maskTwoThetaBelow(instrument, cutoff);
  EXPECT_GT(newlyMasked, 0u);
  EXPECT_LT(newlyMasked, instrument.nDetectors());
  for (std::size_t d = 0; d < instrument.nDetectors(); ++d) {
    EXPECT_EQ(mask.isMasked(d), instrument.twoTheta(d) < cutoff);
  }
}

TEST(DetectorMask, RandomFractionApproximate) {
  DetectorMask mask(20000);
  const std::size_t newlyMasked = mask.maskRandomFraction(0.1, 7);
  EXPECT_NEAR(static_cast<double>(newlyMasked), 2000.0, 200.0);
  // Deterministic per seed.
  DetectorMask again(20000);
  again.maskRandomFraction(0.1, 7);
  EXPECT_EQ(again.maskedCount(), newlyMasked);
  EXPECT_THROW(mask.maskRandomFraction(1.5, 7), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Mask consistency between MDNorm and ConvertToMD

TEST_F(RawConversionTest, MaskedReductionStaysUnbiased) {
  // Masking pixels must remove them from BOTH the signal (via
  // conversion) and the normalization (via the MDNorm mask input);
  // the cross-section over the surviving coverage stays comparable.
  const EventGenerator generator = setup_.makeGenerator();
  const RunInfo run = generator.runInfo(0);

  DetectorMask mask(setup_.instrument().nDetectors());
  mask.maskRandomFraction(0.5, 99);

  const auto transforms =
      mdNormTransforms(setup_.projection(), setup_.lattice(),
                       setup_.symmetryMatrices(), run.goniometerR);
  MDNormInputs inputs;
  inputs.transforms = transforms;
  inputs.qLabDirections = setup_.instrument().qLabDirections();
  inputs.solidAngles = setup_.instrument().solidAngles();
  inputs.flux = setup_.flux().view();
  inputs.protonCharge = run.protonCharge;
  inputs.kMin = run.kMin;
  inputs.kMax = run.kMax;

  Histogram3D unmasked = setup_.makeHistogram();
  runMDNorm(Executor(Backend::Serial), inputs, unmasked.gridView());

  inputs.detectorMask = mask.flags().data();
  Histogram3D masked = setup_.makeHistogram();
  runMDNorm(Executor(Backend::Serial), inputs, masked.gridView());

  EXPECT_LT(masked.totalSignal(), unmasked.totalSignal());
  EXPECT_GT(masked.totalSignal(), 0.0);
  // Every bin's masked normalization is <= the unmasked one (masking
  // only removes contributions).
  for (std::size_t i = 0; i < masked.size(); i += 503) {
    ASSERT_LE(masked.data()[i], unmasked.data()[i] + 1e-12);
  }
}

} // namespace
} // namespace vates
