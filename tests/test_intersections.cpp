// Property tests for the trajectory/grid-plane intersection kernel —
// the numerical heart of MDNorm.

#include "vates/histogram/histogram3d.hpp"
#include "vates/kernels/comb_sort.hpp"
#include "vates/kernels/intersections.hpp"
#include "vates/support/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace vates {
namespace {

GridView sliceGrid(Histogram3D& histogram) { return histogram.gridView(); }

Histogram3D makeGrid(std::size_t nx = 20, std::size_t ny = 20,
                     std::size_t nz = 1) {
  return Histogram3D(BinAxis("x", -5.0, 5.0, nx), BinAxis("y", -5.0, 5.0, ny),
                     BinAxis("z", -0.5, 0.5, nz));
}

TEST(Intersections, AxisAlignedRayCrossesExpectedPlanes) {
  Histogram3D histogram = makeGrid(10, 10, 1);
  const GridView grid = sliceGrid(histogram);
  std::vector<Intersection> buffer(maxIntersections(grid));
  // Ray along +x only (z stays at 0, inside the slab): p(k) = (k·0.5, 0, 0).
  const V3 t{0.5, 0.0, 0.0};
  const std::size_t count = calculateIntersections(
      grid, t, 1.0, 9.0, PlaneSearch::Roi, buffer.data());
  // x sweeps [0.5, 4.5]: crosses x-planes at 1,2,3,4 (x=0.5..4.5, planes
  // spaced 1.0 from -5), plus y=0 plane? t.y = 0 so no y crossings; z=0
  // crossing: t.z = 0, none.  Plus 2 endpoints inside.
  std::size_t xPlanes = 0, endpoints = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (buffer[i].k == 1.0 || buffer[i].k == 9.0) {
      ++endpoints;
    } else {
      ++xPlanes;
      // Each crossing must sit exactly on an x grid plane.
      const double shifted = (buffer[i].x + 5.0); // plane pitch 1.0
      EXPECT_NEAR(shifted, std::round(shifted), 1e-9);
    }
  }
  EXPECT_EQ(endpoints, 2u);
  EXPECT_EQ(xPlanes, 4u);
}

TEST(Intersections, RayOutsideBoxYieldsNothing) {
  Histogram3D histogram = makeGrid();
  const GridView grid = sliceGrid(histogram);
  std::vector<Intersection> buffer(maxIntersections(grid));
  // z component pushes the ray out of the thin slab immediately.
  const V3 t{0.1, 0.1, 5.0};
  const std::size_t count = calculateIntersections(
      grid, t, 2.0, 9.0, PlaneSearch::Roi, buffer.data());
  EXPECT_EQ(count, 0u);
}

TEST(Intersections, CountNeverExceedsPaperBound) {
  Histogram3D histogram = makeGrid(31, 17, 3);
  const GridView grid = sliceGrid(histogram);
  std::vector<Intersection> buffer(maxIntersections(grid));
  Xoshiro256 rng(123);
  for (int trial = 0; trial < 500; ++trial) {
    const V3 t{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-0.2, 0.2)};
    const std::size_t count = calculateIntersections(
        grid, t, 1.0, 10.0, PlaneSearch::Roi, buffer.data());
    EXPECT_LE(count, maxIntersections(grid));
  }
}

// Property sweep across random trajectories: both strategies agree, all
// crossings lie on planes, all are within the band and the box.
class IntersectionProperties : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(RandomSeeds, IntersectionProperties,
                         ::testing::Range(0, 16));

TEST_P(IntersectionProperties, RoiAndLinearAgree) {
  Histogram3D histogram = makeGrid(25, 19, 2);
  const GridView grid = sliceGrid(histogram);
  std::vector<Intersection> roiBuffer(maxIntersections(grid));
  std::vector<Intersection> linearBuffer(maxIntersections(grid));
  Xoshiro256 rng(1000 + static_cast<std::uint64_t>(GetParam()));

  for (int trial = 0; trial < 50; ++trial) {
    const V3 t{rng.uniform(-1.5, 1.5), rng.uniform(-1.5, 1.5),
               rng.uniform(-0.3, 0.3)};
    const double kMin = rng.uniform(0.5, 3.0);
    const double kMax = kMin + rng.uniform(0.5, 8.0);

    const std::size_t roiCount = calculateIntersections(
        grid, t, kMin, kMax, PlaneSearch::Roi, roiBuffer.data());
    const std::size_t linearCount = calculateIntersections(
        grid, t, kMin, kMax, PlaneSearch::Linear, linearBuffer.data());

    ASSERT_EQ(roiCount, linearCount) << "t=" << t;
    // Same multiset of momenta (ordering within axes is identical).
    std::vector<double> roiKeys, linearKeys;
    for (std::size_t i = 0; i < roiCount; ++i) {
      roiKeys.push_back(roiBuffer[i].k);
      linearKeys.push_back(linearBuffer[i].k);
    }
    std::sort(roiKeys.begin(), roiKeys.end());
    std::sort(linearKeys.begin(), linearKeys.end());
    for (std::size_t i = 0; i < roiCount; ++i) {
      ASSERT_NEAR(roiKeys[i], linearKeys[i], 1e-12);
    }
  }
}

TEST_P(IntersectionProperties, CrossingsLieOnRayWithinBandAndBox) {
  Histogram3D histogram = makeGrid(23, 29, 2);
  const GridView grid = sliceGrid(histogram);
  std::vector<Intersection> buffer(maxIntersections(grid));
  Xoshiro256 rng(2000 + static_cast<std::uint64_t>(GetParam()));

  for (int trial = 0; trial < 50; ++trial) {
    const V3 t{rng.uniform(-1.5, 1.5), rng.uniform(-1.5, 1.5),
               rng.uniform(-0.3, 0.3)};
    const double kMin = rng.uniform(0.5, 3.0);
    const double kMax = kMin + rng.uniform(0.5, 8.0);
    const std::size_t count = calculateIntersections(
        grid, t, kMin, kMax, PlaneSearch::Roi, buffer.data());
    for (std::size_t i = 0; i < count; ++i) {
      const Intersection& p = buffer[i];
      // Within the momentum band.
      ASSERT_GE(p.k, kMin - 1e-9);
      ASSERT_LE(p.k, kMax + 1e-9);
      // On the ray.
      ASSERT_NEAR(p.x, t.x * p.k, 1e-9);
      ASSERT_NEAR(p.y, t.y * p.k, 1e-9);
      ASSERT_NEAR(p.z, t.z * p.k, 1e-9);
      // Inside (or on the boundary of) the box.
      for (std::size_t axis = 0; axis < 3; ++axis) {
        const double value = axis == 0 ? p.x : (axis == 1 ? p.y : p.z);
        ASSERT_GE(value, grid.min[axis] - 1e-6);
        ASSERT_LE(value, grid.max[axis] + 1e-6);
      }
    }
  }
}

TEST_P(IntersectionProperties, SegmentInsideBoxKeepsEndpoints) {
  Histogram3D histogram = makeGrid(40, 40, 1);
  const GridView grid = sliceGrid(histogram);
  std::vector<Intersection> buffer(maxIntersections(grid));
  Xoshiro256 rng(3000 + static_cast<std::uint64_t>(GetParam()));

  for (int trial = 0; trial < 30; ++trial) {
    // Construct a short segment strictly inside the box, z = 0 plane.
    const double kMin = 1.0, kMax = 1.5;
    const V3 t{rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0), 0.0};
    const std::size_t count = calculateIntersections(
        grid, t, kMin, kMax, PlaneSearch::Roi, buffer.data());
    int endpointHits = 0;
    for (std::size_t i = 0; i < count; ++i) {
      if (buffer[i].k == kMin || buffer[i].k == kMax) {
        ++endpointHits;
      }
    }
    EXPECT_EQ(endpointHits, 2) << "t=" << t;
  }
}

// ---------------------------------------------------------------------------
// Comb sort

class CombSortSizes : public ::testing::TestWithParam<std::size_t> {};

INSTANTIATE_TEST_SUITE_P(Sizes, CombSortSizes,
                         ::testing::Values(0, 1, 2, 3, 10, 100, 1209, 5000));

TEST_P(CombSortSizes, KeysMatchStdSort) {
  const std::size_t n = GetParam();
  Xoshiro256 rng(42 + n);
  std::vector<double> keys(n);
  for (auto& k : keys) {
    k = rng.uniform(-1000, 1000);
  }
  std::vector<double> expected = keys;
  std::sort(expected.begin(), expected.end());
  combSortKeys(keys.data(), nullptr, n);
  EXPECT_EQ(keys, expected);
}

TEST_P(CombSortSizes, IndicesFollowKeys) {
  const std::size_t n = GetParam();
  Xoshiro256 rng(77 + n);
  std::vector<double> keys(n);
  std::vector<double> original(n);
  std::vector<std::uint32_t> indices(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = original[i] = rng.uniform(0, 1);
    indices[i] = static_cast<std::uint32_t>(i);
  }
  combSortKeys(keys.data(), indices.data(), n);
  for (std::size_t i = 0; i < n; ++i) {
    // The index array permutes exactly with the keys.
    EXPECT_DOUBLE_EQ(keys[i], original[indices[i]]);
    if (i > 0) {
      EXPECT_LE(keys[i - 1], keys[i]);
    }
  }
}

TEST_P(CombSortSizes, StructSortMatchesKeySort) {
  const std::size_t n = GetParam();
  Xoshiro256 rng(99 + n);
  std::vector<Intersection> structs(n);
  std::vector<double> keys(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double k = rng.uniform(0, 100);
    structs[i] = Intersection{k * 2, k * 3, k * 4, k};
    keys[i] = k;
  }
  combSortStructs(structs.data(), n, [](const Intersection& p) { return p.k; });
  combSortKeys(keys.data(), nullptr, n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(structs[i].k, keys[i]);
    // Payload moved with the key.
    EXPECT_DOUBLE_EQ(structs[i].x, keys[i] * 2);
  }
}

TEST(CombSort, AlreadySortedAndReversed) {
  std::vector<double> ascending{1, 2, 3, 4, 5};
  combSortKeys(ascending.data(), nullptr, ascending.size());
  EXPECT_EQ(ascending, (std::vector<double>{1, 2, 3, 4, 5}));

  std::vector<double> descending{5, 4, 3, 2, 1};
  combSortKeys(descending.data(), nullptr, descending.size());
  EXPECT_EQ(descending, (std::vector<double>{1, 2, 3, 4, 5}));
}

TEST(CombSort, DuplicateKeysStaySorted) {
  std::vector<double> keys{3, 1, 3, 1, 2, 2, 3};
  combSortKeys(keys.data(), nullptr, keys.size());
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

} // namespace
} // namespace vates
