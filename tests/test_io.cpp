// Tests for the nxlite container, run files (incl. failure injection),
// and grid writers.

#include "vates/events/generator.hpp"
#include "vates/io/crc32.hpp"
#include "vates/io/event_file.hpp"
#include "vates/io/grid_writers.hpp"
#include "vates/io/histogram_file.hpp"
#include "vates/io/nxlite.hpp"
#include "vates/support/error.hpp"
#include "vates/support/rng.hpp"
#include "vates/verify/diff.hpp"
#include "vates/verify/fuzz_inputs.hpp"
#include "vates/verify/reference_oracle.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

namespace vates {
namespace {

/// Temporary directory wiped per test.
class IoTest : public ::testing::Test {
protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("vates_io_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& leaf) const {
    return (dir_ / leaf).string();
  }

  std::filesystem::path dir_;
};

// ---------------------------------------------------------------------------
// CRC32

TEST(Crc32, KnownVector) {
  // The canonical check value: CRC32("123456789") = 0xCBF43926.
  const char digits[] = "123456789";
  EXPECT_EQ(crc32(digits, 9), 0xCBF43926u);
}

TEST(Crc32, EmptyIsZero) { EXPECT_EQ(crc32("", 0), 0u); }

TEST(Crc32, ChainedEqualsWhole) {
  const char data[] = "hello, neutron world";
  const std::size_t n = sizeof(data) - 1;
  const std::uint32_t whole = crc32(data, n);
  const std::uint32_t first = crc32(data, 7);
  const std::uint32_t chained = crc32(data + 7, n - 7, first);
  EXPECT_EQ(chained, whole);
}

TEST(Crc32, SensitiveToSingleBitFlip) {
  std::vector<unsigned char> data(1024, 0xAB);
  const std::uint32_t before = crc32(data.data(), data.size());
  data[512] ^= 0x01;
  EXPECT_NE(crc32(data.data(), data.size()), before);
}

// ---------------------------------------------------------------------------
// nxlite round trips

TEST_F(IoTest, RoundTripAllTypes) {
  const std::string file = path("roundtrip.nxl");
  std::vector<double> doubles{1.5, -2.5, 3.25, 0.0};
  std::vector<std::uint64_t> uints{1, 2, 3, 1ull << 60};
  std::vector<std::uint32_t> small{7, 8};
  {
    nx::Writer writer(file);
    writer.writeFloat64("doubles", doubles, {2, 2});
    writer.writeUInt64("uints", uints);
    writer.writeUInt32("small", small);
    writer.writeScalar("scalar", 42.5);
    writer.close();
  }
  nx::Reader reader(file);
  EXPECT_EQ(reader.datasets().size(), 4u);
  EXPECT_TRUE(reader.has("doubles"));
  EXPECT_FALSE(reader.has("absent"));
  EXPECT_EQ(reader.readFloat64("doubles"), doubles);
  EXPECT_EQ(reader.readUInt64("uints"), uints);
  EXPECT_EQ(reader.readUInt32("small"), small);
  EXPECT_DOUBLE_EQ(reader.readScalar("scalar"), 42.5);
  const auto& info = reader.info("doubles");
  EXPECT_EQ(info.shape, (std::vector<std::uint64_t>{2, 2}));
  EXPECT_EQ(info.dtype, nx::DType::Float64);
}

TEST_F(IoTest, RandomDatasetsBitExact) {
  const std::string file = path("random.nxl");
  Xoshiro256 rng(777);
  std::vector<std::vector<double>> payloads;
  {
    nx::Writer writer(file);
    for (int d = 0; d < 20; ++d) {
      std::vector<double> data(1 + rng.uniformInt(5000));
      for (auto& v : data) {
        v = rng.normal(0.0, 1e6);
      }
      writer.writeFloat64("ds" + std::to_string(d), data);
      payloads.push_back(std::move(data));
    }
  } // destructor closes
  nx::Reader reader(file);
  for (int d = 0; d < 20; ++d) {
    EXPECT_EQ(reader.readFloat64("ds" + std::to_string(d)),
              payloads[static_cast<std::size_t>(d)]);
  }
}

TEST_F(IoTest, EmptyDatasetSupported) {
  const std::string file = path("empty.nxl");
  {
    nx::Writer writer(file);
    writer.writeFloat64("nothing", std::span<const double>{});
    writer.close();
  }
  nx::Reader reader(file);
  EXPECT_TRUE(reader.readFloat64("nothing").empty());
}

TEST_F(IoTest, TypeAndShapeMismatchesThrow) {
  const std::string file = path("types.nxl");
  {
    nx::Writer writer(file);
    std::vector<double> data{1.0};
    writer.writeFloat64("d", data);
    writer.close();
  }
  nx::Reader reader(file);
  EXPECT_THROW(reader.readUInt64("d"), IOError);
  EXPECT_THROW(reader.readFloat64("missing"), IOError);
  EXPECT_THROW(reader.info("missing"), IOError);
}

TEST_F(IoTest, WriterRejectsBadShapes) {
  nx::Writer writer(path("bad.nxl"));
  std::vector<double> data{1.0, 2.0, 3.0};
  EXPECT_THROW(writer.writeFloat64("x", data, {2, 2}), InvalidArgument);
  EXPECT_THROW(writer.writeFloat64("", data), InvalidArgument);
  EXPECT_THROW(writer.writeFloat64("deep", data, {3, 1, 1, 1, 1}),
               InvalidArgument);
}

// ---------------------------------------------------------------------------
// Failure injection

TEST_F(IoTest, MissingFileThrows) {
  EXPECT_THROW(nx::Reader(path("does_not_exist.nxl")), IOError);
}

TEST_F(IoTest, BadMagicRejected) {
  const std::string file = path("magic.nxl");
  std::ofstream(file) << "HDF5FILE-this-is-not-nxlite-padding-padding";
  EXPECT_THROW(nx::Reader{file}, IOError);
}

TEST_F(IoTest, TruncatedFileRejected) {
  const std::string file = path("trunc.nxl");
  {
    nx::Writer writer(file);
    std::vector<double> data(1000, 1.0);
    writer.writeFloat64("d", data);
    writer.close();
  }
  // Chop the last 100 bytes.
  const auto size = std::filesystem::file_size(file);
  std::filesystem::resize_file(file, size - 100);
  EXPECT_THROW(nx::Reader{file}, IOError);
}

TEST_F(IoTest, CorruptPayloadFailsCrc) {
  const std::string file = path("corrupt.nxl");
  {
    nx::Writer writer(file);
    std::vector<double> data(100, 3.0);
    writer.writeFloat64("d", data);
    writer.close();
  }
  // Flip one byte inside the payload (well past the header).
  std::fstream stream(file,
                      std::ios::in | std::ios::out | std::ios::binary);
  stream.seekp(64, std::ios::beg);
  char byte = 0;
  stream.read(&byte, 1);
  stream.seekp(64, std::ios::beg);
  byte = static_cast<char>(byte ^ 0xFF);
  stream.write(&byte, 1);
  stream.close();

  nx::Reader reader(file); // directory scan is size-based, still fine
  EXPECT_THROW(reader.readFloat64("d"), IOError);
}

// ---------------------------------------------------------------------------
// Run files

TEST_F(IoTest, RunFileRoundTrip) {
  EventTable events;
  Xoshiro256 rng(99);
  for (int i = 0; i < 500; ++i) {
    events.append(rng.uniform(), rng.uniform(), 7.0, rng.uniformInt(100), 7.0,
                  V3{rng.normal(), rng.normal(), rng.normal()});
  }
  RunInfo run;
  run.runIndex = 7;
  run.goniometerR = rotationAboutAxis({0, 1, 0}, 0.3);
  run.protonCharge = 1.25;
  run.kMin = 2.1;
  run.kMax = 8.9;

  const std::string file = path("run.nxl");
  saveRunFile(file, run, events);
  const RunFileContent content = loadRunFile(file);

  EXPECT_TRUE(content.events == events);
  EXPECT_EQ(content.run.runIndex, 7u);
  EXPECT_LT(maxAbsDiff(content.run.goniometerR, run.goniometerR), 1e-15);
  EXPECT_DOUBLE_EQ(content.run.protonCharge, 1.25);
  EXPECT_DOUBLE_EQ(content.run.kMin, 2.1);
  EXPECT_DOUBLE_EQ(content.run.kMax, 8.9);
}

TEST_F(IoTest, RawRunFileRoundTrip) {
  RawEventList events;
  Xoshiro256 rng(123);
  for (int i = 0; i < 800; ++i) {
    events.append(static_cast<std::uint32_t>(rng.uniformInt(500)),
                  rng.uniform(100.0, 20000.0),
                  static_cast<std::uint32_t>(i / 10), rng.uniform(0.1, 3.0));
  }
  RunInfo run;
  run.runIndex = 11;
  run.goniometerR = rotationAboutAxis({0, 1, 0}, -0.4);
  run.protonCharge = 0.75;
  run.kMin = 1.9;
  run.kMax = 9.5;

  const std::string file = path("raw_run.nxl");
  saveRawRunFile(file, run, events);
  const RawRunFileContent content = loadRawRunFile(file);
  EXPECT_TRUE(content.events == events);
  EXPECT_EQ(content.run.runIndex, 11u);
  EXPECT_DOUBLE_EQ(content.run.protonCharge, 0.75);
  EXPECT_LT(maxAbsDiff(content.run.goniometerR, run.goniometerR), 1e-15);
}

TEST_F(IoTest, RawRunFileRejectsLengthMismatch) {
  const std::string file = path("raw_bad.nxl");
  {
    nx::Writer writer(file);
    const std::vector<std::uint32_t> ids{1, 2, 3};
    const std::vector<double> tofs{1.0, 2.0}; // wrong length
    const std::vector<std::uint32_t> pulses{0, 0, 0};
    const std::vector<double> weights{1.0, 1.0, 1.0};
    writer.writeUInt32("event_id", ids);
    writer.writeFloat64("event_time_offset", tofs);
    writer.writeUInt32("event_pulse_index", pulses);
    writer.writeFloat64("event_weight", weights);
    writer.close();
  }
  EXPECT_THROW(loadRawRunFile(file), IOError);
}

TEST_F(IoTest, RawRunFilePathFormat) {
  EXPECT_EQ(rawRunFilePath("/data", "bixbyite-topaz", 12),
            "/data/bixbyite-topaz_raw_0012.nxl");
}

TEST_F(IoTest, RunFilePathFormat) {
  EXPECT_EQ(runFilePath("/data", "benzil-corelli", 3),
            "/data/benzil-corelli_run_0003.nxl");
}

TEST_F(IoTest, RunFileRejectsWrongEventShape) {
  const std::string file = path("badevents.nxl");
  {
    nx::Writer writer(file);
    std::vector<double> notNx8(21, 1.0);
    writer.writeFloat64("events", notNx8, {3, 7});
    writer.writeFloat64("goniometer", std::vector<double>(9, 0.0),
                        {3, 3});
    writer.writeScalar("proton_charge", 1.0);
    writer.close();
  }
  EXPECT_THROW(loadRunFile(file), IOError);
}

// ---------------------------------------------------------------------------
// Histogram / reduced-data files

TEST_F(IoTest, HistogramFileRoundTrip) {
  Histogram3D histogram(BinAxis("[H,H]", -7.5, 7.5, 31),
                        BinAxis("[H,-H]", -7.5, 7.5, 17),
                        BinAxis("[L]", -0.1, 0.1, 3),
                        Projection::benzilSlice());
  Xoshiro256 rng(4242);
  for (int i = 0; i < 500; ++i) {
    histogram.addSerial({rng.uniform(-7.5, 7.5), rng.uniform(-7.5, 7.5),
                         rng.uniform(-0.1, 0.1)},
                        rng.uniform(0.1, 5.0));
  }
  const std::string file = path("histogram.nxl");
  saveHistogram(file, histogram);
  const Histogram3D loaded = loadHistogram(file);

  EXPECT_TRUE(loaded.sameShape(histogram));
  for (std::size_t i = 0; i < histogram.size(); ++i) {
    ASSERT_EQ(loaded.data()[i], histogram.data()[i]); // bit exact
  }
  // Projection basis survived.
  EXPECT_LT(maxAbsDiff(loaded.projection().u(), V3{1, 1, 0}), 1e-15);
  EXPECT_LT(maxAbsDiff(loaded.projection().v(), V3{1, -1, 0}), 1e-15);
}

TEST_F(IoTest, ReducedDataRoundTrip) {
  Histogram3D signal(BinAxis("x", 0, 4, 8), BinAxis("y", 0, 4, 8),
                     BinAxis("z", 0, 1, 1));
  Histogram3D norm = signal.emptyLike();
  signal.addSerial({1.1, 2.2, 0.5}, 8.0);
  norm.addSerial({1.1, 2.2, 0.5}, 2.0);
  const Histogram3D crossSection = Histogram3D::divide(signal, norm);

  const std::string file = path("reduced.nxl");
  saveReducedData(file, signal, norm, crossSection);
  const ReducedData loaded = loadReducedData(file);
  EXPECT_DOUBLE_EQ(loaded.signal.totalSignal(), 8.0);
  EXPECT_DOUBLE_EQ(loaded.normalization.totalSignal(), 2.0);
  const auto index = signal.locate({1.1, 2.2, 0.5}).value();
  EXPECT_DOUBLE_EQ(loaded.crossSection.data()[index], 4.0);
  // NaN bins survive the round trip as NaN.
  std::size_t nanBins = 0;
  for (double value : loaded.crossSection.data()) {
    if (std::isnan(value)) {
      ++nanBins;
    }
  }
  EXPECT_EQ(nanBins, crossSection.size() - 1);
}

TEST_F(IoTest, ReducedDataShapeMismatchThrows) {
  Histogram3D a(BinAxis("x", 0, 1, 2), BinAxis("y", 0, 1, 2),
                BinAxis("z", 0, 1, 1));
  Histogram3D b(BinAxis("x", 0, 1, 3), BinAxis("y", 0, 1, 2),
                BinAxis("z", 0, 1, 1));
  EXPECT_THROW(saveReducedData(path("bad.nxl"), a, b, a), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Oracle-golden round trips: the golden files committed under
// tests/golden/ go through exactly this save/load path, so these pin
// the bit-identity and damage-detection guarantees the golden
// regression (test_oracle_diff) depends on.

TEST_F(IoTest, OracleGoldenRoundTripIsBitIdentical) {
  for (const verify::FuzzExperiment& experiment :
       verify::goldenExperiments()) {
    const ExperimentSetup setup = verify::makeSetup(experiment);
    const verify::OracleResult oracle = verify::referenceReduce(setup);
    const std::string file = path(experiment.name + ".nxl");
    saveReducedData(file, oracle.signal, oracle.normalization,
                    oracle.crossSection);
    const ReducedData loaded = loadReducedData(file);

    const auto check = [&](const char* what, const Histogram3D& expected,
                           const Histogram3D& actual) {
      // Bitwise: NaN payloads included — the loader must hand back the
      // exact bytes the oracle produced.
      const verify::DiffReport report = verify::compareHistograms(
          expected, actual, verify::Tolerance::bitwise(),
          experiment.name + " roundtrip " + what);
      EXPECT_TRUE(report.pass) << report.summary();
    };
    check("signal", oracle.signal, loaded.signal);
    check("normalization", oracle.normalization, loaded.normalization);
    check("crossSection", oracle.crossSection, loaded.crossSection);
    EXPECT_TRUE(loaded.signal.sameShape(oracle.signal));
  }
}

TEST_F(IoTest, TruncatedGoldenReturnsErrorNotCrash) {
  const verify::FuzzExperiment experiment =
      verify::goldenExperiments().front();
  const ExperimentSetup setup = verify::makeSetup(experiment);
  const verify::OracleResult oracle = verify::referenceReduce(setup);
  const std::string file = path("truncated_golden.nxl");
  saveReducedData(file, oracle.signal, oracle.normalization,
                  oracle.crossSection);

  const auto fullSize = std::filesystem::file_size(file);
  // Cut at several depths: mid-directory, mid-payload, almost-complete.
  for (const std::uintmax_t keep :
       {fullSize / 8, fullSize / 2, fullSize - 16}) {
    std::filesystem::resize_file(file, keep);
    EXPECT_THROW(loadReducedData(file), IOError) << "kept " << keep
                                                 << " of " << fullSize;
  }
}

TEST_F(IoTest, CorruptGoldenFailsCrcNotCrash) {
  const verify::FuzzExperiment experiment =
      verify::goldenExperiments().front();
  const ExperimentSetup setup = verify::makeSetup(experiment);
  const verify::OracleResult oracle = verify::referenceReduce(setup);
  const std::string file = path("corrupt_golden.nxl");
  saveReducedData(file, oracle.signal, oracle.normalization,
                  oracle.crossSection);

  // Flip one payload byte in the middle of the file: some dataset's
  // CRC no longer matches, and the loader must report it as an IOError
  // rather than silently returning bent bins.
  const auto offset =
      static_cast<std::streamoff>(std::filesystem::file_size(file) / 2);
  std::fstream stream(file, std::ios::in | std::ios::out | std::ios::binary);
  stream.seekg(offset);
  char byte = 0;
  stream.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x5A);
  stream.seekp(offset);
  stream.write(&byte, 1);
  stream.close();

  EXPECT_THROW(loadReducedData(file), IOError);
}

// ---------------------------------------------------------------------------
// Grid writers

TEST_F(IoTest, CsvSliceWritesGrid) {
  Histogram3D histogram(BinAxis("x", 0, 4, 4), BinAxis("y", 0, 3, 3),
                        BinAxis("z", 0, 1, 1));
  histogram.addSerial({0.5, 0.5, 0.5}, 2.5);
  const std::string file = path("slice.csv");
  writeCsvSlice(file, histogram);
  std::ifstream stream(file);
  std::string header, firstRow;
  std::getline(stream, header);
  std::getline(stream, firstRow);
  EXPECT_EQ(header.front(), '#');
  EXPECT_EQ(firstRow, "2.5,0,0,0");
}

TEST_F(IoTest, PgmSliceHasValidHeader) {
  Histogram3D histogram(BinAxis("x", 0, 4, 40), BinAxis("y", 0, 3, 30),
                        BinAxis("z", 0, 1, 1));
  histogram.fill(1.0);
  histogram.addSerial({1.0, 1.0, 0.5}, 100.0);
  const std::string file = path("slice.pgm");
  writePgmSlice(file, histogram);
  std::ifstream stream(file, std::ios::binary);
  std::string magic;
  int width = 0, height = 0, maxValue = 0;
  stream >> magic >> width >> height >> maxValue;
  EXPECT_EQ(magic, "P5");
  EXPECT_EQ(width, 40);
  EXPECT_EQ(height, 30);
  EXPECT_EQ(maxValue, 255);
  // Payload must be width*height bytes after one whitespace.
  stream.get();
  std::vector<char> payload(static_cast<std::size_t>(width * height));
  stream.read(payload.data(), static_cast<std::streamsize>(payload.size()));
  EXPECT_EQ(stream.gcount(), width * height);
}

TEST_F(IoTest, SliceStatsCountsCoverage) {
  Histogram3D numerator(BinAxis("x", 0, 2, 2), BinAxis("y", 0, 2, 2),
                        BinAxis("z", 0, 1, 1));
  Histogram3D denominator = numerator.emptyLike();
  numerator.addSerial({0.5, 0.5, 0.5}, 6.0);
  denominator.addSerial({0.5, 0.5, 0.5}, 2.0);
  const Histogram3D ratio = Histogram3D::divide(numerator, denominator);
  const SliceStats stats = computeSliceStats(ratio);
  EXPECT_EQ(stats.coveredBins, 1u);
  EXPECT_EQ(stats.emptyBins, 3u);
  EXPECT_DOUBLE_EQ(stats.maxValue, 3.0);
  EXPECT_DOUBLE_EQ(stats.meanValue, 3.0);
  EXPECT_NEAR(stats.coverage(), 0.25, 1e-12);
}

TEST_F(IoTest, WritersRejectBadSliceIndex) {
  Histogram3D histogram(BinAxis("x", 0, 2, 2), BinAxis("y", 0, 2, 2),
                        BinAxis("z", 0, 1, 1));
  EXPECT_THROW(writeCsvSlice(path("x.csv"), histogram, 5), InvalidArgument);
  EXPECT_THROW(writePgmSlice(path("x.pgm"), histogram, 1), InvalidArgument);
  EXPECT_THROW(computeSliceStats(histogram, 2), InvalidArgument);
}

} // namespace
} // namespace vates
