// Tests for the MDBox event hierarchy (the MDEventWorkspace counterpart
// backing the Garnet-style baseline's BinMD).

#include "vates/events/experiment_setup.hpp"
#include "vates/events/md_box_tree.hpp"
#include "vates/support/error.hpp"
#include "vates/support/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace vates {
namespace {

EventTable uniformEvents(std::size_t n, double extent, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  EventTable table;
  table.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    table.append(1.0, 1.0, 0.0, static_cast<double>(i % 100), 0.0,
                 V3{rng.uniform(-extent, extent), rng.uniform(-extent, extent),
                    rng.uniform(-extent, extent)});
  }
  return table;
}

EventTable clusteredEvents(std::size_t n, std::uint64_t seed) {
  // Half the events in a tight Bragg-like cluster, half spread out.
  Xoshiro256 rng(seed);
  EventTable table;
  table.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 2 == 0) {
      table.append(2.0, 2.0, 0.0, 0.0, 0.0,
                   V3{2.0 + rng.normal(0.0, 0.01), -1.0 + rng.normal(0.0, 0.01),
                      0.5 + rng.normal(0.0, 0.01)});
    } else {
      table.append(0.5, 0.5, 0.0, 0.0, 0.0,
                   V3{rng.uniform(-8, 8), rng.uniform(-8, 8),
                      rng.uniform(-8, 8)});
    }
  }
  return table;
}

TEST(MDBoxTree, PreservesEveryEventExactlyOnce) {
  const EventTable events = uniformEvents(5000, 5.0, 1);
  const MDBoxTree tree(events);
  EXPECT_EQ(tree.totalEvents(), events.size());

  std::set<std::uint32_t> seen;
  tree.forEachLeaf([&](const MDBoxTree::BoxInfo&,
                       std::span<const std::uint32_t> indices) {
    for (const std::uint32_t index : indices) {
      EXPECT_TRUE(seen.insert(index).second) << "duplicate event " << index;
    }
  });
  EXPECT_EQ(seen.size(), events.size());
}

TEST(MDBoxTree, LeafEventsLieInsideTheirBox) {
  const EventTable events = uniformEvents(4000, 3.0, 2);
  const MDBoxTree tree(events);
  tree.forEachLeaf([&](const MDBoxTree::BoxInfo& box,
                       std::span<const std::uint32_t> indices) {
    for (const std::uint32_t index : indices) {
      const V3 q = events.qSample(index);
      for (std::size_t axis = 0; axis < 3; ++axis) {
        ASSERT_GE(q[axis], box.lo[axis]);
        ASSERT_LT(q[axis], box.hi[axis]);
      }
    }
  });
}

TEST(MDBoxTree, RespectsCapacityOrDepthLimit) {
  MDBoxOptions options;
  options.leafCapacity = 32;
  options.maxDepth = 8;
  const EventTable events = uniformEvents(10000, 5.0, 3);
  const MDBoxTree tree(events, options);
  tree.forEachLeaf([&](const MDBoxTree::BoxInfo& box,
                       std::span<const std::uint32_t> indices) {
    EXPECT_TRUE(indices.size() <= options.leafCapacity ||
                box.depth == options.maxDepth)
        << "leaf with " << indices.size() << " events at depth " << box.depth;
  });
  EXPECT_LE(tree.maxDepthUsed(), options.maxDepth);
}

TEST(MDBoxTree, AdaptsToDensity) {
  // The clustered half must drive deep splitting near the cluster while
  // sparse space stays shallow — the "adaptive strategy" of Mantid.
  MDBoxOptions options;
  options.leafCapacity = 32;
  const EventTable events = clusteredEvents(20000, 4);
  const MDBoxTree tree(events, options);

  std::size_t clusterDepth = 0, sparseDepth = 0;
  tree.forEachLeaf([&](const MDBoxTree::BoxInfo& box,
                       std::span<const std::uint32_t> indices) {
    if (indices.empty()) {
      return;
    }
    const V3 center = (box.lo + box.hi) * 0.5;
    const double distanceToCluster = (center - V3{2.0, -1.0, 0.5}).norm();
    if (distanceToCluster < 0.5) {
      clusterDepth = std::max(clusterDepth, box.depth);
    } else if (distanceToCluster > 4.0) {
      sparseDepth = std::max(sparseDepth, box.depth);
    }
  });
  EXPECT_GT(clusterDepth, sparseDepth);
}

TEST(MDBoxTree, SplitFactorThreeWorks) {
  MDBoxOptions options;
  options.splitFactor = 3; // 27 children per split, closer to Mantid's 5
  options.leafCapacity = 50;
  const EventTable events = uniformEvents(5000, 5.0, 5);
  const MDBoxTree tree(events, options);
  EXPECT_EQ(tree.totalEvents(), events.size());
  // Root split produces 27 children at least.
  EXPECT_GE(tree.nBoxes(), 28u);
}

TEST(MDBoxTree, RegionQueryMatchesBruteForce) {
  const EventTable events = clusteredEvents(8000, 6);
  const MDBoxTree tree(events);
  Xoshiro256 rng(77);
  for (int trial = 0; trial < 25; ++trial) {
    V3 lo{rng.uniform(-9, 5), rng.uniform(-9, 5), rng.uniform(-9, 5)};
    V3 hi = lo + V3{rng.uniform(0.5, 6), rng.uniform(0.5, 6),
                    rng.uniform(0.5, 6)};
    double expected = 0.0;
    for (std::size_t i = 0; i < events.size(); ++i) {
      const V3 q = events.qSample(i);
      if (q.x >= lo.x && q.x < hi.x && q.y >= lo.y && q.y < hi.y &&
          q.z >= lo.z && q.z < hi.z) {
        expected += events.signal(i);
      }
    }
    EXPECT_NEAR(tree.signalInRegion(lo, hi), expected, 1e-9)
        << "trial " << trial;
  }
}

TEST(MDBoxTree, WholeDomainQueryEqualsTotalSignal) {
  const EventTable events = uniformEvents(3000, 2.0, 8);
  const MDBoxTree tree(events);
  EXPECT_NEAR(tree.signalInRegion(V3{-100, -100, -100}, V3{100, 100, 100}),
              events.totalSignal(), 1e-9);
}

TEST(MDBoxTree, ExplicitBoundsExcludeOutsideEvents) {
  EventTable events;
  events.append(1.0, 1.0, 0, 0, 0, V3{0.5, 0.5, 0.5}); // inside
  events.append(1.0, 1.0, 0, 0, 0, V3{5.0, 5.0, 5.0}); // outside
  const MDBoxTree tree(events, V3{0, 0, 0}, V3{1, 1, 1});
  EXPECT_EQ(tree.totalEvents(), 1u);
}

TEST(MDBoxTree, EmptyTableIsValid) {
  const EventTable events;
  const MDBoxTree tree(events);
  EXPECT_EQ(tree.totalEvents(), 0u);
  EXPECT_EQ(tree.nBoxes(), 1u);
  EXPECT_DOUBLE_EQ(tree.signalInRegion(V3{-1, -1, -1}, V3{1, 1, 1}), 0.0);
}

TEST(MDBoxTree, DeterministicRebuild) {
  const EventTable events = clusteredEvents(6000, 9);
  const MDBoxTree a(events), b(events);
  EXPECT_EQ(a.nBoxes(), b.nBoxes());
  EXPECT_EQ(a.nLeaves(), b.nLeaves());
  EXPECT_EQ(a.maxDepthUsed(), b.maxDepthUsed());
}

TEST(MDBoxTree, InvalidOptionsThrow) {
  const EventTable events = uniformEvents(10, 1.0, 10);
  MDBoxOptions zeroCapacity;
  zeroCapacity.leafCapacity = 0;
  EXPECT_THROW((MDBoxTree{events, zeroCapacity}), InvalidArgument);
  MDBoxOptions unitSplit;
  unitSplit.splitFactor = 1;
  EXPECT_THROW((MDBoxTree{events, unitSplit}), InvalidArgument);
  EXPECT_THROW((MDBoxTree{events, V3{1, 0, 0}, V3{0, 1, 1}}), InvalidArgument);
}

TEST(MDBoxTree, WorkloadEventsBuildReasonableTree) {
  const ExperimentSetup setup(WorkloadSpec::benzilCorelli(0.002));
  const EventTable events = setup.makeGenerator().generate(0);
  const MDBoxTree tree(events);
  EXPECT_EQ(tree.totalEvents(), events.size());
  EXPECT_GT(tree.nLeaves(), 1u);
  EXPECT_GT(tree.maxDepthUsed(), 1u);
}

} // namespace
} // namespace vates
