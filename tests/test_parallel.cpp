// Tests for the portable execution layer: backends, thread pool,
// executor parity across backends, atomics, and the device simulator.

#include "vates/parallel/atomics.hpp"
#include "vates/parallel/backend.hpp"
#include "vates/parallel/device_array.hpp"
#include "vates/parallel/device_sim.hpp"
#include "vates/parallel/executor.hpp"
#include "vates/parallel/function_ref.hpp"
#include "vates/parallel/prefetcher.hpp"
#include "vates/parallel/thread_pool.hpp"
#include "vates/support/error.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

namespace vates {
namespace {

std::vector<Backend> availableBackends() {
  std::vector<Backend> backends;
  for (Backend b : {Backend::Serial, Backend::OpenMP, Backend::ThreadPool,
                    Backend::DeviceSim}) {
    if (backendAvailable(b)) {
      backends.push_back(b);
    }
  }
  return backends;
}

// ---------------------------------------------------------------------------
// Backend names and parsing

TEST(Backend, NamesRoundTrip) {
  for (Backend b : availableBackends()) {
    EXPECT_EQ(parseBackend(backendName(b)), b);
  }
}

TEST(Backend, ParseAliases) {
  EXPECT_EQ(parseBackend("Threads"), Backend::ThreadPool);
  EXPECT_EQ(parseBackend(" gpu-sim "), Backend::DeviceSim);
  EXPECT_EQ(parseBackend("device"), Backend::DeviceSim);
#ifdef VATES_HAS_OPENMP
  EXPECT_EQ(parseBackend("omp"), Backend::OpenMP);
#endif
  EXPECT_THROW(parseBackend("vulkan"), InvalidArgument);
}

TEST(Backend, AvailableListNonEmpty) {
  const std::string list = availableBackendList();
  EXPECT_NE(list.find("serial"), std::string::npos);
  EXPECT_NE(list.find("devicesim"), std::string::npos);
}

// ---------------------------------------------------------------------------
// FunctionRef

TEST(FunctionRef, InvokesLambdaWithCapture) {
  int calls = 0;
  auto lambda = [&calls](int x) { calls += x; };
  FunctionRef<void(int)> ref = lambda;
  ref(3);
  ref(4);
  EXPECT_EQ(calls, 7);
}

TEST(FunctionRef, ReturnsValues) {
  auto doubler = [](double x) { return 2.0 * x; };
  FunctionRef<double(double)> ref = doubler;
  EXPECT_DOUBLE_EQ(ref(2.5), 5.0);
}

// ---------------------------------------------------------------------------
// ThreadPool

TEST(ThreadPool, RunsBodyOncePerWorker) {
  ThreadPool pool(4);
  std::vector<int> hits(4, 0);
  auto body = [&](unsigned worker) { hits[worker]++; };
  pool.run(FunctionRef<void(unsigned)>(body));
  for (int h : hits) {
    EXPECT_EQ(h, 1);
  }
}

TEST(ThreadPool, ForRangeCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  const std::size_t n = 1000;
  std::vector<int> touched(n, 0);
  pool.forRange(n, [&](std::size_t begin, std::size_t end, unsigned) {
    for (std::size_t i = begin; i < end; ++i) {
      touched[i]++;
    }
  });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(touched[i], 1) << "index " << i;
  }
}

TEST(ThreadPool, ForRangeEmptyIsNoOp) {
  ThreadPool pool(2);
  bool called = false;
  pool.forRange(0, [&](std::size_t, std::size_t, unsigned) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParseThreadCountAcceptsPlainIntegers) {
  EXPECT_EQ(ThreadPool::parseThreadCount("1", 7), 1u);
  EXPECT_EQ(ThreadPool::parseThreadCount("8", 7), 8u);
  EXPECT_EQ(ThreadPool::parseThreadCount(" 12", 7), 12u); // strtol skips lead
}

TEST(ThreadPool, ParseThreadCountRejectsMalformedInput) {
  // Trailing garbage used to be silently accepted ("8abc" → 8).
  EXPECT_EQ(ThreadPool::parseThreadCount("8abc", 7), 7u);
  EXPECT_EQ(ThreadPool::parseThreadCount("abc", 7), 7u);
  EXPECT_EQ(ThreadPool::parseThreadCount("", 7), 7u);
  EXPECT_EQ(ThreadPool::parseThreadCount("4 ", 7), 7u);
  EXPECT_EQ(ThreadPool::parseThreadCount("3.5", 7), 7u);
  EXPECT_EQ(ThreadPool::parseThreadCount(nullptr, 7), 7u);
}

TEST(ThreadPool, ParseThreadCountRejectsOutOfRangeValues) {
  EXPECT_EQ(ThreadPool::parseThreadCount("0", 7), 7u);
  EXPECT_EQ(ThreadPool::parseThreadCount("-3", 7), 7u);
  // strtol overflow clamps to LONG_MAX; that must not become a size.
  EXPECT_EQ(ThreadPool::parseThreadCount("99999999999999999999", 7), 7u);
  EXPECT_EQ(ThreadPool::parseThreadCount("70000", 7), 7u); // > maxThreadCount
  EXPECT_EQ(ThreadPool::parseThreadCount("65536", 7), 65536u); // boundary ok
}

TEST(ThreadPool, StressConcurrentCallersWithNestedRegions) {
  // Several independent caller threads (the in-process MPI-rank
  // pattern) hammer one pool with regions whose bodies themselves start
  // nested regions.  Every region's arithmetic must come out exact and
  // nothing may deadlock.
  ThreadPool pool(4);
  constexpr int kCallers = 6;
  constexpr int kIterations = 40;
  constexpr std::size_t kItems = 257; // not a multiple of the pool size
  const std::uint64_t perRegion = kItems * (kItems + 1) / 2;

  std::vector<std::uint64_t> callerTotals(kCallers, 0);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &callerTotals, c] {
      for (int iteration = 0; iteration < kIterations; ++iteration) {
        std::atomic<std::uint64_t> regionSum{0};
        pool.forRange(kItems, [&](std::size_t begin, std::size_t end,
                                  unsigned) {
          std::uint64_t local = 0;
          for (std::size_t i = begin; i < end; ++i) {
            local += i + 1;
          }
          // Nested region: executes inline on this worker and must see
          // worker index 0 without disturbing the outer region.
          std::atomic<std::uint64_t> nestedHits{0};
          pool.forRange(8, [&](std::size_t nestedBegin, std::size_t nestedEnd,
                               unsigned nestedWorker) {
            if (nestedWorker == 0) {
              nestedHits += nestedEnd - nestedBegin;
            }
          });
          local += nestedHits.load() - 8; // 8 iff all inline on worker 0
          regionSum += local;
        });
        callerTotals[static_cast<std::size_t>(c)] += regionSum.load();
      }
    });
  }
  for (auto& caller : callers) {
    caller.join();
  }
  for (int c = 0; c < kCallers; ++c) {
    EXPECT_EQ(callerTotals[static_cast<std::size_t>(c)],
              static_cast<std::uint64_t>(kIterations) * perRegion)
        << "caller " << c;
  }
}

TEST(ThreadPool, NestedRunExecutesInline) {
  ThreadPool pool(2);
  std::atomic<int> innerCalls{0};
  auto outer = [&](unsigned) {
    auto inner = [&](unsigned worker) {
      EXPECT_EQ(worker, 0u); // nested regions collapse to the caller
      innerCalls++;
    };
    pool.run(FunctionRef<void(unsigned)>(inner));
  };
  pool.run(FunctionRef<void(unsigned)>(outer));
  EXPECT_EQ(innerCalls.load(), 2);
}

TEST(ThreadPool, ConcurrentCallersAreSerializedSafely) {
  ThreadPool pool(2);
  std::atomic<std::uint64_t> total{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < 4; ++c) {
    callers.emplace_back([&] {
      for (int repeat = 0; repeat < 20; ++repeat) {
        pool.forRange(100, [&](std::size_t begin, std::size_t end, unsigned) {
          total.fetch_add(end - begin);
        });
      }
    });
  }
  for (auto& thread : callers) {
    thread.join();
  }
  EXPECT_EQ(total.load(), 4u * 20u * 100u);
}

TEST(ThreadPool, SizeOneExecutesInline) {
  ThreadPool pool(1);
  std::size_t sum = 0;
  pool.forRange(10, [&](std::size_t begin, std::size_t end, unsigned worker) {
    EXPECT_EQ(worker, 0u);
    sum += end - begin;
  });
  EXPECT_EQ(sum, 10u);
}

TEST(ThreadPool, RejectsZeroWorkers) {
  EXPECT_THROW(ThreadPool pool(0), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Atomics

TEST(Atomics, ConcurrentDoubleAddIsLossless) {
  double target = 0.0;
  ThreadPool pool(4);
  const int perWorker = 10000;
  pool.run(FunctionRef<void(unsigned)>([&](unsigned) {
    for (int i = 0; i < perWorker; ++i) {
      atomicAdd(&target, 1.0);
    }
  }));
  EXPECT_DOUBLE_EQ(target, 4.0 * perWorker);
}

TEST(Atomics, ConcurrentCounterExact) {
  std::uint64_t counter = 0;
  ThreadPool pool(4);
  pool.run(FunctionRef<void(unsigned)>([&](unsigned) {
    for (int i = 0; i < 10000; ++i) {
      atomicNext(&counter);
    }
  }));
  EXPECT_EQ(counter, 40000u);
}

TEST(Atomics, AtomicMaxFindsMaximum) {
  double best = -1e300;
  ThreadPool pool(4);
  pool.run(FunctionRef<void(unsigned)>([&](unsigned worker) {
    for (int i = 0; i < 1000; ++i) {
      atomicMax(&best, static_cast<double>(worker * 1000 + i));
    }
  }));
  EXPECT_DOUBLE_EQ(best, 3999.0);
}

// ---------------------------------------------------------------------------
// Executor parity: every backend computes identical results

class ExecutorBackends : public ::testing::TestWithParam<Backend> {};

INSTANTIATE_TEST_SUITE_P(AllBackends, ExecutorBackends,
                         ::testing::ValuesIn(availableBackends()),
                         [](const auto& paramInfo) {
                           return std::string(backendName(paramInfo.param));
                         });

TEST_P(ExecutorBackends, ParallelForTouchesAllIndices) {
  const Executor executor(GetParam());
  const std::size_t n = 5000;
  std::vector<std::uint64_t> counters(n, 0);
  executor.parallelFor(n, [&](std::size_t i) { atomicNext(&counters[i]); });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(counters[i], 1u) << "index " << i;
  }
}

TEST_P(ExecutorBackends, ParallelFor2DCoversCartesianProduct) {
  const Executor executor(GetParam());
  const std::size_t nOuter = 24, nInner = 321;
  std::vector<std::uint64_t> counters(nOuter * nInner, 0);
  executor.parallelFor2D(nOuter, nInner, [&](std::size_t i, std::size_t j) {
    atomicNext(&counters[i * nInner + j]);
  });
  for (const auto c : counters) {
    ASSERT_EQ(c, 1u);
  }
}

TEST_P(ExecutorBackends, ParallelForZeroIsNoOp) {
  const Executor executor(GetParam());
  bool called = false;
  executor.parallelFor(0, [&](std::size_t) { called = true; });
  executor.parallelFor2D(0, 10, [&](std::size_t, std::size_t) { called = true; });
  executor.parallelFor2D(10, 0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST_P(ExecutorBackends, ReduceSumMatchesClosedForm) {
  const Executor executor(GetParam());
  const std::size_t n = 100001;
  const auto sum = executor.parallelReduce(
      n, std::uint64_t{0}, [](std::size_t i) { return std::uint64_t(i); },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  EXPECT_EQ(sum, std::uint64_t(n) * (n - 1) / 2);
}

TEST_P(ExecutorBackends, ReduceCustomOperatorMax) {
  // The paper notes JACC.parallel_reduce lacked custom operators; ours
  // must support them on every backend.
  const Executor executor(GetParam());
  std::vector<double> values(10000);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<double>((i * 2654435761u) % 99991);
  }
  const double expected = *std::max_element(values.begin(), values.end());
  const double measured = executor.parallelReduce(
      values.size(), -1.0, [&](std::size_t i) { return values[i]; },
      [](double a, double b) { return a > b ? a : b; });
  EXPECT_DOUBLE_EQ(measured, expected);
}

TEST_P(ExecutorBackends, IndexedLoopsCoverIndexSpaceWithValidWorkers) {
  const Executor executor(GetParam());
  const unsigned concurrency = executor.concurrency();
  ASSERT_GE(concurrency, 1u);

  const std::size_t n = 5000;
  std::vector<std::uint64_t> counters(n, 0);
  std::atomic<bool> workerInRange{true};
  executor.parallelForIndexed(n, [&](std::size_t i, unsigned worker) {
    if (worker >= concurrency) {
      workerInRange = false;
    }
    atomicNext(&counters[i]);
  });
  EXPECT_TRUE(workerInRange.load());
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(counters[i], 1u) << "index " << i;
  }

  const std::size_t nOuter = 13, nInner = 211;
  std::vector<std::uint64_t> counters2(nOuter * nInner, 0);
  executor.parallelFor2DIndexed(
      nOuter, nInner, [&](std::size_t i, std::size_t j, unsigned worker) {
        if (worker >= concurrency) {
          workerInRange = false;
        }
        atomicNext(&counters2[i * nInner + j]);
      });
  EXPECT_TRUE(workerInRange.load());
  for (const auto c : counters2) {
    ASSERT_EQ(c, 1u);
  }
}

TEST_P(ExecutorBackends, WorkerPrivateSlotsNeverAlias) {
  // The contract privatized accumulation rests on: at any instant at
  // most one work item runs per worker index.  Flag any concurrent
  // entry into the same slot.
  const Executor executor(GetParam());
  const unsigned concurrency = executor.concurrency();
  std::vector<std::uint64_t> occupied(concurrency, 0);
  std::atomic<bool> aliased{false};
  executor.parallelForIndexed(20000, [&](std::size_t, unsigned worker) {
    std::atomic_ref<std::uint64_t> slot(occupied[worker]);
    if (slot.fetch_add(1, std::memory_order_acq_rel) != 0) {
      aliased = true;
    }
    slot.fetch_sub(1, std::memory_order_acq_rel);
  });
  EXPECT_FALSE(aliased.load());
}

TEST(Executor, DeviceSimConcurrencyReportsDeviceWorkers) {
  // A device with its own private pool must report that pool's width,
  // not the host ThreadPool's (the replica-count decision depends on
  // it).
  DeviceOptions options;
  options.workers = 3;
  options.jitCostMs = 0.0;
  DeviceSim device(options);
  const Executor executor(Backend::DeviceSim, ThreadPool::global(), device);
  EXPECT_EQ(executor.concurrency(), 3u);
  EXPECT_EQ(device.concurrency(), 3u);

  // Worker indices observed inside a launch stay within that width.
  std::atomic<bool> inRange{true};
  executor.parallelForIndexed(10000, [&](std::size_t, unsigned worker) {
    if (worker >= 3u) {
      inRange = false;
    }
  });
  EXPECT_TRUE(inRange.load());
}

TEST(Executor, DeviceSimOnGlobalPoolReportsGlobalWidth) {
  DeviceOptions options;
  options.workers = 0; // borrow the global pool
  options.jitCostMs = 0.0;
  DeviceSim device(options);
  const Executor executor(Backend::DeviceSim, ThreadPool::global(), device);
  EXPECT_EQ(executor.concurrency(), ThreadPool::global().size());
}

TEST_P(ExecutorBackends, AtomicHistogramMatchesSerial) {
  const Executor executor(GetParam());
  const std::size_t n = 200000, bins = 97;
  std::vector<double> histogram(bins, 0.0);
  executor.parallelFor(n, [&](std::size_t i) {
    atomicAdd(&histogram[i % bins], 1.0);
  });
  for (std::size_t b = 0; b < bins; ++b) {
    const double expected = static_cast<double>(n / bins + (b < n % bins));
    ASSERT_DOUBLE_EQ(histogram[b], expected);
  }
}

// ---------------------------------------------------------------------------
// DeviceSim

TEST(DeviceSim, MetersAllocationsAndTransfers) {
  DeviceSim device(DeviceOptions{.blockSize = 64, .jitCostMs = 0.0});
  {
    std::vector<double> host(1000, 1.5);
    DeviceArray<double> array(device, std::span<const double>(host));
    EXPECT_EQ(device.stats().bytesH2D, 8000u);
    EXPECT_EQ(device.stats().bytesLive(), 8000u);

    auto back = toHostVector(array);
    EXPECT_EQ(device.stats().bytesD2H, 8000u);
    EXPECT_EQ(back, host);
  }
  EXPECT_EQ(device.stats().bytesLive(), 0u);
}

TEST(DeviceSim, LaunchCountsBlocks) {
  DeviceSim device(DeviceOptions{.blockSize = 100, .jitCostMs = 0.0});
  std::vector<std::uint64_t> touched(1050, 0);
  device.launch("touch", touched.size(),
                [&](std::size_t i) { atomicNext(&touched[i]); });
  EXPECT_EQ(device.stats().kernelLaunches, 1u);
  EXPECT_EQ(device.stats().blocksExecuted, 11u); // ceil(1050/100)
  for (auto t : touched) {
    ASSERT_EQ(t, 1u);
  }
}

TEST(DeviceSim, JitChargedOncePerKernel) {
  DeviceSim device(DeviceOptions{.blockSize = 32, .jitCostMs = 5.0});
  device.launch("kernel_a", 10, [](std::size_t) {});
  device.launch("kernel_a", 10, [](std::size_t) {});
  device.launch("kernel_b", 10, [](std::size_t) {});
  EXPECT_EQ(device.stats().jitCompilations, 2u);
  EXPECT_GE(device.stats().jitSeconds, 2 * 0.005 * 0.9);

  device.resetJitCache();
  device.launch("kernel_a", 10, [](std::size_t) {});
  EXPECT_EQ(device.stats().jitCompilations, 3u);
}

TEST(DeviceSim, ZeroJitCostIsFree) {
  DeviceSim device(DeviceOptions{.jitCostMs = 0.0});
  device.launch("k", 10, [](std::size_t) {});
  EXPECT_EQ(device.stats().jitCompilations, 1u);
  EXPECT_DOUBLE_EQ(device.stats().jitSeconds, 0.0);
}

TEST(DeviceSim, FillOnDevice) {
  DeviceSim device(DeviceOptions{.jitCostMs = 0.0});
  DeviceArray<double> array(device, 257);
  fillOnDevice(array, 3.25);
  for (double v : toHostVector(array)) {
    ASSERT_DOUBLE_EQ(v, 3.25);
  }
}

TEST(DeviceSim, TransferSizeMismatchThrows) {
  DeviceSim device(DeviceOptions{.jitCostMs = 0.0});
  DeviceArray<double> array(device, 10);
  std::vector<double> wrong(11, 0.0);
  EXPECT_THROW(copyToDevice(array, std::span<const double>(wrong)),
               InvalidArgument);
  EXPECT_THROW(copyToHost(std::span<double>(wrong), array), InvalidArgument);
}

TEST(DeviceArray, MoveTransfersOwnership) {
  DeviceSim device(DeviceOptions{.jitCostMs = 0.0});
  DeviceArray<double> a(device, 100);
  const double* data = a.deviceData();
  DeviceArray<double> b = std::move(a);
  EXPECT_EQ(b.deviceData(), data);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(a.size(), 0u); // NOLINT(bugprone-use-after-move): documented state
  EXPECT_EQ(device.stats().bytesLive(), 800u);
}

// ---------------------------------------------------------------------------
// Prefetcher — the overlapped pipeline's async load primitive
// ---------------------------------------------------------------------------

TEST(Prefetcher, DeliversEveryItemInIndexOrder) {
  Prefetcher<std::size_t> prefetcher(3, 11, 2,
                                     [](std::size_t index) { return index * 7; });
  EXPECT_EQ(prefetcher.count(), 8u);
  for (std::size_t i = 3; i < 11; ++i) {
    EXPECT_EQ(prefetcher.next(), i * 7);
  }
}

TEST(Prefetcher, EmptyRangeDeliversNothing) {
  Prefetcher<int> prefetcher(5, 5, 1, [](std::size_t) {
    ADD_FAILURE() << "producer must not run for an empty range";
    return 0;
  });
  EXPECT_EQ(prefetcher.count(), 0u);
}

TEST(Prefetcher, BackpressureNeverExceedsDepth) {
  // A fast producer against a slow consumer: the queue's high-water
  // mark must stay within the configured bound no matter how far ahead
  // the producer could run.
  for (const std::size_t depth : {std::size_t{1}, std::size_t{3}}) {
    Prefetcher<int> prefetcher(0, 32, depth, [](std::size_t index) {
      return static_cast<int>(index);
    });
    for (std::size_t i = 0; i < 32; ++i) {
      EXPECT_EQ(prefetcher.next(), static_cast<int>(i));
      if (i % 8 == 0) {
        // Give the producer every chance to overrun the bound.
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    }
    EXPECT_LE(prefetcher.highWater(), depth);
    EXPECT_GE(prefetcher.highWater(), 1u);
  }
}

TEST(Prefetcher, DepthZeroIsClampedToDoubleBuffering) {
  Prefetcher<int> prefetcher(0, 4, 0,
                             [](std::size_t index) { return static_cast<int>(index); });
  EXPECT_EQ(prefetcher.depth(), 1u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(prefetcher.next(), i);
  }
}

TEST(Prefetcher, ProducerExceptionArrivesAfterEarlierItems) {
  Prefetcher<int> prefetcher(0, 10, 4, [](std::size_t index) {
    if (index == 3) {
      throw InvalidArgument("file 3 is corrupt");
    }
    return static_cast<int>(index);
  });
  // Every item completed before the failure is still delivered...
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(prefetcher.next(), i);
  }
  // ...then the producer's exception surfaces on the consumer thread.
  EXPECT_THROW(prefetcher.next(), InvalidArgument);
}

TEST(Prefetcher, EarlyDestructionStopsTheProducer) {
  std::atomic<std::size_t> produced{0};
  {
    Prefetcher<int> prefetcher(0, 1000, 1, [&produced](std::size_t index) {
      ++produced;
      return static_cast<int>(index);
    });
    EXPECT_EQ(prefetcher.next(), 0);
    // Destructor runs here with 998 items never consumed.
  }
  // Backpressure means at most depth + in-flight items were produced
  // before cancellation took effect.
  EXPECT_LE(produced.load(), 4u);
}

TEST(Prefetcher, MovesNonCopyableItems) {
  Prefetcher<std::unique_ptr<int>> prefetcher(
      0, 3, 1, [](std::size_t index) {
        return std::make_unique<int>(static_cast<int>(index));
      });
  for (int i = 0; i < 3; ++i) {
    const std::unique_ptr<int> item = prefetcher.next();
    ASSERT_NE(item, nullptr);
    EXPECT_EQ(*item, i);
  }
}

} // namespace
} // namespace vates
