// Tests for post-hoc (bin-level) histogram symmetrization and its
// agreement with the kernels' event-level symmetry loop.

#include "vates/core/pipeline.hpp"
#include "vates/kernels/symmetrize.hpp"
#include "vates/support/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace vates {
namespace {

TEST(SymmetrizeFold, IdentityIsACopy) {
  Histogram3D input(BinAxis("x", -4, 4, 16), BinAxis("y", -4, 4, 16),
                    BinAxis("z", -1, 1, 2));
  Xoshiro256 rng(1);
  for (int i = 0; i < 300; ++i) {
    input.addSerial({rng.uniform(-4, 4), rng.uniform(-4, 4),
                     rng.uniform(-1, 1)},
                    rng.uniform(0.1, 2.0));
  }
  const std::vector<M33> identity{M33::identity()};
  const Histogram3D output = symmetrizeFold(Executor(Backend::Serial), input,
                                            identity, Projection());
  for (std::size_t i = 0; i < input.size(); ++i) {
    ASSERT_DOUBLE_EQ(output.data()[i], input.data()[i]);
  }
}

TEST(SymmetrizeFold, TwoFoldMirrorsContent) {
  // 2-fold about z maps (x,y,z) -> (-x,-y,z): a lone bin's fold output
  // receives content at both the bin and its image.
  Histogram3D input(BinAxis("x", -4, 4, 8), BinAxis("y", -4, 4, 8),
                    BinAxis("z", -1, 1, 1));
  input.addSerial({1.5, 2.5, 0.0}, 3.0);
  const std::vector<M33> ops{M33::identity(),
                             SymmetryOperation::fromJones("-x,-y,z").matrix()};
  const Histogram3D output = symmetrizeFold(Executor(Backend::Serial), input,
                                            ops, Projection());
  // Original bin: identity finds 3.0, the 2-fold image bin is empty.
  EXPECT_DOUBLE_EQ(
      output.data()[output.locate({1.5, 2.5, 0.0}).value()], 3.0);
  // Mirror bin: the 2-fold op gathers the original content.
  EXPECT_DOUBLE_EQ(
      output.data()[output.locate({-1.5, -2.5, 0.0}).value()], 3.0);
  EXPECT_DOUBLE_EQ(output.totalSignal(), 6.0);
}

TEST(SymmetrizeFold, OutputIsInvariantUnderTheGroup) {
  // After folding, applying the fold again multiplies by the group
  // order (every op finds the same symmetrized value).
  Histogram3D input(BinAxis("x", -4, 4, 16), BinAxis("y", -4, 4, 16),
                    BinAxis("z", -4, 4, 16));
  Xoshiro256 rng(7);
  for (int i = 0; i < 500; ++i) {
    input.addSerial({rng.uniform(-4, 4), rng.uniform(-4, 4),
                     rng.uniform(-4, 4)},
                    1.0);
  }
  const PointGroup group("222");
  const auto ops = group.matrices();
  const Executor executor(Backend::Serial);
  const Histogram3D once = symmetrizeFold(executor, input, ops, Projection());
  const Histogram3D twice = symmetrizeFold(executor, once, ops, Projection());
  for (std::size_t i = 0; i < once.size(); i += 97) {
    ASSERT_NEAR(twice.data()[i],
                static_cast<double>(ops.size()) * once.data()[i], 1e-9);
  }
}

TEST(SymmetrizeFold, BackendsAgree) {
  Histogram3D input(BinAxis("x", -4, 4, 32), BinAxis("y", -4, 4, 32),
                    BinAxis("z", -1, 1, 1));
  Xoshiro256 rng(11);
  for (int i = 0; i < 400; ++i) {
    input.addSerial({rng.uniform(-4, 4), rng.uniform(-4, 4), 0.0},
                    rng.uniform(0.5, 1.5));
  }
  const auto ops = PointGroup("4").matrices();
  const Histogram3D reference = symmetrizeFold(Executor(Backend::Serial),
                                               input, ops, Projection());
  for (Backend backend : {Backend::ThreadPool, Backend::DeviceSim}) {
    const Histogram3D result =
        symmetrizeFold(Executor(backend), input, ops, Projection());
    for (std::size_t i = 0; i < result.size(); ++i) {
      ASSERT_DOUBLE_EQ(result.data()[i], reference.data()[i])
          << backendName(backend);
    }
  }
}

TEST(SymmetrizeFold, ApproximatesEventLevelSymmetrizationOnSmoothData) {
  // Reduce a diffuse-only workload twice: (a) event-level symmetry
  // inside the kernels, (b) identity-only reduction followed by
  // bin-level folds of signal and normalization.  Per-bin values carry
  // shot noise (few events per fine bin) and bin-center discretization,
  // so the comparison is statistical: conserved totals and agreement of
  // block-averaged cross-sections.
  WorkloadSpec spec = WorkloadSpec::benzilCorelli(0.0005);
  spec.braggAmplitude = 0.0;     // diffuse only: smooth expectation
  spec.eventsPerFile = 20000;    // tame per-bin shot noise
  spec.bins = {100, 100, 1};

  const ExperimentSetup symmetrized{spec};
  core::ReductionConfig config;
  config.backend = Backend::Serial;
  const core::ReductionResult eventLevel =
      core::ReductionPipeline(symmetrized, config).run();

  WorkloadSpec identitySpec = spec;
  identitySpec.pointGroup = "1";
  const ExperimentSetup identity{identitySpec};
  const core::ReductionResult base =
      core::ReductionPipeline(identity, config).run();

  const auto ops = symmetrized.pointGroup().matrices();
  const Executor executor(Backend::Serial);
  const Histogram3D foldedSignal = symmetrizeFold(
      executor, base.signal, ops, symmetrized.projection());
  const Histogram3D foldedNorm = symmetrizeFold(
      executor, base.normalization, ops, symmetrized.projection());
  const Histogram3D folded = Histogram3D::divide(foldedSignal, foldedNorm);

  // 1. Mass conservation: both strategies distribute the same signal
  //    and normalization mass (up to bin-boundary clipping).
  EXPECT_NEAR(foldedSignal.totalSignal(), eventLevel.signal.totalSignal(),
              0.03 * eventLevel.signal.totalSignal());
  EXPECT_NEAR(foldedNorm.totalSignal(),
              eventLevel.normalization.totalSignal(),
              0.03 * eventLevel.normalization.totalSignal());

  // 2. Block-averaged cross-sections agree: average 10x10 superblocks
  //    (washing out shot noise and bin-center jitter) and compare where
  //    both are covered.
  const std::size_t block = 10;
  double sumRelative = 0.0;
  std::size_t compared = 0;
  for (std::size_t bi = 0; bi < 100; bi += block) {
    for (std::size_t bj = 0; bj < 100; bj += block) {
      double sumA = 0.0, sumB = 0.0;
      std::size_t covered = 0;
      for (std::size_t i = bi; i < bi + block; ++i) {
        for (std::size_t j = bj; j < bj + block; ++j) {
          const double a = eventLevel.crossSection.at(i, j, 0);
          const double b = folded.at(i, j, 0);
          if (std::isfinite(a) && std::isfinite(b)) {
            sumA += a;
            sumB += b;
            ++covered;
          }
        }
      }
      if (covered >= block * block / 2 && sumA > 0.0) {
        sumRelative += std::fabs(sumA - sumB) / sumA;
        ++compared;
      }
    }
  }
  ASSERT_GT(compared, 10u);
  EXPECT_LT(sumRelative / static_cast<double>(compared), 0.15);
}

TEST(SymmetrizeFold, EmptyOpsThrow) {
  Histogram3D input(BinAxis("x", 0, 1, 1), BinAxis("y", 0, 1, 1),
                    BinAxis("z", 0, 1, 1));
  EXPECT_THROW(symmetrizeFold(Executor(Backend::Serial), input, {},
                              Projection()),
               InvalidArgument);
}

} // namespace
} // namespace vates
