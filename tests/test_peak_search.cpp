// Tests for Bragg-peak search — including the end-to-end physics
// validation: peaks recovered from a reduced synthetic workload sit at
// the reciprocal-lattice nodes the generator planted.

#include "vates/core/peak_search.hpp"
#include "vates/core/pipeline.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace vates::core {
namespace {

Histogram3D flatField(double level) {
  Histogram3D histogram(BinAxis("x", -5, 5, 51), BinAxis("y", -5, 5, 51),
                        BinAxis("z", -0.5, 0.5, 1));
  histogram.fill(level);
  return histogram;
}

TEST(PeakSearch, FindsSinglePlantedPeak) {
  Histogram3D histogram = flatField(1.0);
  // Plant a Gaussian blob at (2.0, -1.0).
  for (int di = -2; di <= 2; ++di) {
    for (int dj = -2; dj <= 2; ++dj) {
      const auto i = static_cast<std::size_t>(35 + di); // x = 2.0 -> bin 35
      const auto j = static_cast<std::size_t>(20 + dj); // y = -1.0 -> bin 20
      const double falloff = std::exp(-(di * di + dj * dj) / 2.0);
      histogram.data()[histogram.flatIndex(i, j, 0)] += 100.0 * falloff;
    }
  }
  const auto peaks = findPeaks(histogram);
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_NEAR(peaks[0].projected.x, 2.0, 0.2);
  EXPECT_NEAR(peaks[0].projected.y, -1.0, 0.2);
  EXPECT_NEAR(peaks[0].height, 101.0, 1.0);
  // Background-subtracted intensity ~ the planted mass (~ 100 * sum of
  // the Gaussian stencil ≈ 100 * 11.3), not the flat field.
  EXPECT_GT(peaks[0].intensity, 500.0);
  EXPECT_LT(peaks[0].intensity, 2000.0);
}

TEST(PeakSearch, SortsByHeightAndRespectsMaxPeaks) {
  Histogram3D histogram = flatField(0.1);
  histogram.data()[histogram.flatIndex(10, 10, 0)] = 50.0;
  histogram.data()[histogram.flatIndex(30, 30, 0)] = 90.0;
  histogram.data()[histogram.flatIndex(40, 15, 0)] = 70.0;

  PeakSearchOptions options;
  const auto all = findPeaks(histogram, options);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_DOUBLE_EQ(all[0].height, 90.0);
  EXPECT_DOUBLE_EQ(all[1].height, 70.0);
  EXPECT_DOUBLE_EQ(all[2].height, 50.0);

  options.maxPeaks = 2;
  EXPECT_EQ(findPeaks(histogram, options).size(), 2u);
}

TEST(PeakSearch, MergesNearbyCandidates) {
  Histogram3D histogram = flatField(0.1);
  // Two maxima 2 bins apart: below the default separation of 4 bins.
  histogram.data()[histogram.flatIndex(20, 20, 0)] = 80.0;
  histogram.data()[histogram.flatIndex(22, 20, 0)] = 75.0;
  const auto peaks = findPeaks(histogram);
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_DOUBLE_EQ(peaks[0].height, 80.0);
}

TEST(PeakSearch, IgnoresNaNAndEmpty) {
  Histogram3D histogram = flatField(1.0);
  histogram.fill(std::numeric_limits<double>::quiet_NaN());
  EXPECT_TRUE(findPeaks(histogram).empty());

  Histogram3D flat = flatField(1.0); // no structure above threshold
  EXPECT_TRUE(findPeaks(flat).empty());
}

TEST(PeakSearch, ProjectedToHklMapping) {
  Histogram3D histogram(BinAxis("[H,H]", -5, 5, 51),
                        BinAxis("[H,-H]", -5, 5, 51),
                        BinAxis("[L]", -0.5, 0.5, 1),
                        Projection::benzilSlice());
  histogram.fill(0.1);
  // Projected (1, 0, 0) corresponds to hkl (1, 1, 0).
  const auto i = histogram.axis(0).bin(1.0).value();
  const auto j = histogram.axis(1).bin(0.0).value();
  histogram.data()[histogram.flatIndex(i, j, 0)] = 50.0;
  const auto peaks = findPeaks(histogram);
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_NEAR(peaks[0].hkl.x, 1.0, 0.15);
  EXPECT_NEAR(peaks[0].hkl.y, 1.0, 0.15);
  EXPECT_NEAR(peaks[0].hkl.z, 0.0, 0.15);
}

TEST(PeakSearch, RecoversPlantedLatticeNodesEndToEnd) {
  // The physics round trip: generate -> reduce -> find peaks -> the
  // peaks sit at integer HKL nodes allowed by the centering.
  WorkloadSpec spec = WorkloadSpec::bixbyiteTopaz(0.0002);
  spec.eventsPerFile = 30000;   // enough statistics for clean maxima
  spec.braggSigma = 0.02;       // sharp peaks
  spec.bins = {201, 201, 1};
  const ExperimentSetup setup(spec);
  ReductionConfig config;
  config.backend = Backend::Serial;
  const ReductionResult result = ReductionPipeline(setup, config).run();

  PeakSearchOptions options;
  options.thresholdOverMedian = 20.0;
  options.window = 2;
  options.maxPeaks = 40;
  const auto peaks = findPeaks(result.crossSection, options);
  ASSERT_GE(peaks.size(), 5u);

  std::size_t onNode = 0;
  for (const Peak& peak : peaks) {
    const V3 hkl = peak.hkl;
    const int h = static_cast<int>(std::lround(hkl.x));
    const int k = static_cast<int>(std::lround(hkl.y));
    const int l = static_cast<int>(std::lround(hkl.z));
    const bool nearNode = std::fabs(hkl.x - h) < 0.2 &&
                          std::fabs(hkl.y - k) < 0.2 &&
                          std::fabs(hkl.z - l) < 0.2;
    if (nearNode) {
      ++onNode;
      // Bixbyite is body-centered: peaks only at h+k+l even.
      EXPECT_TRUE(reflectionAllowed(Centering::I, h, k, l))
          << "extinct reflection (" << h << "," << k << "," << l
          << ") produced a peak";
    }
  }
  // The strong majority of found peaks sit on lattice nodes.
  EXPECT_GE(onNode * 10, peaks.size() * 7)
      << onNode << " of " << peaks.size() << " peaks on nodes";
}

TEST(PeakSearch, TableRendering) {
  std::vector<Peak> peaks(2);
  peaks[0].projected = V3{1, 2, 0};
  peaks[0].hkl = V3{3, -1, 0};
  peaks[0].intensity = 123.0;
  const std::string table = peakTable(peaks, 1);
  EXPECT_NE(table.find("intensity"), std::string::npos);
  EXPECT_NE(table.find("(1 more)"), std::string::npos);
}

} // namespace
} // namespace vates::core
