// Tests for instrument geometry (CORELLI-like and TOPAZ-like builders).

#include "vates/geometry/instrument.hpp"
#include "vates/support/error.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace vates {
namespace {

TEST(Instrument, ExplicitConstruction) {
  std::vector<V3> positions{{0, 0, 2}, {2, 0, 0}, {0, 2, 0}};
  const Instrument instrument("test", 10.0, positions, 0.01);
  EXPECT_EQ(instrument.nDetectors(), 3u);
  EXPECT_DOUBLE_EQ(instrument.l1(), 10.0);
  EXPECT_DOUBLE_EQ(instrument.l2(0), 2.0);
  // Detector 0 is straight downstream: two-theta = 0.
  EXPECT_NEAR(instrument.twoTheta(0), 0.0, 1e-12);
  // Detector 1 is at 90 degrees.
  EXPECT_NEAR(instrument.twoTheta(1), M_PI / 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(instrument.totalFlightPath(0), 12.0);
  // Solid angle = area / L2².
  EXPECT_NEAR(instrument.solidAngle(0), 0.01 / 4.0, 1e-15);
}

TEST(Instrument, QLabDirectionGeometry) {
  std::vector<V3> positions{{2, 0, 0}}; // 90 degrees
  const Instrument instrument("test", 10.0, positions, 0.01);
  // q direction = beam - detDir = (0,0,1) - (1,0,0).
  const V3 qDirection = instrument.qLabDirection(0);
  EXPECT_NEAR(qDirection.x, -1.0, 1e-12);
  EXPECT_NEAR(qDirection.y, 0.0, 1e-12);
  EXPECT_NEAR(qDirection.z, 1.0, 1e-12);
  // |q-direction| = 2 sin(θ): at 2θ=90°, = sqrt(2).
  EXPECT_NEAR(qDirection.norm(), std::sqrt(2.0), 1e-12);
}

TEST(Instrument, QDirectionMagnitudeIsTwoSinTheta) {
  const Instrument instrument = Instrument::corelliLike(1000);
  for (std::size_t d = 0; d < instrument.nDetectors(); d += 97) {
    const double expected = 2.0 * std::sin(instrument.twoTheta(d) / 2.0);
    EXPECT_NEAR(instrument.qLabDirection(d).norm(), expected, 1e-12);
  }
}

TEST(Instrument, CorelliLikePlacesExactCount) {
  for (const std::size_t n : {1ul, 64ul, 1000ul, 5000ul}) {
    const Instrument instrument = Instrument::corelliLike(n);
    EXPECT_EQ(instrument.nDetectors(), n);
    EXPECT_EQ(instrument.name(), "CORELLI-like");
  }
}

TEST(Instrument, CorelliLikeDetectorsOnCylinder) {
  const Instrument instrument = Instrument::corelliLike(2000);
  for (std::size_t d = 0; d < instrument.nDetectors(); d += 53) {
    const V3& position = instrument.position(d);
    const double radius = std::hypot(position.x, position.z);
    EXPECT_NEAR(radius, 2.55, 1e-9) << "detector " << d;
    EXPECT_LE(std::fabs(position.y), 0.98);
  }
}

TEST(Instrument, CorelliLikeAvoidsBeam) {
  const Instrument instrument = Instrument::corelliLike(3000);
  for (std::size_t d = 0; d < instrument.nDetectors(); ++d) {
    EXPECT_GT(instrument.twoTheta(d), 1.0 * M_PI / 180.0);
  }
}

TEST(Instrument, TopazLikePlacesExactCount) {
  for (const std::size_t n : {1ul, 64ul, 1400ul, 10000ul}) {
    const Instrument instrument = Instrument::topazLike(n);
    EXPECT_EQ(instrument.nDetectors(), n);
    EXPECT_EQ(instrument.name(), "TOPAZ-like");
  }
}

TEST(Instrument, TopazLikeCompactGeometry) {
  const Instrument instrument = Instrument::topazLike(5000);
  for (std::size_t d = 0; d < instrument.nDetectors(); d += 101) {
    // Banks sit near 0.455 m; pixels within half a bank diagonal.
    EXPECT_NEAR(instrument.l2(d), 0.455, 0.13) << "detector " << d;
  }
}

TEST(Instrument, SpansAreContiguousAndSized) {
  const Instrument instrument = Instrument::corelliLike(500);
  EXPECT_EQ(instrument.qLabDirections().size(), 500u);
  EXPECT_EQ(instrument.solidAngles().size(), 500u);
  EXPECT_EQ(instrument.positions().size(), 500u);
  EXPECT_EQ(&instrument.qLabDirections()[0], &instrument.qLabDirection(0));
}

TEST(Instrument, SolidAnglesArePositiveAndSmall) {
  const Instrument instrument = Instrument::topazLike(2000);
  for (std::size_t d = 0; d < instrument.nDetectors(); ++d) {
    EXPECT_GT(instrument.solidAngle(d), 0.0);
    EXPECT_LT(instrument.solidAngle(d), 0.1);
  }
}

TEST(Instrument, InvalidConstructionThrows) {
  EXPECT_THROW(Instrument("x", -1.0, {{0, 0, 1}}, 0.01), InvalidArgument);
  EXPECT_THROW(Instrument("x", 10.0, {}, 0.01), InvalidArgument);
  EXPECT_THROW(Instrument("x", 10.0, {{0, 0, 1}}, 0.0), InvalidArgument);
  EXPECT_THROW(Instrument("x", 10.0, {{0, 0, 0}}, 0.01), InvalidArgument);
}

} // namespace
} // namespace vates
