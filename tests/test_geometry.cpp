// Tests for V3/M33 linear algebra, lattices, UB matrices, goniometers.

#include "vates/geometry/centering.hpp"
#include "vates/geometry/goniometer.hpp"
#include "vates/geometry/lattice.hpp"
#include "vates/geometry/mat3.hpp"
#include "vates/geometry/oriented_lattice.hpp"
#include "vates/geometry/vec3.hpp"
#include "vates/support/error.hpp"
#include "vates/support/rng.hpp"
#include "vates/units/units.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace vates {
namespace {

constexpr double kPi = 3.14159265358979323846;

// ---------------------------------------------------------------------------
// V3

TEST(V3, ArithmeticAndAccessors) {
  const V3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_EQ(a + b, (V3{5, 7, 9}));
  EXPECT_EQ(b - a, (V3{3, 3, 3}));
  EXPECT_EQ(a * 2.0, (V3{2, 4, 6}));
  EXPECT_EQ(2.0 * a, (V3{2, 4, 6}));
  EXPECT_EQ(-a, (V3{-1, -2, -3}));
  EXPECT_DOUBLE_EQ(a[0], 1);
  EXPECT_DOUBLE_EQ(a[1], 2);
  EXPECT_DOUBLE_EQ(a[2], 3);
}

TEST(V3, DotCrossNorm) {
  const V3 a{1, 0, 0}, b{0, 1, 0};
  EXPECT_DOUBLE_EQ(a.dot(b), 0.0);
  EXPECT_EQ(a.cross(b), (V3{0, 0, 1}));
  EXPECT_EQ(b.cross(a), (V3{0, 0, -1}));
  EXPECT_DOUBLE_EQ((V3{3, 4, 0}).norm(), 5.0);
  EXPECT_DOUBLE_EQ((V3{3, 4, 0}).norm2(), 25.0);
}

TEST(V3, NormalizedHandlesZero) {
  EXPECT_NEAR((V3{0, 0, 5}).normalized().z, 1.0, 1e-15);
  EXPECT_EQ((V3{0, 0, 0}).normalized(), (V3{0, 0, 0}));
}

// ---------------------------------------------------------------------------
// M33

TEST(M33, IdentityAndProducts) {
  const M33 identity = M33::identity();
  const V3 v{1.5, -2.5, 3.5};
  EXPECT_EQ(identity * v, v);
  const M33 a{{1, 2, 3, 4, 5, 6, 7, 8, 10}};
  EXPECT_EQ(a * identity, a);
  EXPECT_EQ(identity * a, a);
}

TEST(M33, RowColumnConstruction) {
  const M33 fromRows = M33::fromRows({1, 2, 3}, {4, 5, 6}, {7, 8, 9});
  const M33 fromColumns = M33::fromColumns({1, 4, 7}, {2, 5, 8}, {3, 6, 9});
  EXPECT_EQ(fromRows, fromColumns);
  EXPECT_EQ(fromRows.row(1), (V3{4, 5, 6}));
  EXPECT_EQ(fromRows.column(2), (V3{3, 6, 9}));
}

TEST(M33, DeterminantAndTrace) {
  const M33 a{{2, 0, 0, 0, 3, 0, 0, 0, 4}};
  EXPECT_DOUBLE_EQ(a.determinant(), 24.0);
  EXPECT_DOUBLE_EQ(a.trace(), 9.0);
}

TEST(M33, InverseRoundTripRandomMatrices) {
  Xoshiro256 rng(101);
  for (int trial = 0; trial < 200; ++trial) {
    M33 m;
    for (auto& entry : m.m) {
      entry = rng.uniform(-2.0, 2.0);
    }
    if (std::fabs(m.determinant()) < 0.05) {
      continue; // skip near-singular draws
    }
    const M33 product = m * inverse(m);
    EXPECT_LT(maxAbsDiff(product, M33::identity()), 1e-9);
  }
}

TEST(M33, SingularInverseThrows) {
  const M33 singular{{1, 2, 3, 2, 4, 6, 0, 0, 1}}; // row1 = 2*row0
  EXPECT_THROW(inverse(singular), NumericalError);
  EXPECT_THROW(inverse(M33::zero()), NumericalError);
}

TEST(M33, RotationPreservesLengthsAndOrientation) {
  Xoshiro256 rng(202);
  for (int trial = 0; trial < 100; ++trial) {
    const V3 axis{rng.normal(), rng.normal(), rng.normal()};
    if (axis.norm() < 1e-6) {
      continue;
    }
    const double angle = rng.uniform(-kPi, kPi);
    const M33 r = rotationAboutAxis(axis, angle);
    EXPECT_NEAR(r.determinant(), 1.0, 1e-12);
    EXPECT_LT(maxAbsDiff(r * r.transposed(), M33::identity()), 1e-12);
    // The axis is fixed.
    EXPECT_LT(maxAbsDiff(r * axis, axis), 1e-9 * std::max(1.0, axis.norm()));
  }
}

TEST(M33, RotationKnownQuarterTurn) {
  const M33 r = rotationAboutAxis({0, 0, 1}, kPi / 2.0);
  EXPECT_LT(maxAbsDiff(r * V3{1, 0, 0}, V3{0, 1, 0}), 1e-14);
  EXPECT_LT(maxAbsDiff(r * V3{0, 1, 0}, V3{-1, 0, 0}), 1e-14);
}

// ---------------------------------------------------------------------------
// Lattice

TEST(Lattice, CubicBMatrixIsDiagonal) {
  const Lattice cubic = Lattice::cubic(4.0);
  EXPECT_DOUBLE_EQ(cubic.volume(), 64.0);
  EXPECT_NEAR(cubic.aStar(), 0.25, 1e-12);
  const M33 expected{{0.25, 0, 0, 0, 0.25, 0, 0, 0, 0.25}};
  EXPECT_LT(maxAbsDiff(cubic.B(), expected), 1e-12);
}

TEST(Lattice, DSpacingCubic) {
  const Lattice cubic = Lattice::cubic(5.0);
  EXPECT_NEAR(cubic.dSpacing({1, 0, 0}), 5.0, 1e-12);
  EXPECT_NEAR(cubic.dSpacing({1, 1, 0}), 5.0 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(cubic.dSpacing({1, 1, 1}), 5.0 / std::sqrt(3.0), 1e-12);
  EXPECT_NEAR(cubic.qNorm({1, 0, 0}), units::kTwoPi / 5.0, 1e-12);
  EXPECT_THROW(cubic.dSpacing({0, 0, 0}), InvalidArgument);
}

TEST(Lattice, HexagonalDSpacing) {
  // d(hkl) for hexagonal: 1/d² = 4/3·(h²+hk+k²)/a² + l²/c².
  const double a = 8.376, c = 13.700;
  const Lattice hexagonal = Lattice::hexagonal(a, c);
  auto expectedD = [&](double h, double k, double l) {
    return 1.0 / std::sqrt(4.0 / 3.0 * (h * h + h * k + k * k) / (a * a) +
                           l * l / (c * c));
  };
  for (const V3 hkl : {V3{1, 0, 0}, V3{1, 1, 0}, V3{0, 0, 2}, V3{2, 1, 3}}) {
    EXPECT_NEAR(hexagonal.dSpacing(hkl), expectedD(hkl.x, hkl.y, hkl.z), 1e-9)
        << "hkl " << hkl;
  }
}

TEST(Lattice, BenzilAndBixbyitePresets) {
  const Lattice benzil = Lattice::benzil();
  EXPECT_DOUBLE_EQ(benzil.a(), 8.376);
  EXPECT_DOUBLE_EQ(benzil.c(), 13.700);
  EXPECT_DOUBLE_EQ(benzil.gammaDeg(), 120.0);
  const Lattice bixbyite = Lattice::bixbyite();
  EXPECT_DOUBLE_EQ(bixbyite.a(), 9.411);
  EXPECT_DOUBLE_EQ(bixbyite.alphaDeg(), 90.0);
}

TEST(Lattice, InvalidParametersThrow) {
  EXPECT_THROW(Lattice(0, 1, 1, 90, 90, 90), InvalidArgument);
  EXPECT_THROW(Lattice(1, 1, 1, 0, 90, 90), InvalidArgument);
  EXPECT_THROW(Lattice(1, 1, 1, 180, 90, 90), InvalidArgument);
  // Angle triple violating the triangle-like inequality: impossible cell.
  EXPECT_THROW(Lattice(1, 1, 1, 10, 10, 170), InvalidArgument);
}

TEST(Lattice, BInverseConsistent) {
  const Lattice lattice = Lattice::benzil();
  EXPECT_LT(maxAbsDiff(lattice.B() * lattice.Binv(), M33::identity()), 1e-12);
}

// ---------------------------------------------------------------------------
// OrientedLattice

TEST(OrientedLattice, IdentityOrientation) {
  const OrientedLattice oriented{Lattice::cubic(4.0)};
  EXPECT_LT(maxAbsDiff(oriented.U(), M33::identity()), 1e-14);
  EXPECT_LT(maxAbsDiff(oriented.UB(), oriented.lattice().B()), 1e-14);
}

TEST(OrientedLattice, UFromVectorsIsProperRotation) {
  const OrientedLattice oriented(Lattice::benzil(), V3{0, 0, 1}, V3{1, 0, 0});
  EXPECT_TRUE(isRotation(oriented.U(), 1e-9));
}

TEST(OrientedLattice, UVectorPointsAlongBeam) {
  // u = (0,0,1): the (0,0,L) reciprocal direction must map to +Z (beam).
  const OrientedLattice oriented(Lattice::bixbyite(), V3{0, 0, 1}, V3{1, 1, 0});
  const V3 q = oriented.qSampleFromHkl({0, 0, 1}).normalized();
  EXPECT_NEAR(q.z, 1.0, 1e-9);
  // v = (1,1,0) must land in the X-Z plane with positive X.
  const V3 qv = oriented.qSampleFromHkl({1, 1, 0});
  EXPECT_NEAR(qv.y, 0.0, 1e-9);
  EXPECT_GT(qv.x, 0.0);
}

TEST(OrientedLattice, HklQRoundTrip) {
  const OrientedLattice oriented(Lattice::benzil(), V3{0, 0, 1}, V3{1, 0, 0});
  Xoshiro256 rng(303);
  for (int trial = 0; trial < 100; ++trial) {
    const V3 hkl{rng.uniform(-8, 8), rng.uniform(-8, 8), rng.uniform(-8, 8)};
    const V3 q = oriented.qSampleFromHkl(hkl);
    EXPECT_LT(maxAbsDiff(oriented.hklFromQSample(q), hkl), 1e-9);
  }
}

TEST(OrientedLattice, QMagnitudeMatchesDSpacing) {
  const OrientedLattice oriented(Lattice::bixbyite(), V3{0, 0, 1}, V3{1, 1, 0});
  const V3 hkl{2, 1, 1};
  const double q = oriented.qSampleFromHkl(hkl).norm();
  EXPECT_NEAR(q, units::kTwoPi / oriented.lattice().dSpacing(hkl), 1e-9);
}

TEST(OrientedLattice, CollinearVectorsThrow) {
  EXPECT_THROW(OrientedLattice(Lattice::cubic(4.0), V3{1, 1, 0}, V3{2, 2, 0}),
               InvalidArgument);
  EXPECT_THROW(OrientedLattice(Lattice::cubic(4.0), V3{0, 0, 0}, V3{1, 0, 0}),
               InvalidArgument);
}

TEST(OrientedLattice, NonRotationUThrows) {
  M33 notRotation = M33::identity();
  notRotation(0, 0) = 2.0;
  EXPECT_THROW(OrientedLattice(Lattice::cubic(4.0), notRotation),
               InvalidArgument);
}

// ---------------------------------------------------------------------------
// Centering / systematic absences

TEST(Centering, PrimitiveAllowsEverything) {
  for (int h = -3; h <= 3; ++h) {
    for (int k = -3; k <= 3; ++k) {
      for (int l = -3; l <= 3; ++l) {
        EXPECT_TRUE(reflectionAllowed(Centering::P, h, k, l));
      }
    }
  }
}

TEST(Centering, BodyCenteredParityRule) {
  // Bixbyite's rule: h+k+l even.
  EXPECT_TRUE(reflectionAllowed(Centering::I, 1, 1, 0));
  EXPECT_TRUE(reflectionAllowed(Centering::I, 2, 0, 0));
  EXPECT_TRUE(reflectionAllowed(Centering::I, -1, -1, 2));
  EXPECT_FALSE(reflectionAllowed(Centering::I, 1, 0, 0));
  EXPECT_FALSE(reflectionAllowed(Centering::I, 1, 1, 1));
  EXPECT_FALSE(reflectionAllowed(Centering::I, -1, 2, 2));
}

TEST(Centering, FaceCenteredAllSameParity) {
  EXPECT_TRUE(reflectionAllowed(Centering::F, 1, 1, 1));
  EXPECT_TRUE(reflectionAllowed(Centering::F, 2, 0, 2));
  EXPECT_FALSE(reflectionAllowed(Centering::F, 1, 1, 0));
  EXPECT_FALSE(reflectionAllowed(Centering::F, 2, 1, 0));
}

TEST(Centering, SideCenteredRules) {
  EXPECT_TRUE(reflectionAllowed(Centering::A, 3, 1, 1));  // k+l even
  EXPECT_FALSE(reflectionAllowed(Centering::A, 3, 1, 2));
  EXPECT_TRUE(reflectionAllowed(Centering::B, 1, 3, 1));  // h+l even
  EXPECT_FALSE(reflectionAllowed(Centering::B, 1, 3, 2));
  EXPECT_TRUE(reflectionAllowed(Centering::C, 1, 1, 3));  // h+k even
  EXPECT_FALSE(reflectionAllowed(Centering::C, 1, 2, 3));
}

TEST(Centering, RhombohedralObverseRule) {
  // -h+k+l = 3n.
  EXPECT_TRUE(reflectionAllowed(Centering::R, 0, 0, 3));
  EXPECT_TRUE(reflectionAllowed(Centering::R, 1, 0, 1));
  EXPECT_TRUE(reflectionAllowed(Centering::R, 0, 0, 0));
  EXPECT_FALSE(reflectionAllowed(Centering::R, 0, 0, 1));
  EXPECT_FALSE(reflectionAllowed(Centering::R, 1, 0, 0));
}

TEST(Centering, ParseAndSymbolRoundTrip) {
  for (Centering c : {Centering::P, Centering::I, Centering::F, Centering::A,
                      Centering::B, Centering::C, Centering::R}) {
    EXPECT_EQ(parseCentering(centeringSymbol(c)), c);
  }
  EXPECT_EQ(parseCentering("i"), Centering::I);
  EXPECT_THROW(parseCentering("X"), InvalidArgument);
  EXPECT_THROW(parseCentering(""), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Goniometer

TEST(Goniometer, IdentityByDefault) {
  const Goniometer goniometer;
  EXPECT_LT(maxAbsDiff(goniometer.R(), M33::identity()), 1e-15);
  EXPECT_EQ(goniometer.depth(), 0u);
}

TEST(Goniometer, OmegaRotatesAboutVerticalAxis) {
  const Goniometer goniometer = Goniometer::omega(90.0);
  // +Z rotates toward +X for a positive rotation about +Y.
  EXPECT_LT(maxAbsDiff(goniometer.R() * V3{0, 0, 1}, V3{1, 0, 0}), 1e-12);
  EXPECT_EQ(goniometer.depth(), 1u);
  EXPECT_EQ(goniometer.name(0), "omega");
}

TEST(Goniometer, StackedRotationsCompose) {
  Goniometer goniometer;
  goniometer.push("omega", {0, 1, 0}, 30.0).push("chi", {0, 0, 1}, 45.0);
  const M33 expected = rotationAboutAxis({0, 1, 0}, 30.0 * kPi / 180.0) *
                       rotationAboutAxis({0, 0, 1}, 45.0 * kPi / 180.0);
  EXPECT_LT(maxAbsDiff(goniometer.R(), expected), 1e-12);
  EXPECT_TRUE(isRotation(goniometer.R(), 1e-9));
}

TEST(Goniometer, InverseIsTranspose) {
  const Goniometer goniometer = Goniometer::omega(73.0);
  EXPECT_LT(maxAbsDiff(goniometer.R() * goniometer.Rinv(), M33::identity()),
            1e-12);
}

} // namespace
} // namespace vates
