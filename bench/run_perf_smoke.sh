#!/usr/bin/env bash
# Perf smoke steps, each aggregating one JSON report at the repo root:
#
#   mdnorm  — the BM_MDNorm_Traversal sweep at the Table-4-like
#             configuration (Benzil CORELLI, 603x603x1 [H,K,0] slice)
#             → BENCH_mdnorm.json
#   service — the reduction-service jobs x workers x batching sweep over
#             a duplicate-grid job set → BENCH_service.json
#
# Usage:  BUILD_DIR=/path/to/build bench/run_perf_smoke.sh
#         (BUILD_DIR defaults to <repo>/build; set
#          VATES_PERF_SMOKE_ONLY=mdnorm|service to run one step)
#
# Wired into ctest as `perf_smoke_mdnorm` / `perf_smoke_service` behind
# -DVATES_PERF_SMOKE=ON with LABELS perf, so tier-1 `ctest` runs never
# pay for it.

set -euo pipefail

script_dir="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
repo_root="$(cd "${script_dir}/.." && pwd)"
build_dir="${BUILD_DIR:-${repo_root}/build}"
only="${VATES_PERF_SMOKE_ONLY:-all}"

run_service_step() {
  local bench_bin="${build_dir}/bench/bench_ablation_service"
  local out_json="${repo_root}/BENCH_service.json"
  if [[ ! -x "${bench_bin}" ]]; then
    echo "error: ${bench_bin} not found or not executable" >&2
    echo "build first: cmake --build ${build_dir} --target bench_ablation_service" >&2
    exit 1
  fi
  "${bench_bin}" --jobs 4,8 --workers 1,2 > "${out_json}"
  python3 - "${out_json}" <<'PY'
import json
import sys

path = sys.argv[1]
with open(path) as f:
    doc = json.load(f)
with open(path, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {path}")
for cell in doc.get("cells", []):
    print("  jobs={jobs} workers={workers} batching={batching}: "
          "norm_passes={normalization_passes} wall={wall_s:.2f}s".format(**cell))
PY
}

if [[ "${only}" == "service" ]]; then
  run_service_step
  exit 0
fi

bench_bin="${build_dir}/bench/bench_ablation_sort"
out_json="${repo_root}/BENCH_mdnorm.json"
raw_json="$(mktemp /tmp/bench_mdnorm_raw.XXXXXX.json)"
trap 'rm -f "${raw_json}"' EXIT

if [[ ! -x "${bench_bin}" ]]; then
  echo "error: ${bench_bin} not found or not executable" >&2
  echo "build first: cmake --build ${build_dir} --target bench_ablation_sort" >&2
  exit 1
fi

"${bench_bin}" \
  --benchmark_filter='BM_MDNorm_Traversal/.*/603x603x1' \
  --benchmark_format=json \
  --benchmark_min_time=0.05 \
  > "${raw_json}"

python3 - "${raw_json}" "${out_json}" <<'PY'
import json
import sys

raw_path, out_path = sys.argv[1], sys.argv[2]
with open(raw_path) as f:
    raw = json.load(f)

# Rows are named
# BM_MDNorm_Traversal/<traversal>/<backend>/<simd>/<bins>[/...]
# with simd in {scalar, simd} (the vector row exists for dda only).
# Per backend, a row lands under "<traversal>[_simd]" prefixed keys:
# seconds, events/s, and % of the STREAM-triad roofline.
backends = {}
for row in raw.get("benchmarks", []):
    if row.get("run_type") == "aggregate" or "error_occurred" in row:
        continue
    parts = row["name"].split("/")
    if len(parts) < 5 or parts[0] != "BM_MDNorm_Traversal":
        continue
    traversal, backend, simd = parts[1], parts[2], parts[3]
    seconds = row.get("mdnorm_s")
    if seconds is None:
        continue
    key = traversal.replace("-", "_") + ("_simd" if simd == "simd" else "")
    entry = backends.setdefault(backend, {})
    entry[key + "_s"] = seconds
    if row.get("events_per_s") is not None:
        entry[key + "_events_per_s"] = row["events_per_s"]
    if row.get("roofline_pct") is not None:
        entry[key + "_roofline_pct"] = row["roofline_pct"]

for name, entry in backends.items():
    legacy = entry.get("legacy_s")
    keys = entry.get("sorted_keys_s")
    dda = entry.get("dda_s")
    dda_simd = entry.get("dda_simd_s")
    if legacy and dda:
        entry["speedup_dda_vs_legacy"] = legacy / dda
    if keys and dda:
        entry["speedup_dda_vs_sorted_keys"] = keys / dda
    if dda and dda_simd:
        entry["speedup_simd_vs_scalar_dda"] = dda / dda_simd

context = raw.get("context", {})
simd_info = {}
if "simd_isa" in context:
    simd_info["isa"] = context["simd_isa"]
if "simd_width" in context:
    simd_info["width"] = int(context["simd_width"])
if "triad_bytes_per_s" in context:
    simd_info["triad_bytes_per_s"] = float(context["triad_bytes_per_s"])

result = {
    "benchmark": "mdnorm_traversal_ablation",
    "config": "benzil-corelli scale=0.002 bins=603x603x1",
    "metric": "mean MDNorm kernel seconds per invocation (mdnorm_s counter); "
              "events_per_s = deposit segments/s; roofline_pct = achieved "
              "bytes/s (48 B/segment model) over STREAM-triad bandwidth",
    "simd": simd_info,
    "backends": backends,
}
with open(out_path, "w") as f:
    json.dump(result, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out_path}")
if simd_info:
    print("  simd: isa={isa} width={width}".format(
        isa=simd_info.get("isa", "?"), width=simd_info.get("width", "?")))
for name in sorted(backends):
    entry = backends[name]
    speedup = entry.get("speedup_dda_vs_legacy")
    if speedup is not None:
        print(f"  {name}: dda vs legacy speedup = {speedup:.2f}x")
    simd_speedup = entry.get("speedup_simd_vs_scalar_dda")
    if simd_speedup is not None:
        print(f"  {name}: simd vs scalar dda speedup = {simd_speedup:.2f}x")
PY

if [[ "${only}" == "all" ]]; then
  run_service_step
fi
