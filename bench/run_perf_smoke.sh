#!/usr/bin/env bash
# Perf smoke steps, each aggregating one JSON report at the repo root:
#
#   mdnorm  — the BM_MDNorm_Traversal sweep at the Table-4-like
#             configuration (Benzil CORELLI, 603x603x1 [H,K,0] slice)
#             → BENCH_mdnorm.json
#   service — the reduction-service jobs x workers x batching sweep over
#             a duplicate-grid job set → BENCH_service.json
#   cache   — the persistent-cache cold/warm/incremental sweep plus the
#             benzil_small cold-vs-warm headline → BENCH_cache.json
#   scenario — the generated-scenario shape x mask x events sweep,
#             autotuned vs fixed config → BENCH_scenario.json
#   stream  — the shm ring transport events/s x ring size x readers x
#             policy sweep → BENCH_stream.json
#
# Usage:  BUILD_DIR=/path/to/build bench/run_perf_smoke.sh
#         (BUILD_DIR defaults to <repo>/build; set
#          VATES_PERF_SMOKE_ONLY=mdnorm|service|cache|scenario|stream
#          to run one step)
#
# Wired into ctest as `perf_smoke_mdnorm` / `perf_smoke_service` /
# `perf_smoke_cache` / `perf_smoke_scenario` / `perf_smoke_stream`
# behind -DVATES_PERF_SMOKE=ON
# with LABELS perf, so tier-1 `ctest` runs never pay for it.
#
# Every binary the selected steps need is verified up front: a missing
# binary fails the whole run (non-zero) before any BENCH_*.json is
# written, so a partial report set can never masquerade as a completed
# smoke.

set -euo pipefail

script_dir="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
repo_root="$(cd "${script_dir}/.." && pwd)"
build_dir="${BUILD_DIR:-${repo_root}/build}"
only="${VATES_PERF_SMOKE_ONLY:-all}"

case "${only}" in
  all|mdnorm|service|cache|scenario|stream) ;;
  *)
    echo "error: VATES_PERF_SMOKE_ONLY=${only} (want mdnorm|service|cache|scenario|stream|all)" >&2
    exit 1
    ;;
esac

# -- up-front binary check: fail loudly before any JSON is written ------
required_binaries=()
if [[ "${only}" == "all" || "${only}" == "mdnorm" ]]; then
  required_binaries+=("bench_ablation_sort")
fi
if [[ "${only}" == "all" || "${only}" == "service" ]]; then
  required_binaries+=("bench_ablation_service")
fi
if [[ "${only}" == "all" || "${only}" == "cache" ]]; then
  required_binaries+=("bench_ablation_cache")
fi
if [[ "${only}" == "all" || "${only}" == "scenario" ]]; then
  required_binaries+=("bench_ablation_scenario")
fi
if [[ "${only}" == "all" || "${only}" == "stream" ]]; then
  required_binaries+=("bench_ablation_stream")
fi

missing=0
for name in "${required_binaries[@]}"; do
  if [[ ! -x "${build_dir}/bench/${name}" ]]; then
    echo "error: ${build_dir}/bench/${name} not found or not executable" >&2
    echo "build first: cmake --build ${build_dir} --target ${name}" >&2
    missing=1
  fi
done
if [[ "${missing}" -ne 0 ]]; then
  echo "error: refusing to run with missing bench binaries; no BENCH_*.json written" >&2
  exit 1
fi

run_mdnorm_step() {
  local bench_bin="${build_dir}/bench/bench_ablation_sort"
  local out_json="${repo_root}/BENCH_mdnorm.json"
  local raw_json
  raw_json="$(mktemp /tmp/bench_mdnorm_raw.XXXXXX.json)"
  trap 'rm -f "${raw_json}"' RETURN

  "${bench_bin}" \
    --benchmark_filter='BM_MDNorm_Traversal/.*/603x603x1' \
    --benchmark_format=json \
    --benchmark_min_time=0.05 \
    > "${raw_json}"

  python3 - "${raw_json}" "${out_json}" <<'PY'
import json
import sys

raw_path, out_path = sys.argv[1], sys.argv[2]
with open(raw_path) as f:
    raw = json.load(f)

# Rows are named
# BM_MDNorm_Traversal/<traversal>/<backend>/<simd>/<bins>[/...]
# with simd in {scalar, simd} (the vector row exists for dda only).
# Per backend, a row lands under "<traversal>[_simd]" prefixed keys:
# seconds, events/s, and % of the STREAM-triad roofline.
backends = {}
for row in raw.get("benchmarks", []):
    if row.get("run_type") == "aggregate" or "error_occurred" in row:
        continue
    parts = row["name"].split("/")
    if len(parts) < 5 or parts[0] != "BM_MDNorm_Traversal":
        continue
    traversal, backend, simd = parts[1], parts[2], parts[3]
    seconds = row.get("mdnorm_s")
    if seconds is None:
        continue
    key = traversal.replace("-", "_") + ("_simd" if simd == "simd" else "")
    entry = backends.setdefault(backend, {})
    entry[key + "_s"] = seconds
    if row.get("events_per_s") is not None:
        entry[key + "_events_per_s"] = row["events_per_s"]
    if row.get("roofline_pct") is not None:
        entry[key + "_roofline_pct"] = row["roofline_pct"]

for name, entry in backends.items():
    legacy = entry.get("legacy_s")
    keys = entry.get("sorted_keys_s")
    dda = entry.get("dda_s")
    dda_simd = entry.get("dda_simd_s")
    if legacy and dda:
        entry["speedup_dda_vs_legacy"] = legacy / dda
    if keys and dda:
        entry["speedup_dda_vs_sorted_keys"] = keys / dda
    if dda and dda_simd:
        entry["speedup_simd_vs_scalar_dda"] = dda / dda_simd

context = raw.get("context", {})
simd_info = {}
if "simd_isa" in context:
    simd_info["isa"] = context["simd_isa"]
if "simd_width" in context:
    simd_info["width"] = int(context["simd_width"])
if "triad_bytes_per_s" in context:
    simd_info["triad_bytes_per_s"] = float(context["triad_bytes_per_s"])

result = {
    "benchmark": "mdnorm_traversal_ablation",
    "config": "benzil-corelli scale=0.002 bins=603x603x1",
    "metric": "mean MDNorm kernel seconds per invocation (mdnorm_s counter); "
              "events_per_s = deposit segments/s; roofline_pct = achieved "
              "bytes/s (48 B/segment model) over STREAM-triad bandwidth",
    "simd": simd_info,
    "backends": backends,
}
with open(out_path, "w") as f:
    json.dump(result, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out_path}")
if simd_info:
    print("  simd: isa={isa} width={width}".format(
        isa=simd_info.get("isa", "?"), width=simd_info.get("width", "?")))
for name in sorted(backends):
    entry = backends[name]
    speedup = entry.get("speedup_dda_vs_legacy")
    if speedup is not None:
        print(f"  {name}: dda vs legacy speedup = {speedup:.2f}x")
    simd_speedup = entry.get("speedup_simd_vs_scalar_dda")
    if simd_speedup is not None:
        print(f"  {name}: simd vs scalar dda speedup = {simd_speedup:.2f}x")
PY
}

run_service_step() {
  local bench_bin="${build_dir}/bench/bench_ablation_service"
  local out_json="${repo_root}/BENCH_service.json"
  "${bench_bin}" --jobs 4,8 --workers 1,2 > "${out_json}"
  python3 - "${out_json}" <<'PY'
import json
import sys

path = sys.argv[1]
with open(path) as f:
    doc = json.load(f)
with open(path, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {path}")
for cell in doc.get("cells", []):
    print("  jobs={jobs} workers={workers} batching={batching}: "
          "norm_passes={normalization_passes} wall={wall_s:.2f}s".format(**cell))
PY
}

run_cache_step() {
  local bench_bin="${build_dir}/bench/bench_ablation_cache"
  local out_json="${repo_root}/BENCH_cache.json"
  "${bench_bin}" --files 2,4 --jobs 4 --workers 1,2 > "${out_json}"
  python3 - "${out_json}" <<'PY'
import json
import sys

path = sys.argv[1]
with open(path) as f:
    doc = json.load(f)
with open(path, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {path}")
for cell in doc.get("cells", []):
    print("  mode={mode} files={files} workers={workers}: "
          "hits={cache_hits} misses={cache_misses} "
          "norm_passes={normalization_passes} wall={wall_s:.3f}s "
          "p95={p95:.3f}s".format(p95=cell["run"]["p95_s"], **cell))
head = doc.get("headline", {})
if head:
    print("  headline {plan}: cold_p95={cold_p95:.4f}s warm_p95={warm_p95:.4f}s "
          "speedup={speedup:.1f}x (wall cold={cold_s:.3f}s warm={warm_s:.3f}s "
          "warm_first={warm_first_s:.3f}s warm_disk={warm_disk_s:.3f}s)"
          .format(cold_p95=head["cold_run"]["p95_s"],
                  warm_p95=head["warm_run"]["p95_s"], **head))
    if head.get("speedup", 0.0) < 5.0:
        print("  warning: warm speedup below the 5x acceptance bar",
              file=sys.stderr)
PY
}

run_scenario_step() {
  local bench_bin="${build_dir}/bench/bench_ablation_scenario"
  local out_json="${repo_root}/BENCH_scenario.json"
  "${bench_bin}" --indices 0,1,2,3,4,5 --event-scales 1,4 --repeats 3 \
    > "${out_json}"
  python3 - "${out_json}" <<'PY'
import json
import sys

path = sys.argv[1]
with open(path) as f:
    doc = json.load(f)
with open(path, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {path}")
for cell in doc.get("cells", []):
    print("  {scenario} ({shape} mask={mask_fraction:g} events={events}): "
          "fixed={fixed_events_per_s:.3g} ev/s tuned={tuned_events_per_s:.3g} "
          "ev/s probe={probe_s:.3f}s tuned_vs_best={tuned_vs_best:.2f} "
          "[{decision}]".format(**cell))
PY
}

run_stream_step() {
  local bench_bin="${build_dir}/bench/bench_ablation_stream"
  local out_json="${repo_root}/BENCH_stream.json"
  "${bench_bin}" --pulses 2000 --events 4096 --rings 256,1024 \
    --readers 1,2,4 > "${out_json}"
  python3 - "${out_json}" <<'PY'
import json
import sys

path = sys.argv[1]
with open(path) as f:
    doc = json.load(f)
with open(path, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {path}")
for cell in doc.get("cells", []):
    dropped = sum(r["frames_dropped"] for r in cell["reader_stats"])
    print("  frames={ring_frames} readers={readers} policy={policy}: "
          "{events_per_second:.3g} ev/s waits={backpressure_waits} "
          "dropped={dropped}".format(dropped=dropped, **cell))
peak = doc.get("peak_events_per_second", 0.0)
print(f"  peak: {peak:.3g} events/s")
if peak < 1e6:
    print("  warning: peak below the 1M events/s acceptance bar",
          file=sys.stderr)
    sys.exit(1)
PY
}

if [[ "${only}" == "all" || "${only}" == "mdnorm" ]]; then
  run_mdnorm_step
fi
if [[ "${only}" == "all" || "${only}" == "service" ]]; then
  run_service_step
fi
if [[ "${only}" == "all" || "${only}" == "cache" ]]; then
  run_cache_step
fi
if [[ "${only}" == "all" || "${only}" == "scenario" ]]; then
  run_scenario_step
fi
if [[ "${only}" == "all" || "${only}" == "stream" ]]; then
  run_stream_step
fi
