// Ablation: the overlapped multi-run execution engine, end to end.
//
// Algorithm 1's outer loop is LOAD → MDNorm → BinMD per file; the
// overlap engine (ReductionConfig::overlap) prefetches file i+1 on a
// background thread while file i computes, and in `full` mode also runs
// MDNorm and BinMD side by side (they write disjoint grids).  This
// bench sweeps:
//
//   overlap mode  × file count × rank count × load model
//   (off/prefetch/full)  (4, 8)     (1, 4)     (in-memory, file-arrival)
//
// The "wait" load model charges each file a fixed arrival latency
// (ReductionConfig::simulatedLoadLatencySeconds), standing in for the
// facility's parallel file system delivering runs as the measurement
// proceeds — the regime the paper's streaming workflow targets and the
// one where prefetch pays regardless of core count.  The in-memory rows
// keep the engine honest on pure CPU cost: on a single hardware thread
// they should show overlap ≈ sequential, not a fabricated win.
//
// JSON output like the other ablations: --benchmark_format=json.

#include "vates/core/pipeline.hpp"
#include "vates/events/experiment_setup.hpp"

#include <benchmark/benchmark.h>

#include <cstddef>
#include <map>
#include <memory>
#include <string>

namespace {

using namespace vates;
using namespace vates::core;

Backend cpuBackend() {
#ifdef VATES_HAS_OPENMP
  return Backend::OpenMP;
#else
  return Backend::ThreadPool;
#endif
}

/// One setup per file count, built lazily (instrument construction
/// dominates; the event synthesis itself is measured as UpdateEvents).
ExperimentSetup& setupFor(std::size_t nFiles) {
  static std::map<std::size_t, std::unique_ptr<ExperimentSetup>> cache;
  std::unique_ptr<ExperimentSetup>& slot = cache[nFiles];
  if (!slot) {
    WorkloadSpec spec = WorkloadSpec::benzilCorelli(0.001);
    spec.nFiles = nFiles;
    slot = std::make_unique<ExperimentSetup>(spec);
  }
  return *slot;
}

void BM_Pipeline_Overlap(benchmark::State& state) {
  const auto mode = static_cast<OverlapMode>(state.range(0));
  const auto nFiles = static_cast<std::size_t>(state.range(1));
  const int ranks = static_cast<int>(state.range(2));
  const bool modelFileArrival = state.range(3) != 0;

  const ExperimentSetup& setup = setupFor(nFiles);
  ReductionConfig config;
  config.backend = cpuBackend();
  config.ranks = ranks;
  config.overlap.mode = mode;
  config.overlap.prefetchDepth = 1;
  if (modelFileArrival) {
    config.simulatedLoadLatencySeconds = 0.01;
  }
  const ReductionPipeline pipeline(setup, config);

  double wall = 0.0;
  double criticalPath = 0.0;
  double summed = 0.0;
  for (auto _ : state) {
    const ReductionResult result = pipeline.run();
    benchmark::DoNotOptimize(result.crossSection.data().data());
    wall += result.wallSeconds;
    criticalPath += result.times.grandTotal();
    summed += result.timesSummed.grandTotal();
  }
  const auto iterations = static_cast<double>(state.iterations());
  state.counters["wall_s"] = wall / iterations;
  state.counters["stage_critical_s"] = criticalPath / iterations;
  state.counters["stage_summed_s"] = summed / iterations;
  // How much stage work the engine hid inside the same wall time.
  state.counters["overlap_x"] =
      wall > 0.0 ? summed / wall : 0.0;
}

void registerSweep() {
  for (const long latency : {0L, 1L}) {
    for (const long nFiles : {4L, 8L}) {
      for (const long ranks : {1L, 4L}) {
        for (const long mode : {0L, 1L, 2L}) {
          const std::string name =
              std::string("BM_Pipeline_Overlap/") +
              overlapModeName(static_cast<OverlapMode>(mode)) +
              "/files=" + std::to_string(nFiles) +
              "/ranks=" + std::to_string(ranks) +
              (latency != 0 ? "/file-arrival" : "/in-memory");
          benchmark::RegisterBenchmark(name.c_str(), BM_Pipeline_Overlap)
              ->Args({mode, nFiles, ranks, latency})
              ->Unit(benchmark::kMillisecond)
              ->UseRealTime();
        }
      }
    }
  }
}

} // namespace

int main(int argc, char** argv) {
  registerSweep();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
