// Ablation: the multi-tenant reduction service, end to end.
//
// A facility front end rarely sees one job at a time: many users submit
// reductions of the *same* measurement grid (same instrument, lattice,
// flux band, binning) over different data.  The service's shared-grid
// batching computes the MDNorm normalization once per batch and reuses
// it for every follower, so the interesting sweep is
//
//   job count × worker count × batching (on/off)
//
// over a duplicate-grid job set (jobs differ only in their event seed —
// exactly the case the normalization key declares compatible).  For
// each cell the bench reports wall time, throughput, queue-wait and run
// latency percentiles, and — the headline — how many MDNorm passes the
// service actually paid (normalization_passes) versus the job count.
//
// Output: a JSON document on stdout (aggregated into BENCH_service.json
// by bench/run_perf_smoke.sh).

#include "vates/core/plan.hpp"
#include "vates/service/reduction_service.hpp"
#include "vates/service/wire.hpp"
#include "vates/support/cli.hpp"

#include <cstdint>
#include <iostream>
#include <vector>

namespace {

using namespace vates;
using namespace vates::service;

Backend cpuBackend() {
#ifdef VATES_HAS_OPENMP
  return Backend::OpenMP;
#else
  return Backend::ThreadPool;
#endif
}

struct CellResult {
  std::size_t jobs = 0;
  std::size_t workers = 0;
  bool batching = false;
  double wallSeconds = 0.0;
  double throughputJobsPerSecond = 0.0;
  LatencyStats queueWait;
  LatencyStats run;
  std::uint64_t normalizationPasses = 0;
  std::uint64_t sharedNormalizationJobs = 0;
  double batchHitRate = 0.0;
  std::uint64_t doneJobs = 0;
};

CellResult runCell(double scale, std::size_t nFiles, std::size_t jobs,
                   std::size_t workers, bool batching) {
  ServiceOptions options;
  options.workers = workers;
  options.queueCapacity = jobs; // admit the whole burst
  options.batching = batching;
  options.maxBatch = jobs;

  CellResult cell;
  cell.jobs = jobs;
  cell.workers = workers;
  cell.batching = batching;

  WallTimer timer;
  ReductionService serviceInstance(options);
  std::vector<std::uint64_t> ids;
  ids.reserve(jobs);
  for (std::size_t i = 0; i < jobs; ++i) {
    JobRequest request;
    request.plan.workload = WorkloadSpec::benzilCorelli(scale);
    request.plan.workload.nFiles = nFiles;
    // Different data, same grid: only the seed varies, so every job
    // shares one normalization key.
    request.plan.workload.seed += i;
    request.plan.config.backend = cpuBackend();
    request.tag = "cell-" + std::to_string(i);
    const SubmitReceipt receipt = serviceInstance.submit(std::move(request));
    if (receipt.accepted) {
      ids.push_back(receipt.id);
    }
  }
  for (const std::uint64_t id : ids) {
    serviceInstance.wait(id);
  }
  cell.wallSeconds = timer.seconds();

  const ServiceMetrics metrics = serviceInstance.metrics();
  cell.doneJobs = metrics.done;
  cell.normalizationPasses = metrics.normalizationPasses;
  cell.sharedNormalizationJobs = metrics.sharedNormalizationJobs;
  cell.batchHitRate = metrics.batchHitRate();
  if (const auto it = metrics.latency.find("queue-wait");
      it != metrics.latency.end()) {
    cell.queueWait = it->second;
  }
  if (const auto it = metrics.latency.find("run");
      it != metrics.latency.end()) {
    cell.run = it->second;
  }
  if (cell.wallSeconds > 0.0) {
    cell.throughputJobsPerSecond =
        static_cast<double>(metrics.done) / cell.wallSeconds;
  }
  serviceInstance.shutdown(true);
  return cell;
}

std::string latencyJson(const LatencyStats& stats) {
  return JsonObject()
      .field("count", std::uint64_t{stats.count})
      .field("p50_s", stats.p50)
      .field("p95_s", stats.p95)
      .field("max_s", stats.max)
      .str();
}

} // namespace

int main(int argc, char** argv) {
  ArgParser args("bench_ablation_service",
                 "Service throughput/latency sweep: jobs x workers x "
                 "batching over a duplicate-grid job set");
  args.addOption("scale", "Workload scale factor", "0.0005");
  args.addOption("files", "Files (runs) per job", "2");
  args.addOption("jobs", "Comma-separated job counts", "4,8");
  args.addOption("workers", "Comma-separated worker counts", "1,2");
  if (!args.parse(argc, argv)) {
    return 0;
  }
  const double scale = args.getDouble("scale");
  const auto nFiles = static_cast<std::size_t>(args.getInt("files"));

  const auto parseList = [](const std::string& text) {
    std::vector<std::size_t> values;
    std::size_t start = 0;
    while (start <= text.size()) {
      const std::size_t comma = text.find(',', start);
      const std::string item =
          text.substr(start, comma == std::string::npos ? std::string::npos
                                                        : comma - start);
      if (!item.empty()) {
        values.push_back(static_cast<std::size_t>(std::stoul(item)));
      }
      if (comma == std::string::npos) {
        break;
      }
      start = comma + 1;
    }
    return values;
  };

  std::string cells;
  for (const std::size_t jobs : parseList(args.getString("jobs"))) {
    for (const std::size_t workers : parseList(args.getString("workers"))) {
      for (const bool batching : {false, true}) {
        const CellResult cell = runCell(scale, nFiles, jobs, workers, batching);
        if (!cells.empty()) {
          cells += ',';
        }
        cells += JsonObject()
                     .field("jobs", std::uint64_t{cell.jobs})
                     .field("workers", std::uint64_t{cell.workers})
                     .field("batching", cell.batching)
                     .field("done", cell.doneJobs)
                     .field("wall_s", cell.wallSeconds)
                     .field("throughput_jobs_per_s",
                            cell.throughputJobsPerSecond)
                     .field("normalization_passes", cell.normalizationPasses)
                     .field("shared_normalization_jobs",
                            cell.sharedNormalizationJobs)
                     .field("batch_hit_rate", cell.batchHitRate)
                     .fieldRaw("queue_wait", latencyJson(cell.queueWait))
                     .fieldRaw("run", latencyJson(cell.run))
                     .str();
        std::cerr << "jobs=" << cell.jobs << " workers=" << cell.workers
                  << " batching=" << (cell.batching ? "on" : "off")
                  << " wall=" << cell.wallSeconds
                  << "s norm_passes=" << cell.normalizationPasses << '\n';
      }
    }
  }

  JsonObject document;
  document.field("benchmark", "service_batching_ablation")
      .field("config", "benzil-corelli scale=" + args.getString("scale") +
                           " files=" + args.getString("files") +
                           " duplicate-grid jobs (seed varies)")
      .fieldRaw("cells", "[" + cells + "]");
  std::cout << document.str() << '\n';
  return 0;
}
