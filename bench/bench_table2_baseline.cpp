// Table II: the use-case characteristics and the Garnet/Mantid-style
// baseline wall-clock times (contribution C1).  Runs the deliberately
// monolithic baseline implementation on both workloads and prints the
// characteristics block plus MDNorm+BinMD and Total rows, alongside the
// paper's bl12-analysis2 values for shape comparison.
//
// Also prints the proxy/baseline speedup — the paper's headline "~74×
// on CPU" ratio — measured at the same scale on this machine.

#include "vates/baseline/garnet_workflow.hpp"
#include "vates/core/pipeline.hpp"
#include "vates/core/report.hpp"
#include "vates/support/cli.hpp"

#include <cstdio>
#include <iostream>

using namespace vates;

namespace {

void runCase(const char* paperLabel, const WorkloadSpec& spec,
             double paperMdnormBinmd, double paperTotal, std::size_t runLimit) {
  std::cout << "--- " << spec.name << " ---\n";
  std::cout << spec.characteristicsTable();

  const ExperimentSetup setup(spec);

  // Baseline (Garnet/Mantid-style, single-threaded, linear search,
  // struct sorts, per-item allocation).  Limit the number of runs so the
  // bench stays CI-friendly; times are reported per processed run too.
  const std::size_t runs = std::min<std::size_t>(runLimit, spec.nFiles);
  const baseline::GarnetResult garnet =
      baseline::GarnetWorkflow(setup).reduce(0, runs);

  // The optimized C++ proxy on the same runs, for the speedup line.
  core::ReductionConfig config;
#ifdef VATES_HAS_OPENMP
  config.backend = Backend::OpenMP;
#else
  config.backend = Backend::ThreadPool;
#endif
  WorkloadSpec limited = spec;
  limited.nFiles = runs;
  const ExperimentSetup limitedSetup(limited);
  const core::ReductionResult proxy =
      core::ReductionPipeline(limitedSetup, config).run();

  const double baselineKernels =
      garnet.times.total("MDNorm") + garnet.times.total("BinMD");
  const double proxyKernels =
      proxy.times.total("MDNorm") + proxy.times.total("BinMD");

  std::printf("  measured over %zu of %zu runs (baseline is slow by design):\n",
              runs, spec.nFiles);
  std::printf("  %-34s %10.3f s\n", "Garnet-style MDNorm + BinMD:",
              baselineKernels);
  std::printf("  %-34s %10.3f s\n", "Garnet-style Total:",
              garnet.times.grandTotal());
  std::printf("  %-34s %10.3f s\n", "C++ proxy MDNorm + BinMD:", proxyKernels);
  if (proxyKernels > 0.0) {
    std::printf("  %-34s %9.1fx\n", "Proxy speedup over baseline:",
                baselineKernels / proxyKernels);
  }
  std::printf("  paper (%s, full size): MDNorm+BinMD %.0f s, Total %.0f s\n\n",
              paperLabel, paperMdnormBinmd, paperTotal);
}

} // namespace

int main(int argc, char** argv) {
  ArgParser args("bench_table2_baseline",
                 "Table II: use-case characteristics + production baseline");
  args.addOption("scale", "Workload scale (1.0 = paper size)", "0.001");
  args.addOption("runs", "Max runs per workload for the baseline", "4");
  try {
    if (!args.parse(argc, argv)) {
      return 0;
    }
    const double scale = args.getDouble("scale");
    const auto runs = static_cast<std::size_t>(args.getInt("runs"));

    std::cout << "=== Table II: Selected use-case characteristics and WCTs "
                 "(baseline: bl12-analysis2) ===\n";
    std::cout << "scale = " << scale << "\n\n";

    runCase("CORELLI Benzil", WorkloadSpec::benzilCorelli(scale), 55.0, 271.0,
            runs);
    runCase("TOPAZ Bixbyite", WorkloadSpec::bixbyiteTopaz(scale), 102.0,
            904.0, runs);

    std::cout << "Shape check: Bixbyite must be the slower, more "
                 "memory-intensive case (paper: 102 s vs 55 s kernels; "
                 "904 s vs 271 s total).\n";
    return 0;
  } catch (const Error& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
}
