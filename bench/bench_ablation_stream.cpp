// Ablation: the shm ring transport, end to end.
//
// A beamline DAQ publishes pulse frames into the shared-memory ring;
// one or more live consumers (reducers, monitors) poll them back out.
// The interesting sweep is
//
//   ring size (frames) × concurrent readers × backpressure policy
//
// with a fixed synthetic pulse shape.  The producer side encodes each
// packet (the codec is part of the transported cost) and publishes;
// readers poll + CRC-verify every frame.  For each cell the bench
// reports producer events/s (the acceptance headline), per-reader
// drop/lag counters, and the publish→poll latency.  Block policy shows
// the lock-step cost of never losing a frame; drop-oldest shows the
// free-running producer rate and how far slow readers fall behind.
//
// Output: a JSON document on stdout (aggregated into BENCH_stream.json
// by bench/run_perf_smoke.sh).

#include "vates/events/raw_events.hpp"
#include "vates/service/wire.hpp"
#include "vates/stream/event_channel.hpp"
#include "vates/support/cli.hpp"
#include "vates/support/timer.hpp"
#include "vates/transport/packet_codec.hpp"
#include "vates/transport/shm_ring.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

namespace {

using namespace vates;
using namespace vates::transport;
using service::JsonObject;

struct ReaderCell {
  std::uint64_t framesRead = 0;
  std::uint64_t framesDropped = 0;
  std::uint64_t overruns = 0;
  std::uint64_t crcFailures = 0;
  std::uint64_t maxLagFrames = 0;
  double maxLatencySeconds = 0.0;
};

struct CellResult {
  std::size_t frames = 0;
  std::size_t readers = 0;
  BackpressurePolicy policy = BackpressurePolicy::Block;
  std::uint64_t pulses = 0;
  std::uint64_t events = 0;
  double wallSeconds = 0.0;
  double eventsPerSecond = 0.0;
  double framesPerSecond = 0.0;
  std::uint64_t backpressureWaits = 0;
  std::vector<ReaderCell> perReader;
};

CellResult runCell(const std::string& ringName, std::size_t frames,
                   std::size_t readers, BackpressurePolicy policy,
                   std::uint64_t pulses, std::size_t eventsPerPulse) {
  CellResult cell;
  cell.frames = frames;
  cell.readers = readers;
  cell.policy = policy;
  cell.pulses = pulses;
  cell.events = pulses * eventsPerPulse;

  RingConfig config;
  config.name = ringName;
  config.frameCount = frames;
  config.framePayloadBytes = packetFrameBytes(eventsPerPulse) + 64;
  config.policy = policy;
  unlinkRing(ringName);
  ShmRingWriter writer(config);

  cell.perReader.resize(readers);
  std::vector<std::thread> threads;
  threads.reserve(readers);
  std::atomic<std::size_t> attached{0};
  for (std::size_t r = 0; r < readers; ++r) {
    threads.emplace_back([&, r] {
      ReaderConfig readerConfig;
      readerConfig.name = ringName;
      readerConfig.attachTimeoutSeconds = 10.0;
      ShmRingReader reader(readerConfig);
      attached.fetch_add(1);
      std::vector<std::uint8_t> payload;
      ReaderCell& out = cell.perReader[r];
      for (;;) {
        const PollResult result = reader.poll(payload);
        if (result.status == PollStatus::EndOfStream) {
          break;
        }
        if (result.status == PollStatus::Frame &&
            result.latencySeconds > out.maxLatencySeconds) {
          out.maxLatencySeconds = result.latencySeconds;
        }
      }
      const ReaderStats stats = reader.stats();
      out.framesRead = stats.framesRead;
      out.framesDropped = stats.framesDropped;
      out.overruns = stats.overruns;
      out.crcFailures = stats.crcFailures;
      out.maxLagFrames = stats.maxLagFrames;
    });
  }
  while (attached.load() < readers) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // One synthetic pulse, re-encoded every iteration: the codec is part
  // of the producer-side cost a real DAQ pays per pulse.
  stream::PulsePacket packet;
  packet.runIndex = 0;
  for (std::size_t i = 0; i < eventsPerPulse; ++i) {
    packet.events.append(static_cast<std::uint32_t>(i % 1024),
                         1000.0 + 0.125 * static_cast<double>(i), 0,
                         1.0);
  }

  WallTimer timer;
  std::vector<std::uint8_t> frame;
  for (std::uint64_t p = 0; p < pulses; ++p) {
    packet.pulseIndex = static_cast<std::uint32_t>(p);
    packet.endOfRun = p + 1 == pulses;
    encodePacket(packet, p == 0, frame);
    writer.publish(frame.data(), frame.size());
  }
  writer.finish();
  cell.wallSeconds = timer.seconds();

  for (std::thread& thread : threads) {
    thread.join();
  }
  cell.backpressureWaits = writer.stats().backpressureWaits;
  if (cell.wallSeconds > 0.0) {
    cell.eventsPerSecond =
        static_cast<double>(cell.events) / cell.wallSeconds;
    cell.framesPerSecond =
        static_cast<double>(cell.pulses) / cell.wallSeconds;
  }
  return cell;
}

} // namespace

int main(int argc, char** argv) {
  ArgParser args("bench_ablation_stream",
                 "Shm ring transport sweep: events/s x ring size x "
                 "readers x backpressure policy");
  args.addOption("pulses", "Pulses (frames) per cell", "2000");
  args.addOption("events", "Events per pulse", "4096");
  args.addOption("rings", "Comma-separated ring sizes (frames)", "256,1024");
  args.addOption("readers", "Comma-separated reader counts", "1,2,4");
  if (!args.parse(argc, argv)) {
    return 0;
  }
  const auto pulses = static_cast<std::uint64_t>(args.getInt("pulses"));
  const auto eventsPerPulse =
      static_cast<std::size_t>(args.getInt("events"));
  const std::string ringName =
      "/vates-bench-stream-" + std::to_string(::getpid());

  const auto parseList = [](const std::string& text) {
    std::vector<std::size_t> values;
    std::size_t start = 0;
    while (start <= text.size()) {
      const std::size_t comma = text.find(',', start);
      const std::string item =
          text.substr(start, comma == std::string::npos ? std::string::npos
                                                        : comma - start);
      if (!item.empty()) {
        values.push_back(static_cast<std::size_t>(std::stoul(item)));
      }
      if (comma == std::string::npos) {
        break;
      }
      start = comma + 1;
    }
    return values;
  };

  double peakEventsPerSecond = 0.0;
  std::string cells;
  for (const std::size_t frames : parseList(args.getString("rings"))) {
    for (const std::size_t readers : parseList(args.getString("readers"))) {
      for (const BackpressurePolicy policy :
           {BackpressurePolicy::Block, BackpressurePolicy::DropOldest}) {
        const CellResult cell = runCell(ringName, frames, readers, policy,
                                        pulses, eventsPerPulse);
        if (cell.eventsPerSecond > peakEventsPerSecond) {
          peakEventsPerSecond = cell.eventsPerSecond;
        }
        std::string perReader;
        for (const ReaderCell& reader : cell.perReader) {
          if (!perReader.empty()) {
            perReader += ',';
          }
          perReader += JsonObject()
                           .field("frames_read", reader.framesRead)
                           .field("frames_dropped", reader.framesDropped)
                           .field("overruns", reader.overruns)
                           .field("crc_failures", reader.crcFailures)
                           .field("max_lag_frames", reader.maxLagFrames)
                           .field("max_latency_s", reader.maxLatencySeconds)
                           .str();
        }
        if (!cells.empty()) {
          cells += ',';
        }
        cells += JsonObject()
                     .field("ring_frames", std::uint64_t{cell.frames})
                     .field("readers", std::uint64_t{cell.readers})
                     .field("policy", backpressurePolicyName(cell.policy))
                     .field("pulses", cell.pulses)
                     .field("events", cell.events)
                     .field("wall_s", cell.wallSeconds)
                     .field("events_per_second", cell.eventsPerSecond)
                     .field("frames_per_second", cell.framesPerSecond)
                     .field("backpressure_waits", cell.backpressureWaits)
                     .fieldRaw("reader_stats", "[" + perReader + "]")
                     .str();
        std::cerr << "frames=" << cell.frames << " readers=" << cell.readers
                  << " policy=" << backpressurePolicyName(cell.policy)
                  << " events/s=" << cell.eventsPerSecond << '\n';
      }
    }
  }
  unlinkRing(ringName);

  JsonObject document;
  document.field("benchmark", "stream_transport_ablation")
      .field("config", "synthetic pulses=" + args.getString("pulses") +
                           " events_per_pulse=" + args.getString("events") +
                           " single producer, poll+CRC readers")
      .field("peak_events_per_second", peakEventsPerSecond)
      .fieldRaw("cells", "[" + cells + "]");
  std::cout << document.str() << '\n';
  return 0;
}
