// Table V: Bixbyite (TOPAZ) proxies on Defiant (4 MPI ranks × 16 OpenMP
// threads in the paper; the preset reproduces the rank layout).  The
// Bixbyite case is the I/O-heavy one: UpdateEvents dominates.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace vates;
  const bench::TableCase tableCase{
      "Table V: Bixbyite (TOPAZ) on Defiant (EPYC 7662 + MI100)",
      "defiant",
      &WorkloadSpec::bixbyiteTopaz,
      0.0003,
      {
          bench::PaperColumn{"C++ Proxy (CPU)", 23.70, 2.81, 5.40, 215.98},
          bench::PaperColumn{"MiniVATES (JIT)", 3.12, 4.51, 3.70, 553.89},
          bench::PaperColumn{"MiniVATES (noJIT)", 18.12, 0.45, 2.95, 553.89},
      }};
  return bench::runTableBench(tableCase, argc, argv);
}
