// Ablation: where to pay the symmetry multiplier.
//
// The symmetry-operation loop multiplies both kernels' work by the
// group order (6 for Benzil, 24 for Bixbyite) — the outer loop of the
// paper's Listings 1–3.  The alternative is reducing with the identity
// only and folding the finished histograms over the group at bin level
// (O(bins × ops) instead of O(work × ops)).  This bench times both
// strategies on the real pipeline and reports the accuracy cost of the
// bin-center approximation.

#include "vates/core/pipeline.hpp"
#include "vates/kernels/symmetrize.hpp"
#include "vates/support/cli.hpp"
#include "vates/support/timer.hpp"

#include <cmath>
#include <cstdio>
#include <iostream>

using namespace vates;

int main(int argc, char** argv) {
  ArgParser args("bench_ablation_symmetrize",
                 "Event-level symmetry loop vs post-hoc histogram fold");
  args.addOption("scale", "Workload scale", "0.001");
  try {
    if (!args.parse(argc, argv)) {
      return 0;
    }
    const double scale = args.getDouble("scale");
    std::cout << "=== Ablation: event-level symmetrization (Listings 1-3) "
                 "vs bin-level fold ===\n\n";

    core::ReductionConfig config;
#ifdef VATES_HAS_OPENMP
    config.backend = Backend::OpenMP;
#else
    config.backend = Backend::ThreadPool;
#endif
    const Executor executor(config.backend);

    for (const char* name : {"benzil", "bixbyite"}) {
      const bool benzil = std::string(name) == "benzil";
      WorkloadSpec spec = benzil ? WorkloadSpec::benzilCorelli(scale)
                                 : WorkloadSpec::bixbyiteTopaz(scale / 5);
      // Coarsen the grid so coverage is smooth at bin scale at this
      // reduced detector count (see the reading note below).
      spec.bins = {151, 151, 1};
      const ExperimentSetup setup(spec);

      WallTimer eventTimer;
      const core::ReductionResult eventLevel =
          core::ReductionPipeline(setup, config).run();
      const double eventSeconds = eventTimer.seconds();

      WorkloadSpec identitySpec = spec;
      identitySpec.pointGroup = "1";
      const ExperimentSetup identity{identitySpec};
      WallTimer foldTimer;
      const core::ReductionResult base =
          core::ReductionPipeline(identity, config).run();
      const auto ops = setup.pointGroup().matrices();
      const Histogram3D foldedSignal =
          symmetrizeFold(executor, base.signal, ops, setup.projection());
      const Histogram3D foldedNorm = symmetrizeFold(
          executor, base.normalization, ops, setup.projection());
      const Histogram3D folded =
          Histogram3D::divide(foldedSignal, foldedNorm);
      const double foldSeconds = foldTimer.seconds();

      // Accuracy: mean relative deviation over jointly covered bins.
      double sumRelative = 0.0, worst = 0.0;
      std::size_t compared = 0;
      for (std::size_t i = 0; i < folded.size(); ++i) {
        const double a = eventLevel.crossSection.data()[i];
        const double b = folded.data()[i];
        if (std::isfinite(a) && std::isfinite(b) && a > 0.0) {
          const double relative = std::fabs(a - b) / a;
          sumRelative += relative;
          worst = std::max(worst, relative);
          ++compared;
        }
      }

      std::printf("%-10s ops=%-3zu event-level %.3f s | identity+fold "
                  "%.3f s (%.2fx) | mean dev %.3f%%, worst %.1f%% over %zu "
                  "bins\n",
                  name, ops.size(), eventSeconds, foldSeconds,
                  eventSeconds / foldSeconds,
                  100.0 * sumRelative / std::max<std::size_t>(compared, 1),
                  100.0 * worst, compared);
    }

    std::cout << "\nReading: the fold buys back most of the symmetry "
                 "multiplier but pays a bin-center discretization error "
                 "that explodes wherever coverage is sparse at bin scale "
                 "(thin normalization arcs) — why the production path "
                 "(and the paper's proxies) keep the exact event-level "
                 "loop.\n";
    return 0;
  } catch (const Error& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
}
