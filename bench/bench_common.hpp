#pragma once
// Shared driver for the table-reproduction benchmarks.
//
// Each bench_tableN binary reproduces one of the paper's WCT tables:
// a fixed (workload, hardware-preset) pair, three measured columns —
//   "C++ Proxy (CPU)"    : the optimized kernels on the best CPU backend,
//   "DeviceSim (JIT)"    : the portable kernels on the simulated device,
//                          first invocation (includes kernel compilation),
//   "DeviceSim (no JIT)" : same, warmed (compilation amortized) —
// and the paper's corresponding published numbers printed alongside for
// shape comparison.  Absolute values differ (this machine is not
// Defiant/Milan0); EXPERIMENTS.md records both.

#include "vates/core/hardware_preset.hpp"
#include "vates/core/pipeline.hpp"
#include "vates/core/report.hpp"
#include "vates/support/cli.hpp"
#include "vates/support/timer.hpp"

#include <algorithm>
#include <cstddef>
#include <iostream>
#include <vector>

namespace vates::bench {

/// Sustainable memory bandwidth of this machine in bytes/s, measured
/// with a STREAM-style triad a[i] = b[i] + s·c[i] over three 32 MiB
/// arrays (far beyond LLC, so the loop streams from DRAM).  Uses
/// STREAM's 24 B/element accounting — two loads plus one store,
/// write-allocate traffic not counted — and reports the best of several
/// passes (the first passes double as page-fault warm-up).  Measured
/// once and cached: this is the denominator the kernel benches use to
/// report "% of roofline", so every row must divide by the same number.
inline double streamTriadBandwidth() {
  static const double cached = [] {
    constexpr std::size_t n = std::size_t{1} << 22; // 32 MiB per array
    std::vector<double> a(n, 0.0);
    std::vector<double> b(n, 1.0);
    std::vector<double> c(n, 2.0);
    const double s = 3.0;
    volatile double sink = 0.0;
    double best = 0.0;
    for (int rep = 0; rep < 7; ++rep) {
      const WallTimer timer;
      for (std::size_t i = 0; i < n; ++i) {
        a[i] = b[i] + s * c[i];
      }
      const double seconds = timer.seconds();
      sink = a[static_cast<std::size_t>(rep)]; // keep the stores alive
      if (seconds > 0.0) {
        const double rate = static_cast<double>(n) * 24.0 / seconds;
        best = rate > best ? rate : best;
      }
    }
    (void)sink;
    return best;
  }();
  return cached;
}

struct PaperColumn {
  const char* header;
  double updateEvents;
  double mdnorm;
  double binmd;
  double total;
};

struct TableCase {
  const char* title;
  const char* presetName;
  WorkloadSpec (*makeSpec)(double scale);
  double defaultScale;
  std::vector<PaperColumn> paperColumns;
};

inline Backend bestCpuBackend() {
#ifdef VATES_HAS_OPENMP
  return Backend::OpenMP;
#else
  return Backend::ThreadPool;
#endif
}

inline int runTableBench(const TableCase& tableCase, int argc, char** argv) {
  ArgParser args(tableCase.title, "Reproduce one of the paper's WCT tables");
  args.addOption("scale", "Workload scale (1.0 = paper size)",
                 std::to_string(tableCase.defaultScale));
  args.addOption("ranks", "Override rank count (0 = preset value)", "0");
  try {
    if (!args.parse(argc, argv)) {
      return 0;
    }
    const double scale = args.getDouble("scale");
    const core::HardwarePreset preset =
        core::HardwarePreset::byName(tableCase.presetName);
    const WorkloadSpec spec = tableCase.makeSpec(scale);

    std::cout << "=== " << tableCase.title << " ===\n";
    std::cout << preset.systemsOverview() << '\n';
    std::cout << spec.characteristicsTable();
    std::cout << "scale = " << scale << " (events and detectors scaled; "
              << "bin grids at paper size)\n\n";

    const ExperimentSetup setup(spec);
    DeviceSim::global().setJitCostMs(preset.device.jitCostMs);

    int ranks = static_cast<int>(args.getInt("ranks"));
    if (ranks <= 0) {
      ranks = preset.ranks;
    }
    ranks = std::min<int>(ranks, static_cast<int>(spec.nFiles));

    // Column 1: the C++ proxy on CPU.
    core::ReductionConfig cpuConfig;
    cpuConfig.backend = bestCpuBackend();
    cpuConfig.ranks = ranks;
    const core::ReductionResult cpuResult =
        core::ReductionPipeline(setup, cpuConfig).run();

    // Columns 2 and 3: the portable kernels on the simulated device,
    // cold (JIT) and warm (no JIT).
    core::ReductionConfig deviceConfig;
    deviceConfig.backend = Backend::DeviceSim;
    deviceConfig.ranks = ranks;
    const core::ReductionPipeline devicePipeline(setup, deviceConfig);
    DeviceSim::global().resetJitCache();
    const core::ReductionResult jitResult = devicePipeline.run();
    const core::ReductionResult warmResult = devicePipeline.run();

    core::WctTable table("WCT in seconds — measured on this machine");
    table.addColumn("C++ Proxy (CPU)", cpuResult);
    table.addColumn("DeviceSim (JIT)", jitResult);
    table.addColumn("DeviceSim (no JIT)", warmResult);
    std::cout << table.render() << '\n';

    std::cout << "Device: "
              << jitResult.deviceStats.jitCompilations << " JIT compilations ("
              << jitResult.deviceStats.jitSeconds << " s) in the JIT column, "
              << warmResult.deviceStats.jitCompilations
              << " in the warm column; max intersections (pre-pass) = "
              << warmResult.maxIntersectionsEstimate << "\n\n";

    if (!tableCase.paperColumns.empty()) {
      std::cout << "Paper's published values (their hardware), for shape "
                   "comparison:\n";
      core::WctTable paperTable("WCT in seconds — paper");
      for (const PaperColumn& column : tableCase.paperColumns) {
        StageTimes times;
        times.add("UpdateEvents", column.updateEvents);
        times.add("MDNorm", column.mdnorm);
        times.add("BinMD", column.binmd);
        // Remaining time (I/O, orchestration) folded into one stage so
        // the printed Total matches the paper's.
        const double rest =
            column.total - column.updateEvents - column.mdnorm - column.binmd;
        if (rest > 0) {
          times.add("other (unreported)", rest);
        }
        paperTable.addColumn(column.header, times);
      }
      std::cout << paperTable.render() << '\n';
    }

    std::cout << core::speedupLine(
                     "MDNorm+BinMD (steady state)", "DeviceSim (no JIT)",
                     warmResult.times.total("MDNorm") +
                         warmResult.times.total("BinMD"),
                     "C++ Proxy (CPU)",
                     cpuResult.times.total("MDNorm") +
                         cpuResult.times.total("BinMD"))
              << '\n';
    return 0;
  } catch (const Error& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
}

} // namespace vates::bench
