// Ablation: histogram accumulation strategies.
//
// BinMD's cost is dominated by atomic adds into the shared 3D histogram
// (the paper attributes the A100-vs-MI100 gap to atomic-update
// efficiency).  This bench measures:
//   - serial adds (no atomics) as the floor,
//   - atomic adds with spread access (realistic event distributions),
//   - atomic adds hammering one hot bin (a Bragg peak's worst case),
//   - per-thread private histograms merged at the end (the alternative
//     design the paper's atomic choice competes against: no contention
//     but nBins·nThreads memory and a merge pass).

#include "vates/histogram/histogram3d.hpp"
#include "vates/parallel/atomics.hpp"
#include "vates/parallel/thread_pool.hpp"
#include "vates/support/rng.hpp"

#include <benchmark/benchmark.h>

#include <vector>

namespace {

using namespace vates;

constexpr std::size_t kBins = 603 * 603; // a paper-sized 2D slice

std::vector<std::size_t> makeTargets(std::size_t n, bool hotSpot) {
  Xoshiro256 rng(n + (hotSpot ? 99 : 0));
  std::vector<std::size_t> targets(n);
  for (auto& t : targets) {
    t = hotSpot ? kBins / 2 : rng.uniformInt(kBins);
  }
  return targets;
}

void BM_SerialAdd(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto targets = makeTargets(n, false);
  std::vector<double> bins(kBins, 0.0);
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      bins[targets[i]] += 1.0;
    }
    benchmark::DoNotOptimize(bins.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_AtomicAddSpread(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto targets = makeTargets(n, false);
  std::vector<double> bins(kBins, 0.0);
  ThreadPool& pool = ThreadPool::global();
  for (auto _ : state) {
    pool.forRange(n, [&](std::size_t begin, std::size_t end, unsigned) {
      for (std::size_t i = begin; i < end; ++i) {
        atomicAdd(&bins[targets[i]], 1.0);
      }
    });
    benchmark::DoNotOptimize(bins.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_AtomicAddHotBin(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto targets = makeTargets(n, true);
  std::vector<double> bins(kBins, 0.0);
  ThreadPool& pool = ThreadPool::global();
  for (auto _ : state) {
    pool.forRange(n, [&](std::size_t begin, std::size_t end, unsigned) {
      for (std::size_t i = begin; i < end; ++i) {
        atomicAdd(&bins[targets[i]], 1.0);
      }
    });
    benchmark::DoNotOptimize(bins.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_PrivateHistogramsThenMerge(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto targets = makeTargets(n, false);
  ThreadPool& pool = ThreadPool::global();
  const unsigned workers = pool.size();
  std::vector<std::vector<double>> privates(
      workers, std::vector<double>(kBins, 0.0));
  std::vector<double> merged(kBins, 0.0);
  for (auto _ : state) {
    pool.forRange(n, [&](std::size_t begin, std::size_t end, unsigned worker) {
      auto& mine = privates[worker];
      for (std::size_t i = begin; i < end; ++i) {
        mine[targets[i]] += 1.0;
      }
    });
    for (unsigned w = 0; w < workers; ++w) {
      for (std::size_t b = 0; b < kBins; ++b) {
        merged[b] += privates[w][b];
      }
      std::fill(privates[w].begin(), privates[w].end(), 0.0);
    }
    benchmark::DoNotOptimize(merged.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void histogramArgs(benchmark::internal::Benchmark* bench) {
  bench->Arg(100000)->Arg(1000000);
}

BENCHMARK(BM_SerialAdd)->Apply(histogramArgs);
BENCHMARK(BM_AtomicAddSpread)->Apply(histogramArgs);
BENCHMARK(BM_AtomicAddHotBin)->Apply(histogramArgs);
BENCHMARK(BM_PrivateHistogramsThenMerge)->Apply(histogramArgs);

} // namespace

BENCHMARK_MAIN();
