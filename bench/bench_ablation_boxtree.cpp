// Ablation: single-box BinMD (the proxies) vs MDEventWorkspace box
// hierarchy traversal (Mantid, §III-B: "Mantid's BinMD uses a more
// adaptive strategy by having a hierarchy of boxes").  Measures the
// tree build cost (paid at load time in production) and the
// traversal overhead during binning, plus the region-query capability
// the hierarchy buys.

#include "vates/events/experiment_setup.hpp"
#include "vates/events/md_box_tree.hpp"
#include "vates/kernels/binmd.hpp"
#include "vates/kernels/transforms.hpp"
#include "vates/units/units.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace vates;

struct Fixture {
  Fixture()
      : setup(WorkloadSpec::benzilCorelli(0.002)),
        events(setup.makeGenerator().generate(0)),
        transforms(binMdTransforms(setup.projection(), setup.lattice(),
                                   setup.symmetryMatrices())),
        histogram(setup.makeHistogram()), tree(events) {}

  ExperimentSetup setup;
  EventTable events;
  std::vector<M33> transforms;
  Histogram3D histogram;
  MDBoxTree tree;
};

Fixture& fixture() {
  static Fixture instance;
  return instance;
}

void BM_BoxTreeBuild(benchmark::State& state) {
  Fixture& f = fixture();
  MDBoxOptions options;
  options.leafCapacity = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    MDBoxTree tree(f.events, options);
    benchmark::DoNotOptimize(tree.nBoxes());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.events.size()));
}
BENCHMARK(BM_BoxTreeBuild)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_BinMD_FlatColumns(benchmark::State& state) {
  // The proxies' single-box strategy: stream the primitive columns.
  Fixture& f = fixture();
  BinMDInputs inputs;
  inputs.transforms = f.transforms;
  inputs.qx = f.events.column(EventTable::Qx).data();
  inputs.qy = f.events.column(EventTable::Qy).data();
  inputs.qz = f.events.column(EventTable::Qz).data();
  inputs.signal = f.events.column(EventTable::Signal).data();
  inputs.nEvents = f.events.size();
  const Executor executor(Backend::Serial);
  for (auto _ : state) {
    f.histogram.fill(0.0);
    runBinMD(executor, inputs, f.histogram.gridView());
    benchmark::DoNotOptimize(f.histogram.data().data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(f.events.size() * f.transforms.size()));
}
BENCHMARK(BM_BinMD_FlatColumns)->Unit(benchmark::kMillisecond);

void BM_BinMD_BoxTreeTraversal(benchmark::State& state) {
  // Mantid-style: walk the box hierarchy, indirecting per event.
  Fixture& f = fixture();
  const Executor executor(Backend::Serial);
  (void)executor;
  for (auto _ : state) {
    f.histogram.fill(0.0);
    const GridView grid = f.histogram.gridView();
    for (const M33& transform : f.transforms) {
      f.tree.forEachLeaf([&](const MDBoxTree::BoxInfo&,
                             std::span<const std::uint32_t> indices) {
        for (const std::uint32_t index : indices) {
          const V3 p = transform * f.events.qSample(index);
          const std::size_t bin = grid.locate(p);
          if (bin < grid.size()) {
            grid.data[bin] += f.events.signal(index);
          }
        }
      });
    }
    benchmark::DoNotOptimize(f.histogram.data().data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(f.events.size() * f.transforms.size()));
}
BENCHMARK(BM_BinMD_BoxTreeTraversal)->Unit(benchmark::kMillisecond);

void BM_BoxTreeRegionQuery(benchmark::State& state) {
  // What the hierarchy buys: O(boxes-on-boundary) slice queries.
  Fixture& f = fixture();
  const V3 lo{-2.0, -2.0, -0.05};
  const V3 hi{2.0, 2.0, 0.05};
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.tree.signalInRegion(lo, hi));
  }
}
BENCHMARK(BM_BoxTreeRegionQuery);

void BM_FlatRegionQuery(benchmark::State& state) {
  // Brute-force equivalent over the flat table.
  Fixture& f = fixture();
  const V3 lo{-2.0, -2.0, -0.05};
  const V3 hi{2.0, 2.0, 0.05};
  for (auto _ : state) {
    double sum = 0.0;
    for (std::size_t i = 0; i < f.events.size(); ++i) {
      const V3 q = f.events.qSample(i);
      if (q.x >= lo.x && q.x < hi.x && q.y >= lo.y && q.y < hi.y &&
          q.z >= lo.z && q.z < hi.z) {
        sum += f.events.signal(i);
      }
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_FlatRegionQuery);

} // namespace

BENCHMARK_MAIN();
