// Table IV: Benzil (CORELLI) proxies on Milan0's AMD EPYC 7513
// 2×32-core CPU and NVIDIA A100 GPU — reproduced against the `milan0`
// preset (faster device model than Defiant's, reflecting the paper's
// finding that the A100 handles the atomic histogram updates far better
// than the MI100).

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace vates;
  const bench::TableCase tableCase{
      "Table IV: Benzil (CORELLI) on Milan0 (EPYC 7513 + A100)",
      "milan0",
      &WorkloadSpec::benzilCorelli,
      0.002,
      {
          bench::PaperColumn{"C++ Proxy (CPU)", 1.250, 0.456, 0.034, 15.985},
          bench::PaperColumn{"MiniVATES (JIT)", 0.090, 2.367, 0.517, 30.135},
          bench::PaperColumn{"MiniVATES (noJIT)", 0.0504, 0.0532, 0.0,
                             30.135},
      }};
  return bench::runTableBench(tableCase, argc, argv);
}
