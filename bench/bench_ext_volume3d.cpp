// Extension experiment: 3D volume reduction.
//
// The paper's evaluation bins 2D slices (lBins = 1) "to provide a
// balance between current memory, computation, and data movement
// costs" and argues that faster kernels "enable broader modeling and
// simulation options (e.g., 3D volumes, real-time)".  This bench
// quantifies that direction: the same Benzil workload reduced into
// volumes of increasing L-depth, reporting how MDNorm (more planes, up
// to hBins+kBins+lBins+2 intersections) and BinMD (more bins, colder
// caches) scale, and how memory grows.

#include "vates/core/pipeline.hpp"
#include "vates/core/report.hpp"
#include "vates/support/cli.hpp"
#include "vates/support/strings.hpp"

#include <cstdio>
#include <iostream>

using namespace vates;

int main(int argc, char** argv) {
  ArgParser args("bench_ext_volume3d",
                 "3D volume reduction scaling (paper future-work direction)");
  args.addOption("scale", "Workload scale", "0.002");
  try {
    if (!args.parse(argc, argv)) {
      return 0;
    }
    const double scale = args.getDouble("scale");
    std::cout << "=== Extension: 2D slice -> 3D volume scaling (Benzil) "
                 "===\n\n";

    struct Row {
      std::size_t lBins;
      double mdnorm;
      double binmd;
      std::size_t bins;
      std::size_t coveredBins;
    };
    std::vector<Row> rows;

    for (const std::size_t lBins : {1ul, 11ul, 51ul}) {
      WorkloadSpec spec = WorkloadSpec::benzilCorelli(scale);
      spec.bins[2] = lBins;
      // Grow the L extent with the bin count so bins stay cubic-ish.
      const double halfDepth = 0.1 * static_cast<double>(lBins);
      spec.extentMin[2] = -halfDepth;
      spec.extentMax[2] = halfDepth;

      const ExperimentSetup setup(spec);
      core::ReductionConfig config;
#ifdef VATES_HAS_OPENMP
      config.backend = Backend::OpenMP;
#else
      config.backend = Backend::ThreadPool;
#endif
      const core::ReductionResult result =
          core::ReductionPipeline(setup, config).run();
      rows.push_back(Row{lBins, result.times.total("MDNorm"),
                         result.times.total("BinMD"),
                         result.signal.size(),
                         result.normalization.nonZeroBins()});
    }

    std::printf("%-8s %12s %12s %14s %14s %10s\n", "lBins", "MDNorm (s)",
                "BinMD (s)", "bins", "covered", "memory");
    for (const Row& row : rows) {
      std::printf("%-8zu %12.4f %12.4f %14s %14s %10s\n", row.lBins,
                  row.mdnorm, row.binmd, withCommas(row.bins).c_str(),
                  withCommas(row.coveredBins).c_str(),
                  humanBytes(row.bins * sizeof(double)).c_str());
    }

    // Shape checks: volume cost grows sublinearly in lBins for MDNorm
    // (plane count on one axis only) while bins grow linearly.
    const bool memoryGrows = rows.back().bins > rows.front().bins * 50;
    const bool mdnormSublinear =
        rows.back().mdnorm <
        rows.front().mdnorm * static_cast<double>(rows.back().lBins);
    std::printf("\nShape check (memory x%zu, MDNorm grows sublinearly in "
                "lBins): %s\n",
                rows.back().bins / rows.front().bins,
                (memoryGrows && mdnormSublinear) ? "PASS" : "FAIL");
    return (memoryGrows && mdnormSublinear) ? 0 : 1;
  } catch (const Error& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
}
