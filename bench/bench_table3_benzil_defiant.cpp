// Table III: Benzil (CORELLI) proxies on Defiant's AMD EPYC 7662
// 64-core CPU and MI100 GPU — reproduced against the `defiant` preset
// on this machine's hardware (CPU backends + simulated device).

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace vates;
  const bench::TableCase tableCase{
      "Table III: Benzil (CORELLI) on Defiant (EPYC 7662 + MI100)",
      "defiant",
      &WorkloadSpec::benzilCorelli,
      0.002,
      {
          // Paper Table III, per-run stage WCTs.
          bench::PaperColumn{"C++ Proxy (CPU)", 0.092, 0.688, 0.057, 7.746},
          bench::PaperColumn{"MiniVATES (JIT)", 0.136, 4.669, 0.488, 48.932},
          bench::PaperColumn{"MiniVATES (noJIT)", 0.064, 0.174, 0.010,
                             48.932},
      }};
  return bench::runTableBench(tableCase, argc, argv);
}
