// Ablation: the persistent normalization cache + incremental delta
// reduction, end to end through the reduction service.
//
// Three modes, each a files × workers sweep over a fixed job burst:
//
//   cold        — fresh cache directory, every job carries a distinct
//                 normalization key (omega start varies), so every job
//                 pays the full pipeline *and* a cache store.
//   warm        — the same job set is primed through a first service
//                 instance, then measured through a second one sharing
//                 the cache directory: every job replays its cached
//                 partial state and skips MDNorm entirely.
//   incremental — per-key partial entries are primed at `files` files,
//                 then the measured burst asks for 2×`files`: only the
//                 appended half is re-reduced and merged.
//
// Shared-grid batching is disabled so the cache — not the in-process
// batcher — is the only reuse mechanism under test.  The headline block
// reruns cold vs warm on the benzil_small plan (benzil-corelli
// scale=0.001, files=4, DDA traversal) and reports the speedup the
// acceptance gate reads (warm run p95 must be ≥ 5× faster than cold).
//
// Output: a JSON document on stdout (aggregated into BENCH_cache.json
// by bench/run_perf_smoke.sh).

#include "vates/core/plan.hpp"
#include "vates/service/reduction_service.hpp"
#include "vates/service/wire.hpp"
#include "vates/support/cli.hpp"
#include "vates/support/timer.hpp"

#include <cstdint>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

namespace {

using namespace vates;
using namespace vates::service;

Backend cpuBackend() {
#ifdef VATES_HAS_OPENMP
  return Backend::OpenMP;
#else
  return Backend::ThreadPool;
#endif
}

struct CellResult {
  std::string mode;
  std::size_t files = 0;
  std::size_t workers = 0;
  std::size_t jobs = 0;
  double wallSeconds = 0.0;
  double throughputJobsPerSecond = 0.0;
  std::uint64_t eventsProcessed = 0;
  double eventsPerSecond = 0.0;
  LatencyStats run; // run-cold or run-warm, depending on the mode
  std::uint64_t cacheHits = 0;
  std::uint64_t cacheMisses = 0;
  std::uint64_t cacheStores = 0;
  std::uint64_t normalizationPasses = 0;
  std::uint64_t incrementalJobs = 0;
  std::uint64_t cacheBytes = 0;
  std::uint64_t cacheEntries = 0;
};

core::ReductionPlan makePlan(double scale, std::size_t nFiles,
                             std::size_t jobIndex, bool incremental) {
  core::ReductionPlan plan;
  plan.workload = WorkloadSpec::benzilCorelli(scale);
  plan.workload.nFiles = nFiles;
  // Distinct keys per job: the omega schedule feeds the normalization
  // key, so each job owns its own cache entry (no accidental reuse
  // inside one burst).
  plan.workload.omegaStartDeg += 0.5 * static_cast<double>(jobIndex);
  plan.config.backend = cpuBackend();
  plan.config.incremental = incremental;
  return plan;
}

ServiceOptions cellOptions(std::size_t workers, std::size_t jobs,
                           const std::string& cacheDir) {
  ServiceOptions options;
  options.workers = workers;
  options.queueCapacity = jobs;
  options.batching = false; // isolate the cache from in-process batching
  options.defaultCacheDir = cacheDir;
  return options;
}

void runBurst(ReductionService& svc, double scale, std::size_t nFiles,
              std::size_t jobs, bool incremental,
              std::uint64_t* eventsOut = nullptr) {
  std::vector<std::uint64_t> ids;
  ids.reserve(jobs);
  for (std::size_t i = 0; i < jobs; ++i) {
    JobRequest request;
    request.plan = makePlan(scale, nFiles, i, incremental);
    request.tag = "cache-" + std::to_string(i);
    const SubmitReceipt receipt = svc.submit(std::move(request));
    if (receipt.accepted) {
      ids.push_back(receipt.id);
    }
  }
  for (const std::uint64_t id : ids) {
    const auto outcome = svc.wait(id);
    if (eventsOut != nullptr && outcome && outcome->result) {
      *eventsOut += outcome->result->eventsProcessed;
    }
  }
}

CellResult runCell(const std::string& mode, double scale, std::size_t files,
                   std::size_t jobs, std::size_t workers,
                   const std::filesystem::path& cacheRoot) {
  const std::filesystem::path dir =
      cacheRoot / (mode + "-f" + std::to_string(files) + "-w" +
                   std::to_string(workers));
  std::filesystem::remove_all(dir);

  const bool incremental = mode == "incremental";
  const std::size_t measuredFiles = incremental ? 2 * files : files;

  // Prime through a separate instance so the measured service's
  // counters cover only the timed burst (and the warm path exercises
  // cross-process entry adoption, not an in-memory index).
  if (mode != "cold") {
    ReductionService primer(cellOptions(workers, jobs, dir.string()));
    runBurst(primer, scale, files, jobs, incremental);
    primer.shutdown(true);
  }

  CellResult cell;
  cell.mode = mode;
  cell.files = measuredFiles;
  cell.workers = workers;
  cell.jobs = jobs;

  ReductionService svc(cellOptions(workers, jobs, dir.string()));
  WallTimer timer;
  runBurst(svc, scale, measuredFiles, jobs, incremental,
           &cell.eventsProcessed);
  cell.wallSeconds = timer.seconds();

  const ServiceMetrics metrics = svc.metrics();
  cell.cacheHits = metrics.cacheHits;
  cell.cacheMisses = metrics.cacheMisses;
  cell.cacheStores = metrics.cacheStores;
  cell.normalizationPasses = metrics.normalizationPasses;
  cell.incrementalJobs = metrics.incrementalJobs;
  cell.cacheBytes = metrics.cacheBytes;
  cell.cacheEntries = metrics.cacheEntries;
  const char* bucket = mode == "cold" ? "run-cold" : "run-warm";
  if (const auto it = metrics.latency.find(bucket);
      it != metrics.latency.end()) {
    cell.run = it->second;
  }
  if (cell.wallSeconds > 0.0) {
    cell.throughputJobsPerSecond =
        static_cast<double>(metrics.done) / cell.wallSeconds;
    cell.eventsPerSecond =
        static_cast<double>(cell.eventsProcessed) / cell.wallSeconds;
  }
  svc.shutdown(true);
  return cell;
}

std::string latencyJson(const LatencyStats& stats) {
  return JsonObject()
      .field("count", std::uint64_t{stats.count})
      .field("p50_s", stats.p50)
      .field("p95_s", stats.p95)
      .field("max_s", stats.max)
      .str();
}

std::string cellJson(const CellResult& cell) {
  return JsonObject()
      .field("mode", cell.mode)
      .field("files", std::uint64_t{cell.files})
      .field("workers", std::uint64_t{cell.workers})
      .field("jobs", std::uint64_t{cell.jobs})
      .field("wall_s", cell.wallSeconds)
      .field("throughput_jobs_per_s", cell.throughputJobsPerSecond)
      .field("events_processed", cell.eventsProcessed)
      .field("events_per_s", cell.eventsPerSecond)
      .field("cache_hits", cell.cacheHits)
      .field("cache_misses", cell.cacheMisses)
      .field("cache_stores", cell.cacheStores)
      .field("normalization_passes", cell.normalizationPasses)
      .field("incremental_jobs", cell.incrementalJobs)
      .field("cache_bytes", cell.cacheBytes)
      .field("cache_entries", cell.cacheEntries)
      .fieldRaw("run", latencyJson(cell.run))
      .str();
}

/// The acceptance headline: benzil_small (examples/plans/benzil_small.ini
/// = benzil-corelli scale=0.001, files=4, DDA traversal), cold vs warm.
/// Warm reruns go through the same long-lived service instance (hot-tier
/// resident entries + shared replay results); a fresh-instance disk-tier
/// rerun is reported as warm_disk_s.  The gated speedup is per-job run
/// p95, cold vs steady-state warm (first warm burst excluded as warm-up).
std::string headlineJson(const std::filesystem::path& cacheRoot,
                         std::size_t workers) {
  const std::filesystem::path dir = cacheRoot / "headline";
  std::filesystem::remove_all(dir);
  constexpr double scale = 0.001;
  constexpr std::size_t files = 4;
  constexpr std::size_t jobs = 2;

  // Incremental mode so a warm rerun at the same file count is a *full*
  // replay of the cached accumulators — no MDNorm, no event binning,
  // just the shared assembled result.  That is the steady-state "same
  // plan again" path a facility sees between runs.
  const auto headlinePlan = [&](std::size_t jobIndex) {
    core::ReductionPlan plan = makePlan(scale, files, jobIndex, true);
    plan.config.mdnorm.traversal = Traversal::Dda;
    return plan;
  };
  // Collects each job's start→finish run time so percentiles can be
  // computed over exactly the bursts we choose (the service's own
  // run-cold/run-warm buckets cannot exclude the warm-up burst).
  const auto timedBurst = [&](ReductionService& svc, std::uint64_t* eventsOut,
                              std::vector<double>* runSamples) {
    std::vector<std::uint64_t> ids;
    for (std::size_t i = 0; i < jobs; ++i) {
      JobRequest request;
      request.plan = headlinePlan(i);
      request.tag = "headline-" + std::to_string(i);
      const SubmitReceipt receipt = svc.submit(std::move(request));
      if (receipt.accepted) {
        ids.push_back(receipt.id);
      }
    }
    WallTimer timer;
    for (const std::uint64_t id : ids) {
      const auto outcome = svc.wait(id);
      if (outcome && outcome->result && eventsOut != nullptr) {
        *eventsOut += outcome->result->eventsProcessed;
      }
      if (outcome && runSamples != nullptr) {
        runSamples->push_back(outcome->status.runSeconds);
      }
    }
    return timer.seconds();
  };

  std::uint64_t coldEvents = 0;
  std::uint64_t warmEvents = 0;
  std::uint64_t warmDiskEvents = 0;
  double coldSeconds = 0.0;
  double warmFirstSeconds = 0.0;
  double warmSeconds = 0.0;
  double warmDiskSeconds = 0.0;
  std::vector<double> coldSamples;
  std::vector<double> warmSamples;
  std::uint64_t memoryHits = 0;
  constexpr std::size_t warmRepeats = 5;
  {
    ReductionService svc(cellOptions(workers, jobs, dir.string()));
    coldSeconds = timedBurst(svc, &coldEvents, &coldSamples);
    // Warm bursts through the SAME instance: the cold burst published
    // the entries and left them resident in the hot tier.  The first
    // warm burst assembles (and memoizes) each key's replay result —
    // standard warm-up, reported as warm_first_s but excluded from the
    // steady-state percentiles; the measured bursts then serve the
    // shared result in O(1).
    warmFirstSeconds = timedBurst(svc, nullptr, nullptr);
    for (std::size_t repeat = 0; repeat < warmRepeats; ++repeat) {
      warmSeconds += timedBurst(svc, &warmEvents, &warmSamples);
    }
    warmSeconds /= static_cast<double>(warmRepeats);
    warmEvents /= warmRepeats;
    memoryHits = svc.metrics().cacheMemoryHits;
    svc.shutdown(true);
  }
  {
    // A fresh instance sharing the directory: the warm path a *new*
    // worker process sees (disk read + CRC + deserialize, still no
    // MDNorm).  Reported alongside for transparency.
    ReductionService svc(cellOptions(workers, jobs, dir.string()));
    warmDiskSeconds = timedBurst(svc, &warmDiskEvents, nullptr);
    svc.shutdown(true);
  }
  // The acceptance gate compares per-job run latencies, cold vs warm,
  // at p95 (same nearest-rank math as ServiceMetrics).
  const LatencyStats coldRun = summarizeLatencies(coldSamples);
  const LatencyStats warmRun = summarizeLatencies(warmSamples);
  const double speedup = warmRun.p95 > 0.0 ? coldRun.p95 / warmRun.p95 : 0.0;
  std::cerr << "headline benzil_small: cold_p95=" << coldRun.p95
            << "s warm_p95=" << warmRun.p95 << "s speedup=" << speedup
            << "x (wall cold=" << coldSeconds << "s warm=" << warmSeconds
            << "s warm_first=" << warmFirstSeconds
            << "s warm_disk=" << warmDiskSeconds << "s)\n";
  return JsonObject()
      .field("plan", "benzil_small")
      .field("config", "benzil-corelli scale=0.001 files=4 traversal=dda")
      .field("jobs", std::uint64_t{jobs})
      .field("workers", std::uint64_t{workers})
      .field("cold_s", coldSeconds)
      .field("warm_s", warmSeconds)
      .field("warm_first_s", warmFirstSeconds)
      .field("warm_disk_s", warmDiskSeconds)
      .field("speedup", speedup)
      .field("speedup_basis",
             "per-job run p95, cold burst vs steady-state warm bursts "
             "(first warm burst = memo warm-up, excluded; see warm_first_s)")
      .fieldRaw("cold_run", latencyJson(coldRun))
      .fieldRaw("warm_run", latencyJson(warmRun))
      .field("cache_memory_hits", memoryHits)
      .field("cold_events_per_s",
             coldSeconds > 0.0
                 ? static_cast<double>(coldEvents) / coldSeconds
                 : 0.0)
      .field("warm_events_per_s",
             warmSeconds > 0.0
                 ? static_cast<double>(warmEvents) / warmSeconds
                 : 0.0)
      .str();
}

} // namespace

int main(int argc, char** argv) {
  ArgParser args("bench_ablation_cache",
                 "Persistent-cache sweep: cold/warm/incremental x files x "
                 "workers, plus the benzil_small cold-vs-warm headline");
  args.addOption("scale", "Workload scale factor", "0.0005");
  args.addOption("files", "Comma-separated file counts (runs) per job", "2,4");
  args.addOption("jobs", "Jobs per cell", "4");
  args.addOption("workers", "Comma-separated worker counts", "1,2");
  args.addOption("cache-dir", "Cache root (recreated per cell)", "");
  if (!args.parse(argc, argv)) {
    return 0;
  }
  const double scale = args.getDouble("scale");
  const auto jobs = static_cast<std::size_t>(args.getInt("jobs"));

  const auto parseList = [](const std::string& text) {
    std::vector<std::size_t> values;
    std::size_t start = 0;
    while (start <= text.size()) {
      const std::size_t comma = text.find(',', start);
      const std::string item =
          text.substr(start, comma == std::string::npos ? std::string::npos
                                                        : comma - start);
      if (!item.empty()) {
        values.push_back(static_cast<std::size_t>(std::stoul(item)));
      }
      if (comma == std::string::npos) {
        break;
      }
      start = comma + 1;
    }
    return values;
  };

  const std::string cacheDirOption = args.getString("cache-dir");
  const std::filesystem::path cacheRoot =
      cacheDirOption.empty()
          ? std::filesystem::temp_directory_path() / "vates-bench-cache"
          : std::filesystem::path(cacheDirOption);
  std::filesystem::create_directories(cacheRoot);

  const std::vector<std::size_t> workerCounts =
      parseList(args.getString("workers"));
  std::string cells;
  for (const char* mode : {"cold", "warm", "incremental"}) {
    for (const std::size_t files : parseList(args.getString("files"))) {
      for (const std::size_t workers : workerCounts) {
        const CellResult cell =
            runCell(mode, scale, files, jobs, workers, cacheRoot);
        if (!cells.empty()) {
          cells += ',';
        }
        cells += cellJson(cell);
        std::cerr << "mode=" << cell.mode << " files=" << cell.files
                  << " workers=" << cell.workers
                  << " wall=" << cell.wallSeconds
                  << "s hits=" << cell.cacheHits
                  << " misses=" << cell.cacheMisses
                  << " norm_passes=" << cell.normalizationPasses << '\n';
      }
    }
  }

  const std::size_t headlineWorkers =
      workerCounts.empty() ? std::size_t{1} : workerCounts.back();
  const std::string headline = headlineJson(cacheRoot, headlineWorkers);
  std::filesystem::remove_all(cacheRoot);

  JsonObject document;
  document.field("benchmark", "cache_ablation")
      .field("config", "benzil-corelli scale=" + args.getString("scale") +
                           " jobs=" + args.getString("jobs") +
                           " distinct-grid bursts (omega start varies); "
                           "batching off")
      .fieldRaw("cells", "[" + cells + "]")
      .fieldRaw("headline", headline);
  std::cout << document.str() << '\n';
  return 0;
}
