// Ablation: in-kernel sorting strategies (§III-B).
//
// The paper replaces Mantid's sort-an-array-of-structs with sorting an
// array of primitive keys ("we sort an array of indices using primitive
// types") and selects comb sort for its allocation-free inner loop.
// This microbenchmark quantifies both choices at intersection-list
// sizes (the Benzil/Bixbyite grids give ~1209-entry worst cases) for
// random and nearly-sorted inputs (plane-ordered intersections arrive
// nearly sorted, which comb sort exploits).

#include "vates/kernels/comb_sort.hpp"
#include "vates/kernels/intersections.hpp"
#include "vates/support/rng.hpp"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

namespace {

using vates::Intersection;

std::vector<double> makeKeys(std::size_t n, bool nearlySorted) {
  vates::Xoshiro256 rng(n * 7919 + (nearlySorted ? 1 : 0));
  std::vector<double> keys(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = nearlySorted ? static_cast<double>(i) + rng.uniform(0.0, 3.0)
                           : rng.uniform(0.0, 1000.0);
  }
  return keys;
}

void BM_CombSortKeys(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool nearlySorted = state.range(1) != 0;
  const std::vector<double> source = makeKeys(n, nearlySorted);
  std::vector<double> keys(n);
  for (auto _ : state) {
    std::copy(source.begin(), source.end(), keys.begin());
    vates::combSortKeys(keys.data(), nullptr, n);
    benchmark::DoNotOptimize(keys.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_CombSortKeysWithIndices(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool nearlySorted = state.range(1) != 0;
  const std::vector<double> source = makeKeys(n, nearlySorted);
  std::vector<double> keys(n);
  std::vector<std::uint32_t> indices(n);
  for (auto _ : state) {
    std::copy(source.begin(), source.end(), keys.begin());
    for (std::size_t i = 0; i < n; ++i) {
      indices[i] = static_cast<std::uint32_t>(i);
    }
    vates::combSortKeys(keys.data(), indices.data(), n);
    benchmark::DoNotOptimize(indices.data());
  }
}

void BM_CombSortStructs(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool nearlySorted = state.range(1) != 0;
  const std::vector<double> source = makeKeys(n, nearlySorted);
  std::vector<Intersection> structs(n);
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      structs[i] = Intersection{source[i] * 2, source[i] * 3, source[i] * 4,
                                source[i]};
    }
    vates::combSortStructs(structs.data(), n,
                           [](const Intersection& p) { return p.k; });
    benchmark::DoNotOptimize(structs.data());
  }
}

void BM_StdSortStructs(benchmark::State& state) {
  // Mantid-style: std::sort over whole structs (may allocate for
  // introsort's recursion bookkeeping is stack-based, but the struct
  // moves are the cost driver here).
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool nearlySorted = state.range(1) != 0;
  const std::vector<double> source = makeKeys(n, nearlySorted);
  std::vector<Intersection> structs(n);
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      structs[i] = Intersection{source[i] * 2, source[i] * 3, source[i] * 4,
                                source[i]};
    }
    std::sort(structs.begin(), structs.end(),
              [](const Intersection& a, const Intersection& b) {
                return a.k < b.k;
              });
    benchmark::DoNotOptimize(structs.data());
  }
}

void BM_StdSortKeys(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool nearlySorted = state.range(1) != 0;
  const std::vector<double> source = makeKeys(n, nearlySorted);
  std::vector<double> keys(n);
  for (auto _ : state) {
    std::copy(source.begin(), source.end(), keys.begin());
    std::sort(keys.begin(), keys.end());
    benchmark::DoNotOptimize(keys.data());
  }
}

void sortArgs(benchmark::internal::Benchmark* bench) {
  for (const std::int64_t n : {64, 256, 1209, 4096}) {
    for (const std::int64_t nearlySorted : {0, 1}) {
      bench->Args({n, nearlySorted});
    }
  }
}

BENCHMARK(BM_CombSortKeys)->Apply(sortArgs);
BENCHMARK(BM_CombSortKeysWithIndices)->Apply(sortArgs);
BENCHMARK(BM_CombSortStructs)->Apply(sortArgs);
BENCHMARK(BM_StdSortStructs)->Apply(sortArgs);
BENCHMARK(BM_StdSortKeys)->Apply(sortArgs);

} // namespace

BENCHMARK_MAIN();
