// Ablation: MDNorm segment generation — sorting strategies and the
// sort-free streaming traversal (§III-B and beyond).
//
// Two layers:
//
//  1. Sort microbenches.  The paper replaces Mantid's
//     sort-an-array-of-structs with sorting an array of primitive keys
//     ("we sort an array of indices using primitive types") and selects
//     comb sort for its allocation-free inner loop.  Quantified at
//     intersection-list sizes (the Benzil/Bixbyite grids give
//     ~1209-entry worst cases) for random and nearly-sorted inputs
//     (plane-ordered intersections arrive nearly sorted, which comb
//     sort exploits).
//
//  2. Traversal ablation on the real MDNorm kernel:
//     Legacy (generate → struct sort → locate) vs SortedKeys (generate
//     → key sort → locate) vs Dda (streaming grid walk, no sort at
//     all), swept over backend × grid size × simd mode at a
//     Table-4-like Benzil CORELLI configuration.  Registered as
//     BM_MDNorm_Traversal/<traversal>/<backend>/<simd>/<bins> (simd ∈
//     {scalar, simd}; the vector row is registered for dda only, the
//     sole traversal that consults MDNormOptions::simd).  Each row
//     reports `mdnorm_s` (mean kernel seconds, timed around runMDNorm
//     alone), `events_per_s` (deposit segments per second), and
//     `roofline_pct` (achieved bytes/s over the STREAM-triad bandwidth
//     measured by bench_common.hpp).  bench/run_perf_smoke.sh
//     aggregates the JSON output into BENCH_mdnorm.json at the repo
//     root.

#include "bench_common.hpp"

#include "vates/events/experiment_setup.hpp"
#include "vates/kernels/comb_sort.hpp"
#include "vates/kernels/intersections.hpp"
#include "vates/kernels/mdnorm.hpp"
#include "vates/kernels/trajectory_walk.hpp"
#include "vates/kernels/transforms.hpp"
#include "vates/parallel/executor.hpp"
#include "vates/support/rng.hpp"
#include "vates/support/simd.hpp"
#include "vates/support/timer.hpp"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <cstddef>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace {

using vates::Intersection;

std::vector<double> makeKeys(std::size_t n, bool nearlySorted) {
  vates::Xoshiro256 rng(n * 7919 + (nearlySorted ? 1 : 0));
  std::vector<double> keys(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = nearlySorted ? static_cast<double>(i) + rng.uniform(0.0, 3.0)
                           : rng.uniform(0.0, 1000.0);
  }
  return keys;
}

void BM_CombSortKeys(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool nearlySorted = state.range(1) != 0;
  const std::vector<double> source = makeKeys(n, nearlySorted);
  std::vector<double> keys(n);
  for (auto _ : state) {
    std::copy(source.begin(), source.end(), keys.begin());
    vates::combSortKeys(keys.data(), nullptr, n);
    benchmark::DoNotOptimize(keys.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_CombSortKeysWithIndices(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool nearlySorted = state.range(1) != 0;
  const std::vector<double> source = makeKeys(n, nearlySorted);
  std::vector<double> keys(n);
  std::vector<std::uint32_t> indices(n);
  for (auto _ : state) {
    std::copy(source.begin(), source.end(), keys.begin());
    for (std::size_t i = 0; i < n; ++i) {
      indices[i] = static_cast<std::uint32_t>(i);
    }
    vates::combSortKeys(keys.data(), indices.data(), n);
    benchmark::DoNotOptimize(indices.data());
  }
}

void BM_CombSortStructs(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool nearlySorted = state.range(1) != 0;
  const std::vector<double> source = makeKeys(n, nearlySorted);
  std::vector<Intersection> structs(n);
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      structs[i] = Intersection{source[i] * 2, source[i] * 3, source[i] * 4,
                                source[i]};
    }
    vates::combSortStructs(structs.data(), n,
                           [](const Intersection& p) { return p.k; });
    benchmark::DoNotOptimize(structs.data());
  }
}

void BM_StdSortStructs(benchmark::State& state) {
  // Mantid-style: std::sort over whole structs (may allocate for
  // introsort's recursion bookkeeping is stack-based, but the struct
  // moves are the cost driver here).
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool nearlySorted = state.range(1) != 0;
  const std::vector<double> source = makeKeys(n, nearlySorted);
  std::vector<Intersection> structs(n);
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      structs[i] = Intersection{source[i] * 2, source[i] * 3, source[i] * 4,
                                source[i]};
    }
    std::sort(structs.begin(), structs.end(),
              [](const Intersection& a, const Intersection& b) {
                return a.k < b.k;
              });
    benchmark::DoNotOptimize(structs.data());
  }
}

void BM_StdSortKeys(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool nearlySorted = state.range(1) != 0;
  const std::vector<double> source = makeKeys(n, nearlySorted);
  std::vector<double> keys(n);
  for (auto _ : state) {
    std::copy(source.begin(), source.end(), keys.begin());
    std::sort(keys.begin(), keys.end());
    benchmark::DoNotOptimize(keys.data());
  }
}

void sortArgs(benchmark::internal::Benchmark* bench) {
  for (const std::int64_t n : {64, 256, 1209, 4096}) {
    for (const std::int64_t nearlySorted : {0, 1}) {
      bench->Args({n, nearlySorted});
    }
  }
}

BENCHMARK(BM_CombSortKeys)->Apply(sortArgs);
BENCHMARK(BM_CombSortKeysWithIndices)->Apply(sortArgs);
BENCHMARK(BM_CombSortStructs)->Apply(sortArgs);
BENCHMARK(BM_StdSortStructs)->Apply(sortArgs);
BENCHMARK(BM_StdSortKeys)->Apply(sortArgs);

// --------------------------------------------------------------------------
// Traversal ablation on the real MDNorm kernel

using namespace vates;

/// One MDNorm workload per grid shape: Benzil CORELLI geometry at
/// reduced detector scale, full-resolution or reduced histogram.  Built
/// lazily and cached (instrument construction dominates setup cost).
struct TraversalFixture {
  explicit TraversalFixture(const std::array<std::size_t, 3>& bins)
      : spec([&] {
          // Table-4-like configuration: the Benzil CORELLI workload's
          // [H,K,0] slice.  The detector count is scaled down so one
          // kernel invocation fits a benchmark iteration; the grid is
          // the paper's full 603×603 slice (or the reduced sweep row).
          WorkloadSpec s = WorkloadSpec::benzilCorelli(0.002);
          s.bins = bins;
          return s;
        }()),
        setup(spec), generator(setup.makeGenerator()),
        run(generator.runInfo(0)),
        transforms(mdNormTransforms(setup.projection(), setup.lattice(),
                                    setup.symmetryMatrices(),
                                    run.goniometerR)),
        histogram(setup.makeHistogram()) {}

  MDNormInputs inputs() const {
    MDNormInputs in;
    in.transforms = transforms;
    in.qLabDirections = setup.instrument().qLabDirections();
    in.solidAngles = setup.instrument().solidAngles();
    in.flux = setup.flux().view();
    in.protonCharge = run.protonCharge;
    in.kMin = run.kMin;
    in.kMax = run.kMax;
    return in;
  }

  /// Deposit-segment count of one kernel invocation (every op ×
  /// detector trajectory walked once) — the "event" of the events/s
  /// counter.  Counted once per fixture with the scalar walk; the
  /// parity contract makes it identical for every traversal and simd
  /// variant.
  std::size_t totalSegments() {
    if (segments == 0) {
      const GridView grid = histogram.gridView();
      const std::span<const V3> directions =
          setup.instrument().qLabDirections();
      for (const M33& op : transforms) {
        for (const V3& direction : directions) {
          segments += traverseTrajectory(grid, op * direction, run.kMin,
                                         run.kMax,
                                         [](double, double, std::size_t) {});
        }
      }
    }
    return segments;
  }

  WorkloadSpec spec;
  ExperimentSetup setup;
  EventGenerator generator;
  RunInfo run;
  std::vector<M33> transforms;
  Histogram3D histogram;
  std::size_t segments = 0;
};

TraversalFixture& traversalFixture(const std::array<std::size_t, 3>& bins) {
  static std::map<std::array<std::size_t, 3>,
                  std::unique_ptr<TraversalFixture>>
      cache;
  std::unique_ptr<TraversalFixture>& slot = cache[bins];
  if (!slot) {
    slot = std::make_unique<TraversalFixture>(bins);
  }
  return *slot;
}

/// Roofline model: one segment's irreducible memory traffic.  Two
/// flux-table interpolations (each reads a pair of adjacent entries —
/// 16 B of distinct doubles), plus the normalization bin's
/// read-modify-write (8 B in + 8 B out): ~48 bytes per segment.
/// Achieved bytes/s over the measured STREAM-triad bandwidth is the
/// `roofline_pct` counter.
constexpr double kBytesPerSegment = 48.0;

void BM_MDNorm_Traversal(benchmark::State& state) {
  const auto traversal = static_cast<Traversal>(state.range(0));
  const auto backend = static_cast<Backend>(state.range(1));
  const std::array<std::size_t, 3> bins = {
      static_cast<std::size_t>(state.range(2)),
      static_cast<std::size_t>(state.range(3)),
      static_cast<std::size_t>(state.range(4))};
  const bool simdOn = state.range(5) != 0;
  if (!backendAvailable(backend)) {
    state.SkipWithError("backend not available in this build");
    return;
  }
  TraversalFixture& f = traversalFixture(bins);
  const Executor executor(backend);
  MDNormOptions options;
  options.traversal = traversal;
  options.simd = simdOn ? SimdMode::On : SimdMode::Off;
  const MDNormInputs inputs = f.inputs();
  double kernelSeconds = 0.0;
  for (auto _ : state) {
    f.histogram.fill(0.0);
    const WallTimer timer;
    runMDNorm(executor, inputs, f.histogram.gridView(), options);
    kernelSeconds += timer.seconds();
    benchmark::DoNotOptimize(f.histogram.data().data());
  }
  const double meanSeconds =
      kernelSeconds / static_cast<double>(state.iterations());
  state.counters["mdnorm_s"] = meanSeconds;
  if (meanSeconds > 0.0) {
    const double rate =
        static_cast<double>(f.totalSegments()) / meanSeconds;
    state.counters["events_per_s"] = rate;
    const double triad = vates::bench::streamTriadBandwidth();
    if (triad > 0.0) {
      state.counters["roofline_pct"] =
          100.0 * rate * kBytesPerSegment / triad;
    }
  }
}

void registerTraversalSweep() {
  struct GridCase {
    std::array<std::size_t, 3> bins;
    const char* label;
  };
  // 603×603×1 is the paper's Benzil [H,K,0] slice (Table 4); the
  // smaller row shows how the sort/locate overhead scales with crossing
  // count per trajectory.
  const GridCase grids[] = {{{603, 603, 1}, "603x603x1"},
                            {{151, 151, 1}, "151x151x1"}};
  const Backend backends[] = {
    Backend::Serial,
#ifdef VATES_HAS_OPENMP
    Backend::OpenMP,
#endif
    Backend::ThreadPool,
  };
  for (const GridCase& grid : grids) {
    for (const Backend backend : backends) {
      for (const Traversal traversal :
           {Traversal::Legacy, Traversal::SortedKeys, Traversal::Dda}) {
        // The simd axis is an MDNorm option only the Dda traversal
        // consults; registering a vector row for legacy/sorted-keys
        // would just duplicate their scalar row.
        const int simdVariants = traversal == Traversal::Dda ? 2 : 1;
        for (int simdOn = 0; simdOn < simdVariants; ++simdOn) {
          const std::string name = std::string("BM_MDNorm_Traversal/") +
                                   traversalName(traversal) + "/" +
                                   backendName(backend) + "/" +
                                   (simdOn != 0 ? "simd" : "scalar") + "/" +
                                   grid.label;
          benchmark::RegisterBenchmark(name.c_str(), BM_MDNorm_Traversal)
              ->Args({static_cast<long>(traversal), static_cast<long>(backend),
                      static_cast<long>(grid.bins[0]),
                      static_cast<long>(grid.bins[1]),
                      static_cast<long>(grid.bins[2]),
                      static_cast<long>(simdOn)})
              ->Unit(benchmark::kMillisecond)
              ->UseRealTime();
        }
      }
    }
  }
}

/// The roofline denominator as a benchmark row, so the raw JSON carries
/// it next to the kernel rows.  The probe measures once (static cache);
/// the loop only reads the cached value back.
void BM_StreamTriad(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(vates::bench::streamTriadBandwidth());
  }
  state.counters["triad_bytes_per_s"] = vates::bench::streamTriadBandwidth();
}
BENCHMARK(BM_StreamTriad);

} // namespace

int main(int argc, char** argv) {
  registerTraversalSweep();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::AddCustomContext("simd_isa", vates::simd::isaName());
  benchmark::AddCustomContext("simd_width",
                              std::to_string(vates::simd::kWidth));
  benchmark::AddCustomContext(
      "triad_bytes_per_s",
      std::to_string(vates::bench::streamTriadBandwidth()));
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
