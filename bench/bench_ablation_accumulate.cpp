// Ablation: histogram accumulation strategy (atomic vs privatized vs
// tiled) across thread counts and grid sizes.
//
// The workload is the contention shape the paper's CORELLI/TOPAZ runs
// produce after symmetry folding: millions of (op × event) deposits
// landing in a grid whose bin count may be far smaller than the deposit
// count.  A small grid (8³ = 512 bins) makes every worker hammer the
// same cache lines — the atomic CAS loop serializes exactly there —
// while a large grid (96³ ≈ 885k bins) spreads deposits out and instead
// stresses the strategies' fixed costs (replica zero+merge, tile
// probing).
//
// Each benchmark builds a private ThreadPool of the requested width, so
// thread counts sweep independently of $VATES_NUM_THREADS.  Run with
// --benchmark_filter=small to see the contention-bound regime only.

#include "vates/histogram/grid_accumulator.hpp"
#include "vates/histogram/histogram3d.hpp"
#include "vates/kernels/binmd.hpp"
#include "vates/support/rng.hpp"

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

namespace {

using namespace vates;

/// Synthetic event set reused across all benchmarks: positions uniform
/// in the unit cube (every event in range, so deposits == ops × events)
/// and four rotation-free "symmetry ops" to widen the iteration space
/// the way real runs do.
struct EventSet {
  explicit EventSet(std::size_t n) : qx(n), qy(n), qz(n), signal(n) {
    Xoshiro256 rng(4242);
    for (std::size_t i = 0; i < n; ++i) {
      qx[i] = rng.uniform(0.0, 1.0);
      qy[i] = rng.uniform(0.0, 1.0);
      qz[i] = rng.uniform(0.0, 1.0);
      signal[i] = rng.uniform(0.5, 1.5);
    }
    transforms.assign(4, M33::identity());
  }

  BinMDInputs inputs() const {
    BinMDInputs in;
    in.transforms = transforms;
    in.qx = qx.data();
    in.qy = qy.data();
    in.qz = qz.data();
    in.signal = signal.data();
    in.nEvents = qx.size();
    return in;
  }

  std::vector<double> qx, qy, qz, signal;
  std::vector<M33> transforms;
};

EventSet& events() {
  static EventSet instance(1 << 18); // ×4 ops ⇒ ~1M deposits per run
  return instance;
}

Histogram3D makeGrid(std::size_t side) {
  return Histogram3D(
      BinAxis("x", 0, 1, side), BinAxis("y", 0, 1, side),
      BinAxis("z", 0, 1, side));
}

void runAccumulateCase(benchmark::State& state, std::size_t side) {
  const auto strategy = static_cast<AccumulateStrategy>(state.range(0));
  const auto threads = static_cast<unsigned>(state.range(1));

  ThreadPool pool(threads);
  const Executor executor(Backend::ThreadPool, pool, DeviceSim::global());
  Histogram3D histogram = makeGrid(side);
  const BinMDInputs inputs = events().inputs();
  AccumulateOptions options;
  options.strategy = strategy;

  for (auto _ : state) {
    histogram.fill(0.0);
    runBinMD(executor, inputs, histogram.gridView(), options);
    benchmark::DoNotOptimize(histogram.data().data());
  }

  // Report what Auto would have picked so labels explain themselves.
  const AccumulateStrategy resolved = GridAccumulator::resolve(
      strategy, histogram.size(), executor.concurrency(),
      options.replicaBudgetBytes);
  state.SetLabel(std::string(accumulateStrategyName(strategy)) +
                 (strategy == AccumulateStrategy::Auto
                      ? std::string("(") + accumulateStrategyName(resolved) +
                            ")"
                      : "") +
                 "/t" + std::to_string(threads) + "/" + std::to_string(side) +
                 "^3");
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(inputs.nEvents) *
                          static_cast<std::int64_t>(inputs.transforms.size()));
}

void BM_Accumulate_SmallGrid(benchmark::State& state) {
  runAccumulateCase(state, 8); // 512 bins: contention-heavy
}

void BM_Accumulate_LargeGrid(benchmark::State& state) {
  runAccumulateCase(state, 96); // ~885k bins: contention-light
}

void accumulateArgs(benchmark::internal::Benchmark* bench) {
  for (AccumulateStrategy strategy :
       {AccumulateStrategy::Atomic, AccumulateStrategy::Privatized,
        AccumulateStrategy::Tiled, AccumulateStrategy::Auto}) {
    for (int threads : {1, 2, 4, 8}) {
      bench->Args({static_cast<int>(strategy), threads});
    }
  }
}

BENCHMARK(BM_Accumulate_SmallGrid)
    ->Apply(accumulateArgs)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Accumulate_LargeGrid)
    ->Apply(accumulateArgs)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
