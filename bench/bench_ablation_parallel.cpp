// Ablation: the paper's kernel-level design choices, measured on the
// real MDNorm/BinMD kernels at reduced workload scale:
//
//   1. ROI plane search vs Mantid-style linear search (Listing 1's
//      "improving the complexity of linear searches" claim);
//   2. primitive-key sort vs whole-struct sort inside MDNorm;
//   3. collapse(2) over (ops × detectors) vs parallelizing the outer
//      symmetry loop only (Listing 1's collapse clause);
//   4. each available backend on the same BinMD launch;
//   5. the histogram write path (atomic vs privatized vs tiled) on the
//      same BinMD and MDNorm launches — the accumulation-strategy
//      ablation at real-workload shape (bench_ablation_accumulate
//      sweeps thread counts and grid sizes synthetically).

#include "vates/events/experiment_setup.hpp"
#include "vates/kernels/binmd.hpp"
#include "vates/kernels/mdnorm.hpp"
#include "vates/kernels/transforms.hpp"
#include "vates/parallel/executor.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace vates;

/// Shared fixture state, built once (instrument construction is the
/// expensive part).
struct Fixture {
  Fixture()
      : setup(WorkloadSpec::benzilCorelli(0.001)),
        generator(setup.makeGenerator()), run(generator.runInfo(0)),
        events(generator.generate(0)),
        normTransforms(mdNormTransforms(setup.projection(), setup.lattice(),
                                        setup.symmetryMatrices(),
                                        run.goniometerR)),
        binTransforms(binMdTransforms(setup.projection(), setup.lattice(),
                                      setup.symmetryMatrices())),
        histogram(setup.makeHistogram()) {}

  MDNormInputs normInputs() const {
    MDNormInputs inputs;
    inputs.transforms = normTransforms;
    inputs.qLabDirections = setup.instrument().qLabDirections();
    inputs.solidAngles = setup.instrument().solidAngles();
    inputs.flux = setup.flux().view();
    inputs.protonCharge = run.protonCharge;
    inputs.kMin = run.kMin;
    inputs.kMax = run.kMax;
    return inputs;
  }

  BinMDInputs binInputs() const {
    BinMDInputs inputs;
    inputs.transforms = binTransforms;
    inputs.qx = events.column(EventTable::Qx).data();
    inputs.qy = events.column(EventTable::Qy).data();
    inputs.qz = events.column(EventTable::Qz).data();
    inputs.signal = events.column(EventTable::Signal).data();
    inputs.nEvents = events.size();
    return inputs;
  }

  ExperimentSetup setup;
  EventGenerator generator;
  RunInfo run;
  EventTable events;
  std::vector<M33> normTransforms;
  std::vector<M33> binTransforms;
  Histogram3D histogram;
};

Fixture& fixture() {
  static Fixture instance;
  return instance;
}

Backend cpuBackend() {
#ifdef VATES_HAS_OPENMP
  return Backend::OpenMP;
#else
  return Backend::ThreadPool;
#endif
}

// --------------------------------------------------------------------------
// 1 + 2: MDNorm algorithm variants

void BM_MDNorm_Variant(benchmark::State& state) {
  Fixture& f = fixture();
  const Executor executor(cpuBackend());
  MDNormOptions options;
  options.search = state.range(0) != 0 ? PlaneSearch::Roi : PlaneSearch::Linear;
  options.traversal = static_cast<Traversal>(state.range(1));
  const MDNormInputs inputs = f.normInputs();
  for (auto _ : state) {
    f.histogram.fill(0.0);
    runMDNorm(executor, inputs, f.histogram.gridView(), options);
    benchmark::DoNotOptimize(f.histogram.data().data());
  }
  state.SetLabel(std::string(options.search == PlaneSearch::Roi ? "roi"
                                                                : "linear") +
                 "+" + traversalName(options.traversal));
}
BENCHMARK(BM_MDNorm_Variant)
    ->Args({0, 0}) // linear + legacy       (Mantid-style)
    ->Args({0, 1}) // linear + sorted-keys
    ->Args({1, 0}) // roi + legacy
    ->Args({1, 1}) // roi + sorted-keys     (the proxies)
    ->Args({1, 2}) // roi + dda             (streaming walk; the search
                   // strategy is irrelevant to dda but the roi row keeps
                   // the ablation table square)
    ->Unit(benchmark::kMillisecond);

// --------------------------------------------------------------------------
// 3: collapse(2) vs outer-only parallelism

void BM_MDNorm_Collapse2(benchmark::State& state) {
  Fixture& f = fixture();
  const Executor executor(cpuBackend());
  const MDNormInputs inputs = f.normInputs();
  for (auto _ : state) {
    f.histogram.fill(0.0);
    runMDNorm(executor, inputs, f.histogram.gridView());
    benchmark::DoNotOptimize(f.histogram.data().data());
  }
}
BENCHMARK(BM_MDNorm_Collapse2)->Unit(benchmark::kMillisecond);

void BM_MDNorm_OuterOnly(benchmark::State& state) {
  // Parallelize only the symmetry-op loop (6 work items for Benzil):
  // the structure the collapse(2) clause exists to avoid.
  Fixture& f = fixture();
  const Executor executor(cpuBackend());
  const MDNormInputs whole = f.normInputs();
  for (auto _ : state) {
    f.histogram.fill(0.0);
    const GridView grid = f.histogram.gridView();
    executor.parallelFor(whole.transforms.size(), [&](std::size_t op) {
      MDNormInputs single = whole;
      single.transforms =
          std::span<const M33>(&whole.transforms[op], 1);
      // Inner detector loop runs serially inside this work item.
      const Executor inner(Backend::Serial);
      runMDNorm(inner, single, grid);
    });
    benchmark::DoNotOptimize(f.histogram.data().data());
  }
}
BENCHMARK(BM_MDNorm_OuterOnly)->Unit(benchmark::kMillisecond);

// --------------------------------------------------------------------------
// 4: BinMD per backend

void BM_BinMD_Backend(benchmark::State& state) {
  Fixture& f = fixture();
  const auto backend = static_cast<Backend>(state.range(0));
  if (!backendAvailable(backend)) {
    state.SkipWithError("backend not available in this build");
    return;
  }
  const Executor executor(backend);
  const BinMDInputs inputs = f.binInputs();
  for (auto _ : state) {
    f.histogram.fill(0.0);
    runBinMD(executor, inputs, f.histogram.gridView());
    benchmark::DoNotOptimize(f.histogram.data().data());
  }
  state.SetLabel(backendName(backend));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(inputs.nEvents) *
                          static_cast<std::int64_t>(inputs.transforms.size()));
}
BENCHMARK(BM_BinMD_Backend)
    ->Arg(static_cast<int>(Backend::Serial))
#ifdef VATES_HAS_OPENMP
    ->Arg(static_cast<int>(Backend::OpenMP))
#endif
    ->Arg(static_cast<int>(Backend::ThreadPool))
    ->Arg(static_cast<int>(Backend::DeviceSim))
    ->Unit(benchmark::kMillisecond);

// --------------------------------------------------------------------------
// 5: accumulation strategy on the real kernels

void BM_BinMD_Accumulate(benchmark::State& state) {
  Fixture& f = fixture();
  const Executor executor(cpuBackend());
  AccumulateOptions options;
  options.strategy = static_cast<AccumulateStrategy>(state.range(0));
  const BinMDInputs inputs = f.binInputs();
  for (auto _ : state) {
    f.histogram.fill(0.0);
    runBinMD(executor, inputs, f.histogram.gridView(), options);
    benchmark::DoNotOptimize(f.histogram.data().data());
  }
  state.SetLabel(accumulateStrategyName(options.strategy));
}
BENCHMARK(BM_BinMD_Accumulate)
    ->Arg(static_cast<int>(AccumulateStrategy::Atomic))
    ->Arg(static_cast<int>(AccumulateStrategy::Privatized))
    ->Arg(static_cast<int>(AccumulateStrategy::Tiled))
    ->Arg(static_cast<int>(AccumulateStrategy::Auto))
    ->Unit(benchmark::kMillisecond);

void BM_MDNorm_Accumulate(benchmark::State& state) {
  Fixture& f = fixture();
  const Executor executor(cpuBackend());
  MDNormOptions options;
  options.accumulate.strategy = static_cast<AccumulateStrategy>(state.range(0));
  const MDNormInputs inputs = f.normInputs();
  for (auto _ : state) {
    f.histogram.fill(0.0);
    runMDNorm(executor, inputs, f.histogram.gridView(), options);
    benchmark::DoNotOptimize(f.histogram.data().data());
  }
  state.SetLabel(accumulateStrategyName(options.accumulate.strategy));
}
BENCHMARK(BM_MDNorm_Accumulate)
    ->Arg(static_cast<int>(AccumulateStrategy::Atomic))
    ->Arg(static_cast<int>(AccumulateStrategy::Privatized))
    ->Arg(static_cast<int>(AccumulateStrategy::Tiled))
    ->Arg(static_cast<int>(AccumulateStrategy::Auto))
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
