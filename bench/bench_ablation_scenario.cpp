// Ablation: the virtual-experiment scenario sweep, autotuned vs fixed
// configuration.
//
// Each cell is one generated scenario shape x mask x event-count point:
// the scenario's workload is reduced once with the default (fixed)
// config, once with the config the runtime autotuner locks after
// probing, and — as the reference ceiling — once with every roster
// candidate to find the true fastest ("oracle" config, exhaustive
// search the autotuner tries to approximate from one file).  Reported
// per cell: events/s for fixed and tuned runs, the probe's wall cost,
// the locked decision, and how close the tuned pick came to the
// exhaustive best (tuned_vs_best, 1.0 = the probe chose the true
// fastest).
//
// Output: a JSON document on stdout (aggregated into
// BENCH_scenario.json by bench/run_perf_smoke.sh).

#include "vates/core/autotune.hpp"
#include "vates/core/pipeline.hpp"
#include "vates/scenario/scenario.hpp"
#include "vates/service/wire.hpp" // JsonObject
#include "vates/support/cli.hpp"
#include "vates/support/timer.hpp"

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

namespace {

using namespace vates;
using vates::scenario::Scenario;
using vates::service::JsonObject;

struct CellResult {
  std::string scenario;
  std::string shape;
  double maskFraction = 0.0;
  std::uint64_t events = 0;
  double fixedSeconds = 0.0;
  double fixedEventsPerSecond = 0.0;
  double tunedSeconds = 0.0;
  double tunedEventsPerSecond = 0.0;
  double probeSeconds = 0.0;
  std::size_t candidates = 0;
  std::string decision;
  double bestSeconds = 0.0; ///< exhaustive roster minimum
  double tunedVsBest = 0.0; ///< best_s / tuned_s (1.0 = probe found it)
  double speedup = 0.0;     ///< fixed_s / tuned_s
};

/// Best-of-N wall time of one config on \p setup (N small: this is a
/// smoke-scale sweep, not a statistics run).
double timeConfig(const ExperimentSetup& setup,
                  const core::ReductionConfig& config, int repeats) {
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < repeats; ++i) {
    WallTimer timer;
    const core::ReductionResult result =
        core::ReductionPipeline(setup, config).run();
    best = std::min(best, timer.seconds());
    // Keep the optimizer honest.
    if (result.eventsProcessed == std::numeric_limits<std::size_t>::max()) {
      std::cerr << "";
    }
  }
  return best;
}

CellResult runCell(std::size_t index, double eventScale, int repeats) {
  Scenario scenario = scenario::makeScenario(index);
  scenario.workload.eventsPerFile = static_cast<std::size_t>(
      static_cast<double>(scenario.workload.eventsPerFile) * eventScale);

  CellResult cell;
  cell.scenario = scenario.name;
  cell.shape = scenario::instrumentShapeName(scenario.shape);
  cell.maskFraction = scenario.maskFraction;
  cell.events = scenario.workload.totalEvents();

  const ExperimentSetup setup(scenario.workload);

  // Fixed config: the out-of-the-box default every plan starts from.
  const core::ReductionConfig fixed;
  cell.fixedSeconds = timeConfig(setup, fixed, repeats);

  // Tuned config: probe, lock, run — the same path a service job takes.
  core::ReductionConfig base;
  base.autotune.enabled = true;
  const core::AutotuneDecision decision = core::autotunePlan(setup, base);
  const core::ReductionConfig tuned = core::lockAutotuneDecision(base, decision);
  cell.probeSeconds = decision.probeSeconds;
  cell.candidates = decision.candidatesSampled;
  cell.decision = decision.summary();
  cell.tunedSeconds = timeConfig(setup, tuned, repeats);

  // Exhaustive reference: time every roster candidate at full size.
  cell.bestSeconds = std::numeric_limits<double>::infinity();
  for (const core::AutotuneCandidate& candidate : core::autotuneRoster(base)) {
    core::ReductionConfig config = base;
    config.autotune.enabled = false;
    config.backend = candidate.backend;
    config.mdnorm.traversal = candidate.traversal;
    config.mdnorm.accumulate.strategy = candidate.accumulate;
    config.binmdAccumulate.strategy = candidate.accumulate;
    config.mdnorm.simd = candidate.simd;
    cell.bestSeconds = std::min(cell.bestSeconds,
                                timeConfig(setup, config, repeats));
  }

  if (cell.fixedSeconds > 0.0) {
    cell.fixedEventsPerSecond =
        static_cast<double>(cell.events) / cell.fixedSeconds;
  }
  if (cell.tunedSeconds > 0.0) {
    cell.tunedEventsPerSecond =
        static_cast<double>(cell.events) / cell.tunedSeconds;
    cell.speedup = cell.fixedSeconds / cell.tunedSeconds;
    cell.tunedVsBest = cell.bestSeconds / cell.tunedSeconds;
  }
  return cell;
}

std::string cellJson(const CellResult& cell) {
  return JsonObject()
      .field("scenario", cell.scenario)
      .field("shape", cell.shape)
      .field("mask_fraction", cell.maskFraction)
      .field("events", cell.events)
      .field("fixed_s", cell.fixedSeconds)
      .field("fixed_events_per_s", cell.fixedEventsPerSecond)
      .field("tuned_s", cell.tunedSeconds)
      .field("tuned_events_per_s", cell.tunedEventsPerSecond)
      .field("probe_s", cell.probeSeconds)
      .field("candidates", std::uint64_t{cell.candidates})
      .field("decision", cell.decision)
      .field("best_s", cell.bestSeconds)
      .field("tuned_vs_best", cell.tunedVsBest)
      .field("speedup_tuned_vs_fixed", cell.speedup)
      .str();
}

} // namespace

int main(int argc, char** argv) {
  ArgParser args("bench_ablation_scenario",
                 "Scenario shape x mask x events sweep, autotuned vs fixed "
                 "config, with the exhaustive roster best as reference");
  // Matrix indices 0..5 cover every shape x mask combination once.
  args.addOption("indices", "Comma-separated scenario matrix indices",
                 "0,1,2,3,4,5");
  args.addOption("event-scales", "Comma-separated event-count multipliers",
                 "1,4");
  args.addOption("repeats", "Timed repeats per config (best-of)", "3");
  if (!args.parse(argc, argv)) {
    return 0;
  }

  const auto parseList = [](const std::string& text) {
    std::vector<double> values;
    std::size_t start = 0;
    while (start <= text.size()) {
      const std::size_t comma = text.find(',', start);
      const std::string item =
          text.substr(start, comma == std::string::npos ? std::string::npos
                                                        : comma - start);
      if (!item.empty()) {
        values.push_back(std::stod(item));
      }
      if (comma == std::string::npos) {
        break;
      }
      start = comma + 1;
    }
    return values;
  };

  const int repeats = std::max(1, static_cast<int>(args.getInt("repeats")));
  std::string cells;
  for (const double indexValue : parseList(args.getString("indices"))) {
    for (const double eventScale : parseList(args.getString("event-scales"))) {
      const CellResult cell =
          runCell(static_cast<std::size_t>(indexValue), eventScale, repeats);
      if (!cells.empty()) {
        cells += ',';
      }
      cells += cellJson(cell);
      std::cerr << cell.scenario << " x" << eventScale
                << ": fixed=" << cell.fixedSeconds
                << "s tuned=" << cell.tunedSeconds
                << "s probe=" << cell.probeSeconds << "s ["
                << cell.decision << "] tuned_vs_best=" << cell.tunedVsBest
                << '\n';
    }
  }

  JsonObject document;
  document.field("benchmark", "scenario_autotune_ablation")
      .field("config", "scenario matrix indices " + args.getString("indices") +
                           " x event scales " + args.getString("event-scales") +
                           "; best-of-" + std::to_string(repeats) +
                           " wall per config")
      .field("metric",
             "fixed = default config; tuned = autotuner probe + locked "
             "config; best = exhaustive roster minimum at full size; "
             "tuned_vs_best = best_s / tuned_s (1.0 means the one-file "
             "probe picked the true fastest)")
      .fieldRaw("cells", "[" + cells + "]");
  std::cout << document.str() << '\n';
  return 0;
}
