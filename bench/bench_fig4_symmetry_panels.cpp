// Fig. 4: the four cross-section panels showing how ensemble
// measurement plus symmetrization fills reciprocal space —
//   (a) single run,                 (b) single run + symmetry,
//   (c) all 22 runs,                (d) all 22 runs + symmetry.
//
// Writes one PGM image and one CSV grid per panel and prints coverage
// statistics; the defining property (coverage grows monotonically
// a -> b -> d and a -> c -> d) is asserted at the end.

#include "vates/core/pipeline.hpp"
#include "vates/io/grid_writers.hpp"
#include "vates/support/cli.hpp"

#include <cstdio>
#include <filesystem>
#include <iostream>

using namespace vates;

namespace {

struct Panel {
  const char* label;
  const char* description;
  std::size_t runs;
  bool symmetry;
  SliceStats stats;
};

SliceStats reducePanel(const WorkloadSpec& base, std::size_t runs,
                       bool symmetry, const std::string& stem) {
  WorkloadSpec spec = base;
  spec.nFiles = runs;
  if (!symmetry) {
    spec.pointGroup = "1";
  }
  const ExperimentSetup setup(spec);
  core::ReductionConfig config;
#ifdef VATES_HAS_OPENMP
  config.backend = Backend::OpenMP;
#else
  config.backend = Backend::ThreadPool;
#endif
  const core::ReductionResult result =
      core::ReductionPipeline(setup, config).run();
  writePgmSlice(stem + ".pgm", result.crossSection);
  writeCsvSlice(stem + ".csv", result.crossSection);
  return computeSliceStats(result.crossSection);
}

} // namespace

int main(int argc, char** argv) {
  ArgParser args("bench_fig4_symmetry_panels",
                 "Fig. 4: single/multi-run, with/without symmetry panels");
  args.addOption("scale", "Workload scale (1.0 = paper size)", "0.0005");
  args.addOption("outdir", "Output directory for panel images", "fig4_panels");
  try {
    if (!args.parse(argc, argv)) {
      return 0;
    }
    const WorkloadSpec base =
        WorkloadSpec::bixbyiteTopaz(args.getDouble("scale"));
    const std::string outdir = args.getString("outdir");
    std::filesystem::create_directories(outdir);

    std::cout << "=== Fig. 4: cross-section scattering data reduction "
                 "ensemble measurement steps (Bixbyite) ===\n\n";

    Panel panels[] = {
        {"a", "single run", 1, false, {}},
        {"b", "single run + symmetry", 1, true, {}},
        {"c", "all runs", base.nFiles, false, {}},
        {"d", "all runs + symmetry", base.nFiles, true, {}},
    };

    std::printf("%-4s %-26s %10s %12s %12s\n", "id", "panel", "coverage",
                "covered", "max value");
    for (Panel& panel : panels) {
      const std::string stem =
          outdir + "/fig4_" + panel.label + "_" +
          (panel.symmetry ? "sym" : "nosym") + "_" +
          std::to_string(panel.runs) + "runs";
      panel.stats = reducePanel(base, panel.runs, panel.symmetry, stem);
      std::printf("%-4s %-26s %9.1f%% %12zu %12.3f\n", panel.label,
                  panel.description, 100.0 * panel.stats.coverage(),
                  panel.stats.coveredBins, panel.stats.maxValue);
    }

    std::cout << "\nPanel images and CSV grids written to " << outdir
              << "/\n\n";

    // The figure's qualitative content: symmetry and ensemble
    // measurement each add coverage; together they add the most.
    const double a = panels[0].stats.coverage();
    const double b = panels[1].stats.coverage();
    const double c = panels[2].stats.coverage();
    const double d = panels[3].stats.coverage();
    const bool shapeHolds = (b > a) && (c > a) && (d >= b) && (d >= c);
    std::printf("Shape check (b>a, c>a, d>=b, d>=c): %s\n",
                shapeHolds ? "PASS" : "FAIL");
    return shapeHolds ? 0 : 1;
  } catch (const Error& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
}
