// Table VI: Bixbyite (TOPAZ) proxies on Milan0 (EPYC 7513 + A100).  The
// paper's standout number is BinMD at 5.31e-5 s steady-state on the
// A100 — over 50,000× the CPU proxy — driven by the A100's atomic
// throughput; the simulated device reproduces the structural gap
// between the JIT and steady-state columns.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace vates;
  const bench::TableCase tableCase{
      "Table VI: Bixbyite (TOPAZ) on Milan0 (EPYC 7513 + A100)",
      "milan0",
      &WorkloadSpec::bixbyiteTopaz,
      0.0003,
      {
          bench::PaperColumn{"C++ Proxy (CPU)", 42.59, 1.53, 3.08, 306.46},
          bench::PaperColumn{"MiniVATES (JIT)", 3.784, 3.133, 0.766, 667.02},
          bench::PaperColumn{"MiniVATES (noJIT)", 3.037, 0.518, 5.31e-5,
                             667.02},
      }};
  return bench::runTableBench(tableCase, argc, argv);
}
