# Empty dependencies file for vates_support.
# This may be replaced when dependencies are built.
