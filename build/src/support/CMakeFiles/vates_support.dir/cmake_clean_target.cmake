file(REMOVE_RECURSE
  "libvates_support.a"
)
