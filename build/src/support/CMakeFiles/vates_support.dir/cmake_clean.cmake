file(REMOVE_RECURSE
  "CMakeFiles/vates_support.dir/cli.cpp.o"
  "CMakeFiles/vates_support.dir/cli.cpp.o.d"
  "CMakeFiles/vates_support.dir/error.cpp.o"
  "CMakeFiles/vates_support.dir/error.cpp.o.d"
  "CMakeFiles/vates_support.dir/inifile.cpp.o"
  "CMakeFiles/vates_support.dir/inifile.cpp.o.d"
  "CMakeFiles/vates_support.dir/log.cpp.o"
  "CMakeFiles/vates_support.dir/log.cpp.o.d"
  "CMakeFiles/vates_support.dir/rng.cpp.o"
  "CMakeFiles/vates_support.dir/rng.cpp.o.d"
  "CMakeFiles/vates_support.dir/strings.cpp.o"
  "CMakeFiles/vates_support.dir/strings.cpp.o.d"
  "CMakeFiles/vates_support.dir/timer.cpp.o"
  "CMakeFiles/vates_support.dir/timer.cpp.o.d"
  "libvates_support.a"
  "libvates_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vates_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
