# Empty dependencies file for vates_histogram.
# This may be replaced when dependencies are built.
