file(REMOVE_RECURSE
  "CMakeFiles/vates_histogram.dir/binning.cpp.o"
  "CMakeFiles/vates_histogram.dir/binning.cpp.o.d"
  "CMakeFiles/vates_histogram.dir/histogram3d.cpp.o"
  "CMakeFiles/vates_histogram.dir/histogram3d.cpp.o.d"
  "libvates_histogram.a"
  "libvates_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vates_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
