file(REMOVE_RECURSE
  "libvates_histogram.a"
)
