file(REMOVE_RECURSE
  "libvates_baseline.a"
)
