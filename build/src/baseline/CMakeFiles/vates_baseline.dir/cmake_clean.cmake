file(REMOVE_RECURSE
  "CMakeFiles/vates_baseline.dir/garnet_workflow.cpp.o"
  "CMakeFiles/vates_baseline.dir/garnet_workflow.cpp.o.d"
  "libvates_baseline.a"
  "libvates_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vates_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
