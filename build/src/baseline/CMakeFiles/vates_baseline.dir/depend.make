# Empty dependencies file for vates_baseline.
# This may be replaced when dependencies are built.
