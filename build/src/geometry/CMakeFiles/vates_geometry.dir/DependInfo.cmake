
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geometry/centering.cpp" "src/geometry/CMakeFiles/vates_geometry.dir/centering.cpp.o" "gcc" "src/geometry/CMakeFiles/vates_geometry.dir/centering.cpp.o.d"
  "/root/repo/src/geometry/detector_mask.cpp" "src/geometry/CMakeFiles/vates_geometry.dir/detector_mask.cpp.o" "gcc" "src/geometry/CMakeFiles/vates_geometry.dir/detector_mask.cpp.o.d"
  "/root/repo/src/geometry/goniometer.cpp" "src/geometry/CMakeFiles/vates_geometry.dir/goniometer.cpp.o" "gcc" "src/geometry/CMakeFiles/vates_geometry.dir/goniometer.cpp.o.d"
  "/root/repo/src/geometry/instrument.cpp" "src/geometry/CMakeFiles/vates_geometry.dir/instrument.cpp.o" "gcc" "src/geometry/CMakeFiles/vates_geometry.dir/instrument.cpp.o.d"
  "/root/repo/src/geometry/lattice.cpp" "src/geometry/CMakeFiles/vates_geometry.dir/lattice.cpp.o" "gcc" "src/geometry/CMakeFiles/vates_geometry.dir/lattice.cpp.o.d"
  "/root/repo/src/geometry/mat3.cpp" "src/geometry/CMakeFiles/vates_geometry.dir/mat3.cpp.o" "gcc" "src/geometry/CMakeFiles/vates_geometry.dir/mat3.cpp.o.d"
  "/root/repo/src/geometry/oriented_lattice.cpp" "src/geometry/CMakeFiles/vates_geometry.dir/oriented_lattice.cpp.o" "gcc" "src/geometry/CMakeFiles/vates_geometry.dir/oriented_lattice.cpp.o.d"
  "/root/repo/src/geometry/symmetry.cpp" "src/geometry/CMakeFiles/vates_geometry.dir/symmetry.cpp.o" "gcc" "src/geometry/CMakeFiles/vates_geometry.dir/symmetry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/vates_support.dir/DependInfo.cmake"
  "/root/repo/build/src/units/CMakeFiles/vates_units.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
