# Empty dependencies file for vates_geometry.
# This may be replaced when dependencies are built.
