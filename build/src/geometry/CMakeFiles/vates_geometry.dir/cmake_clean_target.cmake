file(REMOVE_RECURSE
  "libvates_geometry.a"
)
