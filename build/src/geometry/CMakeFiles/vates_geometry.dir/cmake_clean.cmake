file(REMOVE_RECURSE
  "CMakeFiles/vates_geometry.dir/centering.cpp.o"
  "CMakeFiles/vates_geometry.dir/centering.cpp.o.d"
  "CMakeFiles/vates_geometry.dir/detector_mask.cpp.o"
  "CMakeFiles/vates_geometry.dir/detector_mask.cpp.o.d"
  "CMakeFiles/vates_geometry.dir/goniometer.cpp.o"
  "CMakeFiles/vates_geometry.dir/goniometer.cpp.o.d"
  "CMakeFiles/vates_geometry.dir/instrument.cpp.o"
  "CMakeFiles/vates_geometry.dir/instrument.cpp.o.d"
  "CMakeFiles/vates_geometry.dir/lattice.cpp.o"
  "CMakeFiles/vates_geometry.dir/lattice.cpp.o.d"
  "CMakeFiles/vates_geometry.dir/mat3.cpp.o"
  "CMakeFiles/vates_geometry.dir/mat3.cpp.o.d"
  "CMakeFiles/vates_geometry.dir/oriented_lattice.cpp.o"
  "CMakeFiles/vates_geometry.dir/oriented_lattice.cpp.o.d"
  "CMakeFiles/vates_geometry.dir/symmetry.cpp.o"
  "CMakeFiles/vates_geometry.dir/symmetry.cpp.o.d"
  "libvates_geometry.a"
  "libvates_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vates_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
