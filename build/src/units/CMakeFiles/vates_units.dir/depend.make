# Empty dependencies file for vates_units.
# This may be replaced when dependencies are built.
