file(REMOVE_RECURSE
  "CMakeFiles/vates_units.dir/units.cpp.o"
  "CMakeFiles/vates_units.dir/units.cpp.o.d"
  "libvates_units.a"
  "libvates_units.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vates_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
