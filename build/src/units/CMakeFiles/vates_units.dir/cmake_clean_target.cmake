file(REMOVE_RECURSE
  "libvates_units.a"
)
