# Empty compiler generated dependencies file for vates_parallel.
# This may be replaced when dependencies are built.
