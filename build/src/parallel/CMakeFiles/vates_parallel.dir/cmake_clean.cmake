file(REMOVE_RECURSE
  "CMakeFiles/vates_parallel.dir/backend.cpp.o"
  "CMakeFiles/vates_parallel.dir/backend.cpp.o.d"
  "CMakeFiles/vates_parallel.dir/device_sim.cpp.o"
  "CMakeFiles/vates_parallel.dir/device_sim.cpp.o.d"
  "CMakeFiles/vates_parallel.dir/executor.cpp.o"
  "CMakeFiles/vates_parallel.dir/executor.cpp.o.d"
  "CMakeFiles/vates_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/vates_parallel.dir/thread_pool.cpp.o.d"
  "libvates_parallel.a"
  "libvates_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vates_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
