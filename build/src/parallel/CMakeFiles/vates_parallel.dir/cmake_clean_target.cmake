file(REMOVE_RECURSE
  "libvates_parallel.a"
)
