
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/events/event_table.cpp" "src/events/CMakeFiles/vates_events.dir/event_table.cpp.o" "gcc" "src/events/CMakeFiles/vates_events.dir/event_table.cpp.o.d"
  "/root/repo/src/events/experiment_setup.cpp" "src/events/CMakeFiles/vates_events.dir/experiment_setup.cpp.o" "gcc" "src/events/CMakeFiles/vates_events.dir/experiment_setup.cpp.o.d"
  "/root/repo/src/events/generator.cpp" "src/events/CMakeFiles/vates_events.dir/generator.cpp.o" "gcc" "src/events/CMakeFiles/vates_events.dir/generator.cpp.o.d"
  "/root/repo/src/events/md_box_tree.cpp" "src/events/CMakeFiles/vates_events.dir/md_box_tree.cpp.o" "gcc" "src/events/CMakeFiles/vates_events.dir/md_box_tree.cpp.o.d"
  "/root/repo/src/events/raw_events.cpp" "src/events/CMakeFiles/vates_events.dir/raw_events.cpp.o" "gcc" "src/events/CMakeFiles/vates_events.dir/raw_events.cpp.o.d"
  "/root/repo/src/events/workload.cpp" "src/events/CMakeFiles/vates_events.dir/workload.cpp.o" "gcc" "src/events/CMakeFiles/vates_events.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/vates_support.dir/DependInfo.cmake"
  "/root/repo/build/src/units/CMakeFiles/vates_units.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/vates_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/flux/CMakeFiles/vates_flux.dir/DependInfo.cmake"
  "/root/repo/build/src/histogram/CMakeFiles/vates_histogram.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/vates_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
