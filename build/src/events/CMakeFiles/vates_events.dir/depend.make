# Empty dependencies file for vates_events.
# This may be replaced when dependencies are built.
