file(REMOVE_RECURSE
  "libvates_events.a"
)
