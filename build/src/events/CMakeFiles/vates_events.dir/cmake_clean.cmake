file(REMOVE_RECURSE
  "CMakeFiles/vates_events.dir/event_table.cpp.o"
  "CMakeFiles/vates_events.dir/event_table.cpp.o.d"
  "CMakeFiles/vates_events.dir/experiment_setup.cpp.o"
  "CMakeFiles/vates_events.dir/experiment_setup.cpp.o.d"
  "CMakeFiles/vates_events.dir/generator.cpp.o"
  "CMakeFiles/vates_events.dir/generator.cpp.o.d"
  "CMakeFiles/vates_events.dir/md_box_tree.cpp.o"
  "CMakeFiles/vates_events.dir/md_box_tree.cpp.o.d"
  "CMakeFiles/vates_events.dir/raw_events.cpp.o"
  "CMakeFiles/vates_events.dir/raw_events.cpp.o.d"
  "CMakeFiles/vates_events.dir/workload.cpp.o"
  "CMakeFiles/vates_events.dir/workload.cpp.o.d"
  "libvates_events.a"
  "libvates_events.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vates_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
