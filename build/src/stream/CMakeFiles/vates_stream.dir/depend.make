# Empty dependencies file for vates_stream.
# This may be replaced when dependencies are built.
