file(REMOVE_RECURSE
  "CMakeFiles/vates_stream.dir/daq_simulator.cpp.o"
  "CMakeFiles/vates_stream.dir/daq_simulator.cpp.o.d"
  "CMakeFiles/vates_stream.dir/event_channel.cpp.o"
  "CMakeFiles/vates_stream.dir/event_channel.cpp.o.d"
  "CMakeFiles/vates_stream.dir/live_reducer.cpp.o"
  "CMakeFiles/vates_stream.dir/live_reducer.cpp.o.d"
  "libvates_stream.a"
  "libvates_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vates_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
