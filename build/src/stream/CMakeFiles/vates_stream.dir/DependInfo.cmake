
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stream/daq_simulator.cpp" "src/stream/CMakeFiles/vates_stream.dir/daq_simulator.cpp.o" "gcc" "src/stream/CMakeFiles/vates_stream.dir/daq_simulator.cpp.o.d"
  "/root/repo/src/stream/event_channel.cpp" "src/stream/CMakeFiles/vates_stream.dir/event_channel.cpp.o" "gcc" "src/stream/CMakeFiles/vates_stream.dir/event_channel.cpp.o.d"
  "/root/repo/src/stream/live_reducer.cpp" "src/stream/CMakeFiles/vates_stream.dir/live_reducer.cpp.o" "gcc" "src/stream/CMakeFiles/vates_stream.dir/live_reducer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/vates_support.dir/DependInfo.cmake"
  "/root/repo/build/src/events/CMakeFiles/vates_events.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/vates_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/histogram/CMakeFiles/vates_histogram.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/vates_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/flux/CMakeFiles/vates_flux.dir/DependInfo.cmake"
  "/root/repo/build/src/units/CMakeFiles/vates_units.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/vates_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
