file(REMOVE_RECURSE
  "libvates_stream.a"
)
