# Empty dependencies file for vates_io.
# This may be replaced when dependencies are built.
