file(REMOVE_RECURSE
  "libvates_io.a"
)
