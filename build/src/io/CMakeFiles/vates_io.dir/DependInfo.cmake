
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/crc32.cpp" "src/io/CMakeFiles/vates_io.dir/crc32.cpp.o" "gcc" "src/io/CMakeFiles/vates_io.dir/crc32.cpp.o.d"
  "/root/repo/src/io/event_file.cpp" "src/io/CMakeFiles/vates_io.dir/event_file.cpp.o" "gcc" "src/io/CMakeFiles/vates_io.dir/event_file.cpp.o.d"
  "/root/repo/src/io/grid_writers.cpp" "src/io/CMakeFiles/vates_io.dir/grid_writers.cpp.o" "gcc" "src/io/CMakeFiles/vates_io.dir/grid_writers.cpp.o.d"
  "/root/repo/src/io/histogram_file.cpp" "src/io/CMakeFiles/vates_io.dir/histogram_file.cpp.o" "gcc" "src/io/CMakeFiles/vates_io.dir/histogram_file.cpp.o.d"
  "/root/repo/src/io/nxlite.cpp" "src/io/CMakeFiles/vates_io.dir/nxlite.cpp.o" "gcc" "src/io/CMakeFiles/vates_io.dir/nxlite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/vates_support.dir/DependInfo.cmake"
  "/root/repo/build/src/events/CMakeFiles/vates_events.dir/DependInfo.cmake"
  "/root/repo/build/src/histogram/CMakeFiles/vates_histogram.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/vates_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/vates_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/flux/CMakeFiles/vates_flux.dir/DependInfo.cmake"
  "/root/repo/build/src/units/CMakeFiles/vates_units.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
