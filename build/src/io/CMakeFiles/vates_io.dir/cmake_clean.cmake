file(REMOVE_RECURSE
  "CMakeFiles/vates_io.dir/crc32.cpp.o"
  "CMakeFiles/vates_io.dir/crc32.cpp.o.d"
  "CMakeFiles/vates_io.dir/event_file.cpp.o"
  "CMakeFiles/vates_io.dir/event_file.cpp.o.d"
  "CMakeFiles/vates_io.dir/grid_writers.cpp.o"
  "CMakeFiles/vates_io.dir/grid_writers.cpp.o.d"
  "CMakeFiles/vates_io.dir/histogram_file.cpp.o"
  "CMakeFiles/vates_io.dir/histogram_file.cpp.o.d"
  "CMakeFiles/vates_io.dir/nxlite.cpp.o"
  "CMakeFiles/vates_io.dir/nxlite.cpp.o.d"
  "libvates_io.a"
  "libvates_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vates_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
