file(REMOVE_RECURSE
  "CMakeFiles/vates_comm.dir/minimpi.cpp.o"
  "CMakeFiles/vates_comm.dir/minimpi.cpp.o.d"
  "libvates_comm.a"
  "libvates_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vates_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
