# Empty dependencies file for vates_comm.
# This may be replaced when dependencies are built.
