file(REMOVE_RECURSE
  "libvates_comm.a"
)
