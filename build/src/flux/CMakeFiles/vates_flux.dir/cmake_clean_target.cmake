file(REMOVE_RECURSE
  "libvates_flux.a"
)
