# Empty dependencies file for vates_flux.
# This may be replaced when dependencies are built.
