file(REMOVE_RECURSE
  "CMakeFiles/vates_flux.dir/flux_spectrum.cpp.o"
  "CMakeFiles/vates_flux.dir/flux_spectrum.cpp.o.d"
  "libvates_flux.a"
  "libvates_flux.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vates_flux.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
