
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workflow/scheduler.cpp" "src/workflow/CMakeFiles/vates_workflow.dir/scheduler.cpp.o" "gcc" "src/workflow/CMakeFiles/vates_workflow.dir/scheduler.cpp.o.d"
  "/root/repo/src/workflow/task_graph.cpp" "src/workflow/CMakeFiles/vates_workflow.dir/task_graph.cpp.o" "gcc" "src/workflow/CMakeFiles/vates_workflow.dir/task_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/vates_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
