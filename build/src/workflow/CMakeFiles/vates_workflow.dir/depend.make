# Empty dependencies file for vates_workflow.
# This may be replaced when dependencies are built.
