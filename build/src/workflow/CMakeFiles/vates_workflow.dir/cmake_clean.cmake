file(REMOVE_RECURSE
  "CMakeFiles/vates_workflow.dir/scheduler.cpp.o"
  "CMakeFiles/vates_workflow.dir/scheduler.cpp.o.d"
  "CMakeFiles/vates_workflow.dir/task_graph.cpp.o"
  "CMakeFiles/vates_workflow.dir/task_graph.cpp.o.d"
  "libvates_workflow.a"
  "libvates_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vates_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
