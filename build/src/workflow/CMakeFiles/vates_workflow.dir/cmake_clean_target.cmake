file(REMOVE_RECURSE
  "libvates_workflow.a"
)
