file(REMOVE_RECURSE
  "libvates_core.a"
)
