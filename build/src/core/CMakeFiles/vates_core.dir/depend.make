# Empty dependencies file for vates_core.
# This may be replaced when dependencies are built.
