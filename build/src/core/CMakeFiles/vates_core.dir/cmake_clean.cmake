file(REMOVE_RECURSE
  "CMakeFiles/vates_core.dir/analysis.cpp.o"
  "CMakeFiles/vates_core.dir/analysis.cpp.o.d"
  "CMakeFiles/vates_core.dir/hardware_preset.cpp.o"
  "CMakeFiles/vates_core.dir/hardware_preset.cpp.o.d"
  "CMakeFiles/vates_core.dir/peak_search.cpp.o"
  "CMakeFiles/vates_core.dir/peak_search.cpp.o.d"
  "CMakeFiles/vates_core.dir/pipeline.cpp.o"
  "CMakeFiles/vates_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/vates_core.dir/plan.cpp.o"
  "CMakeFiles/vates_core.dir/plan.cpp.o.d"
  "CMakeFiles/vates_core.dir/reduction_config.cpp.o"
  "CMakeFiles/vates_core.dir/reduction_config.cpp.o.d"
  "CMakeFiles/vates_core.dir/report.cpp.o"
  "CMakeFiles/vates_core.dir/report.cpp.o.d"
  "CMakeFiles/vates_core.dir/workflow_reduction.cpp.o"
  "CMakeFiles/vates_core.dir/workflow_reduction.cpp.o.d"
  "libvates_core.a"
  "libvates_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vates_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
