file(REMOVE_RECURSE
  "libvates_kernels.a"
)
