
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/binmd.cpp" "src/kernels/CMakeFiles/vates_kernels.dir/binmd.cpp.o" "gcc" "src/kernels/CMakeFiles/vates_kernels.dir/binmd.cpp.o.d"
  "/root/repo/src/kernels/convert_to_md.cpp" "src/kernels/CMakeFiles/vates_kernels.dir/convert_to_md.cpp.o" "gcc" "src/kernels/CMakeFiles/vates_kernels.dir/convert_to_md.cpp.o.d"
  "/root/repo/src/kernels/intersections.cpp" "src/kernels/CMakeFiles/vates_kernels.dir/intersections.cpp.o" "gcc" "src/kernels/CMakeFiles/vates_kernels.dir/intersections.cpp.o.d"
  "/root/repo/src/kernels/mdnorm.cpp" "src/kernels/CMakeFiles/vates_kernels.dir/mdnorm.cpp.o" "gcc" "src/kernels/CMakeFiles/vates_kernels.dir/mdnorm.cpp.o.d"
  "/root/repo/src/kernels/symmetrize.cpp" "src/kernels/CMakeFiles/vates_kernels.dir/symmetrize.cpp.o" "gcc" "src/kernels/CMakeFiles/vates_kernels.dir/symmetrize.cpp.o.d"
  "/root/repo/src/kernels/transforms.cpp" "src/kernels/CMakeFiles/vates_kernels.dir/transforms.cpp.o" "gcc" "src/kernels/CMakeFiles/vates_kernels.dir/transforms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/vates_support.dir/DependInfo.cmake"
  "/root/repo/build/src/units/CMakeFiles/vates_units.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/vates_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/histogram/CMakeFiles/vates_histogram.dir/DependInfo.cmake"
  "/root/repo/build/src/flux/CMakeFiles/vates_flux.dir/DependInfo.cmake"
  "/root/repo/build/src/events/CMakeFiles/vates_events.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/vates_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
