# Empty dependencies file for vates_kernels.
# This may be replaced when dependencies are built.
