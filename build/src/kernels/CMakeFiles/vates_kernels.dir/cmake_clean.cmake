file(REMOVE_RECURSE
  "CMakeFiles/vates_kernels.dir/binmd.cpp.o"
  "CMakeFiles/vates_kernels.dir/binmd.cpp.o.d"
  "CMakeFiles/vates_kernels.dir/convert_to_md.cpp.o"
  "CMakeFiles/vates_kernels.dir/convert_to_md.cpp.o.d"
  "CMakeFiles/vates_kernels.dir/intersections.cpp.o"
  "CMakeFiles/vates_kernels.dir/intersections.cpp.o.d"
  "CMakeFiles/vates_kernels.dir/mdnorm.cpp.o"
  "CMakeFiles/vates_kernels.dir/mdnorm.cpp.o.d"
  "CMakeFiles/vates_kernels.dir/symmetrize.cpp.o"
  "CMakeFiles/vates_kernels.dir/symmetrize.cpp.o.d"
  "CMakeFiles/vates_kernels.dir/transforms.cpp.o"
  "CMakeFiles/vates_kernels.dir/transforms.cpp.o.d"
  "libvates_kernels.a"
  "libvates_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vates_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
