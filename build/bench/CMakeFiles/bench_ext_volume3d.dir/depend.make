# Empty dependencies file for bench_ext_volume3d.
# This may be replaced when dependencies are built.
