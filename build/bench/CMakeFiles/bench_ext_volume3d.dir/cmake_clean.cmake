file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_volume3d.dir/bench_ext_volume3d.cpp.o"
  "CMakeFiles/bench_ext_volume3d.dir/bench_ext_volume3d.cpp.o.d"
  "bench_ext_volume3d"
  "bench_ext_volume3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_volume3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
