# Empty compiler generated dependencies file for bench_table5_bixbyite_defiant.
# This may be replaced when dependencies are built.
