file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_bixbyite_defiant.dir/bench_table5_bixbyite_defiant.cpp.o"
  "CMakeFiles/bench_table5_bixbyite_defiant.dir/bench_table5_bixbyite_defiant.cpp.o.d"
  "bench_table5_bixbyite_defiant"
  "bench_table5_bixbyite_defiant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_bixbyite_defiant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
