file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_benzil_defiant.dir/bench_table3_benzil_defiant.cpp.o"
  "CMakeFiles/bench_table3_benzil_defiant.dir/bench_table3_benzil_defiant.cpp.o.d"
  "bench_table3_benzil_defiant"
  "bench_table3_benzil_defiant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_benzil_defiant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
