# Empty dependencies file for bench_table3_benzil_defiant.
# This may be replaced when dependencies are built.
