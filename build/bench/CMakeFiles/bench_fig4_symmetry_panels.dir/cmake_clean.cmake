file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_symmetry_panels.dir/bench_fig4_symmetry_panels.cpp.o"
  "CMakeFiles/bench_fig4_symmetry_panels.dir/bench_fig4_symmetry_panels.cpp.o.d"
  "bench_fig4_symmetry_panels"
  "bench_fig4_symmetry_panels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_symmetry_panels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
