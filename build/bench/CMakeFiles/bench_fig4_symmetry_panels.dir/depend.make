# Empty dependencies file for bench_fig4_symmetry_panels.
# This may be replaced when dependencies are built.
