file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_symmetrize.dir/bench_ablation_symmetrize.cpp.o"
  "CMakeFiles/bench_ablation_symmetrize.dir/bench_ablation_symmetrize.cpp.o.d"
  "bench_ablation_symmetrize"
  "bench_ablation_symmetrize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_symmetrize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
