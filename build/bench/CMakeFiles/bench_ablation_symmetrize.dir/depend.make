# Empty dependencies file for bench_ablation_symmetrize.
# This may be replaced when dependencies are built.
