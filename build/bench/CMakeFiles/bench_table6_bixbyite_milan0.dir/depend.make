# Empty dependencies file for bench_table6_bixbyite_milan0.
# This may be replaced when dependencies are built.
