file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_boxtree.dir/bench_ablation_boxtree.cpp.o"
  "CMakeFiles/bench_ablation_boxtree.dir/bench_ablation_boxtree.cpp.o.d"
  "bench_ablation_boxtree"
  "bench_ablation_boxtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_boxtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
