# Empty dependencies file for bench_ablation_boxtree.
# This may be replaced when dependencies are built.
