# Empty compiler generated dependencies file for bench_ablation_histogram.
# This may be replaced when dependencies are built.
