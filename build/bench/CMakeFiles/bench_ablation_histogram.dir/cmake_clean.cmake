file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_histogram.dir/bench_ablation_histogram.cpp.o"
  "CMakeFiles/bench_ablation_histogram.dir/bench_ablation_histogram.cpp.o.d"
  "bench_ablation_histogram"
  "bench_ablation_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
