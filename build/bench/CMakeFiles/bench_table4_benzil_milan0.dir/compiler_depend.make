# Empty compiler generated dependencies file for bench_table4_benzil_milan0.
# This may be replaced when dependencies are built.
