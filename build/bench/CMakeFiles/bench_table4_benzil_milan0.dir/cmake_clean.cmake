file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_benzil_milan0.dir/bench_table4_benzil_milan0.cpp.o"
  "CMakeFiles/bench_table4_benzil_milan0.dir/bench_table4_benzil_milan0.cpp.o.d"
  "bench_table4_benzil_milan0"
  "bench_table4_benzil_milan0.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_benzil_milan0.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
