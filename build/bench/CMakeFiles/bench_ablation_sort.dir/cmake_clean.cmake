file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_sort.dir/bench_ablation_sort.cpp.o"
  "CMakeFiles/bench_ablation_sort.dir/bench_ablation_sort.cpp.o.d"
  "bench_ablation_sort"
  "bench_ablation_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
