# Empty dependencies file for bench_ablation_sort.
# This may be replaced when dependencies are built.
