# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_units[1]_include.cmake")
include("/root/repo/build/tests/test_parallel[1]_include.cmake")
include("/root/repo/build/tests/test_comm[1]_include.cmake")
include("/root/repo/build/tests/test_geometry[1]_include.cmake")
include("/root/repo/build/tests/test_symmetry[1]_include.cmake")
include("/root/repo/build/tests/test_instrument[1]_include.cmake")
include("/root/repo/build/tests/test_histogram[1]_include.cmake")
include("/root/repo/build/tests/test_flux[1]_include.cmake")
include("/root/repo/build/tests/test_events[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_intersections[1]_include.cmake")
include("/root/repo/build/tests/test_raw_conversion[1]_include.cmake")
include("/root/repo/build/tests/test_box_tree[1]_include.cmake")
include("/root/repo/build/tests/test_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_workflow[1]_include.cmake")
include("/root/repo/build/tests/test_stream[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_symmetrize[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_peak_search[1]_include.cmake")
include("/root/repo/build/tests/test_plan[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
