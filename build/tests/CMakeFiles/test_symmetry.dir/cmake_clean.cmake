file(REMOVE_RECURSE
  "CMakeFiles/test_symmetry.dir/test_symmetry.cpp.o"
  "CMakeFiles/test_symmetry.dir/test_symmetry.cpp.o.d"
  "test_symmetry"
  "test_symmetry.pdb"
  "test_symmetry[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_symmetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
