# Empty dependencies file for test_symmetry.
# This may be replaced when dependencies are built.
