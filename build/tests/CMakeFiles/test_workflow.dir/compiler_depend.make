# Empty compiler generated dependencies file for test_workflow.
# This may be replaced when dependencies are built.
