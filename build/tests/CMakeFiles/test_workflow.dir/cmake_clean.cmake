file(REMOVE_RECURSE
  "CMakeFiles/test_workflow.dir/test_workflow.cpp.o"
  "CMakeFiles/test_workflow.dir/test_workflow.cpp.o.d"
  "test_workflow"
  "test_workflow.pdb"
  "test_workflow[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
