file(REMOVE_RECURSE
  "CMakeFiles/test_instrument.dir/test_instrument.cpp.o"
  "CMakeFiles/test_instrument.dir/test_instrument.cpp.o.d"
  "test_instrument"
  "test_instrument.pdb"
  "test_instrument[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_instrument.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
