# Empty dependencies file for test_instrument.
# This may be replaced when dependencies are built.
