# Empty compiler generated dependencies file for test_raw_conversion.
# This may be replaced when dependencies are built.
