file(REMOVE_RECURSE
  "CMakeFiles/test_raw_conversion.dir/test_raw_conversion.cpp.o"
  "CMakeFiles/test_raw_conversion.dir/test_raw_conversion.cpp.o.d"
  "test_raw_conversion"
  "test_raw_conversion.pdb"
  "test_raw_conversion[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_raw_conversion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
