file(REMOVE_RECURSE
  "CMakeFiles/test_intersections.dir/test_intersections.cpp.o"
  "CMakeFiles/test_intersections.dir/test_intersections.cpp.o.d"
  "test_intersections"
  "test_intersections.pdb"
  "test_intersections[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_intersections.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
