# Empty compiler generated dependencies file for test_intersections.
# This may be replaced when dependencies are built.
