# Empty dependencies file for test_peak_search.
# This may be replaced when dependencies are built.
