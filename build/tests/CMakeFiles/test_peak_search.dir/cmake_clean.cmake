file(REMOVE_RECURSE
  "CMakeFiles/test_peak_search.dir/test_peak_search.cpp.o"
  "CMakeFiles/test_peak_search.dir/test_peak_search.cpp.o.d"
  "test_peak_search"
  "test_peak_search.pdb"
  "test_peak_search[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_peak_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
