# Empty dependencies file for test_flux.
# This may be replaced when dependencies are built.
