file(REMOVE_RECURSE
  "CMakeFiles/test_flux.dir/test_flux.cpp.o"
  "CMakeFiles/test_flux.dir/test_flux.cpp.o.d"
  "test_flux"
  "test_flux.pdb"
  "test_flux[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flux.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
