file(REMOVE_RECURSE
  "CMakeFiles/test_box_tree.dir/test_box_tree.cpp.o"
  "CMakeFiles/test_box_tree.dir/test_box_tree.cpp.o.d"
  "test_box_tree"
  "test_box_tree.pdb"
  "test_box_tree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_box_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
