file(REMOVE_RECURSE
  "CMakeFiles/test_symmetrize.dir/test_symmetrize.cpp.o"
  "CMakeFiles/test_symmetrize.dir/test_symmetrize.cpp.o.d"
  "test_symmetrize"
  "test_symmetrize.pdb"
  "test_symmetrize[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_symmetrize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
