# Empty dependencies file for test_symmetrize.
# This may be replaced when dependencies are built.
