# Empty compiler generated dependencies file for raw_tof_reduction.
# This may be replaced when dependencies are built.
