file(REMOVE_RECURSE
  "CMakeFiles/raw_tof_reduction.dir/raw_tof_reduction.cpp.o"
  "CMakeFiles/raw_tof_reduction.dir/raw_tof_reduction.cpp.o.d"
  "raw_tof_reduction"
  "raw_tof_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raw_tof_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
