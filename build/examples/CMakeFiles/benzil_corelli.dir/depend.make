# Empty dependencies file for benzil_corelli.
# This may be replaced when dependencies are built.
