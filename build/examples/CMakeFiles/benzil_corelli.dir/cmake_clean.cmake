file(REMOVE_RECURSE
  "CMakeFiles/benzil_corelli.dir/benzil_corelli.cpp.o"
  "CMakeFiles/benzil_corelli.dir/benzil_corelli.cpp.o.d"
  "benzil_corelli"
  "benzil_corelli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benzil_corelli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
