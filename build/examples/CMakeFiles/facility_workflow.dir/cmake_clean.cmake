file(REMOVE_RECURSE
  "CMakeFiles/facility_workflow.dir/facility_workflow.cpp.o"
  "CMakeFiles/facility_workflow.dir/facility_workflow.cpp.o.d"
  "facility_workflow"
  "facility_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/facility_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
