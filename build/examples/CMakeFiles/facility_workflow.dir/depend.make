# Empty dependencies file for facility_workflow.
# This may be replaced when dependencies are built.
