file(REMOVE_RECURSE
  "CMakeFiles/streaming_reduction.dir/streaming_reduction.cpp.o"
  "CMakeFiles/streaming_reduction.dir/streaming_reduction.cpp.o.d"
  "streaming_reduction"
  "streaming_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
