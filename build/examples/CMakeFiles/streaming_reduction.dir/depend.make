# Empty dependencies file for streaming_reduction.
# This may be replaced when dependencies are built.
