# Empty compiler generated dependencies file for custom_instrument.
# This may be replaced when dependencies are built.
