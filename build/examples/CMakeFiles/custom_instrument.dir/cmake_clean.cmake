file(REMOVE_RECURSE
  "CMakeFiles/custom_instrument.dir/custom_instrument.cpp.o"
  "CMakeFiles/custom_instrument.dir/custom_instrument.cpp.o.d"
  "custom_instrument"
  "custom_instrument.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_instrument.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
