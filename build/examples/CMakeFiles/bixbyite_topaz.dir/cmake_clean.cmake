file(REMOVE_RECURSE
  "CMakeFiles/bixbyite_topaz.dir/bixbyite_topaz.cpp.o"
  "CMakeFiles/bixbyite_topaz.dir/bixbyite_topaz.cpp.o.d"
  "bixbyite_topaz"
  "bixbyite_topaz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bixbyite_topaz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
