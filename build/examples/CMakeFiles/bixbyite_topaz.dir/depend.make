# Empty dependencies file for bixbyite_topaz.
# This may be replaced when dependencies are built.
