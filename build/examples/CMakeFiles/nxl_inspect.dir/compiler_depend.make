# Empty compiler generated dependencies file for nxl_inspect.
# This may be replaced when dependencies are built.
