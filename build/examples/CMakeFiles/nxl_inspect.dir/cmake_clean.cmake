file(REMOVE_RECURSE
  "CMakeFiles/nxl_inspect.dir/nxl_inspect.cpp.o"
  "CMakeFiles/nxl_inspect.dir/nxl_inspect.cpp.o.d"
  "nxl_inspect"
  "nxl_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nxl_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
