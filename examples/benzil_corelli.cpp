// The paper's Benzil-on-CORELLI use-case (Table II column 1; Tables III
// and IV): 36 runs, 6 symmetry operations, diffuse-scattering-heavy
// signal, ([H,H],[H,-H],[L]) slicing with (603,603,1) bins.
//
//   ./benzil_corelli --scale 0.01 --backend devicesim --ranks 4
//   ./benzil_corelli --use-files          # measure real file I/O
//
// At --scale 1.0 this reproduces the full 40M-event, 372K-detector
// workload (needs tens of GB of RAM and patience on a laptop).

#include "example_common.hpp"

int main(int argc, char** argv) {
  return vates::examples::runUseCase(
      "benzil_corelli",
      "Reduce the Benzil/CORELLI single-crystal diffuse scattering workload",
      &vates::WorkloadSpec::benzilCorelli, argc, argv);
}
