// Near-real-time streaming reduction — the direction the paper's
// conclusions point at ("speeding up these calculations enables broader
// modeling and simulation options (e.g., 3D volumes, real-time)"), and
// the live-analysis capability of ADARA from its related work.
//
// A simulated DAQ thread streams per-pulse raw event packets through a
// bounded channel (backpressure included); a LiveReducer consumes
// them, reducing each run as its end-of-run marker arrives; the main
// thread polls snapshots and prints the beamline-scientist view —
// coverage and intensity evolving while the "experiment" runs.
//
//   ./streaming_reduction --scale 0.001 --backend threads --capacity 64

#include "vates/io/grid_writers.hpp"
#include "vates/stream/daq_simulator.hpp"
#include "vates/stream/event_channel.hpp"
#include "vates/stream/live_reducer.hpp"
#include "vates/support/cli.hpp"

#include <cstdio>
#include <iostream>
#include <thread>

using namespace vates;

int main(int argc, char** argv) {
  ArgParser args("streaming_reduction",
                 "Live DAQ-to-cross-section reduction over a pulse stream");
  args.addOption("scale", "Workload scale", "0.001");
  args.addOption("backend", "Execution backend",
                 backendName(defaultBackend()));
  args.addOption("capacity", "Channel capacity in pulse packets", "64");
  try {
    if (!args.parse(argc, argv)) {
      return 0;
    }

    const ExperimentSetup setup(
        WorkloadSpec::benzilCorelli(args.getDouble("scale")));
    const EventGenerator generator = setup.makeGenerator();
    const Executor executor(parseBackend(args.getString("backend")));

    stream::EventChannel channel(
        static_cast<std::size_t>(args.getInt("capacity")));
    stream::DaqSimulator daq(generator);
    stream::LiveReducer reducer(setup, executor);

    std::printf("Streaming %zu runs (%zu events each) through a "
                "%lld-packet channel...\n\n",
                setup.spec().nFiles, setup.spec().eventsPerFile,
                static_cast<long long>(args.getInt("capacity")));
    std::printf("%-8s %-10s %-12s %-12s %-12s\n", "runs", "pulses",
                "events", "coverage", "max value");

    // Producer: the instrument.  Consumer: the reduction service.
    std::thread producer([&] { daq.streamAllAndClose(channel); });
    std::thread consumer([&] { reducer.consume(channel); });

    // The scientist's terminal: poll snapshots until the campaign ends.
    std::uint64_t lastRuns = 0;
    while (true) {
      const stream::LiveSnapshot snapshot = reducer.snapshot();
      if (snapshot.stats.runsReduced != lastRuns) {
        lastRuns = snapshot.stats.runsReduced;
        const SliceStats stats = computeSliceStats(snapshot.crossSection);
        std::printf("%-8llu %-10llu %-12llu %-11.1f%% %-12.3f\n",
                    static_cast<unsigned long long>(snapshot.stats.runsReduced),
                    static_cast<unsigned long long>(
                        snapshot.stats.pulsesConsumed),
                    static_cast<unsigned long long>(
                        snapshot.stats.eventsConsumed),
                    100.0 * snapshot.coverage, stats.maxValue);
      }
      if (lastRuns == setup.spec().nFiles) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    producer.join();
    consumer.join();

    const stream::ChannelStats channelStats = channel.stats();
    std::printf("\nChannel: %llu packets, max depth %zu, producer blocked "
                "%llu times (backpressure)\n",
                static_cast<unsigned long long>(channelStats.pushed),
                channelStats.maxDepth,
                static_cast<unsigned long long>(channelStats.producerBlocked));

    const stream::LiveSnapshot final = reducer.snapshot();
    writePgmSlice("streaming_cross_section.pgm", final.crossSection);
    std::cout << "Final image: streaming_cross_section.pgm\n";
    return 0;
  } catch (const Error& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
}
