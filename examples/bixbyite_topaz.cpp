// The paper's Bixbyite-on-TOPAZ use-case (Table II column 2; Tables V
// and VI): 22 runs, 24 symmetry operations, 280M events over 1.6M
// detector pixels, ([H],[K],[L]) slicing with (601,601,1) bins.  This
// is the I/O-heavy case — the paper notes "most time is spent loading
// events from disk"; run with --use-files to see that shape here.
//
//   ./bixbyite_topaz --scale 0.001 --backend devicesim
//   ./bixbyite_topaz --scale 0.001 --use-files --ranks 4

#include "example_common.hpp"

int main(int argc, char** argv) {
  return vates::examples::runUseCase(
      "bixbyite_topaz",
      "Reduce the Bixbyite/TOPAZ single-crystal diffraction workload",
      &vates::WorkloadSpec::bixbyiteTopaz, argc, argv);
}
