#pragma once
// Shared driver for the two use-case examples (benzil_corelli and
// bixbyite_topaz): parses the common options, optionally round-trips the
// workload through nxlite run files, reduces on the chosen backend, and
// writes the cross-section slice.

#include "vates/core/hardware_preset.hpp"
#include "vates/core/peak_search.hpp"
#include "vates/core/pipeline.hpp"
#include "vates/core/plan.hpp"
#include "vates/core/report.hpp"
#include "vates/io/grid_writers.hpp"
#include "vates/io/histogram_file.hpp"
#include "vates/support/cli.hpp"
#include "vates/support/strings.hpp"

#include <cstdio>
#include <filesystem>
#include <iostream>

namespace vates::examples {

inline int runUseCase(const std::string& program,
                      const std::string& description,
                      WorkloadSpec (*makeSpec)(double scale), int argc,
                      char** argv) {
  ArgParser args(program, description);
  args.addOption("scale", "Workload scale (1.0 = paper size)", "0.002");
  args.addOption("backend", "serial | openmp | threads | devicesim",
                 backendName(defaultBackend()));
  args.addOption("ranks", "In-process MPI-style ranks over files", "1");
  args.addOption("preset", "Hardware preset (defiant, milan0, bl12, local)",
                 "local");
  args.addOption("outdir", "Directory for CSV/PGM outputs", ".");
  args.addFlag("use-files", "Write nxlite run files first and reduce from "
                            "disk (UpdateEvents measures real I/O)");
  args.addFlag("linear-search", "Use Mantid-style linear plane search "
                                "instead of the ROI strategy");
  args.addOption("plan", "Reduction-plan file overriding workload and "
                         "reduction settings (see plans/)", "");
  args.addFlag("find-peaks", "Run Bragg-peak search on the cross-section");
  args.addFlag("save-reduced", "Write the reduced data (signal, "
                               "normalization, cross-section) as nxlite");
  try {
    if (!args.parse(argc, argv)) {
      return 0;
    }

    WorkloadSpec spec = makeSpec(args.getDouble("scale"));
    core::ReductionConfig config;
    config.backend = parseBackend(args.getString("backend"));
    config.ranks = static_cast<int>(args.getInt("ranks"));
    if (args.getFlag("linear-search")) {
      config.mdnorm.search = PlaneSearch::Linear;
    }
    if (!args.getString("plan").empty()) {
      // Plan files supersede workload and reduction settings; command
      // line flags still win for anything the user typed explicitly.
      const core::ReductionPlan plan =
          core::loadReductionPlan(args.getString("plan"));
      spec = plan.workload;
      const core::ReductionConfig fromPlan = plan.config;
      config = fromPlan;
      if (args.wasProvided("backend")) {
        config.backend = parseBackend(args.getString("backend"));
      }
      if (args.wasProvided("ranks")) {
        config.ranks = static_cast<int>(args.getInt("ranks"));
      }
      std::cout << "Loaded plan " << args.getString("plan") << "\n";
    }

    const core::HardwarePreset preset =
        core::HardwarePreset::byName(args.getString("preset"));
    std::cout << preset.systemsOverview() << '\n'
              << spec.characteristicsTable() << '\n';

    const ExperimentSetup setup(spec);
    std::cout << "Configuration: " << config.summary() << "\n\n";

    const core::ReductionPipeline pipeline(setup, config);
    core::ReductionResult result = [&] {
      if (!args.getFlag("use-files")) {
        return pipeline.run();
      }
      const auto dir =
          std::filesystem::path(args.getString("outdir")) /
          (spec.name + "_runs");
      std::filesystem::create_directories(dir);
      std::cout << "Writing " << spec.nFiles << " run files to " << dir
                << "...\n";
      const auto paths = pipeline.writeRunFiles(dir.string());
      std::uintmax_t bytes = 0;
      for (const auto& path : paths) {
        bytes += std::filesystem::file_size(path);
      }
      std::cout << "Run files total " << humanBytes(bytes) << "\n";
      return pipeline.runFromFiles(paths);
    }();

    core::WctTable table("WCT in seconds (" + spec.name + ")");
    table.addColumn(backendName(config.backend), result);
    std::cout << table.render() << '\n';

    if (config.backend == Backend::DeviceSim) {
      std::printf("Device: %llu launches, %s H2D, %s D2H, %llu JIT "
                  "compilations (%.3f s), max intersections %zu\n",
                  static_cast<unsigned long long>(
                      result.deviceStats.kernelLaunches),
                  humanBytes(result.deviceStats.bytesH2D).c_str(),
                  humanBytes(result.deviceStats.bytesD2H).c_str(),
                  static_cast<unsigned long long>(
                      result.deviceStats.jitCompilations),
                  result.deviceStats.jitSeconds,
                  result.maxIntersectionsEstimate);
    }

    const SliceStats stats = computeSliceStats(result.crossSection);
    std::printf("Cross-section: %zu/%zu bins covered (%.1f%%), max %.3f\n",
                stats.coveredBins, stats.coveredBins + stats.emptyBins,
                100.0 * stats.coverage(), stats.maxValue);

    if (args.getFlag("find-peaks")) {
      core::PeakSearchOptions peakOptions;
      peakOptions.thresholdOverMedian = 15.0;
      const auto peaks = core::findPeaks(result.crossSection, peakOptions);
      std::cout << "\nBragg peaks found: " << peaks.size() << '\n'
                << core::peakTable(peaks) << '\n';
    }

    const auto outdir = std::filesystem::path(args.getString("outdir"));
    std::filesystem::create_directories(outdir);
    const std::string csv = (outdir / (spec.name + "_cross_section.csv")).string();
    const std::string pgm = (outdir / (spec.name + "_cross_section.pgm")).string();
    writeCsvSlice(csv, result.crossSection);
    writePgmSlice(pgm, result.crossSection);
    std::cout << "Wrote " << csv << " and " << pgm << '\n';
    if (args.getFlag("save-reduced")) {
      const std::string reduced =
          (outdir / (spec.name + "_reduced.nxl")).string();
      saveReducedData(reduced, result.signal, result.normalization,
                      result.crossSection);
      std::cout << "Wrote " << reduced << " (loadable with loadReducedData)\n";
    }
    return 0;
  } catch (const Error& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
}

} // namespace vates::examples
