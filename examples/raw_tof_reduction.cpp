// The full acquisition-to-science chain on raw TOF events — stages
// (ii)→(iii) of the paper's Fig. 1 in one process:
//
//   1. synthesize raw DAQ events (detector id, TOF, pulse index) and
//      write NeXus-style event-mode run files (nxlite),
//   2. mask the beam-stop shadow and a fraction of dead pixels,
//   3. load + ConvertToMD with Lorentz correction,
//   4. MDNorm/BinMD with the same mask applied to the normalization,
//   5. divide and export the cross-section.
//
//   ./raw_tof_reduction --scale 0.002 --backend threads --lorentz

#include "vates/core/pipeline.hpp"
#include "vates/core/report.hpp"
#include "vates/geometry/detector_mask.hpp"
#include "vates/io/event_file.hpp"
#include "vates/io/grid_writers.hpp"
#include "vates/kernels/binmd.hpp"
#include "vates/kernels/convert_to_md.hpp"
#include "vates/kernels/mdnorm.hpp"
#include "vates/kernels/transforms.hpp"
#include "vates/support/cli.hpp"
#include "vates/support/strings.hpp"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <iostream>

using namespace vates;

int main(int argc, char** argv) {
  ArgParser args("raw_tof_reduction",
                 "Reduce raw TOF event files with masking and Lorentz "
                 "correction");
  args.addOption("scale", "Workload scale", "0.002");
  args.addOption("backend", "Execution backend",
                 backendName(defaultBackend()));
  args.addOption("beamstop-deg", "Mask pixels below this two-theta", "5.0");
  args.addOption("dead-fraction", "Random dead-pixel fraction", "0.02");
  args.addFlag("lorentz", "Apply the single-crystal Lorentz correction");
  try {
    if (!args.parse(argc, argv)) {
      return 0;
    }

    const ExperimentSetup setup(
        WorkloadSpec::benzilCorelli(args.getDouble("scale")));
    const Executor executor(parseBackend(args.getString("backend")));
    const EventGenerator generator = setup.makeGenerator();
    StageTimes times;

    // -- 1: write raw event-mode run files ------------------------------
    const auto dir = std::filesystem::temp_directory_path() /
                     "vates_raw_tof_example";
    std::filesystem::create_directories(dir);
    std::vector<std::string> paths;
    {
      ScopedStage stage(times, "WriteRawFiles");
      for (std::size_t f = 0; f < setup.spec().nFiles; ++f) {
        const std::string path =
            rawRunFilePath(dir.string(), setup.spec().name, f);
        saveRawRunFile(path, generator.runInfo(f), generator.generateRaw(f));
        paths.push_back(path);
      }
    }
    std::uintmax_t bytes = 0;
    for (const auto& path : paths) {
      bytes += std::filesystem::file_size(path);
    }
    std::printf("Wrote %zu raw run files (%s)\n", paths.size(),
                humanBytes(bytes).c_str());

    // -- 2: detector mask ------------------------------------------------
    DetectorMask mask(setup.instrument().nDetectors());
    const std::size_t beamstopMasked = mask.maskTwoThetaBelow(
        setup.instrument(), args.getDouble("beamstop-deg") * M_PI / 180.0);
    const std::size_t deadMasked =
        mask.maskRandomFraction(args.getDouble("dead-fraction"), 0xdead);
    std::printf("Masked %zu beam-stop + %zu dead pixels of %zu\n",
                beamstopMasked, deadMasked, mask.size());

    // -- 3..4: load, convert, reduce -------------------------------------
    ConvertOptions convert;
    convert.lorentzCorrection = args.getFlag("lorentz");

    Histogram3D signal = setup.makeHistogram();
    Histogram3D normalization = signal.emptyLike();
    std::size_t eventsKept = 0, eventsDropped = 0;

    for (const std::string& path : paths) {
      RawRunFileContent raw;
      {
        ScopedStage stage(times, "UpdateEvents");
        raw = loadRawRunFile(path);
      }
      EventTable events;
      {
        ScopedStage stage(times, "ConvertToMD");
        events = convertToMD(executor, setup.instrument(), &mask, raw.run,
                             raw.events, convert);
        eventsDropped += compactEvents(events);
        eventsKept += events.size();
      }
      {
        ScopedStage stage(times, "MDNorm");
        const auto transforms =
            mdNormTransforms(setup.projection(), setup.lattice(),
                             setup.symmetryMatrices(), raw.run.goniometerR);
        MDNormInputs inputs;
        inputs.transforms = transforms;
        inputs.qLabDirections = setup.instrument().qLabDirections();
        inputs.solidAngles = setup.instrument().solidAngles();
        inputs.flux = setup.flux().view();
        inputs.protonCharge = raw.run.protonCharge;
        inputs.kMin = raw.run.kMin;
        inputs.kMax = raw.run.kMax;
        inputs.detectorMask = mask.flags().data();
        runMDNorm(executor, inputs, normalization.gridView());
      }
      {
        ScopedStage stage(times, "BinMD");
        const auto transforms = binMdTransforms(
            setup.projection(), setup.lattice(), setup.symmetryMatrices());
        BinMDInputs inputs;
        inputs.transforms = transforms;
        inputs.qx = events.column(EventTable::Qx).data();
        inputs.qy = events.column(EventTable::Qy).data();
        inputs.qz = events.column(EventTable::Qz).data();
        inputs.signal = events.column(EventTable::Signal).data();
        inputs.nEvents = events.size();
        runBinMD(executor, inputs, signal.gridView());
      }
    }
    std::filesystem::remove_all(dir);

    std::printf("Events kept %zu, dropped by mask/band %zu\n\n", eventsKept,
                eventsDropped);
    std::cout << times.table("Raw TOF reduction stages") << '\n';

    // -- 5: cross-section -------------------------------------------------
    const Histogram3D crossSection =
        Histogram3D::divide(signal, normalization);
    const SliceStats stats = computeSliceStats(crossSection);
    std::printf("Cross-section: %.1f%% covered, max %.3f\n",
                100.0 * stats.coverage(), stats.maxValue);
    writePgmSlice("raw_tof_cross_section.pgm", crossSection);
    std::cout << "Wrote raw_tof_cross_section.pgm\n";
    return 0;
  } catch (const Error& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
}
