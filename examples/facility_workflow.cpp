// The reduction as an IRI-style facility workflow (paper Fig. 1): the
// campaign expressed as a dependency graph of load / mdnorm / binmd /
// cross-section tasks, executed by a pool of workflow workers, with
// the schedule printed the way a workflow manager's trace would be.
//
// Contrast with benzil_corelli (rank-based decomposition): same
// mathematics, different orchestration — the shape CALVERA/INTERSECT
// style facility services schedule across resources.
//
//   ./facility_workflow --scale 0.001 --workers 4 --raw

#include "vates/core/workflow_reduction.hpp"
#include "vates/io/grid_writers.hpp"
#include "vates/support/cli.hpp"

#include <cstdio>
#include <iostream>

using namespace vates;

int main(int argc, char** argv) {
  ArgParser args("facility_workflow",
                 "Run Algorithm 1 as a scheduled task workflow");
  args.addOption("scale", "Workload scale", "0.001");
  args.addOption("workers", "Concurrent workflow workers", "4");
  args.addFlag("raw", "Source raw TOF events (adds ConvertToMD stages)");
  args.addFlag("trace", "Print the full per-task schedule");
  try {
    if (!args.parse(argc, argv)) {
      return 0;
    }

    const ExperimentSetup setup(
        WorkloadSpec::benzilCorelli(args.getDouble("scale")));
    core::ReductionConfig config;
    config.backend = Backend::Serial; // tasks are serial; workers parallelize
    if (args.getFlag("raw")) {
      config.loadMode = core::LoadMode::RawTof;
    }

    const auto workers = static_cast<unsigned>(args.getInt("workers"));
    std::printf("Scheduling %zu runs as %zu tasks over %u workers...\n\n",
                setup.spec().nFiles, 3 * setup.spec().nFiles + 1, workers);

    const core::WorkflowReductionResult result =
        core::runWorkflowReduction(setup, config, workers);

    if (args.getFlag("trace")) {
      std::cout << result.report.table("Workflow schedule") << '\n';
    } else {
      std::printf("Executed %zu tasks: makespan %.3f s, total work %.3f s, "
                  "task overlap %.2fx\n",
                  result.report.timings.size(), result.report.makespan,
                  result.report.totalWork(), result.report.speedup());
    }

    const SliceStats stats = computeSliceStats(result.crossSection);
    std::printf("Cross-section: %.1f%% covered, max %.3f\n",
                100.0 * stats.coverage(), stats.maxValue);
    writePgmSlice("facility_workflow_cross_section.pgm", result.crossSection);
    std::cout << "Wrote facility_workflow_cross_section.pgm\n";
    return 0;
  } catch (const Error& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
}
