// Command-line utility over nxlite data files — the h5dump/ncdump-style
// companion a data format needs for adoption.
//
//   ./nxl_inspect list    file.nxl            # dataset directory
//   ./nxl_inspect stats   reduced.nxl         # reduced-data summary
//   ./nxl_inspect peaks   reduced.nxl         # Bragg-peak search
//   ./nxl_inspect merge   out.nxl in1.nxl in2.nxl ...   # merge reductions

#include "vates/core/analysis.hpp"
#include "vates/core/peak_search.hpp"
#include "vates/io/grid_writers.hpp"
#include "vates/io/histogram_file.hpp"
#include "vates/io/nxlite.hpp"
#include "vates/support/error.hpp"
#include "vates/support/strings.hpp"

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

using namespace vates;

namespace {

int usage() {
  std::cerr << "usage:\n"
               "  nxl_inspect list   <file.nxl>\n"
               "  nxl_inspect stats  <reduced.nxl>\n"
               "  nxl_inspect peaks  <reduced.nxl> [thresholdOverMedian]\n"
               "  nxl_inspect merge  <out.nxl> <in1.nxl> [in2.nxl ...]\n";
  return 2;
}

int listDatasets(const std::string& path) {
  nx::Reader reader(path);
  std::printf("%s: %zu dataset(s)\n", path.c_str(), reader.datasets().size());
  std::printf("%-28s %-8s %-20s %12s\n", "name", "dtype", "shape", "bytes");
  for (const auto& info : reader.datasets()) {
    std::string shape = "(";
    for (std::size_t d = 0; d < info.shape.size(); ++d) {
      if (d > 0) {
        shape += ",";
      }
      shape += std::to_string(info.shape[d]);
    }
    shape += ")";
    const char* dtype = info.dtype == nx::DType::Float64 ? "f64"
                        : info.dtype == nx::DType::UInt64 ? "u64"
                                                          : "u32";
    std::printf("%-28s %-8s %-20s %12s\n", info.name.c_str(), dtype,
                shape.c_str(), humanBytes(info.bytes()).c_str());
  }
  return 0;
}

int reducedStats(const std::string& path) {
  const ReducedData reduced = loadReducedData(path);
  std::printf("%s\n", path.c_str());
  auto describe = [](const char* name, const Histogram3D& histogram) {
    std::printf("  %-14s %zux%zux%zu bins, total %.6g, %s non-zero\n", name,
                histogram.nx(), histogram.ny(), histogram.nz(),
                histogram.totalSignal(),
                withCommas(histogram.nonZeroBins()).c_str());
  };
  describe("signal", reduced.signal);
  describe("normalization", reduced.normalization);
  const SliceStats stats = computeSliceStats(reduced.crossSection);
  std::printf("  %-14s coverage %.1f%%, max %.6g, mean %.6g\n",
              "cross-section", 100.0 * stats.coverage(), stats.maxValue,
              stats.meanValue);
  return 0;
}

int findPeaksIn(const std::string& path, double threshold) {
  const ReducedData reduced = loadReducedData(path);
  core::PeakSearchOptions options;
  if (threshold > 0.0) {
    options.thresholdOverMedian = threshold;
  }
  const auto peaks = core::findPeaks(reduced.crossSection, options);
  std::printf("%zu peak(s) in %s\n", peaks.size(), path.c_str());
  std::cout << core::peakTable(peaks, 25);
  return 0;
}

int mergeFiles(const std::string& out, const std::vector<std::string>& in) {
  const ReducedData merged = core::mergeReducedFiles(in);
  saveReducedData(out, merged.signal, merged.normalization,
                  merged.crossSection);
  std::printf("merged %zu file(s) into %s (signal total %.6g)\n", in.size(),
              out.c_str(), merged.signal.totalSignal());
  return 0;
}

} // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    return usage();
  }
  const std::string command = argv[1];
  try {
    if (command == "list") {
      return listDatasets(argv[2]);
    }
    if (command == "stats") {
      return reducedStats(argv[2]);
    }
    if (command == "peaks") {
      const double threshold = argc > 3 ? std::stod(argv[3]) : 0.0;
      return findPeaksIn(argv[2], threshold);
    }
    if (command == "merge") {
      if (argc < 4) {
        return usage();
      }
      return mergeFiles(argv[2],
                        std::vector<std::string>(argv + 3, argv + argc));
    }
    return usage();
  } catch (const Error& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
}
