// Quickstart: reduce a small Benzil/CORELLI-style workload end to end
// and print the per-stage wall-clock table.
//
//   ./quickstart [--scale 0.002] [--backend serial|openmp|threads|devicesim]
//
// This is the smallest complete tour of the public API:
//   WorkloadSpec -> ExperimentSetup -> ReductionPipeline -> ReductionResult.

#include "vates/core/pipeline.hpp"
#include "vates/core/report.hpp"
#include "vates/io/grid_writers.hpp"
#include "vates/support/cli.hpp"

#include <cstdio>
#include <iostream>

int main(int argc, char** argv) {
  using namespace vates;
  ArgParser args("quickstart", "Minimal cross-section reduction demo");
  args.addOption("scale", "Workload scale (1.0 = the paper's Benzil size)",
                 "0.002");
  args.addOption("backend", "Execution backend", "serial");
  try {
    if (!args.parse(argc, argv)) {
      return 0;
    }

    // 1. Describe the experiment: Table II's Benzil-on-CORELLI case,
    //    scaled down so this runs in seconds on a laptop.
    const WorkloadSpec spec =
        WorkloadSpec::benzilCorelli(args.getDouble("scale"));
    std::cout << spec.characteristicsTable() << '\n';

    // 2. Realize it: instrument geometry, UB matrix, point group, flux.
    const ExperimentSetup setup(spec);

    // 3. Configure and run Algorithm 1.
    core::ReductionConfig config;
    config.backend = parseBackend(args.getString("backend"));
    const core::ReductionPipeline pipeline(setup, config);
    const core::ReductionResult result = pipeline.run();

    // 4. Inspect the outcome.
    core::WctTable table("Wall-clock times per stage");
    table.addColumn(backendName(config.backend), result);
    std::cout << table.render() << '\n';

    const SliceStats stats = computeSliceStats(result.crossSection);
    std::printf("Cross-section slice: %.1f%% of bins covered, "
                "max %.3f, mean %.3f\n",
                100.0 * stats.coverage(), stats.maxValue, stats.meanValue);

    // 5. Export the slice for plotting (CSV loads directly into numpy).
    writeCsvSlice("quickstart_cross_section.csv", result.crossSection);
    writePgmSlice("quickstart_cross_section.pgm", result.crossSection);
    std::cout << "Wrote quickstart_cross_section.{csv,pgm}\n";
    return 0;
  } catch (const Error& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
}
