// Building a reduction for an instrument and crystal that are NOT one
// of the built-in presets — the extensibility path a facility would use
// for a new beamline (e.g. the Second Target Station instruments the
// paper's introduction motivates).
//
// Demonstrates:
//   - an explicit detector layout (two flat banks, hand-placed),
//   - a custom lattice/orientation and a point group from generators,
//   - a WorkloadSpec assembled field by field,
//   - running the same portable pipeline over it.

#include "vates/core/pipeline.hpp"
#include "vates/core/report.hpp"
#include "vates/geometry/symmetry.hpp"
#include "vates/io/grid_writers.hpp"
#include "vates/kernels/binmd.hpp"
#include "vates/kernels/mdnorm.hpp"
#include "vates/kernels/transforms.hpp"
#include "vates/support/cli.hpp"
#include "vates/units/units.hpp"

#include <cmath>
#include <iostream>

using namespace vates;

namespace {

/// A toy two-bank instrument: one forward bank, one 90-degree bank.
std::vector<V3> twoBankLayout(std::size_t pixelsPerBank) {
  const auto side =
      static_cast<std::size_t>(std::ceil(std::sqrt(double(pixelsPerBank))));
  std::vector<V3> positions;
  const double pitch = 0.004; // 4 mm pixels
  const struct {
    V3 center;
    V3 axisU;
    V3 axisV;
  } banks[] = {
      {{0.0, 0.0, 1.2}, {1, 0, 0}, {0, 1, 0}},  // forward, 1.2 m downstream
      {{0.9, 0.0, 0.0}, {0, 0, 1}, {0, 1, 0}},  // 90 degrees, 0.9 m
  };
  for (const auto& bank : banks) {
    std::size_t placed = 0;
    for (std::size_t r = 0; r < side && placed < pixelsPerBank; ++r) {
      for (std::size_t c = 0; c < side && placed < pixelsPerBank; ++c) {
        const double u = (double(r) + 0.5 - double(side) / 2) * pitch;
        const double v = (double(c) + 0.5 - double(side) / 2) * pitch;
        positions.push_back(bank.center + bank.axisU * u + bank.axisV * v);
        ++placed;
      }
    }
  }
  return positions;
}

} // namespace

int main(int argc, char** argv) {
  ArgParser args("custom_instrument",
                 "Reduction on a hand-built two-bank instrument");
  args.addOption("events", "Events per run", "20000");
  args.addOption("runs", "Number of runs", "8");
  try {
    if (!args.parse(argc, argv)) {
      return 0;
    }

    // A custom orthorhombic crystal, oriented with (0,1,1) along the
    // beam, and a point group built from explicit generators (mm2-like).
    WorkloadSpec spec;
    spec.name = "custom-two-bank";
    spec.latticeA = 5.4;
    spec.latticeB = 7.1;
    spec.latticeC = 9.8;
    spec.uVector = V3{0, 1, 1};
    spec.vVector = V3{1, 0, 0};
    spec.pointGroup = "222";
    spec.instrument = "corelli"; // placeholder; replaced below
    spec.nFiles = static_cast<std::size_t>(args.getInt("runs"));
    spec.eventsPerFile = static_cast<std::size_t>(args.getInt("events"));
    spec.omegaStepDeg = 12.0;
    spec.lambdaMin = 0.8;
    spec.lambdaMax = 3.2;
    spec.bins = {301, 301, 1};
    spec.extentMin = {-6.0, -6.0, -0.25};
    spec.extentMax = {6.0, 6.0, 0.25};
    spec.braggAmplitude = 200.0;
    spec.diffuseBackground = 0.2;

    // Hand-built instrument with exactly the pixel count we want.
    const std::size_t pixelsPerBank = 2048;
    std::vector<V3> layout = twoBankLayout(pixelsPerBank);
    spec.nDetectors = layout.size();
    const Instrument instrument("two-bank-demo", 15.0, std::move(layout),
                                0.004 * 0.004);

    // Assemble the setup manually (the preset path in ExperimentSetup
    // covers corelli/topaz; custom instruments compose the pieces).
    const OrientedLattice lattice(spec.lattice(), spec.uVector, spec.vVector);
    const auto band = units::momentumBandFromWavelengthBand(spec.lambdaMin,
                                                            spec.lambdaMax);
    const FluxSpectrum flux = FluxSpectrum::moderatorMaxwellian(
        band.kMin, band.kMax, 512, 1.6, 1.0);
    const PointGroup group(spec.pointGroup);
    const Projection projection = spec.projection();

    std::cout << "Instrument '" << instrument.name() << "': "
              << instrument.nDetectors() << " pixels in 2 banks\n"
              << "Point group " << group.symbol() << " (order "
              << group.order() << ")\n\n";

    // Reduce run by run with the kernel-level API — the layer beneath
    // ReductionPipeline, useful when the data source is custom too.
    const EventGenerator generator(spec, instrument, lattice, flux);
    Histogram3D signal(BinAxis(projection.axisLabel(0), spec.extentMin[0],
                               spec.extentMax[0], spec.bins[0]),
                       BinAxis(projection.axisLabel(1), spec.extentMin[1],
                               spec.extentMax[1], spec.bins[1]),
                       BinAxis(projection.axisLabel(2), spec.extentMin[2],
                               spec.extentMax[2], spec.bins[2]),
                       projection);
    Histogram3D normalization = signal.emptyLike();
    const Executor executor(defaultBackend());
    const auto symmetry = group.matrices();

    StageTimes times;
    for (std::size_t run = 0; run < spec.nFiles; ++run) {
      const RunInfo info = generator.runInfo(run);
      const EventTable events = generator.generate(run);

      const auto normTransforms = mdNormTransforms(
          projection, lattice, symmetry, info.goniometerR);
      MDNormInputs normInputs;
      normInputs.transforms = normTransforms;
      normInputs.qLabDirections = instrument.qLabDirections();
      normInputs.solidAngles = instrument.solidAngles();
      normInputs.flux = flux.view();
      normInputs.protonCharge = info.protonCharge;
      normInputs.kMin = info.kMin;
      normInputs.kMax = info.kMax;
      {
        ScopedStage stage(times, "MDNorm");
        runMDNorm(executor, normInputs, normalization.gridView());
      }

      const auto binTransforms = binMdTransforms(projection, lattice, symmetry);
      BinMDInputs binInputs;
      binInputs.transforms = binTransforms;
      binInputs.qx = events.column(EventTable::Qx).data();
      binInputs.qy = events.column(EventTable::Qy).data();
      binInputs.qz = events.column(EventTable::Qz).data();
      binInputs.signal = events.column(EventTable::Signal).data();
      binInputs.nEvents = events.size();
      {
        ScopedStage stage(times, "BinMD");
        runBinMD(executor, binInputs, signal.gridView());
      }
    }

    const Histogram3D crossSection = Histogram3D::divide(signal, normalization);
    std::cout << times.table("Kernel times over " +
                             std::to_string(spec.nFiles) + " runs")
              << '\n';
    const SliceStats stats = computeSliceStats(crossSection);
    std::cout << "Coverage " << 100.0 * stats.coverage() << "%, max "
              << stats.maxValue << '\n';
    writePgmSlice("custom_instrument_cross_section.pgm", crossSection);
    std::cout << "Wrote custom_instrument_cross_section.pgm\n";
    return 0;
  } catch (const Error& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
}
