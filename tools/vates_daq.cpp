/// vates_daq — DAQ-simulator producer for the shm ring transport.
///
/// Replays a reduction plan's workload (or a scenario-matrix entry) as
/// per-pulse packets published into a POSIX shared-memory seqlock ring
/// (see DESIGN.md §11), where live consumers — vates_serve's live mode,
/// test readers, the stream bench — pick them up.  This is the
/// process-boundary stand-in for a beamline DAQ front end: start one
/// vates_daq next to as many reader processes as you like.
///
/// Pacing: --rate throttles to N pulses/s; --burst-every/--burst-size
/// periodically release a burst of unpaced pulses on top, the way real
/// accelerator pulse charge fluctuates.  Unset, it streams flat out
/// (the throughput-bench configuration).
///
/// The ring is created fresh by default (any stale segment of the same
/// name is unlinked first, and the segment is unlinked again on clean
/// exit).  --adopt instead attaches to an existing compatible segment,
/// bumps the producer epoch — attached readers observe a producer
/// restart — and leaves the segment in place on exit.
///
/// SIGINT/SIGTERM stop the stream cleanly (publishes stop, the ring is
/// marked Finished) and still print the stats line.  Exit output is a
/// single JSON object on stdout.

#include "vates/core/plan.hpp"
#include "vates/events/experiment_setup.hpp"
#include "vates/scenario/scenario.hpp"
#include "vates/service/wire.hpp"
#include "vates/stream/daq_simulator.hpp"
#include "vates/stream/event_channel.hpp"
#include "vates/support/cli.hpp"
#include "vates/support/error.hpp"
#include "vates/transport/packet_codec.hpp"
#include "vates/transport/shm_ring.hpp"

#include <atomic>
#include <chrono>
#include <csignal>
#include <iostream>
#include <optional>
#include <thread>

namespace {

using namespace vates;

std::atomic<bool> g_stop{false};

void onSignal(int) { g_stop.store(true, std::memory_order_relaxed); }

/// Sleep until \p deadline in slices, keeping the producer heartbeat
/// fresh and honoring the stop flag (slow pulse rates can out-wait a
/// reader's producer-timeout otherwise).
void paceUntil(transport::ShmRingWriter& writer,
               std::chrono::steady_clock::time_point deadline) {
  for (;;) {
    if (g_stop.load(std::memory_order_relaxed)) {
      return;
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      return;
    }
    const auto slice =
        std::min<std::chrono::steady_clock::duration>(
            deadline - now, std::chrono::milliseconds(100));
    std::this_thread::sleep_for(slice);
    writer.heartbeat();
  }
}

} // namespace

int main(int argc, char** argv) {
  ArgParser args("vates_daq",
                 "Stream a workload's pulse packets into a shared-memory "
                 "ring for live consumers");
  args.addOption("plan", "Reduction plan whose workload is replayed", "");
  args.addOption("scenario",
                 "Scenario-matrix index to replay instead of --plan", "-1");
  args.addOption("matrix-seed", "Scenario matrix seed (with --scenario)",
                 std::to_string(scenario::kDefaultMatrixSeed));
  args.addOption("runs", "Replay only the first N runs (0: all)", "0");
  args.addOption("shm", "Ring name (default: VATES_SHM_NAME or /vates-daq)",
                 "");
  args.addOption("frames", "Ring frame count (default: VATES_SHM_FRAMES)",
                 "0");
  args.addOption("frame-bytes",
                 "Frame payload capacity (default: VATES_SHM_FRAME_BYTES)",
                 "0");
  args.addOption("policy",
                 "Backpressure policy: block | drop-oldest (default: "
                 "VATES_SHM_POLICY or block)",
                 "");
  args.addOption("rate", "Pulse rate in pulses/s (0: unthrottled)", "0");
  args.addOption("burst-every",
                 "Release a burst after every N paced pulses (0: never)",
                 "0");
  args.addOption("burst-size", "Unpaced pulses per burst", "16");
  args.addOption("wait-readers",
                 "Wait for N live readers before streaming (0: start at "
                 "once)",
                 "0");
  args.addOption("wait-timeout", "Reader-wait timeout in seconds", "30");
  args.addFlag("adopt",
               "Adopt an existing segment (bumps the epoch; keeps the "
               "segment on exit) instead of creating fresh");
  try {
    if (!args.parse(argc, argv)) {
      return 0;
    }

    // Workload: a plan file or a scenario-matrix entry.
    const std::string planPath = args.getString("plan");
    const std::int64_t scenarioIndex = args.getInt("scenario");
    WorkloadSpec workload;
    std::string workloadName;
    if (!planPath.empty()) {
      workload = core::loadReductionPlan(planPath).workload;
      workloadName = planPath;
    } else if (scenarioIndex >= 0) {
      const scenario::Scenario scn = scenario::makeScenario(
          static_cast<std::size_t>(scenarioIndex),
          static_cast<std::uint64_t>(args.getInt("matrix-seed")));
      workload = scn.workload;
      workloadName = scn.name;
    } else {
      throw InvalidArgument("need --plan or --scenario");
    }

    transport::RingConfig ring =
        transport::RingConfig::withEnvOverrides(transport::RingConfig{});
    if (!args.getString("shm").empty()) {
      ring.name = args.getString("shm");
    }
    if (args.getInt("frames") > 0) {
      ring.frameCount = static_cast<std::size_t>(args.getInt("frames"));
    }
    if (args.getInt("frame-bytes") > 0) {
      ring.framePayloadBytes =
          static_cast<std::size_t>(args.getInt("frame-bytes"));
    }
    if (!args.getString("policy").empty()) {
      ring.policy = transport::parseBackpressurePolicy(args.getString("policy"));
    }
    const bool adopt = args.getFlag("adopt");
    ring.unlinkOnDestroy = !adopt;
    if (!adopt) {
      transport::unlinkRing(ring.name); // stale segment from a crash
    }

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    transport::ShmRingWriter writer(ring);
    const std::size_t maxEvents =
        transport::maxEventsPerFrame(writer.framePayloadCapacity());
    VATES_REQUIRE(maxEvents > 0,
                  "frame payload capacity cannot fit a single event");

    // Let readers register before frame 0 when the launcher asks for a
    // loss-free cold start (the CI smoke relies on this).
    const auto waitReaders =
        static_cast<std::size_t>(std::max<std::int64_t>(
            0, args.getInt("wait-readers")));
    if (waitReaders > 0) {
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(args.getDouble("wait-timeout")));
      while (writer.liveReaders() < waitReaders) {
        if (g_stop.load(std::memory_order_relaxed)) {
          break;
        }
        if (std::chrono::steady_clock::now() >= deadline) {
          throw IOError("timed out waiting for " +
                        std::to_string(waitReaders) + " reader(s) on " +
                        ring.name);
        }
        writer.heartbeat();
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }

    // The DaqSimulator does the run → pulse-packet slicing on its own
    // thread; this thread encodes, paces, and publishes.
    ExperimentSetup setup(workload);
    const EventGenerator generator = setup.makeGenerator();
    const std::size_t totalRuns = generator.spec().nFiles;
    const std::size_t replayRuns =
        args.getInt("runs") > 0
            ? std::min<std::size_t>(
                  static_cast<std::size_t>(args.getInt("runs")), totalRuns)
            : totalRuns;
    stream::EventChannel channel(1024);
    stream::DaqSimulator daq(generator);
    std::thread producer([&] {
      try {
        daq.streamRuns(channel, 0, replayRuns);
      } catch (const Error&) {
        // Channel closed under us by a signal-triggered shutdown.
      }
      channel.close();
    });

    const double rate = args.getDouble("rate");
    const auto pulseInterval =
        rate > 0 ? std::chrono::duration_cast<
                       std::chrono::steady_clock::duration>(
                       std::chrono::duration<double>(1.0 / rate))
                 : std::chrono::steady_clock::duration::zero();
    const std::int64_t burstEvery = args.getInt("burst-every");
    const std::int64_t burstSize = args.getInt("burst-size");

    const auto start = std::chrono::steady_clock::now();
    auto nextPulseAt = start;
    std::uint64_t pacedPulses = 0;
    std::int64_t burstLeft = 0;
    std::uint64_t pulses = 0;
    std::uint64_t events = 0;
    std::uint64_t runs = 0;
    bool stopped = false;
    bool runOpen = false;
    std::uint32_t openRun = 0;
    std::vector<std::uint8_t> frame;

    for (;;) {
      if (g_stop.load(std::memory_order_relaxed)) {
        stopped = true;
        daq.requestStop();
        channel.close();
        break;
      }
      std::optional<stream::PulsePacket> packet = channel.pop();
      if (!packet) {
        break; // closed and drained: workload complete
      }

      if (rate > 0) {
        if (burstLeft > 0) {
          --burstLeft; // inside a burst: no pacing
        } else {
          paceUntil(writer, nextPulseAt);
          nextPulseAt += pulseInterval;
          ++pacedPulses;
          if (burstEvery > 0 &&
              pacedPulses % static_cast<std::uint64_t>(burstEvery) == 0) {
            burstLeft = burstSize;
            // Re-anchor so the burst isn't followed by a catch-up burst.
            nextPulseAt = std::chrono::steady_clock::now() + pulseInterval;
          }
        }
      }

      const bool runStart = !runOpen || packet->runIndex != openRun;
      runOpen = !packet->endOfRun;
      openRun = packet->runIndex;
      if (packet->endOfRun) {
        ++runs;
      }
      ++pulses;
      events += packet->events.size();

      // Split packets that exceed the frame capacity; only the final
      // chunk keeps endOfRun, only the first one carries runStart.
      const std::size_t n = packet->events.size();
      std::size_t begin = 0;
      bool firstChunk = true;
      do {
        const std::size_t end = std::min(n, begin + maxEvents);
        stream::PulsePacket chunk;
        chunk.runIndex = packet->runIndex;
        chunk.pulseIndex = packet->pulseIndex;
        chunk.endOfRun = packet->endOfRun && end == n;
        chunk.events.reserve(end - begin);
        for (std::size_t i = begin; i < end; ++i) {
          chunk.events.append(packet->events.detectorId(i),
                              packet->events.tof(i),
                              packet->events.pulseIndex(i),
                              packet->events.weight(i));
        }
        transport::encodePacket(chunk, runStart && firstChunk, frame);
        if (!writer.publish(frame.data(), frame.size(), &g_stop)) {
          stopped = true;
          break;
        }
        firstChunk = false;
        begin = end;
      } while (begin < n);
      if (stopped) {
        daq.requestStop();
        channel.close();
        break;
      }
    }
    // Unblock and collect the slicing thread even on early exit.
    producer.join();
    writer.finish();

    const double wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    const transport::WriterStats ringStats = writer.stats();
    std::cout << service::JsonObject()
                     .field("event", "daq-finished")
                     .field("workload", workloadName)
                     .field("shm", writer.config().name)
                     .field("frames", std::uint64_t{ring.frameCount})
                     .field("frame_bytes",
                            std::uint64_t{writer.framePayloadCapacity()})
                     .field("policy",
                            std::string(transport::backpressurePolicyName(
                                ring.policy)))
                     .field("adopted", writer.adoptedExistingSegment())
                     .field("runs", runs)
                     .field("pulses", pulses)
                     .field("events", events)
                     .field("frames_published", ringStats.framesPublished)
                     .field("bytes_published", ringStats.bytesPublished)
                     .field("backpressure_waits", ringStats.backpressureWaits)
                     .field("stopped", stopped)
                     .field("wall_s", wallSeconds)
                     .field("events_per_second",
                            wallSeconds > 0
                                ? static_cast<double>(events) / wallSeconds
                                : 0.0)
                     .str()
              << '\n';
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "vates_daq: " << error.what() << '\n';
    return 1;
  }
}
