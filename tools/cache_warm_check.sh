#!/usr/bin/env bash
# Cache warm-run check: the CI leg for the persistent normalization
# cache (DESIGN.md §9).
#
#   tools/cache_warm_check.sh [build-dir] [plan.ini]
#
# Runs the same plan through two *separate* vates_serve processes that
# share one cache directory, then asserts:
#
#   1. the warm (second) run served its normalization from the cache —
#      its journal's terminal event reports cached_normalization=true
#      and its cache-stats event reports hits >= 1;
#   2. the warm run's output histogram file is byte-identical to the
#      cold run's;
#   3. every entry the cold run published survives a full reader-style
#      validation (gen_golden --check-cache: magic, CRCs, version, key).
#
# Exits non-zero, with the offending evidence on stderr, on any failure.

set -euo pipefail

build_dir="${1:-build}"
plan="${2:-examples/plans/benzil_small.ini}"
serve="${build_dir}/tools/vates_serve"
gen_golden="${build_dir}/tools/gen_golden"

for binary in "${serve}" "${gen_golden}"; do
  if [[ ! -x "${binary}" ]]; then
    echo "cache_warm_check: missing binary ${binary} (build first)" >&2
    exit 1
  fi
done
if [[ ! -f "${plan}" ]]; then
  echo "cache_warm_check: missing plan ${plan}" >&2
  exit 1
fi

work="$(mktemp -d "${TMPDIR:-/tmp}/vates-cache-warm.XXXXXX")"
trap 'rm -rf "${work}"' EXIT
cache_dir="${work}/cache"
mkdir -p "${cache_dir}"

# One submit plus a cache-stats query.  submit is asynchronous, so give
# the tiny plan time to finish before the stats op is read; the daemon
# blocks on stdin in between, and drains any straggler on EOF anyway
# (the terminal journal event is always complete).
requests() {
  printf '{"op":"submit","plan":"%s"}\n' "${plan}"
  sleep 2
  printf '{"op":"cache","action":"stats"}\n'
}

run_once() { # <name>
  local name="$1"
  mkdir -p "${work}/${name}-out"
  requests | "${serve}" --input - \
    --output-dir "${work}/${name}-out" \
    --journal "${work}/${name}.journal" \
    --cache-dir "${cache_dir}" --no-batching >/dev/null
}

echo "cold run (publishes cache entries) ..."
run_once cold
echo "warm run (separate process, shared cache dir) ..."
run_once warm

python3 - "${work}/warm.journal" <<'PY'
import json
import sys

path = sys.argv[1]
done = None
stats = None
with open(path) as journal:
    for line in journal:
        line = line.strip()
        if not line:
            continue
        event = json.loads(line)
        if event.get("event") == "done":
            done = event
        if event.get("event") == "cache" and event.get("action") == "stats":
            stats = event

if done is None:
    sys.exit("warm journal has no terminal 'done' event")
status = done.get("status") or {}
if not status.get("cached_normalization"):
    sys.exit(f"warm run did not hit the cache: {done}")
if stats is None:
    sys.exit("warm journal has no cache-stats event")
counters = stats.get("stats") or {}
if int(counters.get("hits", 0)) < 1:
    sys.exit(f"warm run reported no cache hits: {stats}")
print(f"warm run hit the cache: hits={counters['hits']} "
      f"memory_hits={counters.get('memory_hits', 0)} "
      f"entries={counters.get('entries', 0)}")
PY

cold_out="$(find "${work}/cold-out" -name 'job-*.nxl' | sort | head -n 1)"
warm_out="$(find "${work}/warm-out" -name 'job-*.nxl' | sort | head -n 1)"
if [[ -z "${cold_out}" || -z "${warm_out}" ]]; then
  echo "cache_warm_check: missing job output (cold='${cold_out}' warm='${warm_out}')" >&2
  exit 1
fi
if ! cmp "${cold_out}" "${warm_out}"; then
  echo "cache_warm_check: warm output differs from cold output" >&2
  exit 1
fi
echo "cold and warm outputs are byte-identical"

"${gen_golden}" --check-cache "${cache_dir}"

echo "cache warm check passed"
