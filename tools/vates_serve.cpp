/// vates_serve — NDJSON front end for the in-process reduction service.
///
/// Reads one JSON request object per line from a FIFO (or stdin) and
/// appends one JSON event object per line to a journal file, which
/// clients (vates_submit, dashboards, tests) tail.  The daemon is the
/// out-of-process face of ReductionService: a facility deployment runs
/// one of these next to the data, and user-side tooling only ever
/// touches the two files.
///
/// Requests:
///   {"op":"submit","plan":"<plan.ini>","kind":"plan"|"live",
///    "priority":0,"deadline_s":0,"tag":"<client label>"}
///   {"op":"status","id":3}
///   {"op":"cancel","id":3}
///   {"op":"metrics"}
///   {"op":"cache","action":"stats"|"clear"}
///   {"op":"shutdown","drain":true}
///
/// Live ingestion (shm ring transport; see DESIGN.md §11):
///   {"op":"live-attach","plan":"<plan.ini>","name":"beam",
///    "shm":"/vates-daq","attach_timeout_s":10,"start":"oldest"|"head"}
///   {"op":"live-snapshot","name":"beam","tag":"...","output":"p.nxl"}
///   {"op":"live-stop","name":"beam"}
///
/// live-attach spawns the drain + reduce threads and returns at once; a
/// failed attach surfaces as an "error" field on later snapshot/stop
/// events.  live-snapshot runs on its own thread, so any number of
/// clients can snapshot the same stream concurrently while events keep
/// flowing.  live-stop writes the final histograms to
/// <output-dir>/live-<name>.nxl.
///
/// Journal events: "accepted", "rejected", "status", "metrics",
/// "error", "live-attached", "live-snapshot", "live-stopped", and one
/// terminal event per job ("done" / "failed" / "cancelled" /
/// "expired").  Done jobs with --output-dir set also write their
/// histograms to <dir>/job-<id>.nxl.  The metrics event carries one
/// "streams" entry per attached live session (drop / lag / latency).

#include "vates/core/plan.hpp"
#include "vates/io/histogram_file.hpp"
#include "vates/service/live_ingest.hpp"
#include "vates/service/reduction_service.hpp"
#include "vates/service/wire.hpp"
#include "vates/support/cli.hpp"
#include "vates/support/error.hpp"
#include "vates/support/log.hpp"

#include <sys/stat.h>

#include <atomic>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace {

using namespace vates;
using namespace vates::service;

/// Serialized, flushed append of journal lines (waiter threads and the
/// request loop both write).
class Journal {
public:
  explicit Journal(const std::string& path) : out_(path, std::ios::app) {
    if (!out_) {
      throw IOError("cannot open journal file: " + path);
    }
  }

  void write(const std::string& line) {
    std::lock_guard<std::mutex> lock(mutex_);
    out_ << line << '\n';
    out_.flush();
  }

private:
  std::mutex mutex_;
  std::ofstream out_;
};

JsonObject statusJson(const JobStatus& status) {
  JsonObject object;
  object.field("id", std::uint64_t{status.id})
      .field("state", jobStateName(status.state))
      .field("kind", jobKindName(status.kind))
      .field("priority", std::int64_t{status.priority})
      .field("tag", status.tag)
      .field("shared_normalization", status.sharedNormalization)
      .field("cached_normalization", status.cachedNormalization)
      .field("incremental", status.incrementalRun)
      .field("autotuned", status.autotunedConfig)
      .field("queued_s", status.queuedSeconds)
      .field("run_s", status.runSeconds)
      .field("files_completed", std::uint64_t{status.progress.filesCompleted})
      .field("files_total", std::uint64_t{status.progress.filesTotal});
  if (!status.error.empty()) {
    object.field("error", status.error);
  }
  return object;
}

struct ServeState {
  ReductionService* serviceInstance = nullptr;
  Journal* journal = nullptr;
  std::string outputDir;
  std::atomic<bool> stop{false};
  bool stopDrain = true;
  std::mutex waitersMutex;
  std::vector<std::thread> waiters;
  std::mutex liveMutex;
  std::map<std::string, std::shared_ptr<LiveIngestSession>> liveSessions;
};

std::shared_ptr<LiveIngestSession> findLive(ServeState& state,
                                            const std::string& name) {
  std::lock_guard<std::mutex> lock(state.liveMutex);
  const auto it = state.liveSessions.find(name);
  return it == state.liveSessions.end() ? nullptr : it->second;
}

/// Per-job waiter: blocks on the job's terminal state, emits the
/// terminal journal event, and writes the histograms for done jobs.
void watchJob(ServeState& state, std::uint64_t id) {
  const std::shared_ptr<const JobOutcome> outcome =
      state.serviceInstance->wait(id);
  if (outcome == nullptr) {
    return;
  }
  std::string outputPath;
  if (outcome->status.state == JobState::Done && outcome->result &&
      !state.outputDir.empty()) {
    outputPath =
        state.outputDir + "/job-" + std::to_string(id) + ".nxl";
    try {
      saveReducedData(outputPath, outcome->result->signal,
                      outcome->result->normalization,
                      outcome->result->crossSection);
    } catch (const std::exception& error) {
      outputPath.clear();
      VATES_LOG_WARN("failed to write job output: " << error.what());
    }
  }
  JsonObject full;
  full.field("event", jobStateName(outcome->status.state));
  full.fieldRaw("status", statusJson(outcome->status).str());
  if (!outputPath.empty()) {
    full.field("output", outputPath);
  }
  state.journal->write(full.str());
}

std::string fieldOr(const std::map<std::string, std::string>& fields,
                    const std::string& key, const std::string& fallback) {
  const auto it = fields.find(key);
  return it == fields.end() ? fallback : it->second;
}

void handleSubmit(ServeState& state,
                  const std::map<std::string, std::string>& fields) {
  const std::string planPath = fieldOr(fields, "plan", "");
  const std::string tag = fieldOr(fields, "tag", "");
  try {
    if (planPath.empty()) {
      throw InvalidArgument("submit requires a \"plan\" path");
    }
    JobRequest request;
    request.plan = core::loadReductionPlan(planPath);
    const std::string kind = fieldOr(fields, "kind", "plan");
    if (kind == "live") {
      request.kind = JobKind::Live;
    } else if (kind != "plan") {
      throw InvalidArgument("unknown job kind: " + kind);
    }
    request.priority = std::stoi(fieldOr(fields, "priority", "0"));
    request.deadlineSeconds = std::stod(fieldOr(fields, "deadline_s", "0"));
    request.tag = tag;

    const SubmitReceipt receipt =
        state.serviceInstance->submit(std::move(request));
    if (receipt.accepted) {
      state.journal->write(JsonObject()
                               .field("event", "accepted")
                               .field("id", receipt.id)
                               .field("tag", tag)
                               .str());
      std::lock_guard<std::mutex> lock(state.waitersMutex);
      state.waiters.emplace_back(
          [&state, id = receipt.id] { watchJob(state, id); });
    } else {
      state.journal->write(JsonObject()
                               .field("event", "rejected")
                               .field("tag", tag)
                               .field("reason", receipt.reason)
                               .str());
    }
  } catch (const std::exception& error) {
    state.journal->write(JsonObject()
                             .field("event", "rejected")
                             .field("tag", tag)
                             .field("reason", std::string("invalid: ") +
                                                  error.what())
                             .str());
  }
}

JsonObject liveStatsJson(const std::string& name,
                         const stream::LiveSnapshot& snapshot,
                         const std::string& error) {
  JsonObject object;
  object.field("name", name)
      .field("runs_reduced", snapshot.stats.runsReduced)
      .field("runs_dropped", snapshot.stats.runsDropped)
      .field("pulses_consumed", snapshot.stats.pulsesConsumed)
      .field("events_consumed", snapshot.stats.eventsConsumed)
      .field("coverage", snapshot.coverage);
  if (!error.empty()) {
    object.field("error", error);
  }
  return object;
}

void handleLiveAttach(ServeState& state,
                      const std::map<std::string, std::string>& fields) {
  const std::string name = fieldOr(fields, "name", "live");
  try {
    const std::string planPath = fieldOr(fields, "plan", "");
    if (planPath.empty()) {
      throw InvalidArgument("live-attach requires a \"plan\" path");
    }
    const core::ReductionPlan plan = core::loadReductionPlan(planPath);
    LiveIngestOptions options;
    options.source.reader =
        transport::ReaderConfig::withEnvOverrides(transport::ReaderConfig{});
    options.source.reader.attachTimeoutSeconds =
        std::stod(fieldOr(fields, "attach_timeout_s", "10"));
    const std::string shm = fieldOr(fields, "shm", "");
    if (!shm.empty()) {
      options.source.reader.name = shm;
    }
    const std::string start = fieldOr(fields, "start", "oldest");
    if (start == "head") {
      options.source.reader.startFrom = transport::StartFrom::Head;
    } else if (start != "oldest") {
      throw InvalidArgument("unknown start position: " + start);
    }
    std::shared_ptr<LiveIngestSession> session;
    {
      std::lock_guard<std::mutex> lock(state.liveMutex);
      if (state.liveSessions.count(name) != 0) {
        throw InvalidArgument("live session \"" + name +
                              "\" is already attached");
      }
      session =
          std::make_shared<LiveIngestSession>(name, plan, options);
      state.liveSessions.emplace(name, session);
    }
    state.journal->write(JsonObject()
                             .field("event", "live-attached")
                             .field("name", name)
                             .field("shm", session->shmName())
                             .field("plan", planPath)
                             .str());
  } catch (const std::exception& error) {
    state.journal->write(JsonObject()
                             .field("event", "error")
                             .field("name", name)
                             .field("detail", error.what())
                             .str());
  }
}

void handleLiveSnapshot(ServeState& state,
                        const std::map<std::string, std::string>& fields) {
  const std::string name = fieldOr(fields, "name", "live");
  const std::string tag = fieldOr(fields, "tag", "");
  const std::string outputPath = fieldOr(fields, "output", "");
  const std::shared_ptr<LiveIngestSession> session = findLive(state, name);
  if (session == nullptr) {
    state.journal->write(JsonObject()
                             .field("event", "error")
                             .field("detail",
                                    "unknown live session: " + name)
                             .str());
    return;
  }
  // Snapshots run on their own thread: several clients can inspect the
  // same stream concurrently while ingestion continues.
  std::lock_guard<std::mutex> lock(state.waitersMutex);
  state.waiters.emplace_back([&state, session, name, tag, outputPath] {
    const stream::LiveSnapshot snapshot = session->snapshot();
    JsonObject event;
    event.field("event", "live-snapshot");
    if (!tag.empty()) {
      event.field("tag", tag);
    }
    event.fieldRaw("live",
                   liveStatsJson(name, snapshot, session->error()).str());
    if (!outputPath.empty()) {
      try {
        saveReducedData(outputPath, snapshot.signal, snapshot.normalization,
                        snapshot.crossSection);
        event.field("output", outputPath);
      } catch (const std::exception& error) {
        event.field("output_error", error.what());
      }
    }
    state.journal->write(event.str());
  });
}

void handleLiveStop(ServeState& state,
                    const std::map<std::string, std::string>& fields) {
  const std::string name = fieldOr(fields, "name", "live");
  std::shared_ptr<LiveIngestSession> session;
  {
    std::lock_guard<std::mutex> lock(state.liveMutex);
    const auto it = state.liveSessions.find(name);
    if (it != state.liveSessions.end()) {
      session = it->second;
      state.liveSessions.erase(it);
    }
  }
  if (session == nullptr) {
    state.journal->write(JsonObject()
                             .field("event", "error")
                             .field("detail",
                                    "unknown live session: " + name)
                             .str());
    return;
  }
  std::lock_guard<std::mutex> lock(state.waitersMutex);
  state.waiters.emplace_back([&state, session, name] {
    const stream::LiveSnapshot final = session->stop();
    JsonObject event;
    event.field("event", "live-stopped");
    event.fieldRaw("live",
                   liveStatsJson(name, final, session->error()).str());
    if (!state.outputDir.empty()) {
      const std::string outputPath =
          state.outputDir + "/live-" + name + ".nxl";
      try {
        saveReducedData(outputPath, final.signal, final.normalization,
                        final.crossSection);
        event.field("output", outputPath);
      } catch (const std::exception& error) {
        event.field("output_error", error.what());
      }
    }
    state.journal->write(event.str());
  });
}

void handleLine(ServeState& state, const std::string& line) {
  std::map<std::string, std::string> fields;
  try {
    fields = parseFlatObject(line);
  } catch (const std::exception& error) {
    state.journal->write(JsonObject()
                             .field("event", "error")
                             .field("detail", error.what())
                             .str());
    return;
  }
  const std::string op = fieldOr(fields, "op", "");
  try {
    if (op == "submit") {
      handleSubmit(state, fields);
    } else if (op == "live-attach") {
      handleLiveAttach(state, fields);
    } else if (op == "live-snapshot") {
      handleLiveSnapshot(state, fields);
    } else if (op == "live-stop") {
      handleLiveStop(state, fields);
    } else if (op == "status") {
      const auto id =
          static_cast<std::uint64_t>(std::stoull(fieldOr(fields, "id", "0")));
      const auto status = state.serviceInstance->status(id);
      if (status) {
        JsonObject event;
        event.field("event", "status");
        event.fieldRaw("status", statusJson(*status).str());
        state.journal->write(event.str());
      } else {
        state.journal->write(JsonObject()
                                 .field("event", "error")
                                 .field("detail", "unknown job id " +
                                                      std::to_string(id))
                                 .str());
      }
    } else if (op == "cancel") {
      const auto id =
          static_cast<std::uint64_t>(std::stoull(fieldOr(fields, "id", "0")));
      const bool requested = state.serviceInstance->cancel(id);
      state.journal->write(JsonObject()
                               .field("event", "cancel")
                               .field("id", id)
                               .field("requested", requested)
                               .str());
    } else if (op == "metrics") {
      ServiceMetrics metrics = state.serviceInstance->metrics();
      {
        std::lock_guard<std::mutex> lock(state.liveMutex);
        for (const auto& [sessionName, session] : state.liveSessions) {
          metrics.streams.push_back(session->streamMetrics());
        }
      }
      JsonObject event;
      event.field("event", "metrics");
      event.fieldRaw("metrics", metrics.toJson());
      state.journal->write(event.str());
    } else if (op == "cache") {
      const std::string action = fieldOr(fields, "action", "stats");
      JsonObject event;
      event.field("event", "cache").field("action", action);
      if (action == "clear") {
        event.field("cleared",
                    std::uint64_t{state.serviceInstance->clearCaches()});
      } else if (action != "stats") {
        state.journal->write(JsonObject()
                                 .field("event", "error")
                                 .field("detail",
                                        "unknown cache action: " + action)
                                 .str());
        return;
      }
      const cache::CacheStats stats = state.serviceInstance->cacheStats();
      event.fieldRaw("stats", JsonObject()
                                  .field("hits", stats.hits)
                                  .field("memory_hits", stats.memoryHits)
                                  .field("misses", stats.misses)
                                  .field("stores", stats.stores)
                                  .field("store_failures", stats.storeFailures)
                                  .field("evictions", stats.evictions)
                                  .field("invalid_entries",
                                         stats.invalidEntries)
                                  .field("bytes", stats.bytes)
                                  .field("entries", stats.entries)
                                  .str());
      state.journal->write(event.str());
    } else if (op == "shutdown") {
      state.stopDrain = fieldOr(fields, "drain", "true") != "false";
      state.stop.store(true);
    } else {
      state.journal->write(JsonObject()
                               .field("event", "error")
                               .field("detail", "unknown op: " + op)
                               .str());
    }
  } catch (const std::exception& error) {
    state.journal->write(JsonObject()
                             .field("event", "error")
                             .field("detail", error.what())
                             .str());
  }
}

bool isFifo(const std::string& path) {
  struct stat info {};
  return ::stat(path.c_str(), &info) == 0 && S_ISFIFO(info.st_mode);
}

} // namespace

int main(int argc, char** argv) {
  ArgParser args("vates_serve",
                 "Reduction-service daemon: NDJSON requests in, journal "
                 "events out");
  args.addOption("input", "Request source: '-' for stdin, or a FIFO/file path",
                 "-");
  args.addOption("journal", "Journal file events are appended to",
                 "vates_serve.journal");
  args.addOption("output-dir",
                 "Directory for done jobs' histograms (empty: don't write)",
                 "");
  args.addOption("workers", "Worker pool size (0: VATES_SERVICE_WORKERS or 2)",
                 "0");
  args.addOption("queue", "Queue capacity (0: VATES_SERVICE_QUEUE or 16)",
                 "0");
  args.addOption("batch", "Max shared-grid batch (0: VATES_SERVICE_BATCH or 8)",
                 "0");
  args.addFlag("no-batching", "Disable shared-grid batching");
  args.addOption("cache-dir",
                 "Persistent normalization-cache directory for plans that "
                 "don't set reduction.cache_dir (empty: no default cache; "
                 "VATES_CACHE_DIR overrides)",
                 "");
  args.addOption("cache-budget",
                 "Cache byte budget for --cache-dir (0: unbounded; "
                 "VATES_CACHE_BUDGET overrides)",
                 std::to_string(std::uint64_t{256} << 20));
  try {
    if (!args.parse(argc, argv)) {
      return 0;
    }

    ServiceOptions options = ServiceOptions::fromEnv();
    if (args.getInt("workers") > 0) {
      options.workers = static_cast<std::size_t>(args.getInt("workers"));
    }
    if (args.getInt("queue") > 0) {
      options.queueCapacity = static_cast<std::size_t>(args.getInt("queue"));
    }
    if (args.getInt("batch") > 0) {
      options.maxBatch = static_cast<std::size_t>(args.getInt("batch"));
    }
    if (args.getFlag("no-batching")) {
      options.batching = false;
    }
    options.defaultCacheDir = args.getString("cache-dir");
    if (args.getInt("cache-budget") >= 0) {
      options.defaultCacheBudgetBytes =
          static_cast<std::uint64_t>(args.getInt("cache-budget"));
    }

    ReductionService serviceInstance(options);
    Journal journal(args.getString("journal"));
    ServeState state;
    state.serviceInstance = &serviceInstance;
    state.journal = &journal;
    state.outputDir = args.getString("output-dir");

    journal.write(JsonObject()
                      .field("event", "serving")
                      .field("workers", std::uint64_t{options.workers})
                      .field("queue", std::uint64_t{options.queueCapacity})
                      .field("batch", std::uint64_t{options.maxBatch})
                      .field("batching", options.batching)
                      .field("cache_dir", options.defaultCacheDir)
                      .str());

    const std::string inputPath = args.getString("input");
    const bool fromStdin = inputPath == "-";
    // A FIFO sees EOF whenever its last writer closes; the daemon
    // reopens and keeps serving.  Regular files and stdin serve once.
    const bool reopenOnEof = !fromStdin && isFifo(inputPath);
    while (!state.stop.load()) {
      std::ifstream fileInput;
      if (!fromStdin) {
        fileInput.open(inputPath);
        if (!fileInput) {
          throw IOError("cannot open input: " + inputPath);
        }
      }
      std::istream& in = fromStdin ? std::cin : fileInput;
      std::string line;
      while (!state.stop.load() && std::getline(in, line)) {
        if (line.find_first_not_of(" \t\r") == std::string::npos) {
          continue;
        }
        handleLine(state, line);
      }
      if (!reopenOnEof) {
        break;
      }
    }

    serviceInstance.shutdown(state.stopDrain);
    {
      // Stop any live sessions still attached (joins their threads).
      std::lock_guard<std::mutex> lock(state.liveMutex);
      for (auto& [sessionName, session] : state.liveSessions) {
        session->stop();
      }
      state.liveSessions.clear();
    }
    {
      std::lock_guard<std::mutex> lock(state.waitersMutex);
      for (std::thread& waiter : state.waiters) {
        if (waiter.joinable()) {
          waiter.join();
        }
      }
    }
    journal.write(JsonObject().field("event", "stopped").str());
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "vates_serve: " << error.what() << '\n';
    return 1;
  }
}
