#!/usr/bin/env bash
# Live ingestion check: the CI leg for the shm ring transport
# (DESIGN.md §11).
#
#   tools/live_ingest_check.sh [build-dir] [plan.ini]
#
# Drives a real two-process live session — vates_daq publishing the
# plan's runs into a shared-memory ring, vates_serve ingesting them in
# live mode — then asserts:
#
#   1. the producer drained the whole campaign (daq-finished reports
#      every run, no stop) and the consumer ingested every frame with
#      zero CRC failures, zero overruns, and zero dropped runs (metrics
#      verb, streams block);
#   2. a mid-session snapshot made progress (runs_reduced >= 1): live
#      clients can watch the state evolve before the beam is done;
#   3. the final live histogram written by live-stop is byte-identical
#      to an offline batch reduction of the same plan in the same serve
#      process — the transported stream loses nothing, bit for bit.
#
# Exits non-zero, with the offending evidence on stderr, on any failure.

set -euo pipefail

build_dir="${1:-build}"
plan="${2:-examples/plans/benzil_small.ini}"
serve="${build_dir}/tools/vates_serve"
daq="${build_dir}/tools/vates_daq"

for binary in "${serve}" "${daq}"; do
  if [[ ! -x "${binary}" ]]; then
    echo "live_ingest_check: missing binary ${binary} (build first)" >&2
    exit 1
  fi
done
if [[ ! -f "${plan}" ]]; then
  echo "live_ingest_check: missing plan ${plan}" >&2
  exit 1
fi
plan="$(cd "$(dirname "${plan}")" && pwd)/$(basename "${plan}")"

work="$(mktemp -d "${TMPDIR:-/tmp}/vates-live-ingest.XXXXXX")"
shm_name="/vates-ci-$$"
cleanup() {
  rm -rf "${work}"
  rm -f "/dev/shm${shm_name}"
}
trap cleanup EXIT

# Producer: waits for the live reader to register before streaming, so
# the ring cannot wrap before the consumer attaches (block policy).
VATES_SHM_NAME="${shm_name}" "${daq}" --plan "${plan}" \
  --policy block --wait-readers 1 --wait-timeout 30 \
  > "${work}/daq.json" 2> "${work}/daq.err" &
daq_pid=$!

# Consumer: attach, snapshot mid-session, read the drop/lag metrics,
# stop (writes live-<name>.nxl), then reduce the same plan offline in
# the same process for the bitwise comparison.
requests() {
  printf '{"op":"live-attach","plan":"%s","name":"ci","attach_timeout_s":15,"shm":"%s"}\n' \
    "${plan}" "${shm_name}"
  sleep 4
  printf '{"op":"live-snapshot","name":"ci","tag":"mid"}\n'
  sleep 2
  printf '{"op":"metrics"}\n'
  printf '{"op":"live-stop","name":"ci"}\n'
  sleep 2
  printf '{"op":"submit","plan":"%s","tag":"offline"}\n' "${plan}"
  sleep 15
}
requests | "${serve}" --input - \
  --output-dir "${work}" \
  --journal "${work}/serve.journal" \
  --no-batching >/dev/null

if ! wait "${daq_pid}"; then
  echo "live_ingest_check: vates_daq failed:" >&2
  cat "${work}/daq.err" >&2
  exit 1
fi

python3 - "${work}/daq.json" "${work}/serve.journal" <<'PY'
import json
import sys

daq_path, journal_path = sys.argv[1], sys.argv[2]

with open(daq_path) as f:
    daq = json.loads(f.read().strip())
if daq.get("event") != "daq-finished":
    sys.exit(f"daq did not finish cleanly: {daq}")
if daq.get("stopped"):
    sys.exit(f"daq was cut short: {daq}")
if int(daq.get("events", 0)) < 1:
    sys.exit(f"daq streamed no events: {daq}")

attached = snapshot = metrics = stopped = done = None
with open(journal_path) as journal:
    for line in journal:
        line = line.strip()
        if not line:
            continue
        event = json.loads(line)
        kind = event.get("event")
        if kind == "live-attached":
            attached = event
        elif kind == "live-snapshot" and snapshot is None:
            snapshot = event
        elif kind == "metrics":
            metrics = event
        elif kind == "live-stopped":
            stopped = event
        elif kind == "done":
            done = event
        elif kind == "error":
            sys.exit(f"serve journal has an error event: {event}")

if attached is None:
    sys.exit("journal has no live-attached event")
if snapshot is None:
    sys.exit("journal has no live-snapshot event")
live = snapshot.get("live") or {}
if live.get("error"):
    sys.exit(f"live session errored: {live}")
if int(live.get("runs_reduced", 0)) < 1:
    sys.exit(f"mid-session snapshot shows no progress: {live}")
print(f"mid-session snapshot: runs_reduced={live['runs_reduced']} "
      f"coverage={live.get('coverage', 0):.3f}")

if metrics is None:
    sys.exit("journal has no metrics event")
streams = (metrics.get("metrics") or {}).get("streams") or []
if not streams:
    sys.exit(f"metrics verb reported no streams block: {metrics}")
stream = streams[0]
if int(stream.get("frames_ingested", 0)) < 1:
    sys.exit(f"stream ingested no frames: {stream}")
for counter in ("crc_failures", "overruns", "frames_dropped", "runs_dropped"):
    if int(stream.get(counter, 0)) != 0:
        sys.exit(f"stream lost data ({counter}={stream[counter]}): {stream}")
latency = stream.get("ingest_latency") or {}
print(f"stream metrics: frames_ingested={stream['frames_ingested']} "
      f"max_lag_frames={stream.get('max_lag_frames', 0)} "
      f"latency_p50={latency.get('p50_s', 0):.6f}s")

if stopped is None:
    sys.exit("journal has no live-stopped event")
final = stopped.get("live") or {}
if int(final.get("runs_dropped", 1)) != 0:
    sys.exit(f"final live state dropped runs: {final}")
if done is None:
    sys.exit("journal has no terminal done event for the offline job")
print(f"final live state: runs_reduced={final.get('runs_reduced')} "
      f"events_consumed={final.get('events_consumed')}")
PY

live_out="${work}/live-ci.nxl"
offline_out="$(find "${work}" -name 'job-*.nxl' | sort | head -n 1)"
if [[ ! -f "${live_out}" || -z "${offline_out}" ]]; then
  echo "live_ingest_check: missing output (live='${live_out}' offline='${offline_out}')" >&2
  exit 1
fi
if ! cmp "${live_out}" "${offline_out}"; then
  echo "live_ingest_check: live histogram differs from offline reduction" >&2
  exit 1
fi
echo "live and offline outputs are byte-identical"

echo "live ingest check passed"
