/// \file gen_golden.cpp
/// Golden-dataset generator: runs the reference oracle (src/verify/)
/// over the fixed goldenExperiments() roster and writes each result as
/// a CRC-stamped nxlite reduction file under tests/golden/.
///
///   gen_golden [--check] [output-dir]
///
/// Without --check, (re)writes <output-dir>/<name>.nxl for every golden
/// experiment.  With --check, loads each committed golden instead and
/// compares it against a freshly computed oracle, exiting non-zero on
/// any drift — the same comparison the OracleGolden test performs, as a
/// standalone command for CI or for validating a regeneration before
/// committing it.  The default output dir is the source tree's
/// tests/golden (compiled in as VATES_GOLDEN_DIR).

#include "vates/io/histogram_file.hpp"
#include "vates/verify/diff.hpp"
#include "vates/verify/fuzz_inputs.hpp"
#include "vates/verify/reference_oracle.hpp"

#include <cstdio>
#include <filesystem>
#include <string>

namespace {

#ifndef VATES_GOLDEN_DIR
#define VATES_GOLDEN_DIR "tests/golden"
#endif

int generate(const std::filesystem::path& directory) {
  std::filesystem::create_directories(directory);
  for (const vates::verify::FuzzExperiment& experiment :
       vates::verify::goldenExperiments()) {
    const vates::ExperimentSetup setup = vates::verify::makeSetup(experiment);
    const vates::verify::OracleResult oracle =
        vates::verify::referenceReduce(setup);
    const std::filesystem::path path = directory / (experiment.name + ".nxl");
    vates::saveReducedData(path.string(), oracle.signal, oracle.normalization,
                           oracle.crossSection);
    std::printf("wrote %s (%zu bins, %zu events, %zu nonzero norm bins)\n",
                path.string().c_str(), oracle.signal.size(),
                oracle.eventsProcessed, oracle.normalization.nonZeroBins());
  }
  return 0;
}

int check(const std::filesystem::path& directory) {
  // Matches OracleGolden.CommittedGoldensMatchFreshOracle: tight but
  // not bitwise (the flux table uses libm transcendentals).
  const vates::verify::Tolerance tight{1e-10, 8, 1e-12};
  int failures = 0;
  for (const vates::verify::FuzzExperiment& experiment :
       vates::verify::goldenExperiments()) {
    const std::filesystem::path path = directory / (experiment.name + ".nxl");
    if (!std::filesystem::exists(path)) {
      std::fprintf(stderr, "MISSING %s\n", path.string().c_str());
      ++failures;
      continue;
    }
    const vates::ReducedData golden =
        vates::loadReducedData(path.string()); // throws on CRC/format damage
    const vates::ExperimentSetup setup = vates::verify::makeSetup(experiment);
    const vates::verify::OracleResult oracle =
        vates::verify::referenceReduce(setup);
    if (!golden.signal.sameShape(oracle.signal)) {
      std::fprintf(stderr, "SHAPE DRIFT %s\n", experiment.name.c_str());
      ++failures;
      continue;
    }
    const auto compare = [&](const char* name,
                             const vates::Histogram3D& expected,
                             const vates::Histogram3D& actual) {
      const vates::verify::DiffReport report =
          vates::verify::compareHistograms(expected, actual, tight,
                                           experiment.name + " " + name);
      std::printf("%s\n", report.summary().c_str());
      if (!report.pass) {
        ++failures;
      }
    };
    compare("signal", golden.signal, oracle.signal);
    compare("normalization", golden.normalization, oracle.normalization);
    compare("crossSection", golden.crossSection, oracle.crossSection);
  }
  return failures == 0 ? 0 : 1;
}

} // namespace

int main(int argc, char** argv) {
  bool checkMode = false;
  std::filesystem::path directory = VATES_GOLDEN_DIR;
  for (int i = 1; i < argc; ++i) {
    const std::string argument = argv[i];
    if (argument == "--check") {
      checkMode = true;
    } else if (argument == "--help" || argument == "-h") {
      std::printf("usage: gen_golden [--check] [output-dir]\n");
      return 0;
    } else {
      directory = argument;
    }
  }
  try {
    return checkMode ? check(directory) : generate(directory);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "gen_golden: %s\n", error.what());
    return 2;
  }
}
