/// \file gen_golden.cpp
/// Golden-dataset generator: runs the reference oracle (src/verify/)
/// over the fixed goldenExperiments() roster and writes each result as
/// a CRC-stamped nxlite reduction file under tests/golden/.
///
///   gen_golden [--check] [--check-cache <cache-dir>] [output-dir]
///
/// Without --check, (re)writes <output-dir>/<name>.nxl for every golden
/// experiment.  With --check, loads each committed golden instead and
/// compares it against a freshly computed oracle, exiting non-zero on
/// any drift — the same comparison the OracleGolden test performs, as a
/// standalone command for CI or for validating a regeneration before
/// committing it.  The default output dir is the source tree's
/// tests/golden (compiled in as VATES_GOLDEN_DIR).
///
/// With --check-cache <dir>, additionally (or instead) validates every
/// persistent-cache entry (*.nxc) in <dir> the way a cache reader
/// would — magic, per-dataset CRCs, format version, entry kind,
/// embedded key, histogram layout — exiting non-zero on any damaged
/// entry.  CI runs this over the cache directory its warm-run leg
/// populated, so cache-entry format drift is caught the same way
/// golden drift is.

#include "vates/cache/normalization_cache.hpp"
#include "vates/io/histogram_file.hpp"
#include "vates/scenario/scenario.hpp"
#include "vates/verify/diff.hpp"
#include "vates/verify/fuzz_inputs.hpp"
#include "vates/verify/reference_oracle.hpp"

#include <cstdio>
#include <filesystem>
#include <string>

namespace {

#ifndef VATES_GOLDEN_DIR
#define VATES_GOLDEN_DIR "tests/golden"
#endif

/// The golden roster: the verify layer's fixed experiments plus the
/// first two scenarios of the default matrix (cylinder/unmasked and
/// banks/30%-masked), pinned under stable names so the scenario
/// generator's draw order is regression-locked by the committed
/// goldens.  tests/test_scenario.cpp builds the same two entries the
/// same way, so writer and reader can never disagree.
std::vector<vates::verify::FuzzExperiment> goldenRoster() {
  std::vector<vates::verify::FuzzExperiment> roster =
      vates::verify::goldenExperiments();
  for (const std::size_t index : {std::size_t{0}, std::size_t{1}}) {
    const vates::scenario::Scenario scenario =
        vates::scenario::makeScenario(index);
    vates::verify::FuzzExperiment experiment;
    experiment.name = "golden-scenario-" + std::to_string(index);
    experiment.spec = scenario.workload;
    experiment.spec.name = experiment.name;
    experiment.maskFraction = scenario.maskFraction;
    roster.push_back(experiment);
  }
  return roster;
}

int generate(const std::filesystem::path& directory) {
  std::filesystem::create_directories(directory);
  for (const vates::verify::FuzzExperiment& experiment : goldenRoster()) {
    const vates::ExperimentSetup setup = vates::verify::makeSetup(experiment);
    const vates::verify::OracleResult oracle =
        vates::verify::referenceReduce(setup);
    const std::filesystem::path path = directory / (experiment.name + ".nxl");
    vates::saveReducedData(path.string(), oracle.signal, oracle.normalization,
                           oracle.crossSection);
    std::printf("wrote %s (%zu bins, %zu events, %zu nonzero norm bins)\n",
                path.string().c_str(), oracle.signal.size(),
                oracle.eventsProcessed, oracle.normalization.nonZeroBins());
  }
  return 0;
}

int check(const std::filesystem::path& directory) {
  // Matches OracleGolden.CommittedGoldensMatchFreshOracle: tight but
  // not bitwise (the flux table uses libm transcendentals).
  const vates::verify::Tolerance tight{1e-10, 8, 1e-12};
  int failures = 0;
  for (const vates::verify::FuzzExperiment& experiment : goldenRoster()) {
    const std::filesystem::path path = directory / (experiment.name + ".nxl");
    if (!std::filesystem::exists(path)) {
      std::fprintf(stderr, "MISSING %s\n", path.string().c_str());
      ++failures;
      continue;
    }
    const vates::ReducedData golden =
        vates::loadReducedData(path.string()); // throws on CRC/format damage
    const vates::ExperimentSetup setup = vates::verify::makeSetup(experiment);
    const vates::verify::OracleResult oracle =
        vates::verify::referenceReduce(setup);
    if (!golden.signal.sameShape(oracle.signal)) {
      std::fprintf(stderr, "SHAPE DRIFT %s\n", experiment.name.c_str());
      ++failures;
      continue;
    }
    const auto compare = [&](const char* name,
                             const vates::Histogram3D& expected,
                             const vates::Histogram3D& actual) {
      const vates::verify::DiffReport report =
          vates::verify::compareHistograms(expected, actual, tight,
                                           experiment.name + " " + name);
      std::printf("%s\n", report.summary().c_str());
      if (!report.pass) {
        ++failures;
      }
    };
    compare("signal", golden.signal, oracle.signal);
    compare("normalization", golden.normalization, oracle.normalization);
    compare("crossSection", golden.crossSection, oracle.crossSection);
  }
  return failures == 0 ? 0 : 1;
}

int checkCache(const std::filesystem::path& directory) {
  if (!std::filesystem::is_directory(directory)) {
    std::fprintf(stderr, "no such cache directory: %s\n",
                 directory.string().c_str());
    return 1;
  }
  int failures = 0;
  std::size_t entries = 0;
  for (const auto& item : std::filesystem::directory_iterator(directory)) {
    if (!item.is_regular_file() ||
        item.path().extension() != vates::cache::kCacheEntryExtension) {
      continue;
    }
    ++entries;
    std::string reason;
    if (vates::cache::verifyCacheEntry(item.path().string(), &reason)) {
      std::printf("OK   %s\n", item.path().filename().string().c_str());
    } else {
      std::fprintf(stderr, "BAD  %s: %s\n",
                   item.path().filename().string().c_str(), reason.c_str());
      ++failures;
    }
  }
  std::printf("%zu cache entries checked, %d damaged\n", entries, failures);
  return failures == 0 ? 0 : 1;
}

} // namespace

int main(int argc, char** argv) {
  bool checkMode = false;
  std::filesystem::path directory = VATES_GOLDEN_DIR;
  std::filesystem::path cacheDirectory;
  bool cacheMode = false;
  for (int i = 1; i < argc; ++i) {
    const std::string argument = argv[i];
    if (argument == "--check") {
      checkMode = true;
    } else if (argument == "--check-cache") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--check-cache needs a directory\n");
        return 2;
      }
      cacheMode = true;
      cacheDirectory = argv[++i];
    } else if (argument == "--help" || argument == "-h") {
      std::printf(
          "usage: gen_golden [--check] [--check-cache <dir>] [output-dir]\n");
      return 0;
    } else {
      directory = argument;
    }
  }
  try {
    if (cacheMode) {
      const int cacheStatus = checkCache(cacheDirectory);
      if (cacheStatus != 0 || !checkMode) {
        return cacheStatus;
      }
    }
    return checkMode ? check(directory) : generate(directory);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "gen_golden: %s\n", error.what());
    return 2;
  }
}
