/// vates_submit — submit one reduction plan to a running vates_serve
/// daemon and wait for the result.
///
/// Appends a submit request to the daemon's input FIFO, then tails the
/// journal for this submission's events: the "accepted"/"rejected"
/// acknowledgement (matched by a unique tag), then the job's terminal
/// event (matched by id).  Exit code 0 iff the job completed Done.

#include "vates/service/wire.hpp"
#include "vates/support/cli.hpp"
#include "vates/support/error.hpp"

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <thread>

namespace {

using namespace vates;
using namespace vates::service;

std::string fieldOr(const std::map<std::string, std::string>& fields,
                    const std::string& key, const std::string& fallback) {
  const auto it = fields.find(key);
  return it == fields.end() ? fallback : it->second;
}

/// Tail \p path from the current position: deliver each complete new
/// line to \p onLine until it returns true (done) or the deadline
/// passes (returns false).
template <typename OnLine>
bool tailUntil(std::ifstream& journal, double timeoutSeconds, OnLine onLine) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeoutSeconds);
  std::string line;
  while (std::chrono::steady_clock::now() < deadline) {
    if (std::getline(journal, line)) {
      if (!line.empty() && onLine(line)) {
        return true;
      }
      continue;
    }
    // EOF for now — clear the state and poll for appended lines.
    journal.clear();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

} // namespace

int main(int argc, char** argv) {
  ArgParser args("vates_submit",
                 "Submit a reduction plan to a vates_serve daemon and wait");
  args.addOption("plan", "Reduction plan INI file to submit", "plan.ini");
  args.addOption("input", "The daemon's request FIFO/file", "vates_serve.in");
  args.addOption("journal", "The daemon's journal file",
                 "vates_serve.journal");
  args.addOption("kind", "Job kind: plan or live", "plan");
  args.addOption("priority", "Scheduling priority (higher runs first)", "0");
  args.addOption("deadline", "Start-by deadline in seconds (0: none)", "0");
  args.addOption("tag", "Correlation tag (default: generated)", "");
  args.addOption("timeout", "Seconds to wait for the result", "600");
  try {
    if (!args.parse(argc, argv)) {
      return 0;
    }

    std::string tag = args.getString("tag");
    if (tag.empty()) {
      const auto ticks = std::chrono::steady_clock::now().time_since_epoch();
      tag = "submit-" + std::to_string(::getpid()) + "-" +
            std::to_string(std::chrono::duration_cast<std::chrono::nanoseconds>(
                               ticks)
                               .count());
    }

    // Open the journal *before* submitting and seek to its end, so only
    // events newer than this submission are considered.
    std::ifstream journal(args.getString("journal"));
    if (!journal) {
      throw IOError("cannot open journal: " + args.getString("journal"));
    }
    journal.seekg(0, std::ios::end);

    {
      std::ofstream request(args.getString("input"), std::ios::app);
      if (!request) {
        throw IOError("cannot open daemon input: " + args.getString("input"));
      }
      // The daemon resolves the plan (and its relative event_files)
      // from *its* working directory, so send an absolute path — this
      // is what lets the committed example plans submit from any CWD.
      const std::string planPath =
          std::filesystem::absolute(args.getString("plan")).string();
      request << JsonObject()
                     .field("op", "submit")
                     .field("plan", planPath)
                     .field("kind", args.getString("kind"))
                     .field("priority", std::int64_t{args.getInt("priority")})
                     .field("deadline_s", args.getDouble("deadline"))
                     .field("tag", tag)
                     .str()
              << '\n';
      request.flush();
    }

    const double timeout = args.getDouble("timeout");
    std::uint64_t id = 0;
    bool accepted = false;
    std::string rejection;
    if (!tailUntil(journal, timeout, [&](const std::string& line) {
          std::map<std::string, std::string> fields;
          try {
            fields = parseFlatObject(line);
          } catch (const std::exception&) {
            return false; // not a flat event line (nested status) — skip
          }
          if (fieldOr(fields, "tag", "") != tag) {
            return false;
          }
          const std::string event = fieldOr(fields, "event", "");
          if (event == "accepted") {
            accepted = true;
            id = std::stoull(fieldOr(fields, "id", "0"));
            return true;
          }
          if (event == "rejected") {
            rejection = fieldOr(fields, "reason", "unspecified");
            return true;
          }
          return false;
        })) {
      std::cerr << "vates_submit: no acknowledgement within "
                << timeout << "s (is vates_serve running?)\n";
      return 1;
    }
    if (!accepted) {
      std::cerr << "vates_submit: rejected: " << rejection << '\n';
      return 2;
    }
    std::cout << "accepted as job " << id << " (tag " << tag << ")\n";

    // Terminal events embed the status as a nested object, which the
    // flat parser rejects — match them textually by id, then report.
    const std::string idField = "\"id\":" + std::to_string(id) + ",";
    std::string terminalLine;
    if (!tailUntil(journal, timeout, [&](const std::string& line) {
          if (line.find(idField) == std::string::npos) {
            return false;
          }
          for (const char* event :
               {"\"event\":\"done\"", "\"event\":\"failed\"",
                "\"event\":\"cancelled\"", "\"event\":\"expired\""}) {
            if (line.find(event) != std::string::npos) {
              terminalLine = line;
              return true;
            }
          }
          return false;
        })) {
      std::cerr << "vates_submit: job " << id << " did not finish within "
                << timeout << "s\n";
      return 1;
    }
    std::cout << terminalLine << '\n';
    return terminalLine.find("\"event\":\"done\"") != std::string::npos ? 0
                                                                        : 3;
  } catch (const std::exception& error) {
    std::cerr << "vates_submit: " << error.what() << '\n';
    return 1;
  }
}
