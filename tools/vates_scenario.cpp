/// vates_scenario — virtual-experiment scenario workbench.
///
/// Front end for the scenario generator (scenario/scenario.hpp):
///
///   vates_scenario list   [--count 24] [--matrix-seed N]
///   vates_scenario emit   --index 7 --count 1 --out dir/
///                         (default: the whole 24-scenario matrix)
///   vates_scenario verify --manifest dir/<name>_manifest.ini
///   vates_scenario replay --manifest dir/<name>_manifest.ini
///                         [--autotune]
///
/// `emit` writes the raw event files, the reduction plan, and the
/// ground-truth manifest; `verify` re-derives the checksums from the
/// artifacts alone and fails loudly on any drift; `replay` reduces the
/// emitted plan through the pipeline (optionally autotuned) and reports
/// the outcome — the one-command way to reproduce a scenario end to
/// end.

#include "vates/core/autotune.hpp"
#include "vates/core/pipeline.hpp"
#include "vates/core/plan.hpp"
#include "vates/scenario/scenario.hpp"
#include "vates/support/cli.hpp"
#include "vates/support/error.hpp"
#include "vates/support/strings.hpp"

#include <cstdio>
#include <filesystem>
#include <iostream>

namespace {

using namespace vates;
using namespace vates::scenario;

int runList(std::size_t count, std::uint64_t matrixSeed) {
  std::printf("%-5s %-22s %-8s %-6s %-5s %-6s %-7s\n", "index", "name",
              "shape", "mask", "files", "dets", "events");
  for (const Scenario& scenario : scenarioMatrix(count, matrixSeed)) {
    std::printf("%-5zu %-22s %-8s %-6.2f %-5zu %-6zu %-7zu\n",
                scenario.index, scenario.name.c_str(),
                instrumentShapeName(scenario.shape), scenario.maskFraction,
                scenario.workload.nFiles, scenario.workload.nDetectors,
                scenario.workload.totalEvents());
  }
  return 0;
}

int runEmit(std::size_t first, std::size_t count, std::uint64_t matrixSeed,
            const std::string& directory) {
  for (std::size_t index = first; index < first + count; ++index) {
    const Scenario scenario = makeScenario(index, matrixSeed);
    const EmittedScenario emitted = writeScenario(scenario, directory);
    std::cout << scenario.name << ": " << emitted.eventFiles.size()
              << " event file(s), " << emitted.truth.eventCount
              << " events, events_crc=" << emitted.truth.eventsCrc
              << ", plan=" << emitted.planPath << '\n';
  }
  return 0;
}

int runVerify(const std::string& manifestPath) {
  const ScenarioGroundTruth truth = verifyEmittedScenario(manifestPath);
  std::cout << "verified " << manifestPath << ": " << truth.eventCount
            << " events, total_weight=" << strfmt("%.17g", truth.totalWeight)
            << ", events_crc=" << truth.eventsCrc
            << ", plan_crc=" << truth.planCrc << '\n';
  return 0;
}

int runReplay(const std::string& manifestPath, bool autotune) {
  // The manifest names the plan; the plan names the event files — all
  // relative, so replay works from any working directory.
  const IniFile manifest = IniFile::load(manifestPath);
  const std::string planPath =
      (std::filesystem::path(manifestPath).parent_path() /
       manifest.getString("files", "plan"))
          .string();
  core::ReductionPlan plan = core::loadReductionPlan(planPath);

  const ExperimentSetup setup(plan.workload);
  std::string tuned;
  if (autotune) {
    plan.config.autotune.enabled = true;
    const core::AutotuneDecision decision =
        core::autotunePlan(setup, plan.config);
    plan.config = core::lockAutotuneDecision(plan.config, decision);
    tuned = decision.summary();
  }
  const core::ReductionPipeline pipeline(setup, plan.config);
  const core::ReductionResult result =
      pipeline.runFromRawFiles(plan.eventFiles);
  std::cout << "replayed " << plan.workload.name << ": "
            << result.eventsProcessed << " events in "
            << strfmt("%.3f", result.wallSeconds) << " s";
  if (!tuned.empty()) {
    std::cout << " (autotuned: " << tuned << ")";
  }
  std::cout << '\n';
  return 0;
}

} // namespace

int main(int argc, char** argv) {
  ArgParser args("vates_scenario",
                 "Generate, verify, and replay virtual-experiment "
                 "scenarios (modes: list, emit, verify, replay)");
  args.addOption("index", "First scenario index (emit)", "0");
  args.addOption("count", "Scenarios to list/emit", "24");
  args.addOption("matrix-seed", "Scenario matrix seed (0: default)", "0");
  args.addOption("out", "Output directory (emit)", "scenarios");
  args.addOption("manifest", "Manifest path (verify, replay)", "");
  args.addFlag("autotune", "Autotune the execution config (replay)");
  try {
    if (!args.parse(argc, argv)) {
      return 0;
    }
    if (args.positional().size() != 1) {
      throw InvalidArgument(
          "expected exactly one mode: list, emit, verify, or replay");
    }
    const std::string mode = args.positional()[0];
    const std::uint64_t matrixSeed =
        args.getInt("matrix-seed") == 0
            ? vates::scenario::kDefaultMatrixSeed
            : static_cast<std::uint64_t>(args.getInt("matrix-seed"));
    if (mode == "list") {
      return runList(static_cast<std::size_t>(args.getInt("count")),
                     matrixSeed);
    }
    if (mode == "emit") {
      return runEmit(static_cast<std::size_t>(args.getInt("index")),
                     static_cast<std::size_t>(args.getInt("count")),
                     matrixSeed, args.getString("out"));
    }
    if (mode == "verify" || mode == "replay") {
      const std::string manifest = args.getString("manifest");
      if (manifest.empty()) {
        throw InvalidArgument(mode + " requires --manifest");
      }
      return mode == "verify" ? runVerify(manifest)
                              : runReplay(manifest, args.getFlag("autotune"));
    }
    throw InvalidArgument("unknown mode: " + mode);
  } catch (const std::exception& error) {
    std::cerr << "vates_scenario: " << error.what() << '\n';
    return 1;
  }
}
