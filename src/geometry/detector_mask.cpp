#include "vates/geometry/detector_mask.hpp"

#include "vates/support/error.hpp"
#include "vates/support/rng.hpp"

#include <algorithm>

namespace vates {

DetectorMask::DetectorMask(std::size_t nDetectors) : flags_(nDetectors, 0) {
  VATES_REQUIRE(nDetectors >= 1, "mask needs at least one detector");
}

void DetectorMask::mask(std::size_t detector) {
  VATES_REQUIRE(detector < flags_.size(), "detector index out of range");
  flags_[detector] = 1;
}

void DetectorMask::unmask(std::size_t detector) {
  VATES_REQUIRE(detector < flags_.size(), "detector index out of range");
  flags_[detector] = 0;
}

std::size_t DetectorMask::maskedCount() const noexcept {
  return static_cast<std::size_t>(
      std::count(flags_.begin(), flags_.end(), std::uint8_t{1}));
}

std::size_t DetectorMask::maskTwoThetaBelow(const Instrument& instrument,
                                            double minRadians) {
  VATES_REQUIRE(instrument.nDetectors() == flags_.size(),
                "mask size does not match the instrument");
  std::size_t newlyMasked = 0;
  for (std::size_t d = 0; d < flags_.size(); ++d) {
    if (flags_[d] == 0 && instrument.twoTheta(d) < minRadians) {
      flags_[d] = 1;
      ++newlyMasked;
    }
  }
  return newlyMasked;
}

std::size_t DetectorMask::maskRandomFraction(double fraction,
                                             std::uint64_t seed) {
  VATES_REQUIRE(fraction >= 0.0 && fraction <= 1.0,
                "fraction must be in [0, 1]");
  Xoshiro256 rng(seed);
  std::size_t newlyMasked = 0;
  for (auto& flag : flags_) {
    if (flag == 0 && rng.uniform() < fraction) {
      flag = 1;
      ++newlyMasked;
    }
  }
  return newlyMasked;
}

} // namespace vates
