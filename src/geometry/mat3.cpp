#include "vates/geometry/mat3.hpp"

#include "vates/support/error.hpp"

#include <cmath>

namespace vates {

M33 inverse(const M33& matrix) {
  const double det = matrix.determinant();
  // Scale-aware singularity threshold: compare |det| against the cube of
  // the largest row norm.
  double scale = 0.0;
  for (std::size_t r = 0; r < 3; ++r) {
    scale = std::max(scale, matrix.row(r).norm());
  }
  const double floor = 1e-14 * std::max(1.0, scale * scale * scale);
  if (std::fabs(det) < floor) {
    throw NumericalError("matrix is singular (|det| too small to invert)");
  }

  const auto& m = matrix.m;
  M33 adjugate;
  adjugate.m = {
      m[4] * m[8] - m[5] * m[7], m[2] * m[7] - m[1] * m[8],
      m[1] * m[5] - m[2] * m[4], m[5] * m[6] - m[3] * m[8],
      m[0] * m[8] - m[2] * m[6], m[2] * m[3] - m[0] * m[5],
      m[3] * m[7] - m[4] * m[6], m[1] * m[6] - m[0] * m[7],
      m[0] * m[4] - m[1] * m[3],
  };
  return adjugate * (1.0 / det);
}

M33 rotationAboutAxis(const V3& axis, double angleRadians) {
  const V3 n = axis.normalized();
  VATES_REQUIRE(n.norm2() > 0.0, "rotation axis must be non-zero");
  const double c = std::cos(angleRadians);
  const double s = std::sin(angleRadians);
  const double t = 1.0 - c;
  return M33{{
      t * n.x * n.x + c,       t * n.x * n.y - s * n.z, t * n.x * n.z + s * n.y,
      t * n.x * n.y + s * n.z, t * n.y * n.y + c,       t * n.y * n.z - s * n.x,
      t * n.x * n.z - s * n.y, t * n.y * n.z + s * n.x, t * n.z * n.z + c,
  }};
}

} // namespace vates
