#include "vates/geometry/symmetry.hpp"

#include "vates/support/error.hpp"
#include "vates/support/strings.hpp"

#include <cmath>
#include <map>

namespace vates {

namespace {

int axisIndex(char c) {
  switch (c) {
  case 'x': case 'h': return 0;
  case 'y': case 'k': return 1;
  case 'z': case 'l': return 2;
  default:  return -1;
  }
}

char axisLetter(int index) {
  return index == 0 ? 'x' : (index == 1 ? 'y' : 'z');
}

/// Round a near-integer matrix and verify it really was near-integer.
M33 roundToIntegers(const M33& m) {
  M33 out;
  for (std::size_t i = 0; i < 9; ++i) {
    const double rounded = std::round(m.m[i]);
    VATES_REQUIRE(std::fabs(m.m[i] - rounded) < 1e-9,
                  "symmetry matrix entry is not an integer");
    out.m[i] = rounded;
  }
  return out;
}

} // namespace

SymmetryOperation::SymmetryOperation(const M33& matrix)
    : matrix_(roundToIntegers(matrix)) {
  const double det = matrix_.determinant();
  VATES_REQUIRE(std::fabs(std::fabs(det) - 1.0) < 1e-9,
                "symmetry operation must have determinant ±1");
  for (double entry : matrix_.m) {
    VATES_REQUIRE(std::fabs(entry) <= 2.0 + 1e-9,
                  "symmetry matrix entry out of range");
  }
}

SymmetryOperation SymmetryOperation::fromJones(const std::string& jones) {
  const auto components = split(toLower(jones), ',');
  VATES_REQUIRE(components.size() == 3,
                "Jones notation needs exactly three comma-separated terms: '" +
                    jones + "'");
  M33 matrix = M33::zero();
  for (std::size_t row = 0; row < 3; ++row) {
    const std::string term = trim(components[row]);
    VATES_REQUIRE(!term.empty(), "empty component in Jones notation");
    int sign = +1;
    bool sawAxis = false;
    for (char c : term) {
      if (c == ' ') {
        continue;
      }
      if (c == '+') {
        sign = +1;
        continue;
      }
      if (c == '-') {
        sign = -1;
        continue;
      }
      const int axis = axisIndex(c);
      VATES_REQUIRE(axis >= 0, std::string("unexpected character '") + c +
                                   "' in Jones notation '" + jones + "'");
      matrix(row, static_cast<std::size_t>(axis)) += sign;
      sign = +1; // a sign applies to the single following axis letter
      sawAxis = true;
    }
    VATES_REQUIRE(sawAxis, "component without axis letter in '" + jones + "'");
  }
  return SymmetryOperation(matrix);
}

SymmetryOperation
SymmetryOperation::operator*(const SymmetryOperation& other) const {
  return SymmetryOperation(matrix_ * other.matrix_);
}

SymmetryOperation SymmetryOperation::inverse() const {
  return SymmetryOperation(vates::inverse(matrix_));
}

std::string SymmetryOperation::jones() const {
  std::string out;
  for (std::size_t row = 0; row < 3; ++row) {
    if (row > 0) {
      out += ',';
    }
    bool wroteAnything = false;
    for (std::size_t col = 0; col < 3; ++col) {
      const int coefficient = static_cast<int>(std::lround(matrix_(row, col)));
      for (int repeat = 0; repeat < std::abs(coefficient); ++repeat) {
        if (coefficient > 0 && wroteAnything) {
          out += '+';
        }
        if (coefficient < 0) {
          out += '-';
        }
        out += axisLetter(static_cast<int>(col));
        wroteAnything = true;
      }
    }
    if (!wroteAnything) {
      out += '0';
    }
  }
  return out;
}

int SymmetryOperation::handedness() const noexcept {
  return matrix_.determinant() > 0.0 ? +1 : -1;
}

// ---------------------------------------------------------------------------
// PointGroup

namespace {
/// Generator table keyed by Hermann–Mauguin symbol; trigonal/hexagonal
/// groups use the hexagonal axes setting (γ = 120°).
const std::map<std::string, std::vector<const char*>>& generatorTable() {
  static const std::map<std::string, std::vector<const char*>> table = {
      {"1", {}},
      {"-1", {"-x,-y,-z"}},
      {"2", {"-x,y,-z"}},
      {"m", {"x,-y,z"}},
      {"2/m", {"-x,y,-z", "-x,-y,-z"}},
      {"222", {"-x,-y,z", "x,-y,-z"}},
      {"mmm", {"-x,-y,z", "x,-y,-z", "-x,-y,-z"}},
      {"4", {"-y,x,z"}},
      {"-4", {"y,-x,-z"}},
      {"4/m", {"-y,x,z", "-x,-y,-z"}},
      {"422", {"-y,x,z", "x,-y,-z"}},
      {"4mm", {"-y,x,z", "x,-y,z"}},
      {"-42m", {"y,-x,-z", "x,-y,-z"}},
      {"4/mmm", {"-y,x,z", "x,-y,-z", "-x,-y,-z"}},
      {"3", {"-y,x-y,z"}},
      {"-3", {"-y,x-y,z", "-x,-y,-z"}},
      {"32", {"-y,x-y,z", "y,x,-z"}},
      {"-3m", {"-y,x-y,z", "y,x,-z", "-x,-y,-z"}},
      {"6", {"x-y,x,z"}},
      {"-6", {"-x+y,-x,-z"}},
      {"6/m", {"x-y,x,z", "-x,-y,-z"}},
      {"622", {"x-y,x,z", "y,x,-z"}},
      {"6mm", {"x-y,x,z", "y,x,z"}},
      {"-6m2", {"-x+y,-x,-z", "y,x,z"}},
      {"6/mmm", {"x-y,x,z", "y,x,-z", "-x,-y,-z"}},
      {"23", {"z,x,y", "-x,-y,z"}},
      {"m-3", {"z,x,y", "-x,-y,z", "-x,-y,-z"}},
      {"432", {"z,x,y", "-y,x,z"}},
      {"m-3m", {"z,x,y", "-y,x,z", "-x,-y,-z"}},
  };
  return table;
}
} // namespace

PointGroup::PointGroup(const std::string& hermannMauguin) {
  const auto& table = generatorTable();
  const auto it = table.find(trim(hermannMauguin));
  if (it == table.end()) {
    std::string known;
    for (const auto& [symbol, generators] : table) {
      if (!known.empty()) {
        known += ", ";
      }
      known += symbol;
    }
    throw InvalidArgument("unknown point group '" + hermannMauguin +
                          "' (supported: " + known + ")");
  }
  symbol_ = it->first;
  operations_ = {SymmetryOperation()};
  for (const char* jones : it->second) {
    operations_.push_back(SymmetryOperation::fromJones(jones));
  }
  closeUnderMultiplication();
}

PointGroup
PointGroup::fromGenerators(std::string name,
                           const std::vector<SymmetryOperation>& gens) {
  PointGroup group;
  group.symbol_ = std::move(name);
  group.operations_ = {SymmetryOperation()};
  group.operations_.insert(group.operations_.end(), gens.begin(), gens.end());
  group.closeUnderMultiplication();
  return group;
}

void PointGroup::closeUnderMultiplication() {
  constexpr std::size_t kMaxOrder = 192;
  // Deduplicate the seed set first.
  std::vector<SymmetryOperation> unique;
  for (const auto& op : operations_) {
    bool known = false;
    for (const auto& existing : unique) {
      if (existing == op) {
        known = true;
        break;
      }
    }
    if (!known) {
      unique.push_back(op);
    }
  }
  operations_ = std::move(unique);

  bool grew = true;
  while (grew) {
    grew = false;
    const std::size_t current = operations_.size();
    for (std::size_t i = 0; i < current; ++i) {
      for (std::size_t j = 0; j < current; ++j) {
        const SymmetryOperation product = operations_[i] * operations_[j];
        bool known = false;
        for (const auto& existing : operations_) {
          if (existing == product) {
            known = true;
            break;
          }
        }
        if (!known) {
          operations_.push_back(product);
          grew = true;
          VATES_REQUIRE(operations_.size() <= kMaxOrder,
                        "generator set does not close (order > 192)");
        }
      }
    }
  }
}

std::vector<M33> PointGroup::matrices() const {
  std::vector<M33> out;
  out.reserve(operations_.size());
  for (const auto& op : operations_) {
    out.push_back(op.matrix());
  }
  return out;
}

std::vector<V3> PointGroup::equivalents(const V3& hkl) const {
  std::vector<V3> out;
  out.reserve(operations_.size());
  for (const auto& op : operations_) {
    const V3 image = op.apply(hkl);
    bool known = false;
    for (const auto& existing : out) {
      if (maxAbsDiff(existing, image) < 1e-9) {
        known = true;
        break;
      }
    }
    if (!known) {
      out.push_back(image);
    }
  }
  return out;
}

std::vector<std::string> PointGroup::supportedSymbols() {
  std::vector<std::string> symbols;
  for (const auto& [symbol, generators] : generatorTable()) {
    symbols.push_back(symbol);
  }
  return symbols;
}

} // namespace vates
