#pragma once
/// \file instrument.hpp
/// Instrument geometry: the sample-relative positions of every detector
/// pixel, plus derived per-detector quantities the kernels consume.
///
/// Two synthetic geometries stand in for the paper's beamlines:
///  - corelliLike(): a cylindrical detector array (CORELLI's layout) —
///    pixels on a 2.55 m radius cylinder covering roughly -30°..150° of
///    scattering angle and ±0.97 m of height; the paper's Benzil case
///    uses 372K such pixels.
///  - topazLike(): a set of flat square banks on a 0.45 m sphere around
///    the sample (TOPAZ's layout); the Bixbyite case uses 1.6M pixels.
///
/// Storage is struct-of-arrays: the hot kernels read only the
/// per-detector unit "Q-direction" (beam − detector direction) and the
/// solid angle, both exposed as contiguous spans.
///
/// Conventions (Mantid): beam along +Z, Y vertical; elastic scattering,
/// so the momentum transfer of detector d at incident momentum k is
/// Q_lab = k · (beamDir − detDir(d)).

#include "vates/geometry/vec3.hpp"

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace vates {

class Instrument {
public:
  /// Build an explicit instrument.  \p positions are sample-to-pixel
  /// vectors in metres; \p pixelArea is one pixel's sensitive area (m²)
  /// used for solid angles; \p l1 is the source-to-sample distance (m).
  Instrument(std::string name, double l1, std::vector<V3> positions,
             double pixelArea);

  /// CORELLI-style cylindrical array with exactly \p nDetectors pixels.
  static Instrument corelliLike(std::size_t nDetectors);

  /// TOPAZ-style bank array with exactly \p nDetectors pixels.
  static Instrument topazLike(std::size_t nDetectors);

  const std::string& name() const noexcept { return name_; }
  std::size_t nDetectors() const noexcept { return positions_.size(); }
  double l1() const noexcept { return l1_; }

  /// Incident beam direction (unit): +Z.
  static constexpr V3 beamDirection() noexcept { return {0.0, 0.0, 1.0}; }

  const V3& position(std::size_t d) const { return positions_[d]; }
  double l2(std::size_t d) const { return l2_[d]; }
  double twoTheta(std::size_t d) const { return twoTheta_[d]; }

  /// Unit vector from sample toward detector d.
  V3 detectorDirection(std::size_t d) const {
    return positions_[d] / l2_[d];
  }

  /// Q_lab direction factor: Q_lab(k) = k * qLabDirection(d).
  const V3& qLabDirection(std::size_t d) const { return qDirections_[d]; }

  /// Detector solid angle in steradian (pixelArea / L2²).
  double solidAngle(std::size_t d) const { return solidAngles_[d]; }

  /// Total source→sample→detector flight path in metres (for TOF).
  double totalFlightPath(std::size_t d) const { return l1_ + l2_[d]; }

  /// Contiguous views for kernels (length nDetectors()).
  std::span<const V3> qLabDirections() const noexcept { return qDirections_; }
  std::span<const double> solidAngles() const noexcept { return solidAngles_; }
  std::span<const V3> positions() const noexcept { return positions_; }
  std::span<const double> twoThetas() const noexcept { return twoTheta_; }
  std::span<const double> totalFlightPaths() const noexcept {
    return flightPaths_;
  }

private:
  std::string name_;
  double l1_;
  std::vector<V3> positions_;
  std::vector<double> l2_;
  std::vector<double> twoTheta_;
  std::vector<V3> qDirections_;
  std::vector<double> solidAngles_;
  std::vector<double> flightPaths_;
};

} // namespace vates
