#pragma once
/// \file centering.hpp
/// Bravais lattice centering and the systematic absences it imposes.
///
/// Real diffraction data contains no Bragg intensity at systematically
/// absent reflections: Bixbyite's space group Ia-3 is body-centered, so
/// every (h,k,l) with h+k+l odd is extinct.  The synthetic event
/// generator honors these rules so the simulated patterns carry the
/// correct reciprocal-space structure (checkable in Fig. 4 panels).

#include <string>

namespace vates {

enum class Centering : int {
  P = 0, ///< primitive — all reflections allowed
  I = 1, ///< body-centered — h+k+l even
  F = 2, ///< face-centered — h,k,l all even or all odd
  A = 3, ///< A-centered — k+l even
  B = 4, ///< B-centered — h+l even
  C = 5, ///< C-centered — h+k even
  R = 6, ///< rhombohedral (hexagonal axes, obverse) — (-h+k+l) % 3 == 0
};

/// True when reflection (h,k,l) survives the centering's extinction
/// rule.
bool reflectionAllowed(Centering centering, int h, int k, int l) noexcept;

/// Parse "P", "I", "F", "A", "B", "C", "R" (case-insensitive); throws
/// InvalidArgument otherwise.
Centering parseCentering(const std::string& symbol);

/// The one-letter symbol.
const char* centeringSymbol(Centering centering) noexcept;

} // namespace vates
