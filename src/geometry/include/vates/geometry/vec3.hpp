#pragma once
/// \file vec3.hpp
/// 3-vector of doubles.  Trivially copyable (it crosses the simulated
/// device boundary inside event tables and transform arrays), so no
/// constructors beyond aggregate initialization.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <ostream>

namespace vates {

/// Plain 3-vector.  Aggregate; use V3{x, y, z}.
struct V3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr double& operator[](std::size_t i) noexcept {
    return i == 0 ? x : (i == 1 ? y : z);
  }
  constexpr double operator[](std::size_t i) const noexcept {
    return i == 0 ? x : (i == 1 ? y : z);
  }

  constexpr V3 operator+(const V3& o) const noexcept {
    return {x + o.x, y + o.y, z + o.z};
  }
  constexpr V3 operator-(const V3& o) const noexcept {
    return {x - o.x, y - o.y, z - o.z};
  }
  constexpr V3 operator*(double s) const noexcept { return {x * s, y * s, z * s}; }
  constexpr V3 operator/(double s) const noexcept { return {x / s, y / s, z / s}; }
  constexpr V3 operator-() const noexcept { return {-x, -y, -z}; }

  constexpr V3& operator+=(const V3& o) noexcept {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  constexpr V3& operator-=(const V3& o) noexcept {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  constexpr V3& operator*=(double s) noexcept {
    x *= s;
    y *= s;
    z *= s;
    return *this;
  }

  constexpr bool operator==(const V3& o) const noexcept {
    return x == o.x && y == o.y && z == o.z;
  }

  constexpr double dot(const V3& o) const noexcept {
    return x * o.x + y * o.y + z * o.z;
  }
  constexpr V3 cross(const V3& o) const noexcept {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  constexpr double norm2() const noexcept { return dot(*this); }
  double norm() const noexcept { return std::sqrt(norm2()); }

  /// Unit vector in the same direction; {0,0,0} stays {0,0,0}.
  V3 normalized() const noexcept {
    const double n = norm();
    return n > 0.0 ? *this / n : V3{};
  }
};

constexpr V3 operator*(double s, const V3& v) noexcept { return v * s; }

inline std::ostream& operator<<(std::ostream& os, const V3& v) {
  return os << '(' << v.x << ", " << v.y << ", " << v.z << ')';
}

/// Max-norm distance, for approximate comparisons in tests.
inline double maxAbsDiff(const V3& a, const V3& b) noexcept {
  return std::max({std::fabs(a.x - b.x), std::fabs(a.y - b.y),
                   std::fabs(a.z - b.z)});
}

} // namespace vates
