#pragma once
/// \file detector_mask.hpp
/// Detector pixel masking.
///
/// Production reductions never use every pixel: beam-stop shadows, dead
/// tubes and noisy pixels are masked before MDNorm/BinMD run, and the
/// normalization must skip masked pixels so the cross-section stays
/// unbiased.  The mask is a flat byte array (1 = masked) so kernels on
/// any backend can consult it without indirection.

#include "vates/geometry/instrument.hpp"

#include <cstdint>
#include <span>
#include <vector>

namespace vates {

class DetectorMask {
public:
  /// All pixels live.
  explicit DetectorMask(std::size_t nDetectors);

  std::size_t size() const noexcept { return flags_.size(); }

  void mask(std::size_t detector);
  void unmask(std::size_t detector);
  bool isMasked(std::size_t detector) const { return flags_[detector] != 0; }

  /// Number of masked pixels.
  std::size_t maskedCount() const noexcept;

  /// Kernel view: 1 byte per detector, 1 = masked.
  std::span<const std::uint8_t> flags() const noexcept { return flags_; }

  /// Mask every pixel with two-theta below \p minRadians (beam-stop
  /// shadow).  Returns the number of newly masked pixels.
  std::size_t maskTwoThetaBelow(const Instrument& instrument,
                                double minRadians);

  /// Mask a deterministic pseudo-random \p fraction of pixels (dead or
  /// noisy pixels).  Returns the number of newly masked pixels.
  std::size_t maskRandomFraction(double fraction, std::uint64_t seed);

private:
  std::vector<std::uint8_t> flags_;
};

} // namespace vates
