#pragma once
/// \file oriented_lattice.hpp
/// A lattice plus its orientation on the instrument: the UB matrix.
///
/// U is a proper rotation fixing how the crystal sits in the lab frame;
/// Q_sample = 2π · U · B · hkl and hkl = (U·B)⁻¹ · Q_sample / 2π.
/// Following Mantid's setUFromVectors convention, U is constructed so
/// that reciprocal vector \p u points along the beam (+Z) and \p v lies
/// in the horizontal (X–Z) plane on the +X side.

#include "vates/geometry/lattice.hpp"
#include "vates/geometry/mat3.hpp"

namespace vates {

class OrientedLattice {
public:
  /// Identity orientation (U = I).
  explicit OrientedLattice(const Lattice& lattice);

  /// Orientation from two non-collinear HKL vectors (Mantid
  /// SetUB/setUFromVectors semantics; see file comment).  Throws
  /// InvalidArgument when u and v are collinear.
  OrientedLattice(const Lattice& lattice, const V3& uHkl, const V3& vHkl);

  /// Explicit rotation (must be proper: UᵀU = I, det = +1 within 1e-8;
  /// throws InvalidArgument otherwise).
  OrientedLattice(const Lattice& lattice, const M33& u);

  const Lattice& lattice() const noexcept { return lattice_; }
  const M33& U() const noexcept { return u_; }
  const M33& UB() const noexcept { return ub_; }
  const M33& UBinv() const noexcept { return ubInverse_; }

  /// Q_sample (Å⁻¹, includes 2π) of the reflection (h,k,l).
  V3 qSampleFromHkl(const V3& hkl) const;

  /// Miller indices of a Q_sample vector.
  V3 hklFromQSample(const V3& qSample) const;

private:
  Lattice lattice_;
  M33 u_;
  M33 ub_;
  M33 ubInverse_;
};

/// True when \p m is a proper rotation within \p tolerance.
bool isRotation(const M33& m, double tolerance = 1e-8);

} // namespace vates
