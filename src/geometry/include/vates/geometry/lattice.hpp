#pragma once
/// \file lattice.hpp
/// Crystal lattice and the Busing–Levy B matrix.
///
/// Conventions follow Mantid: the B matrix maps Miller indices (H,K,L)
/// into an orthonormal reciprocal frame in units of Å⁻¹ *without* the
/// 2π factor; the momentum transfer is Q_sample = 2π · U · B · hkl.

#include "vates/geometry/mat3.hpp"

namespace vates {

/// A direct-space crystal lattice (lengths in Å, angles in degrees).
class Lattice {
public:
  /// Construct from the six lattice parameters.  Throws InvalidArgument
  /// for non-positive lengths or geometrically impossible angle triples.
  Lattice(double a, double b, double c, double alphaDeg, double betaDeg,
          double gammaDeg);

  /// Cubic convenience (a = b = c, all angles 90°).
  static Lattice cubic(double a);

  /// Hexagonal/trigonal convenience (a = b, γ = 120°).
  static Lattice hexagonal(double a, double c);

  /// Benzil, C₁₄H₁₀O₂ — trigonal P3₁21; parameters per the diffuse
  /// scattering literature the paper's CORELLI use-case is built on.
  static Lattice benzil() { return hexagonal(8.376, 13.700); }

  /// Bixbyite, (Mn,Fe)₂O₃ — cubic Ia-3; the paper's TOPAZ use-case.
  static Lattice bixbyite() { return cubic(9.411); }

  double a() const noexcept { return a_; }
  double b() const noexcept { return b_; }
  double c() const noexcept { return c_; }
  double alphaDeg() const noexcept { return alpha_; }
  double betaDeg() const noexcept { return beta_; }
  double gammaDeg() const noexcept { return gamma_; }

  /// Direct cell volume in Å³.
  double volume() const noexcept { return volume_; }

  /// Reciprocal lattice parameters (Å⁻¹ and degrees).
  double aStar() const noexcept { return aStar_; }
  double bStar() const noexcept { return bStar_; }
  double cStar() const noexcept { return cStar_; }

  /// The Busing–Levy B matrix (no 2π).
  const M33& B() const noexcept { return b_matrix_; }

  /// B⁻¹ (maps the orthonormal reciprocal frame back to HKL).
  const M33& Binv() const noexcept { return b_inverse_; }

  /// d-spacing of reflection (h,k,l) in Å: d = 1 / |B·hkl|.
  double dSpacing(const V3& hkl) const;

  /// |Q| of reflection (h,k,l) in Å⁻¹ (with the 2π): 2π/d.
  double qNorm(const V3& hkl) const;

private:
  double a_, b_, c_, alpha_, beta_, gamma_;
  double volume_;
  double aStar_, bStar_, cStar_;
  M33 b_matrix_;
  M33 b_inverse_;
};

} // namespace vates
