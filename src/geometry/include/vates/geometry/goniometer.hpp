#pragma once
/// \file goniometer.hpp
/// Sample goniometer: the rotation R applied to the crystal for each
/// experiment run.  CORELLI/TOPAZ ensemble measurements rotate the
/// sample between runs (the paper's 36 Benzil / 22 Bixbyite files are
/// one goniometer setting each); Q_lab = 2π · R · U · B · hkl.

#include "vates/geometry/mat3.hpp"

#include <string>
#include <vector>

namespace vates {

/// A stack of named rotations multiplied left-to-right into one R.
class Goniometer {
public:
  /// Identity goniometer (no rotation).
  Goniometer() = default;

  /// Append a rotation of \p angleDeg degrees about \p axis.  Rotations
  /// compose in the order pushed: R = R_first · ... · R_last.
  Goniometer& push(const std::string& name, const V3& axis, double angleDeg);

  /// Vertical-axis (Y) rotation — the omega circle used by CORELLI.
  static Goniometer omega(double angleDeg);

  /// The combined rotation matrix.
  const M33& R() const noexcept { return r_; }

  /// Inverse rotation (transpose, since R is orthogonal).
  M33 Rinv() const noexcept { return r_.transposed(); }

  /// Number of stacked rotations.
  std::size_t depth() const noexcept { return names_.size(); }

  /// Name of the i-th stacked rotation.
  const std::string& name(std::size_t i) const { return names_.at(i); }

private:
  M33 r_ = M33::identity();
  std::vector<std::string> names_;
};

} // namespace vates
