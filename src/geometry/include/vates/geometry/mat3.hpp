#pragma once
/// \file mat3.hpp
/// 3×3 matrix of doubles, row-major.  Trivially copyable so transform
/// tables (one matrix per symmetry operation × goniometer setting) can
/// live in device arrays, as in the paper's Listing 3
/// (`transforms::Array1{SquareMatrix3c}`).

#include "vates/geometry/vec3.hpp"

#include <array>
#include <cmath>
#include <cstddef>
#include <ostream>

namespace vates {

/// Plain row-major 3×3 matrix.  Aggregate; M33{{...}} or helpers below.
struct M33 {
  std::array<double, 9> m{};

  constexpr double& operator()(std::size_t row, std::size_t col) noexcept {
    return m[row * 3 + col];
  }
  constexpr double operator()(std::size_t row, std::size_t col) const noexcept {
    return m[row * 3 + col];
  }

  static constexpr M33 identity() noexcept {
    return M33{{1, 0, 0, 0, 1, 0, 0, 0, 1}};
  }

  static constexpr M33 zero() noexcept { return M33{}; }

  /// Matrix from three row vectors.
  static constexpr M33 fromRows(const V3& r0, const V3& r1,
                                const V3& r2) noexcept {
    return M33{{r0.x, r0.y, r0.z, r1.x, r1.y, r1.z, r2.x, r2.y, r2.z}};
  }

  /// Matrix from three column vectors.
  static constexpr M33 fromColumns(const V3& c0, const V3& c1,
                                   const V3& c2) noexcept {
    return M33{{c0.x, c1.x, c2.x, c0.y, c1.y, c2.y, c0.z, c1.z, c2.z}};
  }

  constexpr V3 row(std::size_t r) const noexcept {
    return {m[r * 3], m[r * 3 + 1], m[r * 3 + 2]};
  }
  constexpr V3 column(std::size_t c) const noexcept {
    return {m[c], m[3 + c], m[6 + c]};
  }

  constexpr M33 operator+(const M33& o) const noexcept {
    M33 out;
    for (std::size_t i = 0; i < 9; ++i) {
      out.m[i] = m[i] + o.m[i];
    }
    return out;
  }

  constexpr M33 operator-(const M33& o) const noexcept {
    M33 out;
    for (std::size_t i = 0; i < 9; ++i) {
      out.m[i] = m[i] - o.m[i];
    }
    return out;
  }

  constexpr M33 operator*(double s) const noexcept {
    M33 out;
    for (std::size_t i = 0; i < 9; ++i) {
      out.m[i] = m[i] * s;
    }
    return out;
  }

  /// Matrix product.
  constexpr M33 operator*(const M33& o) const noexcept {
    M33 out;
    for (std::size_t r = 0; r < 3; ++r) {
      for (std::size_t c = 0; c < 3; ++c) {
        double sum = 0.0;
        for (std::size_t k = 0; k < 3; ++k) {
          sum += (*this)(r, k) * o(k, c);
        }
        out(r, c) = sum;
      }
    }
    return out;
  }

  /// Matrix–vector product.
  constexpr V3 operator*(const V3& v) const noexcept {
    return {m[0] * v.x + m[1] * v.y + m[2] * v.z,
            m[3] * v.x + m[4] * v.y + m[5] * v.z,
            m[6] * v.x + m[7] * v.y + m[8] * v.z};
  }

  constexpr bool operator==(const M33& o) const noexcept { return m == o.m; }

  constexpr M33 transposed() const noexcept {
    return M33{{m[0], m[3], m[6], m[1], m[4], m[7], m[2], m[5], m[8]}};
  }

  constexpr double determinant() const noexcept {
    return m[0] * (m[4] * m[8] - m[5] * m[7]) -
           m[1] * (m[3] * m[8] - m[5] * m[6]) +
           m[2] * (m[3] * m[7] - m[4] * m[6]);
  }

  constexpr double trace() const noexcept { return m[0] + m[4] + m[8]; }
};

/// Inverse via adjugate.  Throws vates::NumericalError when the matrix is
/// singular (|det| below 1e-14 of the matrix scale); declared in
/// mat3_inverse in the .cpp of the geometry library to keep the error
/// path out of the hot header.
M33 inverse(const M33& matrix);

/// Rotation by \p angleRadians about the (normalized) \p axis
/// (Rodrigues' formula).
M33 rotationAboutAxis(const V3& axis, double angleRadians);

inline std::ostream& operator<<(std::ostream& os, const M33& a) {
  os << '[';
  for (std::size_t r = 0; r < 3; ++r) {
    os << a.row(r) << (r < 2 ? ", " : "");
  }
  return os << ']';
}

/// Max-norm distance between matrices, for tests.
inline double maxAbsDiff(const M33& a, const M33& b) noexcept {
  double worst = 0.0;
  for (std::size_t i = 0; i < 9; ++i) {
    worst = std::max(worst, std::fabs(a.m[i] - b.m[i]));
  }
  return worst;
}

} // namespace vates
