#include "vates/geometry/centering.hpp"

#include "vates/support/error.hpp"
#include "vates/support/strings.hpp"

#include <cctype>

namespace vates {

namespace {
constexpr bool isEven(int value) noexcept { return (value & 1) == 0; }
} // namespace

bool reflectionAllowed(Centering centering, int h, int k, int l) noexcept {
  switch (centering) {
  case Centering::P:
    return true;
  case Centering::I:
    return isEven(h + k + l);
  case Centering::F:
    return (isEven(h) && isEven(k) && isEven(l)) ||
           (!isEven(h) && !isEven(k) && !isEven(l));
  case Centering::A:
    return isEven(k + l);
  case Centering::B:
    return isEven(h + l);
  case Centering::C:
    return isEven(h + k);
  case Centering::R: {
    // Obverse setting on hexagonal axes: -h + k + l = 3n.
    const int t = -h + k + l;
    return t % 3 == 0;
  }
  }
  return true;
}

Centering parseCentering(const std::string& symbol) {
  const std::string upper = trim(symbol);
  if (upper.size() == 1) {
    switch (std::toupper(static_cast<unsigned char>(upper[0]))) {
    case 'P': return Centering::P;
    case 'I': return Centering::I;
    case 'F': return Centering::F;
    case 'A': return Centering::A;
    case 'B': return Centering::B;
    case 'C': return Centering::C;
    case 'R': return Centering::R;
    default: break;
    }
  }
  throw InvalidArgument("unknown centering symbol '" + symbol +
                        "' (P, I, F, A, B, C, R)");
}

const char* centeringSymbol(Centering centering) noexcept {
  switch (centering) {
  case Centering::P: return "P";
  case Centering::I: return "I";
  case Centering::F: return "F";
  case Centering::A: return "A";
  case Centering::B: return "B";
  case Centering::C: return "C";
  case Centering::R: return "R";
  }
  return "?";
}

} // namespace vates
