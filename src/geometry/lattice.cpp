#include "vates/geometry/lattice.hpp"

#include "vates/support/error.hpp"
#include "vates/units/units.hpp"

#include <cmath>

namespace vates {

namespace {
constexpr double kDegToRad = M_PI / 180.0;
} // namespace

Lattice::Lattice(double a, double b, double c, double alphaDeg, double betaDeg,
                 double gammaDeg)
    : a_(a), b_(b), c_(c), alpha_(alphaDeg), beta_(betaDeg), gamma_(gammaDeg) {
  VATES_REQUIRE(a > 0.0 && b > 0.0 && c > 0.0, "lattice lengths must be > 0");
  VATES_REQUIRE(alphaDeg > 0.0 && alphaDeg < 180.0 && betaDeg > 0.0 &&
                    betaDeg < 180.0 && gammaDeg > 0.0 && gammaDeg < 180.0,
                "lattice angles must be in (0, 180) degrees");

  const double ca = std::cos(alphaDeg * kDegToRad);
  const double cb = std::cos(betaDeg * kDegToRad);
  const double cg = std::cos(gammaDeg * kDegToRad);
  const double sa = std::sin(alphaDeg * kDegToRad);
  const double sb = std::sin(betaDeg * kDegToRad);
  const double sg = std::sin(gammaDeg * kDegToRad);

  const double volumeArg =
      1.0 - ca * ca - cb * cb - cg * cg + 2.0 * ca * cb * cg;
  VATES_REQUIRE(volumeArg > 0.0,
                "lattice angles do not describe a valid cell (volume <= 0)");
  volume_ = a * b * c * std::sqrt(volumeArg);

  aStar_ = b * c * sa / volume_;
  bStar_ = a * c * sb / volume_;
  cStar_ = a * b * sg / volume_;

  // Reciprocal angles.
  const double caStar = (cb * cg - ca) / (sb * sg);
  const double cbStar = (ca * cg - cb) / (sa * sg);
  const double cgStar = (ca * cb - cg) / (sa * sb);
  const double sbStar = std::sqrt(std::max(0.0, 1.0 - cbStar * cbStar));
  const double sgStar = std::sqrt(std::max(0.0, 1.0 - cgStar * cgStar));
  (void)caStar;

  // Busing–Levy B matrix (Acta Cryst. 22 (1967) 457, eq. 3).
  b_matrix_ = M33{{
      aStar_, bStar_ * cgStar,  cStar_ * cbStar,
      0.0,    bStar_ * sgStar, -cStar_ * sbStar * ca,
      0.0,    0.0,              1.0 / c,
  }};
  b_inverse_ = inverse(b_matrix_);
}

Lattice Lattice::cubic(double a) { return Lattice(a, a, a, 90.0, 90.0, 90.0); }

Lattice Lattice::hexagonal(double a, double c) {
  return Lattice(a, a, c, 90.0, 90.0, 120.0);
}

double Lattice::dSpacing(const V3& hkl) const {
  const double q = (b_matrix_ * hkl).norm();
  if (q <= 0.0) {
    throw InvalidArgument("d-spacing of the (0,0,0) reflection is undefined");
  }
  return 1.0 / q;
}

double Lattice::qNorm(const V3& hkl) const {
  return units::kTwoPi / dSpacing(hkl);
}

} // namespace vates
