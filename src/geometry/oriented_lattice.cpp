#include "vates/geometry/oriented_lattice.hpp"

#include "vates/support/error.hpp"
#include "vates/units/units.hpp"

#include <cmath>

namespace vates {

bool isRotation(const M33& m, double tolerance) {
  const M33 shouldBeIdentity = m * m.transposed();
  if (maxAbsDiff(shouldBeIdentity, M33::identity()) > tolerance) {
    return false;
  }
  return std::fabs(m.determinant() - 1.0) <= tolerance;
}

OrientedLattice::OrientedLattice(const Lattice& lattice)
    : OrientedLattice(lattice, M33::identity()) {}

OrientedLattice::OrientedLattice(const Lattice& lattice, const M33& u)
    : lattice_(lattice), u_(u) {
  VATES_REQUIRE(isRotation(u), "U must be a proper rotation");
  ub_ = u_ * lattice_.B();
  ubInverse_ = inverse(ub_);
}

namespace {
/// Build the rotation taking orthonormal frame (f1,f2,f3) to (t1,t2,t3):
/// R = Σ tᵢ fᵢᵀ.
M33 frameRotation(const V3& f1, const V3& f2, const V3& f3, const V3& t1,
                  const V3& t2, const V3& t3) {
  M33 r = M33::zero();
  const V3 from[3] = {f1, f2, f3};
  const V3 to[3] = {t1, t2, t3};
  for (int basis = 0; basis < 3; ++basis) {
    for (std::size_t row = 0; row < 3; ++row) {
      for (std::size_t col = 0; col < 3; ++col) {
        r(row, col) += to[basis][row] * from[basis][col];
      }
    }
  }
  return r;
}
} // namespace

OrientedLattice::OrientedLattice(const Lattice& lattice, const V3& uHkl,
                                 const V3& vHkl)
    : lattice_(lattice) {
  // Orthonormal frame attached to the crystal's reciprocal directions.
  const V3 bu = lattice.B() * uHkl;
  const V3 bv = lattice.B() * vHkl;
  const V3 f1 = bu.normalized();
  VATES_REQUIRE(f1.norm2() > 0.0, "u must be a non-zero HKL vector");
  const V3 vPerp = bv - f1 * bv.dot(f1);
  const V3 f2 = vPerp.normalized();
  VATES_REQUIRE(f2.norm2() > 0.0, "u and v must not be collinear");
  const V3 f3 = f1.cross(f2);

  // Lab frame targets: u along the beam (+Z), v toward +X, Y completes
  // the right-handed set (Z × X = Y).
  const V3 t1{0.0, 0.0, 1.0};
  const V3 t2{1.0, 0.0, 0.0};
  const V3 t3 = t1.cross(t2);

  u_ = frameRotation(f1, f2, f3, t1, t2, t3);
  VATES_REQUIRE(isRotation(u_, 1e-6), "constructed U is not a rotation");
  ub_ = u_ * lattice_.B();
  ubInverse_ = inverse(ub_);
}

V3 OrientedLattice::qSampleFromHkl(const V3& hkl) const {
  return (ub_ * hkl) * units::kTwoPi;
}

V3 OrientedLattice::hklFromQSample(const V3& qSample) const {
  return ubInverse_ * (qSample / units::kTwoPi);
}

} // namespace vates
