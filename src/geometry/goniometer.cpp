#include "vates/geometry/goniometer.hpp"

#include <cmath>

namespace vates {

Goniometer& Goniometer::push(const std::string& name, const V3& axis,
                             double angleDeg) {
  r_ = r_ * rotationAboutAxis(axis, angleDeg * M_PI / 180.0);
  names_.push_back(name);
  return *this;
}

Goniometer Goniometer::omega(double angleDeg) {
  Goniometer g;
  g.push("omega", V3{0.0, 1.0, 0.0}, angleDeg);
  return g;
}

} // namespace vates
