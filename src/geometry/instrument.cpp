#include "vates/geometry/instrument.hpp"

#include "vates/support/error.hpp"

#include <algorithm>
#include <cmath>

namespace vates {

Instrument::Instrument(std::string name, double l1, std::vector<V3> positions,
                       double pixelArea)
    : name_(std::move(name)), l1_(l1), positions_(std::move(positions)) {
  VATES_REQUIRE(l1 > 0.0, "source-sample distance must be positive");
  VATES_REQUIRE(pixelArea > 0.0, "pixel area must be positive");
  VATES_REQUIRE(!positions_.empty(), "instrument needs at least one detector");

  const std::size_t n = positions_.size();
  l2_.resize(n);
  twoTheta_.resize(n);
  qDirections_.resize(n);
  solidAngles_.resize(n);
  flightPaths_.resize(n);

  const V3 beam = beamDirection();
  for (std::size_t d = 0; d < n; ++d) {
    const double l2 = positions_[d].norm();
    VATES_REQUIRE(l2 > 0.0, "detector cannot sit on the sample");
    l2_[d] = l2;
    const V3 direction = positions_[d] / l2;
    const double cosTwoTheta = std::clamp(direction.dot(beam), -1.0, 1.0);
    twoTheta_[d] = std::acos(cosTwoTheta);
    qDirections_[d] = beam - direction;
    solidAngles_[d] = pixelArea / (l2 * l2);
    flightPaths_[d] = l1_ + l2;
  }
}

Instrument Instrument::corelliLike(std::size_t nDetectors) {
  VATES_REQUIRE(nDetectors >= 1, "need at least one detector");
  constexpr double kRadius = 2.55;       // m
  constexpr double kHeight = 1.94;       // m of vertical coverage
  constexpr double kPhiMin = -30.0 * M_PI / 180.0;
  constexpr double kPhiMax = 150.0 * M_PI / 180.0;
  constexpr double kMinTwoTheta = 1.5 * M_PI / 180.0; // keep off the beam

  // Pick a grid whose pixel aspect is roughly square on the cylinder.
  const double arc = (kPhiMax - kPhiMin) * kRadius;
  const double aspect = arc / kHeight;
  auto rows = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(nDetectors) / aspect)));
  rows = std::max<std::size_t>(rows, 1);
  const std::size_t cols = (nDetectors + rows - 1) / rows;

  std::vector<V3> positions;
  positions.reserve(nDetectors);
  const V3 beam = beamDirection();
  // March the grid, skipping near-beam pixels, until we have exactly
  // nDetectors; extra passes nudge the grid finer if skipping starved us.
  for (int pass = 0; positions.size() < nDetectors && pass < 8; ++pass) {
    positions.clear();
    const std::size_t passCols = cols + static_cast<std::size_t>(pass) * 8;
    for (std::size_t r = 0; r < rows * 4 && positions.size() < nDetectors;
         ++r) {
      const double y =
          -kHeight / 2.0 +
          kHeight * (static_cast<double>(r % rows) + 0.5) /
              static_cast<double>(rows);
      for (std::size_t c = 0; c < passCols && positions.size() < nDetectors;
           ++c) {
        const double phi = kPhiMin + (kPhiMax - kPhiMin) *
                                         (static_cast<double>(c) + 0.5) /
                                         static_cast<double>(passCols);
        const V3 position{kRadius * std::sin(phi), y, kRadius * std::cos(phi)};
        const V3 direction = position.normalized();
        if (std::acos(std::clamp(direction.dot(beam), -1.0, 1.0)) <
            kMinTwoTheta) {
          continue;
        }
        positions.push_back(position);
      }
      if (r % rows == rows - 1 && positions.size() >= nDetectors) {
        break;
      }
    }
  }
  VATES_REQUIRE(positions.size() == nDetectors,
                "failed to place the requested detector count");

  const double pixelArea = (arc / static_cast<double>(cols)) *
                           (kHeight / static_cast<double>(rows));
  return Instrument("CORELLI-like", 20.0, std::move(positions), pixelArea);
}

Instrument Instrument::topazLike(std::size_t nDetectors) {
  VATES_REQUIRE(nDetectors >= 1, "need at least one detector");
  constexpr double kRadius = 0.455;   // m, sample-to-bank distance
  constexpr double kBankSide = 0.158; // m, square bank edge

  // Bank centers as (two-theta, azimuth) pairs loosely following TOPAZ's
  // forward+side coverage.
  struct BankCenter {
    double twoThetaDeg;
    double phiDeg;
  };
  static constexpr BankCenter kBanks[] = {
      {25.0, 0.0},    {40.0, 45.0},   {40.0, -45.0},  {55.0, 90.0},
      {55.0, -90.0},  {70.0, 22.5},   {70.0, -22.5},  {90.0, 67.5},
      {90.0, -67.5},  {105.0, 0.0},   {120.0, 45.0},  {120.0, -45.0},
      {135.0, 90.0},  {150.0, 0.0},
  };
  constexpr std::size_t kNumBanks = std::size(kBanks);

  const std::size_t perBank = (nDetectors + kNumBanks - 1) / kNumBanks;
  const auto side = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(perBank))));
  const double pitch = kBankSide / static_cast<double>(side);

  std::vector<V3> positions;
  positions.reserve(nDetectors);
  for (std::size_t b = 0; b < kNumBanks && positions.size() < nDetectors;
       ++b) {
    const BankCenter& bank = kBanks[b];
    const double tt = bank.twoThetaDeg * M_PI / 180.0;
    const double phi = bank.phiDeg * M_PI / 180.0;
    // Bank center direction; azimuth rotates the bank about the beam.
    const V3 center{kRadius * std::sin(tt) * std::cos(phi),
                    kRadius * std::sin(tt) * std::sin(phi),
                    kRadius * std::cos(tt)};
    // In-plane bank axes spanning the flat panel.
    const V3 normal = center.normalized();
    const V3 up0{0.0, 1.0, 0.0};
    V3 axisU = up0 - normal * up0.dot(normal);
    if (axisU.norm2() < 1e-12) {
      axisU = V3{1.0, 0.0, 0.0};
    }
    axisU = axisU.normalized();
    const V3 axisV = normal.cross(axisU);

    for (std::size_t row = 0; row < side && positions.size() < nDetectors;
         ++row) {
      const double u =
          (static_cast<double>(row) + 0.5 - static_cast<double>(side) / 2.0) *
          pitch;
      for (std::size_t colIdx = 0;
           colIdx < side && positions.size() < nDetectors; ++colIdx) {
        const double v = (static_cast<double>(colIdx) + 0.5 -
                          static_cast<double>(side) / 2.0) *
                         pitch;
        positions.push_back(center + axisU * u + axisV * v);
      }
    }
  }
  VATES_REQUIRE(positions.size() == nDetectors,
                "failed to place the requested detector count");

  const double pixelArea = pitch * pitch;
  return Instrument("TOPAZ-like", 18.0, std::move(positions), pixelArea);
}

} // namespace vates
