#include "vates/core/plan.hpp"

#include "vates/support/error.hpp"
#include "vates/support/strings.hpp"

#include <algorithm>
#include <filesystem>
#include <set>
#include <sstream>

namespace vates::core {

namespace {

V3 parseTriple(const std::string& text, const std::string& what) {
  std::istringstream stream(text);
  V3 out;
  if (!(stream >> out.x >> out.y >> out.z)) {
    throw InvalidArgument(what + ": expected three numbers, got '" + text +
                          "'");
  }
  std::string leftover;
  if (stream >> leftover) {
    throw InvalidArgument(what + ": trailing content '" + leftover + "'");
  }
  return out;
}

std::array<std::size_t, 3> parseBins(const std::string& text) {
  const V3 triple = parseTriple(text, "bins");
  VATES_REQUIRE(triple.x >= 1 && triple.y >= 1 && triple.z >= 1,
                "bins must be >= 1");
  return {static_cast<std::size_t>(triple.x),
          static_cast<std::size_t>(triple.y),
          static_cast<std::size_t>(triple.z)};
}

std::string tripleText(const V3& v) {
  return strfmt("%.17g %.17g %.17g", v.x, v.y, v.z);
}

/// Seeds are full-range uint64 (the scenario generator draws them from
/// the raw RNG stream), so they can exceed what IniFile::getInt's
/// signed stoll accepts — parse them unsigned.
std::uint64_t parseSeed(const IniFile& ini, const std::string& key) {
  const std::string text = ini.getString("workload", key);
  try {
    std::size_t pos = 0;
    const unsigned long long parsed = std::stoull(text, &pos);
    if (pos != text.size()) {
      throw std::invalid_argument(text);
    }
    return static_cast<std::uint64_t>(parsed);
  } catch (const std::exception&) {
    throw InvalidArgument("ini key [workload] " + key + " = '" + text +
                          "' is not an unsigned integer");
  }
}

const std::set<std::string>& workloadKeys() {
  static const std::set<std::string> keys = {
      "base",        "scale",          "name",
      "files",       "events_per_file", "detectors",
      "point_group", "centering",       "instrument",
      "lambda_min",  "lambda_max",      "omega_start",
      "omega_step",  "proton_charge",   "bins",
      "extent_min",  "extent_max",      "projection_u",
      "projection_v", "projection_w",   "lattice",
      "lattice_angles", "u_vector",     "v_vector",
      "bragg_amplitude", "bragg_sigma", "diffuse_background",
      "seed",        "mask_fraction",   "mask_seed",
      "event_files",
  };
  return keys;
}

const std::set<std::string>& reductionKeys() {
  static const std::set<std::string> keys = {
      "backend",   "ranks",        "load_mode", "plane_search",
      "sort",      "track_errors", "lorentz",   "filter_band",
      "prepass",   "traversal",    "simd",      "cache_dir",
      "cache_budget_bytes",        "incremental",
      "autotune",  "autotune_max_candidates",
  };
  return keys;
}

void rejectUnknownKeys(const IniFile& ini) {
  for (const std::string& section : ini.sections()) {
    const std::set<std::string>* allowed = nullptr;
    if (section == "workload") {
      allowed = &workloadKeys();
    } else if (section == "reduction") {
      allowed = &reductionKeys();
    } else {
      throw InvalidArgument("unknown plan section [" + section + "]");
    }
    for (const std::string& key : ini.keys(section)) {
      if (!allowed->contains(key)) {
        throw InvalidArgument("unknown plan key [" + section + "] " + key);
      }
    }
  }
}

} // namespace

ReductionPlan planFromIni(const IniFile& ini) {
  rejectUnknownKeys(ini);

  ReductionPlan plan;

  // --- [workload] ---------------------------------------------------------
  const std::string base =
      toLower(ini.getString("workload", "base", "benzil-corelli"));
  const double scale = ini.getDouble("workload", "scale", 1.0);
  if (base == "benzil-corelli" || base == "benzil") {
    plan.workload = WorkloadSpec::benzilCorelli(scale);
  } else if (base == "bixbyite-topaz" || base == "bixbyite") {
    plan.workload = WorkloadSpec::bixbyiteTopaz(scale);
  } else if (base == "custom") {
    plan.workload = WorkloadSpec{};
  } else {
    throw InvalidArgument("unknown workload base '" + base + "'");
  }
  WorkloadSpec& w = plan.workload;

  w.name = ini.getString("workload", "name", w.name);
  w.nFiles = static_cast<std::size_t>(
      ini.getInt("workload", "files", static_cast<long long>(w.nFiles)));
  w.eventsPerFile = static_cast<std::size_t>(ini.getInt(
      "workload", "events_per_file", static_cast<long long>(w.eventsPerFile)));
  w.nDetectors = static_cast<std::size_t>(ini.getInt(
      "workload", "detectors", static_cast<long long>(w.nDetectors)));
  w.pointGroup = ini.getString("workload", "point_group", w.pointGroup);
  if (ini.has("workload", "centering")) {
    w.centering = parseCentering(ini.getString("workload", "centering"));
  }
  w.instrument = ini.getString("workload", "instrument", w.instrument);
  w.lambdaMin = ini.getDouble("workload", "lambda_min", w.lambdaMin);
  w.lambdaMax = ini.getDouble("workload", "lambda_max", w.lambdaMax);
  w.omegaStartDeg = ini.getDouble("workload", "omega_start", w.omegaStartDeg);
  w.omegaStepDeg = ini.getDouble("workload", "omega_step", w.omegaStepDeg);
  w.protonCharge = ini.getDouble("workload", "proton_charge", w.protonCharge);
  if (ini.has("workload", "bins")) {
    w.bins = parseBins(ini.getString("workload", "bins"));
  }
  if (ini.has("workload", "extent_min")) {
    const V3 v = parseTriple(ini.getString("workload", "extent_min"),
                             "extent_min");
    w.extentMin = {v.x, v.y, v.z};
  }
  if (ini.has("workload", "extent_max")) {
    const V3 v = parseTriple(ini.getString("workload", "extent_max"),
                             "extent_max");
    w.extentMax = {v.x, v.y, v.z};
  }
  if (ini.has("workload", "projection_u")) {
    w.projectionU =
        parseTriple(ini.getString("workload", "projection_u"), "projection_u");
  }
  if (ini.has("workload", "projection_v")) {
    w.projectionV =
        parseTriple(ini.getString("workload", "projection_v"), "projection_v");
  }
  if (ini.has("workload", "projection_w")) {
    w.projectionW =
        parseTriple(ini.getString("workload", "projection_w"), "projection_w");
  }
  if (ini.has("workload", "lattice")) {
    const V3 lengths = parseTriple(ini.getString("workload", "lattice"),
                                   "lattice");
    w.latticeA = lengths.x;
    w.latticeB = lengths.y;
    w.latticeC = lengths.z;
  }
  if (ini.has("workload", "lattice_angles")) {
    const V3 angles = parseTriple(ini.getString("workload", "lattice_angles"),
                                  "lattice_angles");
    w.latticeAlpha = angles.x;
    w.latticeBeta = angles.y;
    w.latticeGamma = angles.z;
  }
  if (ini.has("workload", "u_vector")) {
    w.uVector = parseTriple(ini.getString("workload", "u_vector"), "u_vector");
  }
  if (ini.has("workload", "v_vector")) {
    w.vVector = parseTriple(ini.getString("workload", "v_vector"), "v_vector");
  }
  w.braggAmplitude =
      ini.getDouble("workload", "bragg_amplitude", w.braggAmplitude);
  w.braggSigma = ini.getDouble("workload", "bragg_sigma", w.braggSigma);
  w.diffuseBackground =
      ini.getDouble("workload", "diffuse_background", w.diffuseBackground);
  if (ini.has("workload", "seed")) {
    w.seed = parseSeed(ini, "seed");
  }
  w.maskFraction = ini.getDouble("workload", "mask_fraction", w.maskFraction);
  VATES_REQUIRE(w.maskFraction >= 0.0, "mask_fraction must be >= 0");
  if (ini.has("workload", "mask_seed")) {
    w.maskSeed = parseSeed(ini, "mask_seed");
  }
  if (ini.has("workload", "event_files")) {
    std::istringstream stream(ini.getString("workload", "event_files"));
    std::string path;
    while (stream >> path) {
      plan.eventFiles.push_back(path);
    }
    VATES_REQUIRE(plan.eventFiles.empty() ||
                      plan.eventFiles.size() == w.nFiles,
                  "event_files must list exactly [workload] files paths");
  }

  // --- [reduction] ----------------------------------------------------------
  ReductionConfig& c = plan.config;
  if (ini.has("reduction", "backend")) {
    c.backend = parseBackend(ini.getString("reduction", "backend"));
  }
  c.ranks = static_cast<int>(ini.getInt("reduction", "ranks", c.ranks));
  if (ini.has("reduction", "load_mode")) {
    const std::string mode = toLower(ini.getString("reduction", "load_mode"));
    if (mode == "raw-tof" || mode == "raw") {
      c.loadMode = LoadMode::RawTof;
    } else if (mode == "q-sample" || mode == "qsample") {
      c.loadMode = LoadMode::QSample;
    } else {
      throw InvalidArgument("unknown load_mode '" + mode + "'");
    }
  }
  if (ini.has("reduction", "plane_search")) {
    const std::string search =
        toLower(ini.getString("reduction", "plane_search"));
    if (search == "roi") {
      c.mdnorm.search = PlaneSearch::Roi;
    } else if (search == "linear") {
      c.mdnorm.search = PlaneSearch::Linear;
    } else {
      throw InvalidArgument("unknown plane_search '" + search + "'");
    }
  }
  if (ini.has("reduction", "sort")) {
    // Pre-traversal plans spelled the ablation as sort = keys|structs;
    // keep reading them (traversal below wins when both are present).
    const std::string sort = toLower(ini.getString("reduction", "sort"));
    if (sort == "keys") {
      c.mdnorm.traversal = Traversal::SortedKeys;
    } else if (sort == "structs") {
      c.mdnorm.traversal = Traversal::Legacy;
    } else {
      throw InvalidArgument("unknown sort '" + sort + "'");
    }
  }
  if (ini.has("reduction", "traversal")) {
    c.mdnorm.traversal = parseTraversal(ini.getString("reduction", "traversal"));
  }
  if (ini.has("reduction", "simd")) {
    c.mdnorm.simd = parseSimdMode(ini.getString("reduction", "simd"));
  }
  c.trackErrors = ini.getBool("reduction", "track_errors", c.trackErrors);
  c.convert.lorentzCorrection =
      ini.getBool("reduction", "lorentz", c.convert.lorentzCorrection);
  c.convert.filterMomentumBand =
      ini.getBool("reduction", "filter_band", c.convert.filterMomentumBand);
  c.deviceIntersectionPrePass =
      ini.getBool("reduction", "prepass", c.deviceIntersectionPrePass);
  c.cacheDir = ini.getString("reduction", "cache_dir", c.cacheDir);
  if (ini.has("reduction", "cache_budget_bytes")) {
    const long long budget = ini.getInt("reduction", "cache_budget_bytes");
    VATES_REQUIRE(budget >= 0, "cache_budget_bytes must be >= 0");
    c.cacheBudgetBytes = static_cast<std::uint64_t>(budget);
  }
  c.incremental = ini.getBool("reduction", "incremental", c.incremental);
  c.autotune.enabled =
      ini.getBool("reduction", "autotune", c.autotune.enabled);
  if (ini.has("reduction", "autotune_max_candidates")) {
    const long long bound = ini.getInt("reduction", "autotune_max_candidates");
    VATES_REQUIRE(bound >= 1, "autotune_max_candidates must be >= 1");
    c.autotune.maxCandidates = static_cast<std::size_t>(bound);
  }

  return plan;
}

IniFile planToIni(const ReductionPlan& plan) {
  const WorkloadSpec& w = plan.workload;
  const ReductionConfig& c = plan.config;
  IniFile ini;
  ini.set("workload", "base", "custom");
  ini.set("workload", "name", w.name);
  ini.set("workload", "files", std::to_string(w.nFiles));
  ini.set("workload", "events_per_file", std::to_string(w.eventsPerFile));
  ini.set("workload", "detectors", std::to_string(w.nDetectors));
  ini.set("workload", "point_group", w.pointGroup);
  ini.set("workload", "centering", centeringSymbol(w.centering));
  ini.set("workload", "instrument", w.instrument);
  ini.set("workload", "lambda_min", strfmt("%.17g", w.lambdaMin));
  ini.set("workload", "lambda_max", strfmt("%.17g", w.lambdaMax));
  ini.set("workload", "omega_start", strfmt("%.17g", w.omegaStartDeg));
  ini.set("workload", "omega_step", strfmt("%.17g", w.omegaStepDeg));
  ini.set("workload", "proton_charge", strfmt("%.17g", w.protonCharge));
  ini.set("workload", "bins",
          strfmt("%zu %zu %zu", w.bins[0], w.bins[1], w.bins[2]));
  ini.set("workload", "extent_min",
          tripleText(V3{w.extentMin[0], w.extentMin[1], w.extentMin[2]}));
  ini.set("workload", "extent_max",
          tripleText(V3{w.extentMax[0], w.extentMax[1], w.extentMax[2]}));
  ini.set("workload", "projection_u", tripleText(w.projectionU));
  ini.set("workload", "projection_v", tripleText(w.projectionV));
  ini.set("workload", "projection_w", tripleText(w.projectionW));
  ini.set("workload", "lattice",
          tripleText(V3{w.latticeA, w.latticeB, w.latticeC}));
  ini.set("workload", "lattice_angles",
          tripleText(V3{w.latticeAlpha, w.latticeBeta, w.latticeGamma}));
  ini.set("workload", "u_vector", tripleText(w.uVector));
  ini.set("workload", "v_vector", tripleText(w.vVector));
  ini.set("workload", "bragg_amplitude", strfmt("%.17g", w.braggAmplitude));
  ini.set("workload", "bragg_sigma", strfmt("%.17g", w.braggSigma));
  ini.set("workload", "diffuse_background",
          strfmt("%.17g", w.diffuseBackground));
  ini.set("workload", "seed", std::to_string(w.seed));
  ini.set("workload", "mask_fraction", strfmt("%.17g", w.maskFraction));
  ini.set("workload", "mask_seed", std::to_string(w.maskSeed));
  if (!plan.eventFiles.empty()) {
    std::string joined;
    for (const std::string& path : plan.eventFiles) {
      if (!joined.empty()) {
        joined += ' ';
      }
      joined += path;
    }
    ini.set("workload", "event_files", joined);
  }

  ini.set("reduction", "backend", backendName(c.backend));
  ini.set("reduction", "ranks", std::to_string(c.ranks));
  ini.set("reduction", "load_mode",
          c.loadMode == LoadMode::RawTof ? "raw-tof" : "q-sample");
  ini.set("reduction", "plane_search",
          c.mdnorm.search == PlaneSearch::Roi ? "roi" : "linear");
  ini.set("reduction", "traversal", traversalName(c.mdnorm.traversal));
  ini.set("reduction", "simd", simdModeName(c.mdnorm.simd));
  ini.set("reduction", "track_errors", c.trackErrors ? "true" : "false");
  ini.set("reduction", "lorentz",
          c.convert.lorentzCorrection ? "true" : "false");
  ini.set("reduction", "filter_band",
          c.convert.filterMomentumBand ? "true" : "false");
  ini.set("reduction", "prepass",
          c.deviceIntersectionPrePass ? "true" : "false");
  ini.set("reduction", "cache_dir", c.cacheDir);
  ini.set("reduction", "cache_budget_bytes",
          std::to_string(c.cacheBudgetBytes));
  ini.set("reduction", "incremental", c.incremental ? "true" : "false");
  ini.set("reduction", "autotune", c.autotune.enabled ? "true" : "false");
  ini.set("reduction", "autotune_max_candidates",
          std::to_string(c.autotune.maxCandidates));
  return ini;
}

ReductionPlan loadReductionPlan(const std::string& path) {
  ReductionPlan plan = planFromIni(IniFile::load(path));
  // Relative event files are plan-relative, so a committed plan + data
  // directory pair works from any CWD.
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  for (std::string& file : plan.eventFiles) {
    const std::filesystem::path p(file);
    if (p.is_relative() && !parent.empty()) {
      file = (parent / p).string();
    }
  }
  return plan;
}

void saveReductionPlan(const std::string& path, const ReductionPlan& plan) {
  planToIni(plan).save(path);
}

} // namespace vates::core
