#include "vates/core/report.hpp"

#include "vates/support/strings.hpp"

#include <algorithm>
#include <set>
#include <sstream>

namespace vates::core {

WctTable::WctTable(std::string title) : title_(std::move(title)) {}

void WctTable::addColumn(const std::string& header,
                         const ReductionResult& result) {
  columns_.push_back(Column{header, result.times, result.wallSeconds});
}

void WctTable::addColumn(const std::string& header, const StageTimes& times) {
  columns_.push_back(Column{header, times, -1.0});
}

std::string WctTable::render() const {
  // Fixed leading rows in the paper's order, then any extra stages a
  // column recorded, then the two derived totals.
  const std::vector<std::string> fixed = {"UpdateEvents", "MDNorm", "BinMD"};
  std::vector<std::string> extra;
  for (const Column& column : columns_) {
    for (const std::string& stage : column.times.names()) {
      if (std::find(fixed.begin(), fixed.end(), stage) == fixed.end() &&
          std::find(extra.begin(), extra.end(), stage) == extra.end()) {
        extra.push_back(stage);
      }
    }
  }

  std::ostringstream os;
  os << title_ << '\n';
  os << strfmt("%-22s", "WCT (s)");
  for (const Column& column : columns_) {
    os << strfmt(" %18s", column.header.c_str());
  }
  os << '\n';
  os << std::string(22 + columns_.size() * 19, '-') << '\n';

  auto row = [&](const std::string& label, auto value) {
    os << strfmt("%-22s", label.c_str());
    for (const Column& column : columns_) {
      os << strfmt(" %18.4f", value(column));
    }
    os << '\n';
  };

  for (const std::string& stage : fixed) {
    row(stage, [&](const Column& c) { return c.times.total(stage); });
  }
  for (const std::string& stage : extra) {
    row(stage, [&](const Column& c) { return c.times.total(stage); });
  }
  row("MDNorm + BinMD", [](const Column& c) {
    return c.times.total("MDNorm") + c.times.total("BinMD");
  });
  row("Total", [](const Column& c) { return c.times.grandTotal(); });
  const bool anyWall =
      std::any_of(columns_.begin(), columns_.end(),
                  [](const Column& c) { return c.wall >= 0.0; });
  if (anyWall) {
    row("Wall", [](const Column& c) { return c.wall >= 0.0 ? c.wall : 0.0; });
  }
  return os.str();
}

double WctTable::ratio(std::size_t columnA, std::size_t columnB,
                       const std::string& stage) const {
  const double a = stage == "Total" ? columns_.at(columnA).times.grandTotal()
                                    : columns_.at(columnA).times.total(stage);
  const double b = stage == "Total" ? columns_.at(columnB).times.grandTotal()
                                    : columns_.at(columnB).times.total(stage);
  return b > 0.0 ? a / b : 0.0;
}

std::string speedupLine(const std::string& stage, const std::string& fast,
                        double fastSeconds, const std::string& slow,
                        double slowSeconds) {
  if (fastSeconds <= 0.0 || slowSeconds <= 0.0) {
    return strfmt("%s: insufficient timing to compare %s vs %s",
                  stage.c_str(), fast.c_str(), slow.c_str());
  }
  return strfmt("%s: %s is %.1fx %s than %s", stage.c_str(), fast.c_str(),
                slowSeconds / fastSeconds,
                slowSeconds >= fastSeconds ? "faster" : "slower",
                slow.c_str());
}

} // namespace vates::core
