#include "vates/core/workflow_reduction.hpp"

#include "vates/kernels/binmd.hpp"
#include "vates/kernels/convert_to_md.hpp"
#include "vates/kernels/mdnorm.hpp"
#include "vates/kernels/transforms.hpp"
#include "vates/support/strings.hpp"

#include <memory>
#include <optional>
#include <vector>

namespace vates::core {

WorkflowReductionResult
runWorkflowReduction(const ExperimentSetup& setup,
                     const ReductionConfig& config, unsigned workers) {
  const std::size_t nFiles = setup.spec().nFiles;
  const EventGenerator generator = setup.makeGenerator();

  WorkflowReductionResult result{setup.makeHistogram(), setup.makeHistogram(),
                                 setup.makeHistogram(), {}};
  const GridView signalGrid = result.signal.gridView();
  const GridView normGrid = result.normalization.gridView();

  // Task bodies run serially; the scheduler provides the concurrency.
  // That concurrency is invisible to each kernel launch's accumulator
  // (every launch sees a 1-worker executor), so the shared signal/norm
  // grids must be flagged: sharedGrid forces real atomic deposits
  // instead of the single-worker plain-add fast path.
  const Executor executor(Backend::Serial);
  MDNormOptions mdnormOptions = config.mdnorm;
  mdnormOptions.accumulate.sharedGrid = true;
  AccumulateOptions binmdAccumulate;
  binmdAccumulate.sharedGrid = true;

  // Per-file staging slots filled by load tasks, consumed by binmd
  // tasks (then released to bound memory to in-flight files).
  std::vector<std::optional<EventTable>> staged(nFiles);
  const std::vector<M33> binTransforms = binMdTransforms(
      setup.projection(), setup.lattice(), setup.symmetryMatrices());

  wf::TaskGraph graph;
  std::vector<wf::TaskId> terminalTasks;
  terminalTasks.reserve(2 * nFiles);

  for (std::size_t fileIndex = 0; fileIndex < nFiles; ++fileIndex) {
    const RunInfo run = generator.runInfo(fileIndex);

    const wf::TaskId loadTask = graph.addTask(
        strfmt("load[%zu]", fileIndex), [&, fileIndex, run] {
          if (config.loadMode == LoadMode::RawTof) {
            const RawEventList raw = generator.generateRaw(fileIndex);
            staged[fileIndex] = convertToMD(executor, setup.instrument(),
                                            nullptr, run, raw, config.convert);
          } else {
            staged[fileIndex] = generator.generate(fileIndex);
          }
        });

    const wf::TaskId mdnormTask = graph.addTask(
        strfmt("mdnorm[%zu]", fileIndex), [&, run] {
          const std::vector<M33> transforms =
              mdNormTransforms(setup.projection(), setup.lattice(),
                               setup.symmetryMatrices(), run.goniometerR);
          MDNormInputs inputs;
          inputs.transforms = transforms;
          inputs.qLabDirections = setup.instrument().qLabDirections();
          inputs.solidAngles = setup.instrument().solidAngles();
          inputs.flux = setup.flux().view();
          inputs.protonCharge = run.protonCharge;
          inputs.kMin = run.kMin;
          inputs.kMax = run.kMax;
          runMDNorm(executor, inputs, normGrid, mdnormOptions);
        });

    const wf::TaskId binmdTask = graph.addTask(
        strfmt("binmd[%zu]", fileIndex), [&, fileIndex] {
          const EventTable& events = *staged[fileIndex];
          BinMDInputs inputs;
          inputs.transforms = binTransforms;
          inputs.qx = events.column(EventTable::Qx).data();
          inputs.qy = events.column(EventTable::Qy).data();
          inputs.qz = events.column(EventTable::Qz).data();
          inputs.signal = events.column(EventTable::Signal).data();
          inputs.nEvents = events.size();
          runBinMD(executor, inputs, signalGrid, binmdAccumulate);
          staged[fileIndex].reset(); // release the file's events
        });

    graph.addDependency(loadTask, binmdTask);
    terminalTasks.push_back(mdnormTask);
    terminalTasks.push_back(binmdTask);
  }

  const wf::TaskId divideTask =
      graph.addTask("cross_section", [&] {
        result.crossSection =
            Histogram3D::divide(result.signal, result.normalization);
      });
  for (const wf::TaskId task : terminalTasks) {
    graph.addDependency(task, divideTask);
  }

  const wf::Scheduler scheduler(workers);
  result.report = scheduler.run(graph);
  return result;
}

} // namespace vates::core
