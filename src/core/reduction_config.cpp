#include "vates/core/reduction_config.hpp"

#include "vates/support/strings.hpp"

namespace vates::core {

ReductionConfig ReductionConfig::fromPreset(const HardwarePreset& preset,
                                            Backend backend) {
  ReductionConfig config;
  config.backend = backend;
  config.ranks = preset.ranks;
  return config;
}

std::string ReductionConfig::summary() const {
  return strfmt("backend=%s ranks=%d load=%s search=%s sort=%s prepass=%s",
                backendName(backend), ranks,
                loadMode == LoadMode::RawTof ? "raw-tof" : "q-sample",
                mdnorm.search == PlaneSearch::Roi ? "roi" : "linear",
                mdnorm.sortPrimitiveKeys ? "keys" : "structs",
                deviceIntersectionPrePass ? "on" : "off");
}

} // namespace vates::core
