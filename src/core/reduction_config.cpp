#include "vates/core/reduction_config.hpp"

#include "vates/support/error.hpp"
#include "vates/support/strings.hpp"

namespace vates::core {

const char* overlapModeName(OverlapMode mode) noexcept {
  switch (mode) {
  case OverlapMode::Off:
    return "off";
  case OverlapMode::Prefetch:
    return "prefetch";
  case OverlapMode::Full:
    return "full";
  }
  return "off";
}

OverlapMode parseOverlapMode(const std::string& name) {
  const std::string lower = toLower(trim(name));
  if (lower == "off" || lower == "none" || lower == "sequential") {
    return OverlapMode::Off;
  }
  if (lower == "prefetch" || lower == "load") {
    return OverlapMode::Prefetch;
  }
  if (lower == "full" || lower == "concurrent") {
    return OverlapMode::Full;
  }
  throw InvalidArgument("unknown overlap mode '" + name +
                        "' (available: off, prefetch, full)");
}

ReductionConfig ReductionConfig::fromPreset(const HardwarePreset& preset,
                                            Backend backend) {
  ReductionConfig config;
  config.backend = backend;
  config.ranks = preset.ranks;
  return config;
}

std::string ReductionConfig::summary() const {
  return strfmt(
      "backend=%s ranks=%d load=%s search=%s traversal=%s simd=%s "
      "prepass=%s overlap=%s",
      backendName(backend), ranks,
      loadMode == LoadMode::RawTof ? "raw-tof" : "q-sample",
      mdnorm.search == PlaneSearch::Roi ? "roi" : "linear",
      traversalName(mdnorm.traversal), simdModeName(mdnorm.simd),
      deviceIntersectionPrePass ? "on" : "off", overlapModeName(overlap.mode));
}

} // namespace vates::core
