#include "vates/core/peak_search.hpp"

#include "vates/support/error.hpp"
#include "vates/support/strings.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

namespace vates::core {

namespace {
struct Candidate {
  std::size_t i, j, k;
  double height;
};
} // namespace

std::vector<Peak> findPeaks(const Histogram3D& crossSection,
                            const PeakSearchOptions& options) {
  VATES_REQUIRE(options.window >= 1, "window must be >= 1");
  VATES_REQUIRE(options.thresholdOverMedian > 0.0, "threshold must be > 0");

  const std::size_t nx = crossSection.nx();
  const std::size_t ny = crossSection.ny();
  const std::size_t nz = crossSection.nz();

  // Median of the finite bins sets the detection floor.
  std::vector<double> finite;
  finite.reserve(crossSection.size());
  for (double value : crossSection.data()) {
    if (std::isfinite(value)) {
      finite.push_back(value);
    }
  }
  if (finite.empty()) {
    return {};
  }
  std::nth_element(finite.begin(), finite.begin() + finite.size() / 2,
                   finite.end());
  const double median = finite[finite.size() / 2];
  const double floor = options.thresholdOverMedian * std::max(median, 0.0);

  auto value = [&](std::size_t i, std::size_t j, std::size_t k) {
    return crossSection.at(i, j, k);
  };
  const auto w = static_cast<std::ptrdiff_t>(options.window);

  // Pass 1: strict local maxima above the floor.
  std::vector<Candidate> candidates;
  for (std::size_t i = 0; i < nx; ++i) {
    for (std::size_t j = 0; j < ny; ++j) {
      for (std::size_t k = 0; k < nz; ++k) {
        const double center = value(i, j, k);
        if (!std::isfinite(center) || center <= floor) {
          continue;
        }
        bool isMaximum = true;
        for (std::ptrdiff_t di = -w; di <= w && isMaximum; ++di) {
          for (std::ptrdiff_t dj = -w; dj <= w && isMaximum; ++dj) {
            for (std::ptrdiff_t dk = -w; dk <= w && isMaximum; ++dk) {
              if (di == 0 && dj == 0 && dk == 0) {
                continue;
              }
              const std::ptrdiff_t ii = static_cast<std::ptrdiff_t>(i) + di;
              const std::ptrdiff_t jj = static_cast<std::ptrdiff_t>(j) + dj;
              const std::ptrdiff_t kk = static_cast<std::ptrdiff_t>(k) + dk;
              if (ii < 0 || jj < 0 || kk < 0 ||
                  ii >= static_cast<std::ptrdiff_t>(nx) ||
                  jj >= static_cast<std::ptrdiff_t>(ny) ||
                  kk >= static_cast<std::ptrdiff_t>(nz)) {
                continue;
              }
              const double neighbor =
                  value(static_cast<std::size_t>(ii),
                        static_cast<std::size_t>(jj),
                        static_cast<std::size_t>(kk));
              if (std::isfinite(neighbor) && neighbor > center) {
                isMaximum = false;
              }
            }
          }
        }
        if (isMaximum) {
          candidates.push_back(Candidate{i, j, k, center});
        }
      }
    }
  }

  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.height > b.height;
            });

  // Pass 2: greedy acceptance with separation, then windowed
  // integration with local-background (window-shell median) removal.
  std::vector<Peak> peaks;
  const double minSeparationSq =
      options.minSeparationBins * options.minSeparationBins;
  for (const Candidate& candidate : candidates) {
    if (peaks.size() >= options.maxPeaks) {
      break;
    }
    bool tooClose = false;
    for (const Peak& accepted : peaks) {
      const double di = static_cast<double>(candidate.i) -
                        (accepted.projected.x - crossSection.axis(0).min()) /
                            crossSection.axis(0).width();
      const double dj = static_cast<double>(candidate.j) -
                        (accepted.projected.y - crossSection.axis(1).min()) /
                            crossSection.axis(1).width();
      const double dk = static_cast<double>(candidate.k) -
                        (accepted.projected.z - crossSection.axis(2).min()) /
                            crossSection.axis(2).width();
      if (di * di + dj * dj + dk * dk < minSeparationSq) {
        tooClose = true;
        break;
      }
    }
    if (tooClose) {
      continue;
    }

    // Integrate the window; estimate the local background from the
    // window's outer shell.
    double integral = 0.0;
    std::vector<double> shell;
    std::size_t coveredBins = 0;
    for (std::ptrdiff_t di = -w; di <= w; ++di) {
      for (std::ptrdiff_t dj = -w; dj <= w; ++dj) {
        for (std::ptrdiff_t dk = -w; dk <= w; ++dk) {
          const std::ptrdiff_t ii =
              static_cast<std::ptrdiff_t>(candidate.i) + di;
          const std::ptrdiff_t jj =
              static_cast<std::ptrdiff_t>(candidate.j) + dj;
          const std::ptrdiff_t kk =
              static_cast<std::ptrdiff_t>(candidate.k) + dk;
          if (ii < 0 || jj < 0 || kk < 0 ||
              ii >= static_cast<std::ptrdiff_t>(nx) ||
              jj >= static_cast<std::ptrdiff_t>(ny) ||
              kk >= static_cast<std::ptrdiff_t>(nz)) {
            continue;
          }
          const double binValue = value(static_cast<std::size_t>(ii),
                                        static_cast<std::size_t>(jj),
                                        static_cast<std::size_t>(kk));
          if (!std::isfinite(binValue)) {
            continue;
          }
          const bool onShell = std::abs(di) == w || std::abs(dj) == w ||
                               (nz > 1 && std::abs(dk) == w);
          if (onShell) {
            shell.push_back(binValue);
          } else {
            integral += binValue;
            ++coveredBins;
          }
        }
      }
    }
    double background = 0.0;
    if (!shell.empty()) {
      std::nth_element(shell.begin(), shell.begin() + shell.size() / 2,
                       shell.end());
      background = shell[shell.size() / 2];
    }

    Peak peak;
    peak.projected =
        V3{crossSection.axis(0).center(candidate.i),
           crossSection.axis(1).center(candidate.j),
           crossSection.axis(2).center(candidate.k)};
    peak.hkl = crossSection.projection().toHkl(peak.projected);
    peak.height = candidate.height;
    peak.intensity =
        integral - background * static_cast<double>(coveredBins);
    peak.binIndex =
        crossSection.flatIndex(candidate.i, candidate.j, candidate.k);
    peaks.push_back(peak);
  }
  return peaks;
}

std::string peakTable(const std::vector<Peak>& peaks, std::size_t maxRows) {
  std::ostringstream os;
  os << strfmt("%-4s %-26s %-26s %14s\n", "#", "projected (x,y,z)",
               "hkl", "intensity");
  const std::size_t rows = std::min(maxRows, peaks.size());
  for (std::size_t p = 0; p < rows; ++p) {
    const Peak& peak = peaks[p];
    os << strfmt("%-4zu (%7.3f,%7.3f,%7.3f) (%7.3f,%7.3f,%7.3f) %14.3e\n",
                 p, peak.projected.x, peak.projected.y, peak.projected.z,
                 peak.hkl.x, peak.hkl.y, peak.hkl.z, peak.intensity);
  }
  if (peaks.size() > rows) {
    os << "... (" << peaks.size() - rows << " more)\n";
  }
  return os.str();
}

} // namespace vates::core
