#include "vates/core/pipeline.hpp"

#include "vates/kernels/binmd.hpp"
#include "vates/kernels/mdnorm.hpp"
#include "vates/kernels/transforms.hpp"
#include "vates/parallel/device_array.hpp"
#include "vates/parallel/prefetcher.hpp"
#include "vates/support/error.hpp"
#include "vates/support/log.hpp"
#include "vates/workflow/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <utility>

namespace vates::core {

ReductionPipeline::ReductionPipeline(const ExperimentSetup& setup,
                                     ReductionConfig config)
    : setup_(&setup), config_(config) {
  VATES_REQUIRE(config_.ranks >= 1, "need at least one rank");
  VATES_REQUIRE(backendAvailable(config_.backend),
                std::string("backend unavailable: ") +
                    backendName(config_.backend));
  // Environment override so existing drivers and benchmarks can switch
  // the overlap engine without a recompile (same spirit as
  // VATES_NUM_THREADS).  A bad value is reported and ignored rather
  // than failing a reduction that never asked for overlap.
  if (const char* env = std::getenv("VATES_OVERLAP")) {
    try {
      config_.overlap.mode = parseOverlapMode(env);
    } catch (const Error& error) {
      VATES_LOG_WARN("VATES_OVERLAP=\"" << env
                                        << "\" ignored: " << error.what());
    }
  }
  // Same contract for the MDNorm traversal ablation (legacy /
  // sorted-keys / dda): benches and examples switch segment generation
  // without a recompile.
  if (const char* env = std::getenv("VATES_TRAVERSAL")) {
    try {
      config_.mdnorm.traversal = parseTraversal(env);
    } catch (const Error& error) {
      VATES_LOG_WARN("VATES_TRAVERSAL=\"" << env
                                          << "\" ignored: " << error.what());
    }
  }
  // And for the kernels' SIMD batch paths (auto / off / on) — one knob
  // covers both MDNorm and BinMD, mirroring how the INI `simd` key and
  // ReductionConfig carry a single mode for the whole reduction.
  if (const char* env = std::getenv("VATES_SIMD")) {
    try {
      config_.mdnorm.simd = parseSimdMode(env);
    } catch (const Error& error) {
      VATES_LOG_WARN("VATES_SIMD=\"" << env
                                     << "\" ignored: " << error.what());
    }
  }
}

ReductionPipeline::RunSource ReductionPipeline::convertingSource(
    std::function<RawRunFileContent(std::size_t)> rawSource) const {
  // Conversion is a host-side stage (part of loading in the paper's
  // workflow); convertToMD itself downgrades a DeviceSim executor.
  const Executor executor(config_.backend);
  const Instrument* instrument = &setup_->instrument();
  const DetectorMask* mask = setup_->detectorMask();
  const ConvertOptions options = config_.convert;
  return [rawSource = std::move(rawSource), executor, instrument, mask,
          options](std::size_t fileIndex, StageTimes& times) {
    WallTimer loadTimer;
    RawRunFileContent raw = rawSource(fileIndex);
    times.add("UpdateEvents", loadTimer.seconds());

    WallTimer convertTimer;
    EventTable events = convertToMD(executor, *instrument, mask, raw.run,
                                    raw.events, options);
    times.add("ConvertToMD", convertTimer.seconds());
    return RunFileContent{raw.run, std::move(events)};
  };
}

ReductionResult ReductionPipeline::run() const {
  return reduceGenerated(nullptr);
}

ReductionResult
ReductionPipeline::runIncremental(const ReductionSeed& seed) const {
  return reduceGenerated(&seed);
}

ReductionResult
ReductionPipeline::reduceGenerated(const ReductionSeed* seed) const {
  const EventGenerator generator = setup_->makeGenerator();
  if (config_.loadMode == LoadMode::RawTof) {
    const RunSource source =
        convertingSource([&generator](std::size_t fileIndex) {
          return RawRunFileContent{generator.runInfo(fileIndex),
                                   generator.generateRaw(fileIndex)};
        });
    return reduceAll(source, setup_->spec().nFiles, seed);
  }
  const RunSource source = [&generator](std::size_t fileIndex,
                                        StageTimes& times) {
    WallTimer loadTimer;
    RunFileContent content{generator.runInfo(fileIndex),
                           generator.generate(fileIndex)};
    times.add("UpdateEvents", loadTimer.seconds());
    return content;
  };
  return reduceAll(source, setup_->spec().nFiles, seed);
}

std::vector<std::string>
ReductionPipeline::writeRunFiles(const std::string& directory) const {
  const EventGenerator generator = setup_->makeGenerator();
  std::vector<std::string> paths;
  paths.reserve(setup_->spec().nFiles);
  for (std::size_t fileIndex = 0; fileIndex < setup_->spec().nFiles;
       ++fileIndex) {
    const std::string path =
        runFilePath(directory, setup_->spec().name, fileIndex);
    saveRunFile(path, generator.runInfo(fileIndex),
                generator.generate(fileIndex));
    paths.push_back(path);
  }
  return paths;
}

std::vector<std::string>
ReductionPipeline::writeRawRunFiles(const std::string& directory) const {
  const EventGenerator generator = setup_->makeGenerator();
  std::vector<std::string> paths;
  paths.reserve(setup_->spec().nFiles);
  for (std::size_t fileIndex = 0; fileIndex < setup_->spec().nFiles;
       ++fileIndex) {
    const std::string path =
        rawRunFilePath(directory, setup_->spec().name, fileIndex);
    saveRawRunFile(path, generator.runInfo(fileIndex),
                   generator.generateRaw(fileIndex));
    paths.push_back(path);
  }
  return paths;
}

ReductionResult
ReductionPipeline::runFromFiles(const std::vector<std::string>& paths) const {
  const RunSource source = [&paths](std::size_t fileIndex,
                                    StageTimes& times) {
    WallTimer loadTimer;
    RunFileContent content = loadRunFile(paths.at(fileIndex));
    times.add("UpdateEvents", loadTimer.seconds());
    return content;
  };
  return reduceAll(source, paths.size());
}

ReductionResult ReductionPipeline::runFromRawFiles(
    const std::vector<std::string>& paths) const {
  const RunSource source = convertingSource(
      [&paths](std::size_t fileIndex) {
        return loadRawRunFile(paths.at(fileIndex));
      });
  return reduceAll(source, paths.size());
}

ReductionResult ReductionPipeline::reduceAll(const RunSource& source,
                                             std::size_t nFiles,
                                             const ReductionSeed* seed) const {
  const int nRanks = config_.ranks;
  if (seed != nullptr) {
    // See ReductionSeed: continuation is only bit-identical to a
    // from-scratch run when one rank accumulates files strictly in
    // order, and a skip-normalization run has no normalization
    // accumulator worth seeding.
    VATES_REQUIRE(nRanks == 1, "incremental reduction requires ranks == 1");
    VATES_REQUIRE(!config_.skipNormalization,
                  "incremental reduction computes its own normalization");
    VATES_REQUIRE(seed->signal != nullptr && seed->normalization != nullptr,
                  "incremental seed needs signal and normalization");
    VATES_REQUIRE(config_.trackErrors == (seed->signalErrorSq != nullptr),
                  "incremental seed error histogram must match trackErrors");
    VATES_REQUIRE(seed->filesAlreadyReduced <= nFiles,
                  "incremental seed covers more files than the workload");
    const Histogram3D reference = setup_->makeHistogram();
    VATES_REQUIRE(seed->signal->sameShape(reference) &&
                      seed->normalization->sameShape(reference) &&
                      (seed->signalErrorSq == nullptr ||
                       seed->signalErrorSq->sameShape(reference)),
                  "incremental seed histograms do not match the workload grid");
  }
  const DeviceStats statsBefore = DeviceSim::global().stats();
  const WallTimer wallTimer;

  // Optional file-arrival latency model: charge the wait to its own
  // stage so reports keep it separate from the real load cost.  The
  // wait happens inside the RunSource, i.e. on the prefetch thread when
  // overlap is enabled — which is what lets the engine hide it.
  const RunSource* activeSource = &source;
  RunSource delayedSource;
  if (config_.simulatedLoadLatencySeconds > 0.0) {
    delayedSource = [this, &source](std::size_t fileIndex, StageTimes& times) {
      const WallTimer waitTimer;
      std::this_thread::sleep_for(
          std::chrono::duration<double>(config_.simulatedLoadLatencySeconds));
      times.add("File wait", waitTimer.seconds());
      return source(fileIndex, times);
    };
    activeSource = &delayedSource;
  }

  // The pre-pass estimate is cached for the duration of one reduction;
  // a new reduction (possibly a different workload through the same
  // pipeline) measures afresh.
  {
    std::lock_guard<std::mutex> lock(intersectionCache_.mutex);
    intersectionCache_.valid = false;
    intersectionCache_.estimate = 0;
  }

  // Shared result slots written by rank 0 / aggregated after the join.
  ReductionResult result{setup_->makeHistogram(), setup_->makeHistogram(),
                         setup_->makeHistogram(), StageTimes{}, StageTimes{},
                         0.0,        DeviceStats{}, 0,
                         0,          std::nullopt,  std::nullopt};
  std::vector<StageTimes> rankTimes(static_cast<std::size_t>(nRanks));
  std::vector<std::size_t> rankMaxIntersections(
      static_cast<std::size_t>(nRanks), 0);
  std::vector<std::size_t> rankEvents(static_cast<std::size_t>(nRanks), 0);

  comm::World::run(nRanks, [&](comm::Communicator& communicator) {
    RankState state{setup_->makeHistogram(), setup_->makeHistogram(),
                    std::nullopt, StageTimes{}, 0, 0};
    if (config_.trackErrors) {
      state.signalErrorSq = setup_->makeHistogram();
    }
    const auto rank = static_cast<std::size_t>(communicator.rank());

    reduceRank(communicator, *activeSource, nFiles, seed, state);
    rankTimes[rank] = std::move(state.times);
    rankMaxIntersections[rank] = state.maxIntersections;
    rankEvents[rank] = state.events;

    // MPI_Reduce of the histograms onto rank 0 (Algorithm 1's final
    // step); deterministic rank-ordered summation inside minimpi.
    communicator.reduceSum(state.signal.data(), /*root=*/0);
    communicator.reduceSum(state.normalization.data(), /*root=*/0);
    if (state.signalErrorSq) {
      communicator.reduceSum(state.signalErrorSq->data(), /*root=*/0);
    }
    if (communicator.rank() == 0) {
      result.signal = std::move(state.signal);
      result.normalization = std::move(state.normalization);
      result.signalErrorSq = std::move(state.signalErrorSq);
    }
  });

  // A cancelled reduction surfaces as an exception, never as a result:
  // every rank has stopped after its current file and joined the
  // collectives above, so nothing deadlocks, and the partially
  // accumulated histograms die with this scope.
  if (config_.hooks.cancel != nullptr &&
      config_.hooks.cancel->load(std::memory_order_relaxed)) {
    throw Cancelled("reduction cancelled between runs");
  }

  for (int rank = 0; rank < nRanks; ++rank) {
    const auto r = static_cast<std::size_t>(rank);
    result.times.mergeMax(rankTimes[r]);
    result.timesSummed.merge(rankTimes[r]);
    result.maxIntersectionsEstimate =
        std::max(result.maxIntersectionsEstimate, rankMaxIntersections[r]);
    result.eventsProcessed += rankEvents[r];
  }
  if (seed != nullptr) {
    result.eventsProcessed += seed->eventsAlreadyProcessed;
  }

  if (result.signalErrorSq) {
    HistogramRatio ratio = Histogram3D::divideWithErrors(
        result.signal, *result.signalErrorSq, result.normalization);
    result.crossSection = std::move(ratio.value);
    result.crossSectionErrorSq = std::move(ratio.errorSq);
  } else {
    result.crossSection =
        Histogram3D::divide(result.signal, result.normalization);
  }

  const DeviceStats statsAfter = DeviceSim::global().stats();
  result.deviceStats.kernelLaunches =
      statsAfter.kernelLaunches - statsBefore.kernelLaunches;
  result.deviceStats.blocksExecuted =
      statsAfter.blocksExecuted - statsBefore.blocksExecuted;
  result.deviceStats.bytesAllocated =
      statsAfter.bytesAllocated - statsBefore.bytesAllocated;
  result.deviceStats.bytesFreed = statsAfter.bytesFreed - statsBefore.bytesFreed;
  result.deviceStats.bytesH2D = statsAfter.bytesH2D - statsBefore.bytesH2D;
  result.deviceStats.bytesD2H = statsAfter.bytesD2H - statsBefore.bytesD2H;
  result.deviceStats.jitCompilations =
      statsAfter.jitCompilations - statsBefore.jitCompilations;
  result.deviceStats.jitSeconds =
      statsAfter.jitSeconds - statsBefore.jitSeconds;
  result.wallSeconds = wallTimer.seconds();
  return result;
}

/// Per-rank execution context: the staged run-invariant tables, the
/// grid views the kernels write, and the overlap-engine state.  One
/// instance lives for the duration of one rank's file loop.
struct ReductionPipeline::RankContext {
  const ReductionPipeline& pipeline;
  const ExperimentSetup& setup;
  const ReductionConfig& config;
  RankState& state;
  const bool onDevice;
  const bool trackErrors;
  const Executor executor;
  DeviceSim& device;

  // Run-invariant tables: detector geometry, flux, and the BinMD
  // transform set (no goniometer dependency — hoisted out of the file
  // loop, unlike the per-run MDNorm transforms).
  FluxTableView fluxView;
  std::vector<M33> binTransforms;
  std::vector<std::uint32_t> activeDetectors;
  DeviceArray<V3> dQDirections;
  DeviceArray<double> dSolidAngles;
  DeviceArray<double> dFlux;
  DeviceArray<double> dSignalBins;
  DeviceArray<double> dNormBins;
  DeviceArray<double> dErrorBins;
  DeviceArray<M33> dBinTransforms;
  DeviceArray<std::uint32_t> dActiveDetectors;
  std::span<const V3> kernelQDirections;
  std::span<const double> kernelSolidAngles;
  std::span<const M33> kernelBinTransforms;
  std::span<const std::uint32_t> kernelActiveDetectors;
  /// Every pixel masked: no normalization accumulates at all, so the
  /// MDNorm launch (which would have zero real work items) is skipped.
  bool allDetectorsMasked = false;

  GridView signalGrid;
  GridView normGrid;
  GridView errorGrid;

  // Full-overlap sibling state: BinMD runs on its own executor so the
  // two kernels overlap instead of serializing on the global pool's
  // region lock.  The sibling pool deliberately has the SAME width as
  // the primary (oversubscription, not partitioning): the chunk→worker
  // mapping and the privatized-replica merge order depend on the pool
  // width, so equal widths are what keep the overlapped path
  // bit-identical to the sequential one.
  std::optional<ThreadPool> siblingPool;
  std::optional<Executor> siblingExecutor;

  /// True when the rank state was pre-loaded with a ReductionSeed's
  /// accumulators: stageInvariants() then uploads them to the device
  /// histograms instead of zero-filling.
  bool seeded = false;

  RankContext(const ReductionPipeline& owner, RankState& rankState)
      : pipeline(owner), setup(*owner.setup_), config(owner.config_),
        state(rankState),
        onDevice(owner.config_.backend == Backend::DeviceSim),
        trackErrors(rankState.signalErrorSq.has_value()),
        executor(owner.config_.backend), device(DeviceSim::global()),
        fluxView(setup.flux().view()),
        kernelQDirections(setup.instrument().qLabDirections()),
        kernelSolidAngles(setup.instrument().solidAngles()),
        signalGrid(rankState.signal.gridView()),
        normGrid(rankState.normalization.gridView()) {
    if (trackErrors) {
      errorGrid = state.signalErrorSq->gridView();
    }
  }

  /// MDNorm ∥ BinMD applies on the host backends; DeviceSim has no
  /// concurrent streams (the block executors are its parallelism), so
  /// Full degrades to Prefetch there.
  bool concurrentKernels() const noexcept {
    return config.overlap.mode == OverlapMode::Full && !onDevice;
  }

  void prepareSiblings() {
    if (!concurrentKernels()) {
      return;
    }
    if (config.backend == Backend::ThreadPool) {
      siblingPool.emplace(executor.pool().size());
      siblingExecutor.emplace(Backend::ThreadPool, *siblingPool, device);
    } else {
      // Serial executes inline on the sibling scheduler thread; OpenMP
      // teams are per-invoking-thread already.
      siblingExecutor.emplace(config.backend);
    }
  }

  /// Stage everything that does not change across files.
  void stageInvariants(StageTimes& times) {
    binTransforms = binMdTransforms(setup.projection(), setup.lattice(),
                                    setup.symmetryMatrices());
    kernelBinTransforms = binTransforms;
    // Compact the detector mask once per reduction: MDNorm then
    // launches over ops × |active| with a table lookup instead of
    // burning a work item (and a branch) on every masked pixel.
    if (const DetectorMask* mask = setup.detectorMask()) {
      const std::span<const std::uint8_t> flags = mask->flags();
      activeDetectors.reserve(flags.size() - mask->maskedCount());
      for (std::size_t detector = 0; detector < flags.size(); ++detector) {
        if (flags[detector] == 0) {
          activeDetectors.push_back(static_cast<std::uint32_t>(detector));
        }
      }
      kernelActiveDetectors = activeDetectors;
      allDetectorsMasked = activeDetectors.empty();
    }
    if (!onDevice) {
      return;
    }
    ScopedStage stage(times, "H2D staging");
    dQDirections = DeviceArray<V3>(device, kernelQDirections);
    dSolidAngles = DeviceArray<double>(device, kernelSolidAngles);
    dFlux = DeviceArray<double>(device, setup.flux().table());
    dBinTransforms = DeviceArray<M33>(device, binTransforms);
    if (!activeDetectors.empty()) {
      dActiveDetectors = DeviceArray<std::uint32_t>(
          device, std::span<const std::uint32_t>(activeDetectors));
      kernelActiveDetectors = std::span<const std::uint32_t>(
          dActiveDetectors.deviceData(), dActiveDetectors.size());
    }
    fluxView.cumulative = dFlux.deviceData();
    kernelQDirections =
        std::span<const V3>(dQDirections.deviceData(), dQDirections.size());
    kernelSolidAngles = std::span<const double>(dSolidAngles.deviceData(),
                                                dSolidAngles.size());
    kernelBinTransforms = std::span<const M33>(dBinTransforms.deviceData(),
                                               dBinTransforms.size());
    // Device-resident histograms for the whole file loop; a seeded run
    // stages the previous accumulators instead of zeros, so the device
    // continues exactly where the cached host sums left off.
    if (seeded) {
      dSignalBins = DeviceArray<double>(
          device, std::span<const double>(state.signal.data()));
      dNormBins = DeviceArray<double>(
          device, std::span<const double>(state.normalization.data()));
    } else {
      dSignalBins = DeviceArray<double>(device, state.signal.size());
      dNormBins = DeviceArray<double>(device, state.normalization.size());
      fillOnDevice(dSignalBins, 0.0);
      fillOnDevice(dNormBins, 0.0);
    }
    signalGrid = state.signal.gridView(dSignalBins.deviceData());
    normGrid = state.normalization.gridView(dNormBins.deviceData());
    if (trackErrors) {
      if (seeded) {
        dErrorBins = DeviceArray<double>(
            device, std::span<const double>(state.signalErrorSq->data()));
      } else {
        dErrorBins = DeviceArray<double>(device, state.signal.size());
        fillOnDevice(dErrorBins, 0.0);
      }
      errorGrid = state.signalErrorSq->gridView(dErrorBins.deviceData());
    }
  }

  /// One run's kernel inputs plus the staging that keeps them alive.
  /// The event columns stay owned by the RunFileContent, which the
  /// caller keeps alive while the kernels run.
  struct StagedRun {
    std::vector<M33> normTransforms;
    DeviceArray<M33> dNormTransforms;
    DeviceArray<double> dQx, dQy, dQz, dSignal, dErrorSq;
    DeviceArray<V3> dTrajectories;
    MDNormInputs normInputs;
    BinMDInputs binInputs;
  };

  StagedRun stageRun(const RunFileContent& content, StageTimes& times) {
    StagedRun staged;
    const RunInfo& run = content.run;
    staged.normTransforms =
        mdNormTransforms(setup.projection(), setup.lattice(),
                         setup.symmetryMatrices(), run.goniometerR);

    const std::span<const double> qx = content.events.column(EventTable::Qx);
    const std::span<const double> qy = content.events.column(EventTable::Qy);
    const std::span<const double> qz = content.events.column(EventTable::Qz);
    const std::span<const double> signal =
        content.events.column(EventTable::Signal);
    const std::span<const double> errorSq =
        content.events.column(EventTable::ErrorSq);

    staged.normInputs.qLabDirections = kernelQDirections;
    staged.normInputs.solidAngles = kernelSolidAngles;
    staged.normInputs.activeDetectors = kernelActiveDetectors;
    staged.normInputs.flux = fluxView;
    staged.normInputs.protonCharge = run.protonCharge;
    staged.normInputs.kMin = run.kMin;
    staged.normInputs.kMax = run.kMax;

    staged.binInputs.transforms = kernelBinTransforms;
    staged.binInputs.nEvents = content.events.size();

    if (onDevice) {
      ScopedStage stage(times, "H2D staging");
      staged.dNormTransforms = DeviceArray<M33>(device, staged.normTransforms);
      staged.dQx = DeviceArray<double>(device, qx);
      staged.dQy = DeviceArray<double>(device, qy);
      staged.dQz = DeviceArray<double>(device, qz);
      staged.dSignal = DeviceArray<double>(device, signal);
      staged.normInputs.transforms = std::span<const M33>(
          staged.dNormTransforms.deviceData(), staged.dNormTransforms.size());
      staged.binInputs.qx = staged.dQx.deviceData();
      staged.binInputs.qy = staged.dQy.deviceData();
      staged.binInputs.qz = staged.dQz.deviceData();
      staged.binInputs.signal = staged.dSignal.deviceData();
      if (trackErrors) {
        staged.dErrorSq = DeviceArray<double>(device, errorSq);
        staged.binInputs.errorSq = staged.dErrorSq.deviceData();
      }
    } else {
      staged.normInputs.transforms = staged.normTransforms;
      staged.binInputs.qx = qx.data();
      staged.binInputs.qy = qy.data();
      staged.binInputs.qz = qz.data();
      staged.binInputs.signal = signal.data();
      staged.binInputs.errorSq = errorSq.data();
    }
    return staged;
  }

  /// MiniVATES.jl's extra sizing kernel — fused and cached.  The fused
  /// pass computes the op × detector trajectory table once and hands it
  /// to both estimateMaxIntersections and this file's runMDNorm, so the
  /// transform work is not done three times; the cache means later
  /// files (and other ranks) skip the pre-pass entirely, because the
  /// estimate is only reported / used for capacity and the momentum
  /// band it bounds is the same run-synthesis policy for every file.
  void runPrePass(StagedRun& staged, StageTimes& times) {
    if (!onDevice || !config.deviceIntersectionPrePass ||
        config.mdnorm.traversal == Traversal::Dda || allDetectorsMasked ||
        config.skipNormalization) {
      // The Dda walk streams segments with O(1) state — there is no
      // intersection buffer to size, so the sizing kernel (and its
      // launch on the per-reduction critical path) disappears.
      return;
    }
    IntersectionEstimateCache& cache = pipeline.intersectionCache_;
    std::lock_guard<std::mutex> lock(cache.mutex);
    if (!cache.valid) {
      WallTimer prePassTimer;
      const std::size_t nTrajectories =
          staged.normInputs.transforms.size() * kernelQDirections.size();
      staged.dTrajectories = DeviceArray<V3>(device, nTrajectories);
      computeTrajectories(executor, staged.normInputs.transforms,
                          kernelQDirections, staged.dTrajectories.deviceData());
      staged.normInputs.trajectories = std::span<const V3>(
          staged.dTrajectories.deviceData(), nTrajectories);
      cache.estimate = estimateMaxIntersections(
          executor, staged.normInputs, normGrid, config.mdnorm.search);
      cache.valid = true;
      times.add("MDNorm pre-pass", prePassTimer.seconds());
    }
    state.maxIntersections =
        std::max(state.maxIntersections, cache.estimate);
  }

  /// The sequential kernel order: MDNorm then BinMD, both on the
  /// primary executor.
  void computeRun(const StagedRun& staged, StageTimes& times) const {
    if (!allDetectorsMasked && !config.skipNormalization) {
      ScopedStage stage(times, "MDNorm");
      runMDNorm(executor, staged.normInputs, normGrid, config.mdnorm);
    }
    {
      ScopedStage stage(times, "BinMD");
      if (trackErrors) {
        runBinMD(executor, staged.binInputs, signalGrid, errorGrid,
                 config.binmdAccumulate, config.mdnorm.simd);
      } else {
        runBinMD(executor, staged.binInputs, signalGrid,
                 config.binmdAccumulate, config.mdnorm.simd);
      }
    }
  }

  /// Full overlap: MDNorm and BinMD write disjoint grids, so they run
  /// as sibling tasks on a two-worker scheduler — MDNorm on the primary
  /// executor, BinMD on the equal-width sibling.  Each grid still sees
  /// exactly the accumulation order of the sequential path.  Stage
  /// times are recorded on the thread that ran the kernel and merged
  /// under the shared sink's mutex.
  void computeConcurrent(const StagedRun& staged,
                         SharedStageTimes& shared) const {
    const wf::Scheduler scheduler(2);
    scheduler.runSiblings(
        {{"MDNorm",
          [&] {
            if (allDetectorsMasked || config.skipNormalization) {
              return;
            }
            ScopedSharedStage stage(shared, "MDNorm");
            runMDNorm(executor, staged.normInputs, normGrid, config.mdnorm);
          }},
         {"BinMD", [&] {
            ScopedSharedStage stage(shared, "BinMD");
            if (trackErrors) {
              runBinMD(*siblingExecutor, staged.binInputs, signalGrid,
                       errorGrid, config.binmdAccumulate, config.mdnorm.simd);
            } else {
              runBinMD(*siblingExecutor, staged.binInputs, signalGrid,
                       config.binmdAccumulate, config.mdnorm.simd);
            }
          }}});
  }

  void download(StageTimes& times) {
    if (!onDevice) {
      return;
    }
    ScopedStage stage(times, "D2H results");
    copyToHost(state.signal.data(), dSignalBins);
    copyToHost(state.normalization.data(), dNormBins);
    if (trackErrors) {
      copyToHost(state.signalErrorSq->data(), dErrorBins);
    }
  }
};

void ReductionPipeline::reduceRank(comm::Communicator& communicator,
                                   const RunSource& source,
                                   std::size_t nFiles,
                                   const ReductionSeed* seed,
                                   RankState& state) const {
  StageTimes& outTimes = state.times;
  // Seed the accumulators *before* building the context: the context's
  // grid views alias the histogram buffers, and copy-assigning a
  // histogram replaces its buffer.  With ranks == 1 (enforced for
  // seeded runs) rank 0 both holds the seed and reduces the delta
  // range [filesAlreadyReduced, nFiles) in file order — the exact
  // continuation of the from-scratch accumulation order.
  std::size_t firstFile = 0;
  bool seeded = false;
  if (seed != nullptr) {
    firstFile = seed->filesAlreadyReduced;
    if (communicator.rank() == 0) {
      state.signal = *seed->signal;
      state.normalization = *seed->normalization;
      if (state.signalErrorSq) {
        *state.signalErrorSq = *seed->signalErrorSq;
      }
      seeded = true;
    }
  }
  const auto delta = communicator.blockRange(nFiles - firstFile);
  const auto range = decltype(delta){firstFile + delta.begin,
                                     firstFile + delta.end};

  RankContext context(*this, state);
  context.seeded = seeded;
  context.stageInvariants(outTimes);
  context.prepareSiblings();

  // Cooperative cancellation: polled between files only, so a set flag
  // stops the rank after its current file finishes.  The rank still
  // reaches the collectives (no deadlock); reduceAll() then throws
  // Cancelled instead of returning partial sums.
  const std::atomic<bool>* cancelFlag = config_.hooks.cancel;
  const auto cancelRequested = [cancelFlag] {
    return cancelFlag != nullptr &&
           cancelFlag->load(std::memory_order_relaxed);
  };
  // Each completed file's stage times are merged into the rank totals
  // and, when a live observer is attached, into its shared sink — so a
  // status query mid-reduction sees per-stage progress so far.
  const auto publishFile = [this, &outTimes](StageTimes& fileTimes) {
    outTimes.merge(fileTimes);
    if (config_.hooks.progress != nullptr) {
      config_.hooks.progress->merge(fileTimes);
    }
    if (config_.hooks.filesCompleted != nullptr) {
      config_.hooks.filesCompleted->fetch_add(1, std::memory_order_relaxed);
    }
  };

  if (config_.overlap.mode == OverlapMode::Off) {
    for (std::size_t fileIndex = range.begin; fileIndex < range.end;
         ++fileIndex) {
      if (cancelRequested()) {
        break;
      }
      StageTimes fileTimes;
      // -- LOAD events, rotations, charge (UpdateEvents [+ ConvertToMD]) --
      const RunFileContent content = source(fileIndex, fileTimes);
      state.events += content.events.size();
      RankContext::StagedRun staged = context.stageRun(content, fileTimes);
      context.runPrePass(staged, fileTimes);
      // -- MDNorm += MDNorm(geometry, flux); BinMD += BinMD(events) ------
      context.computeRun(staged, fileTimes);
      publishFile(fileTimes);
    }
  } else {
    // Overlapped engine: LOAD for file i+1 happens on the prefetch
    // thread while file i computes; items arrive strictly in file
    // order, so each grid's accumulation order matches the sequential
    // loop exactly.  Load-side stage times travel with each item and
    // are merged by the consumer.  On cancellation the loop just stops
    // consuming; the Prefetcher destructor wakes and joins the
    // producer without loading further files.
    struct LoadedRun {
      StageTimes times;
      std::optional<RunFileContent> content;
    };
    Prefetcher<LoadedRun> prefetcher(
        range.begin, range.end, config_.overlap.prefetchDepth,
        [&](std::size_t fileIndex) {
          LoadedRun loaded;
          loaded.content.emplace(source(fileIndex, loaded.times));
          return loaded;
        });
    const std::size_t nRuns = prefetcher.count();
    for (std::size_t i = 0; i < nRuns; ++i) {
      if (cancelRequested()) {
        break;
      }
      LoadedRun loaded = prefetcher.next();
      StageTimes fileTimes = std::move(loaded.times);
      state.events += loaded.content->events.size();
      RankContext::StagedRun staged =
          context.stageRun(*loaded.content, fileTimes);
      context.runPrePass(staged, fileTimes);
      if (context.concurrentKernels()) {
        // Concurrent siblings record on their own threads into a
        // per-file shared sink, folded back once both have joined.
        SharedStageTimes fileShared;
        context.computeConcurrent(staged, fileShared);
        fileTimes.merge(fileShared.take());
      } else {
        context.computeRun(staged, fileTimes);
      }
      publishFile(fileTimes);
    }
  }

  context.download(outTimes);
}

} // namespace vates::core
