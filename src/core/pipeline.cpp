#include "vates/core/pipeline.hpp"

#include "vates/kernels/binmd.hpp"
#include "vates/kernels/mdnorm.hpp"
#include "vates/kernels/transforms.hpp"
#include "vates/parallel/device_array.hpp"
#include "vates/support/error.hpp"
#include "vates/support/log.hpp"

#include <algorithm>

namespace vates::core {

ReductionPipeline::ReductionPipeline(const ExperimentSetup& setup,
                                     ReductionConfig config)
    : setup_(&setup), config_(config) {
  VATES_REQUIRE(config_.ranks >= 1, "need at least one rank");
  VATES_REQUIRE(backendAvailable(config_.backend),
                std::string("backend unavailable: ") +
                    backendName(config_.backend));
}

ReductionPipeline::RunSource ReductionPipeline::convertingSource(
    std::function<RawRunFileContent(std::size_t)> rawSource) const {
  // Conversion is a host-side stage (part of loading in the paper's
  // workflow); convertToMD itself downgrades a DeviceSim executor.
  const Executor executor(config_.backend);
  const Instrument* instrument = &setup_->instrument();
  const ConvertOptions options = config_.convert;
  return [rawSource = std::move(rawSource), executor, instrument,
          options](std::size_t fileIndex, StageTimes& times) {
    WallTimer loadTimer;
    RawRunFileContent raw = rawSource(fileIndex);
    times.add("UpdateEvents", loadTimer.seconds());

    WallTimer convertTimer;
    EventTable events = convertToMD(executor, *instrument, nullptr, raw.run,
                                    raw.events, options);
    times.add("ConvertToMD", convertTimer.seconds());
    return RunFileContent{raw.run, std::move(events)};
  };
}

ReductionResult ReductionPipeline::run() const {
  const EventGenerator generator = setup_->makeGenerator();
  if (config_.loadMode == LoadMode::RawTof) {
    const RunSource source =
        convertingSource([&generator](std::size_t fileIndex) {
          return RawRunFileContent{generator.runInfo(fileIndex),
                                   generator.generateRaw(fileIndex)};
        });
    return reduceAll(source, setup_->spec().nFiles);
  }
  const RunSource source = [&generator](std::size_t fileIndex,
                                        StageTimes& times) {
    WallTimer loadTimer;
    RunFileContent content{generator.runInfo(fileIndex),
                           generator.generate(fileIndex)};
    times.add("UpdateEvents", loadTimer.seconds());
    return content;
  };
  return reduceAll(source, setup_->spec().nFiles);
}

std::vector<std::string>
ReductionPipeline::writeRunFiles(const std::string& directory) const {
  const EventGenerator generator = setup_->makeGenerator();
  std::vector<std::string> paths;
  paths.reserve(setup_->spec().nFiles);
  for (std::size_t fileIndex = 0; fileIndex < setup_->spec().nFiles;
       ++fileIndex) {
    const std::string path =
        runFilePath(directory, setup_->spec().name, fileIndex);
    saveRunFile(path, generator.runInfo(fileIndex),
                generator.generate(fileIndex));
    paths.push_back(path);
  }
  return paths;
}

std::vector<std::string>
ReductionPipeline::writeRawRunFiles(const std::string& directory) const {
  const EventGenerator generator = setup_->makeGenerator();
  std::vector<std::string> paths;
  paths.reserve(setup_->spec().nFiles);
  for (std::size_t fileIndex = 0; fileIndex < setup_->spec().nFiles;
       ++fileIndex) {
    const std::string path =
        rawRunFilePath(directory, setup_->spec().name, fileIndex);
    saveRawRunFile(path, generator.runInfo(fileIndex),
                   generator.generateRaw(fileIndex));
    paths.push_back(path);
  }
  return paths;
}

ReductionResult
ReductionPipeline::runFromFiles(const std::vector<std::string>& paths) const {
  const RunSource source = [&paths](std::size_t fileIndex,
                                    StageTimes& times) {
    WallTimer loadTimer;
    RunFileContent content = loadRunFile(paths.at(fileIndex));
    times.add("UpdateEvents", loadTimer.seconds());
    return content;
  };
  return reduceAll(source, paths.size());
}

ReductionResult ReductionPipeline::runFromRawFiles(
    const std::vector<std::string>& paths) const {
  const RunSource source = convertingSource(
      [&paths](std::size_t fileIndex) {
        return loadRawRunFile(paths.at(fileIndex));
      });
  return reduceAll(source, paths.size());
}

ReductionResult ReductionPipeline::reduceAll(const RunSource& source,
                                             std::size_t nFiles) const {
  const int nRanks = config_.ranks;
  const DeviceStats statsBefore = DeviceSim::global().stats();

  // Shared result slots written by rank 0 / aggregated after the join.
  ReductionResult result{setup_->makeHistogram(), setup_->makeHistogram(),
                         setup_->makeHistogram(), StageTimes{}, DeviceStats{},
                         0, 0, std::nullopt, std::nullopt};
  std::vector<StageTimes> rankTimes(static_cast<std::size_t>(nRanks));
  std::vector<std::size_t> rankMaxIntersections(
      static_cast<std::size_t>(nRanks), 0);
  std::vector<std::size_t> rankEvents(static_cast<std::size_t>(nRanks), 0);

  comm::World::run(nRanks, [&](comm::Communicator& communicator) {
    RankState state{setup_->makeHistogram(), setup_->makeHistogram(),
                    std::nullopt, StageTimes{}, 0, 0};
    if (config_.trackErrors) {
      state.signalErrorSq = setup_->makeHistogram();
    }
    const auto rank = static_cast<std::size_t>(communicator.rank());

    reduceRank(communicator, source, nFiles, state);
    rankTimes[rank] = std::move(state.times);
    rankMaxIntersections[rank] = state.maxIntersections;
    rankEvents[rank] = state.events;

    // MPI_Reduce of the histograms onto rank 0 (Algorithm 1's final
    // step); deterministic rank-ordered summation inside minimpi.
    communicator.reduceSum(state.signal.data(), /*root=*/0);
    communicator.reduceSum(state.normalization.data(), /*root=*/0);
    if (state.signalErrorSq) {
      communicator.reduceSum(state.signalErrorSq->data(), /*root=*/0);
    }
    if (communicator.rank() == 0) {
      result.signal = std::move(state.signal);
      result.normalization = std::move(state.normalization);
      result.signalErrorSq = std::move(state.signalErrorSq);
    }
  });

  for (int rank = 0; rank < nRanks; ++rank) {
    const auto r = static_cast<std::size_t>(rank);
    result.times.mergeMax(rankTimes[r]);
    result.maxIntersectionsEstimate =
        std::max(result.maxIntersectionsEstimate, rankMaxIntersections[r]);
    result.eventsProcessed += rankEvents[r];
  }

  if (result.signalErrorSq) {
    HistogramRatio ratio = Histogram3D::divideWithErrors(
        result.signal, *result.signalErrorSq, result.normalization);
    result.crossSection = std::move(ratio.value);
    result.crossSectionErrorSq = std::move(ratio.errorSq);
  } else {
    result.crossSection =
        Histogram3D::divide(result.signal, result.normalization);
  }

  const DeviceStats statsAfter = DeviceSim::global().stats();
  result.deviceStats.kernelLaunches =
      statsAfter.kernelLaunches - statsBefore.kernelLaunches;
  result.deviceStats.blocksExecuted =
      statsAfter.blocksExecuted - statsBefore.blocksExecuted;
  result.deviceStats.bytesAllocated =
      statsAfter.bytesAllocated - statsBefore.bytesAllocated;
  result.deviceStats.bytesFreed = statsAfter.bytesFreed - statsBefore.bytesFreed;
  result.deviceStats.bytesH2D = statsAfter.bytesH2D - statsBefore.bytesH2D;
  result.deviceStats.bytesD2H = statsAfter.bytesD2H - statsBefore.bytesD2H;
  result.deviceStats.jitCompilations =
      statsAfter.jitCompilations - statsBefore.jitCompilations;
  result.deviceStats.jitSeconds =
      statsAfter.jitSeconds - statsBefore.jitSeconds;
  return result;
}

void ReductionPipeline::reduceRank(comm::Communicator& communicator,
                                   const RunSource& source,
                                   std::size_t nFiles,
                                   RankState& state) const {
  Histogram3D& outSignal = state.signal;
  Histogram3D& outNorm = state.normalization;
  StageTimes& outTimes = state.times;
  const bool trackErrors = state.signalErrorSq.has_value();
  const ExperimentSetup& setup = *setup_;
  const auto range = communicator.blockRange(nFiles);
  const bool onDevice = config_.backend == Backend::DeviceSim;
  const Executor executor(config_.backend);
  DeviceSim& device = DeviceSim::global();

  // Detector tables and the flux table are run-invariant: staged once.
  const std::span<const V3> qDirections = setup.instrument().qLabDirections();
  const std::span<const double> solidAngles = setup.instrument().solidAngles();
  FluxTableView fluxView = setup.flux().view();

  DeviceArray<V3> dQDirections;
  DeviceArray<double> dSolidAngles;
  DeviceArray<double> dFlux;
  DeviceArray<double> dSignalBins;
  DeviceArray<double> dNormBins;
  DeviceArray<double> dErrorBins;
  std::span<const V3> kernelQDirections = qDirections;
  std::span<const double> kernelSolidAngles = solidAngles;

  GridView signalGrid = outSignal.gridView();
  GridView normGrid = outNorm.gridView();
  GridView errorGrid;
  if (trackErrors) {
    errorGrid = state.signalErrorSq->gridView();
  }

  if (onDevice) {
    ScopedStage stage(outTimes, "H2D staging");
    dQDirections = DeviceArray<V3>(device, qDirections);
    dSolidAngles = DeviceArray<double>(device, solidAngles);
    dFlux = DeviceArray<double>(device, setup.flux().table());
    fluxView.cumulative = dFlux.deviceData();
    kernelQDirections =
        std::span<const V3>(dQDirections.deviceData(), dQDirections.size());
    kernelSolidAngles = std::span<const double>(dSolidAngles.deviceData(),
                                                dSolidAngles.size());
    // Device-resident histograms for the whole file loop.
    dSignalBins = DeviceArray<double>(device, outSignal.size());
    dNormBins = DeviceArray<double>(device, outNorm.size());
    fillOnDevice(dSignalBins, 0.0);
    fillOnDevice(dNormBins, 0.0);
    signalGrid = outSignal.gridView(dSignalBins.deviceData());
    normGrid = outNorm.gridView(dNormBins.deviceData());
    if (trackErrors) {
      dErrorBins = DeviceArray<double>(device, outSignal.size());
      fillOnDevice(dErrorBins, 0.0);
      errorGrid = state.signalErrorSq->gridView(dErrorBins.deviceData());
    }
  }

  for (std::size_t fileIndex = range.begin; fileIndex < range.end;
       ++fileIndex) {
    // -- LOAD events, rotations, charge (UpdateEvents [+ ConvertToMD]) --
    const RunFileContent content = source(fileIndex, outTimes);
    state.events += content.events.size();

    const RunInfo& run = content.run;
    const std::vector<M33> normTransforms =
        mdNormTransforms(setup.projection(), setup.lattice(),
                         setup.symmetryMatrices(), run.goniometerR);
    const std::vector<M33> binTransforms = binMdTransforms(
        setup.projection(), setup.lattice(), setup.symmetryMatrices());

    // Event columns and per-run transform tables (device staging).
    const std::span<const double> qx = content.events.column(EventTable::Qx);
    const std::span<const double> qy = content.events.column(EventTable::Qy);
    const std::span<const double> qz = content.events.column(EventTable::Qz);
    const std::span<const double> signal =
        content.events.column(EventTable::Signal);
    const std::span<const double> errorSq =
        content.events.column(EventTable::ErrorSq);

    DeviceArray<M33> dNormTransforms;
    DeviceArray<M33> dBinTransforms;
    DeviceArray<double> dQx, dQy, dQz, dSignal, dErrorSq;

    MDNormInputs normInputs;
    normInputs.qLabDirections = kernelQDirections;
    normInputs.solidAngles = kernelSolidAngles;
    normInputs.flux = fluxView;
    normInputs.protonCharge = run.protonCharge;
    normInputs.kMin = run.kMin;
    normInputs.kMax = run.kMax;

    BinMDInputs binInputs;
    binInputs.nEvents = content.events.size();

    if (onDevice) {
      ScopedStage stage(outTimes, "H2D staging");
      dNormTransforms = DeviceArray<M33>(device, normTransforms);
      dBinTransforms = DeviceArray<M33>(device, binTransforms);
      dQx = DeviceArray<double>(device, qx);
      dQy = DeviceArray<double>(device, qy);
      dQz = DeviceArray<double>(device, qz);
      dSignal = DeviceArray<double>(device, signal);
      normInputs.transforms = std::span<const M33>(
          dNormTransforms.deviceData(), dNormTransforms.size());
      binInputs.transforms = std::span<const M33>(dBinTransforms.deviceData(),
                                                  dBinTransforms.size());
      binInputs.qx = dQx.deviceData();
      binInputs.qy = dQy.deviceData();
      binInputs.qz = dQz.deviceData();
      binInputs.signal = dSignal.deviceData();
      if (trackErrors) {
        dErrorSq = DeviceArray<double>(device, errorSq);
        binInputs.errorSq = dErrorSq.deviceData();
      }
    } else {
      normInputs.transforms = normTransforms;
      binInputs.transforms = binTransforms;
      binInputs.qx = qx.data();
      binInputs.qy = qy.data();
      binInputs.qz = qz.data();
      binInputs.signal = signal.data();
      binInputs.errorSq = errorSq.data();
    }

    // -- MDNorm += MDNorm(geometry, flux) --------------------------------
    if (onDevice && config_.deviceIntersectionPrePass) {
      // MiniVATES.jl's extra sizing kernel, once per file.
      WallTimer prePassTimer;
      state.maxIntersections = std::max(
          state.maxIntersections,
          estimateMaxIntersections(executor, normInputs, normGrid,
                                   config_.mdnorm.search));
      outTimes.add("MDNorm pre-pass", prePassTimer.seconds());
    }
    {
      ScopedStage stage(outTimes, "MDNorm");
      runMDNorm(executor, normInputs, normGrid, config_.mdnorm);
    }

    // -- BinMD += BinMD(events) ------------------------------------------
    {
      ScopedStage stage(outTimes, "BinMD");
      if (trackErrors) {
        runBinMD(executor, binInputs, signalGrid, errorGrid);
      } else {
        runBinMD(executor, binInputs, signalGrid);
      }
    }
  }

  if (onDevice) {
    ScopedStage stage(outTimes, "D2H results");
    copyToHost(outSignal.data(), dSignalBins);
    copyToHost(outNorm.data(), dNormBins);
    if (trackErrors) {
      copyToHost(state.signalErrorSq->data(), dErrorBins);
    }
  }
}

} // namespace vates::core
