#include "vates/core/hardware_preset.hpp"

#include "vates/support/error.hpp"
#include "vates/support/strings.hpp"

#include <sstream>
#include <thread>

namespace vates::core {

HardwarePreset HardwarePreset::defiant() {
  HardwarePreset preset;
  preset.name = "defiant";
  preset.description =
      "Defiant (OLCF): 64-core AMD EPYC 7662 Rome, 4 MI100 32GB — simulated";
  preset.ranks = 8;
  preset.threadsPerRank = 8;
  preset.device.blockSize = 256;
  preset.device.jitCostMs = 60.0; // Julia-on-ROCm JIT was the slower of the two
  return preset;
}

HardwarePreset HardwarePreset::milan0() {
  HardwarePreset preset;
  preset.name = "milan0";
  preset.description =
      "Milan0 (ExCL): 2x32-core AMD EPYC 7513, 2 A100 80GB — simulated";
  preset.ranks = 8;
  preset.threadsPerRank = 8;
  preset.device.blockSize = 512;
  preset.device.jitCostMs = 35.0;
  return preset;
}

HardwarePreset HardwarePreset::bl12() {
  HardwarePreset preset;
  preset.name = "bl12";
  preset.description =
      "bl12-analysis2 (SNS): 16-core AMD EPYC 7343, shared analysis node — simulated";
  preset.ranks = 1;
  preset.threadsPerRank = 1; // the production workflow's effective shape
  preset.device.jitCostMs = 0.0;
  return preset;
}

HardwarePreset HardwarePreset::local() {
  HardwarePreset preset;
  preset.name = "local";
  const unsigned hw = std::thread::hardware_concurrency();
  preset.description = strfmt("local machine: %u hardware thread(s)",
                              hw == 0 ? 1u : hw);
  preset.ranks = 1;
  preset.threadsPerRank = 0;
  preset.device.jitCostMs = 40.0;
  return preset;
}

HardwarePreset HardwarePreset::byName(const std::string& name) {
  const std::string lower = toLower(trim(name));
  if (lower == "defiant") {
    return defiant();
  }
  if (lower == "milan0" || lower == "milan") {
    return milan0();
  }
  if (lower == "bl12" || lower == "bl12-analysis2" || lower == "sns") {
    return bl12();
  }
  if (lower == "local") {
    return local();
  }
  throw InvalidArgument("unknown hardware preset '" + name +
                        "' (defiant, milan0, bl12, local)");
}

std::string HardwarePreset::systemsOverview() const {
  std::ostringstream os;
  os << "System preset: " << name << '\n';
  os << "  " << description << '\n';
  os << "  ranks=" << ranks << " threads/rank="
     << (threadsPerRank == 0 ? std::string("auto")
                             : std::to_string(threadsPerRank))
     << " device(block=" << device.blockSize
     << ", jit=" << device.jitCostMs << "ms)\n";
  return os.str();
}

} // namespace vates::core
