#pragma once
/// \file report.hpp
/// Rendering of results in the shape of the paper's tables: one row per
/// stage (UpdateEvents / MDNorm / BinMD / MDNorm + BinMD / Total), one
/// column per configuration (e.g. "C++ Proxy (CPU)", "DeviceSim JIT",
/// "DeviceSim no JIT").

#include "vates/core/pipeline.hpp"
#include "vates/support/timer.hpp"

#include <string>
#include <vector>

namespace vates::core {

/// Builds a Tables III–VI style WCT matrix.
class WctTable {
public:
  explicit WctTable(std::string title);

  /// Append a configuration column from a pipeline result.
  void addColumn(const std::string& header, const ReductionResult& result);

  /// Append a column from raw stage times (e.g. the Garnet baseline).
  void addColumn(const std::string& header, const StageTimes& times);

  /// Render the fixed-width table.  Rows, in the paper's order:
  /// UpdateEvents, MDNorm, BinMD, MDNorm + BinMD, Total.  Columns that
  /// recorded extra stages (H2D staging, pre-pass, D2H) get additional
  /// rows between BinMD and the totals.  When any column carries an
  /// end-to-end wall time (addColumn from a ReductionResult), a final
  /// "Wall" row shows it — with the overlap engine the per-stage sums
  /// exceed the wall clock, and the gap is the overlap won.
  std::string render() const;

  /// Ratio helper for speedup lines: columnA.stage / columnB.stage.
  double ratio(std::size_t columnA, std::size_t columnB,
               const std::string& stage) const;

private:
  struct Column {
    std::string header;
    StageTimes times;
    double wall = -1.0; ///< end-to-end wall seconds; < 0 = not recorded
  };

  std::string title_;
  std::vector<Column> columns_;
};

/// One-line speedup statement, e.g. "MDNorm: devicesim 12.3x faster than
/// baseline" (guards against zero denominators).
std::string speedupLine(const std::string& stage, const std::string& fast,
                        double fastSeconds, const std::string& slow,
                        double slowSeconds);

} // namespace vates::core
