#pragma once
/// \file workflow_reduction.hpp
/// Algorithm 1 expressed as a task workflow — the IRI-style alternative
/// to the rank-based ReductionPipeline.
///
/// Instead of assigning each in-process "MPI rank" a contiguous block
/// of files, the reduction is decomposed into a dependency graph:
///
///   load[i] ──► binmd[i] ─┐
///   mdnorm[i] ────────────┼──► cross_section
///                         ┘
///
/// MDNorm tasks depend only on run metadata (goniometer + flux), so
/// they are immediately runnable; BinMD tasks wait for their file's
/// load.  Both accumulate into shared histograms with atomic adds, so
/// any interleaving is safe, and the terminal task performs the
/// division.  Task bodies execute serially (parallelism comes from the
/// scheduler's workers), which is the natural shape for a workflow
/// manager distributing stages over facility resources.

#include "vates/core/pipeline.hpp"
#include "vates/workflow/scheduler.hpp"

namespace vates::core {

struct WorkflowReductionResult {
  Histogram3D signal;
  Histogram3D normalization;
  Histogram3D crossSection;
  wf::WorkflowReport report; ///< per-task schedule and makespan
};

/// Build and execute the reduction workflow with \p workers concurrent
/// task executors.  Only config.loadMode, config.convert and
/// config.mdnorm are honored (backend/ranks belong to the pipeline
/// model; task bodies run serially by design).
WorkflowReductionResult
runWorkflowReduction(const ExperimentSetup& setup,
                     const ReductionConfig& config, unsigned workers);

} // namespace vates::core
