#pragma once
/// \file analysis.hpp
/// Post-reduction analysis operations on reduced data.
///
/// Two IRI-flavoured capabilities close the loop after Algorithm 1:
///
///  - **Merging partial reductions.**  Campaigns are measured in
///    segments (and, in the paper's integrated-facility vision, may be
///    reduced at different sites); because both the signal and the
///    normalization are additive, partial ReducedData sets combine by
///    summation followed by one final division — the same algebra as
///    Algorithm 1's MPI reduce, applied at the file level.
///
///  - **Background subtraction.**  Production MDNorm supports a
///    background workspace (empty-can / sample-free measurement)
///    reduced with the same machinery; its cross-section is scaled and
///    subtracted bin-wise from the sample's.

#include "vates/core/pipeline.hpp"
#include "vates/io/histogram_file.hpp"

#include <string>
#include <vector>

namespace vates::core {

/// Sum partial reductions and recompute the cross-section.  All parts
/// must share binning; throws InvalidArgument otherwise (or when empty).
ReducedData mergeReducedData(const std::vector<ReducedData>& parts);

/// Load nxlite reduced-data files (saveReducedData outputs) and merge.
ReducedData mergeReducedFiles(const std::vector<std::string>& paths);

/// sample − scale·background, bin-wise.  Bins uncovered (NaN) in either
/// input are NaN in the output; negative results are kept (they carry
/// statistical meaning near zero).
Histogram3D subtractBackground(const Histogram3D& sampleCrossSection,
                               const Histogram3D& backgroundCrossSection,
                               double scale = 1.0);

} // namespace vates::core
