#pragma once
/// \file pipeline.hpp
/// The cross-section reduction pipeline — Algorithm 1 of the paper,
/// implemented once over the portable execution layer.
///
///   start, end <- blockRange(rank, size)           (minimpi)
///   for each file in [start, end):
///     event_data <- LOAD events, rotations, charge  (UpdateEvents)
///     mdnorm     += MDNorm(geometry, flux)          (CPU/GPU kernel)
///     binmd      += BinMD(events)                   (CPU/GPU kernel)
///   cross_section <- Reduce(binmd) / Reduce(mdnorm) (minimpi reduce)
///
/// Two data sources mirror the paper's measurement modes: run()
/// synthesizes each file's events in memory, runFromFiles() loads them
/// from nxlite run files so UpdateEvents measures real file I/O plus
/// the row→column transpose.
///
/// On Backend::DeviceSim the pipeline stages detector tables, the flux
/// table, per-run transforms and event columns into device arrays,
/// keeps both histograms device-resident across the whole file loop,
/// optionally runs the paper's intersection-count pre-pass, and
/// downloads the histograms once at the end — the MiniVATES.jl
/// choreography.

#include "vates/comm/minimpi.hpp"
#include "vates/core/reduction_config.hpp"
#include "vates/events/experiment_setup.hpp"
#include "vates/io/event_file.hpp"
#include "vates/parallel/device_sim.hpp"
#include "vates/support/timer.hpp"

#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace vates::core {

struct ReductionResult {
  Histogram3D signal;        ///< BinMD numerator, reduced over ranks
  Histogram3D normalization; ///< MDNorm denominator, reduced over ranks
  Histogram3D crossSection;  ///< signal / normalization
  StageTimes times;          ///< critical path: per-stage max over ranks
  /// Per-stage sum over all ranks and overlapped threads — total CPU
  /// effort per stage.  With overlap enabled `times` (critical path)
  /// can be much smaller than `timesSummed`; their ratio is the
  /// achieved overlap.
  StageTimes timesSummed;
  /// End-to-end wall time of the whole reduction (all ranks), the
  /// honest number overlapped stage times must be compared against.
  double wallSeconds = 0.0;
  DeviceStats deviceStats;   ///< device counters for this execution
  std::size_t maxIntersectionsEstimate = 0; ///< pre-pass result (device)
  std::size_t eventsProcessed = 0;          ///< total events binned
  /// Populated when config.trackErrors: accumulated σ² of the signal
  /// and the propagated σ² of the cross-section.
  std::optional<Histogram3D> signalErrorSq;
  std::optional<Histogram3D> crossSectionErrorSq;
};

/// Seed state for an incremental (delta) reduction: the accumulators of
/// a previous reduction of the same plan over its first
/// `filesAlreadyReduced` files (typically loaded from the persistent
/// cache).  runIncremental() continues the file loop from there.
///
/// Bit-identity argument: per-file events come from
/// Xoshiro256(seed, fileIndex) — independent of the total file count —
/// and with ranks == 1 the single rank accumulates files strictly in
/// order, so seeding the histograms with the first N files' sums and
/// accumulating files [N, N+K) reproduces exactly the
/// (((0+f0)+f1)+...+f(N+K-1)) floating-point order of a from-scratch
/// run.  With ranks > 1 blockRange() re-partitions when the file count
/// changes, the per-rank orderings diverge, and the guarantee is lost —
/// which is why seeded runs require ranks == 1.
///
/// All pointers are non-owning and must outlive the runIncremental()
/// call; signal/normalization are required, signalErrorSq is required
/// exactly when config.trackErrors is set.
struct ReductionSeed {
  const Histogram3D* signal = nullptr;
  const Histogram3D* normalization = nullptr;
  const Histogram3D* signalErrorSq = nullptr;
  std::size_t filesAlreadyReduced = 0;
  std::size_t eventsAlreadyProcessed = 0;
};

class ReductionPipeline {
public:
  /// Borrow the setup (must outlive the pipeline).
  ReductionPipeline(const ExperimentSetup& setup, ReductionConfig config);

  const ReductionConfig& config() const noexcept { return config_; }

  /// Reduce with in-memory event synthesis (no disk).  Honors
  /// config().loadMode: with LoadMode::RawTof each file is synthesized
  /// as a raw TOF stream and pushed through ConvertToMD (its own stage
  /// row), exactly like reducing fresh DAQ output.
  ReductionResult run() const;

  /// Like run(), but seeded: continue a previous reduction's
  /// accumulators over the workload's remaining files
  /// [seed.filesAlreadyReduced, nFiles) and produce the final result —
  /// bit-for-bit what run() over all nFiles would return (see
  /// ReductionSeed).  Requires ranks == 1, !skipNormalization, and a
  /// seed whose histograms match the workload grid.
  ReductionResult runIncremental(const ReductionSeed& seed) const;

  /// Write every run of the workload to \p directory as nxlite files;
  /// returns the paths in run order.
  std::vector<std::string> writeRunFiles(const std::string& directory) const;

  /// Same, but raw NeXus-style event-mode files (per-field datasets).
  std::vector<std::string>
  writeRawRunFiles(const std::string& directory) const;

  /// Reduce from previously written run files (one per run, run order).
  ReductionResult runFromFiles(const std::vector<std::string>& paths) const;

  /// Reduce from raw run files: UpdateEvents measures the load,
  /// ConvertToMD the Q conversion.
  ReductionResult
  runFromRawFiles(const std::vector<std::string>& paths) const;

private:
  /// Data source: produce run \p fileIndex's metadata and events,
  /// recording its own stage timings (UpdateEvents, ConvertToMD, ...).
  using RunSource =
      std::function<RunFileContent(std::size_t fileIndex, StageTimes& times)>;

  /// Wrap a raw-event producer with the ConvertToMD stage.
  RunSource convertingSource(
      std::function<RawRunFileContent(std::size_t)> rawSource) const;

  /// Per-rank accumulation state.
  struct RankState {
    Histogram3D signal;
    Histogram3D normalization;
    std::optional<Histogram3D> signalErrorSq;
    StageTimes times;
    std::size_t maxIntersections = 0;
    std::size_t events = 0;
  };

  /// run() / runIncremental() share the generated-event entry path;
  /// \p seed may be null (a plain full reduction).
  ReductionResult reduceGenerated(const ReductionSeed* seed) const;

  ReductionResult reduceAll(const RunSource& source, std::size_t nFiles,
                            const ReductionSeed* seed = nullptr) const;
  void reduceRank(comm::Communicator& communicator, const RunSource& source,
                  std::size_t nFiles, const ReductionSeed* seed,
                  RankState& state) const;

  /// Per-rank execution context for one reduction (defined in the .cpp);
  /// owns the staged run-invariant tables and the overlap-engine state.
  struct RankContext;

  /// The intersection pre-pass estimate depends only on (grid, detector
  /// geometry, symmetry ops, momentum band policy) — all fixed for the
  /// lifetime of one pipeline — so it is computed at most once per
  /// reduction and reused for every subsequent file and rank.
  struct IntersectionEstimateCache {
    std::mutex mutex;
    bool valid = false;
    std::size_t estimate = 0;
  };

  const ExperimentSetup* setup_;
  ReductionConfig config_;
  mutable IntersectionEstimateCache intersectionCache_;
};

} // namespace vates::core
