#pragma once
/// \file plan.hpp
/// Reduction plans — scientist-editable configuration files driving a
/// whole reduction, the Garnet reduction-plan counterpart.
///
/// A plan has two sections:
///
///   [workload]
///   base = benzil-corelli        # or bixbyite-topaz, or custom
///   scale = 0.01                 # applied when base is a preset
///   files = 36                   # every WorkloadSpec field can be
///   events_per_file = 100000     # overridden key by key
///   point_group = -3
///   centering = P
///   lambda_min = 0.7
///   lambda_max = 2.9
///   bins = 603 603 1
///   extent_min = -7.5 -7.5 -0.1
///   extent_max = 7.5 7.5 0.1
///   projection_u = 1 1 0
///   ...
///
///   [reduction]
///   backend = devicesim
///   ranks = 4
///   load_mode = raw-tof          # or q-sample
///   plane_search = roi           # or linear
///   sort = keys                  # or structs
///   track_errors = true
///
/// Unknown keys are rejected (catching typos is the whole point of a
/// plan file).  saveReductionPlan() writes a plan that loadReductionPlan()
/// round-trips exactly.

#include "vates/core/reduction_config.hpp"
#include "vates/events/workload.hpp"
#include "vates/support/inifile.hpp"

#include <string>
#include <vector>

namespace vates::core {

struct ReductionPlan {
  WorkloadSpec workload;
  ReductionConfig config;
  /// Pre-recorded raw event files to reduce instead of synthesizing
  /// events from the workload seed — one path per run, run order, and
  /// the count must equal workload.files ([workload] event_files,
  /// whitespace-separated).  Relative paths are resolved against the
  /// plan file's own directory by loadReductionPlan(), so committed
  /// example plans run from any working directory.
  std::vector<std::string> eventFiles;
};

/// Build the plan from parsed INI content; throws InvalidArgument on
/// unknown sections/keys or malformed values.
ReductionPlan planFromIni(const IniFile& ini);

/// Render the plan into INI form.
IniFile planToIni(const ReductionPlan& plan);

/// File conveniences.  loadReductionPlan additionally resolves relative
/// [workload] event_files entries against the plan's parent directory.
ReductionPlan loadReductionPlan(const std::string& path);
void saveReductionPlan(const std::string& path, const ReductionPlan& plan);

} // namespace vates::core
