#pragma once
/// \file reduction_config.hpp
/// Configuration of one reduction pipeline execution.

#include "vates/core/hardware_preset.hpp"
#include "vates/kernels/convert_to_md.hpp"
#include "vates/kernels/mdnorm.hpp"
#include "vates/parallel/backend.hpp"

#include <string>

namespace vates::core {

/// Where each run's events come from.
///  - QSample: already-converted MDEventWorkspace tables (the form the
///    paper's proxies load — UpdateEvents is load + transpose).
///  - RawTof:  stage-(ii) DAQ events; the pipeline additionally runs
///    ConvertToMD per file (reported as its own stage).
enum class LoadMode : int { QSample = 0, RawTof = 1 };

struct ReductionConfig {
  /// Execution backend for both kernels.
  Backend backend = Backend::Serial;

  /// In-process "MPI" ranks distributing the outer loop over files.
  int ranks = 1;

  /// Event source form (see LoadMode).
  LoadMode loadMode = LoadMode::QSample;

  /// ConvertToMD options when loadMode == RawTof.
  ConvertOptions convert;

  /// Propagate event squared-errors: BinMD accumulates a σ² histogram
  /// and the result carries cross-section errors (Mantid semantics).
  bool trackErrors = false;

  /// MDNorm algorithm variants (ROI search + primitive-key sort are the
  /// proxies' defaults; flip for the Mantid-style ablations).
  MDNormOptions mdnorm;

  /// Run the paper's pre-allocation estimator kernel before MDNorm on
  /// the device backend (one extra launch per file, like MiniVATES.jl).
  bool deviceIntersectionPrePass = true;

  /// Construct from a hardware preset plus a backend choice.
  static ReductionConfig fromPreset(const HardwarePreset& preset,
                                    Backend backend);

  /// Render a one-line summary for logs and benchmark headers.
  std::string summary() const;
};

} // namespace vates::core
