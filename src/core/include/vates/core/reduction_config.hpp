#pragma once
/// \file reduction_config.hpp
/// Configuration of one reduction pipeline execution.

#include "vates/core/hardware_preset.hpp"
#include "vates/kernels/convert_to_md.hpp"
#include "vates/kernels/mdnorm.hpp"
#include "vates/parallel/backend.hpp"
#include "vates/support/timer.hpp"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace vates::core {

/// Where each run's events come from.
///  - QSample: already-converted MDEventWorkspace tables (the form the
///    paper's proxies load — UpdateEvents is load + transpose).
///  - RawTof:  stage-(ii) DAQ events; the pipeline additionally runs
///    ConvertToMD per file (reported as its own stage).
enum class LoadMode : int { QSample = 0, RawTof = 1 };

/// How much of the multi-run loop the pipeline overlaps.
///  - Off:      Algorithm 1 verbatim — load, MDNorm, BinMD strictly
///              sequential per file (the paper's measured mode).
///  - Prefetch: a dedicated background thread loads (and, in RawTof
///              mode, converts) file i+1 while file i computes, with
///              bounded-depth backpressure so memory stays flat.
///  - Full:     Prefetch plus concurrent MDNorm + BinMD for the current
///              file — the two kernels write disjoint grids
///              (normalization vs signal), so they run as parallel
///              sibling tasks.  On Backend::DeviceSim the kernels stay
///              sequential (a simulated device has no streams; its block
///              executors are the parallelism) and Full behaves like
///              Prefetch.
enum class OverlapMode : int { Off = 0, Prefetch = 1, Full = 2 };

/// "off", "prefetch", "full".
const char* overlapModeName(OverlapMode mode) noexcept;

/// Parse a mode name (case-insensitive, surrounding whitespace ignored;
/// accepts the names above plus the aliases "none", "sequential",
/// "load", and "concurrent").  Throws InvalidArgument for unknown names.
OverlapMode parseOverlapMode(const std::string& name);

/// Overlapped-execution knobs (see OverlapMode).
struct OverlapOptions {
  OverlapMode mode = OverlapMode::Off;
  /// Bound on fully loaded runs queued ahead of the consumer; 1 is
  /// classic double buffering (one run computing, one loaded and
  /// waiting, one loading).
  std::size_t prefetchDepth = 1;
};

/// Non-owning observation and control hooks a long-running caller (the
/// reduction service) threads into one pipeline execution.  All
/// pointers may be null; every pointee must outlive the run() call.
struct PipelineHooks {
  /// Cooperative cancellation: the pipeline polls this flag between
  /// runs (std::stop_token-style).  When it becomes true, every rank
  /// stops after its current file, the collectives still complete (so
  /// no rank deadlocks), and run() throws vates::Cancelled instead of
  /// returning — a cancelled reduction never exposes partial sums.
  const std::atomic<bool>* cancel = nullptr;

  /// Incremented once per fully computed file, across all ranks —
  /// live progress for job-status queries.
  std::atomic<std::size_t>* filesCompleted = nullptr;

  /// Live per-stage timing: each file's stage times are merged here as
  /// the file completes (in addition to the result's own totals), so a
  /// concurrent observer can report per-stage progress mid-reduction.
  SharedStageTimes* progress = nullptr;
};

/// Runtime autotuning of the execution configuration (see
/// core/autotune.hpp).  When enabled, the first file of the workload is
/// reduced once per candidate backend × traversal × accumulate × simd
/// combination into discarded scratch histograms; the fastest candidate
/// is then locked in for the job's real run.  Because the probe runs
/// never touch the job's accumulators, the tuned run is bitwise
/// identical to running the same plan with the chosen config pinned
/// manually — the oracle-gated guarantee tests/test_oracle_diff.cpp
/// enforces.  INI key: [reduction] autotune; the VATES_AUTOTUNE
/// environment variable ("on"/"off"), when set, overrides the plan at
/// service submission.
struct AutotuneOptions {
  bool enabled = false;
  /// Upper bound on sampled candidates (the roster is truncated, never
  /// reordered, so the bound keeps the probe deterministic).
  std::size_t maxCandidates = 16;
  /// Timed probe repetitions per candidate; the minimum is scored.
  std::size_t repeats = 1;
};

struct ReductionConfig {
  /// Execution backend for both kernels.
  Backend backend = Backend::Serial;

  /// In-process "MPI" ranks distributing the outer loop over files.
  int ranks = 1;

  /// Event source form (see LoadMode).
  LoadMode loadMode = LoadMode::QSample;

  /// ConvertToMD options when loadMode == RawTof.
  ConvertOptions convert;

  /// Propagate event squared-errors: BinMD accumulates a σ² histogram
  /// and the result carries cross-section errors (Mantid semantics).
  bool trackErrors = false;

  /// MDNorm algorithm variants (ROI search + sorted primitive keys are
  /// the proxies' defaults; `mdnorm.traversal` switches between the
  /// Legacy / SortedKeys / Dda segment-generation paths).  The
  /// VATES_TRAVERSAL environment variable ("legacy" / "sorted-keys" /
  /// "dda"), when set, overrides `mdnorm.traversal` at pipeline
  /// construction — same contract as VATES_OVERLAP below.
  MDNormOptions mdnorm;

  /// Histogram write path for BinMD's signal (and σ²) accumulation,
  /// independent of the MDNorm path in `mdnorm.accumulate`.
  AccumulateOptions binmdAccumulate;

  /// Run the paper's pre-allocation estimator kernel before MDNorm on
  /// the device backend.  MiniVATES.jl launches it once per file; here
  /// the estimate is cached per (grid, geometry) in the pipeline, so it
  /// runs at most once per reduction.  With Traversal::Dda there is no
  /// intersection buffer to size, so the pre-pass is skipped entirely
  /// regardless of this flag.
  bool deviceIntersectionPrePass = true;

  /// Overlapped execution of the multi-run loop.  The VATES_OVERLAP
  /// environment variable ("off" / "prefetch" / "full"), when set,
  /// overrides `overlap.mode` at pipeline construction so every
  /// existing bench and example can ablate without code changes.
  OverlapOptions overlap;

  /// Skip the MDNorm normalization pass entirely: the result's
  /// normalization histogram stays zero and the cross-section is
  /// all-NaN until the caller divides by a denominator it already has.
  /// This is the follower mode of the service's shared-grid batching —
  /// jobs whose normalization inputs match reuse one MDNorm pass, so
  /// only the per-job BinMD signal is computed here.  The signal is
  /// bit-identical to a full run's: skipping MDNorm changes no BinMD
  /// accumulation order.
  bool skipNormalization = false;

  /// Persistent normalization/partial-result cache directory shared by
  /// service workers (and, via VATES_CACHE_DIR, whole deployments).
  /// Empty disables the on-disk cache; the pipeline itself never reads
  /// it — the service resolves it (env > plan > service default) and
  /// does the cache lookups/stores around pipeline runs.  INI key:
  /// [reduction] cache_dir.
  std::string cacheDir;

  /// LRU byte budget of the cache directory (0: unbounded; the
  /// VATES_CACHE_BUDGET environment variable overrides).  INI key:
  /// [reduction] cache_budget_bytes.
  std::uint64_t cacheBudgetBytes = std::uint64_t{256} << 20;

  /// Opt into incremental delta reduction: with a cache directory
  /// configured, completed runs persist their accumulators, and a later
  /// plan that only *appends* event files re-reduces just the delta
  /// files seeded with the cached sums (bit-identical — see
  /// ReductionSeed; requires ranks == 1 to hold, other configurations
  /// fall back to the normalization cache or cold compute).  INI key:
  /// [reduction] incremental.
  bool incremental = false;

  /// First-file runtime autotuning of backend/traversal/accumulate/simd
  /// (see AutotuneOptions).
  AutotuneOptions autotune;

  /// Cancellation / progress observation hooks (see PipelineHooks).
  PipelineHooks hooks;

  /// Benchmarking model of file-arrival latency: at the facility, runs
  /// stream in from the parallel file system as the measurement
  /// proceeds, so LOAD blocks on more than local page cache.  When
  /// > 0, every file's load is preceded by this much blocking wait,
  /// reported as its own "File wait" stage.  The overlap engine hides
  /// this wait behind the previous file's compute; the sequential path
  /// pays it in full — which is exactly the ablation
  /// bench_ablation_pipeline measures.
  double simulatedLoadLatencySeconds = 0.0;

  /// Construct from a hardware preset plus a backend choice.
  static ReductionConfig fromPreset(const HardwarePreset& preset,
                                    Backend backend);

  /// Render a one-line summary for logs and benchmark headers.
  std::string summary() const;
};

} // namespace vates::core
