#pragma once
/// \file hardware_preset.hpp
/// Named configurations mirroring the paper's Table I systems.
///
/// The physical machines cannot be reproduced here; a preset captures
/// the *execution shape* each system gave the proxies — rank count,
/// threads per rank, and the device simulator's JIT latency — clamped
/// to whatever hardware actually runs this build.  Every benchmark
/// prints the preset it used, so EXPERIMENTS.md can relate measured
/// shapes to the paper's tables.

#include "vates/parallel/device_sim.hpp"

#include <string>

namespace vates::core {

struct HardwarePreset {
  std::string name;
  std::string description;   ///< the Table I characteristics line
  int ranks = 1;             ///< MPI processes in the paper's run line
  unsigned threadsPerRank = 0; ///< OpenMP threads per process (0 = auto)
  DeviceOptions device;      ///< simulator settings for the GPU column

  /// Presets from Table I.
  ///  - "defiant":  64-core EPYC 7662 + MI100; Benzil ran 8 ranks × 8
  ///    threads, Bixbyite 4 × 16.
  ///  - "milan0":   2×32-core EPYC 7513 + A100; same rank layouts, with
  ///    a faster device model (the paper found the A100's atomics far
  ///    ahead of the MI100's).
  ///  - "bl12":     16-core EPYC 7343 SNS analysis node (the Table II
  ///    baseline host); single rank, no device.
  ///  - "local":    whatever this machine offers; 1 rank.
  static HardwarePreset defiant();
  static HardwarePreset milan0();
  static HardwarePreset bl12();
  static HardwarePreset local();

  /// Lookup by name (case-insensitive); throws InvalidArgument.
  static HardwarePreset byName(const std::string& name);

  /// Table I-style block for benchmark headers.
  std::string systemsOverview() const;
};

} // namespace vates::core
