#pragma once
/// \file peak_search.hpp
/// Bragg-peak search on reduced cross-sections — the FindPeaksMD step
/// that follows reduction in the production workflow, and this
/// repository's end-to-end physics validation: peaks found in the
/// synthetic workloads must sit at the reciprocal-lattice nodes the
/// generator planted (integer HKL, minus the centering extinctions).

#include "vates/geometry/vec3.hpp"
#include "vates/histogram/histogram3d.hpp"

#include <cstddef>
#include <string>
#include <vector>

namespace vates::core {

struct Peak {
  V3 projected;    ///< position in histogram (projected) coordinates
  V3 hkl;          ///< position mapped back through the projection
  double intensity = 0.0;  ///< background-subtracted integral over the window
  double height = 0.0;     ///< peak bin's value
  std::size_t binIndex = 0;
};

struct PeakSearchOptions {
  /// A bin is a candidate when its value exceeds
  /// threshold × (median of finite bins).
  double thresholdOverMedian = 10.0;
  /// Half-width (in bins, per axis) of the local-maximum test and of
  /// the integration window.
  std::size_t window = 3;
  /// Keep at most this many peaks (strongest first).
  std::size_t maxPeaks = 100;
  /// Merge candidates closer than this many bins to an accepted peak.
  double minSeparationBins = 4.0;
};

/// Locate local maxima of \p crossSection (NaN bins ignored), integrate
/// each over the window with local-background subtraction, and return
/// them strongest-first.
std::vector<Peak> findPeaks(const Histogram3D& crossSection,
                            const PeakSearchOptions& options = {});

/// Render a short table of peaks (for examples and reports).
std::string peakTable(const std::vector<Peak>& peaks,
                      std::size_t maxRows = 15);

} // namespace vates::core
