#pragma once
/// \file vates.hpp
/// Umbrella header: the whole public API in one include.
///
///   #include <vates/vates.hpp>
///
/// Fine-grained headers remain available for compile-time-sensitive
/// consumers; this exists for examples, notebooks-style exploration,
/// and downstream quick starts.

// Support
#include "vates/support/cli.hpp"
#include "vates/support/error.hpp"
#include "vates/support/inifile.hpp"
#include "vates/support/log.hpp"
#include "vates/support/rng.hpp"
#include "vates/support/strings.hpp"
#include "vates/support/timer.hpp"

// Units and geometry
#include "vates/geometry/centering.hpp"
#include "vates/geometry/detector_mask.hpp"
#include "vates/geometry/goniometer.hpp"
#include "vates/geometry/instrument.hpp"
#include "vates/geometry/lattice.hpp"
#include "vates/geometry/mat3.hpp"
#include "vates/geometry/oriented_lattice.hpp"
#include "vates/geometry/symmetry.hpp"
#include "vates/geometry/vec3.hpp"
#include "vates/units/units.hpp"

// Portable execution + communication
#include "vates/comm/minimpi.hpp"
#include "vates/parallel/atomics.hpp"
#include "vates/parallel/backend.hpp"
#include "vates/parallel/device_array.hpp"
#include "vates/parallel/device_sim.hpp"
#include "vates/parallel/executor.hpp"
#include "vates/parallel/thread_pool.hpp"

// Data model
#include "vates/events/event_table.hpp"
#include "vates/events/experiment_setup.hpp"
#include "vates/events/generator.hpp"
#include "vates/events/md_box_tree.hpp"
#include "vates/events/raw_events.hpp"
#include "vates/events/workload.hpp"
#include "vates/flux/flux_spectrum.hpp"
#include "vates/histogram/binning.hpp"
#include "vates/histogram/grid_view.hpp"
#include "vates/histogram/histogram3d.hpp"

// Kernels
#include "vates/kernels/binmd.hpp"
#include "vates/kernels/comb_sort.hpp"
#include "vates/kernels/convert_to_md.hpp"
#include "vates/kernels/intersections.hpp"
#include "vates/kernels/mdnorm.hpp"
#include "vates/kernels/symmetrize.hpp"
#include "vates/kernels/transforms.hpp"

// I/O
#include "vates/io/crc32.hpp"
#include "vates/io/event_file.hpp"
#include "vates/io/grid_writers.hpp"
#include "vates/io/histogram_file.hpp"
#include "vates/io/nxlite.hpp"

// Pipelines and orchestration
#include "vates/baseline/garnet_workflow.hpp"
#include "vates/core/analysis.hpp"
#include "vates/core/peak_search.hpp"
#include "vates/core/hardware_preset.hpp"
#include "vates/core/pipeline.hpp"
#include "vates/core/plan.hpp"
#include "vates/core/reduction_config.hpp"
#include "vates/core/report.hpp"
#include "vates/core/workflow_reduction.hpp"
#include "vates/stream/daq_simulator.hpp"
#include "vates/stream/event_channel.hpp"
#include "vates/stream/live_reducer.hpp"
#include "vates/workflow/scheduler.hpp"
#include "vates/workflow/task_graph.hpp"
