#include "vates/core/analysis.hpp"

#include "vates/support/error.hpp"

#include <cmath>
#include <limits>

namespace vates::core {

ReducedData mergeReducedData(const std::vector<ReducedData>& parts) {
  VATES_REQUIRE(!parts.empty(), "nothing to merge");
  ReducedData merged{parts.front().signal.emptyLike(),
                     parts.front().normalization.emptyLike(),
                     parts.front().crossSection.emptyLike()};
  for (const ReducedData& part : parts) {
    VATES_REQUIRE(part.signal.sameShape(merged.signal) &&
                      part.normalization.sameShape(merged.normalization),
                  "partial reductions disagree in binning");
    merged.signal += part.signal;
    merged.normalization += part.normalization;
  }
  merged.crossSection =
      Histogram3D::divide(merged.signal, merged.normalization);
  return merged;
}

ReducedData mergeReducedFiles(const std::vector<std::string>& paths) {
  VATES_REQUIRE(!paths.empty(), "nothing to merge");
  std::vector<ReducedData> parts;
  parts.reserve(paths.size());
  for (const std::string& path : paths) {
    parts.push_back(loadReducedData(path));
  }
  return mergeReducedData(parts);
}

Histogram3D subtractBackground(const Histogram3D& sampleCrossSection,
                               const Histogram3D& backgroundCrossSection,
                               double scale) {
  VATES_REQUIRE(sampleCrossSection.sameShape(backgroundCrossSection),
                "sample and background binning disagree");
  Histogram3D out = sampleCrossSection.emptyLike();
  const auto sample = sampleCrossSection.data();
  const auto background = backgroundCrossSection.data();
  auto result = out.data();
  for (std::size_t i = 0; i < result.size(); ++i) {
    const double s = sample[i];
    const double b = background[i];
    result[i] = (std::isfinite(s) && std::isfinite(b))
                    ? s - scale * b
                    : std::numeric_limits<double>::quiet_NaN();
  }
  return out;
}

} // namespace vates::core
