#include "vates/histogram/histogram3d.hpp"

#include "vates/support/error.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace vates {

Histogram3D::Histogram3D(BinAxis x, BinAxis y, BinAxis z, Projection projection)
    : xAxis_(std::move(x)), yAxis_(std::move(y)), zAxis_(std::move(z)),
      projection_(projection), nx_(xAxis_.nBins()), ny_(yAxis_.nBins()),
      nz_(zAxis_.nBins()), signal_(nx_ * ny_ * nz_, 0.0) {}

const BinAxis& Histogram3D::axis(std::size_t dim) const {
  VATES_REQUIRE(dim < 3, "axis index out of range");
  return dim == 0 ? xAxis_ : (dim == 1 ? yAxis_ : zAxis_);
}

double Histogram3D::totalSignal() const noexcept {
  double sum = 0.0;
  for (double value : signal_) {
    sum += value;
  }
  return sum;
}

std::size_t Histogram3D::nonZeroBins() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(signal_.begin(), signal_.end(),
                    [](double v) { return v != 0.0; }));
}

void Histogram3D::fill(double value) noexcept {
  std::fill(signal_.begin(), signal_.end(), value);
}

bool Histogram3D::sameShape(const Histogram3D& other) const noexcept {
  return xAxis_ == other.xAxis_ && yAxis_ == other.yAxis_ &&
         zAxis_ == other.zAxis_;
}

Histogram3D& Histogram3D::operator+=(const Histogram3D& other) {
  VATES_REQUIRE(sameShape(other), "histogram shapes differ");
  for (std::size_t i = 0; i < signal_.size(); ++i) {
    signal_[i] += other.signal_[i];
  }
  return *this;
}

Histogram3D Histogram3D::divide(const Histogram3D& numerator,
                                const Histogram3D& denominator,
                                double epsilon) {
  VATES_REQUIRE(numerator.sameShape(denominator), "histogram shapes differ");
  Histogram3D out = numerator.emptyLike();
  for (std::size_t i = 0; i < out.signal_.size(); ++i) {
    const double denom = denominator.signal_[i];
    out.signal_[i] = std::fabs(denom) > epsilon
                         ? numerator.signal_[i] / denom
                         : std::numeric_limits<double>::quiet_NaN();
  }
  return out;
}

HistogramRatio Histogram3D::divideWithErrors(
    const Histogram3D& numerator, const Histogram3D& numeratorErrorSq,
    const Histogram3D& denominator, double epsilon) {
  VATES_REQUIRE(numerator.sameShape(denominator) &&
                    numerator.sameShape(numeratorErrorSq),
                "histogram shapes differ");
  HistogramRatio out{numerator.emptyLike(), numerator.emptyLike()};
  for (std::size_t i = 0; i < numerator.signal_.size(); ++i) {
    const double denom = denominator.signal_[i];
    if (std::fabs(denom) > epsilon) {
      out.value.signal_[i] = numerator.signal_[i] / denom;
      out.errorSq.signal_[i] = numeratorErrorSq.signal_[i] / (denom * denom);
    } else {
      out.value.signal_[i] = std::numeric_limits<double>::quiet_NaN();
      out.errorSq.signal_[i] = std::numeric_limits<double>::quiet_NaN();
    }
  }
  return out;
}

Histogram3D Histogram3D::emptyLike() const {
  return Histogram3D(xAxis_, yAxis_, zAxis_, projection_);
}

GridView Histogram3D::gridView(double* externalData) noexcept {
  GridView view = gridShape();
  view.data = externalData != nullptr ? externalData : signal_.data();
  return view;
}

GridView Histogram3D::gridShape() const noexcept {
  GridView view;
  const BinAxis* axes[3] = {&xAxis_, &yAxis_, &zAxis_};
  for (std::size_t a = 0; a < 3; ++a) {
    view.min[a] = axes[a]->min();
    view.max[a] = axes[a]->max();
    view.inverseWidth[a] = 1.0 / axes[a]->width();
    view.n[a] = axes[a]->nBins();
  }
  view.data = nullptr;
  return view;
}

} // namespace vates
