#include "vates/histogram/binning.hpp"

#include "vates/support/error.hpp"
#include "vates/support/strings.hpp"

namespace vates {

BinAxis::BinAxis(std::string name, double min, double max, std::size_t nBins)
    : name_(std::move(name)), min_(min), max_(max), nBins_(nBins) {
  VATES_REQUIRE(nBins >= 1, "axis needs at least one bin");
  VATES_REQUIRE(max > min, "axis needs max > min");
  width_ = (max_ - min_) / static_cast<double>(nBins_);
  inverseWidth_ = 1.0 / width_;
}

std::vector<double> BinAxis::edges() const {
  std::vector<double> out(nBins_ + 1);
  for (std::size_t i = 0; i <= nBins_; ++i) {
    out[i] = edge(i);
  }
  out[nBins_] = max_; // exact upper edge regardless of rounding
  return out;
}

Projection::Projection()
    : Projection(V3{1, 0, 0}, V3{0, 1, 0}, V3{0, 0, 1}) {}

Projection::Projection(const V3& u, const V3& v, const V3& w)
    : u_(u), v_(v), w_(w), forward_(M33::fromColumns(u, v, w)) {
  try {
    inverse_ = inverse(forward_);
  } catch (const NumericalError&) {
    throw InvalidArgument("projection vectors are coplanar");
  }
}

Projection Projection::benzilSlice() {
  return Projection(V3{1, 1, 0}, V3{1, -1, 0}, V3{0, 0, 1});
}

std::string Projection::axisLabel(std::size_t axis) const {
  VATES_REQUIRE(axis < 3, "axis index out of range");
  const V3& vector = axis == 0 ? u_ : (axis == 1 ? v_ : w_);
  // Paper-style labels: the variable letter is the HKL slot of the
  // vector's first non-zero component, so (1,1,0) -> "[H,H]",
  // (1,-1,0) -> "[H,-H]", (0,0,1) -> "[L]".
  const char letters[3] = {'H', 'K', 'L'};
  char letter = 'H';
  for (std::size_t i = 0; i < 3; ++i) {
    if (vector[i] != 0.0) {
      letter = letters[i];
      break;
    }
  }
  std::string label = "[";
  bool first = true;
  for (std::size_t i = 0; i < 3; ++i) {
    const double component = vector[i];
    if (component == 0.0) {
      continue;
    }
    if (!first) {
      label += ',';
    }
    if (component == 1.0) {
      label += letter;
    } else if (component == -1.0) {
      label += '-';
      label += letter;
    } else {
      label += strfmt("%g%c", component, letter);
    }
    first = false;
  }
  if (first) {
    label += '0';
  }
  label += ']';
  return label;
}

} // namespace vates
