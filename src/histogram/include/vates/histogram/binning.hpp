#pragma once
/// \file binning.hpp
/// Axis binning and reciprocal-space projections for MD histograms.
///
/// The paper's use-cases bin 2D slices: Benzil on ([H,H],[H,-H],[L]) with
/// (603,603,1) bins, Bixbyite on ([H],[K],[L]) with (601,601,1).  A
/// Projection maps Miller indices into histogram coordinates via the
/// inverse of the matrix whose columns are the projection vectors; with
/// a linear projection, detector trajectories remain straight lines in
/// histogram space, which is what makes the plane-intersection algorithm
/// of MDNorm valid in projected coordinates too.

#include "vates/geometry/mat3.hpp"
#include "vates/geometry/vec3.hpp"

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace vates {

/// One histogram axis: [min, max) divided into nBins equal bins.
class BinAxis {
public:
  BinAxis(std::string name, double min, double max, std::size_t nBins);

  const std::string& name() const noexcept { return name_; }
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  std::size_t nBins() const noexcept { return nBins_; }
  double width() const noexcept { return width_; }

  /// Bin index containing \p value, or nullopt when outside [min, max)
  /// (the negated comparison also rejects NaN).
  std::optional<std::size_t> bin(double value) const noexcept {
    if (!(value >= min_ && value < max_)) {
      return std::nullopt;
    }
    auto index = static_cast<std::size_t>((value - min_) * inverseWidth_);
    // Guard the max_-epsilon edge case where rounding lands on nBins.
    if (index >= nBins_) {
      index = nBins_ - 1;
    }
    return index;
  }

  /// Branch-light variant for kernels: returns nBins() for out-of-range
  /// (NaN included).
  std::size_t binClamped(double value) const noexcept {
    if (!(value >= min_ && value < max_)) {
      return nBins_;
    }
    const auto index = static_cast<std::size_t>((value - min_) * inverseWidth_);
    return index >= nBins_ ? nBins_ - 1 : index;
  }

  /// Lower edge of bin \p index.
  double edge(std::size_t index) const noexcept {
    return min_ + static_cast<double>(index) * width_;
  }

  /// Center of bin \p index.
  double center(std::size_t index) const noexcept {
    return edge(index) + width_ / 2.0;
  }

  /// All nBins()+1 edges, ascending.
  std::vector<double> edges() const;

  bool operator==(const BinAxis& other) const noexcept {
    return min_ == other.min_ && max_ == other.max_ && nBins_ == other.nBins_;
  }

private:
  std::string name_;
  double min_;
  double max_;
  std::size_t nBins_;
  double width_;
  double inverseWidth_;
};

/// A reciprocal-space projection: three basis vectors (in HKL) defining
/// the histogram axes.  Histogram coordinates p of a point hkl satisfy
/// hkl = W·p where W's columns are (u, v, w); i.e. p = W⁻¹·hkl.
class Projection {
public:
  /// Default: the identity projection ([H],[K],[L]) used by Bixbyite.
  Projection();

  /// From explicit basis vectors.  Throws InvalidArgument when the
  /// vectors are coplanar (W singular).
  Projection(const V3& u, const V3& v, const V3& w);

  /// The Benzil slicing basis ([H,H,0],[H,-H,0],[0,0,L]).
  static Projection benzilSlice();

  const V3& u() const noexcept { return u_; }
  const V3& v() const noexcept { return v_; }
  const V3& w() const noexcept { return w_; }

  /// W (columns u,v,w) and W⁻¹.
  const M33& W() const noexcept { return forward_; }
  const M33& Winv() const noexcept { return inverse_; }

  /// hkl -> histogram coordinates.
  V3 toProjected(const V3& hkl) const noexcept { return inverse_ * hkl; }

  /// histogram coordinates -> hkl.
  V3 toHkl(const V3& projected) const noexcept { return forward_ * projected; }

  /// Human-readable axis labels like "[H,H,0]".
  std::string axisLabel(std::size_t axis) const;

private:
  V3 u_, v_, w_;
  M33 forward_;
  M33 inverse_;
};

} // namespace vates
