#pragma once
/// \file histogram3d.hpp
/// Dense 3D histogram — the counterpart of Mantid's MDHistoWorkspace.
///
/// Two of these carry Algorithm 1's state: the event (BinMD) histogram
/// and the normalization (MDNorm) histogram.  Bins are plain doubles in
/// one contiguous buffer so that (a) kernels update them with
/// vates::atomicAdd ("bin values are thread-safe and incremented with
/// atomic operations", §III-B), (b) MPI-style reduction is a single
/// span-sum, and (c) I/O writes one block.
///
/// Indexing is row-major with the *last* axis fastest:
/// flat = (i·ny + j)·nz + k.  The paper's 2D slices use nz = 1, making
/// (i, j) a cache-friendly image layout.

#include "vates/histogram/binning.hpp"
#include "vates/histogram/grid_view.hpp"
#include "vates/parallel/atomics.hpp"

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace vates {

class Histogram3D {
public:
  Histogram3D(BinAxis x, BinAxis y, BinAxis z,
              Projection projection = Projection());

  const BinAxis& axis(std::size_t dim) const;
  const Projection& projection() const noexcept { return projection_; }

  std::size_t nx() const noexcept { return nx_; }
  std::size_t ny() const noexcept { return ny_; }
  std::size_t nz() const noexcept { return nz_; }
  std::size_t size() const noexcept { return signal_.size(); }

  /// Flat index of bin (i, j, k); no range checking (hot path).
  std::size_t flatIndex(std::size_t i, std::size_t j,
                        std::size_t k) const noexcept {
    return (i * ny_ + j) * nz_ + k;
  }

  /// Locate the bin containing projected coordinates \p p, or nullopt
  /// when any coordinate is out of range.
  std::optional<std::size_t> locate(const V3& p) const noexcept {
    const auto i = xAxis_.bin(p.x);
    const auto j = yAxis_.bin(p.y);
    const auto k = zAxis_.bin(p.z);
    if (!i || !j || !k) {
      return std::nullopt;
    }
    return flatIndex(*i, *j, *k);
  }

  /// Thread-safe accumulate of \p weight into the bin containing \p p.
  /// Returns true when the point landed inside the histogram.
  bool addAtomic(const V3& p, double weight) noexcept {
    const auto index = locate(p);
    if (!index) {
      return false;
    }
    atomicAdd(&signal_[*index], weight);
    return true;
  }

  /// Non-atomic accumulate for single-writer contexts.
  bool addSerial(const V3& p, double weight) noexcept {
    const auto index = locate(p);
    if (!index) {
      return false;
    }
    signal_[*index] += weight;
    return true;
  }

  /// Thread-safe accumulate straight into a flat index.
  void addAtomicAt(std::size_t flat, double weight) noexcept {
    atomicAdd(&signal_[flat], weight);
  }

  double at(std::size_t i, std::size_t j, std::size_t k) const {
    return signal_[flatIndex(i, j, k)];
  }

  std::span<double> data() noexcept { return signal_; }
  std::span<const double> data() const noexcept { return signal_; }

  /// Sum of all bins.
  double totalSignal() const noexcept;

  /// Number of bins with a non-zero value.
  std::size_t nonZeroBins() const noexcept;

  /// Set every bin to \p value.
  void fill(double value) noexcept;

  /// Element-wise add another histogram (axes must match).
  Histogram3D& operator+=(const Histogram3D& other);

  /// True when axes and projection basis sizes match.
  bool sameShape(const Histogram3D& other) const noexcept;

  /// Bin-wise ratio numerator/denominator — the cross-section of
  /// Algorithm 1.  Bins where the denominator is below \p epsilon yield
  /// NaN (uncovered regions of reciprocal space, masked downstream).
  static Histogram3D divide(const Histogram3D& numerator,
                            const Histogram3D& denominator,
                            double epsilon = 1e-300);

  /// Ratio with first-order error propagation (see HistogramRatio
  /// below).  The normalization is treated as exact (a geometric/flux
  /// integral, not a counted quantity), so σ²(S/N) = σ²(S)/N².
  static struct HistogramRatio
  divideWithErrors(const Histogram3D& numerator,
                   const Histogram3D& numeratorErrorSq,
                   const Histogram3D& denominator, double epsilon = 1e-300);

  /// A zeroed copy with the same axes/projection.
  Histogram3D emptyLike() const;

  /// Kernel view over this histogram's binning and buffer.  With
  /// \p externalData non-null the view's bins point elsewhere (e.g. a
  /// device-resident buffer) while keeping this histogram's binning.
  GridView gridView(double* externalData = nullptr) noexcept;

  /// Binning-only view (data pointer null) for read-only geometry use.
  GridView gridShape() const noexcept;

private:
  BinAxis xAxis_;
  BinAxis yAxis_;
  BinAxis zAxis_;
  Projection projection_;
  std::size_t nx_, ny_, nz_;
  std::vector<double> signal_;
};

/// Result of Histogram3D::divideWithErrors.
struct HistogramRatio {
  Histogram3D value;
  Histogram3D errorSq;
};

} // namespace vates
