#pragma once
/// \file grid_accumulator.hpp
/// Contention-aware histogram accumulation.
///
/// BinMD and MDNorm both end in "add a weight to a shared 3-D bin".
/// With a plain atomicAdd the hottest workloads — small symmetry-folded
/// grids hit by millions of events — serialize on a handful of cache
/// lines: every worker CASes the same bins.  GridAccumulator gives those
/// kernels a choice of write path behind one tiny interface:
///
///  - Atomic:     today's behavior, atomicAdd into the shared grid.
///                Zero extra memory; scales only while bins outnumber
///                touching workers.
///  - Privatized: one full replica grid per worker.  Writes are plain
///                (lock- and atomic-free) stores into worker-private
///                memory; replicas are folded into the shared grid by a
///                parallel pairwise tree-merge at region end.  Fastest
///                under contention, costs workers × grid bytes.
///  - Tiled:      a fixed-size per-worker bin cache (open-addressing
///                map of bin → partial sum) that coalesces repeated hits
///                and flushes to the shared grid with atomicAdd when it
///                fills.  For grids too large to replicate: bounded
///                memory, still collapses the common many-events-per-bin
///                case to one atomic per flushed entry.
///  - Auto:       picks Privatized when workers × grid bytes fits the
///                replica budget (and more than one worker exists),
///                Tiled otherwise.
///
/// Usage inside a kernel (the worker index comes from the executor's
/// *Indexed loops):
///
///   GridAccumulator accumulator(grid, executor, options);
///   const AccumulatorRef sink = accumulator.ref();
///   executor.parallelFor2DIndexed(nOps, nItems,
///       [=](std::size_t op, std::size_t item, unsigned worker) {
///         sink.add(worker, bin, weight);
///       }, "kernel");
///   accumulator.commit();
///
/// Concurrency contract: during the parallel region each worker index
/// owns its replica/tile exclusively (the executor guarantees at most
/// one work item per worker index at a time); the shared grid itself is
/// only touched through atomicAdd.  Atomic accumulators may therefore
/// target a grid that other executors write concurrently; Privatized
/// and Tiled require exclusive use of the grid between construction and
/// commit().

#include "vates/histogram/grid_view.hpp"
#include "vates/parallel/atomics.hpp"
#include "vates/parallel/executor.hpp"

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace vates {

/// Write-path selection for GridAccumulator.
enum class AccumulateStrategy : int {
  Auto = 0,
  Atomic = 1,
  Privatized = 2,
  Tiled = 3,
};

/// "auto", "atomic", "privatized", "tiled".
const char* accumulateStrategyName(AccumulateStrategy strategy) noexcept;

/// Parse a strategy name (case-insensitive, surrounding whitespace
/// ignored; accepts the names above plus the aliases "replica" and
/// "tile").  Throws InvalidArgument for unknown names.
AccumulateStrategy parseAccumulateStrategy(const std::string& name);

/// Knobs for GridAccumulator; the defaults implement the Auto policy
/// described in the file header.
struct AccumulateOptions {
  AccumulateStrategy strategy = AccumulateStrategy::Auto;
  /// Auto picks Privatized only while workers × grid bytes stays within
  /// this budget; beyond it the grid is "too large to replicate" and
  /// Tiled is used instead.
  std::size_t replicaBudgetBytes = std::size_t{256} << 20; // 256 MiB
  /// Entries in each worker's Tiled bin cache (rounded up to a power of
  /// two; the cache flushes at half occupancy to keep probes short).
  std::size_t tileCapacity = 4096;
  /// Other launches may be writing the same grid concurrently (e.g. the
  /// workflow scheduler runs several single-worker kernel launches at
  /// once over one shared histogram).  Forces the Atomic strategy and
  /// disables the single-worker plain-add fast path: this accumulator's
  /// worker count no longer bounds the set of concurrent writers, so
  /// every deposit must be a real atomic.
  bool sharedGrid = false;
};

namespace detail {

/// Sentinel marking a vacant tile entry (no real grid has 2^64 bins).
inline constexpr std::size_t kEmptyBin = static_cast<std::size_t>(-1);

/// One worker's bin cache for the Tiled strategy.  Cache-line sized so
/// neighbouring workers' `used` counters never false-share.
struct alignas(64) TileSlot {
  std::size_t* bins = nullptr; ///< capacity entries, kEmptyBin = vacant
  double* sums = nullptr;      ///< partial sum per occupied entry
  std::size_t mask = 0;        ///< capacity − 1 (capacity is a power of two)
  std::size_t used = 0;
};

/// Drain every occupied entry into the shared grid (one atomicAdd per
/// distinct bin seen since the last flush) and empty the cache.
inline void tileFlush(TileSlot& slot, double* grid) noexcept {
  const std::size_t capacity = slot.mask + 1;
  for (std::size_t i = 0; i < capacity; ++i) {
    if (slot.bins[i] != kEmptyBin) {
      atomicAdd(&grid[slot.bins[i]], slot.sums[i]);
      slot.bins[i] = kEmptyBin;
    }
  }
  slot.used = 0;
}

/// Accumulate into the cache, flushing first when it is half full and
/// \p bin is not already resident.  Fibonacci hashing spreads the bin
/// index; linear probing keeps the walk inside one or two cache lines.
inline void tileAdd(TileSlot& slot, double* grid, std::size_t bin,
                    double value) noexcept {
  constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;
  std::size_t i = static_cast<std::size_t>(bin * kGolden) & slot.mask;
  for (;;) {
    if (slot.bins[i] == bin) {
      slot.sums[i] += value;
      return;
    }
    if (slot.bins[i] == kEmptyBin) {
      if (slot.used * 2 >= slot.mask + 1) {
        tileFlush(slot, grid);
        i = static_cast<std::size_t>(bin * kGolden) & slot.mask;
      }
      slot.bins[i] = bin;
      slot.sums[i] = value;
      ++slot.used;
      return;
    }
    i = (i + 1) & slot.mask;
  }
}

} // namespace detail

/// Trivially copyable write handle, captured by value into kernel
/// bodies exactly like GridView (a CUDA-kernel-argument-style struct;
/// all pointers refer to storage owned by the GridAccumulator, which
/// must outlive the parallel region).
class AccumulatorRef {
public:
  /// Accumulate \p value into flat bin \p bin on behalf of \p worker.
  /// \p bin must be < grid.size(); \p worker must be the index handed
  /// to the body by a *Indexed executor loop.
  void add(unsigned worker, std::size_t bin, double value) const noexcept {
    switch (strategy_) {
    case AccumulateStrategy::Atomic:
      // Single-worker launches (Serial, or a pool/OpenMP run pinned to
      // one thread) have no concurrent writers, so the CAS loop inside
      // atomicAdd only burns its round trip: a plain add performs the
      // identical IEEE addition in the identical order, bitwise.
      if (soleWriter_) {
        grid_[bin] += value;
        return;
      }
      atomicAdd(&grid_[bin], value);
      return;
    case AccumulateStrategy::Privatized:
      replicas_[worker * stride_ + bin] += value;
      return;
    case AccumulateStrategy::Tiled:
      detail::tileAdd(tiles_[worker], grid_, bin, value);
      return;
    case AccumulateStrategy::Auto: // resolved at construction; unreachable
      return;
    }
  }

  /// Accumulate \p count (bin, value) pairs in order — semantically a
  /// loop of add() calls (so the result is bitwise identical to making
  /// them one by one), but with the strategy dispatch hoisted out of
  /// the loop.  This is the flush edge of the cache-blocked deposit
  /// tiles (DepositBlock below): the SIMD kernel paths stage a block's
  /// deposits in L1 and drain them here in one tight per-strategy loop.
  void addBlock(unsigned worker, const std::size_t* bins,
                const double* values, std::size_t count) const noexcept {
    switch (strategy_) {
    case AccumulateStrategy::Atomic:
      if (soleWriter_) { // see add(): no concurrency, plain adds
        for (std::size_t i = 0; i < count; ++i) {
          grid_[bins[i]] += values[i];
        }
        return;
      }
      for (std::size_t i = 0; i < count; ++i) {
        atomicAdd(&grid_[bins[i]], values[i]);
      }
      return;
    case AccumulateStrategy::Privatized: {
      double* replica = replicas_ + worker * stride_;
      for (std::size_t i = 0; i < count; ++i) {
        replica[bins[i]] += values[i];
      }
      return;
    }
    case AccumulateStrategy::Tiled: {
      detail::TileSlot& slot = tiles_[worker];
      for (std::size_t i = 0; i < count; ++i) {
        detail::tileAdd(slot, grid_, bins[i], values[i]);
      }
      return;
    }
    case AccumulateStrategy::Auto: // resolved at construction; unreachable
      return;
    }
  }

private:
  friend class GridAccumulator;
  AccumulateStrategy strategy_ = AccumulateStrategy::Atomic;
  bool soleWriter_ = false; ///< Atomic with one worker: plain adds suffice
  double* grid_ = nullptr;
  double* replicas_ = nullptr;         ///< Privatized: workers × stride_
  std::size_t stride_ = 0;             ///< replica pitch == grid size
  detail::TileSlot* tiles_ = nullptr;  ///< Tiled: one slot per worker
};

/// Cache-blocked deposit staging (the P2P blocking idiom): a work item
/// pushes its (bin, value) deposits into this fixed 4 KiB tile — two
/// L1-resident arrays — and flushes a full block through
/// AccumulatorRef::addBlock, amortizing the strategy dispatch over
/// kCapacity deposits while the tile's stores stay in cache.  Deposits
/// drain strictly in push order, so staging never changes results: the
/// committed histogram is bitwise what per-deposit add() calls produce.
/// Stack-allocate one per work item; call flush() before returning.
struct DepositBlock {
  static constexpr std::size_t kCapacity = 256;
  std::size_t bins[kCapacity];
  double values[kCapacity];
  std::size_t count = 0;

  bool full() const noexcept { return count == kCapacity; }

  void push(std::size_t bin, double value) noexcept {
    bins[count] = bin;
    values[count] = value;
    ++count;
  }

  void flush(const AccumulatorRef& sink, unsigned worker) noexcept {
    sink.addBlock(worker, bins, values, count);
    count = 0;
  }
};

/// Owns the worker-private accumulation state for one grid over one
/// parallel region (or several back-to-back regions — BinMD+MDNorm may
/// reuse one accumulator across launches before committing).
class GridAccumulator {
public:
  /// Provisions state for \p executor.concurrency() workers writing to
  /// \p grid.  Resolves Auto to a concrete strategy immediately.
  GridAccumulator(const GridView& grid, const Executor& executor,
                  const AccumulateOptions& options = {});
  ~GridAccumulator();

  GridAccumulator(const GridAccumulator&) = delete;
  GridAccumulator& operator=(const GridAccumulator&) = delete;

  /// The concrete strategy in use (never Auto).
  AccumulateStrategy strategy() const noexcept { return strategy_; }

  /// Number of worker slots provisioned.
  unsigned workers() const noexcept { return workers_; }

  /// Bytes of worker-private state (replicas or tiles) this accumulator
  /// allocated — what the Auto selector weighed against the budget.
  std::size_t privateBytes() const noexcept;

  /// Kernel-side handle; valid until this accumulator is destroyed.
  AccumulatorRef ref() const noexcept;

  /// Fold all worker-private partials into the shared grid: a parallel
  /// pairwise tree-merge of the replicas (Privatized) or a final flush
  /// of every tile (Tiled); a no-op for Atomic.  Must be called after
  /// the last parallel region that used ref(); idempotent.
  void commit();

  /// What Auto would resolve to for a given shape — exposed for tests
  /// and for benchmarks that want to report the decision.
  static AccumulateStrategy resolve(AccumulateStrategy requested,
                                    std::size_t gridSize, unsigned workers,
                                    std::size_t replicaBudgetBytes) noexcept;

private:
  void mergeReplicas();
  void flushTiles();

  const Executor* executor_;
  GridView grid_;
  AccumulateStrategy strategy_;
  unsigned workers_;
  bool sharedGrid_ = false; ///< see AccumulateOptions::sharedGrid
  bool committed_ = false;

  std::vector<double> replicas_;            // Privatized
  std::vector<std::size_t> tileBins_;       // Tiled backing storage
  std::vector<double> tileSums_;
  std::vector<detail::TileSlot> tiles_;
};

} // namespace vates
