#pragma once
/// \file grid_view.hpp
/// Trivially copyable view of a Histogram3D's binning and bin buffer,
/// consumable inside kernels on any backend (no std::string, no
/// std::vector, no virtual calls — it can be passed by value into a
/// simulated-device kernel exactly like a CUDA kernel argument struct).

#include "vates/geometry/vec3.hpp"

#include <cstddef>

namespace vates {

struct GridView {
  double min[3] = {0, 0, 0};
  double max[3] = {0, 0, 0};
  double inverseWidth[3] = {0, 0, 0};
  std::size_t n[3] = {0, 0, 0};
  double* data = nullptr; ///< nx·ny·nz bins, k fastest

  std::size_t size() const noexcept { return n[0] * n[1] * n[2]; }

  /// Bin index on one axis; returns n[axis] when out of range.  The
  /// negated comparison rejects NaN coordinates too (NaN fails every
  /// ordering test), which keeps corrupt event data from reaching the
  /// undefined float→integer conversion below.
  std::size_t axisBin(std::size_t axis, double value) const noexcept {
    if (!(value >= min[axis] && value < max[axis])) {
      return n[axis];
    }
    auto index =
        static_cast<std::size_t>((value - min[axis]) * inverseWidth[axis]);
    return index >= n[axis] ? n[axis] - 1 : index;
  }

  /// Flat bin index of point \p p, or size() when outside the grid.
  std::size_t locate(const V3& p) const noexcept {
    const std::size_t i = axisBin(0, p.x);
    const std::size_t j = axisBin(1, p.y);
    const std::size_t k = axisBin(2, p.z);
    if (i == n[0] || j == n[1] || k == n[2]) {
      return size();
    }
    return (i * n[1] + j) * n[2] + k;
  }

  /// True when \p value lies within [min, max) on \p axis.
  bool inAxisRange(std::size_t axis, double value) const noexcept {
    return value >= min[axis] && value < max[axis];
  }

  /// True when all three coordinates lie inside the box.
  bool contains(const V3& p) const noexcept {
    return inAxisRange(0, p.x) && inAxisRange(1, p.y) && inAxisRange(2, p.z);
  }

  /// Lower edge of plane \p planeIndex (0..n[axis]) on \p axis.
  double planeEdge(std::size_t axis, std::size_t planeIndex) const noexcept {
    return min[axis] +
           static_cast<double>(planeIndex) / inverseWidth[axis];
  }
};

} // namespace vates
