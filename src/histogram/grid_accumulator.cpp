#include "vates/histogram/grid_accumulator.hpp"

#include "vates/support/error.hpp"
#include "vates/support/strings.hpp"

#include <algorithm>

namespace vates {

namespace {

std::size_t roundUpPowerOfTwo(std::size_t value) {
  std::size_t result = 1;
  while (result < value) {
    result <<= 1;
  }
  return result;
}

} // namespace

const char* accumulateStrategyName(AccumulateStrategy strategy) noexcept {
  switch (strategy) {
  case AccumulateStrategy::Auto:       return "auto";
  case AccumulateStrategy::Atomic:     return "atomic";
  case AccumulateStrategy::Privatized: return "privatized";
  case AccumulateStrategy::Tiled:      return "tiled";
  }
  return "unknown";
}

AccumulateStrategy parseAccumulateStrategy(const std::string& name) {
  const std::string lower = toLower(trim(name));
  if (lower == "auto") {
    return AccumulateStrategy::Auto;
  }
  if (lower == "atomic") {
    return AccumulateStrategy::Atomic;
  }
  if (lower == "privatized" || lower == "replica") {
    return AccumulateStrategy::Privatized;
  }
  if (lower == "tiled" || lower == "tile") {
    return AccumulateStrategy::Tiled;
  }
  throw InvalidArgument("unknown accumulation strategy '" + name +
                        "' (available: auto, atomic, privatized, tiled)");
}

AccumulateStrategy GridAccumulator::resolve(
    AccumulateStrategy requested, std::size_t gridSize, unsigned workers,
    std::size_t replicaBudgetBytes) noexcept {
  if (requested != AccumulateStrategy::Auto) {
    return requested;
  }
  // A single worker never contends, and an empty grid has nothing to
  // privatize; the atomic path is free of setup cost for both.
  if (workers <= 1 || gridSize == 0) {
    return AccumulateStrategy::Atomic;
  }
  // Replicate only while workers × grid fits the budget.  Division
  // (rather than multiplication) keeps the comparison overflow-safe for
  // absurd grid sizes.
  const std::size_t budgetBins = replicaBudgetBytes / sizeof(double) / workers;
  return gridSize <= budgetBins ? AccumulateStrategy::Privatized
                                : AccumulateStrategy::Tiled;
}

GridAccumulator::GridAccumulator(const GridView& grid, const Executor& executor,
                                 const AccumulateOptions& options)
    : executor_(&executor), grid_(grid),
      strategy_(AccumulateStrategy::Atomic), workers_(executor.concurrency()),
      sharedGrid_(options.sharedGrid) {
  VATES_REQUIRE(grid_.data != nullptr || grid_.size() == 0,
                "accumulator grid has no data");
  VATES_REQUIRE(workers_ >= 1, "executor reports zero concurrency");
  // A grid with external concurrent writers admits only atomic deposits:
  // Privatized/Tiled commit their worker-private state with plain adds,
  // which would race with the other launches just like the sole-writer
  // fast path would.
  strategy_ = sharedGrid_
                  ? AccumulateStrategy::Atomic
                  : resolve(options.strategy, grid_.size(), workers_,
                            options.replicaBudgetBytes);

  switch (strategy_) {
  case AccumulateStrategy::Atomic:
    break;
  case AccumulateStrategy::Privatized: {
    replicas_.assign(static_cast<std::size_t>(workers_) * grid_.size(), 0.0);
    break;
  }
  case AccumulateStrategy::Tiled: {
    const std::size_t capacity =
        roundUpPowerOfTwo(std::max<std::size_t>(options.tileCapacity, 16));
    tileBins_.assign(static_cast<std::size_t>(workers_) * capacity,
                     detail::kEmptyBin);
    tileSums_.assign(static_cast<std::size_t>(workers_) * capacity, 0.0);
    tiles_.resize(workers_);
    for (unsigned w = 0; w < workers_; ++w) {
      tiles_[w].bins = tileBins_.data() + std::size_t{w} * capacity;
      tiles_[w].sums = tileSums_.data() + std::size_t{w} * capacity;
      tiles_[w].mask = capacity - 1;
      tiles_[w].used = 0;
    }
    break;
  }
  case AccumulateStrategy::Auto: // resolve() never returns Auto
    break;
  }
}

GridAccumulator::~GridAccumulator() = default;

std::size_t GridAccumulator::privateBytes() const noexcept {
  return replicas_.size() * sizeof(double) +
         tileBins_.size() * sizeof(std::size_t) +
         tileSums_.size() * sizeof(double) +
         tiles_.size() * sizeof(detail::TileSlot);
}

AccumulatorRef GridAccumulator::ref() const noexcept {
  AccumulatorRef handle;
  handle.strategy_ = strategy_;
  handle.soleWriter_ = strategy_ == AccumulateStrategy::Atomic &&
                       workers_ <= 1 && !sharedGrid_;
  handle.grid_ = grid_.data;
  handle.replicas_ =
      replicas_.empty() ? nullptr
                        : const_cast<double*>(replicas_.data());
  handle.stride_ = grid_.size();
  handle.tiles_ =
      tiles_.empty() ? nullptr
                     : const_cast<detail::TileSlot*>(tiles_.data());
  return handle;
}

void GridAccumulator::commit() {
  if (committed_) {
    return;
  }
  committed_ = true;
  switch (strategy_) {
  case AccumulateStrategy::Atomic:
    return;
  case AccumulateStrategy::Privatized:
    mergeReplicas();
    return;
  case AccumulateStrategy::Tiled:
    flushTiles();
    return;
  case AccumulateStrategy::Auto:
    return;
  }
}

void GridAccumulator::mergeReplicas() {
  const std::size_t bins = grid_.size();
  double* base = replicas_.data();

  // Pairwise tree-merge: round `stride` folds replica r+stride into
  // replica r for every r that is a multiple of 2·stride, halving the
  // live replica count per round (log2(workers) depth, workers·bins
  // total adds — same work as a linear sweep, but each round is itself
  // a parallel loop).  Bins are additionally chunked so the late rounds
  // (few pairs) still spread across all workers.
  for (unsigned stride = 1; stride < workers_; stride *= 2) {
    std::vector<unsigned> destinations;
    for (unsigned r = 0; r + stride < workers_; r += 2 * stride) {
      destinations.push_back(r);
    }
    const std::size_t nChunks = std::max<std::size_t>(
        1, (workers_ + destinations.size() - 1) / destinations.size());
    const std::size_t chunk = (bins + nChunks - 1) / nChunks;
    executor_->parallelFor(
        destinations.size() * nChunks,
        [&](std::size_t flat) {
          const unsigned dst = destinations[flat / nChunks];
          const std::size_t begin = (flat % nChunks) * chunk;
          const std::size_t end = std::min(bins, begin + chunk);
          double* to = base + std::size_t{dst} * bins;
          const double* from = base + (std::size_t{dst} + stride) * bins;
          for (std::size_t i = begin; i < end; ++i) {
            to[i] += from[i];
          }
        },
        "accumulate_tree_merge");
  }

  // Replica 0 now holds the whole region's deposits.  Add — not copy —
  // into the shared grid, which may already carry earlier runs' totals;
  // chunks are disjoint, so plain stores suffice.
  const std::size_t nChunks = workers_;
  const std::size_t chunk = (bins + nChunks - 1) / nChunks;
  double* grid = grid_.data;
  executor_->parallelFor(
      nChunks,
      [&](std::size_t c) {
        const std::size_t begin = c * chunk;
        const std::size_t end = std::min(bins, begin + chunk);
        for (std::size_t i = begin; i < end; ++i) {
          grid[i] += base[i];
        }
      },
      "accumulate_fold");
}

void GridAccumulator::flushTiles() {
  executor_->parallelFor(
      workers_,
      [&](std::size_t w) { detail::tileFlush(tiles_[w], grid_.data); },
      "accumulate_tile_flush");
}

} // namespace vates
