#include "vates/parallel/thread_pool.hpp"

#include "vates/support/error.hpp"
#include "vates/support/log.hpp"

#include <cerrno>
#include <cstdlib>

namespace vates {

namespace {
unsigned defaultPoolSize() {
  const unsigned hw = std::thread::hardware_concurrency();
  const unsigned fallback = hw == 0 ? 1 : hw;
  if (const char* env = std::getenv("VATES_NUM_THREADS"); env != nullptr) {
    return ThreadPool::parseThreadCount(env, fallback);
  }
  return fallback;
}

/// True while the current thread executes inside a parallel region body.
/// Nested run() calls from such a thread execute inline (like nested
/// OpenMP with nesting disabled); this must be per-thread, not per-pool,
/// because multiple independent callers (the in-process MPI ranks) may
/// drive the same pool concurrently.
thread_local bool tlsInsideRegion = false;
} // namespace

ThreadPool& ThreadPool::global() {
  static ThreadPool instance(defaultPoolSize());
  return instance;
}

bool ThreadPool::insideRegion() noexcept { return tlsInsideRegion; }

unsigned ThreadPool::parseThreadCount(const char* text, unsigned fallback) {
  if (text == nullptr) {
    return fallback;
  }
  char* end = nullptr;
  errno = 0;
  const long parsed = std::strtol(text, &end, 10);
  // strtol consumes leading whitespace; anything left over after the
  // digits ("8abc", "8 ", "") means the value was not a plain integer.
  const bool malformed = end == text || *end != '\0';
  const bool outOfRange =
      errno == ERANGE || parsed < 1 ||
      static_cast<unsigned long>(parsed) > maxThreadCount();
  if (malformed || outOfRange) {
    VATES_LOG_WARN("VATES_NUM_THREADS=\"" << text
                   << "\" is not a thread count in [1, " << maxThreadCount()
                   << "]; using " << fallback << " threads");
    return fallback;
  }
  return static_cast<unsigned>(parsed);
}

ThreadPool::ThreadPool(unsigned size) : size_(size) {
  VATES_REQUIRE(size >= 1, "thread pool needs at least one worker");
  threads_.reserve(size - 1);
  for (unsigned i = 1; i < size; ++i) {
    threads_.emplace_back([this, i] { workerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  wake_.notify_all();
  for (auto& thread : threads_) {
    thread.join();
  }
}

void ThreadPool::run(FunctionRef<void(unsigned)> body) {
  if (size_ == 1 || tlsInsideRegion) {
    // Inline: single worker, or a nested region from inside a parallel
    // body.
    body(0);
    return;
  }

  // One region at a time; concurrent callers (in-process ranks) queue
  // here rather than corrupting the job slot.
  std::lock_guard<std::mutex> region(regionMutex_);

  std::unique_lock<std::mutex> lock(mutex_);
  job_ = &body;
  pending_ = size_ - 1;
  ++generation_;
  lock.unlock();
  wake_.notify_all();

  // The caller is worker 0.
  tlsInsideRegion = true;
  body(0);
  tlsInsideRegion = false;

  lock.lock();
  done_.wait(lock, [this] { return pending_ == 0; });
  job_ = nullptr;
}

void ThreadPool::workerLoop(unsigned index) {
  std::uint64_t seenGeneration = 0;
  for (;;) {
    FunctionRef<void(unsigned)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this, seenGeneration] {
        return shutdown_ || generation_ != seenGeneration;
      });
      if (shutdown_) {
        return;
      }
      seenGeneration = generation_;
      job = job_;
    }
    tlsInsideRegion = true;
    (*job)(index);
    tlsInsideRegion = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --pending_;
    }
    done_.notify_one();
  }
}

} // namespace vates
