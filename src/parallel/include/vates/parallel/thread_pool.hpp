#pragma once
/// \file thread_pool.hpp
/// Persistent worker pool (CP.41: minimize thread creation/destruction).
///
/// The pool owns `size()-1` worker threads; the thread that calls run()
/// participates as worker 0, so a pool of size 1 executes inline with no
/// synchronization overhead — important on the single-core CI machines
/// this repository targets, and the honest analogue of OpenMP's behavior.

#include "vates/parallel/function_ref.hpp"

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace vates {

class ThreadPool {
public:
  /// Process-wide pool sized from $VATES_NUM_THREADS (if set) or
  /// std::thread::hardware_concurrency().
  static ThreadPool& global();

  /// Parse a thread-count string the way global() sizes itself: the
  /// whole string must be a decimal integer in [1, maxThreadCount()].
  /// Malformed input ("8abc", ""), values < 1, and out-of-range values
  /// (including strtol overflow) yield \p fallback with a logged
  /// warning.  Exposed so the environment contract is unit-testable.
  static unsigned parseThreadCount(const char* text, unsigned fallback);

  /// Upper bound accepted by parseThreadCount — generous, but finite so
  /// an overflowed strtol (which clamps to LONG_MAX) cannot request a
  /// few quintillion workers.
  static constexpr unsigned maxThreadCount() noexcept { return 65536; }

  /// Create a pool that executes regions across \p size workers
  /// (including the caller).  size >= 1.
  explicit ThreadPool(unsigned size);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of workers, including the calling thread.
  unsigned size() const noexcept { return size_; }

  /// Execute \p body(workerIndex) once per worker, blocking until all
  /// complete.  workerIndex is in [0, size()).  Nested run() calls from
  /// inside a region execute inline on the calling worker.
  void run(FunctionRef<void(unsigned)> body);

  /// True while the calling thread is executing inside one of this
  /// process's parallel-region bodies (any pool's — the flag is
  /// per-thread).  Such a thread is a "team of one": its nested
  /// regions execute inline.
  static bool insideRegion() noexcept;

  /// Chunked parallel loop: split [0, n) into size() contiguous chunks
  /// and invoke body(begin, end, worker) per non-empty chunk.  Called
  /// from inside a region (or on a pool of one) the whole range runs
  /// inline as a single chunk — chunking by size() and then executing
  /// only worker 0's share inline would silently drop the rest of the
  /// range, which is exactly what an earlier version did.
  template <typename Body>
  void forRange(std::size_t n, Body&& body) {
    if (n == 0) {
      return;
    }
    if (size_ == 1 || insideRegion()) {
      body(std::size_t{0}, n, 0u);
      return;
    }
    const unsigned workers = size_;
    const std::size_t chunk = (n + workers - 1) / workers;
    auto region = [&](unsigned worker) {
      const std::size_t begin = static_cast<std::size_t>(worker) * chunk;
      if (begin >= n) {
        return;
      }
      const std::size_t end = std::min(n, begin + chunk);
      body(begin, end, worker);
    };
    run(region);
  }

private:
  void workerLoop(unsigned index);

  unsigned size_;
  std::vector<std::thread> threads_;

  // Region hand-off state: a generation counter wakes the workers; each
  // region runs the current job exactly once per worker.  regionMutex_
  // serializes whole regions so independent callers (in-process MPI
  // ranks) can share one pool.
  std::mutex regionMutex_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  FunctionRef<void(unsigned)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  unsigned pending_ = 0;
  bool shutdown_ = false;
};

} // namespace vates
