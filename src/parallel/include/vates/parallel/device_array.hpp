#pragma once
/// \file device_array.hpp
/// Typed arrays in the simulated device memory space, with explicit
/// host<->device transfers (the JACC.Array / Kokkos::View counterpart).
///
/// Kernels receive raw pointers via deviceData(); host code must stage
/// data with copyToDevice()/copyToHost().  Every transfer is metered by
/// the owning DeviceSim so benchmarks can report H2D/D2H volumes.

#include "vates/parallel/device_sim.hpp"
#include "vates/support/error.hpp"

#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

namespace vates {

/// An array resident in (simulated) device memory.  Move-only.
template <typename T>
class DeviceArray {
  static_assert(std::is_trivially_copyable_v<T>,
                "device arrays hold trivially copyable elements only");

public:
  DeviceArray() = default;

  /// Allocate \p size uninitialized elements on \p device.
  DeviceArray(DeviceSim& device, std::size_t size)
      : device_(&device), size_(size),
        data_(size == 0 ? nullptr
                        : static_cast<T*>(device.allocate(size * sizeof(T)))) {}

  /// Allocate and upload in one step.
  DeviceArray(DeviceSim& device, std::span<const T> host)
      : DeviceArray(device, host.size()) {
    copyToDevice(*this, host);
  }

  DeviceArray(DeviceArray&& other) noexcept { swap(other); }
  DeviceArray& operator=(DeviceArray&& other) noexcept {
    if (this != &other) {
      release();
      swap(other);
    }
    return *this;
  }

  DeviceArray(const DeviceArray&) = delete;
  DeviceArray& operator=(const DeviceArray&) = delete;

  ~DeviceArray() { release(); }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::size_t bytes() const noexcept { return size_ * sizeof(T); }

  /// Pointer valid *inside kernels only* (by convention; the simulator
  /// cannot trap host access, but all library code honors the contract
  /// so it keeps working when retargeted at a real device backend).
  T* deviceData() noexcept { return data_; }
  const T* deviceData() const noexcept { return data_; }

  DeviceSim* device() const noexcept { return device_; }

private:
  void release() noexcept {
    if (device_ != nullptr && data_ != nullptr) {
      device_->deallocate(data_, bytes());
    }
    device_ = nullptr;
    data_ = nullptr;
    size_ = 0;
  }

  void swap(DeviceArray& other) noexcept {
    std::swap(device_, other.device_);
    std::swap(size_, other.size_);
    std::swap(data_, other.data_);
  }

  DeviceSim* device_ = nullptr;
  std::size_t size_ = 0;
  T* data_ = nullptr;
};

/// Host -> device transfer; sizes must match exactly.
template <typename T>
void copyToDevice(DeviceArray<T>& dst, std::span<const T> src) {
  VATES_REQUIRE(dst.size() == src.size(), "H2D size mismatch");
  if (src.empty()) {
    return;
  }
  std::memcpy(dst.deviceData(), src.data(), src.size_bytes());
  dst.device()->recordH2D(src.size_bytes());
}

/// Device -> host transfer; sizes must match exactly.
template <typename T>
void copyToHost(std::span<T> dst, const DeviceArray<T>& src) {
  VATES_REQUIRE(dst.size() == src.size(), "D2H size mismatch");
  if (dst.empty()) {
    return;
  }
  std::memcpy(dst.data(), src.deviceData(), dst.size_bytes());
  src.device()->recordD2H(dst.size_bytes());
}

/// Download into a fresh std::vector (convenience for tests).
template <typename T>
std::vector<T> toHostVector(const DeviceArray<T>& src) {
  std::vector<T> host(src.size());
  copyToHost(std::span<T>(host), src);
  return host;
}

/// Fill a device array with a value via an on-device kernel.
template <typename T>
void fillOnDevice(DeviceArray<T>& array, T value) {
  if (array.empty()) {
    return;
  }
  T* data = array.deviceData();
  array.device()->launch("fill", array.size(),
                         [&](std::size_t i) { data[i] = value; });
}

} // namespace vates
