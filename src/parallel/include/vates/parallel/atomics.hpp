#pragma once
/// \file atomics.hpp
/// Portable atomic accumulation helpers.
///
/// The BinMD kernel and the MDNorm normalization both increment shared
/// histogram bins from many workers at once (the paper's MDHistoWorkspace
/// counterpart is "thread-safe and incremented with atomic operations").
/// std::atomic_ref (C++20) lets plain, contiguous double buffers be
/// updated atomically without wrapping every bin in std::atomic — the
/// layout stays a dense array suitable for reduction and I/O.

#include <atomic>
#include <cstdint>
#include <type_traits>

namespace vates {

/// Atomically add \p value to \p *target (relaxed ordering — histogram
/// accumulation is commutative and only needs atomicity, not ordering).
template <typename T>
inline void atomicAdd(T* target, T value) noexcept {
  static_assert(std::is_arithmetic_v<T>, "atomicAdd needs an arithmetic type");
  std::atomic_ref<T> ref(*target);
  if constexpr (std::is_floating_point_v<T>) {
    // fetch_add on floating atomic_ref is C++20; keep a CAS fallback for
    // toolchains where it is not lock-free for the type.
    T expected = ref.load(std::memory_order_relaxed);
    while (!ref.compare_exchange_weak(expected, expected + value,
                                      std::memory_order_relaxed,
                                      std::memory_order_relaxed)) {
    }
  } else {
    ref.fetch_add(value, std::memory_order_relaxed);
  }
}

/// Atomically record max(value, *target) into *target.
template <typename T>
inline void atomicMax(T* target, T value) noexcept {
  std::atomic_ref<T> ref(*target);
  T current = ref.load(std::memory_order_relaxed);
  while (current < value &&
         !ref.compare_exchange_weak(current, value, std::memory_order_relaxed,
                                    std::memory_order_relaxed)) {
  }
}

/// Atomic post-increment of a counter; returns the previous value.
inline std::uint64_t atomicNext(std::uint64_t* counter) noexcept {
  std::atomic_ref<std::uint64_t> ref(*counter);
  return ref.fetch_add(1, std::memory_order_relaxed);
}

} // namespace vates
