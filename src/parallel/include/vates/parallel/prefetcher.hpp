#pragma once
/// \file prefetcher.hpp
/// Bounded, in-order prefetch queue: the async-loading primitive behind
/// the pipeline's overlapped execution engine.
///
/// Algorithm 1's outer loop pays LOAD and COMPUTE serially; the paper's
/// Tables II–VI show load is a large fixed cost.  A Prefetcher moves the
/// produce step (file load + transpose, or load + ConvertToMD) onto one
/// dedicated background thread so item i+1 is being produced while item
/// i is consumed — classic double buffering when depth == 1.
///
/// Memory stays flat through *backpressure*: the producer blocks before
/// producing item i+k+1 until the consumer has taken item i, so at most
/// `depth` finished items sit in the queue plus one being produced.
/// The high-water mark of queued items is tracked and exposed so tests
/// can assert the bound is honored.
///
/// Ordering: items are produced and delivered strictly in index order —
/// the consumer observes exactly the sequence a serial loop would, which
/// is what lets the overlapped pipeline keep bit-identical accumulation
/// order per grid.
///
/// Error handling: an exception thrown by the producer is captured; the
/// consumer receives every item completed before the failure, then the
/// exception is rethrown from next().  Destroying the prefetcher early
/// (consumer abandons the sequence) wakes and joins the producer without
/// producing further items.

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

namespace vates {

template <typename T>
class Prefetcher {
public:
  using Producer = std::function<T(std::size_t index)>;

  /// Start producing items for indices [\p begin, \p end) on a
  /// background thread, keeping at most \p depth finished items queued
  /// (depth >= 1; 1 is double buffering).
  Prefetcher(std::size_t begin, std::size_t end, std::size_t depth,
             Producer produce)
      : next_(begin), end_(end), depth_(depth == 0 ? 1 : depth),
        produce_(std::move(produce)) {
    if (begin < end) {
      thread_ = std::thread([this] { producerLoop(); });
    }
  }

  Prefetcher(const Prefetcher&) = delete;
  Prefetcher& operator=(const Prefetcher&) = delete;

  ~Prefetcher() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      cancelled_ = true;
    }
    spaceAvailable_.notify_all();
    if (thread_.joinable()) {
      thread_.join();
    }
  }

  /// Number of items this prefetcher will deliver in total.
  std::size_t count() const noexcept { return end_ - next_; }

  /// Configured queue bound.
  std::size_t depth() const noexcept { return depth_; }

  /// Block until the next item (in index order) is ready and return it.
  /// Rethrows the producer's exception once all items produced before
  /// the failure have been delivered.  Must not be called more than
  /// count() times (or past a rethrown error).
  T next() {
    std::unique_lock<std::mutex> lock(mutex_);
    itemAvailable_.wait(lock, [this] { return !queue_.empty() || error_; });
    if (queue_.empty()) {
      std::rethrow_exception(error_);
    }
    T item = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    spaceAvailable_.notify_all();
    return item;
  }

  /// Maximum number of finished items ever queued at once — never
  /// exceeds depth(); exposed for the backpressure tests.
  std::size_t highWater() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return highWater_;
  }

private:
  void producerLoop() {
    for (std::size_t index = next_; index < end_; ++index) {
      {
        // Backpressure: do not even *start* producing the next item
        // until there is queue space, so memory stays bounded by
        // depth queued items + 1 in flight.
        std::unique_lock<std::mutex> lock(mutex_);
        spaceAvailable_.wait(
            lock, [this] { return queue_.size() < depth_ || cancelled_; });
        if (cancelled_) {
          return;
        }
      }
      std::optional<T> item;
      try {
        item.emplace(produce_(index));
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        error_ = std::current_exception();
        itemAvailable_.notify_all();
        return;
      }
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (cancelled_) {
          return;
        }
        queue_.push_back(std::move(*item));
        highWater_ = std::max(highWater_, queue_.size());
      }
      itemAvailable_.notify_all();
    }
  }

  mutable std::mutex mutex_;
  std::condition_variable itemAvailable_;
  std::condition_variable spaceAvailable_;
  std::deque<T> queue_;
  std::size_t next_ = 0;
  std::size_t end_ = 0;
  std::size_t depth_ = 1;
  std::size_t highWater_ = 0;
  bool cancelled_ = false;
  std::exception_ptr error_;
  Producer produce_;
  std::thread thread_;
};

} // namespace vates
