#pragma once
/// \file executor.hpp
/// The portable execution front-end: write a kernel body once, run it on
/// any backend.  This is the C++ counterpart of JACC.jl's parallel_for /
/// parallel_reduce (paper Fig. 2 and Listing 3).
///
/// Kernel bodies must be data-race free except through vates::atomicAdd,
/// must not allocate (Per.15), and — when the executor targets
/// Backend::DeviceSim — must only dereference pointers obtained from
/// DeviceArray::deviceData().
///
/// Unlike JACC.jl at the time of the paper (whose parallel_reduce only
/// supported `+`), parallelReduce here takes an arbitrary associative
/// join; the paper explicitly calls out that gap ("this function does
/// not currently support custom reduction operators"), so supporting it
/// is one of the "future efforts in JACC" this reproduction implements.

#include "vates/parallel/backend.hpp"
#include "vates/parallel/device_sim.hpp"
#include "vates/parallel/thread_pool.hpp"
#include "vates/support/error.hpp"

#include <cstddef>
#include <vector>

#ifdef VATES_HAS_OPENMP
#include <omp.h>
#endif

namespace vates {

/// Dispatches portable kernels to a chosen backend.  Cheap to copy; the
/// referenced pool/device must outlive the executor (the global ones do).
class Executor {
public:
  /// Uses defaultBackend(), the global ThreadPool and global DeviceSim.
  Executor();

  /// Uses the global pool/device with an explicit backend.
  explicit Executor(Backend backend);

  /// Fully explicit (tests and benchmarks with private devices).
  Executor(Backend backend, ThreadPool& pool, DeviceSim& device);

  Backend backend() const noexcept { return backend_; }
  ThreadPool& pool() const noexcept { return *pool_; }
  DeviceSim& device() const noexcept { return *device_; }

  /// Number of workers the backend will use for a large launch.  For
  /// Backend::DeviceSim this is the device's own block-executor count,
  /// which may differ from the host thread pool's size.  Worker indices
  /// observed by the *Indexed loops are always in [0, concurrency()).
  unsigned concurrency() const noexcept;

  /// body(i) for i in [0, n).
  template <typename Body>
  void parallelFor(std::size_t n, Body&& body,
                   const char* label = "parallel_for") const {
    switch (backend_) {
    case Backend::Serial: {
      for (std::size_t i = 0; i < n; ++i) {
        body(i);
      }
      return;
    }
    case Backend::OpenMP: {
#ifdef VATES_HAS_OPENMP
      const auto signedN = static_cast<std::ptrdiff_t>(n);
#pragma omp parallel for schedule(static)
      for (std::ptrdiff_t i = 0; i < signedN; ++i) {
        body(static_cast<std::size_t>(i));
      }
      return;
#else
      throw Unsupported("OpenMP backend not compiled in");
#endif
    }
    case Backend::ThreadPool: {
      pool_->forRange(n, [&](std::size_t begin, std::size_t end, unsigned) {
        for (std::size_t i = begin; i < end; ++i) {
          body(i);
        }
      });
      return;
    }
    case Backend::DeviceSim: {
      device_->launch(label, n, [&](std::size_t i) { body(i); });
      return;
    }
    }
  }

  /// body(i, j) over [0, nOuter) × [0, nInner), the collapse(2) pattern
  /// of the paper's Listings 1–3 (symmetry operations × work items).
  template <typename Body>
  void parallelFor2D(std::size_t nOuter, std::size_t nInner, Body&& body,
                     const char* label = "parallel_for_2d") const {
    switch (backend_) {
    case Backend::Serial: {
      for (std::size_t i = 0; i < nOuter; ++i) {
        for (std::size_t j = 0; j < nInner; ++j) {
          body(i, j);
        }
      }
      return;
    }
    case Backend::OpenMP: {
#ifdef VATES_HAS_OPENMP
      const auto signedOuter = static_cast<std::ptrdiff_t>(nOuter);
      const auto signedInner = static_cast<std::ptrdiff_t>(nInner);
#pragma omp parallel for collapse(2) schedule(static)
      for (std::ptrdiff_t i = 0; i < signedOuter; ++i) {
        for (std::ptrdiff_t j = 0; j < signedInner; ++j) {
          body(static_cast<std::size_t>(i), static_cast<std::size_t>(j));
        }
      }
      return;
#else
      throw Unsupported("OpenMP backend not compiled in");
#endif
    }
    case Backend::ThreadPool: {
      const std::size_t total = nOuter * nInner;
      if (nInner == 0) {
        return;
      }
      pool_->forRange(total, [&](std::size_t begin, std::size_t end, unsigned) {
        for (std::size_t flat = begin; flat < end; ++flat) {
          body(flat / nInner, flat % nInner);
        }
      });
      return;
    }
    case Backend::DeviceSim: {
      device_->launch2D(label, nOuter, nInner,
                        [&](std::size_t i, std::size_t j) { body(i, j); });
      return;
    }
    }
  }

  /// body(i, worker) for i in [0, n), where \p worker identifies the
  /// executing worker in [0, concurrency()).  At most one work item runs
  /// per worker index at any instant, so worker-indexed scratch (replica
  /// grids, tile caches) needs no further synchronization within one
  /// loop.  Nested launches reuse index 0 inline and would alias the
  /// outer worker's slot — kernels using worker-indexed state must not
  /// launch nested parallel regions.
  template <typename Body>
  void parallelForIndexed(std::size_t n, Body&& body,
                          const char* label = "parallel_for") const {
    switch (backend_) {
    case Backend::Serial: {
      for (std::size_t i = 0; i < n; ++i) {
        body(i, 0u);
      }
      return;
    }
    case Backend::OpenMP: {
#ifdef VATES_HAS_OPENMP
      const auto signedN = static_cast<std::ptrdiff_t>(n);
#pragma omp parallel
      {
        const auto worker = static_cast<unsigned>(omp_get_thread_num());
#pragma omp for schedule(static)
        for (std::ptrdiff_t i = 0; i < signedN; ++i) {
          body(static_cast<std::size_t>(i), worker);
        }
      }
      return;
#else
      throw Unsupported("OpenMP backend not compiled in");
#endif
    }
    case Backend::ThreadPool: {
      pool_->forRange(n, [&](std::size_t begin, std::size_t end,
                             unsigned worker) {
        for (std::size_t i = begin; i < end; ++i) {
          body(i, worker);
        }
      });
      return;
    }
    case Backend::DeviceSim: {
      device_->launchIndexed(label, n, [&](std::size_t i, unsigned worker) {
        body(i, worker);
      });
      return;
    }
    }
  }

  /// body(i, j, worker) over [0, nOuter) × [0, nInner); the collapse(2)
  /// iteration space with the executing worker index exposed (see
  /// parallelForIndexed for the worker-index contract).
  template <typename Body>
  void parallelFor2DIndexed(std::size_t nOuter, std::size_t nInner,
                            Body&& body,
                            const char* label = "parallel_for_2d") const {
    switch (backend_) {
    case Backend::Serial: {
      for (std::size_t i = 0; i < nOuter; ++i) {
        for (std::size_t j = 0; j < nInner; ++j) {
          body(i, j, 0u);
        }
      }
      return;
    }
    case Backend::OpenMP: {
#ifdef VATES_HAS_OPENMP
      const auto signedOuter = static_cast<std::ptrdiff_t>(nOuter);
      const auto signedInner = static_cast<std::ptrdiff_t>(nInner);
#pragma omp parallel
      {
        const auto worker = static_cast<unsigned>(omp_get_thread_num());
#pragma omp for collapse(2) schedule(static)
        for (std::ptrdiff_t i = 0; i < signedOuter; ++i) {
          for (std::ptrdiff_t j = 0; j < signedInner; ++j) {
            body(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
                 worker);
          }
        }
      }
      return;
#else
      throw Unsupported("OpenMP backend not compiled in");
#endif
    }
    case Backend::ThreadPool: {
      if (nInner == 0) {
        return;
      }
      const std::size_t total = nOuter * nInner;
      pool_->forRange(total, [&](std::size_t begin, std::size_t end,
                                 unsigned worker) {
        for (std::size_t flat = begin; flat < end; ++flat) {
          body(flat / nInner, flat % nInner, worker);
        }
      });
      return;
    }
    case Backend::DeviceSim: {
      device_->launch2DIndexed(label, nOuter, nInner,
                               [&](std::size_t i, std::size_t j,
                                   unsigned worker) { body(i, j, worker); });
      return;
    }
    }
  }

  /// Reduce body(i) over [0, n) with an associative \p join starting from
  /// \p identity.  Partials are combined in worker order, so the result
  /// is deterministic for a fixed backend and worker count.
  template <typename T, typename Body, typename Join>
  T parallelReduce(std::size_t n, T identity, Body&& body, Join&& join,
                   const char* label = "parallel_reduce") const {
    switch (backend_) {
    case Backend::Serial: {
      T accumulator = identity;
      for (std::size_t i = 0; i < n; ++i) {
        accumulator = join(accumulator, body(i));
      }
      return accumulator;
    }
    case Backend::OpenMP: {
#ifdef VATES_HAS_OPENMP
      const int maxThreads = omp_get_max_threads();
      std::vector<T> partials(static_cast<std::size_t>(maxThreads), identity);
      const auto signedN = static_cast<std::ptrdiff_t>(n);
#pragma omp parallel
      {
        const auto tid = static_cast<std::size_t>(omp_get_thread_num());
        T local = identity;
#pragma omp for schedule(static) nowait
        for (std::ptrdiff_t i = 0; i < signedN; ++i) {
          local = join(local, body(static_cast<std::size_t>(i)));
        }
        partials[tid] = local;
      }
      T accumulator = identity;
      for (const T& partial : partials) {
        accumulator = join(accumulator, partial);
      }
      return accumulator;
#else
      throw Unsupported("OpenMP backend not compiled in");
#endif
    }
    case Backend::ThreadPool: {
      std::vector<T> partials(pool_->size(), identity);
      pool_->forRange(n, [&](std::size_t begin, std::size_t end,
                             unsigned worker) {
        T local = identity;
        for (std::size_t i = begin; i < end; ++i) {
          local = join(local, body(i));
        }
        partials[worker] = local;
      });
      T accumulator = identity;
      for (const T& partial : partials) {
        accumulator = join(accumulator, partial);
      }
      return accumulator;
    }
    case Backend::DeviceSim: {
      // Device-style two-phase reduction: per-block partials written by
      // the kernel (into simulated pinned staging), joined on the host in
      // block order.  The launch goes through the device so JIT and stat
      // metering match parallelFor.
      const std::size_t blockSize = device_->options().blockSize;
      const std::size_t blocks = n == 0 ? 0 : (n + blockSize - 1) / blockSize;
      std::vector<T> partials(blocks, identity);
      device_->launch(label, blocks, [&](std::size_t block) {
        const std::size_t begin = block * blockSize;
        const std::size_t end = std::min(n, begin + blockSize);
        T local = identity;
        for (std::size_t i = begin; i < end; ++i) {
          local = join(local, body(i));
        }
        partials[block] = local;
      });
      T accumulator = identity;
      for (const T& partial : partials) {
        accumulator = join(accumulator, partial);
      }
      return accumulator;
    }
    }
    return identity;
  }

private:
  Backend backend_;
  ThreadPool* pool_;
  DeviceSim* device_;
};

} // namespace vates
