#pragma once
/// \file device_sim.hpp
/// Simulated GPU device runtime.
///
/// This repository has no physical GPU, so the paper's CUDA/ROCm targets
/// (NVIDIA A100, AMD MI100 via JACC.jl) are substituted by a device
/// *simulator* that enforces the programming constraints a real device
/// backend imposes — which is what makes "performance-portable" code
/// portable in the first place:
///
///  1. **Separate memory space.**  Kernels may only touch memory
///     allocated through the device (DeviceArray).  Host data must be
///     staged with explicit copyToDevice()/copyToHost() calls, and the
///     runtime meters every transferred byte, so benchmarks can report
///     H2D/D2H traffic the way a real backend would.
///  2. **Grid/block launch decomposition.**  launch() splits the index
///     space into blocks of `blockSize` "threads" and executes blocks
///     across a worker pool; the kernel body sees only its flat global
///     index, exactly like Listing 3's JACC.parallel_for body.
///  3. **Device atomics.**  Concurrent histogram updates inside kernels
///     must use vates::atomicAdd (atomics.hpp), mirroring the paper's
///     atomic_push! on GPU.
///  4. **JIT model.**  Julia compiles each kernel on first invocation
///     (the paper reports JIT and no-JIT columns separately).  The
///     simulator charges a configurable, *measured* one-time compilation
///     latency per kernel name — implemented as real spin-work so the
///     cost shows up in wall-clock timings like any other stage — and
///     records it so harnesses can print the JIT column.
///
/// The simulator makes no attempt to predict GPU *speed*; it reproduces
/// GPU *semantics*.  EXPERIMENTS.md discusses how measured shapes relate
/// to the paper's A100/MI100 numbers.

#include "vates/parallel/function_ref.hpp"
#include "vates/parallel/thread_pool.hpp"

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace vates {

/// Tunable parameters of the simulated device.
struct DeviceOptions {
  /// Threads per block for launch decomposition.
  unsigned blockSize = 256;
  /// One-time per-kernel compilation latency in milliseconds (the JIT
  /// model).  0 disables the model (the "no JIT" configuration).
  double jitCostMs = 40.0;
  /// Worker threads executing blocks; 0 means use the global ThreadPool.
  unsigned workers = 0;
};

/// Cumulative counters for one device instance.
struct DeviceStats {
  std::uint64_t kernelLaunches = 0;
  std::uint64_t blocksExecuted = 0;
  std::uint64_t bytesAllocated = 0;   ///< high-water total of allocations
  std::uint64_t bytesFreed = 0;
  std::uint64_t bytesH2D = 0;
  std::uint64_t bytesD2H = 0;
  std::uint64_t jitCompilations = 0;
  double jitSeconds = 0.0;            ///< wall time spent in the JIT model

  /// Bytes currently resident on the device.
  std::uint64_t bytesLive() const noexcept {
    return bytesAllocated - bytesFreed;
  }
};

/// The simulated device.  Thread-safe; typically used through
/// DeviceSim::global() but tests construct private instances.
class DeviceSim {
public:
  /// Process-wide device configured from the environment
  /// ($VATES_DEVICE_JIT_MS, $VATES_DEVICE_BLOCK).
  static DeviceSim& global();

  explicit DeviceSim(DeviceOptions options = {});
  ~DeviceSim();

  DeviceSim(const DeviceSim&) = delete;
  DeviceSim& operator=(const DeviceSim&) = delete;

  const DeviceOptions& options() const noexcept { return options_; }

  /// Number of block-executing workers this device runs with — its own
  /// configured pool when options().workers > 0, otherwise the global
  /// ThreadPool it borrows.  This is the replica count a privatized
  /// accumulation must provision for, independent of whatever host-side
  /// pool an Executor also references.
  unsigned concurrency() const noexcept {
    return ownedPool_ ? ownedPool_->size() : externalPool_->size();
  }

  /// Reconfigure the JIT-model cost (benchmarks switch hardware presets
  /// on the shared global device).  Takes effect for kernels compiled
  /// after the call; combine with resetJitCache() to re-measure.
  void setJitCostMs(double milliseconds) noexcept;

  /// Raw device allocation (used by DeviceArray).  Counted in stats.
  void* allocate(std::size_t bytes);
  void deallocate(void* pointer, std::size_t bytes) noexcept;

  /// Transfer metering (called by copyToDevice / copyToHost).
  void recordH2D(std::size_t bytes) noexcept;
  void recordD2H(std::size_t bytes) noexcept;

  /// Ensure \p kernelName is "compiled"; on first call this spins for
  /// options().jitCostMs of real wall time and returns the seconds spent
  /// (0.0 on subsequent calls).  launch() calls this implicitly.
  double ensureCompiled(const std::string& kernelName);

  /// Launch a 1D kernel over [0, n): body(globalIndex) per index.
  /// Blocks are distributed over the worker pool; within this simulator a
  /// block executes its indices sequentially.  Returns after completion
  /// (stream semantics are synchronous, like JACC's default).
  void launch(const std::string& kernelName, std::size_t n,
              FunctionRef<void(std::size_t)> body);

  /// As launch(), but body(globalIndex, worker) also receives the index
  /// of the executing worker in [0, concurrency()) — the device analogue
  /// of a per-SM scratch slot, used for privatized accumulation.
  void launchIndexed(const std::string& kernelName, std::size_t n,
                     FunctionRef<void(std::size_t, unsigned)> body);

  /// Launch a 2D kernel over [0, nOuter) × [0, nInner), flattened
  /// outer-major — the device analogue of `collapse(2)` / Listing 3's
  /// two-dimensional JACC.parallel_for.
  void launch2D(const std::string& kernelName, std::size_t nOuter,
                std::size_t nInner, FunctionRef<void(std::size_t, std::size_t)> body);

  /// 2D launch whose body also receives the executing worker index.
  void launch2DIndexed(const std::string& kernelName, std::size_t nOuter,
                       std::size_t nInner,
                       FunctionRef<void(std::size_t, std::size_t, unsigned)> body);

  DeviceStats stats() const;
  void resetStats();

  /// Forget compiled kernels so the next launches pay JIT again (used by
  /// benchmarks to measure the JIT column repeatably).
  void resetJitCache();

private:
  ThreadPool& pool() noexcept;

  DeviceOptions options_;
  ThreadPool* externalPool_ = nullptr; // global pool when workers == 0
  std::unique_ptr<ThreadPool> ownedPool_;

  mutable std::mutex mutex_;
  DeviceStats stats_;
  std::map<std::string, bool> compiled_;
};

} // namespace vates
