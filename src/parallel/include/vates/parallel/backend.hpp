#pragma once
/// \file backend.hpp
/// Backend enumeration for the portable execution API (the JACC.jl
/// architecture of the paper's Fig. 2, in C++): one kernel source, many
/// execution targets.

#include <string>

namespace vates {

/// Available execution backends.
///
///  - Serial:     single thread, reference semantics, bit-reproducible.
///  - OpenMP:     `#pragma omp parallel for collapse(2)` — the paper's
///                Listing 1/2 C++ proxy configuration (only when compiled
///                with OpenMP support).
///  - ThreadPool: persistent std::thread worker pool; the portable CPU
///                fallback used when OpenMP is unavailable.
///  - DeviceSim:  simulated GPU device (see device_sim.hpp): explicit
///                memory spaces + transfers, block/thread launch
///                decomposition, device atomics, and a first-launch
///                compilation-latency model standing in for Julia's JIT.
enum class Backend : int { Serial = 0, OpenMP = 1, ThreadPool = 2, DeviceSim = 3 };

/// Human-readable backend name ("serial", "openmp", "threads", "devicesim").
const char* backendName(Backend backend) noexcept;

/// Parse a backend name (case-insensitive; accepts the names above plus
/// the aliases "omp", "pool", "device", "gpu-sim").  Throws
/// InvalidArgument for unknown names and Unsupported when the named
/// backend is not compiled in.
Backend parseBackend(const std::string& name);

/// Whether the backend can execute in this build/environment.
bool backendAvailable(Backend backend) noexcept;

/// The default backend: the value of $VATES_BACKEND if set, otherwise
/// OpenMP when available, otherwise ThreadPool.
Backend defaultBackend();

/// All backends available in this build, in enum order.
std::string availableBackendList();

} // namespace vates
